// Command cad3-vehicles emulates a fleet of connected vehicles against a
// running cad3-rsu broker: each vehicle streams synthetic Table II
// records at 10 Hz and polls for warnings every 10 ms, printing end-to-end
// latency when done (the role of PC1 in the paper's testbed).
//
// On the binary wire format each record carries a trace context in its
// frame padding; warnings coming back carry the full per-stage stamp set,
// so the fleet also prints the live Tx/Queue/Processing/Dissemination
// breakdown (Figure 6a) measured in flight — see OBSERVABILITY.md. JSON
// mode (-json) carries no trace and reports only coarse end-to-end times.
//
// Usage:
//
//	cad3-vehicles -addr 127.0.0.1:9092 -n 32 -duration 10s [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cad3/internal/experiments"
	"cad3/internal/metrics"
	"cad3/internal/stream"
	"cad3/internal/vehicle"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-vehicles:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "RSU broker address")
	n := flag.Int("n", 32, "number of vehicles")
	duration := flag.Duration("duration", 10*time.Second, "run duration")
	seed := flag.Int64("seed", 1, "record pool seed")
	jsonWire := flag.Bool("json", false, "publish telemetry as JSON instead of the binary codec (debug/interop)")
	conns := flag.Int("conns", stream.DefaultPoolSize, "pooled pipelined connections shared by the fleet")
	perConn := flag.Bool("per-conn", false, "one synchronous connection per vehicle (pre-pipelining behavior, for comparison)")
	flag.Parse()

	pool, _, err := experiments.BuildLatencyInputs(*seed)
	if err != nil {
		return err
	}

	// By default the whole fleet multiplexes a small pool of pipelined
	// connections with per-link circuit breakers; -per-conn restores the
	// paper's one-synchronous-connection-per-producer emulation.
	var clientFor func(i int) stream.Client
	if *perConn {
		clients := make([]*stream.RetryClient, 0, *n)
		defer func() {
			for _, c := range clients {
				_ = c.Close()
			}
		}()
		for i := 0; i < *n; i++ {
			c, err := stream.DialRetry(*addr, 0, 0)
			if err != nil {
				return fmt.Errorf("dial vehicle %d: %w", i, err)
			}
			clients = append(clients, c)
		}
		clientFor = func(i int) stream.Client { return clients[i] }
	} else {
		pc, err := stream.DialPool(*addr, stream.PoolConfig{Size: *conns})
		if err != nil {
			return fmt.Errorf("dial pool: %w", err)
		}
		defer pc.Close()
		clientFor = func(i int) stream.Client { return pc }
	}

	fleet, err := vehicle.NewFleet(*n, pool, clientFor, vehicle.Config{Loop: true, JSONWire: *jsonWire})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	ctx, cancel := context.WithTimeout(ctx, *duration)
	defer cancel()

	fmt.Printf("%d vehicles streaming to %s for %s...\n", *n, *addr, *duration)
	if err := fleet.Run(ctx); err != nil {
		return err
	}

	fmt.Printf("sent %d records, received %d warnings\n", fleet.TotalSent(), fleet.TotalReceived())
	var count, traced int
	agg := metrics.NewBreakdownAccumulator()
	for i, v := range fleet.Vehicles() {
		rep := v.Latencies()
		if rep.Total.Count == 0 {
			continue
		}
		count += rep.Total.Count
		if i < 5 {
			fmt.Printf("vehicle %d: warnings=%d end-to-end %s\n", i+1, rep.Total.Count, rep.Total)
		}
		traced += v.TracedCount()
		v.MergeTracedInto(agg)
	}
	fmt.Printf("total warnings with latency samples: %d (%d fully traced)\n", count, traced)
	if traced > 0 {
		rep := agg.Report()
		fmt.Printf("live trace means: tx=%s queue=%s proc=%s dissem=%s total=%s\n",
			rep.Tx.Mean.Round(10*time.Microsecond),
			rep.Queue.Mean.Round(10*time.Microsecond),
			rep.Processing.Mean.Round(10*time.Microsecond),
			rep.Dissemination.Mean.Round(10*time.Microsecond),
			rep.Total.Mean.Round(10*time.Microsecond))
	}
	return nil
}
