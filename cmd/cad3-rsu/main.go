// Command cad3-rsu runs one networked RSU: a TCP event broker plus the
// detection pipeline, trained on a synthetic scenario at startup. Point
// cad3-vehicles at its address, and optionally point this RSU's handover
// traffic at a neighbor RSU.
//
// Usage:
//
//	cad3-rsu -addr 127.0.0.1:9092 -road-type motorway_link \
//	         [-neighbor 127.0.0.1:9093] [-collab] [-cars 300] [-seed 1] \
//	         [-debug-addr 127.0.0.1:6060]
//
// With -debug-addr set, the observability endpoint serves /metrics (live
// counter/gauge/histogram snapshot), /trace/recent (per-warning pipeline
// traces), /health (node heartbeat + degraded-mode counters) and
// /debug/pprof/ — see OBSERVABILITY.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cad3/internal/core"
	"cad3/internal/experiments"
	"cad3/internal/geo"
	"cad3/internal/obsv"
	"cad3/internal/rsu"
	"cad3/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-rsu:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "listen address for the broker")
	roadTypeName := flag.String("road-type", "motorway_link", "road type this RSU covers")
	name := flag.String("name", "", "RSU name (defaults to the road type)")
	neighborAddr := flag.String("neighbor", "", "neighbor RSU broker address for CO-DATA forwarding")
	collab := flag.Bool("collab", true, "run the collaborative CAD3 model (false: standalone AD3)")
	modelPath := flag.String("model", "", "load a trained detector bundle (from cad3-train) instead of training")
	cars := flag.Int("cars", 300, "training scenario fleet size")
	seed := flag.Int64("seed", 1, "training scenario seed")
	statsEvery := flag.Duration("stats", 5*time.Second, "stats print interval")
	debugAddr := flag.String("debug-addr", "", "serve /metrics, /trace/recent, /health and pprof on this address (empty: disabled)")
	verbose := flag.Bool("v", false, "log every warning produced (debug level)")
	flag.Parse()

	roadType, err := geo.ParseRoadType(*roadTypeName)
	if err != nil {
		return err
	}
	if *name == "" {
		*name = roadType.String()
	}

	var detector core.Detector
	if *modelPath != "" {
		f, err := os.Open(*modelPath)
		if err != nil {
			return err
		}
		detector, err = core.LoadDetector(f)
		_ = f.Close()
		if err != nil {
			return fmt.Errorf("load model %s: %w", *modelPath, err)
		}
		fmt.Printf("loaded %s detector from %s\n", detector.Name(), *modelPath)
	} else {
		fmt.Printf("training detectors (cars=%d seed=%d)...\n", *cars, *seed)
		sc, err := experiments.BuildScenario(experiments.ScenarioConfig{Cars: *cars, Seed: *seed})
		if err != nil {
			return fmt.Errorf("train: %w", err)
		}
		switch {
		case roadType == geo.MotorwayLink && *collab:
			detector = sc.CAD3
		case roadType == geo.MotorwayLink:
			detector = sc.AD3
		case roadType == geo.Motorway:
			detector = sc.Upstream
		default:
			det := core.NewAD3(roadType)
			if err := det.Train(sc.Train, sc.Labeler); err != nil {
				return fmt.Errorf("train %v: %w", roadType, err)
			}
			detector = det
		}
	}

	// One registry spans the whole process — broker counters and the
	// node's pipeline metrics land in the same /metrics document.
	reg := obsv.NewRegistry()
	broker := stream.NewBroker(stream.BrokerConfig{Metrics: reg})
	server, err := stream.NewServer(broker, *addr)
	if err != nil {
		return err
	}
	defer server.Close()

	logLevel := slog.LevelInfo
	if *verbose {
		logLevel = slog.LevelDebug
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: logLevel}))
	node, err := rsu.New(rsu.Config{
		Name:     *name,
		Road:     experiments.CorridorLinkID,
		Detector: detector,
		Client:   stream.NewInProcClient(broker),
		Logger:   logger,
		Metrics:  reg,
	})
	if err != nil {
		return err
	}
	if *neighborAddr != "" {
		neighbor, err := stream.Dial(*neighborAddr)
		if err != nil {
			return fmt.Errorf("neighbor: %w", err)
		}
		defer neighbor.Close()
		if err := node.AddNeighbor("neighbor", neighbor); err != nil {
			return err
		}
		fmt.Printf("forwarding handover summaries to %s\n", *neighborAddr)
	}

	if *debugAddr != "" {
		dbg, derr := obsv.ServeDebug(*debugAddr, obsv.DebugOptions{
			Registry: node.Registry(),
			Ring:     node.TraceRing(),
			Health: func() any {
				st := node.Stats()
				healthy := node.Ping() == nil
				return map[string]any{
					"rsu":      *name,
					"healthy":  healthy,
					"records":  st.Records,
					"warnings": st.Warnings,
					"degraded": st.DegradedCounters(),
				}
			},
		})
		if derr != nil {
			return derr
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint on http://%s (/metrics /trace/recent /health /debug/pprof/)\n", dbg.Addr())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Printf("RSU %q (%s, %s) serving on %s\n", *name, roadType, detector.Name(), server.Addr())
	go func() {
		ticker := time.NewTicker(*statsEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				st := node.Stats()
				fmt.Printf("records=%d warnings=%d summaries(rx/tx)=%d/%d priors(hit/miss)=%d/%d batches=%d\n",
					st.Records, st.Warnings, st.SummariesReceived, st.SummariesSent,
					st.PriorHits, st.PriorMisses, st.Engine.Batches)
			}
		}
	}()
	err = node.Run(ctx)
	if err == context.Canceled {
		fmt.Println("\nshutting down")
		return nil
	}
	return err
}
