// Command cad3-chaos runs the crash-safety study: it replays the corridor
// scenario through two live RSU nodes while partitioning the inter-RSU
// link and killing the CO-DATA neighbor mid-run, recovers the broker from
// its log snapshot and the node from its checkpoint, and prints the
// per-phase detection continuity table (live CAD3 vs the AD3 floor and
// the fault-free CAD3 ceiling).
//
// With -failover it runs the replicated-broker failover study instead:
// the corridor link replays through a CAD3 node on a three-broker
// ReplicaSet, the IN-DATA partition leader is killed with zero warning
// mid-run, and the study prints the per-phase warning-latency table plus
// the acks=all durability and consumer-group handoff accounting.
//
// Usage:
//
//	cad3-chaos [-cars 500] [-seed 42] [-drop 0] [-dup 0] [-kill 0]
//	           [-partition 0.35] [-crash 0.45] [-heal 0.70]
//	           [-failover] [-kill-at 0.40] [-join-at 0.55] [-revive-at 0.70]
//	           [-debug-addr 127.0.0.1:6060]
//
// With -debug-addr set, the study's live registry is served on /metrics
// (plus /debug/pprof/ for profiling the study) while the replay runs —
// see OBSERVABILITY.md.
package main

import (
	"flag"
	"fmt"
	"os"

	"cad3/internal/chaos"
	"cad3/internal/experiments"
	"cad3/internal/obsv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-chaos:", err)
		os.Exit(1)
	}
}

func run() error {
	cars := flag.Int("cars", 500, "corridor/background fleet size")
	seed := flag.Int64("seed", 42, "random seed (scenario and fault injector)")
	drop := flag.Float64("drop", 0, "per-message drop probability on the inter-RSU link")
	dup := flag.Float64("dup", 0, "per-message duplication probability")
	kill := flag.Float64("kill", 0, "per-operation connection-kill probability")
	partition := flag.Float64("partition", 0.35, "timeline fraction where the inter-RSU link partitions")
	crash := flag.Float64("crash", 0.45, "timeline fraction where the upstream RSU dies")
	heal := flag.Float64("heal", 0.70, "timeline fraction where broker and node recover")
	failover := flag.Bool("failover", false, "run the replicated-broker failover study instead of the crash-safety study")
	killAt := flag.Float64("kill-at", 0.40, "failover: timeline fraction where the partition leader is killed")
	joinAt := flag.Float64("join-at", 0.55, "failover: timeline fraction where a second group member joins")
	reviveAt := flag.Float64("revive-at", 0.70, "failover: timeline fraction where the killed replica revives")
	debugAddr := flag.String("debug-addr", "", "serve /metrics and pprof for the study on this address (empty: disabled)")
	flag.Parse()

	fmt.Printf("building scenario (cars=%d seed=%d)...\n", *cars, *seed)
	sc, err := experiments.BuildScenario(experiments.ScenarioConfig{Cars: *cars, Seed: *seed})
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	reg := obsv.NewRegistry()
	if *debugAddr != "" {
		dbg, derr := obsv.ServeDebug(*debugAddr, obsv.DebugOptions{Registry: reg})
		if derr != nil {
			return derr
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint on http://%s (/metrics /debug/pprof/)\n", dbg.Addr())
	}

	if *failover {
		fres, ferr := experiments.RunFailoverStudy(experiments.FailoverConfig{
			Scenario:   sc,
			Seed:       *seed,
			KillFrac:   *killAt,
			JoinFrac:   *joinAt,
			ReviveFrac: *reviveAt,
			Metrics:    reg,
		})
		if ferr != nil {
			return ferr
		}
		fmt.Printf("\n=== Failover study: kill@%.0f%%, join@%.0f%%, revive@%.0f%% (%d link records) ===\n",
			*killAt*100, *joinAt*100, *reviveAt*100, fres.LinkRecords)
		fmt.Print(experiments.FormatFailoverResult(fres))
		return nil
	}

	res, err := experiments.RunChaosStudy(experiments.ChaosConfig{
		Scenario:      sc,
		Seed:          *seed,
		Faults:        chaos.Config{DropProb: *drop, DupProb: *dup, KillProb: *kill},
		PartitionFrac: *partition,
		CrashFrac:     *crash,
		HealFrac:      *heal,
		Metrics:       reg,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n=== Chaos study: partition@%.0f%%, crash@%.0f%%, heal@%.0f%% (%d link records) ===\n",
		*partition*100, *crash*100, *heal*100, res.LinkRecords)
	fmt.Print(experiments.FormatChaosResult(res))
	return nil
}
