// Command cad3-scenario replays the declarative scenario corpus against
// the full simulation stack and reports each spec's pass/fail verdict.
// It is the regression gate `make scenarios` runs in CI, and the entry
// point for authoring new scenarios (SCENARIOS.md documents the spec
// grammar).
//
// Modes:
//
//	cad3-scenario                      replay every scenarios/*.json spec
//	cad3-scenario -run failover        replay only specs whose name or
//	                                   filename contains the substring
//	cad3-scenario -spec path.json      replay one spec file (corpus or not)
//	cad3-scenario -explore 5           after the replay, perturb each spec
//	                                   N times hunting for new failures;
//	                                   a find is minimized and (with
//	                                   -archive) written into the corpus
//	cad3-scenario -explore 5 -budget 2m
//	                                   keep repeating the exploration
//	                                   sweep (fresh perturbations each
//	                                   pass) until the wall-clock budget
//	                                   runs out — the scheduled CI fuzz
//	                                   job's mode
//	cad3-scenario -selfcheck           inject an impossible assertion and
//	                                   verify the explorer finds, minimizes
//	                                   and archives it — the meta-test that
//	                                   the failure path works end to end
//
// Usage:
//
//	cad3-scenario [-corpus scenarios] [-run substr] [-spec file.json]
//	              [-cars 400] [-seed 77] [-vehicles 24] [-replicas 3]
//	              [-explore 0] [-explore-seed 1] [-budget 0]
//	              [-archive] [-archive-dir dir] [-selfcheck] [-v]
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"cad3/internal/experiments"
	"cad3/internal/obsv"
	"cad3/internal/scenario"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-scenario:", err)
		os.Exit(1)
	}
}

func run() error {
	corpusDir := flag.String("corpus", "scenarios", "corpus directory of *.json specs")
	runFilter := flag.String("run", "", "replay only specs whose name or filename contains this substring")
	specPath := flag.String("spec", "", "replay a single spec file instead of the corpus")
	cars := flag.Int("cars", 400, "corridor/background fleet size for the scenario build")
	seed := flag.Int64("seed", 77, "scenario build seed (spec seeds drive the runs)")
	vehicles := flag.Int("vehicles", 24, "paced vehicles offering load")
	replicas := flag.Int("replicas", 3, "broker cluster size")
	explore := flag.Int("explore", 0, "perturbations per spec to hunt for new failures")
	exploreSeed := flag.Int64("explore-seed", 1, "explorer PRNG seed")
	budget := flag.Duration("budget", 0, "with -explore, repeat the exploration sweep until this wall-clock budget expires")
	archive := flag.Bool("archive", false, "archive minimized findings (implied by -archive-dir)")
	archiveDir := flag.String("archive-dir", "", "directory for archived findings (default: the corpus directory)")
	selfcheck := flag.Bool("selfcheck", false, "verify the find->minimize->archive path with an injected failure")
	verbose := flag.Bool("v", false, "print full run transcripts")
	flag.Parse()

	fmt.Printf("building scenario (cars=%d seed=%d)...\n", *cars, *seed)
	sc, err := experiments.BuildScenario(experiments.ScenarioConfig{Cars: *cars, Seed: *seed})
	if err != nil {
		return err
	}
	harness, err := experiments.NewScenarioHarness(experiments.ScenarioHarnessConfig{
		Scenario: sc, Vehicles: *vehicles, Replicas: *replicas,
	})
	if err != nil {
		return err
	}
	reg := obsv.NewRegistry()
	engine := scenario.New(scenario.Config{Metrics: reg})

	// Specs named city-* replay against the sharded city harness
	// (shard-boundary handover under chaos) instead of the corridor
	// stack; the city is built lazily on first use.
	var cityHarness *experiments.CityScenarioHarness
	harnessFor := func(s *scenario.Spec) (scenario.Harness, error) {
		if !strings.HasPrefix(s.Name, "city-") {
			return harness, nil
		}
		if cityHarness == nil {
			var herr error
			cityHarness, herr = experiments.NewCityScenarioHarness(experiments.CityHarnessConfig{})
			if herr != nil {
				return nil, herr
			}
		}
		return cityHarness, nil
	}

	var specs []*scenario.Spec
	var names []string
	if *specPath != "" {
		s, lerr := scenario.LoadSpec(*specPath)
		if lerr != nil {
			return lerr
		}
		specs, names = []*scenario.Spec{s}, []string{filepath.Base(*specPath)}
	} else {
		specs, names, err = scenario.LoadCorpus(*corpusDir)
		if err != nil {
			return err
		}
	}
	if *runFilter != "" {
		var fs []*scenario.Spec
		var fn []string
		for i, s := range specs {
			if strings.Contains(s.Name, *runFilter) || strings.Contains(names[i], *runFilter) {
				fs, fn = append(fs, s), append(fn, names[i])
			}
		}
		if len(fs) == 0 {
			return fmt.Errorf("no corpus spec matches -run %q", *runFilter)
		}
		specs, names = fs, fn
	}

	failures := 0
	for i, s := range specs {
		h, herr := harnessFor(s)
		if herr != nil {
			return herr
		}
		res, rerr := engine.Run(s, h)
		if rerr != nil {
			return fmt.Errorf("%s: %w", names[i], rerr)
		}
		verdict := "PASS"
		if !res.Pass {
			verdict = fmt.Sprintf("FAIL (%d assertions)", res.Failures)
			failures++
		}
		fmt.Printf("%-32s %-24s seed=%-6d phases=%d  %s\n",
			names[i], s.Name, s.Seed, len(s.Phases), verdict)
		if *verbose || !res.Pass {
			fmt.Print(indent(res.Transcript))
		}
	}

	if *selfcheck {
		h, herr := harnessFor(specs[0])
		if herr != nil {
			return herr
		}
		if err := runSelfcheck(engine, h, specs[0], *exploreSeed); err != nil {
			return err
		}
	}

	if *explore > 0 {
		x := &scenario.Explorer{
			Engine: engine, Harness: harness,
			Rng: rand.New(rand.NewSource(*exploreSeed)),
		}
		dir := *corpusDir
		if *archiveDir != "" {
			dir = *archiveDir
			*archive = true
			if err := os.MkdirAll(dir, 0o755); err != nil {
				return err
			}
		}
		// With a -budget, the sweep repeats until the wall-clock deadline
		// passes; the explorer's PRNG persists across sweeps, so every
		// pass draws fresh perturbations. Budget checks sit between
		// specs: a sweep in progress finishes its current Explore call,
		// so a short budget still covers at least one spec.
		var deadline time.Time
		if *budget > 0 {
			deadline = time.Now().Add(*budget)
			fmt.Printf("exploring with a %v budget...\n", *budget)
		}
		for sweep := 1; ; sweep++ {
			for i, s := range specs {
				if !deadline.IsZero() && !time.Now().Before(deadline) {
					break
				}
				h, herr := harnessFor(s)
				if herr != nil {
					return herr
				}
				x.Harness = h
				fmt.Printf("exploring %s (sweep %d, %d perturbations)...\n", names[i], sweep, *explore)
				finding, xerr := x.Explore(s, *explore)
				if xerr != nil {
					return xerr
				}
				if finding == nil {
					continue
				}
				failures++
				fmt.Printf("NEW FAILURE from %s, minimized in %d candidate runs:\n", finding.Origin, finding.Candidates)
				fmt.Print(indent(finding.Result.Transcript))
				if *archive {
					path, aerr := x.Archive(finding.Spec, dir)
					if aerr != nil {
						return aerr
					}
					fmt.Printf("archived to %s — commit it to pin the regression\n", path)
				}
			}
			if deadline.IsZero() || !time.Now().Before(deadline) {
				break
			}
		}
	}

	snap := reg.Snapshot()
	fmt.Printf("engine: %d runs (%d failed), %d rounds, %d actions (%d errored), %d/%d assertions passed\n",
		snap.Counters["scenario.runs"], snap.Counters["scenario.runs.failed"],
		snap.Counters["scenario.rounds"], snap.Counters["scenario.actions"],
		snap.Counters["scenario.action_errors"], snap.Counters["scenario.assert.pass"],
		snap.Counters["scenario.assert.pass"]+snap.Counters["scenario.assert.fail"])
	if failures > 0 {
		return fmt.Errorf("%d scenario(s) failed", failures)
	}
	return nil
}

// runSelfcheck injects an unsatisfiable assertion into a copy of a known
// spec and demands the explorer machinery find, minimize and archive it.
// A selfcheck failure means the corpus gate could no longer catch a real
// regression — the one failure mode a green gate cannot be trusted over.
func runSelfcheck(engine *scenario.Engine, h scenario.Harness, base *scenario.Spec, seed int64) error {
	fmt.Println("selfcheck: injecting an impossible assertion (acked_records < 0)...")
	broken := base.Clone()
	broken.Name = base.Name + "-selfcheck"
	last := &broken.Phases[len(broken.Phases)-1]
	last.Assertions = append(last.Assertions, scenario.AssertionSpec{
		Metric: "acked_records", Op: "<", Value: 0,
	})
	x := &scenario.Explorer{Engine: engine, Harness: h, Rng: rand.New(rand.NewSource(seed))}
	min, runs, err := x.Minimize(broken)
	if err != nil {
		return fmt.Errorf("selfcheck: minimizer did not confirm the failure: %w", err)
	}
	dir, err := os.MkdirTemp("", "cad3-scenario-selfcheck")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	path, err := x.Archive(min, dir)
	if err != nil {
		return fmt.Errorf("selfcheck: archive: %w", err)
	}
	rt, err := scenario.LoadSpec(path)
	if err != nil {
		return fmt.Errorf("selfcheck: archived spec does not re-load: %w", err)
	}
	res, err := engine.Run(rt, h)
	if err != nil {
		return fmt.Errorf("selfcheck: archived spec does not run: %w", err)
	}
	if res.Pass {
		return fmt.Errorf("selfcheck: archived minimized spec no longer fails")
	}
	fmt.Printf("selfcheck: OK — minimized to %d phase(s) in %d runs, archived, replayed, still failing\n",
		len(min.Phases), runs)
	return nil
}

func indent(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	for i := range lines {
		lines[i] = "    " + lines[i]
	}
	return strings.Join(lines, "\n") + "\n"
}
