// Command cad3-replay streams a recorded dataset (the CSV written by
// cad3-dataset -out, re-encoded to CSV via the trace package) at a running
// cad3-rsu broker, reproducing real traffic against a live node and
// reporting end-to-end warning latency. Records carry a wire trace
// context, so when the serving RSU is trace-aware the replay also reports
// the live per-stage breakdown (see OBSERVABILITY.md).
//
// Usage:
//
//	cad3-dataset -cars 50 -out /tmp/records.jsonl   # or build a CSV
//	cad3-replay -addr 127.0.0.1:9092 -csv records.csv [-rate 10] [-n 16]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cad3/internal/core"
	"cad3/internal/metrics"
	"cad3/internal/obsv"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-replay:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", "127.0.0.1:9092", "RSU broker address")
	csvPath := flag.String("csv", "", "records CSV (trace.WriteRecordsCSV format)")
	rate := flag.Float64("rate", 10, "records per second per vehicle")
	vehicles := flag.Int("n", 8, "number of emulated vehicles sharing the records")
	maxRecords := flag.Int("max", 0, "replay at most this many records (0 = all)")
	flag.Parse()

	if *csvPath == "" {
		return fmt.Errorf("-csv is required")
	}
	f, err := os.Open(*csvPath)
	if err != nil {
		return err
	}
	records, err := trace.ReadRecordsCSV(f)
	_ = f.Close()
	if err != nil {
		return err
	}
	if len(records) == 0 {
		return fmt.Errorf("no records in %s", *csvPath)
	}
	if *maxRecords > 0 && len(records) > *maxRecords {
		records = records[:*maxRecords]
	}
	fmt.Printf("replaying %d records through %d vehicles at %.0f Hz each...\n",
		len(records), *vehicles, *rate)

	client, err := stream.DialRetry(*addr, 0, 0)
	if err != nil {
		return err
	}
	defer client.Close()
	producer, err := stream.NewProducer(client, stream.TopicInData)
	if err != nil {
		return err
	}
	warnClient, err := stream.DialRetry(*addr, 0, 0)
	if err != nil {
		return err
	}
	defer warnClient.Close()
	consumer, err := stream.NewConsumer(warnClient, stream.TopicOutData, 0)
	if err != nil {
		return err
	}

	interval := time.Duration(float64(time.Second) / (*rate * float64(*vehicles)))
	if interval <= 0 {
		interval = time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	poll := time.NewTicker(10 * time.Millisecond)
	defer poll.Stop()

	var sent, warnings, pollErrs int
	var lastPollErr error
	var latencySum time.Duration
	live := metrics.NewBreakdownAccumulator()
	drain := func() {
		// A transient poll failure (broker failover, redial in flight)
		// must not kill the replay; it is counted and reported at exit.
		msgs, perr := consumer.Poll(256)
		if perr != nil {
			pollErrs++
			lastPollErr = perr
		}
		nowT := time.Now()
		now := nowT.UnixMilli()
		for _, m := range msgs {
			w, derr := core.DecodeWarning(m.Value)
			if derr != nil {
				continue
			}
			warnings++
			if d := now - w.SourceTsMs; d >= 0 {
				latencySum += time.Duration(d) * time.Millisecond
			}
			if tc, ok := core.WarningTrace(m.Value); ok {
				tc.Stamp(obsv.StageDeliver, nowT)
				if bd, complete := tc.Breakdown(); complete {
					live.Observe(bd)
				}
			}
		}
	}
	i := 0
	for sent < len(records) {
		select {
		case <-ticker.C:
			rec := records[i]
			rec.Car = trace.CarID(i%*vehicles + 1)
			rec.TimestampMs = time.Now().UnixMilli()
			var tc obsv.TraceContext
			tc.Stamp(obsv.StageSent, time.Now())
			payload := core.AppendRecordTraced(nil, rec, tc)
			if _, _, err := producer.Send(nil, payload); err != nil {
				return fmt.Errorf("send record %d: %w", i, err)
			}
			i++
			sent++
		case <-poll.C:
			drain()
		}
	}
	// Drain the tail.
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		drain()
		time.Sleep(10 * time.Millisecond)
	}

	if pollErrs > 0 {
		fmt.Printf("warning: %d poll error(s) during replay (last: %v)\n", pollErrs, lastPollErr)
	}
	fmt.Printf("sent %d records, received %d warnings", sent, warnings)
	if warnings > 0 {
		fmt.Printf(", mean end-to-end latency %v", (latencySum / time.Duration(warnings)).Round(time.Millisecond))
	}
	fmt.Println()
	if live.Count() > 0 {
		rep := live.Report()
		fmt.Printf("live trace (%d warnings): tx=%s queue=%s proc=%s dissem=%s total=%s\n",
			live.Count(),
			rep.Tx.Mean.Round(10*time.Microsecond),
			rep.Queue.Mean.Round(10*time.Microsecond),
			rep.Processing.Mean.Round(10*time.Microsecond),
			rep.Dissemination.Mean.Round(10*time.Microsecond),
			rep.Total.Mean.Round(10*time.Microsecond))
	}
	return nil
}
