// Command cad3-vet runs the repo-specific static analyzers in
// internal/lint over the whole module and prints every finding as
//
//	file:line: [analyzer] message
//
// exiting non-zero if anything is found. It enforces the invariants the
// compiler cannot see: simulation packages stay on injected clocks
// (virtualclock), pooled buffers are not touched after recycling
// (poolsafety), the wire-format constants match the bytes the codec
// actually moves (wirelayout), //cad3:noalloc functions stay off the
// allocator (noalloc), and long-running packages spawn no fire-and-forget
// goroutines (goroutinehygiene). See DESIGN.md §11 for the rationale and
// the //cad3:allow escape hatch.
//
// Usage:
//
//	cad3-vet [-list] [-only analyzer,analyzer] [dir]
//
// With no directory, the module containing the current directory is
// analyzed.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cad3/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-vet:", err)
		os.Exit(2)
	}
}

func run() error {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept `./...` for familiarity with go vet; the whole module is
		// always analyzed.
		dir = strings.TrimSuffix(args[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" || dir == "." {
			dir = "."
		}
	}

	root, module, err := lint.FindModuleRoot(dir)
	if err != nil {
		return err
	}
	loader := lint.NewLoader(root, module)
	prog, err := loader.LoadRepo()
	if err != nil {
		return err
	}

	// Type errors mean the analysis ran on a partial picture — surface
	// them as a load failure rather than pretending the tree is clean.
	var typeErrs []string
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			typeErrs = append(typeErrs, fmt.Sprintf("%s: %v", pkg.Path, e))
		}
	}
	if len(typeErrs) > 0 {
		sort.Strings(typeErrs)
		for _, e := range typeErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		return fmt.Errorf("%d type error(s) while loading — fix the build first", len(typeErrs))
	}

	findings := lint.Run(prog, analyzers)
	for _, f := range findings {
		fmt.Println(f.String())
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cad3-vet: %d finding(s)\n", len(findings))
		os.Exit(1)
	}
	return nil
}
