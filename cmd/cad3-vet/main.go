// Command cad3-vet runs the repo-specific static analyzers in
// internal/lint over the whole module and prints every finding as
//
//	file:line: [analyzer] message
//
// exiting non-zero if anything is found. It enforces the invariants the
// compiler cannot see: simulation packages stay on injected clocks
// (virtualclock), pooled buffers are not touched after recycling
// (poolsafety), the wire-format constants match the bytes the codec
// actually moves (wirelayout), //cad3:noalloc functions stay off the
// allocator (noalloc), long-running packages spawn no fire-and-forget
// goroutines (goroutinehygiene), determinism-critical packages leak no
// runtime-randomized orders (detorder), mutexes follow the lock
// discipline (lockdiscipline), no variable lives under two sync regimes
// (atomicmix), and the v2 wire error contract holds at every client
// call site (wireerrexhaustive). See DESIGN.md §11 and §16 for the
// rationale and the //cad3:allow escape hatch.
//
// Usage:
//
//	cad3-vet [-list] [-only analyzer,...] [-json] [-allows] [-max-allows n] [-cache dir] [dir]
//
// With no directory, the module containing the current directory is
// analyzed. Results are memoized in a content-hashed cache (default
// <module>/.cad3vetcache, disable with -cache ""), so an unchanged
// package costs a hash instead of a re-analysis. -json emits the
// findings, the suppression census, and cache statistics as one JSON
// object for CI. -allows prints the census human-readably; -max-allows
// fails the run when the census exceeds n, which is how CI keeps the
// suppression count from growing unnoticed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cad3/internal/lint"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-vet:", err)
		os.Exit(2)
	}
}

// jsonReport is the -json output shape.
type jsonReport struct {
	Findings []lint.Finding `json:"findings"`
	Allows   []lint.Allow   `json:"allows"`
	Packages int            `json:"packages"`
	Cache    struct {
		Hits   int `json:"hits"`
		Misses int `json:"misses"`
	} `json:"cache"`
	ElapsedMS int64 `json:"elapsed_ms"`
}

func run() error {
	list := flag.Bool("list", false, "list analyzers and exit")
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	asJSON := flag.Bool("json", false, "emit findings, allow census, and cache stats as JSON")
	allowsFlag := flag.Bool("allows", false, "print the //cad3:allow suppression census")
	maxAllows := flag.Int("max-allows", -1, "fail if the suppression census exceeds this count (-1: no limit)")
	cacheDir := flag.String("cache", defaultCacheDir, "result cache directory (empty: disable caching)")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-18s %s\n", a.Name, a.Doc)
		}
		return nil
	}
	if *only != "" {
		byName := map[string]*lint.Analyzer{}
		for _, a := range analyzers {
			byName[a.Name] = a
		}
		var picked []*lint.Analyzer
		for _, name := range strings.Split(*only, ",") {
			name = strings.TrimSpace(name)
			a, ok := byName[name]
			if !ok {
				return fmt.Errorf("unknown analyzer %q (use -list)", name)
			}
			picked = append(picked, a)
		}
		analyzers = picked
	}

	dir := "."
	if args := flag.Args(); len(args) > 0 {
		// Accept `./...` for familiarity with go vet; the whole module is
		// always analyzed.
		dir = strings.TrimSuffix(args[0], "...")
		dir = strings.TrimSuffix(dir, "/")
		if dir == "" || dir == "." {
			dir = "."
		}
	}

	start := time.Now()
	root, module, err := lint.FindModuleRoot(dir)
	if err != nil {
		return err
	}
	loader := lint.NewLoader(root, module)
	prog, err := loader.LoadRepo()
	if err != nil {
		return err
	}

	// Type errors mean the analysis ran on a partial picture — surface
	// them as a load failure rather than pretending the tree is clean.
	var typeErrs []string
	for _, pkg := range prog.Pkgs {
		for _, e := range pkg.TypeErrors {
			typeErrs = append(typeErrs, fmt.Sprintf("%s: %v", pkg.Path, e))
		}
	}
	if len(typeErrs) > 0 {
		sort.Strings(typeErrs)
		for _, e := range typeErrs {
			fmt.Fprintln(os.Stderr, e)
		}
		return fmt.Errorf("%d type error(s) while loading — fix the build first", len(typeErrs))
	}

	var cache *lint.Cache
	if *cacheDir != "" {
		cdir := *cacheDir
		if cdir == defaultCacheDir {
			cdir = filepath.Join(root, ".cad3vetcache")
		}
		cache, err = lint.NewCache(cdir, prog)
		if err != nil {
			// A broken cache dir must not block the analysis.
			fmt.Fprintln(os.Stderr, "cad3-vet: cache disabled:", err)
			cache = nil
		}
	}

	findings, allows := lint.RunCensusCached(prog, analyzers, cache)
	elapsed := time.Since(start)

	overLimit := *maxAllows >= 0 && len(allows) > *maxAllows

	if *asJSON {
		var rep jsonReport
		rep.Findings = findings
		if rep.Findings == nil {
			rep.Findings = []lint.Finding{}
		}
		rep.Allows = allows
		if rep.Allows == nil {
			rep.Allows = []lint.Allow{}
		}
		rep.Packages = len(prog.Pkgs)
		if cache != nil {
			rep.Cache.Hits, rep.Cache.Misses = cache.Stats()
		}
		rep.ElapsedMS = elapsed.Milliseconds()
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			return err
		}
	} else {
		for _, f := range findings {
			fmt.Println(f.String())
		}
		if *allowsFlag {
			printCensus(root, allows)
		}
	}

	if overLimit {
		fmt.Fprintf(os.Stderr, "cad3-vet: suppression census has %d allows, limit is %d — "+
			"remove a //cad3:allow (or consciously raise the limit in CI)\n", len(allows), *maxAllows)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "cad3-vet: %d finding(s)\n", len(findings))
	}
	if len(findings) > 0 || overLimit {
		os.Exit(1)
	}
	return nil
}

// defaultCacheDir is a sentinel: the real default is resolved against
// the module root once it is known.
const defaultCacheDir = "<module>/.cad3vetcache"

// printCensus renders the suppression census, flagging stale allows
// (ones that no longer suppress anything).
func printCensus(root string, allows []lint.Allow) {
	fmt.Printf("suppression census: %d //cad3:allow annotation(s)\n", len(allows))
	for _, al := range allows {
		file := al.Pos.Filename
		if rel, err := filepath.Rel(root, file); err == nil {
			file = rel
		}
		state := "used"
		if !al.Used {
			state = "STALE"
		}
		fmt.Printf("  %s:%d: [%s] (%s) %s\n", file, al.Pos.Line, al.Analyzer, state, al.Reason)
	}
}
