// Command cad3-overload runs the overload study: it replays the corridor
// link records through the full bounded pipeline — paced vehicles, a
// flow-controlled broker, an adaptively batched RSU with degraded-mode
// admission — at a sweep of offered-load multipliers on a virtual clock,
// and prints the goodput / warning-p99 / shed-fraction curve. The
// graceful-degradation contract it demonstrates: warning latency stays
// bounded, sheds are reported rather than silent, and no warning or
// neighbour summary is ever dropped — only stale low-value telemetry.
//
// Usage:
//
//	cad3-overload [-cars 500] [-seed 42] [-vehicles 60] [-rounds 400]
//	              [-multipliers 1,2,4,8] [-capacity 128] [-slo 25ms]
//	              [-proc-cost 500us] [-stale-after 150ms]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"cad3/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-overload:", err)
		os.Exit(1)
	}
}

func run() error {
	cars := flag.Int("cars", 500, "corridor/background fleet size for the scenario build")
	seed := flag.Int64("seed", 42, "random seed")
	vehicles := flag.Int("vehicles", 60, "emulated vehicles offering load")
	rounds := flag.Int("rounds", 400, "50 ms batch windows driven per multiplier")
	multipliers := flag.String("multipliers", "", "comma-separated load multipliers (empty: 1,2,4,8)")
	capacity := flag.Int("capacity", 128, "per-partition admission credits")
	slo := flag.Duration("slo", 25*time.Millisecond, "adaptive batcher per-batch latency SLO")
	procCost := flag.Duration("proc-cost", 500*time.Microsecond, "modeled per-record detection cost")
	staleAfter := flag.Duration("stale-after", 150*time.Millisecond, "degraded-mode staleness threshold")
	flag.Parse()

	var mults []float64
	if *multipliers != "" {
		for _, s := range strings.Split(*multipliers, ",") {
			m, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
			if err != nil {
				return fmt.Errorf("parse multiplier %q: %w", s, err)
			}
			mults = append(mults, m)
		}
	}

	fmt.Printf("building scenario (cars=%d seed=%d)...\n", *cars, *seed)
	sc, err := experiments.BuildScenario(experiments.ScenarioConfig{Cars: *cars, Seed: *seed})
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	res, err := experiments.RunOverloadStudy(experiments.OverloadConfig{
		Scenario:       sc,
		Multipliers:    mults,
		Vehicles:       *vehicles,
		Rounds:         *rounds,
		FlowCapacity:   *capacity,
		BatchSLO:       *slo,
		ProcCost:       *procCost,
		ShedStaleAfter: *staleAfter,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\n=== Overload study: %d vehicles, %d rounds, capacity %d, SLO %v ===\n",
		*vehicles, *rounds, *capacity, *slo)
	fmt.Print(experiments.FormatOverloadResult(res))
	return nil
}
