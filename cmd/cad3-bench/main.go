// Command cad3-bench regenerates every table and figure of the paper's
// evaluation and prints them, the full-evaluation counterpart of the
// testing.B benchmarks in bench_test.go.
//
// Usage:
//
//	cad3-bench [-cars 500] [-seed 99] [-duration 2s] [-quick]
//	           [-debug-addr 127.0.0.1:6060]
//
// With -debug-addr set, /debug/pprof/ profiles the sweep while it runs
// and /health reports which section is in progress — see OBSERVABILITY.md
// and `make profile` for the CPU-profiling walkthrough.
package main

import (
	"flag"
	"fmt"
	"os"
	"sync/atomic"
	"time"

	"cad3/internal/experiments"
	"cad3/internal/obsv"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	cars := flag.Int("cars", 500, "corridor/background fleet size for the model scenario")
	seed := flag.Int64("seed", 42, "random seed")
	duration := flag.Duration("duration", 2*time.Second, "virtual duration of the network experiments")
	quick := flag.Bool("quick", false, "smaller sweeps for a fast smoke run")
	debugAddr := flag.String("debug-addr", "", "serve /health and pprof for the sweep on this address (empty: disabled)")
	flag.Parse()

	var current atomic.Value
	current.Store("startup")
	section := func(name string) {
		current.Store(name)
		fmt.Printf("\n=== %s ===\n", name)
	}
	if *debugAddr != "" {
		dbg, derr := obsv.ServeDebug(*debugAddr, obsv.DebugOptions{
			Health: func() any { return map[string]any{"section": current.Load()} },
		})
		if derr != nil {
			return derr
		}
		defer dbg.Close()
		fmt.Printf("debug endpoint on http://%s (/health /debug/pprof/)\n", dbg.Addr())
	}

	// Model scenario (Figures 2, 7, 8; Tables III, IV; ablations).
	sc, err := experiments.BuildScenario(experiments.ScenarioConfig{Cars: *cars, Seed: *seed})
	if err != nil {
		return fmt.Errorf("build scenario: %w", err)
	}

	section("Figure 2: speed profiles (measured, km/h by hour)")
	fmt.Print(experiments.FormatFigure2(experiments.RunFigure2(sc)))

	section("Table III: dataset statistics after filtering")
	fmt.Print(experiments.FormatTable3(experiments.RunTable3(sc)))

	section("Figure 7 + Table IV: centralized vs AD3 vs CAD3")
	modelRows, err := experiments.RunModelComparison(sc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatModelRows(modelRows))

	section("Figure 8: mesoscopic (driver-trip) timeline")
	meso, err := experiments.RunMesoscopicTimeline(sc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMesoscopic(meso))

	// Network experiments (Figure 6).
	pool, det, err := experiments.BuildLatencyInputs(*seed)
	if err != nil {
		return err
	}
	base := experiments.LatencyConfig{
		Duration: *duration,
		Seed:     *seed,
		Records:  pool,
		Detector: det,
	}
	counts := []int{8, 16, 32, 64, 128, 256}
	if *quick {
		counts = []int{8, 64}
	}

	section("Figure 6a/6c: latency and bandwidth vs vehicles")
	latRows, err := experiments.RunLatencyScaling(counts, base)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatLatencyResults(latRows))

	section("Figure 6b/6d: multi-RSU dissemination latency and bandwidth")
	vehiclesPerRSU := 128
	if *quick {
		vehiclesPerRSU = 32
	}
	rsuRows, err := experiments.RunMultiRSU(experiments.MultiRSUConfig{
		MotorwayRSUs:   4,
		VehiclesPerRSU: vehiclesPerRSU,
		Duration:       *duration,
		Seed:           *seed,
		Records:        pool,
		Detector:       det,
	})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatRSUResults(rsuRows))

	// Planning and analytic results (Tables V, VI; Equation 5; scale).
	scale := 1.0
	if *quick {
		scale = 0.1
	}
	section("Table V: RSU deployment plan (paper statistics)")
	fromStats, fromNet, err := experiments.RunTable5(scale, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable5(fromStats))
	section("Table V: RSU deployment plan (sampled synthetic network)")
	fmt.Print(experiments.FormatTable5(fromNet))

	section("Table VI: roadside infrastructure spacing")
	t6, err := experiments.RunTable6(0.2, *seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable6(t6))

	section("Equation 5: MAC channel-access time")
	mac, err := experiments.RunMACAnalysis()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMACRows(mac))

	section("City-scale capacity arithmetic")
	fmt.Print(experiments.FormatCityScale(experiments.RunCityScale(2_000_000)))

	// Ablations.
	section("Extension: frame loss vs distance (coverage-edge impact)")
	lossBands, err := experiments.RunLossImpact(experiments.LossConfig{Seed: *seed, Records: pool, Detector: det})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatLossBands(lossBands))

	section("Extension: inter-RSU backhaul link comparison")
	bh, err := experiments.RunBackhaulAnalysis(*seed)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatBackhaulRows(bh))

	section("Extension: dense-deployment interference management")
	intf, err := experiments.RunInterference(experiments.InterferenceConfig{Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatInterference(intf))

	section("Extension: live mobility with automatic handover")
	mob, err := experiments.RunMobileHandover(sc, experiments.MobilityConfig{Vehicles: 24, Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMobility(mob))

	section("Extension: multi-hop summary chain (mesoscopic carry-on)")
	chain, err := experiments.RunChainMobility(sc, experiments.ChainConfig{Seed: *seed})
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatChain(chain))

	section("Extension: standalone detector algorithms")
	dr, err := experiments.RunDetectorComparison(sc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatDetectorRows(dr))

	section("Ablation: collaboration weight (Equation 1)")
	w, err := experiments.RunCollabWeightSweep(sc, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatWeightRows(w))

	section("Ablation: summary depth")
	d, err := experiments.RunSummaryDepthSweep(sc, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatDepthRows(d))

	section("Ablation: decision-tree feature set")
	f, err := experiments.RunDTFeatureAblation(sc)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatFeatureRows(f))

	if !*quick {
		section("Ablation: micro-batch interval")
		biBase := base
		biBase.Vehicles = 64
		biBase.Duration = time.Second
		bi, err := experiments.RunBatchIntervalSweep(biBase, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatIntervalRows(bi))

		section("Ablation: consumer poll interval")
		pi, err := experiments.RunPollIntervalSweep(biBase, nil)
		if err != nil {
			return err
		}
		fmt.Print(experiments.FormatIntervalRows(pi))
	}
	return nil
}
