// Command cad3-dataset generates a synthetic Shenzhen-like driving
// dataset (the substitute for the paper's proprietary private-car data),
// runs the offline preprocessing pipeline (Equation 4 derivation +
// erroneous-record filtering), and prints the Table I schema sample,
// Table II feature sample, and Table III statistics. With -out it writes
// the filtered records as JSON lines.
//
// The -csv output feeds cad3-replay, which replays these records against
// a live cad3-rsu with wire trace contexts attached, so the offline
// dataset becomes live traffic with a measurable per-stage latency
// breakdown (see OBSERVABILITY.md).
//
// Usage:
//
//	cad3-dataset [-cars 200] [-seed 1] [-scale 0.05] [-out records.jsonl]
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-dataset:", err)
		os.Exit(1)
	}
}

func run() error {
	cars := flag.Int("cars", 200, "number of vehicles")
	seed := flag.Int64("seed", 1, "random seed")
	scale := flag.Float64("scale", 0.05, "road network scale (1.0 = full Table V network)")
	out := flag.String("out", "", "write filtered records as JSON lines to this file")
	csvOut := flag.String("csv", "", "write filtered records as CSV to this file (cad3-replay input)")
	mapMatch := flag.Bool("mapmatch", false, "recover road segments with the HMM map matcher instead of ground truth")
	flag.Parse()

	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: *scale, Seed: *seed})
	if err != nil {
		return err
	}
	gen, err := trace.NewGenerator(trace.GeneratorConfig{Network: net, Cars: *cars, Seed: *seed})
	if err != nil {
		return err
	}
	ds, err := gen.Generate()
	if err != nil {
		return err
	}

	fmt.Printf("=== Table I: raw schema sample ===\n")
	if len(ds.Trips) > 0 {
		b, _ := json.MarshalIndent(ds.Trips[0], "", "  ")
		fmt.Printf("trip: %s\n", b)
	}
	if len(ds.Trajectories) > 0 {
		b, _ := json.MarshalIndent(ds.Trajectories[0], "", "  ")
		fmt.Printf("trajectory point: %s\n", b)
	}

	opts := trace.DeriveOptions{}
	if *mapMatch {
		opts.UseMapMatching = true
		opts.Matcher = geo.NewMatcher(net, geo.MatcherConfig{})
	}
	recs, err := trace.DeriveRecords(net, ds.Trajectories, opts)
	if err != nil {
		return err
	}
	clean, filt := trace.FilterRecords(recs)
	fmt.Printf("\n=== Preprocessing ===\nderived %d records; filtered %d erroneous (speed=%d accel=%d negative=%d invalid=%d)\n",
		len(recs), filt.Dropped(), filt.DroppedSpeed, filt.DroppedAccel, filt.DroppedNegative, filt.DroppedInvalid)

	fmt.Printf("\n=== Table II: feature sample ===\n")
	if len(clean) > 0 {
		b, _ := json.MarshalIndent(clean[0], "", "  ")
		fmt.Printf("%s\n", b)
	}

	ts := trace.SummarizeTrips(ds.Trips)
	fmt.Printf("\n=== Trip summary (Table I distribution) ===\n")
	fmt.Printf("trips=%d, mean mileage %.0f m, mean fuel %.0f mL, mean duration %.0f s, fleet total %.1f km\n",
		ts.Trips, ts.MeanMileageM, ts.MeanFuelML, ts.MeanPeriodS, ts.TotalMileageKm)

	fmt.Printf("\n=== Table III: dataset statistics ===\n")
	fmt.Printf("%-16s %8s %8s %12s %14s\n", "region", "#cars", "#trips", "mean-speed", "#trajectories")
	for _, r := range trace.DatasetStats(clean, []geo.RoadType{geo.Motorway, geo.MotorwayLink}) {
		fmt.Printf("%-16s %8d %8d %12.1f %14d\n", r.Region, r.Cars, r.Trips, r.MeanSpeedKmh, r.Trajectories)
	}
	fmt.Printf("\nground-truth anomalous share: %.1f%%\n", trace.AnomalyShare(clean)*100)

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		if err := trace.WriteRecordsCSV(f, clean); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(clean), *csvOut)
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w := bufio.NewWriter(f)
		enc := json.NewEncoder(w)
		for _, r := range clean {
			if err := enc.Encode(r); err != nil {
				return err
			}
		}
		if err := w.Flush(); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", len(clean), *out)
	}
	return nil
}
