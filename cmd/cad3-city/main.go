// Command cad3-city runs the city-scale sharded simulation: a full
// synthetic city (thousands of RSU sites) partitioned across N worker
// shards — each a replicated broker cluster — replaying a large
// vehicle fleet on one shared virtual clock. Vehicles stream telemetry
// to the shard covering their map-matched position; shard-boundary
// crossings run the handover protocol, forwarding in-flight CO-DATA
// summaries through the cross-shard router; and the settlement ledger
// proves at the end that no warning and no handover summary was lost
// or double-counted.
//
// Usage:
//
//	cad3-city [-vehicles 100000] [-shards 8] [-replicas 3]
//	          [-minutes 30] [-scale 0.25] [-extent 12000]
//	          [-seed 42] [-faults]
//
// The command exits nonzero if the settlement ledger is dirty or the
// per-shard load skew exceeds 1.5x the median — it is the acceptance
// gate `make city` runs.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cad3/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-city:", err)
		os.Exit(1)
	}
}

func run() error {
	vehicles := flag.Int("vehicles", 100_000, "fleet size")
	shards := flag.Int("shards", 8, "worker shard count")
	replicas := flag.Int("replicas", 3, "broker replicas per shard")
	minutes := flag.Int("minutes", 30, "simulated span in minutes")
	scale := flag.Float64("scale", 0.25, "synthetic city street density")
	extent := flag.Float64("extent", 12_000, "city half-width in meters")
	seed := flag.Int64("seed", 42, "random seed (network + fleet)")
	faults := flag.Bool("faults", false, "kill and revive one replica per even shard mid-run")
	maxSkew := flag.Float64("max-skew", 1.5, "fail if shard dwell skew exceeds this factor of the median")
	flag.Parse()

	fmt.Printf("building city (scale=%.2f extent=%.0fm seed=%d) and replaying %d vehicles x %dmin over %d shards...\n",
		*scale, *extent, *seed, *vehicles, *minutes, *shards)
	start := time.Now()
	study, err := experiments.RunCityStudy(experiments.CityStudyConfig{
		Scale:        *scale,
		ExtentMeters: *extent,
		Shards:       *shards,
		Vehicles:     *vehicles,
		Replicas:     *replicas,
		Duration:     time.Duration(*minutes) * time.Minute,
		Seed:         *seed,
		Faults:       *faults,
	})
	if err != nil {
		return err
	}
	wall := time.Since(start).Round(10 * time.Millisecond)

	fmt.Println()
	fmt.Println(experiments.FormatCityStudy(study))
	r := study.Report
	speedup := float64(*minutes) * float64(time.Minute) / float64(time.Since(start))
	fmt.Printf("wall time: %v for %v simulated (%.0fx real time, %d sim events)\n",
		wall, time.Duration(*minutes)*time.Minute, speedup, r.SimEvents)

	if !r.SettlementClean() {
		return fmt.Errorf("settlement DIRTY: %d warnings lost, %d dup, %d false; %d handovers lost, %d dup, %d misrouted",
			r.WarningsLost, r.WarningsDup, r.FalseWarnings,
			r.HandoverLost, r.HandoverDups, r.HandoverMisrouted)
	}
	if r.TelemetryUnacked != 0 {
		return fmt.Errorf("%d telemetry records never acked", r.TelemetryUnacked)
	}
	if skew := r.Skew(); skew > *maxSkew {
		return fmt.Errorf("shard dwell skew %.2fx exceeds %.2fx: %v", skew, *maxSkew, r.ShardDwellMs)
	}
	if r.Sites < 100 {
		return fmt.Errorf("city placed only %d RSU sites (want >= 100)", r.Sites)
	}
	fmt.Println("acceptance: PASS")
	return nil
}
