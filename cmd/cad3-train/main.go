// Command cad3-train runs the offline stage (dataset generation,
// labelling, model training) once and persists the trained detectors as
// JSON bundles, so cad3-rsu nodes can load them at startup (-model)
// instead of retraining — the deployment split the paper's two-stage
// framework implies.
//
// Training is offline and carries no wire traces; once the bundles are
// served by cad3-rsu, the online pipeline's behaviour is observable via
// the node's -debug-addr endpoints (see OBSERVABILITY.md).
//
// Usage:
//
//	cad3-train -out models/ [-cars 500] [-seed 42]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"cad3/internal/core"
	"cad3/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cad3-train:", err)
		os.Exit(1)
	}
}

func run() error {
	out := flag.String("out", "models", "output directory for the model bundles")
	cars := flag.Int("cars", 500, "training scenario fleet size")
	seed := flag.Int64("seed", 42, "training scenario seed")
	flag.Parse()

	if err := os.MkdirAll(*out, 0o755); err != nil {
		return err
	}
	fmt.Printf("training (cars=%d seed=%d)...\n", *cars, *seed)
	sc, err := experiments.BuildScenario(experiments.ScenarioConfig{Cars: *cars, Seed: *seed})
	if err != nil {
		return fmt.Errorf("train: %w", err)
	}

	save := func(name string, det core.Detector) error {
		path := filepath.Join(*out, name+".json")
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := core.SaveDetector(f, det); err != nil {
			return fmt.Errorf("save %s: %w", name, err)
		}
		info, err := f.Stat()
		if err != nil {
			return err
		}
		fmt.Printf("wrote %-24s (%d bytes)\n", path, info.Size())
		return nil
	}
	if err := save("motorway-ad3", sc.Upstream); err != nil {
		return err
	}
	if err := save("motorway-link-ad3", sc.AD3); err != nil {
		return err
	}
	if err := save("motorway-link-cad3", sc.CAD3); err != nil {
		return err
	}
	if err := save("centralized", sc.Centralized); err != nil {
		return err
	}

	rows, err := experiments.RunModelComparison(sc)
	if err != nil {
		return err
	}
	fmt.Printf("\nheld-out performance of the saved models:\n%s", experiments.FormatModelRows(rows))
	return nil
}
