// Failover: failure injection on the live pipeline. CAD3 is designed to
// degrade gracefully — when the inter-RSU collaboration path (CO-DATA)
// fails, the link RSU keeps detecting with its standalone knowledge
// (Equation 1 collapses to the local Naive Bayes probability), and when
// broker partitions fail the consumers keep draining the healthy ones.
// This example breaks both and shows warnings still flowing.
package main

import (
	"fmt"
	"os"

	"cad3"
	"cad3/internal/core"
	"cad3/internal/stream"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "failover:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("training models...")
	sc, err := cad3.BuildScenario(cad3.ScenarioConfig{Cars: 300, Seed: 13})
	if err != nil {
		return err
	}

	broker := cad3.NewBroker()
	node, err := cad3.NewRSU(cad3.RSUConfig{
		Name: "Motorway-Link RSU", Road: 2, Detector: sc.CAD3,
		Client: cad3.NewInProcClient(broker),
	})
	if err != nil {
		return err
	}
	producer, err := stream.NewProducer(cad3.NewInProcClient(broker), cad3.TopicInData)
	if err != nil {
		return err
	}
	warnings, err := stream.NewConsumer(cad3.NewInProcClient(broker), cad3.TopicOutData, 0)
	if err != nil {
		return err
	}

	send := func(rec cad3.Record) error {
		payload, err := core.EncodeRecord(rec)
		if err != nil {
			return err
		}
		_, _, err = producer.Send(nil, payload)
		return err
	}
	abnormal := sc.TestLink[0]
	abnormal.Speed = 95 // wildly abnormal for a motorway link

	// Scenario 1: CO-DATA fully down — collaboration lost, detection
	// continues (fallback to standalone behaviour).
	fmt.Println("\nscenario 1: CO-DATA (collaboration) partitions down")
	for p := int32(0); p < 3; p++ {
		broker.SetPartitionDown(cad3.TopicCoData, p, true)
	}
	if err := send(abnormal); err != nil {
		return err
	}
	if _, err := node.Step(); err != nil {
		return fmt.Errorf("step with CO-DATA down: %w", err)
	}
	st := node.Stats()
	fmt.Printf("  records=%d warnings=%d prior-misses=%d -> detection survived without priors\n",
		st.Records, st.Warnings, st.PriorMisses)

	// Scenario 2: one IN-DATA partition down — the engine drains the
	// healthy partitions and reports the failure.
	fmt.Println("\nscenario 2: one IN-DATA partition down")
	broker.SetPartitionDown(cad3.TopicInData, 0, true)
	delivered := 0
	for i := 0; i < 6; i++ {
		rec := abnormal
		rec.Car = cad3.CarID(100 + i)
		if err := send(rec); err == nil {
			delivered++
		}
	}
	if _, err := node.Step(); err != nil {
		fmt.Printf("  step reported (expected) partial failure: %v\n", err)
	}
	st = node.Stats()
	fmt.Printf("  %d/%d records reached healthy partitions; warnings so far: %d\n",
		delivered, 6, st.Warnings)

	// Scenario 3: recovery.
	fmt.Println("\nscenario 3: partitions recover")
	broker.SetPartitionDown(cad3.TopicInData, 0, false)
	for p := int32(0); p < 3; p++ {
		broker.SetPartitionDown(cad3.TopicCoData, p, false)
	}
	rec := abnormal
	rec.Car = 200
	if err := send(rec); err != nil {
		return err
	}
	if _, err := node.Step(); err != nil {
		return err
	}
	msgs, err := warnings.Poll(64)
	if err != nil {
		return err
	}
	fmt.Printf("  pipeline healthy again: %d warnings drained, node stats %+v\n",
		len(msgs), node.Stats().Warnings)
	if node.Stats().Warnings == 0 {
		return fmt.Errorf("no warnings produced across the failure scenarios")
	}
	fmt.Println("\ndone: the edge pipeline degrades gracefully and recovers")
	return nil
}
