// Quickstart: generate a synthetic driving dataset, train the three
// detection models (centralized, AD3, CAD3), and reproduce the paper's
// headline comparison (Figure 7 / Table IV) in a few lines of the public
// API.
package main

import (
	"fmt"
	"os"

	"cad3"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("building scenario (synthetic Shenzhen corridor + city background)...")
	sc, err := cad3.BuildScenario(cad3.ScenarioConfig{Cars: 300, Seed: 7})
	if err != nil {
		return err
	}
	fmt.Printf("dataset: %d training records, %d test records (%d on the motorway link)\n",
		len(sc.Train), len(sc.Test), len(sc.TestLink))

	rows, err := cad3.RunModelComparison(sc)
	if err != nil {
		return err
	}
	fmt.Println("\nFigure 7 / Table IV reproduction:")
	fmt.Print(cad3.FormatModelRows(rows))

	// Detect a single record by hand: a car crawling at 90 km/h where
	// the link's normal traffic flows at ~35 km/h (the paper's §IV-C
	// example).
	rec := sc.TestLink[0]
	rec.Speed = 90
	det, err := sc.CAD3.Detect(rec, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\n90 km/h on the motorway link -> class=%d (0=abnormal), P(normal)=%.3f\n",
		det.Class, det.PNormal)

	// The fitted collaborative tree is small enough to read — the
	// explainability the paper argues matters for road safety.
	fmt.Println("\nCAD3 decision tree:")
	fmt.Print(sc.CAD3.DumpTree())
	return nil
}
