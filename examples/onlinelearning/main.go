// Onlinelearning: the continuously learning RSU. The paper says each
// edge node "learns the normal behavior over time"; this example takes
// that literally with OnlineAD3 — an RSU that folds every observed record
// into running road statistics and an incrementally trained Naive Bayes —
// and shows it adapting when the road's condition drifts (a lane closure
// halves the normal speed): the same absolute speed flips from abnormal
// to normal as the learned context changes.
package main

import (
	"fmt"
	"os"

	"cad3"
	"cad3/internal/geo"
	"cad3/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "onlinelearning:", err)
		os.Exit(1)
	}
}

func run() error {
	online, err := cad3.NewOnlineAD3(cad3.MotorwayLink, 0, 150)
	if err != nil {
		return err
	}

	mk := func(speed, accel float64) cad3.Record {
		return cad3.Record{
			Car: 1, Road: 2, RoadType: geo.MotorwayLink,
			Speed: speed, Accel: accel, Hour: 10, Day: 4, RoadMeanSpeed: 35,
		}
	}
	probe := mk(22, 0) // 22 km/h: crawling on a free-flowing link

	// Phase 1: normal traffic at ~35 km/h (sigma ~4), with ~25% injected
	// anomalies so both classes exist.
	fmt.Println("phase 1: free-flowing link (~35 km/h)...")
	feed(online, 35, 4, 1200)
	det, err := online.Detect(probe, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  22 km/h while traffic flows at 35: class=%d P(normal)=%.3f (abnormal crawling)\n",
		det.Class, det.PNormal)
	if det.Class != cad3.ClassAbnormal {
		return fmt.Errorf("expected 22 km/h to be abnormal on the free-flowing link")
	}

	// Phase 2: a lane closure halves the road's speed. The online model
	// keeps learning; after enough drifted traffic, 22 km/h IS the road's
	// normal behaviour.
	fmt.Println("phase 2: lane closure, traffic drops to ~20 km/h; the RSU keeps learning...")
	feed(online, 20, 3, 12000)
	det, err = online.Detect(probe, nil)
	if err != nil {
		return err
	}
	fmt.Printf("  22 km/h while traffic crawls at 20: class=%d P(normal)=%.3f (now normal)\n",
		det.Class, det.PNormal)
	if det.Class != cad3.ClassNormal {
		return fmt.Errorf("expected 22 km/h to be normal after the drift")
	}

	fmt.Printf("\nobservations folded in: %d (no retraining pass ever ran)\n", online.Observations())
	fmt.Println("done: the edge model followed the road's changing context")
	return nil
}

// feed streams n records of Gaussian-ish traffic around the given mean to
// the online detector, with a deterministic anomaly mix.
func feed(online *cad3.OnlineAD3, mean, std float64, n int) {
	offsets := []float64{-0.8, -0.3, 0, 0.2, 0.5, -0.5, 0.9, -1.0, 2.6, -2.6}
	for i := 0; i < n; i++ {
		o := offsets[i%len(offsets)]
		rec := trace.Record{
			Car: trace.CarID(i%50 + 1), Road: 2, RoadType: geo.MotorwayLink,
			Speed: mean + o*std, Accel: o * 0.3, Hour: 10, Day: 4, RoadMeanSpeed: mean,
		}
		if rec.Speed < 0 {
			rec.Speed = 0
		}
		_ = online.Observe(rec)
	}
}
