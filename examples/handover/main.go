// Handover: the paper's microscopic use case end-to-end on real TCP
// brokers and wall-clock timers. Two RSUs run side by side — a motorway
// RSU (AD3) and a motorway-link RSU (CAD3). A fleet of vehicles streams
// telemetry to the motorway RSU at 10 Hz; mid-run the vehicles hand over
// to the link RSU, the motorway RSU forwards their prediction summaries
// over CO-DATA, and the link RSU's collaborative detector uses them as
// priors (Figure 3's workflow).
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"cad3"
	"cad3/internal/geo"
	"cad3/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "handover:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("training models...")
	sc, err := cad3.BuildScenario(cad3.ScenarioConfig{Cars: 300, Seed: 11})
	if err != nil {
		return err
	}

	// Two RSUs, each with its own broker served over TCP.
	mwBroker, linkBroker := cad3.NewBroker(), cad3.NewBroker()
	mwServer, err := cad3.Serve(mwBroker, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer mwServer.Close()
	linkServer, err := cad3.Serve(linkBroker, "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer linkServer.Close()

	mwRSU, err := cad3.NewRSU(cad3.RSUConfig{
		Name: "Motorway RSU", Road: 1, Detector: sc.Upstream,
		Client: cad3.NewInProcClient(mwBroker),
	})
	if err != nil {
		return err
	}
	linkRSU, err := cad3.NewRSU(cad3.RSUConfig{
		Name: "Motorway-Link RSU", Road: 2, Detector: sc.CAD3,
		Client: cad3.NewInProcClient(linkBroker),
	})
	if err != nil {
		return err
	}
	// The motorway RSU forwards summaries to the link RSU over TCP.
	neighbor, err := cad3.Dial(linkServer.Addr())
	if err != nil {
		return err
	}
	defer neighbor.Close()
	if err := mwRSU.AddNeighbor("link", neighbor); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() { _ = mwRSU.Run(ctx) }()
	go func() { _ = linkRSU.Run(ctx) }()

	// Phase 1: vehicles on the motorway. Use motorway test records so
	// the motorway RSU accumulates realistic prediction histories.
	const vehicles = 12
	mwRecords := trace.RecordsOfType(sc.Test, geo.Motorway)
	mwClients := make([]cad3.Client, vehicles)
	for i := range mwClients {
		c, err := cad3.Dial(mwServer.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		mwClients[i] = c
	}
	fleet, err := cad3.NewFleet(vehicles, mwRecords, func(i int) cad3.Client { return mwClients[i] },
		cad3.VehicleConfig{Loop: true})
	if err != nil {
		return err
	}
	fmt.Printf("phase 1: %d vehicles on the motorway for 3 s...\n", vehicles)
	phase1, cancel1 := context.WithTimeout(ctx, 3*time.Second)
	_ = fleet.Run(phase1)
	cancel1()
	fmt.Printf("  motorway RSU: %+v\n", brief(mwRSU.Stats()))

	// Handover: the motorway RSU forwards each vehicle's summary.
	fmt.Println("handover: forwarding prediction summaries to the link RSU...")
	for i := 1; i <= vehicles; i++ {
		if err := mwRSU.Handover(cad3.CarID(i), "link"); err != nil {
			return err
		}
	}

	// Phase 2: the same vehicles on the motorway link.
	linkRecords := sc.TestLink
	linkClients := make([]cad3.Client, vehicles)
	for i := range linkClients {
		c, err := cad3.Dial(linkServer.Addr())
		if err != nil {
			return err
		}
		defer c.Close()
		linkClients[i] = c
	}
	fleet2, err := cad3.NewFleet(vehicles, linkRecords, func(i int) cad3.Client { return linkClients[i] },
		cad3.VehicleConfig{Loop: true})
	if err != nil {
		return err
	}
	fmt.Printf("phase 2: %d vehicles on the motorway link for 3 s...\n", vehicles)
	phase2, cancel2 := context.WithTimeout(ctx, 3*time.Second)
	_ = fleet2.Run(phase2)
	cancel2()
	time.Sleep(100 * time.Millisecond) // let the engine drain

	st := linkRSU.Stats()
	fmt.Printf("  link RSU: %+v\n", brief(st))
	fmt.Printf("  collaborative priors used on %d of %d records\n", st.PriorHits, st.Records)

	var withLatency int
	var meanTotal time.Duration
	for _, v := range fleet2.Vehicles() {
		rep := v.Latencies()
		if rep.Total.Count > 0 {
			withLatency += rep.Total.Count
			meanTotal += rep.Total.Mean
		}
	}
	if withLatency > 0 {
		fmt.Printf("  %d warnings delivered end-to-end (wall clock, in-process pipeline)\n", withLatency)
	}
	if st.SummariesReceived != int64(vehicles) {
		return fmt.Errorf("expected %d summaries, link RSU received %d", vehicles, st.SummariesReceived)
	}
	fmt.Println("done: driver-awareness carried across the RSU boundary")
	return nil
}

func brief(st cad3.RSUStats) string {
	return fmt.Sprintf("records=%d warnings=%d summaries(rx/tx)=%d/%d",
		st.Records, st.Warnings, st.SummariesReceived, st.SummariesSent)
}
