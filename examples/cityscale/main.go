// Cityscale: the macroscopic feasibility study (§VI-D2, §VII-B/D,
// Tables V-VI, Figure 9's statistics). Builds the full-scale synthetic
// Shenzhen network, plans the RSU deployment, checks the DSRC channel
// budget with the Equation 5 MAC model, and prints the city-scale
// capacity arithmetic.
package main

import (
	"fmt"
	"os"

	"cad3"
	"cad3/internal/experiments"
	"cad3/internal/geo"
	"cad3/internal/netem"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "cityscale:", err)
		os.Exit(1)
	}
}

func run() error {
	fmt.Println("building the full-scale synthetic Shenzhen network (Table V statistics)...")
	net, err := cad3.BuildNetwork(cad3.NetworkConfig{Scale: 1.0, Seed: 2026})
	if err != nil {
		return err
	}
	fmt.Printf("network: %d road segments\n\n", net.SegmentCount())

	fmt.Println("Table V: RSU deployment plan (measured from the sampled network)")
	plan := geo.PlanRSUsFromNetwork(net, 0)
	fmt.Print(experiments.FormatTable5(plan))
	fmt.Printf("\npaper-statistics plan total: %d RSUs\n\n", geo.TotalRSUs(cad3.PlanRSUs()))

	fmt.Println("Table VI: co-location with existing roadside infrastructure")
	t6, err := experiments.RunTable6(0.2, 2026)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable6(t6))

	fmt.Println("\nEquation 5: DSRC channel-access budget")
	mac, err := experiments.RunMACAnalysis()
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatMACRows(mac))

	model := netem.MACModel{}
	ok, t, err := model.FitsReportingPeriod(256, netem.ReportBytes, netem.MCS8)
	if err != nil {
		return err
	}
	fmt.Printf("\n256 vehicles per RSU at MCS 8: %v in one 100 ms reporting period (access time %v)\n", ok, t)

	fmt.Println("\nCity-scale capacity (peak-hour Shenzhen, 2M concurrent vehicles):")
	fmt.Print(experiments.FormatCityScale(experiments.RunCityScale(2_000_000)))
	return nil
}
