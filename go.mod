module cad3

go 1.22
