// Package metrics provides the instrumentation the paper's evaluation
// reports: end-to-end latency decomposed into transmission, queuing,
// processing, and dissemination components (Figure 6a/6b), and bandwidth
// accounting per vehicle and per RSU (Figure 6c/6d).
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// LatencyBreakdown decomposes one warning's end-to-end latency — the time
// between a vehicle transmitting a status packet and the subsequent
// warning dissemination (the paper's definition in §I).
type LatencyBreakdown struct {
	// Tx is the network transmission delay (shaping + MAC + airtime).
	Tx time.Duration
	// Queue is the wait between broker arrival and the micro-batch that
	// processed the record.
	Queue time.Duration
	// Processing is the detection compute time within the batch.
	Processing time.Duration
	// Dissemination is the delay from warning production to the vehicle's
	// consumer pulling it.
	Dissemination time.Duration
}

// Total returns the end-to-end latency.
func (l LatencyBreakdown) Total() time.Duration {
	return l.Tx + l.Queue + l.Processing + l.Dissemination
}

// Summary describes a latency sample set.
type Summary struct {
	Count  int
	Mean   time.Duration
	Std    time.Duration
	Min    time.Duration
	Max    time.Duration
	P50    time.Duration
	P95    time.Duration
	StdErr time.Duration // standard error of the mean (the paper's bars)
}

// Summarize computes the summary of a duration sample.
func Summarize(durs []time.Duration) Summary {
	if len(durs) == 0 {
		return Summary{}
	}
	sorted := make([]time.Duration, len(durs))
	copy(sorted, durs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	var sum, sumSq float64
	for _, d := range sorted {
		f := float64(d)
		sum += f
		sumSq += f * f
	}
	n := float64(len(sorted))
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	std := math.Sqrt(variance)
	return Summary{
		Count:  len(sorted),
		Mean:   time.Duration(mean),
		Std:    time.Duration(std),
		Min:    sorted[0],
		Max:    sorted[len(sorted)-1],
		P50:    quantile(sorted, 0.50),
		P95:    quantile(sorted, 0.95),
		StdErr: time.Duration(std / math.Sqrt(n)),
	}
}

func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return time.Duration(float64(sorted[lo])*(1-frac) + float64(sorted[hi])*frac)
}

// String implements fmt.Stringer.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%s ±%s p50=%s p95=%s max=%s",
		s.Count, s.Mean.Round(time.Microsecond), s.StdErr.Round(time.Microsecond),
		s.P50.Round(time.Microsecond), s.P95.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// LatencyRecorder accumulates latency breakdowns; safe for concurrent use.
type LatencyRecorder struct {
	mu      sync.Mutex
	samples []LatencyBreakdown
}

// NewLatencyRecorder returns an empty recorder.
func NewLatencyRecorder() *LatencyRecorder { return &LatencyRecorder{} }

// Record appends one breakdown.
func (r *LatencyRecorder) Record(l LatencyBreakdown) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.samples = append(r.samples, l)
}

// Count returns the number of recorded samples.
func (r *LatencyRecorder) Count() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.samples)
}

// LatencyReport summarises every component plus the total.
type LatencyReport struct {
	Tx, Queue, Processing, Dissemination, Total Summary
}

// Report summarises the recorded samples per component.
func (r *LatencyRecorder) Report() LatencyReport {
	r.mu.Lock()
	samples := make([]LatencyBreakdown, len(r.samples))
	copy(samples, r.samples)
	r.mu.Unlock()

	pick := func(f func(LatencyBreakdown) time.Duration) []time.Duration {
		out := make([]time.Duration, len(samples))
		for i, s := range samples {
			out[i] = f(s)
		}
		return out
	}
	return LatencyReport{
		Tx:            Summarize(pick(func(l LatencyBreakdown) time.Duration { return l.Tx })),
		Queue:         Summarize(pick(func(l LatencyBreakdown) time.Duration { return l.Queue })),
		Processing:    Summarize(pick(func(l LatencyBreakdown) time.Duration { return l.Processing })),
		Dissemination: Summarize(pick(func(l LatencyBreakdown) time.Duration { return l.Dissemination })),
		Total:         Summarize(pick(LatencyBreakdown.Total)),
	}
}

// CounterSet is a set of named monotonic counters.
//
// Deprecated: the live observability registry (internal/obsv.Registry)
// absorbed this role — it offers the same monotonic named counters as
// lock-free atomics plus gauges, histograms, snapshot/reset/restore and
// the /metrics debug endpoint. The RSU supervisor and the chaos study now
// publish there; CounterSet remains only for code that wants a tiny
// mutex-guarded map without the registry.
// Safe for concurrent use.
type CounterSet struct {
	mu       sync.Mutex
	counters map[string]int64
}

// NewCounterSet returns an empty counter set.
func NewCounterSet() *CounterSet {
	return &CounterSet{counters: make(map[string]int64)}
}

// Add increments the named counter by delta (no-op for delta <= 0:
// counters are monotonic).
func (c *CounterSet) Add(name string, delta int64) {
	if delta <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.counters[name] += delta
}

// Get returns the named counter's value (zero if never incremented).
func (c *CounterSet) Get(name string) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.counters[name]
}

// Snapshot returns a copy of every counter.
func (c *CounterSet) Snapshot() map[string]int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.counters))
	for k, v := range c.counters {
		out[k] = v
	}
	return out
}

// Names returns the counter names, sorted.
func (c *CounterSet) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.counters))
	for k := range c.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}

// String renders the counters as sorted "name=value" pairs.
func (c *CounterSet) String() string {
	snap := c.Snapshot()
	names := make([]string, 0, len(snap))
	for k := range snap {
		names = append(names, k)
	}
	sort.Strings(names)
	var b []byte
	for i, k := range names {
		if i > 0 {
			b = append(b, ' ')
		}
		b = fmt.Appendf(b, "%s=%d", k, snap[k])
	}
	return string(b)
}

// BandwidthMeter accumulates byte counts over a time window and converts
// them to rates. Safe for concurrent use.
type BandwidthMeter struct {
	mu    sync.Mutex
	bytes int64
	first time.Time
	last  time.Time
}

// NewBandwidthMeter returns an empty meter.
func NewBandwidthMeter() *BandwidthMeter { return &BandwidthMeter{} }

// Add records n bytes observed at the given instant.
func (m *BandwidthMeter) Add(n int, at time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.bytes += int64(n)
	if m.first.IsZero() || at.Before(m.first) {
		m.first = at
	}
	if at.After(m.last) {
		m.last = at
	}
}

// Bytes returns the cumulative byte count.
func (m *BandwidthMeter) Bytes() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.bytes
}

// RateBitsPerSec returns the average rate over the observed window; zero
// if fewer than two distinct instants were observed.
func (m *BandwidthMeter) RateBitsPerSec() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	window := m.last.Sub(m.first).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(m.bytes) * 8 / window
}
