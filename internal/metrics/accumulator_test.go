package metrics

import (
	"math"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestAccumulatorMatchesSummarize is the equivalence proof: the streaming
// Welford moments must agree with the offline sort-and-sum Summarize on
// every shared field, across spiky, uniform and tiny samples.
func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]time.Duration{
		"single":  {1500 * time.Microsecond},
		"pair":    {time.Millisecond, 3 * time.Millisecond},
		"uniform": nil, // filled below
		"spiky":   nil,
	}
	uniform := make([]time.Duration, 5000)
	for i := range uniform {
		uniform[i] = time.Duration(rng.Int63n(int64(80 * time.Millisecond)))
	}
	cases["uniform"] = uniform
	spiky := make([]time.Duration, 3000)
	for i := range spiky {
		spiky[i] = time.Duration(rng.Int63n(int64(2 * time.Millisecond)))
		if i%100 == 0 {
			spiky[i] = 3*time.Second + time.Duration(rng.Int63n(int64(time.Second)))
		}
	}
	cases["spiky"] = spiky

	for name, durs := range cases {
		t.Run(name, func(t *testing.T) {
			acc := NewAccumulator()
			for _, d := range durs {
				acc.Observe(d)
			}
			want := Summarize(durs)
			got := acc.Summary()

			if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
				t.Fatalf("count/min/max mismatch:\n got %+v\nwant %+v", got, want)
			}
			closeEnough := func(field string, a, b time.Duration) {
				// One-pass float accumulation vs two-pass: allow 1 ns per
				// thousand samples of drift.
				tol := 1 + time.Duration(len(durs)/1000)
				if d := a - b; d < -tol || d > tol {
					t.Errorf("%s: streaming %v vs offline %v", field, a, b)
				}
			}
			closeEnough("mean", got.Mean, want.Mean)
			closeEnough("std", got.Std, want.Std)
			closeEnough("stderr", got.StdErr, want.StdErr)
		})
	}
}

func TestAccumulatorEmptyAndReset(t *testing.T) {
	acc := NewAccumulator()
	if s := acc.Summary(); s != (Summary{}) {
		t.Fatalf("empty summary %+v", s)
	}
	acc.Observe(time.Second)
	acc.Reset()
	if acc.Count() != 0 || acc.Summary() != (Summary{}) {
		t.Fatal("reset did not clear")
	}
}

func TestAccumulatorConcurrent(t *testing.T) {
	acc := NewAccumulator()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 1; i <= 1000; i++ {
				acc.Observe(time.Duration(i) * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s := acc.Summary()
	if s.Count != 8000 {
		t.Fatalf("count %d", s.Count)
	}
	wantMean := 500500 * float64(time.Microsecond) / 1000
	if math.Abs(float64(s.Mean)-wantMean) > float64(time.Microsecond) {
		t.Fatalf("mean %v, want ~%v", s.Mean, time.Duration(wantMean))
	}
}

// TestAccumulatorMerge checks the pairwise combination: splitting a sample
// across shards and merging must match observing it all in one stream.
func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	whole := NewAccumulator()
	shards := []*Accumulator{NewAccumulator(), NewAccumulator(), NewAccumulator()}
	for i := 0; i < 3000; i++ {
		d := time.Duration(rng.Int63n(int64(40 * time.Millisecond)))
		whole.Observe(d)
		shards[i%len(shards)].Observe(d)
	}
	merged := NewAccumulator()
	merged.Merge(shards[0])
	merged.Merge(shards[1])
	merged.Merge(shards[2])
	merged.Merge(NewAccumulator()) // empty shard is a no-op

	got, want := merged.Summary(), whole.Summary()
	if got.Count != want.Count || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("count/min/max mismatch:\n got %+v\nwant %+v", got, want)
	}
	closeEnough := func(field string, a, b time.Duration) {
		if d := a - b; d < -5 || d > 5 {
			t.Errorf("%s: merged %v vs single-stream %v", field, a, b)
		}
	}
	closeEnough("mean", got.Mean, want.Mean)
	closeEnough("std", got.Std, want.Std)
	if merged.Sum() != whole.Sum() {
		t.Errorf("sum: merged %v vs %v", merged.Sum(), whole.Sum())
	}
}

func TestBreakdownAccumulator(t *testing.T) {
	ba := NewBreakdownAccumulator()
	rec := NewLatencyRecorder()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		lb := LatencyBreakdown{
			Tx:            time.Duration(rng.Int63n(int64(5 * time.Millisecond))),
			Queue:         time.Duration(rng.Int63n(int64(50 * time.Millisecond))),
			Processing:    time.Duration(rng.Int63n(int64(12 * time.Millisecond))),
			Dissemination: time.Duration(rng.Int63n(int64(15 * time.Millisecond))),
		}
		ba.Observe(lb)
		rec.Record(lb)
	}
	live := ba.Report()
	offline := rec.Report()
	check := func(name string, a, b Summary) {
		if a.Count != b.Count {
			t.Fatalf("%s count %d vs %d", name, a.Count, b.Count)
		}
		if d := a.Mean - b.Mean; d < -time.Microsecond || d > time.Microsecond {
			t.Errorf("%s mean %v vs %v", name, a.Mean, b.Mean)
		}
	}
	check("tx", live.Tx, offline.Tx)
	check("queue", live.Queue, offline.Queue)
	check("processing", live.Processing, offline.Processing)
	check("dissemination", live.Dissemination, offline.Dissemination)
	check("total", live.Total, offline.Total)
}
