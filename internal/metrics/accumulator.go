package metrics

import (
	"math"
	"sync"
	"time"
)

// Accumulator is a streaming one-pass summary over durations using
// Welford's online algorithm: mean and variance update in O(1) per sample
// with no retained slice, no per-call sort, and no catastrophic
// cancellation. The live observability path (obsv-traced latency
// breakdowns, the latency study's inner loop) feeds it per warning where
// Summarize would re-sort and re-sum the whole sample set on every call.
//
// Quantiles need the full sample (or a sketch); Accumulator deliberately
// reports none — the live quantile approximation is the obsv histogram's
// Quantile. Everything else in Summary (count, mean, std, min, max,
// stderr) matches Summarize exactly; see TestAccumulatorMatchesSummarize.
//
// Safe for concurrent use.
type Accumulator struct {
	mu    sync.Mutex
	n     int64
	mean  float64 // running mean, ns
	m2    float64 // sum of squared deviations from the running mean
	min   time.Duration
	max   time.Duration
	total float64 // running sum, ns (for exact-total reporting)
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator { return &Accumulator{} }

// Observe folds one duration into the summary.
func (a *Accumulator) Observe(d time.Duration) {
	f := float64(d)
	a.mu.Lock()
	a.n++
	if a.n == 1 || d < a.min {
		a.min = d
	}
	if d > a.max {
		a.max = d
	}
	delta := f - a.mean
	a.mean += delta / float64(a.n)
	a.m2 += delta * (f - a.mean)
	a.total += f
	a.mu.Unlock()
}

// Count returns the number of observations.
func (a *Accumulator) Count() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return int(a.n)
}

// Sum returns the running total.
func (a *Accumulator) Sum() time.Duration {
	a.mu.Lock()
	defer a.mu.Unlock()
	return time.Duration(a.total)
}

// Summary renders the streamed moments as a Summary. P50/P95 are zero:
// quantiles are not streamable without a sketch (use the obsv histogram's
// Quantile for live approximations).
func (a *Accumulator) Summary() Summary {
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		return Summary{}
	}
	// Summarize computes the population variance (sumSq/n - mean^2);
	// Welford's M2/n is the same quantity, computed stably.
	std := math.Sqrt(a.m2 / float64(a.n))
	return Summary{
		Count:  int(a.n),
		Mean:   time.Duration(a.mean),
		Std:    time.Duration(std),
		Min:    a.min,
		Max:    a.max,
		StdErr: time.Duration(std / math.Sqrt(float64(a.n))),
	}
}

// Merge folds another accumulator's summary into this one (Chan et al.'s
// pairwise variance combination — the parallel form of Welford's update).
// The result is as if every sample observed by other had been observed
// here. other is read under its own lock; merging an accumulator into
// itself is not supported.
func (a *Accumulator) Merge(other *Accumulator) {
	other.mu.Lock()
	n2, mean2, m22 := other.n, other.mean, other.m2
	min2, max2, total2 := other.min, other.max, other.total
	other.mu.Unlock()
	if n2 == 0 {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.n == 0 {
		a.n, a.mean, a.m2, a.min, a.max, a.total = n2, mean2, m22, min2, max2, total2
		return
	}
	n1, mean1, m21 := a.n, a.mean, a.m2
	n := n1 + n2
	delta := mean2 - mean1
	a.mean = mean1 + delta*float64(n2)/float64(n)
	a.m2 = m21 + m22 + delta*delta*float64(n1)*float64(n2)/float64(n)
	a.n = n
	a.total += total2
	if min2 < a.min {
		a.min = min2
	}
	if max2 > a.max {
		a.max = max2
	}
}

// Reset clears the accumulator.
func (a *Accumulator) Reset() {
	a.mu.Lock()
	a.n, a.mean, a.m2, a.min, a.max, a.total = 0, 0, 0, 0, 0, 0
	a.mu.Unlock()
}

// BreakdownAccumulator streams per-component latency summaries — the live
// counterpart of LatencyRecorder.Report, which re-summarises its whole
// retained sample slice on every call.
type BreakdownAccumulator struct {
	Tx, Queue, Processing, Dissemination, Total Accumulator
}

// NewBreakdownAccumulator returns an empty accumulator set.
func NewBreakdownAccumulator() *BreakdownAccumulator { return &BreakdownAccumulator{} }

// Observe folds one breakdown into every component stream.
func (b *BreakdownAccumulator) Observe(l LatencyBreakdown) {
	b.Tx.Observe(l.Tx)
	b.Queue.Observe(l.Queue)
	b.Processing.Observe(l.Processing)
	b.Dissemination.Observe(l.Dissemination)
	b.Total.Observe(l.Total())
}

// Count returns the number of observed breakdowns.
func (b *BreakdownAccumulator) Count() int { return b.Total.Count() }

// Merge folds another breakdown accumulator's streams into this one (the
// fleet-aggregation path: per-vehicle accumulators merge into one report).
func (b *BreakdownAccumulator) Merge(other *BreakdownAccumulator) {
	b.Tx.Merge(&other.Tx)
	b.Queue.Merge(&other.Queue)
	b.Processing.Merge(&other.Processing)
	b.Dissemination.Merge(&other.Dissemination)
	b.Total.Merge(&other.Total)
}

// Report renders the per-component summaries (quantiles zero; see
// Accumulator.Summary).
func (b *BreakdownAccumulator) Report() LatencyReport {
	return LatencyReport{
		Tx:            b.Tx.Summary(),
		Queue:         b.Queue.Summary(),
		Processing:    b.Processing.Summary(),
		Dissemination: b.Dissemination.Summary(),
		Total:         b.Total.Summary(),
	}
}
