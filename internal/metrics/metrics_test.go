package metrics

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestSummarizeKnownValues(t *testing.T) {
	durs := []time.Duration{
		10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond,
		40 * time.Millisecond, 50 * time.Millisecond,
	}
	s := Summarize(durs)
	if s.Count != 5 {
		t.Errorf("Count = %d", s.Count)
	}
	if s.Mean != 30*time.Millisecond {
		t.Errorf("Mean = %v", s.Mean)
	}
	if s.Min != 10*time.Millisecond || s.Max != 50*time.Millisecond {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	if s.P50 != 30*time.Millisecond {
		t.Errorf("P50 = %v", s.P50)
	}
	wantStd := time.Duration(math.Sqrt(200) * float64(time.Millisecond))
	if diff := s.Std - wantStd; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("Std = %v, want ~%v", s.Std, wantStd)
	}
	if s.StdErr >= s.Std {
		t.Errorf("StdErr %v should be below Std %v for n>1", s.StdErr, s.Std)
	}
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.Count != 0 || s.Mean != 0 || s.Max != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestSummarizeInvariantsProperty(t *testing.T) {
	f := func(raw []uint32) bool {
		if len(raw) == 0 {
			return true
		}
		durs := make([]time.Duration, len(raw))
		for i, v := range raw {
			durs[i] = time.Duration(v)
		}
		s := Summarize(durs)
		return s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.Max &&
			s.Min <= s.Mean && s.Mean <= s.Max && s.Std >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLatencyBreakdownTotal(t *testing.T) {
	l := LatencyBreakdown{
		Tx:            3 * time.Millisecond,
		Queue:         20 * time.Millisecond,
		Processing:    9 * time.Millisecond,
		Dissemination: 15 * time.Millisecond,
	}
	if l.Total() != 47*time.Millisecond {
		t.Errorf("Total = %v", l.Total())
	}
}

func TestLatencyRecorderReport(t *testing.T) {
	r := NewLatencyRecorder()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			r.Record(LatencyBreakdown{
				Tx:            time.Duration(i) * time.Millisecond,
				Processing:    5 * time.Millisecond,
				Dissemination: 10 * time.Millisecond,
			})
		}(i)
	}
	wg.Wait()
	if r.Count() != 10 {
		t.Fatalf("Count = %d", r.Count())
	}
	rep := r.Report()
	if rep.Processing.Mean != 5*time.Millisecond {
		t.Errorf("Processing mean = %v", rep.Processing.Mean)
	}
	if rep.Total.Mean != rep.Tx.Mean+rep.Queue.Mean+rep.Processing.Mean+rep.Dissemination.Mean {
		t.Errorf("component means don't add up: %+v", rep)
	}
	if rep.Tx.Count != 10 {
		t.Errorf("Tx count = %d", rep.Tx.Count)
	}
}

func TestBandwidthMeter(t *testing.T) {
	m := NewBandwidthMeter()
	if m.RateBitsPerSec() != 0 {
		t.Error("empty meter rate should be 0")
	}
	start := time.Date(2016, 7, 1, 8, 0, 0, 0, time.UTC)
	// 250 bytes every 100 ms for 1 s => 2500 B over 1.0 s window = 20 kb/s.
	for i := 0; i <= 10; i++ {
		m.Add(250, start.Add(time.Duration(i)*100*time.Millisecond))
	}
	if m.Bytes() != 2750 {
		t.Errorf("Bytes = %d", m.Bytes())
	}
	rate := m.RateBitsPerSec()
	if math.Abs(rate-22000) > 1 {
		t.Errorf("rate = %.1f b/s, want 22000", rate)
	}
}

func TestBandwidthMeterConcurrent(t *testing.T) {
	m := NewBandwidthMeter()
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 20; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			m.Add(100, start.Add(time.Duration(i)*time.Millisecond))
		}(i)
	}
	wg.Wait()
	if m.Bytes() != 2000 {
		t.Errorf("Bytes = %d, want 2000", m.Bytes())
	}
	if m.RateBitsPerSec() <= 0 {
		t.Error("rate should be positive")
	}
}

func TestCounterSet(t *testing.T) {
	c := NewCounterSet()
	c.Add("rsu.fallbacks", 3)
	c.Add("rsu.fallbacks", 2)
	c.Add("rsu.restarts", 1)
	c.Add("rsu.restarts", 0)  // monotonic: no-op
	c.Add("rsu.restarts", -5) // monotonic: no-op
	if got := c.Get("rsu.fallbacks"); got != 5 {
		t.Errorf("fallbacks = %d, want 5", got)
	}
	if got := c.Get("rsu.restarts"); got != 1 {
		t.Errorf("restarts = %d, want 1", got)
	}
	if got := c.Get("missing"); got != 0 {
		t.Errorf("missing = %d, want 0", got)
	}
	if names := c.Names(); len(names) != 2 || names[0] != "rsu.fallbacks" {
		t.Errorf("Names = %v", names)
	}
	snap := c.Snapshot()
	c.Add("rsu.fallbacks", 1)
	if snap["rsu.fallbacks"] != 5 {
		t.Error("Snapshot should be a copy")
	}
	if got, want := c.String(), "rsu.fallbacks=6 rsu.restarts=1"; got != want {
		t.Errorf("String = %q, want %q", got, want)
	}
}

func TestCounterSetConcurrent(t *testing.T) {
	c := NewCounterSet()
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				c.Add("x", 1)
			}
		}()
	}
	wg.Wait()
	if got := c.Get("x"); got != 1600 {
		t.Errorf("x = %d, want 1600", got)
	}
}
