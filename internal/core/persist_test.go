package core

import (
	"bytes"
	"strings"
	"testing"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

// roundTripDetector saves and reloads a detector.
func roundTripDetector(t *testing.T, det Detector) Detector {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveDetector(&buf, det); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadDetector(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return loaded
}

// assertSameVerdicts checks two detectors agree on every test record.
func assertSameVerdicts(t *testing.T, a, b Detector, recs []trace.Record, summaries map[trace.CarID]PredictionSummary) {
	t.Helper()
	for i, r := range recs {
		var prior *PredictionSummary
		if summaries != nil {
			if s, ok := summaries[r.Car]; ok {
				prior = &s
			}
		}
		da, err := a.Detect(r, prior)
		if err != nil {
			t.Fatal(err)
		}
		db, err := b.Detect(r, prior)
		if err != nil {
			t.Fatal(err)
		}
		if da.Class != db.Class || da.PNormal != db.PNormal {
			t.Fatalf("record %d: original %+v vs loaded %+v", i, da, db)
		}
	}
}

func TestSaveLoadAD3(t *testing.T) {
	fx := corridorFixture(t)
	_, ad3, _, _ := trainAll(t, fx)
	loaded := roundTripDetector(t, ad3)
	if loaded.Name() != "AD3" {
		t.Errorf("loaded kind = %q", loaded.Name())
	}
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	assertSameVerdicts(t, ad3, loaded, testLink[:min(200, len(testLink))], nil)
}

func TestSaveLoadCentralized(t *testing.T) {
	fx := corridorFixture(t)
	central, _, _, _ := trainAll(t, fx)
	loaded := roundTripDetector(t, central)
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	assertSameVerdicts(t, central, loaded, testLink[:min(200, len(testLink))], nil)
}

func TestSaveLoadCAD3(t *testing.T) {
	fx := corridorFixture(t)
	_, _, cad3, summaries := trainAll(t, fx)
	loaded := roundTripDetector(t, cad3)
	lc, ok := loaded.(*CAD3)
	if !ok {
		t.Fatalf("loaded type %T", loaded)
	}
	if lc.Weight() != cad3.Weight() {
		t.Errorf("weight = %v, want %v", lc.Weight(), cad3.Weight())
	}
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	assertSameVerdicts(t, cad3, loaded, testLink[:min(200, len(testLink))], summaries)
}

func TestSaveUntrainedFails(t *testing.T) {
	var buf bytes.Buffer
	if err := SaveDetector(&buf, NewAD3(geo.Motorway)); err == nil {
		t.Error("want error saving untrained AD3")
	}
	if err := SaveDetector(&buf, NewCAD3(geo.MotorwayLink, CAD3Config{})); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	online, _ := NewOnlineAD3(geo.Motorway, 0, 0)
	if err := SaveDetector(&buf, online); err == nil {
		t.Error("want error for unsupported detector type")
	}
}

func TestLoadDetectorErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"unknown kind":  `{"kind":"Quantum"}`,
		"bad road type": `{"kind":"AD3","roadType":99,"nb":{}}`,
		"bad nb":        `{"kind":"AD3","roadType":1,"nb":{"version":9}}`,
		"bad cad3 road": `{"kind":"CAD3","roadType":0}`,
	}
	for name, in := range cases {
		if _, err := LoadDetector(strings.NewReader(in)); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestLoadRejectsCorruptTree(t *testing.T) {
	fx := corridorFixture(t)
	_, _, cad3, _ := trainAll(t, fx)
	var buf bytes.Buffer
	if err := SaveDetector(&buf, cad3); err != nil {
		t.Fatal(err)
	}
	// Corrupt the tree's feature index beyond the width.
	s := strings.Replace(buf.String(), `"feature":1`, `"feature":99`, 1)
	if s == buf.String() {
		t.Skip("serialized tree has no feature-1 split to corrupt")
	}
	if _, err := LoadDetector(strings.NewReader(s)); err == nil {
		t.Error("corrupt tree should fail validation")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
