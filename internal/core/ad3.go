package core

import (
	"fmt"

	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// AD3 is the distributed standalone model (§IV-C): each RSU trains a
// Gaussian Naive Bayes on its own road type's data, learning the local
// normal profile. It is road-aware but not driver-aware — it ignores
// forwarded summaries.
type AD3 struct {
	roadType geo.RoadType
	nb       *mlkit.GaussianNB
}

var _ Detector = (*AD3)(nil)

// NewAD3 creates an untrained AD3 detector for the given road type.
func NewAD3(roadType geo.RoadType) *AD3 {
	return &AD3{roadType: roadType, nb: mlkit.NewGaussianNB()}
}

// Name implements Detector.
func (a *AD3) Name() string { return "AD3" }

// RoadType returns the road type the detector serves.
func (a *AD3) RoadType() geo.RoadType { return a.roadType }

// Train fits the Naive Bayes on the road type's slice of the training
// records, labelled by the given labeler.
func (a *AD3) Train(records []trace.Record, labeler *Labeler) error {
	own := trace.RecordsOfType(records, a.roadType)
	if len(own) == 0 {
		return fmt.Errorf("%w for road type %v", ErrNoRecords, a.roadType)
	}
	samples, _ := labeler.MakeSamples(own)
	if err := a.nb.Fit(samples); err != nil {
		return fmt.Errorf("AD3 fit %v: %w", a.roadType, err)
	}
	return nil
}

// Detect implements Detector. The prior summary is ignored (standalone
// model). The whole path is allocation-free: FeatureVec stays on the
// stack and the Naive Bayes constants are precomputed at Fit time.
func (a *AD3) Detect(rec trace.Record, _ *PredictionSummary) (Detection, error) {
	p, err := a.nb.PredictProba3(FeatureVec(rec))
	if err != nil {
		if err == mlkit.ErrNotTrained {
			return Detection{}, ErrNotTrained
		}
		return Detection{}, fmt.Errorf("AD3 detect: %w", err)
	}
	return Detection{
		Car:     rec.Car,
		Road:    int64(rec.Road),
		Class:   mlkit.PredictLabel(p),
		PNormal: p,
	}, nil
}

// PredictProba exposes the NB probability, used by CAD3 training and the
// summary builder.
func (a *AD3) PredictProba(rec trace.Record) (float64, error) {
	p, err := a.nb.PredictProba3(FeatureVec(rec))
	if err != nil {
		if err == mlkit.ErrNotTrained {
			return 0, ErrNotTrained
		}
		return 0, err
	}
	return p, nil
}

// Centralized is the cloud baseline (§VI-D4): one Gaussian Naive Bayes
// trained on all road vehicular data at once. Its whole pipeline is
// city-scale — including the offline labelling stage, which pools every
// road type into one sigma cutoff (see GlobalLabeler) — so it never
// acquires the road-level context AD3 and CAD3 have.
type Centralized struct {
	nb *mlkit.GaussianNB
}

var _ Detector = (*Centralized)(nil)

// NewCentralized creates an untrained centralized detector.
func NewCentralized() *Centralized {
	return &Centralized{nb: mlkit.NewGaussianNB()}
}

// Name implements Detector.
func (c *Centralized) Name() string { return "Centralized" }

// Train fits one pooled model over every record regardless of road type,
// labelled by the centralized pipeline's own city-global sigma cutoff.
// The labeler argument keeps the Detector training surface uniform; the
// per-road-type labels it would produce are unavailable to a centralized
// deployment, so it is ignored.
func (c *Centralized) Train(records []trace.Record, _ *Labeler) error {
	if len(records) == 0 {
		return ErrNoRecords
	}
	global, err := TrainGlobalLabeler(records, 0)
	if err != nil {
		return err
	}
	samples := make([]mlkit.Sample, 0, len(records))
	for _, r := range records {
		samples = append(samples, mlkit.Sample{
			Features: Features(r),
			Label:    global.Label(r),
		})
	}
	if err := c.nb.Fit(samples); err != nil {
		return fmt.Errorf("centralized fit: %w", err)
	}
	return nil
}

// Detect implements Detector.
func (c *Centralized) Detect(rec trace.Record, _ *PredictionSummary) (Detection, error) {
	p, err := c.nb.PredictProba3(FeatureVec(rec))
	if err != nil {
		if err == mlkit.ErrNotTrained {
			return Detection{}, ErrNotTrained
		}
		return Detection{}, fmt.Errorf("centralized detect: %w", err)
	}
	return Detection{
		Car:     rec.Car,
		Road:    int64(rec.Road),
		Class:   mlkit.PredictLabel(p),
		PNormal: p,
	}, nil
}
