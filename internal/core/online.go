package core

import (
	"fmt"
	"math"

	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// OnlineAD3 is the continuously learning variant of AD3: instead of an
// offline training pass, the RSU folds every observed record into running
// per-road statistics (the sigma-cutoff labelling distribution) and into
// an incrementally trained Gaussian Naive Bayes — "each node learns the
// normal behavior over time and maintains contextual information of the
// road in its coverage" (paper §III-A), here taken literally. It adapts
// to drift (construction, weather, seasonal shifts) without retraining.
type OnlineAD3 struct {
	roadType geo.RoadType
	sigmaK   float64
	warmup   int64

	// Running speed/accel statistics (Welford) back the online labels.
	n                  int64
	speedMean, speedM2 float64
	accelMean, accelM2 float64

	nb *mlkit.OnlineGaussianNB
}

// DefaultOnlineWarmup is the number of records observed before the model
// starts classifying (the distribution needs mass first).
const DefaultOnlineWarmup = 200

// NewOnlineAD3 creates a continuously learning detector for a road type.
// sigmaK <= 0 selects the paper's 1-sigma rule; warmup <= 0 selects
// DefaultOnlineWarmup.
func NewOnlineAD3(roadType geo.RoadType, sigmaK float64, warmup int64) (*OnlineAD3, error) {
	if sigmaK <= 0 {
		sigmaK = DefaultSigmaK
	}
	if warmup <= 0 {
		warmup = DefaultOnlineWarmup
	}
	nb, err := mlkit.NewOnlineGaussianNB(3)
	if err != nil {
		return nil, err
	}
	return &OnlineAD3{roadType: roadType, sigmaK: sigmaK, warmup: warmup, nb: nb}, nil
}

var _ Detector = (*OnlineAD3)(nil)

// Name implements Detector.
func (o *OnlineAD3) Name() string { return "OnlineAD3" }

// RoadType returns the covered road type.
func (o *OnlineAD3) RoadType() geo.RoadType { return o.roadType }

// Observe folds one record into the running distribution and the online
// classifier. Records of other road types are ignored (the RSU only sees
// its own road, but defensive filtering keeps replays safe).
func (o *OnlineAD3) Observe(rec trace.Record) error {
	if rec.RoadType != o.roadType {
		return nil
	}
	o.n++
	d := rec.Speed - o.speedMean
	o.speedMean += d / float64(o.n)
	o.speedM2 += d * (rec.Speed - o.speedMean)
	d = rec.Accel - o.accelMean
	o.accelMean += d / float64(o.n)
	o.accelM2 += d * (rec.Accel - o.accelMean)

	// After warmup the running sigma rule labels the record, and the
	// labelled record trains the classifier — the online analogue of the
	// paper's offline labelling + training stages.
	if o.n <= o.warmup {
		return nil
	}
	label := o.sigmaLabel(rec)
	v := FeatureVec(rec)
	if err := o.nb.Observe(v[:], label); err != nil {
		return fmt.Errorf("online AD3 observe: %w", err)
	}
	return nil
}

// sigmaLabel applies the running sigma-cutoff.
func (o *OnlineAD3) sigmaLabel(rec trace.Record) int {
	speedSigma := math.Sqrt(o.speedM2 / float64(o.n))
	accelSigma := math.Sqrt(o.accelM2 / float64(o.n))
	if math.Abs(rec.Speed-o.speedMean) <= o.sigmaK*speedSigma &&
		math.Abs(rec.Accel-o.accelMean) <= o.sigmaK*accelSigma {
		return ClassNormal
	}
	return ClassAbnormal
}

// Ready reports whether the model has warmed up enough to classify with
// the learned NB (before that, Detect falls back to the sigma rule).
func (o *OnlineAD3) Ready() bool { return o.n > o.warmup && o.nb.Ready() }

// Observations returns the number of records folded in.
func (o *OnlineAD3) Observations() int64 { return o.n }

// Detect implements Detector. During warmup it classifies with the
// running sigma rule directly; afterwards with the learned NB.
func (o *OnlineAD3) Detect(rec trace.Record, _ *PredictionSummary) (Detection, error) {
	if o.n < 2 {
		return Detection{}, ErrNotTrained
	}
	det := Detection{Car: rec.Car, Road: int64(rec.Road)}
	if !o.Ready() {
		det.Class = o.sigmaLabel(rec)
		if det.Class == ClassNormal {
			det.PNormal = 1
		}
		return det, nil
	}
	v := FeatureVec(rec)
	p, err := o.nb.PredictProba(v[:])
	if err != nil {
		return Detection{}, fmt.Errorf("online AD3 detect: %w", err)
	}
	det.Class = mlkit.PredictLabel(p)
	det.PNormal = p
	return det, nil
}

// PredictProba exposes the NB probability for summary building.
func (o *OnlineAD3) PredictProba(rec trace.Record) (float64, error) {
	if !o.Ready() {
		if o.n < 2 {
			return 0, ErrNotTrained
		}
		if o.sigmaLabel(rec) == ClassNormal {
			return 1, nil
		}
		return 0, nil
	}
	v := FeatureVec(rec)
	return o.nb.PredictProba(v[:])
}

// LogisticAD3 is AD3 with logistic regression in place of Naive Bayes —
// the first of the "complex anomaly detection algorithms" the paper's
// future work proposes to run within CAD3, still fully explainable
// (linear weights).
type LogisticAD3 struct {
	roadType geo.RoadType
	lr       *mlkit.LogisticRegression
}

var _ Detector = (*LogisticAD3)(nil)

// NewLogisticAD3 creates an untrained logistic detector for a road type.
func NewLogisticAD3(roadType geo.RoadType, cfg mlkit.LogisticConfig) *LogisticAD3 {
	return &LogisticAD3{roadType: roadType, lr: mlkit.NewLogisticRegression(cfg)}
}

// Name implements Detector.
func (l *LogisticAD3) Name() string { return "LogisticAD3" }

// Train fits the model on the road type's slice of the training records.
func (l *LogisticAD3) Train(records []trace.Record, labeler *Labeler) error {
	own := trace.RecordsOfType(records, l.roadType)
	if len(own) == 0 {
		return fmt.Errorf("%w for road type %v", ErrNoRecords, l.roadType)
	}
	samples, _ := labeler.MakeSamples(own)
	if err := l.lr.Fit(samples); err != nil {
		return fmt.Errorf("logistic AD3 fit: %w", err)
	}
	return nil
}

// Detect implements Detector.
func (l *LogisticAD3) Detect(rec trace.Record, _ *PredictionSummary) (Detection, error) {
	v := FeatureVec(rec)
	p, err := l.lr.PredictProba(v[:])
	if err != nil {
		if err == mlkit.ErrNotTrained {
			return Detection{}, ErrNotTrained
		}
		return Detection{}, fmt.Errorf("logistic AD3 detect: %w", err)
	}
	return Detection{
		Car:     rec.Car,
		Road:    int64(rec.Road),
		Class:   mlkit.PredictLabel(p),
		PNormal: p,
	}, nil
}

// PredictProba exposes the model probability for summary building.
func (l *LogisticAD3) PredictProba(rec trace.Record) (float64, error) {
	v := FeatureVec(rec)
	return l.lr.PredictProba(v[:])
}
