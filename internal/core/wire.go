package core

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math"

	"cad3/internal/geo"
	"cad3/internal/obsv"
	"cad3/internal/trace"
)

// Binary wire codec for the three CAD3 payloads (IN-DATA records, OUT-DATA
// warnings, CO-DATA summaries). Every binary payload starts with a single
// header byte carrying the format version in the high nibble and the
// payload type in the low nibble; the body is a fixed little-endian layout
// (summaries append a short variable tail). JSON remains a first-class
// fallback: encoders can be asked for it (EncodeRecordJSON and friends,
// used by the CLI/debug tools), and every decoder sniffs the header byte —
// anything that is not a recognised version-1 binary header is handed to
// the JSON decoder, so mixed fleets and recorded JSON traffic keep
// working.
//
// See DESIGN.md §"Wire formats" for the byte-level layout and the
// buffer-ownership rules around the stream package's payload pool.

// Wire format constants.
const (
	// WireVersion is the current binary format version (header high
	// nibble). Decoders fall back to JSON for any other version.
	WireVersion = 1

	wireTypeRecord  = 0x1
	wireTypeWarning = 0x2
	wireTypeSummary = 0x3

	hdrRecord  = WireVersion<<4 | wireTypeRecord  // 0x11
	hdrWarning = WireVersion<<4 | wireTypeWarning // 0x12
	hdrSummary = WireVersion<<4 | wireTypeSummary // 0x13
)

// RecordWireSize is the on-wire size of a binary-encoded record. The
// fixed fields need recordBodySize bytes; the frame is zero-padded up to
// the paper's 200 B status-packet size so the MAC-emulation, bandwidth
// and Figure 6 results keep the paper's packet-size assumption while the
// codec sheds the JSON marshalling cost. The padding doubles as the
// carrier for the pipeline trace context (obsv.TraceContext): traced
// frames place a 50-byte trace blob at offset recordBodySize, costing no
// extra wire bytes. Untraced decoders ignore the padding either way.
const (
	recordBodySize = 76
	RecordWireSize = 200
)

// warningWireSize is the fixed size of a binary warning.
const warningWireSize = 41

// summaryFixedSize is the fixed prefix of a binary summary: header,
// car, mean, count, from-road, updated-ms and the tail length byte.
const summaryFixedSize = 38

// maxSummaryTail bounds the LastPNormal tail a binary summary can carry
// (one length byte). Longer tails fall back to JSON encoding.
const maxSummaryTail = 255

// AppendRecord appends the binary encoding of r to dst and returns the
// extended slice. The result is exactly RecordWireSize bytes longer than
// dst. Like the JSON form, the generator-ground-truth Anomalous flag is
// not carried on the wire.
//
//cad3:noalloc
func AppendRecord(dst []byte, r trace.Record) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, RecordWireSize)...)
	b := dst[off:]
	b[0] = hdrRecord
	le.PutUint64(b[1:], uint64(r.Car))
	le.PutUint64(b[9:], uint64(r.Road))
	le.PutUint64(b[17:], math.Float64bits(r.Accel))
	le.PutUint64(b[25:], math.Float64bits(r.Speed))
	le.PutUint64(b[33:], math.Float64bits(r.Lat))
	le.PutUint64(b[41:], math.Float64bits(r.Lon))
	le.PutUint64(b[49:], math.Float64bits(r.Heading))
	b[57] = byte(r.Hour)
	b[58] = byte(r.Day)
	b[59] = byte(r.RoadType)
	le.PutUint64(b[60:], math.Float64bits(r.RoadMeanSpeed))
	le.PutUint64(b[68:], uint64(r.TimestampMs))
	return dst
}

// AppendRecordTraced appends the binary encoding of r with the pipeline
// trace context encoded into the frame's padding bytes. The frame is still
// exactly RecordWireSize bytes — tracing is wire-size free — and the
// encoding allocates nothing beyond the frame itself. DecodeRecord reads
// traced and untraced frames identically; RecordTrace recovers tc.
//
//cad3:noalloc
func AppendRecordTraced(dst []byte, r trace.Record, tc obsv.TraceContext) []byte {
	off := len(dst)
	dst = AppendRecord(dst, r)
	obsv.PutTrace(dst[off+recordBodySize:], tc)
	return dst
}

// RecordTrace extracts the trace context from a binary record payload.
// ok=false for untraced frames and JSON payloads (the graceful-degradation
// path: the pipeline runs untraced).
//
//cad3:noalloc
func RecordTrace(b []byte) (obsv.TraceContext, bool) {
	if !isBinary(b, hdrRecord) {
		return obsv.TraceContext{}, false
	}
	return obsv.PayloadTrace(b)
}

// AppendWarning appends the binary encoding of w to dst.
//
//cad3:noalloc
func AppendWarning(dst []byte, w Warning) []byte {
	off := len(dst)
	dst = append(dst, make([]byte, warningWireSize)...)
	b := dst[off:]
	b[0] = hdrWarning
	le.PutUint64(b[1:], uint64(w.Car))
	le.PutUint64(b[9:], uint64(w.Road))
	le.PutUint64(b[17:], math.Float64bits(w.PNormal))
	le.PutUint64(b[25:], uint64(w.SourceTsMs))
	le.PutUint64(b[33:], uint64(w.DetectedTsMs))
	return dst
}

// AppendWarningTraced appends the binary warning followed by a trace-blob
// tail carrying tc — the warning-side trace transport (warnings have no
// padding, so the context rides a fixed-size tail instead). DecodeWarning
// ignores the tail; WarningTrace recovers it.
//
//cad3:noalloc
func AppendWarningTraced(dst []byte, w Warning, tc obsv.TraceContext) []byte {
	dst = AppendWarning(dst, w)
	off := len(dst)
	dst = append(dst, make([]byte, obsv.TraceBlobSize)...)
	obsv.PutTrace(dst[off:], tc)
	return dst
}

// WarningTrace extracts the trace context from a binary warning payload.
// ok=false for untraced warnings and JSON payloads.
//
//cad3:noalloc
func WarningTrace(b []byte) (obsv.TraceContext, bool) {
	if !isBinary(b, hdrWarning) {
		return obsv.TraceContext{}, false
	}
	return obsv.PayloadTrace(b)
}

// AppendSummary appends the binary encoding of s to dst. Summaries whose
// LastPNormal tail exceeds maxSummaryTail entries (or whose Count does
// not fit an unsigned 32-bit integer) are encoded as JSON instead — the
// decoder's fallback keeps the pair interoperable.
func AppendSummary(dst []byte, s PredictionSummary) ([]byte, error) {
	if len(s.LastPNormal) > maxSummaryTail || s.Count < 0 || int64(s.Count) > math.MaxUint32 {
		j, err := json.Marshal(s)
		if err != nil {
			return dst, err
		}
		return append(dst, j...), nil
	}
	off := len(dst)
	dst = append(dst, make([]byte, summaryFixedSize+8*len(s.LastPNormal))...)
	b := dst[off:]
	b[0] = hdrSummary
	le.PutUint64(b[1:], uint64(s.Car))
	le.PutUint64(b[9:], math.Float64bits(s.MeanPNormal))
	le.PutUint32(b[17:], uint32(s.Count))
	le.PutUint64(b[21:], uint64(s.FromRoad))
	le.PutUint64(b[29:], uint64(s.UpdatedMs))
	b[37] = byte(len(s.LastPNormal))
	for i, p := range s.LastPNormal {
		le.PutUint64(b[summaryFixedSize+8*i:], math.Float64bits(p))
	}
	return dst, nil
}

var le = binary.LittleEndian

// isBinary reports whether b starts with the given version-1 binary
// header. Anything else — JSON (which starts with '{' or whitespace),
// an unknown future version, garbage — is routed to the JSON fallback.
//
//cad3:noalloc
func isBinary(b []byte, hdr byte) bool {
	return len(b) > 0 && b[0] == hdr
}

// EncodeRecord serializes a vehicle status record for IN-DATA using the
// binary codec (RecordWireSize bytes — the paper's 200 B packet).
func EncodeRecord(r trace.Record) ([]byte, error) {
	return AppendRecord(make([]byte, 0, RecordWireSize), r), nil
}

// EncodeRecordJSON serializes a record as legacy JSON, for debug tools
// and mixed-version interop (decoders accept both).
func EncodeRecordJSON(r trace.Record) ([]byte, error) { return json.Marshal(r) }

// DecodeRecord parses an IN-DATA payload, binary or JSON.
func DecodeRecord(b []byte) (trace.Record, error) {
	if !isBinary(b, hdrRecord) {
		var r trace.Record
		if err := json.Unmarshal(b, &r); err != nil {
			return trace.Record{}, fmt.Errorf("decode record: %w", err)
		}
		return r, nil
	}
	if len(b) < recordBodySize {
		return trace.Record{}, fmt.Errorf("decode record: truncated binary payload (%d bytes)", len(b))
	}
	return trace.Record{
		Car:           trace.CarID(le.Uint64(b[1:])),
		Road:          geo.SegmentID(le.Uint64(b[9:])),
		Accel:         math.Float64frombits(le.Uint64(b[17:])),
		Speed:         math.Float64frombits(le.Uint64(b[25:])),
		Lat:           math.Float64frombits(le.Uint64(b[33:])),
		Lon:           math.Float64frombits(le.Uint64(b[41:])),
		Heading:       math.Float64frombits(le.Uint64(b[49:])),
		Hour:          int(b[57]),
		Day:           int(b[58]),
		RoadType:      geo.RoadType(b[59]),
		RoadMeanSpeed: math.Float64frombits(le.Uint64(b[60:])),
		TimestampMs:   int64(le.Uint64(b[68:])),
	}, nil
}

// EncodeWarning serializes a warning for OUT-DATA using the binary codec.
func EncodeWarning(w Warning) ([]byte, error) {
	return AppendWarning(make([]byte, 0, warningWireSize), w), nil
}

// EncodeWarningJSON serializes a warning as legacy JSON.
func EncodeWarningJSON(w Warning) ([]byte, error) { return json.Marshal(w) }

// DecodeWarning parses an OUT-DATA payload, binary or JSON.
func DecodeWarning(b []byte) (Warning, error) {
	if !isBinary(b, hdrWarning) {
		var w Warning
		if err := json.Unmarshal(b, &w); err != nil {
			return Warning{}, fmt.Errorf("decode warning: %w", err)
		}
		return w, nil
	}
	if len(b) < warningWireSize {
		return Warning{}, fmt.Errorf("decode warning: truncated binary payload (%d bytes)", len(b))
	}
	return Warning{
		Car:          trace.CarID(le.Uint64(b[1:])),
		Road:         int64(le.Uint64(b[9:])),
		PNormal:      math.Float64frombits(le.Uint64(b[17:])),
		SourceTsMs:   int64(le.Uint64(b[25:])),
		DetectedTsMs: int64(le.Uint64(b[33:])),
	}, nil
}

// EncodeSummary serializes a summary for CO-DATA using the binary codec
// (JSON for oversized tails; see AppendSummary).
func EncodeSummary(s PredictionSummary) ([]byte, error) {
	return AppendSummary(make([]byte, 0, summaryFixedSize+8*len(s.LastPNormal)), s)
}

// EncodeSummaryJSON serializes a summary as legacy JSON.
func EncodeSummaryJSON(s PredictionSummary) ([]byte, error) { return json.Marshal(s) }

// DecodeSummary parses a CO-DATA payload, binary or JSON.
func DecodeSummary(b []byte) (PredictionSummary, error) {
	if !isBinary(b, hdrSummary) {
		var s PredictionSummary
		if err := json.Unmarshal(b, &s); err != nil {
			return PredictionSummary{}, fmt.Errorf("decode summary: %w", err)
		}
		return s, nil
	}
	if len(b) < summaryFixedSize {
		return PredictionSummary{}, fmt.Errorf("decode summary: truncated binary payload (%d bytes)", len(b))
	}
	n := int(b[37])
	if len(b) < summaryFixedSize+8*n {
		return PredictionSummary{}, fmt.Errorf("decode summary: tail needs %d bytes, have %d", summaryFixedSize+8*n, len(b))
	}
	s := PredictionSummary{
		Car:         trace.CarID(le.Uint64(b[1:])),
		MeanPNormal: math.Float64frombits(le.Uint64(b[9:])),
		Count:       int(le.Uint32(b[17:])),
		FromRoad:    int64(le.Uint64(b[21:])),
		UpdatedMs:   int64(le.Uint64(b[29:])),
	}
	if n > 0 {
		s.LastPNormal = make([]float64, n)
		for i := range s.LastPNormal {
			s.LastPNormal[i] = math.Float64frombits(le.Uint64(b[summaryFixedSize+8*i:]))
		}
	}
	return s, nil
}
