package core

import (
	"math"
	"testing"
	"time"
)

func TestSummaryBuilderMean(t *testing.T) {
	b := NewSummaryBuilder(42, nil)
	if _, ok := b.Summarize(1); ok {
		t.Error("unknown car should not summarise")
	}
	b.Observe(1, 0.2)
	b.Observe(1, 0.4)
	b.Observe(1, 0.6)
	s, ok := b.Summarize(1)
	if !ok {
		t.Fatal("summary missing")
	}
	if math.Abs(s.MeanPNormal-0.4) > 1e-12 {
		t.Errorf("mean = %v, want 0.4", s.MeanPNormal)
	}
	if s.Count != 3 || s.FromRoad != 42 || s.Car != 1 {
		t.Errorf("summary = %+v", s)
	}
	if len(s.LastPNormal) != 3 {
		t.Errorf("last = %v", s.LastPNormal)
	}
	if b.Cars() != 1 {
		t.Errorf("Cars = %d", b.Cars())
	}
	b.Forget(1)
	if _, ok := b.Summarize(1); ok {
		t.Error("forgotten car should not summarise")
	}
}

func TestSummaryBuilderLastKBounded(t *testing.T) {
	b := NewSummaryBuilder(1, nil)
	for i := 0; i < 100; i++ {
		b.Observe(7, float64(i)/100)
	}
	s, _ := b.Summarize(7)
	if len(s.LastPNormal) != maxLastK {
		t.Errorf("last tail = %d, want %d", len(s.LastPNormal), maxLastK)
	}
	// The tail must be the most recent values.
	if s.LastPNormal[len(s.LastPNormal)-1] != 0.99 {
		t.Errorf("tail end = %v", s.LastPNormal[len(s.LastPNormal)-1])
	}
	if s.Count != 100 {
		t.Errorf("count = %d", s.Count)
	}
}

func TestSummaryRoundTrip(t *testing.T) {
	in := PredictionSummary{Car: 9, MeanPNormal: 0.31, Count: 12, FromRoad: 5, UpdatedMs: 123456, LastPNormal: []float64{0.1, 0.5}}
	b, err := EncodeSummary(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeSummary(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Car != in.Car || out.MeanPNormal != in.MeanPNormal || out.Count != in.Count ||
		out.FromRoad != in.FromRoad || len(out.LastPNormal) != 2 {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := DecodeSummary([]byte("{broken")); err == nil {
		t.Error("want decode error")
	}
}

func TestSummaryStoreTTL(t *testing.T) {
	now := time.Date(2016, 7, 1, 8, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	st := NewSummaryStore(time.Minute, clock)

	st.Put(PredictionSummary{Car: 1, MeanPNormal: 0.5, UpdatedMs: now.UnixMilli()})
	if _, ok := st.Get(1); !ok {
		t.Fatal("fresh summary missing")
	}
	if st.Len() != 1 {
		t.Errorf("Len = %d", st.Len())
	}
	now = now.Add(2 * time.Minute)
	if _, ok := st.Get(1); ok {
		t.Error("stale summary should expire")
	}
	if st.Len() != 0 {
		t.Errorf("Len after expiry = %d", st.Len())
	}
	if _, ok := st.Get(99); ok {
		t.Error("unknown car should miss")
	}
}

// TestSummaryStoreTTLBoundary pins the freshness predicate at the exact
// TTL edge: age == TTL is still fresh (expiry is strict >), age == TTL+1ms
// expires — and every lookup lands in exactly one counter.
func TestSummaryStoreTTLBoundary(t *testing.T) {
	base := time.Date(2016, 7, 1, 8, 0, 0, 0, time.UTC)
	now := base
	st := NewSummaryStore(time.Minute, func() time.Time { return now })
	st.Put(PredictionSummary{Car: 1, MeanPNormal: 0.5, UpdatedMs: base.UnixMilli()})

	// Exactly at the TTL the summary is still usable.
	now = base.Add(time.Minute)
	if _, ok := st.Get(1); !ok {
		t.Error("summary exactly at TTL should still be fresh")
	}
	// One millisecond past it the summary expires and is evicted.
	now = base.Add(time.Minute + time.Millisecond)
	if _, ok := st.Get(1); ok {
		t.Error("summary 1ms past TTL should expire")
	}
	if st.Len() != 0 {
		t.Errorf("Len after expiry = %d, want 0 (evicted)", st.Len())
	}
	// Once evicted, the same car is a plain miss, not a second expiry.
	if _, ok := st.Get(1); ok {
		t.Error("evicted car should miss")
	}
	if _, ok := st.Get(99); ok {
		t.Error("unknown car should miss")
	}

	want := SummaryStoreStats{Hits: 1, Misses: 2, Expired: 1}
	if got := st.Stats(); got != want {
		t.Errorf("Stats = %+v, want %+v", got, want)
	}
}

// TestSummaryStoreZeroTTLDefaults ensures ttl <= 0 selects the default
// rather than expiring everything instantly.
func TestSummaryStoreZeroTTLDefaults(t *testing.T) {
	base := time.Date(2016, 7, 1, 8, 0, 0, 0, time.UTC)
	now := base
	st := NewSummaryStore(0, func() time.Time { return now })
	st.Put(PredictionSummary{Car: 3, MeanPNormal: 0.7, UpdatedMs: base.UnixMilli()})
	now = base.Add(DefaultSummaryTTL)
	if _, ok := st.Get(3); !ok {
		t.Error("summary at the default TTL should still be fresh")
	}
	now = base.Add(DefaultSummaryTTL + time.Millisecond)
	if _, ok := st.Get(3); ok {
		t.Error("summary past the default TTL should expire")
	}
}

// TestSummaryStoreSnapshotRestore round-trips the store contents and
// checks that restored entries keep their original freshness clock.
func TestSummaryStoreSnapshotRestore(t *testing.T) {
	base := time.Date(2016, 7, 1, 8, 0, 0, 0, time.UTC)
	now := base
	st := NewSummaryStore(time.Minute, func() time.Time { return now })
	st.Put(PredictionSummary{Car: 1, MeanPNormal: 0.4, UpdatedMs: base.UnixMilli()})
	st.Put(PredictionSummary{Car: 2, MeanPNormal: 0.9, UpdatedMs: base.Add(30 * time.Second).UnixMilli()})

	snap := st.Snapshot()
	if len(snap) != 2 {
		t.Fatalf("snapshot = %d entries, want 2", len(snap))
	}

	st2 := NewSummaryStore(time.Minute, func() time.Time { return now })
	st2.Restore(snap)
	if st2.Len() != 2 {
		t.Fatalf("restored Len = %d, want 2", st2.Len())
	}
	// Freshness is judged against UpdatedMs, not restore time: advancing
	// past car 1's TTL (but not car 2's) expires only car 1.
	now = base.Add(time.Minute + time.Millisecond)
	if _, ok := st2.Get(1); ok {
		t.Error("restored car 1 should expire on its original clock")
	}
	if _, ok := st2.Get(2); !ok {
		t.Error("restored car 2 should still be fresh")
	}
}

func TestWarningRoundTrip(t *testing.T) {
	in := Warning{Car: 3, Road: 7, PNormal: 0.12, SourceTsMs: 111, DetectedTsMs: 222}
	b, err := EncodeWarning(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeWarning(b)
	if err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Errorf("round trip = %+v, want %+v", out, in)
	}
	if _, err := DecodeWarning([]byte("nope")); err == nil {
		t.Error("want decode error")
	}
}

func TestRecordRoundTrip(t *testing.T) {
	in := mkRecord(5, 2, 88.5, -1.25, 17)
	in.TimestampMs = 987654
	b, err := EncodeRecord(in)
	if err != nil {
		t.Fatal(err)
	}
	out, err := DecodeRecord(b)
	if err != nil {
		t.Fatal(err)
	}
	if out.Car != 5 || out.Speed != 88.5 || out.Accel != -1.25 || out.Hour != 17 || out.TimestampMs != 987654 {
		t.Errorf("round trip = %+v", out)
	}
	if _, err := DecodeRecord([]byte("x")); err == nil {
		t.Error("want decode error")
	}
}
