package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cad3/internal/trace"
)

// PredictionSummary is the CO-DATA payload a motorway RSU forwards to the
// next RSU when a vehicle hands over (§IV-D): the vehicle's prediction
// history along the previous road, condensed to the mean Naive Bayes
// probability (P̄_prevs in Equation 1) plus bookkeeping.
type PredictionSummary struct {
	Car trace.CarID `json:"carId"`
	// MeanPNormal is the average P(normal) the previous RSU's Naive Bayes
	// assigned to this vehicle's records.
	MeanPNormal float64 `json:"meanPNormal"`
	// Count is the number of predictions the mean aggregates.
	Count int `json:"count"`
	// LastPNormal holds the most recent predictions (bounded), supporting
	// the last-k summary-depth ablation.
	LastPNormal []float64 `json:"lastPNormal,omitempty"`
	// FromRoad identifies the summarising RSU's road.
	FromRoad int64 `json:"fromRd"`
	// UpdatedMs is the summary's production time (Unix ms).
	UpdatedMs int64 `json:"updatedMs"`
}

// maxLastK bounds the retained per-vehicle prediction tail.
const maxLastK = 16

// SummaryBuilder accumulates a vehicle's predictions at one RSU and emits
// summaries on handover. Safe for concurrent use (the micro-batch worker
// pool calls Observe from several goroutines).
type SummaryBuilder struct {
	road int64
	now  func() time.Time

	mu   sync.Mutex
	cars map[trace.CarID]*carAgg
}

type carAgg struct {
	sum   float64
	count int
	last  []float64
}

// NewSummaryBuilder creates a builder for the RSU covering the given road.
// now injects the clock; nil selects time.Now.
func NewSummaryBuilder(road int64, now func() time.Time) *SummaryBuilder {
	if now == nil {
		now = time.Now
	}
	return &SummaryBuilder{road: road, now: now, cars: make(map[trace.CarID]*carAgg)}
}

// Observe records one prediction probability for a car.
func (b *SummaryBuilder) Observe(car trace.CarID, pNormal float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a := b.cars[car]
	if a == nil {
		a = &carAgg{}
		b.cars[car] = a
	}
	a.sum += pNormal
	a.count++
	a.last = append(a.last, pNormal)
	if len(a.last) > maxLastK {
		a.last = a.last[len(a.last)-maxLastK:]
	}
}

// Summarize emits the car's summary, or ok=false if the car is unknown.
func (b *SummaryBuilder) Summarize(car trace.CarID) (PredictionSummary, bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	a, ok := b.cars[car]
	if !ok || a.count == 0 {
		return PredictionSummary{}, false
	}
	last := make([]float64, len(a.last))
	copy(last, a.last)
	return PredictionSummary{
		Car:         car,
		MeanPNormal: a.sum / float64(a.count),
		Count:       a.count,
		LastPNormal: last,
		FromRoad:    b.road,
		UpdatedMs:   b.now().UnixMilli(),
	}, true
}

// Forget drops the car's history (after a completed handover).
func (b *SummaryBuilder) Forget(car trace.CarID) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.cars, car)
}

// Cars returns the number of tracked vehicles.
func (b *SummaryBuilder) Cars() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.cars)
}

// CarHistory is one vehicle's accumulated prediction state, exported for
// checkpointing.
type CarHistory struct {
	Car   trace.CarID `json:"carId"`
	Sum   float64     `json:"sum"`
	Count int         `json:"count"`
	Last  []float64   `json:"last,omitempty"`
}

// BuilderSnapshot is a SummaryBuilder checkpoint: the road it serves and
// every tracked vehicle's history. A restarted RSU restores it so
// handovers after recovery still carry the pre-crash prediction history.
type BuilderSnapshot struct {
	Road int64        `json:"road"`
	Cars []CarHistory `json:"cars"`
}

// Snapshot exports the builder's state (deep copy, sorted by car for
// deterministic serialization).
func (b *SummaryBuilder) Snapshot() BuilderSnapshot {
	b.mu.Lock()
	defer b.mu.Unlock()
	snap := BuilderSnapshot{Road: b.road, Cars: make([]CarHistory, 0, len(b.cars))}
	for car, a := range b.cars {
		h := CarHistory{Car: car, Sum: a.sum, Count: a.count}
		if len(a.last) > 0 {
			h.Last = append([]float64(nil), a.last...)
		}
		snap.Cars = append(snap.Cars, h)
	}
	sort.Slice(snap.Cars, func(i, j int) bool { return snap.Cars[i].Car < snap.Cars[j].Car })
	return snap
}

// Restore replaces the builder's state with a snapshot's.
func (b *SummaryBuilder) Restore(snap BuilderSnapshot) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.road = snap.Road
	b.cars = make(map[trace.CarID]*carAgg, len(snap.Cars))
	for _, h := range snap.Cars {
		a := &carAgg{sum: h.Sum, count: h.Count}
		if len(h.Last) > 0 {
			a.last = append([]float64(nil), h.Last...)
		}
		b.cars[h.Car] = a
	}
}

// SummaryStore holds the summaries an RSU has received over CO-DATA,
// keyed by car, with staleness-based expiry. Safe for concurrent use.
//
// The store counts its lookups: a miss or an expiry on the detection
// path is exactly a CAD3 -> AD3 degradation (the fusion falls back to
// the standalone probability), so these counters are what makes the
// paper's silent fallback observable and assertable.
type SummaryStore struct {
	ttl time.Duration
	now func() time.Time

	mu   sync.Mutex
	byID map[trace.CarID]PredictionSummary

	hits    atomic.Int64
	misses  atomic.Int64
	expired atomic.Int64
}

// SummaryStoreStats counts store lookups.
type SummaryStoreStats struct {
	// Hits are Get calls answered with a fresh summary.
	Hits int64
	// Misses are Get calls for cars with no stored summary.
	Misses int64
	// Expired are Get calls that found a summary but evicted it as
	// stale — the silent CAD3 -> AD3 fallback case.
	Expired int64
}

// DefaultSummaryTTL expires summaries that are too old to describe the
// driver's current behaviour.
const DefaultSummaryTTL = 10 * time.Minute

// NewSummaryStore creates a store. ttl <= 0 selects DefaultSummaryTTL;
// nil now selects time.Now.
func NewSummaryStore(ttl time.Duration, now func() time.Time) *SummaryStore {
	if ttl <= 0 {
		ttl = DefaultSummaryTTL
	}
	if now == nil {
		now = time.Now
	}
	return &SummaryStore{ttl: ttl, now: now, byID: make(map[trace.CarID]PredictionSummary)}
}

// Put stores (or replaces) a car's summary.
func (s *SummaryStore) Put(sum PredictionSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID[sum.Car] = sum
}

// Get returns the car's summary if present and fresh.
func (s *SummaryStore) Get(car trace.CarID) (PredictionSummary, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	sum, ok := s.byID[car]
	if !ok {
		s.misses.Add(1)
		return PredictionSummary{}, false
	}
	if s.now().UnixMilli()-sum.UpdatedMs > s.ttl.Milliseconds() {
		delete(s.byID, car)
		s.expired.Add(1)
		return PredictionSummary{}, false
	}
	s.hits.Add(1)
	return sum, true
}

// Len returns the number of stored summaries (including possibly stale
// ones not yet swept).
func (s *SummaryStore) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.byID)
}

// Stats returns the lookup counters.
func (s *SummaryStore) Stats() SummaryStoreStats {
	return SummaryStoreStats{
		Hits:    s.hits.Load(),
		Misses:  s.misses.Load(),
		Expired: s.expired.Load(),
	}
}

// Snapshot exports every stored summary (fresh or not — the restore-side
// Get re-applies TTL), sorted by car for deterministic serialization.
func (s *SummaryStore) Snapshot() []PredictionSummary {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PredictionSummary, 0, len(s.byID))
	for _, sum := range s.byID {
		if len(sum.LastPNormal) > 0 {
			sum.LastPNormal = append([]float64(nil), sum.LastPNormal...)
		}
		out = append(out, sum)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Car < out[j].Car })
	return out
}

// Restore replaces the store's contents with a snapshot's. Counters are
// not restored: they describe the live process, not the data.
func (s *SummaryStore) Restore(sums []PredictionSummary) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.byID = make(map[trace.CarID]PredictionSummary, len(sums))
	for _, sum := range sums {
		s.byID[sum.Car] = sum
	}
}
