package core

import (
	"fmt"

	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// EvaluateDetector runs a detector over records and scores it against the
// labeler's ground truth, feeding per-car summaries to collaborative
// detectors (nil disables collaboration).
func EvaluateDetector(
	det Detector,
	records []trace.Record,
	labeler *Labeler,
	summaries map[trace.CarID]PredictionSummary,
) (mlkit.ConfusionMatrix, error) {
	var m mlkit.ConfusionMatrix
	for i, r := range records {
		truth, err := labeler.Label(r)
		if err != nil {
			continue
		}
		var prior *PredictionSummary
		if summaries != nil {
			if s, ok := summaries[r.Car]; ok {
				prior = &s
			}
		}
		d, err := det.Detect(r, prior)
		if err != nil {
			return m, fmt.Errorf("evaluate record %d: %w", i, err)
		}
		m.Observe(truth, d.Class)
	}
	return m, nil
}

// TimelinePoint is one step of a mesoscopic (driver-trip) detection
// timeline (Figure 8): the truth and each model's verdict at one record.
type TimelinePoint struct {
	Index   int
	Road    int64
	Truth   int
	Verdict map[string]int // detector name -> class
}

// DetectionTimeline replays a single car's trip through several detectors,
// producing the Figure 8 comparison. summaries applies to collaborative
// detectors only.
func DetectionTimeline(
	dets []Detector,
	tripRecords []trace.Record,
	labeler *Labeler,
	summaries map[trace.CarID]PredictionSummary,
) ([]TimelinePoint, error) {
	out := make([]TimelinePoint, 0, len(tripRecords))
	for i, r := range tripRecords {
		truth, err := labeler.Label(r)
		if err != nil {
			continue
		}
		pt := TimelinePoint{Index: i, Road: int64(r.Road), Truth: truth, Verdict: make(map[string]int, len(dets))}
		var prior *PredictionSummary
		if summaries != nil {
			if s, ok := summaries[r.Car]; ok {
				prior = &s
			}
		}
		for _, det := range dets {
			d, err := det.Detect(r, prior)
			if err != nil {
				return nil, fmt.Errorf("timeline %s at %d: %w", det.Name(), i, err)
			}
			pt.Verdict[det.Name()] = d.Class
		}
		out = append(out, pt)
	}
	return out, nil
}

// Flips counts verdict changes between consecutive timeline points for a
// detector — the paper's "stability" axis in Figure 8 (CAD3 stable, AD3
// fluctuating, centralized unpredictable).
func Flips(timeline []TimelinePoint, detector string) int {
	var flips int
	for i := 1; i < len(timeline); i++ {
		if timeline[i].Verdict[detector] != timeline[i-1].Verdict[detector] {
			flips++
		}
	}
	return flips
}

// TimelineAccuracy returns the fraction of timeline points where the
// detector agrees with the ground truth.
func TimelineAccuracy(timeline []TimelinePoint, detector string) float64 {
	if len(timeline) == 0 {
		return 0
	}
	var right int
	for _, pt := range timeline {
		if pt.Verdict[detector] == pt.Truth {
			right++
		}
	}
	return float64(right) / float64(len(timeline))
}
