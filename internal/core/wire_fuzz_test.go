package core

import (
	"reflect"
	"testing"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

// Decode fuzzers: arbitrary bytes must never panic a decoder, and any
// accepted binary parse must come from a buffer long enough to hold the
// claimed layout (mirrors internal/stream's wire-protocol fuzzers). Run
// continuously with `go test -fuzz FuzzDecodeRecord ./internal/core`.

func FuzzDecodeRecord(f *testing.F) {
	valid, _ := EncodeRecord(trace.Record{Car: 1, Road: 2, Speed: 30, Hour: 9, Day: 4, RoadType: geo.Motorway})
	j, _ := EncodeRecordJSON(trace.Record{Car: 1, Hour: 9, Day: 4, RoadType: geo.Motorway})
	f.Add(valid)
	f.Add(j)
	f.Add([]byte{})
	f.Add([]byte{hdrRecord})
	f.Add(valid[:recordBodySize/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			return
		}
		if isBinary(data, hdrRecord) && len(data) < recordBodySize {
			t.Fatalf("accepted %d-byte binary record, need %d: %+v", len(data), recordBodySize, rec)
		}
	})
}

func FuzzDecodeWarning(f *testing.F) {
	valid, _ := EncodeWarning(Warning{Car: 1, Road: 2, PNormal: 0.5, SourceTsMs: 3, DetectedTsMs: 4})
	f.Add(valid)
	f.Add([]byte{hdrWarning, 0x01})
	f.Add([]byte(`{"carId":1}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		w, err := DecodeWarning(data)
		if err != nil {
			return
		}
		if isBinary(data, hdrWarning) && len(data) < warningWireSize {
			t.Fatalf("accepted %d-byte binary warning: %+v", len(data), w)
		}
	})
}

func FuzzDecodeSummary(f *testing.F) {
	valid, _ := EncodeSummary(PredictionSummary{Car: 1, MeanPNormal: 0.5, Count: 3, LastPNormal: []float64{0.4, 0.6}})
	f.Add(valid)
	f.Add([]byte{hdrSummary, 0xff})
	f.Add([]byte(`{"carId":1,"lastPNormal":[0.5]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeSummary(data)
		if err != nil {
			return
		}
		if isBinary(data, hdrSummary) && len(data) < summaryFixedSize+8*len(s.LastPNormal) {
			t.Fatalf("accepted %d-byte binary summary with %d-entry tail", len(data), len(s.LastPNormal))
		}
	})
}

// Round-trip fuzzers: encode→decode must be the identity for any valid
// payload, on both the binary and the JSON fallback path.

func FuzzRecordRoundTrip(f *testing.F) {
	f.Add(int64(1), int64(2), 30.0, 1.5, 22.5, 114.0, 90.0, byte(9), byte(4), byte(3), 35.0, int64(99), false)
	f.Add(int64(-7), int64(1<<40), -3.0, 0.0, 0.0, 0.0, 359.9, byte(23), byte(31), byte(10), 0.0, int64(-1), true)
	f.Fuzz(func(t *testing.T, car, road int64, speed, accel, lat, lon, hdg float64,
		hour, day, rt byte, vr float64, ts int64, useJSON bool) {
		rec := trace.Record{
			Car: trace.CarID(car), Road: geo.SegmentID(road),
			Speed: speed, Accel: accel, Lat: lat, Lon: lon, Heading: hdg,
			Hour: int(hour % 24), Day: int(day%31) + 1,
			RoadType: geo.RoadType(rt % 11), RoadMeanSpeed: vr, TimestampMs: ts,
		}
		var payload []byte
		var err error
		if useJSON {
			for _, f := range []float64{speed, accel, lat, lon, hdg, vr} {
				if f != f || f > 1e308 || f < -1e308 {
					t.Skip("NaN/Inf cannot cross the JSON fallback")
				}
			}
			payload, err = EncodeRecordJSON(rec)
		} else {
			payload, err = EncodeRecord(rec)
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRecord(payload)
		if err != nil {
			t.Fatalf("decode (json=%v): %v", useJSON, err)
		}
		if differsNaNAware(got, rec) {
			t.Fatalf("round trip (json=%v):\n got %+v\nwant %+v", useJSON, got, rec)
		}
	})
}

// differsNaNAware compares records treating NaN==NaN (JSON cannot carry
// NaN, but the fuzzer only feeds it finite values; binary carries any
// bit pattern through Float64bits exactly).
func differsNaNAware(a, b trace.Record) bool {
	return !reflect.DeepEqual(normNaN(a), normNaN(b))
}

func normNaN(r trace.Record) trace.Record {
	fix := func(f *float64) {
		if *f != *f {
			*f = -12345.6789 // canonical stand-in, only compared against itself
		}
	}
	fix(&r.Speed)
	fix(&r.Accel)
	fix(&r.Lat)
	fix(&r.Lon)
	fix(&r.Heading)
	fix(&r.RoadMeanSpeed)
	return r
}

func FuzzSummaryRoundTrip(f *testing.F) {
	f.Add(int64(1), 0.5, uint16(3), int64(2), int64(99), uint8(2), 0.25, false)
	f.Add(int64(9), 1.0, uint16(65535), int64(-2), int64(0), uint8(20), 0.75, true)
	f.Fuzz(func(t *testing.T, car int64, mean float64, count uint16, road, ts int64,
		tail uint8, p float64, useJSON bool) {
		if mean != mean || p != p || mean > 1e308 || mean < -1e308 || p > 1e300 || p < -1e300 {
			t.Skip("NaN/Inf cannot cross the JSON fallback")
		}
		s := PredictionSummary{
			Car: trace.CarID(car), MeanPNormal: mean, Count: int(count),
			FromRoad: road, UpdatedMs: ts,
		}
		for i := 0; i < int(tail); i++ {
			s.LastPNormal = append(s.LastPNormal, p+float64(i))
		}
		var payload []byte
		var err error
		if useJSON {
			payload, err = EncodeSummaryJSON(s)
		} else {
			payload, err = EncodeSummary(s)
		}
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSummary(payload)
		if err != nil {
			t.Fatalf("decode (json=%v): %v", useJSON, err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip (json=%v):\n got %+v\nwant %+v", useJSON, got, s)
		}
	})
}
