package core

import (
	"errors"
	"testing"
	"time"

	"cad3/internal/flow"
	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// TestDetectHotPathZeroAllocs enforces the allocation-free contract on the
// per-record detection path: AD3, CAD3 (with and without a forwarded
// summary) and the centralized baseline must not touch the heap per
// Detect call.
func TestDetectHotPathZeroAllocs(t *testing.T) {
	fx := corridorFixture(t)
	central, ad3, cad3, summaries := trainAll(t, fx)

	var rec = fx.test[0]
	for _, r := range fx.test {
		if _, ok := summaries[r.Car]; ok {
			rec = r
			break
		}
	}
	prior, hasPrior := summaries[rec.Car]
	if !hasPrior {
		t.Fatal("fixture has no test record with a forwarded summary")
	}

	cases := []struct {
		name string
		fn   func() error
	}{
		{"AD3", func() error { _, err := ad3.Detect(rec, nil); return err }},
		{"Centralized", func() error { _, err := central.Detect(rec, nil); return err }},
		{"CAD3-no-prior", func() error { _, err := cad3.Detect(rec, nil); return err }},
		{"CAD3-with-prior", func() error { _, err := cad3.Detect(rec, &prior); return err }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.fn(); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(200, func() {
				if err := tc.fn(); err != nil {
					t.Fatal(err)
				}
			})
			if allocs != 0 {
				t.Errorf("%s Detect: %v allocs/op, want 0", tc.name, allocs)
			}
		})
	}
}

// TestTracedWireZeroAllocs extends the zero-alloc contract to the tracing
// layer: encoding a traced record into a reused frame, stamping a stage in
// place, reading the context back, and observing a registry histogram must
// all stay off the heap — tracing cannot be allowed to undo the PR 1
// fast-path guarantee.
func TestTracedWireZeroAllocs(t *testing.T) {
	rec := wireTestRecord()
	tc := obsv.TraceContext{BatchID: 1, SentMicro: 1_000_000}
	buf := make([]byte, 0, RecordWireSize)
	hist := obsv.NewHistogram(nil)
	at := time.UnixMicro(1_004_200)

	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendRecordTraced(buf[:0], rec, tc)
		if !obsv.StampPayload(buf, obsv.StageArrive, at) {
			t.Fatal("stamp refused")
		}
		got, ok := RecordTrace(buf)
		if !ok {
			t.Fatal("trace lost")
		}
		hist.Observe(got.ArriveMicro - got.SentMicro)
	})
	if allocs != 0 {
		t.Errorf("traced encode+stamp+decode+observe: %v allocs/op, want 0", allocs)
	}
}

// TestBackpressuredSendZeroAllocs extends the zero-alloc contract to the
// refusal path: a producer whose pooled send hits a full admission gate
// must get its preallocated backpressure error — and recycle its payload
// buffer — without touching the heap. Overload is exactly when per-send
// allocations would hurt most.
func TestBackpressuredSendZeroAllocs(t *testing.T) {
	b := stream.NewBroker(stream.BrokerConfig{
		FlowCapacity: 1,
		FlowPolicy:   flow.TailDrop{},
	})
	if err := b.CreateTopic(stream.TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	p, err := stream.NewProducer(stream.NewInProcClient(b), stream.TopicInData)
	if err != nil {
		t.Fatal(err)
	}
	rec := wireTestRecord()
	key := []byte("car-1")
	encode := func(dst []byte) []byte { return AppendRecord(dst, rec) }
	// Take the topic's only credit; every send after this is refused.
	if _, _, err := p.SendPooled(key, encode); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		_, _, serr := p.SendPooled(key, encode)
		if !errors.Is(serr, flow.ErrBackpressure) {
			t.Fatalf("want backpressure, got %v", serr)
		}
		if _, ok := flow.RetryAfter(serr); !ok {
			t.Fatal("refusal lost its retry-after hint")
		}
	})
	if allocs != 0 {
		t.Errorf("backpressured pooled send: %v allocs/op, want 0", allocs)
	}
}
