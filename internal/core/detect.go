// Package core implements the paper's primary contribution: context-aware
// anomalous-driving detection at the edge (AD3), its collaborative
// extension (CAD3) that fuses the vehicle's prediction history forwarded
// by the previous RSU, the centralized baseline, the sigma-cutoff offline
// labelling stage, and the Nilsson potential-accident estimator
// (Equations 2-3).
package core

import (
	"errors"

	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// Classes re-exported from mlkit using the paper's encoding.
const (
	ClassAbnormal = mlkit.ClassAbnormal // 0
	ClassNormal   = mlkit.ClassNormal   // 1
)

// Errors callers match.
var (
	ErrNotTrained = errors.New("core: detector is not trained")
	ErrNoRecords  = errors.New("core: no training records")
)

// Detection is the outcome of classifying one vehicle status record.
type Detection struct {
	Car     trace.CarID `json:"carId"`
	Road    int64       `json:"rdId"`
	Class   int         `json:"class"`   // 1 normal, 0 abnormal
	PNormal float64     `json:"pNormal"` // model probability of normal
	// UsedPrior reports whether a forwarded prediction summary
	// contributed (CAD3 only).
	UsedPrior bool `json:"usedPrior"`
}

// Abnormal reports whether the detection flagged the record.
func (d Detection) Abnormal() bool { return d.Class == ClassAbnormal }

// Detector classifies vehicle status records. prior carries the
// vehicle's prediction summary forwarded from the previous RSU (CO-DATA);
// detectors that do not collaborate ignore it, and CAD3 degrades
// gracefully when it is nil.
type Detector interface {
	Name() string
	Detect(rec trace.Record, prior *PredictionSummary) (Detection, error)
}

// Warning is the OUT-DATA payload disseminated to vehicles when abnormal
// driving is detected.
type Warning struct {
	Car     trace.CarID `json:"carId"`
	Road    int64       `json:"rdId"`
	PNormal float64     `json:"pNormal"`
	// SourceTsMs is the originating record's timestamp, preserved so the
	// receiving vehicle can compute end-to-end latency.
	SourceTsMs int64 `json:"srcTsMs"`
	// DetectedTsMs is when the RSU produced the warning.
	DetectedTsMs int64 `json:"detTsMs"`
}

// FeatureWidth is the width of the instantaneous feature vector.
const FeatureWidth = 3

// FeatureVec returns the instantaneous feature vector the detectors
// consume as a fixed-width array: [InstSpeed, accel, Hour] (the paper's
// Table II features; road type is implicit in which RSU's model runs).
// Being an array it lives on the caller's stack — the per-record detect
// path allocates nothing.
func FeatureVec(r trace.Record) [FeatureWidth]float64 {
	return [FeatureWidth]float64{r.Speed, r.Accel, float64(r.Hour)}
}

// Features returns the feature vector as a slice, for width-generic
// consumers (training-sample construction, kNN/logistic baselines). The
// hot detect path uses FeatureVec instead.
func Features(r trace.Record) []float64 {
	v := FeatureVec(r)
	return v[:]
}

// FeatureNames matches Features, for explainability dumps.
func FeatureNames() []string { return []string{"speed", "accel", "hour"} }
