package core

import (
	"sync"
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// fixture holds the shared corridor dataset: cars driving a motorway ->
// motorway-link route, mirroring the paper's microscopic use case.
type fixture struct {
	net     *geo.Network
	train   []trace.Record
	test    []trace.Record
	labeler *Labeler
}

var (
	fixtureOnce sync.Once
	fixtureVal  fixture
	fixtureErr  error
)

// corridorFixture builds the dataset once per test binary (it is reused by
// many tests).
func corridorFixture(t testing.TB) fixture {
	t.Helper()
	fixtureOnce.Do(func() { fixtureVal, fixtureErr = buildCorridorDataset(600, 123) })
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureVal
}

// Corridor segment IDs, chosen outside the generated network's range.
const (
	corridorMwID   geo.SegmentID = 900001
	corridorLinkID geo.SegmentID = 900002
)

// addCorridor inserts the testbed corridor — a 2 km motorway feeding an
// 800 m motorway link — into the network and returns both segments.
func addCorridor(net *geo.Network) (*geo.Segment, *geo.Segment, error) {
	start := geo.Destination(geo.ShenzhenCenter, 45, 3000)
	mwEnd := geo.Destination(start, 90, 2000)
	mw, err := geo.NewSegment(corridorMwID, geo.Motorway, "corridor-motorway",
		[]geo.Point{start, geo.Midpoint(start, mwEnd), mwEnd})
	if err != nil {
		return nil, nil, err
	}
	lkEnd := geo.Destination(mwEnd, 135, 800)
	lk, err := geo.NewSegment(corridorLinkID, geo.MotorwayLink, "corridor-link",
		[]geo.Point{mwEnd, geo.Midpoint(mwEnd, lkEnd), lkEnd})
	if err != nil {
		return nil, nil, err
	}
	if err := net.AddSegment(mw); err != nil {
		return nil, nil, err
	}
	if err := net.AddSegment(lk); err != nil {
		return nil, nil, err
	}
	if err := net.Connect(mw.ID, lk.ID); err != nil {
		return nil, nil, err
	}
	return mw, lk, nil
}

func buildCorridorDataset(cars int, seed int64) (fixture, error) {
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: 0.02, Seed: 42})
	if err != nil {
		return fixture{}, err
	}
	// 5 s GPS sampling matches the paper's trajectory sparsity (~84
	// points per trip) and keeps GPS noise from dominating the derived
	// instantaneous speeds.
	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Network:            net,
		Cars:               cars,
		Seed:               seed,
		AggressiveFraction: 0.35,
		SampleInterval:     5 * time.Second,
	})
	if err != nil {
		return fixture{}, err
	}

	// Every car drives motorway -> link at least once so handover
	// summaries exist. Like the paper, which "extracted two real roads"
	// for the testbed, we add an explicit corridor: a 2 km motorway
	// feeding an 800 m motorway link.
	mwSeg, linkSeg, err := addCorridor(net)
	if err != nil {
		return fixture{}, err
	}
	mw, link := mwSeg, linkSeg.ID
	var pts []trace.TrajectoryPoint
	var tripID trace.TripID = 1
	for c := 1; c <= cars; c++ {
		day := 1 + (c % 28)
		hour := []int{8, 12, 18, 22}[c%4]
		_, p, err := gen.GenerateTripOn(trace.CarID(c), tripID, []geo.SegmentID{mw.ID, link}, day, hour)
		if err != nil {
			return fixture{}, err
		}
		tripID++
		pts = append(pts, p...)
	}

	// City-wide background traffic over every road type: the centralized
	// baseline trains on "all road vehicular data at once" (§VI-D4), so
	// its pooled distribution must reflect the whole city — dominated by
	// slow primary/secondary/tertiary roads (Table V density) — not just
	// the evaluated corridor.
	bg, err := trace.NewGenerator(trace.GeneratorConfig{
		Network:            net,
		Cars:               cars,
		Seed:               seed + 1,
		TripsPerCar:        4,
		AggressiveFraction: 0.35,
		SampleInterval:     5 * time.Second,
	})
	if err != nil {
		return fixture{}, err
	}
	bgDS, err := bg.Generate()
	if err != nil {
		return fixture{}, err
	}
	// Offset background car IDs past the corridor fleet's.
	for i := range bgDS.Trajectories {
		bgDS.Trajectories[i].Car += trace.CarID(cars)
		bgDS.Trajectories[i].Trip += tripID
	}
	pts = append(pts, bgDS.Trajectories...)
	recs, err := trace.DeriveRecords(net, pts, trace.DeriveOptions{})
	if err != nil {
		return fixture{}, err
	}
	clean, _ := trace.FilterRecords(recs)
	split := trace.SplitByCar(clean, 0.8, seed)
	labeler, err := TrainLabeler(split.Train, 0)
	if err != nil {
		return fixture{}, err
	}
	return fixture{net: net, train: split.Train, test: split.Test, labeler: labeler}, nil
}

// trainAll trains the three models on the fixture, returning them plus the
// evaluation summaries for the test cars (built by replaying the upstream
// motorway model, as the online CO-DATA stream would).
func trainAll(t testing.TB, fx fixture) (*Centralized, *AD3, *CAD3, map[trace.CarID]PredictionSummary) {
	t.Helper()
	central := NewCentralized()
	if err := central.Train(fx.train, fx.labeler); err != nil {
		t.Fatal(err)
	}
	upstream := NewAD3(geo.Motorway)
	if err := upstream.Train(fx.train, fx.labeler); err != nil {
		t.Fatal(err)
	}
	ad3 := NewAD3(geo.MotorwayLink)
	if err := ad3.Train(fx.train, fx.labeler); err != nil {
		t.Fatal(err)
	}
	cad3 := NewCAD3(geo.MotorwayLink, CAD3Config{})
	if err := cad3.Train(fx.train, fx.labeler, upstream); err != nil {
		t.Fatal(err)
	}
	testMw := trace.RecordsOfType(fx.test, geo.Motorway)
	summaries, err := BuildTrainingSummaries(testMw, upstream, 0)
	if err != nil {
		t.Fatal(err)
	}
	return central, ad3, cad3, summaries
}

// TestModelOrderingFigure7 reproduces the paper's headline comparison:
// on the motorway-link RSU, CAD3 beats AD3 beats centralized in F1 and
// accuracy (Figure 7) and in FN rate (Table IV).
func TestModelOrderingFigure7(t *testing.T) {
	fx := corridorFixture(t)
	central, ad3, cad3, summaries := trainAll(t, fx)
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	if len(testLink) < 200 {
		t.Fatalf("only %d link test records", len(testLink))
	}

	mc, err := EvaluateDetector(central, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	ma, err := EvaluateDetector(ad3, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := EvaluateDetector(cad3, testLink, fx.labeler, summaries)
	if err != nil {
		t.Fatal(err)
	}

	t.Logf("centralized: %v", mc)
	t.Logf("AD3:         %v", ma)
	t.Logf("CAD3:        %v", mx)

	if ma.F1() <= mc.F1() {
		t.Errorf("AD3 F1 %.4f should beat centralized %.4f", ma.F1(), mc.F1())
	}
	if mx.F1() <= ma.F1() {
		t.Errorf("CAD3 F1 %.4f should beat AD3 %.4f", mx.F1(), ma.F1())
	}
	if mx.FNRate() >= mc.FNRate() {
		t.Errorf("CAD3 FN rate %.4f should be below centralized %.4f", mx.FNRate(), mc.FNRate())
	}
	if mx.Accuracy() <= mc.Accuracy() {
		t.Errorf("CAD3 accuracy %.4f should beat centralized %.4f", mx.Accuracy(), mc.Accuracy())
	}
}

func TestAccidentEstimationTable4(t *testing.T) {
	fx := corridorFixture(t)
	central, ad3, cad3, summaries := trainAll(t, fx)
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)

	rc, err := EstimateAccidents(central, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	ra, err := EstimateAccidents(ad3, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	rx, err := EstimateAccidents(cad3, testLink, fx.labeler, summaries)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("E(Lambda): centralized=%.1f AD3=%.1f CAD3=%.1f", rc.Expected, ra.Expected, rx.Expected)
	if rx.Expected >= ra.Expected || ra.Expected >= rc.Expected {
		t.Errorf("expected accident ordering CAD3 < AD3 < centralized, got %.2f / %.2f / %.2f",
			rx.Expected, ra.Expected, rc.Expected)
	}
	if rc.Records != len(testLink) {
		t.Errorf("records = %d, want %d", rc.Records, len(testLink))
	}
	if rc.FalseNegatives < rc.Abnormal/100 {
		t.Logf("centralized FNs unexpectedly low: %+v", rc)
	}
}

func TestCAD3FallbackWithoutSummary(t *testing.T) {
	fx := corridorFixture(t)
	_, _, cad3, summaries := trainAll(t, fx)
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)

	// Detection must succeed with and without a prior, and mark UsedPrior
	// accordingly.
	rec := testLink[0]
	var prior *PredictionSummary
	if s, ok := summaries[rec.Car]; ok {
		prior = &s
	}
	withPrior, err := cad3.Detect(rec, prior)
	if err != nil {
		t.Fatal(err)
	}
	without, err := cad3.Detect(rec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if prior != nil && !withPrior.UsedPrior {
		t.Error("UsedPrior should be set when a summary is supplied")
	}
	if without.UsedPrior {
		t.Error("UsedPrior must be false without a summary")
	}

	// Degraded CAD3 (no summaries at all) should still be a usable
	// detector, scoring at least near AD3.
	mx, err := EvaluateDetector(cad3, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	if mx.Accuracy() < 0.5 {
		t.Errorf("degraded CAD3 accuracy %.3f collapsed", mx.Accuracy())
	}
}

func TestDetectorErrors(t *testing.T) {
	ad3 := NewAD3(geo.Motorway)
	if _, err := ad3.Detect(mkRecord(1, geo.Motorway, 100, 0, 9), nil); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if _, err := ad3.PredictProba(mkRecord(1, geo.Motorway, 100, 0, 9)); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	central := NewCentralized()
	if _, err := central.Detect(mkRecord(1, geo.Motorway, 100, 0, 9), nil); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := central.Train(nil, nil); err != ErrNoRecords {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
	cad3 := NewCAD3(geo.MotorwayLink, CAD3Config{})
	if _, err := cad3.Detect(mkRecord(1, geo.MotorwayLink, 30, 0, 9), nil); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := cad3.Train(nil, nil, nil); err == nil {
		t.Error("want error for missing upstream")
	}
	// Training AD3 with no records of its type fails cleanly.
	fx := corridorFixture(t)
	res := NewAD3(geo.RoadType(0))
	if err := res.Train(fx.train, fx.labeler); err == nil {
		t.Error("want error for absent road type")
	}
}

func TestCAD3ConfigDefaults(t *testing.T) {
	c := NewCAD3(geo.MotorwayLink, CAD3Config{Weight: -3})
	if c.Weight() != DefaultCollabWeight {
		t.Errorf("weight = %v, want default", c.Weight())
	}
	c = NewCAD3(geo.MotorwayLink, CAD3Config{Weight: 0.8})
	if c.Weight() != 0.8 {
		t.Errorf("weight = %v, want 0.8", c.Weight())
	}
	if c.Name() != "CAD3" || c.RoadType() != geo.MotorwayLink {
		t.Errorf("identity = %q %v", c.Name(), c.RoadType())
	}
}

func TestCAD3DumpTree(t *testing.T) {
	fx := corridorFixture(t)
	_, _, cad3, _ := trainAll(t, fx)
	dump := cad3.DumpTree()
	if dump == "" {
		t.Error("empty tree dump")
	}
}

func TestDetectionTimelineFigure8(t *testing.T) {
	fx := corridorFixture(t)
	central, ad3, cad3, summaries := trainAll(t, fx)

	// Pick the aggressive test car with the most abnormal link records.
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	byCar := make(map[trace.CarID][]trace.Record)
	for _, r := range testLink {
		byCar[r.Car] = append(byCar[r.Car], r)
	}
	var bestCar trace.CarID
	bestAbn := -1
	for car, recs := range byCar {
		if _, ok := summaries[car]; !ok {
			continue
		}
		abn := 0
		for _, r := range recs {
			if l, err := fx.labeler.Label(r); err == nil && l == ClassAbnormal {
				abn++
			}
		}
		if abn > bestAbn {
			bestAbn, bestCar = abn, car
		}
	}
	if bestAbn < 3 {
		t.Skipf("no sufficiently abnormal test car (max %d abnormal records)", bestAbn)
	}

	trip := byCar[bestCar]
	trace.SortRecordsByTime(trip)
	timeline, err := DetectionTimeline([]Detector{central, ad3, cad3}, trip, fx.labeler, summaries)
	if err != nil {
		t.Fatal(err)
	}
	if len(timeline) == 0 {
		t.Fatal("empty timeline")
	}
	accC := TimelineAccuracy(timeline, "Centralized")
	accA := TimelineAccuracy(timeline, "AD3")
	accX := TimelineAccuracy(timeline, "CAD3")
	t.Logf("trip accuracy: centralized=%.3f ad3=%.3f cad3=%.3f (flips %d/%d/%d)",
		accC, accA, accX,
		Flips(timeline, "Centralized"), Flips(timeline, "AD3"), Flips(timeline, "CAD3"))
	if accX < accC {
		t.Errorf("CAD3 trip accuracy %.3f below centralized %.3f", accX, accC)
	}
}

func TestEvaluateDetectorObservesTruth(t *testing.T) {
	fx := corridorFixture(t)
	_, ad3, _, _ := trainAll(t, fx)
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	m, err := EvaluateDetector(ad3, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Total() != len(testLink) {
		t.Errorf("evaluated %d records, want %d", m.Total(), len(testLink))
	}
	var _ mlkit.ConfusionMatrix = m
}

func TestAccessorSurface(t *testing.T) {
	fx := corridorFixture(t)
	_, ad3, cad3, _ := trainAll(t, fx)
	if ad3.RoadType() != geo.MotorwayLink {
		t.Errorf("RoadType = %v", ad3.RoadType())
	}
	if cad3.LocalNB() == nil {
		t.Error("LocalNB is nil")
	}
	if names := FeatureNames(); len(names) != len(Features(fx.test[0])) {
		t.Errorf("FeatureNames width %d != Features width", len(names))
	}
	d := Detection{Class: ClassAbnormal}
	if !d.Abnormal() {
		t.Error("Abnormal() broken")
	}
	d.Class = ClassNormal
	if d.Abnormal() {
		t.Error("normal detection reported abnormal")
	}
}

func TestCAD3SummaryDepthFusion(t *testing.T) {
	// With depth k > 0, the fusion averages only the last k predictions.
	fx := corridorFixture(t)
	upstream := NewAD3(geo.Motorway)
	if err := upstream.Train(fx.train, fx.labeler); err != nil {
		t.Fatal(err)
	}
	det := NewCAD3(geo.MotorwayLink, CAD3Config{SummaryDepth: 2})
	if err := det.Train(fx.train, fx.labeler, upstream); err != nil {
		t.Fatal(err)
	}
	rec := trace.RecordsOfType(fx.test, geo.MotorwayLink)[0]
	// A summary whose trip mean is high but whose recent tail is low:
	// with depth 2 the fusion must use the tail.
	prior := &PredictionSummary{
		Car: rec.Car, MeanPNormal: 0.95, Count: 10,
		LastPNormal: []float64{0.9, 0.9, 0.05, 0.05},
	}
	dWithTail, err := det.Detect(rec, prior)
	if err != nil {
		t.Fatal(err)
	}
	noTail := &PredictionSummary{Car: rec.Car, MeanPNormal: 0.95, Count: 10}
	dMean, err := det.Detect(rec, noTail)
	if err != nil {
		t.Fatal(err)
	}
	// The two fusions use different priors; at minimum both must be valid
	// probabilities, and the suspicious tail must not raise P(normal).
	if dWithTail.PNormal > dMean.PNormal {
		t.Errorf("suspicious tail raised P(normal): %.3f > %.3f", dWithTail.PNormal, dMean.PNormal)
	}
}
