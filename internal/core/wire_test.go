package core

import (
	"encoding/json"
	"reflect"
	"testing"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

func wireTestRecord() trace.Record {
	return trace.Record{
		Car: 426, Road: 9001, Accel: -2.75, Speed: 37.5,
		Lat: 22.5431, Lon: 114.0579, Heading: 182.4,
		Hour: 9, Day: 4, RoadType: geo.MotorwayLink,
		RoadMeanSpeed: 35.2, TimestampMs: 1467621000123,
	}
}

func TestRecordBinaryRoundTrip(t *testing.T) {
	rec := wireTestRecord()
	payload, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	if len(payload) != RecordWireSize {
		t.Fatalf("binary record is %d bytes, want %d (the paper's packet size)", len(payload), RecordWireSize)
	}
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, rec)
	}
}

func TestRecordBinaryDropsAnomalousLikeJSON(t *testing.T) {
	rec := wireTestRecord()
	rec.Anomalous = true
	payload, err := EncodeRecord(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got.Anomalous {
		t.Error("Anomalous is generator ground truth and must not cross the wire")
	}
	rec.Anomalous = false
	if got != rec {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, rec)
	}
}

func TestRecordJSONFallback(t *testing.T) {
	rec := wireTestRecord()
	payload, err := EncodeRecordJSON(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatalf("JSON fallback decode: %v", err)
	}
	if got != rec {
		t.Fatalf("JSON fallback mismatch: got %+v want %+v", got, rec)
	}
}

func TestWarningBinaryRoundTripAndFallback(t *testing.T) {
	w := Warning{Car: 7, Road: -42, PNormal: 0.125, SourceTsMs: 1467621000123, DetectedTsMs: 1467621000170}
	payload, err := EncodeWarning(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeWarning(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, w)
	}
	j, err := EncodeWarningJSON(w)
	if err != nil {
		t.Fatal(err)
	}
	got, err = DecodeWarning(j)
	if err != nil {
		t.Fatalf("JSON fallback decode: %v", err)
	}
	if got != w {
		t.Fatalf("JSON fallback mismatch: got %+v want %+v", got, w)
	}
}

func TestSummaryBinaryRoundTripAndFallback(t *testing.T) {
	cases := []PredictionSummary{
		{Car: 3, MeanPNormal: 0.875, Count: 12, FromRoad: 9001, UpdatedMs: 99},
		{Car: 3, MeanPNormal: 0.875, Count: 12, FromRoad: 9001, UpdatedMs: 99,
			LastPNormal: []float64{0.9, 0.8, 0.7}},
	}
	for _, s := range cases {
		payload, err := EncodeSummary(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeSummary(payload)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, s)
		}
		j, err := EncodeSummaryJSON(s)
		if err != nil {
			t.Fatal(err)
		}
		got, err = DecodeSummary(j)
		if err != nil {
			t.Fatalf("JSON fallback decode: %v", err)
		}
		if !reflect.DeepEqual(got, s) {
			t.Fatalf("JSON fallback mismatch: got %+v want %+v", got, s)
		}
	}
}

func TestSummaryOversizedTailFallsBackToJSON(t *testing.T) {
	s := PredictionSummary{Car: 5, Count: 400, FromRoad: 1}
	for i := 0; i < maxSummaryTail+10; i++ {
		s.LastPNormal = append(s.LastPNormal, float64(i)/1000)
	}
	payload, err := EncodeSummary(s)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(payload) {
		t.Fatal("oversized-tail summary should encode as JSON")
	}
	got, err := DecodeSummary(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, s) {
		t.Fatalf("oversized-tail round trip mismatch")
	}
}

func TestDecodeRejectsTruncatedBinary(t *testing.T) {
	rec, _ := EncodeRecord(wireTestRecord())
	if _, err := DecodeRecord(rec[:recordBodySize-1]); err == nil {
		t.Error("truncated binary record should not decode")
	}
	w, _ := EncodeWarning(Warning{Car: 1})
	if _, err := DecodeWarning(w[:warningWireSize-1]); err == nil {
		t.Error("truncated binary warning should not decode")
	}
	s, _ := EncodeSummary(PredictionSummary{Car: 1, LastPNormal: []float64{0.5}})
	if _, err := DecodeSummary(s[:len(s)-1]); err == nil {
		t.Error("truncated binary summary tail should not decode")
	}
	if _, err := DecodeSummary(s[:summaryFixedSize-1]); err == nil {
		t.Error("truncated binary summary prefix should not decode")
	}
}

func TestDecodeUnknownVersionFallsBack(t *testing.T) {
	// A version-2 header is not JSON either, so decode must fail cleanly
	// (fall back to the JSON path and surface its error), never panic.
	payload := []byte{WireVersion + 1<<4 | wireTypeRecord, 0xde, 0xad}
	payload[0] = (WireVersion+1)<<4 | wireTypeRecord
	if _, err := DecodeRecord(payload); err == nil {
		t.Error("unknown-version payload should not decode as a record")
	}
	// Cross-type headers must not be accepted either.
	rec, _ := EncodeRecord(wireTestRecord())
	if _, err := DecodeWarning(rec); err == nil {
		t.Error("a binary record must not decode as a warning")
	}
}
