package core

import (
	"testing"

	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

func TestOnlineAD3ConvergesToOfflineQuality(t *testing.T) {
	fx := corridorFixture(t)

	online, err := NewOnlineAD3(geo.MotorwayLink, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range trace.RecordsOfType(fx.train, geo.MotorwayLink) {
		if err := online.Observe(r); err != nil {
			t.Fatal(err)
		}
	}
	if !online.Ready() {
		t.Fatalf("online model not ready after %d observations", online.Observations())
	}

	offline := NewAD3(geo.MotorwayLink)
	if err := offline.Train(fx.train, fx.labeler); err != nil {
		t.Fatal(err)
	}

	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	mOn, err := EvaluateDetector(online, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	mOff, err := EvaluateDetector(offline, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("online acc=%.4f f1=%.4f | offline acc=%.4f f1=%.4f",
		mOn.Accuracy(), mOn.F1(), mOff.Accuracy(), mOff.F1())
	// The online model labels with running (not final) statistics, so it
	// may trail the offline model slightly — but must be in the same
	// league.
	if mOn.Accuracy() < mOff.Accuracy()-0.08 {
		t.Errorf("online accuracy %.4f trails offline %.4f by too much", mOn.Accuracy(), mOff.Accuracy())
	}
}

func TestOnlineAD3WarmupBehaviour(t *testing.T) {
	online, err := NewOnlineAD3(geo.MotorwayLink, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := online.Detect(mkRecord(1, geo.MotorwayLink, 35, 0, 9), nil); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained before any data", err)
	}
	// Feed a tight normal cluster, below the warmup threshold.
	for i := 0; i < 30; i++ {
		rec := mkRecord(1, geo.MotorwayLink, 35+float64(i%5), 0, 9)
		if err := online.Observe(rec); err != nil {
			t.Fatal(err)
		}
	}
	if online.Ready() {
		t.Error("model should not be ready during warmup")
	}
	// During warmup the sigma rule still answers.
	det, err := online.Detect(mkRecord(1, geo.MotorwayLink, 37, 0, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if det.Class != ClassNormal {
		t.Error("in-band record should be normal under the sigma rule")
	}
	det, err = online.Detect(mkRecord(1, geo.MotorwayLink, 120, 0, 9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if det.Class != ClassAbnormal {
		t.Error("wild speeding should be abnormal under the sigma rule")
	}
	if p, err := online.PredictProba(mkRecord(1, geo.MotorwayLink, 120, 0, 9)); err != nil || p != 0 {
		t.Errorf("warmup proba = %v, %v", p, err)
	}
}

func TestOnlineAD3IgnoresOtherRoadTypes(t *testing.T) {
	online, err := NewOnlineAD3(geo.MotorwayLink, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := online.Observe(mkRecord(1, geo.Motorway, 100, 0, 9)); err != nil {
			t.Fatal(err)
		}
	}
	if online.Observations() != 0 {
		t.Errorf("foreign road type counted: %d observations", online.Observations())
	}
}

func TestLogisticAD3OnCorridor(t *testing.T) {
	fx := corridorFixture(t)
	det := NewLogisticAD3(geo.MotorwayLink, mlkit.LogisticConfig{})
	if err := det.Train(fx.train, fx.labeler); err != nil {
		t.Fatal(err)
	}
	testLink := trace.RecordsOfType(fx.test, geo.MotorwayLink)
	m, err := EvaluateDetector(det, testLink, fx.labeler, nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("logistic AD3: %v", m)
	if m.Accuracy() < 0.7 {
		t.Errorf("logistic accuracy %.3f too low", m.Accuracy())
	}
	if p, err := det.PredictProba(testLink[0]); err != nil || p < 0 || p > 1 {
		t.Errorf("proba = %v, %v", p, err)
	}
}

func TestLogisticAD3Errors(t *testing.T) {
	det := NewLogisticAD3(geo.MotorwayLink, mlkit.LogisticConfig{})
	if _, err := det.Detect(mkRecord(1, geo.MotorwayLink, 35, 0, 9), nil); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := det.Train(nil, nil); err == nil {
		t.Error("want error for empty training set")
	}
	if det.Name() != "LogisticAD3" {
		t.Errorf("name = %q", det.Name())
	}
}

func TestNewOnlineAD3Defaults(t *testing.T) {
	o, err := NewOnlineAD3(geo.Motorway, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if o.RoadType() != geo.Motorway || o.Name() != "OnlineAD3" {
		t.Errorf("identity = %v %q", o.RoadType(), o.Name())
	}
}
