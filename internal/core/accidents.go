package core

import (
	"fmt"
	"math"

	"cad3/internal/trace"
)

// The potential-accident estimator of §IV-E: Nilsson's power model says
// the number of injury-causing accidents scales with the square of the
// speed ratio (Equation 2). Applied per data point, the severity of a
// speed violation is
//
//	delta = 1 - (v_r / v_r(i))^2                      if speeding
//	delta = 1 - (v_r / (v_r + (v_r - v_r(i))))^2       if slowing
//
// and the expected number of potential accidents attributable to a model
// is the dot product of the false-negative indicator vector with the
// delta vector (Equation 3): every abnormal speed the model waves through
// contributes its severity.

// Delta returns the Nilsson severity of a vehicle speed v against the
// road's normal speed vr (both km/h). It returns 0 when the deviation is
// negligible or inputs are degenerate (vr <= 0).
func Delta(v, vr float64) float64 {
	if vr <= 0 {
		return 0
	}
	var ratio float64
	if v > vr { // speeding
		ratio = vr / v
	} else { // slowing: the effective closing speed grows as v drops
		denom := vr + (vr - v)
		if denom <= 0 {
			return 1
		}
		ratio = vr / denom
	}
	d := 1 - ratio*ratio
	return math.Max(0, math.Min(1, d))
}

// AccidentReport is the outcome of the Table IV estimation.
type AccidentReport struct {
	Records        int
	Abnormal       int
	FalseNegatives int
	// Expected is E(Lambda) of Equation 3.
	Expected float64
}

// EstimateAccidents evaluates a detector over records: for every record
// whose ground-truth label (from the labeler) is abnormal but which the
// detector classifies as normal, the record's Nilsson severity is added
// to the expectation. summaries supplies per-car priors for collaborative
// detectors (nil disables collaboration).
func EstimateAccidents(
	det Detector,
	records []trace.Record,
	labeler *Labeler,
	summaries map[trace.CarID]PredictionSummary,
) (AccidentReport, error) {
	var rep AccidentReport
	for _, r := range records {
		truth, err := labeler.Label(r)
		if err != nil {
			continue
		}
		rep.Records++
		if truth != ClassAbnormal {
			continue
		}
		rep.Abnormal++

		var prior *PredictionSummary
		if summaries != nil {
			if s, ok := summaries[r.Car]; ok {
				prior = &s
			}
		}
		d, err := det.Detect(r, prior)
		if err != nil {
			return rep, fmt.Errorf("estimate accidents: %w", err)
		}
		if d.Class == ClassNormal { // false negative
			rep.FalseNegatives++
			rep.Expected += Delta(r.Speed, r.RoadMeanSpeed)
		}
	}
	return rep, nil
}
