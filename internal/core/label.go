package core

import (
	"fmt"
	"math"

	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// Labeler implements the paper's offline outlier-labelling stage (§IV-B):
// within each road type the speed distribution is Gaussian-like, so a data
// point is normal (class 1) when both its speed and acceleration fall in
// [mu - k*sigma, mu + k*sigma] of that road type's distribution, and
// abnormal (class 0) otherwise. The paper uses k = 1.
type Labeler struct {
	sigmaK float64
	stats  map[geo.RoadType]labelStats
}

type labelStats struct {
	speedMu, speedSigma float64
	accelMu, accelSigma float64
	n                   int
}

// DefaultSigmaK is the paper's 1-sigma cutoff.
const DefaultSigmaK = 1.0

// TrainLabeler estimates per-road-type distributions from records.
// sigmaK <= 0 selects DefaultSigmaK.
func TrainLabeler(records []trace.Record, sigmaK float64) (*Labeler, error) {
	if len(records) == 0 {
		return nil, ErrNoRecords
	}
	if sigmaK <= 0 {
		sigmaK = DefaultSigmaK
	}
	type agg struct {
		n                                    int
		speedSum, speedSq, accelSum, accelSq float64
	}
	aggs := make(map[geo.RoadType]*agg)
	for _, r := range records {
		a := aggs[r.RoadType]
		if a == nil {
			a = &agg{}
			aggs[r.RoadType] = a
		}
		a.n++
		a.speedSum += r.Speed
		a.speedSq += r.Speed * r.Speed
		a.accelSum += r.Accel
		a.accelSq += r.Accel * r.Accel
	}
	l := &Labeler{sigmaK: sigmaK, stats: make(map[geo.RoadType]labelStats, len(aggs))}
	for t, a := range aggs {
		n := float64(a.n)
		sm := a.speedSum / n
		sv := a.speedSq/n - sm*sm
		am := a.accelSum / n
		av := a.accelSq/n - am*am
		l.stats[t] = labelStats{
			speedMu:    sm,
			speedSigma: math.Sqrt(math.Max(sv, 0)),
			accelMu:    am,
			accelSigma: math.Sqrt(math.Max(av, 0)),
			n:          a.n,
		}
	}
	return l, nil
}

// Label classifies one record against its road type's distribution.
func (l *Labeler) Label(r trace.Record) (int, error) {
	st, ok := l.stats[r.RoadType]
	if !ok {
		return 0, fmt.Errorf("core: labeler has no statistics for road type %v", r.RoadType)
	}
	k := l.sigmaK
	speedOK := math.Abs(r.Speed-st.speedMu) <= k*st.speedSigma
	accelOK := math.Abs(r.Accel-st.accelMu) <= k*st.accelSigma
	if speedOK && accelOK {
		return ClassNormal, nil
	}
	return ClassAbnormal, nil
}

// RoadStats returns the fitted (speedMu, speedSigma) for a road type,
// used by the accident estimator and reporting. ok is false when the road
// type was unseen.
func (l *Labeler) RoadStats(t geo.RoadType) (mu, sigma float64, ok bool) {
	st, found := l.stats[t]
	return st.speedMu, st.speedSigma, found
}

// SigmaK returns the configured cutoff multiplier.
func (l *Labeler) SigmaK() float64 { return l.sigmaK }

// MakeSamples converts records to labelled mlkit samples using the
// instantaneous features. Records with unseen road types are skipped and
// counted.
func (l *Labeler) MakeSamples(records []trace.Record) ([]mlkit.Sample, int) {
	out := make([]mlkit.Sample, 0, len(records))
	skipped := 0
	for _, r := range records {
		label, err := l.Label(r)
		if err != nil {
			skipped++
			continue
		}
		out = append(out, mlkit.Sample{Features: Features(r), Label: label})
	}
	return out, skipped
}

// AbnormalShare returns the labelled abnormal fraction of records.
func (l *Labeler) AbnormalShare(records []trace.Record) float64 {
	if len(records) == 0 {
		return 0
	}
	var abnormal, total int
	for _, r := range records {
		label, err := l.Label(r)
		if err != nil {
			continue
		}
		total++
		if label == ClassAbnormal {
			abnormal++
		}
	}
	if total == 0 {
		return 0
	}
	return float64(abnormal) / float64(total)
}
