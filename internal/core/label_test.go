package core

import (
	"math"
	"testing"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

func mkRecord(car trace.CarID, t geo.RoadType, speed, accel float64, hour int) trace.Record {
	return trace.Record{
		Car: car, Road: 1, RoadType: t, Speed: speed, Accel: accel,
		Hour: hour, Day: 4, RoadMeanSpeed: 0,
	}
}

// labelFixture builds records with a known distribution: motorway speeds
// N(100, 10), link speeds N(35, 5), accel N(0, 1).
func labelFixture() []trace.Record {
	var recs []trace.Record
	// Deterministic quasi-Gaussian via symmetric offsets.
	offsets := []float64{-2.5, -1.5, -0.8, -0.3, 0, 0.3, 0.8, 1.5, 2.5}
	for i, o := range offsets {
		for j := 0; j < 10; j++ {
			recs = append(recs, mkRecord(trace.CarID(i), geo.Motorway, 100+o*10, o*0.4, 9))
			recs = append(recs, mkRecord(trace.CarID(i), geo.MotorwayLink, 35+o*5, o*0.4, 9))
		}
	}
	return recs
}

func TestTrainLabelerStats(t *testing.T) {
	l, err := TrainLabeler(labelFixture(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if l.SigmaK() != DefaultSigmaK {
		t.Errorf("SigmaK = %v", l.SigmaK())
	}
	mu, sigma, ok := l.RoadStats(geo.Motorway)
	if !ok {
		t.Fatal("no motorway stats")
	}
	if math.Abs(mu-100) > 0.5 {
		t.Errorf("motorway mu = %.2f, want ~100", mu)
	}
	if sigma < 5 || sigma > 20 {
		t.Errorf("motorway sigma = %.2f", sigma)
	}
	if _, _, ok := l.RoadStats(geo.Residential); ok {
		t.Error("unseen road type should report ok=false")
	}
}

func TestLabelSigmaCutoff(t *testing.T) {
	l, err := TrainLabeler(labelFixture(), 1)
	if err != nil {
		t.Fatal(err)
	}
	mu, sigma, _ := l.RoadStats(geo.Motorway)

	atMean := mkRecord(1, geo.Motorway, mu, 0, 9)
	if got, err := l.Label(atMean); err != nil || got != ClassNormal {
		t.Errorf("Label(at mean) = %d, %v", got, err)
	}
	speeding := mkRecord(1, geo.Motorway, mu+2*sigma, 0, 9)
	if got, _ := l.Label(speeding); got != ClassAbnormal {
		t.Error("2-sigma speeding should be abnormal")
	}
	slowing := mkRecord(1, geo.Motorway, mu-2*sigma, 0, 9)
	if got, _ := l.Label(slowing); got != ClassAbnormal {
		t.Error("2-sigma slowing should be abnormal")
	}
	hardAccel := mkRecord(1, geo.Motorway, mu, 25, 9)
	if got, _ := l.Label(hardAccel); got != ClassAbnormal {
		t.Error("extreme acceleration should be abnormal")
	}
	// Context-awareness: 90 km/h is fine on a motorway, wild on a link
	// (the paper's own example in §IV-C).
	if got, _ := l.Label(mkRecord(1, geo.Motorway, 95, 0, 9)); got != ClassNormal {
		t.Error("95 km/h on motorway should be normal")
	}
	if got, _ := l.Label(mkRecord(1, geo.MotorwayLink, 90, 0, 9)); got != ClassAbnormal {
		t.Error("90 km/h on motorway link should be abnormal")
	}

	if _, err := l.Label(mkRecord(1, geo.Residential, 30, 0, 9)); err == nil {
		t.Error("want error for road type without stats")
	}
}

func TestLabelerSigmaKWidens(t *testing.T) {
	recs := labelFixture()
	tight, _ := TrainLabeler(recs, 1)
	loose, _ := TrainLabeler(recs, 3)
	if tight.AbnormalShare(recs) <= loose.AbnormalShare(recs) {
		t.Errorf("1-sigma share %.3f should exceed 3-sigma share %.3f",
			tight.AbnormalShare(recs), loose.AbnormalShare(recs))
	}
}

func TestMakeSamples(t *testing.T) {
	recs := labelFixture()
	l, _ := TrainLabeler(recs, 0)
	recs = append(recs, mkRecord(1, geo.Residential, 30, 0, 9)) // unseen type
	samples, skipped := l.MakeSamples(recs)
	if skipped != 1 {
		t.Errorf("skipped = %d, want 1", skipped)
	}
	if len(samples) != len(recs)-1 {
		t.Errorf("samples = %d", len(samples))
	}
	for _, s := range samples {
		if len(s.Features) != 3 {
			t.Fatalf("feature width = %d", len(s.Features))
		}
	}
}

func TestTrainLabelerEmpty(t *testing.T) {
	if _, err := TrainLabeler(nil, 0); err != ErrNoRecords {
		t.Errorf("err = %v, want ErrNoRecords", err)
	}
}

func TestDeltaSeverity(t *testing.T) {
	// Speeding: delta grows toward 1 as v outruns vr.
	if d := Delta(100, 100); d != 0 {
		t.Errorf("Delta(at road speed) = %v, want 0", d)
	}
	if d := Delta(200, 100); math.Abs(d-0.75) > 1e-12 {
		t.Errorf("Delta(2x) = %v, want 0.75", d)
	}
	// Slowing: vr=100, v=50 -> ratio 100/150, delta = 1-(2/3)^2 = 5/9.
	if d := Delta(50, 100); math.Abs(d-5.0/9.0) > 1e-12 {
		t.Errorf("Delta(slow) = %v, want 5/9", d)
	}
	// Monotone in deviation.
	if Delta(130, 100) >= Delta(180, 100) {
		t.Error("faster speeding should be more severe")
	}
	if Delta(80, 100) >= Delta(30, 100) {
		t.Error("harder slowing should be more severe")
	}
	// Degenerate inputs.
	if Delta(50, 0) != 0 {
		t.Error("vr=0 should yield 0")
	}
	if d := Delta(0, 100); d <= 0 || d > 1 {
		t.Errorf("full stop severity = %v", d)
	}
	// Range.
	for _, v := range []float64{0, 10, 99, 100, 101, 500} {
		if d := Delta(v, 100); d < 0 || d > 1 {
			t.Errorf("Delta(%v,100) = %v out of [0,1]", v, d)
		}
	}
}
