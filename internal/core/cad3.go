package core

import (
	"fmt"
	"sort"

	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// CAD3 is the collaborative model (§IV-D): the RSU's local Naive Bayes
// prediction is fused with the vehicle's prediction history forwarded by
// the previous RSU,
//
//	P_X = w * P̄_prevs + (1-w) * P_NB        (Equation 1, w = 0.5)
//
// and a Decision Tree over [Hour, P_X, Class_NB] makes the final call.
// When no summary is available for a vehicle (first sighting, upstream RSU
// failure, stale summary) CAD3 degrades to the standalone behaviour by
// substituting P_NB for P̄_prevs, which collapses P_X to P_NB.
type CAD3 struct {
	local *AD3 // NB for this RSU's road type
	tree  *mlkit.DecisionTree
	// weight is w in Equation 1 (paper: 0.5). SummaryDepth selects how
	// much history the fusion uses: 0 = the full-trip mean (paper), k > 0
	// = mean of the last k predictions (ablation).
	weight       float64
	summaryDepth int
	summaryRoad  geo.SegmentID
	trained      bool
}

var _ Detector = (*CAD3)(nil)

// CAD3Config tunes the collaborative model. The zero value reproduces the
// paper.
type CAD3Config struct {
	// Weight is w in Equation 1. Values outside (0, 1] select 0.5.
	Weight float64
	// SummaryDepth: 0 uses the summary's full-trip mean; k > 0 averages
	// only the last k predictions.
	SummaryDepth int
	// SummaryRoad, when nonzero, restricts training-summary construction
	// to the upstream records on that specific road — the paper's
	// P̄_prevs covers "the motorway" the vehicle just drove, not the
	// car's whole history on every motorway.
	SummaryRoad geo.SegmentID
	// Tree overrides the Decision Tree growth bounds.
	Tree mlkit.TreeConfig
}

// DefaultCollabWeight is the paper's w = 0.5.
const DefaultCollabWeight = 0.5

// NewCAD3 creates an untrained CAD3 detector for the given road type.
func NewCAD3(roadType geo.RoadType, cfg CAD3Config) *CAD3 {
	w := cfg.Weight
	if w <= 0 || w > 1 {
		w = DefaultCollabWeight
	}
	if cfg.Tree == (mlkit.TreeConfig{}) {
		// A shallow tree regularizes the three-feature fusion well and
		// stays human-readable — the explainability the paper argues is
		// critical for road-safety liability (§VI-D4).
		cfg.Tree = mlkit.TreeConfig{MaxDepth: 4}
	}
	return &CAD3{
		local:        NewAD3(roadType),
		tree:         mlkit.NewDecisionTree(cfg.Tree),
		weight:       w,
		summaryDepth: cfg.SummaryDepth,
		summaryRoad:  cfg.SummaryRoad,
	}
}

// Name implements Detector.
func (c *CAD3) Name() string { return "CAD3" }

// RoadType returns the road type the detector serves.
func (c *CAD3) RoadType() geo.RoadType { return c.local.roadType }

// Weight returns w of Equation 1.
func (c *CAD3) Weight() float64 { return c.weight }

// Train fits the model. records must contain this RSU's road type (for the
// local NB and the tree) and upstream's (to synthesise training
// summaries). upstream is the previous RSU's already-trained model, whose
// per-car prediction history stands in for the CO-DATA stream during
// offline training — mirroring the paper's procedure of passing previous
// prediction probabilities from the Motorway RSU.
func (c *CAD3) Train(records []trace.Record, labeler *Labeler, upstream *AD3) error {
	if upstream == nil {
		return fmt.Errorf("core: CAD3 training requires the upstream AD3 model")
	}
	if err := c.local.Train(records, labeler); err != nil {
		return err
	}

	// Synthesise per-car summaries from the upstream road's records.
	upstreamRecs := trace.RecordsOfType(records, upstream.roadType)
	if c.summaryRoad != 0 {
		scoped := upstreamRecs[:0:0]
		for _, r := range upstreamRecs {
			if r.Road == c.summaryRoad {
				scoped = append(scoped, r)
			}
		}
		upstreamRecs = scoped
	}
	summaries, err := BuildTrainingSummaries(upstreamRecs, upstream, c.summaryDepth)
	if err != nil {
		return fmt.Errorf("CAD3 training summaries: %w", err)
	}

	// Fuse and grow the tree on this road's records.
	own := trace.RecordsOfType(records, c.local.roadType)
	if len(own) == 0 {
		return fmt.Errorf("%w for road type %v", ErrNoRecords, c.local.roadType)
	}
	samples := make([]mlkit.Sample, 0, len(own))
	for _, r := range own {
		label, err := labeler.Label(r)
		if err != nil {
			continue
		}
		pNB, err := c.local.PredictProba(r)
		if err != nil {
			return fmt.Errorf("CAD3 training NB: %w", err)
		}
		var prior *PredictionSummary
		if s, ok := summaries[r.Car]; ok {
			prior = &s
		}
		samples = append(samples, mlkit.Sample{
			Features: c.fusedFeatures(r, pNB, prior),
			Label:    label,
		})
	}
	if err := c.tree.Fit(samples); err != nil {
		return fmt.Errorf("CAD3 tree fit: %w", err)
	}
	c.trained = true
	return nil
}

// fusedVec builds [Hour, P_X, Class_NB] as a stack-resident array — the
// detect path's feature construction allocates nothing.
func (c *CAD3) fusedVec(r trace.Record, pNB float64, prior *PredictionSummary) [3]float64 {
	pPrev := pNB // no summary -> collapse to the standalone probability
	if prior != nil {
		pPrev = c.summaryMean(prior)
	}
	pX := c.weight*pPrev + (1-c.weight)*pNB
	return [3]float64{float64(r.Hour), pX, float64(mlkit.PredictLabel(pNB))}
}

// fusedFeatures is the slice form of fusedVec, for training-sample
// construction (mlkit.Sample carries a slice).
func (c *CAD3) fusedFeatures(r trace.Record, pNB float64, prior *PredictionSummary) []float64 {
	v := c.fusedVec(r, pNB, prior)
	return v[:]
}

func (c *CAD3) summaryMean(s *PredictionSummary) float64 {
	if c.summaryDepth <= 0 || len(s.LastPNormal) == 0 {
		return s.MeanPNormal
	}
	k := c.summaryDepth
	if k > len(s.LastPNormal) {
		k = len(s.LastPNormal)
	}
	tail := s.LastPNormal[len(s.LastPNormal)-k:]
	var sum float64
	for _, p := range tail {
		sum += p
	}
	return sum / float64(k)
}

// Detect implements Detector: Naive Bayes, Equation 1 fusion with the
// forwarded summary, then the Decision Tree's final classification.
func (c *CAD3) Detect(rec trace.Record, prior *PredictionSummary) (Detection, error) {
	if !c.trained {
		return Detection{}, ErrNotTrained
	}
	pNB, err := c.local.PredictProba(rec)
	if err != nil {
		return Detection{}, err
	}
	pTree, err := c.tree.PredictProba3(c.fusedVec(rec, pNB, prior))
	if err != nil {
		return Detection{}, fmt.Errorf("CAD3 tree: %w", err)
	}
	return Detection{
		Car:       rec.Car,
		Road:      int64(rec.Road),
		Class:     mlkit.PredictLabel(pTree),
		PNormal:   pTree,
		UsedPrior: prior != nil,
	}, nil
}

// LocalNB exposes the local Naive Bayes (the summary builder feeds on its
// probabilities).
func (c *CAD3) LocalNB() *AD3 { return c.local }

// DumpTree renders the fitted Decision Tree for explainability review.
func (c *CAD3) DumpTree() string {
	return c.tree.Dump([]string{"hour", "pX", "classNB"})
}

// BuildTrainingSummaries replays an upstream model over its road's records
// grouped per car, producing the summaries the paper's CO-DATA stream
// would have delivered. Exported because the experiment harness also uses
// it to drive evaluation.
func BuildTrainingSummaries(upstreamRecs []trace.Record, upstream *AD3, depth int) (map[trace.CarID]PredictionSummary, error) {
	byCar := make(map[trace.CarID][]trace.Record)
	for _, r := range upstreamRecs {
		byCar[r.Car] = append(byCar[r.Car], r)
	}
	out := make(map[trace.CarID]PredictionSummary, len(byCar))
	for car, recs := range byCar {
		sort.SliceStable(recs, func(i, j int) bool { return recs[i].TimestampMs < recs[j].TimestampMs })
		builder := NewSummaryBuilder(0, nil)
		for _, r := range recs {
			p, err := upstream.PredictProba(r)
			if err != nil {
				return nil, err
			}
			builder.Observe(car, p)
		}
		if s, ok := builder.Summarize(car); ok {
			out[car] = s
		}
		_ = depth // depth is applied at fusion time, not at build time
	}
	return out, nil
}
