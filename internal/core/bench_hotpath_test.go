package core

import (
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/obsv"
	"cad3/internal/trace"
)

func benchRecord() trace.Record {
	return trace.Record{
		Car: 42, Road: 900001, Accel: 1.25, Speed: 61.5,
		Lat: 22.5431, Lon: 114.0579, Heading: 87.3,
		Hour: 18, Day: 12, RoadType: geo.Motorway,
		RoadMeanSpeed: 54.2, TimestampMs: 1721930000123,
	}
}

func benchWarning() Warning {
	return Warning{Car: 42, Road: 900001, PNormal: 0.31,
		SourceTsMs: 1721930000123, DetectedTsMs: 1721930000161}
}

func benchSummary() PredictionSummary {
	return PredictionSummary{Car: 42, MeanPNormal: 0.87, Count: 84,
		FromRoad: 900001, UpdatedMs: 1721930000123,
		LastPNormal: []float64{0.91, 0.88, 0.83, 0.79, 0.85}}
}

// BenchmarkWireCodec compares the binary codec against the JSON fallback
// for each wire type, measuring one encode+decode round trip per op with a
// reused destination buffer (the steady-state telemetry path).
func BenchmarkWireCodec(b *testing.B) {
	b.Run("record/binary", func(b *testing.B) {
		rec := benchRecord()
		dst := make([]byte, 0, RecordWireSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = AppendRecord(dst[:0], rec)
			if _, err := DecodeRecord(dst); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})
	b.Run("record/json", func(b *testing.B) {
		rec := benchRecord()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			payload, err := EncodeRecordJSON(rec)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeRecord(payload); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})
	b.Run("warning/binary", func(b *testing.B) {
		w := benchWarning()
		dst := make([]byte, 0, 64)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = AppendWarning(dst[:0], w)
			if _, err := DecodeWarning(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("warning/json", func(b *testing.B) {
		w := benchWarning()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			payload, err := EncodeWarningJSON(w)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeWarning(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("summary/binary", func(b *testing.B) {
		s := benchSummary()
		dst := make([]byte, 0, 128)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var err error
			dst, err = AppendSummary(dst[:0], s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeSummary(dst); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("summary/json", func(b *testing.B) {
		s := benchSummary()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			payload, err := EncodeSummaryJSON(s)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeSummary(payload); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTracedWire isolates the tracing overhead on the telemetry fast
// path: encoding a traced record vs a plain one, the broker's in-place
// arrival stamp, and the dequeue-side context extraction — the three
// per-record costs the observability layer adds (DESIGN.md §9).
func BenchmarkTracedWire(b *testing.B) {
	rec := benchRecord()
	var tc obsv.TraceContext
	tc.Stamp(obsv.StageSent, time.UnixMilli(rec.TimestampMs))
	b.Run("record/traced", func(b *testing.B) {
		dst := make([]byte, 0, RecordWireSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = AppendRecordTraced(dst[:0], rec, tc)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})
	b.Run("record/plain", func(b *testing.B) {
		dst := make([]byte, 0, RecordWireSize)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			dst = AppendRecord(dst[:0], rec)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	})
	b.Run("stamp-arrive", func(b *testing.B) {
		payload := AppendRecordTraced(nil, rec, tc)
		at := time.UnixMilli(rec.TimestampMs + 1)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			// First-write-wins: after the first iteration the stamp is a
			// read-and-skip, which is the broker's steady-state re-produce
			// cost; iteration 1 pays the actual write.
			obsv.StampPayload(payload, obsv.StageArrive, at)
		}
	})
	b.Run("extract", func(b *testing.B) {
		payload := AppendRecordTraced(nil, rec, tc)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, ok := RecordTrace(payload); !ok {
				b.Fatal("trace not found")
			}
		}
	})
}

// BenchmarkDetectHotPath measures the per-record detection cost of each
// model on the trained corridor fixture — the inner loop of an RSU's
// micro-batch worker.
func BenchmarkDetectHotPath(b *testing.B) {
	fx := corridorFixture(b)
	central, ad3, cad3, summaries := trainAll(b, fx)

	rec := fx.test[0]
	for _, r := range fx.test {
		if _, ok := summaries[r.Car]; ok {
			rec = r
			break
		}
	}
	prior, hasPrior := summaries[rec.Car]
	if !hasPrior {
		b.Fatal("fixture has no test record with a forwarded summary")
	}

	run := func(b *testing.B, det Detector, p *PredictionSummary) {
		b.Helper()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := det.Detect(rec, p); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	}
	b.Run("AD3", func(b *testing.B) { run(b, ad3, nil) })
	b.Run("CAD3", func(b *testing.B) { run(b, cad3, &prior) })
	b.Run("Centralized", func(b *testing.B) { run(b, central, nil) })
}
