package core

import (
	"testing"
	"time"

	"cad3/internal/obsv"
)

func testTraceContext() obsv.TraceContext {
	return obsv.TraceContext{
		BatchID:      9,
		SentMicro:    1_000_000,
		ArriveMicro:  1_004_000,
		DequeueMicro: 1_030_000,
		DetectMicro:  1_041_000,
	}
}

// TestTraceLayoutConstants pins obsv's knowledge of the wire layout to the
// codec's actual constants — if either side moves, this fails before any
// cross-package corruption can.
func TestTraceLayoutConstants(t *testing.T) {
	if obsv.RecordTraceOffset != recordBodySize {
		t.Fatalf("obsv.RecordTraceOffset = %d, codec body = %d", obsv.RecordTraceOffset, recordBodySize)
	}
	if obsv.RecordFrameSize != RecordWireSize {
		t.Fatalf("obsv.RecordFrameSize = %d, codec frame = %d", obsv.RecordFrameSize, RecordWireSize)
	}
	if obsv.WarningTraceOffset != warningWireSize {
		t.Fatalf("obsv.WarningTraceOffset = %d, codec warning = %d", obsv.WarningTraceOffset, warningWireSize)
	}
	if obsv.RecordTraceOffset+obsv.TraceBlobSize > RecordWireSize {
		t.Fatal("trace blob does not fit the record padding")
	}
}

func TestRecordTraceRoundTrip(t *testing.T) {
	rec := wireTestRecord()
	tc := testTraceContext()
	payload := AppendRecordTraced(nil, rec, tc)
	if len(payload) != RecordWireSize {
		t.Fatalf("traced record is %d bytes, want %d", len(payload), RecordWireSize)
	}

	// The record decodes exactly as an untraced one.
	got, err := DecodeRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	want := rec
	want.Anomalous = false // ground truth never rides the wire
	if got != want {
		t.Fatalf("traced frame decoded record mismatch:\n got %+v\nwant %+v", got, want)
	}

	gotTC, ok := RecordTrace(payload)
	if !ok || gotTC != tc {
		t.Fatalf("RecordTrace: ok=%v got=%+v want=%+v", ok, gotTC, tc)
	}

	// Untraced frames report no context.
	if _, ok := RecordTrace(AppendRecord(nil, rec)); ok {
		t.Fatal("untraced frame reported a trace")
	}
}

func TestWarningTraceRoundTrip(t *testing.T) {
	w := Warning{Car: 42, Road: 900001, PNormal: 0.31,
		SourceTsMs: 1721930000123, DetectedTsMs: 1721930000161}
	tc := testTraceContext()
	tc.DeliverMicro = 1_055_000
	payload := AppendWarningTraced(nil, w, tc)

	got, err := DecodeWarning(payload)
	if err != nil {
		t.Fatal(err)
	}
	if got != w {
		t.Fatalf("traced warning decoded mismatch: %+v", got)
	}
	gotTC, ok := WarningTrace(payload)
	if !ok || gotTC != tc {
		t.Fatalf("WarningTrace: ok=%v got=%+v", ok, gotTC)
	}
	if _, ok := WarningTrace(AppendWarning(nil, w)); ok {
		t.Fatal("untraced warning reported a trace")
	}
}

// TestTraceJSONFallback proves the JSON wire fallback keeps working end to
// end and simply degrades to untraced operation.
func TestTraceJSONFallback(t *testing.T) {
	rec := wireTestRecord()
	payload, err := EncodeRecordJSON(rec)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeRecord(payload); err != nil {
		t.Fatalf("JSON record stopped decoding: %v", err)
	}
	if _, ok := RecordTrace(payload); ok {
		t.Fatal("JSON record reported a trace context")
	}

	w := Warning{Car: 1, Road: 2, PNormal: 0.5}
	jw, err := EncodeWarningJSON(w)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := WarningTrace(jw); ok {
		t.Fatal("JSON warning reported a trace context")
	}
}

// TestBrokerStampPropagatesThroughWire simulates the broker stamping its
// copy at append time: the stamp lands in the padding and survives decode.
func TestBrokerStampPropagatesThroughWire(t *testing.T) {
	tc := obsv.TraceContext{BatchID: 1, SentMicro: 1_000_000}
	payload := AppendRecordTraced(nil, wireTestRecord(), tc)
	if !obsv.StampPayload(payload, obsv.StageArrive, time.UnixMicro(1_004_200)) {
		t.Fatal("stamp refused")
	}
	got, ok := RecordTrace(payload)
	if !ok || got.ArriveMicro != 1_004_200 || got.SentMicro != 1_000_000 {
		t.Fatalf("stamped trace: ok=%v %+v", ok, got)
	}
}
