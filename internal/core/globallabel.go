package core

import (
	"math"

	"cad3/internal/trace"
)

// GlobalLabeler is the centralized pipeline's labelling stage: one pooled
// sigma-cutoff over all road vehicular data at once, with no road-type
// resolution. The paper attributes the centralized model's weakness
// exactly here — "cloud solutions tend to deploy city-scale models that
// lack the fine-grained resolution to address road-level abnormal driving
// behavior detection" (§II-A): a speed that is wildly abnormal for a
// motorway link sits comfortably inside the city-wide envelope, so the
// centralized model never learns to flag it.
type GlobalLabeler struct {
	sigmaK              float64
	speedMu, speedSigma float64
	accelMu, accelSigma float64
}

// TrainGlobalLabeler pools every record regardless of road type.
func TrainGlobalLabeler(records []trace.Record, sigmaK float64) (*GlobalLabeler, error) {
	if len(records) == 0 {
		return nil, ErrNoRecords
	}
	if sigmaK <= 0 {
		sigmaK = DefaultSigmaK
	}
	var n float64
	var sSum, sSq, aSum, aSq float64
	for _, r := range records {
		n++
		sSum += r.Speed
		sSq += r.Speed * r.Speed
		aSum += r.Accel
		aSq += r.Accel * r.Accel
	}
	sm := sSum / n
	am := aSum / n
	return &GlobalLabeler{
		sigmaK:     sigmaK,
		speedMu:    sm,
		speedSigma: math.Sqrt(math.Max(sSq/n-sm*sm, 0)),
		accelMu:    am,
		accelSigma: math.Sqrt(math.Max(aSq/n-am*am, 0)),
	}, nil
}

// Label applies the pooled cutoff.
func (g *GlobalLabeler) Label(r trace.Record) int {
	k := g.sigmaK
	speedOK := math.Abs(r.Speed-g.speedMu) <= k*g.speedSigma
	accelOK := math.Abs(r.Accel-g.accelMu) <= k*g.accelSigma
	if speedOK && accelOK {
		return ClassNormal
	}
	return ClassAbnormal
}
