package core

import (
	"encoding/json"
	"fmt"
	"io"

	"cad3/internal/geo"
)

// Detector persistence: trained detectors serialize to a tagged JSON
// bundle so models can be trained once (e.g. by cmd/cad3-train) and
// loaded by RSUs at startup instead of retraining.

// Bundle kinds.
const (
	kindAD3         = "AD3"
	kindCAD3        = "CAD3"
	kindCentralized = "Centralized"
)

type detectorBundle struct {
	Kind     string          `json:"kind"`
	RoadType int             `json:"roadType,omitempty"`
	NB       json.RawMessage `json:"nb,omitempty"`
	Tree     json.RawMessage `json:"tree,omitempty"`
	Weight   float64         `json:"weight,omitempty"`
	Depth    int             `json:"summaryDepth,omitempty"`
	Road     int64           `json:"summaryRoad,omitempty"`
}

// SaveDetector writes a trained detector (AD3, CAD3 or Centralized) as
// JSON.
func SaveDetector(w io.Writer, det Detector) error {
	var b detectorBundle
	switch d := det.(type) {
	case *AD3:
		nb, err := json.Marshal(d.nb)
		if err != nil {
			return fmt.Errorf("save AD3: %w", err)
		}
		b = detectorBundle{Kind: kindAD3, RoadType: int(d.roadType), NB: nb}
	case *Centralized:
		nb, err := json.Marshal(d.nb)
		if err != nil {
			return fmt.Errorf("save centralized: %w", err)
		}
		b = detectorBundle{Kind: kindCentralized, NB: nb}
	case *CAD3:
		if !d.trained {
			return ErrNotTrained
		}
		nb, err := json.Marshal(d.local.nb)
		if err != nil {
			return fmt.Errorf("save CAD3 NB: %w", err)
		}
		tree, err := json.Marshal(d.tree)
		if err != nil {
			return fmt.Errorf("save CAD3 tree: %w", err)
		}
		b = detectorBundle{
			Kind:     kindCAD3,
			RoadType: int(d.local.roadType),
			NB:       nb,
			Tree:     tree,
			Weight:   d.weight,
			Depth:    d.summaryDepth,
			Road:     int64(d.summaryRoad),
		}
	default:
		return fmt.Errorf("core: cannot persist detector %T", det)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(b)
}

// LoadDetector reads a detector bundle written by SaveDetector.
func LoadDetector(r io.Reader) (Detector, error) {
	var b detectorBundle
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("core: decode detector bundle: %w", err)
	}
	switch b.Kind {
	case kindAD3:
		d := NewAD3(geo.RoadType(b.RoadType))
		if !d.roadType.Valid() {
			return nil, fmt.Errorf("core: AD3 bundle road type %d invalid", b.RoadType)
		}
		if err := json.Unmarshal(b.NB, d.nb); err != nil {
			return nil, fmt.Errorf("core: load AD3: %w", err)
		}
		return d, nil
	case kindCentralized:
		d := NewCentralized()
		if err := json.Unmarshal(b.NB, d.nb); err != nil {
			return nil, fmt.Errorf("core: load centralized: %w", err)
		}
		return d, nil
	case kindCAD3:
		rt := geo.RoadType(b.RoadType)
		if !rt.Valid() {
			return nil, fmt.Errorf("core: CAD3 bundle road type %d invalid", b.RoadType)
		}
		d := NewCAD3(rt, CAD3Config{
			Weight:       b.Weight,
			SummaryDepth: b.Depth,
			SummaryRoad:  geo.SegmentID(b.Road),
		})
		if err := json.Unmarshal(b.NB, d.local.nb); err != nil {
			return nil, fmt.Errorf("core: load CAD3 NB: %w", err)
		}
		if err := json.Unmarshal(b.Tree, d.tree); err != nil {
			return nil, fmt.Errorf("core: load CAD3 tree: %w", err)
		}
		d.trained = true
		return d, nil
	default:
		return nil, fmt.Errorf("core: unknown detector kind %q", b.Kind)
	}
}
