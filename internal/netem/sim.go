package netem

import (
	"container/heap"
	"errors"
	"time"
)

// Simulator is a minimal discrete-event simulator: a virtual clock and an
// event queue. The latency experiments run the whole CAD3 pipeline —
// vehicle transmissions, MAC contention, micro-batch boundaries,
// processing, consumer polling — on this clock, making the Figure 6
// benches deterministic and wall-clock-independent.
type Simulator struct {
	now    time.Time
	queue  eventQueue
	nextID int64
}

// ErrSimEmpty is returned by Step when no events remain.
var ErrSimEmpty = errors.New("netem: simulator has no pending events")

type event struct {
	at  time.Time
	seq int64 // FIFO tiebreak for simultaneous events
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if !q[i].at.Equal(q[j].at) {
		return q[i].at.Before(q[j].at)
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() any     { old := *q; n := len(old); e := old[n-1]; *q = old[:n-1]; return e }

// NewSimulator starts a simulator at the given virtual instant.
func NewSimulator(start time.Time) *Simulator {
	return &Simulator{now: start}
}

// Now returns the current virtual time. It has the signature of time.Now
// so components accept it as an injected clock.
func (s *Simulator) Now() time.Time { return s.now }

// At schedules fn at an absolute virtual time. Scheduling in the past
// fires at the current instant.
func (s *Simulator) At(t time.Time, fn func()) {
	if t.Before(s.now) {
		t = s.now
	}
	s.nextID++
	heap.Push(&s.queue, event{at: t, seq: s.nextID, fn: fn})
}

// After schedules fn after a virtual delay.
func (s *Simulator) After(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	s.At(s.now.Add(d), fn)
}

// Step pops and runs the next event, advancing the clock.
func (s *Simulator) Step() error {
	if s.queue.Len() == 0 {
		return ErrSimEmpty
	}
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	e.fn()
	return nil
}

// RunUntil processes events until the queue is empty or the clock would
// pass the deadline; events scheduled after the deadline stay queued. It
// returns the number of events processed.
func (s *Simulator) RunUntil(deadline time.Time) int {
	var n int
	for s.queue.Len() > 0 {
		next := s.queue[0].at
		if next.After(deadline) {
			break
		}
		_ = s.Step()
		n++
	}
	if s.now.Before(deadline) {
		s.now = deadline
	}
	return n
}

// Run processes all pending events (including those newly scheduled by
// event handlers), returning the count. Use with care: a self-rescheduling
// event makes this loop forever — prefer RunUntil in that case.
func (s *Simulator) Run() int {
	var n int
	for s.queue.Len() > 0 {
		_ = s.Step()
		n++
	}
	return n
}

// Pending returns the number of queued events.
func (s *Simulator) Pending() int { return s.queue.Len() }
