package netem

import (
	"testing"
	"time"
)

func BenchmarkMediumTransmit(b *testing.B) {
	m, err := NewMedium(MediumConfig{MCS: MCS8, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	now := t0
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		done, err := m.Transmit("v", ReportBytes, now)
		if err != nil {
			b.Fatal(err)
		}
		now = done
	}
}

func BenchmarkHTBReserve(b *testing.B) {
	h, err := NewHTB(DSRCBandwidthBps, t0)
	if err != nil {
		b.Fatal(err)
	}
	if err := h.AddClass("v", PerVehicleFloorBps, 0); err != nil {
		b.Fatal(err)
	}
	now := t0
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Reserve("v", ReportBytes, now); err != nil {
			b.Fatal(err)
		}
		now = now.Add(100 * time.Millisecond)
	}
}

func BenchmarkSimulatorEvents(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := NewSimulator(t0)
		for j := 0; j < 1000; j++ {
			s.After(time.Duration(j)*time.Microsecond, func() {})
		}
		if n := s.Run(); n != 1000 {
			b.Fatalf("ran %d events", n)
		}
	}
}

func BenchmarkMACAccessTimeEval(b *testing.B) {
	m := MACModel{}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.AccessTime(256, ReportBytes, MCS8); err != nil {
			b.Fatal(err)
		}
	}
}
