// Package netem emulates the network substrate of the paper's testbed
// in-process: the hierarchical token bucket (tc/netem HTB) that shapes the
// emulated DSRC link, the IEEE 802.11p CSMA/CA channel-access model of
// Equations 5-6, a contention-based shared medium, and a discrete-event
// simulator that drives all of it on a virtual clock so latency
// experiments are fast and deterministic.
package netem

import (
	"fmt"
	"time"
)

// Common DSRC constants from the paper's testbed and §VI-D1.
const (
	// DSRCBandwidthBps is the shared DSRC channel capacity (27 Mb/s).
	DSRCBandwidthBps = 27_000_000
	// PerVehicleFloorBps is the HTB per-producer guaranteed rate
	// (100 Kb/s) the paper configures with netem.
	PerVehicleFloorBps = 100_000
	// ReportHz is the vehicle status update rate (10 Hz).
	ReportHz = 10
	// ReportBytes is the paper's per-update payload (~200 B).
	ReportBytes = 200
)

// TokenBucket is a deterministic token bucket on an explicit clock: all
// methods take the current time, so it runs identically on the wall clock
// and in the discrete-event simulator.
type TokenBucket struct {
	rateBps float64 // tokens (bytes) per second... bytes/s
	burst   float64 // bucket depth in bytes
	tokens  float64
	last    time.Time
}

// NewTokenBucket creates a bucket with the given rate (bits per second —
// network convention) and burst (bytes). The bucket starts full at `start`.
func NewTokenBucket(rateBitsPerSec float64, burstBytes float64, start time.Time) (*TokenBucket, error) {
	if rateBitsPerSec <= 0 {
		return nil, fmt.Errorf("netem: token bucket rate must be positive, got %v", rateBitsPerSec)
	}
	if burstBytes <= 0 {
		return nil, fmt.Errorf("netem: token bucket burst must be positive, got %v", burstBytes)
	}
	return &TokenBucket{
		rateBps: rateBitsPerSec / 8,
		burst:   burstBytes,
		tokens:  burstBytes,
		last:    start,
	}, nil
}

// advance refills tokens up to now.
func (b *TokenBucket) advance(now time.Time) {
	if now.After(b.last) {
		b.tokens += now.Sub(b.last).Seconds() * b.rateBps
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.last = now
	}
}

// Reserve books n bytes and returns the earliest time the whole payload
// has cleared the bucket. If tokens are short, the returned time is in the
// future and the bucket is left empty as of that time (the reservation is
// committed — there is no cancel). Back-to-back over-budget reservations
// accumulate: each books capacity after the previous one.
func (b *TokenBucket) Reserve(nBytes int, now time.Time) time.Time {
	b.advance(now)
	need := float64(nBytes)
	if b.tokens >= need {
		b.tokens -= need
		// b.last may sit in the future after a prior over-budget
		// reservation; the balance exists only as of that instant.
		if b.last.After(now) {
			return b.last
		}
		return now
	}
	deficit := need - b.tokens
	wait := time.Duration(deficit / b.rateBps * float64(time.Second))
	b.tokens = 0
	b.last = b.last.Add(wait)
	return b.last
}

// Available returns the token count at the given instant without
// consuming.
func (b *TokenBucket) Available(now time.Time) float64 {
	b.advance(now)
	return b.tokens
}

// HTB is a two-level hierarchical token bucket: a shared root enforcing
// the aggregate ceiling (the DSRC channel's 27 Mb/s) and one class per
// sender. Each class is guaranteed its assured rate and may borrow idle
// root capacity up to the class ceiling — the same discipline the paper
// configures with tc/netem on PC1.
//
// Note that the paper's own dimensioning keeps the guarantee feasible:
// 256 vehicles x 100 Kb/s = 25.6 Mb/s <= 27 Mb/s, which is exactly why
// 256 is the per-RSU vehicle cap.
type HTB struct {
	root    *TokenBucket
	classes map[string]*htbClass
	start   time.Time
	ceilBps float64
}

type htbClass struct {
	assured *TokenBucket
	ceil    *TokenBucket
	sent    int64
}

// NewHTB creates the hierarchy with the given aggregate ceiling in bits
// per second.
func NewHTB(ceilBitsPerSec float64, start time.Time) (*HTB, error) {
	root, err := NewTokenBucket(ceilBitsPerSec, burstFor(ceilBitsPerSec), start)
	if err != nil {
		return nil, err
	}
	return &HTB{
		root:    root,
		classes: make(map[string]*htbClass),
		start:   start,
		ceilBps: ceilBitsPerSec,
	}, nil
}

// burstFor sizes a bucket's burst at ~10 ms of its rate, floored at one
// report.
func burstFor(rateBitsPerSec float64) float64 {
	b := rateBitsPerSec / 8 * 0.01
	if b < ReportBytes {
		b = ReportBytes
	}
	return b
}

// AddClass registers a sender class with an assured (guaranteed) rate and
// a ceiling, both in bits per second. A ceiling <= 0 selects the root
// ceiling.
func (h *HTB) AddClass(name string, assuredBitsPerSec, ceilBitsPerSec float64) error {
	if _, ok := h.classes[name]; ok {
		return fmt.Errorf("netem: HTB class %q already exists", name)
	}
	if ceilBitsPerSec <= 0 {
		ceilBitsPerSec = h.ceilBps
	}
	assured, err := NewTokenBucket(assuredBitsPerSec, burstFor(assuredBitsPerSec), h.start)
	if err != nil {
		return fmt.Errorf("class %q assured: %w", name, err)
	}
	ceil, err := NewTokenBucket(ceilBitsPerSec, burstFor(ceilBitsPerSec), h.start)
	if err != nil {
		return fmt.Errorf("class %q ceil: %w", name, err)
	}
	h.classes[name] = &htbClass{assured: assured, ceil: ceil}
	return nil
}

// TotalAssuredBps returns the summed assured rates — callers can check
// feasibility against the ceiling (the paper's 256-vehicle cap).
func (h *HTB) TotalAssuredBps() float64 {
	var total float64
	for _, c := range h.classes {
		total += c.assured.rateBps * 8
	}
	return total
}

// Reserve books n bytes for the class and returns when the payload has
// cleared shaping. Guaranteed traffic (within the assured rate) passes the
// root immediately; traffic beyond it borrows root capacity, so the
// departure is the later of the class-ceiling and root availability.
func (h *HTB) Reserve(class string, nBytes int, now time.Time) (time.Time, error) {
	c, ok := h.classes[class]
	if !ok {
		return time.Time{}, fmt.Errorf("netem: unknown HTB class %q", class)
	}
	c.sent += int64(nBytes)

	// Within the assured allocation the class is serviced at once; the
	// root bucket still accounts the bytes so the aggregate ceiling holds.
	if c.assured.Available(now) >= float64(nBytes) {
		_ = c.assured.Reserve(nBytes, now)
		return h.root.Reserve(nBytes, now), nil
	}
	// Borrowing: limited by both the class ceiling and root spare
	// capacity.
	t := c.ceil.Reserve(nBytes, now)
	rt := h.root.Reserve(nBytes, now)
	if rt.After(t) {
		t = rt
	}
	return t, nil
}

// ClassSentBytes returns the cumulative bytes a class has reserved.
func (h *HTB) ClassSentBytes(name string) int64 {
	if c, ok := h.classes[name]; ok {
		return c.sent
	}
	return 0
}
