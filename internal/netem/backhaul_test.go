package netem

import (
	"testing"
	"time"
)

func TestBackhaulPresetsOrdering(t *testing.T) {
	eth, err := NewBackhaul(BackhaulEthernet, 1)
	if err != nil {
		t.Fatal(err)
	}
	lte, err := NewBackhaul(BackhaulLTE, 1)
	if err != nil {
		t.Fatal(err)
	}
	g5, err := NewBackhaul(Backhaul5G, 1)
	if err != nil {
		t.Fatal(err)
	}

	const payload = 300 // a CO-DATA summary
	mean := func(b *Backhaul) time.Duration {
		var total time.Duration
		for i := 0; i < 200; i++ {
			total += b.Delay(payload)
		}
		return total / 200
	}
	me, ml, m5 := mean(eth), mean(lte), mean(g5)
	// Ethernet << 5G << LTE (the paper prefers wired; 5G as the URLLC
	// cellular option).
	if !(me < m5 && m5 < ml) {
		t.Errorf("latency ordering broken: eth=%v 5g=%v lte=%v", me, m5, ml)
	}
	if me > 2*time.Millisecond {
		t.Errorf("ethernet mean %v, want sub-millisecond-ish", me)
	}
	if ml < 10*time.Millisecond || ml > 60*time.Millisecond {
		t.Errorf("LTE mean %v, want tens of ms", ml)
	}
	if m5 < time.Millisecond || m5 > 10*time.Millisecond {
		t.Errorf("5G mean %v, want a few ms", m5)
	}
}

func TestBackhaulDelayProperties(t *testing.T) {
	b, err := NewBackhaul(Backhaul5G, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if d := b.Delay(250); d < 0 {
			t.Fatalf("negative delay %v", d)
		}
	}
	// Serialization grows with payload.
	small := b.Delay(0)
	_ = small
	var sumSmall, sumBig time.Duration
	for i := 0; i < 200; i++ {
		sumSmall += b.Delay(100)
		sumBig += b.Delay(1_000_000)
	}
	if sumBig <= sumSmall {
		t.Error("larger payloads should take longer on average")
	}
	if b.Delay(-5) < 0 {
		t.Error("negative payload should clamp")
	}
	msgs, bytes := b.Sent()
	if msgs == 0 || bytes == 0 {
		t.Errorf("accounting = %d msgs, %d bytes", msgs, bytes)
	}
	if b.Kind() != Backhaul5G || b.Kind().String() != "5g" {
		t.Errorf("kind = %v", b.Kind())
	}
}

func TestBackhaulUnknownKind(t *testing.T) {
	if _, err := NewBackhaul(BackhaulKind(99), 1); err == nil {
		t.Error("want error for unknown kind")
	}
	if BackhaulKind(99).String() != "backhaul" {
		t.Error("unknown kind should have generic name")
	}
	for _, k := range []BackhaulKind{BackhaulEthernet, BackhaulLTE, Backhaul5G} {
		if k.String() == "backhaul" {
			t.Errorf("kind %d missing name", int(k))
		}
	}
}
