package netem

import (
	"fmt"
	"math/rand"
	"time"

	"cad3/internal/obsv"
)

// Medium models the shared DSRC channel for the discrete-event pipeline:
// transmissions from all vehicles in an RSU's range are serialized
// (CSMA/CA grants one winner at a time), each paying DIFS plus a random
// backoff plus the frame's airtime, optionally after HTB shaping — the
// in-process equivalent of the paper's PC1 netem setup.
type Medium struct {
	mcs    MCS
	mac    MACModel
	htb    *HTB
	loss   *LossModel
	rng    *rand.Rand
	freeAt time.Time
	lost   int64

	delivered      int64 // payload bytes delivered
	deliveredWire  int64 // payload + MAC overhead bytes
	transmissions  int64
	totalAirtime   time.Duration
	contentionTime time.Duration

	// Cached registry handles, nil without MediumConfig.Metrics.
	mFrames, mWireBytes, mLostFrames *obsv.Counter
	mAirtimeHist                     *obsv.Histogram
}

// MediumConfig configures a Medium.
type MediumConfig struct {
	// Loss optionally models distance-dependent frame loss for
	// TransmitFrom. Nil disables loss.
	Loss *LossModel
	// MCS selects the modulation and coding scheme. Zero selects MCS3
	// (QPSK 1/2, 6 Mb/s), a common DSRC safety-channel default.
	MCS MCS
	// CollisionProb is the CSMA/CA collision probability p_c. Values
	// <= 0 select DefaultCollisionProb.
	CollisionProb float64
	// HTB optionally shapes senders before they contend (the testbed
	// shapes producers with tc). Nil disables shaping.
	HTB *HTB
	// Seed drives the backoff jitter.
	Seed int64
	// Metrics, when set, receives channel instrumentation: the netem.*
	// frame/byte counters and the per-frame airtime histogram (see
	// OBSERVABILITY.md).
	Metrics *obsv.Registry
}

// NewMedium builds the channel model.
func NewMedium(cfg MediumConfig) (*Medium, error) {
	if cfg.MCS == 0 {
		cfg.MCS = MCS3
	}
	if !cfg.MCS.Valid() {
		return nil, fmt.Errorf("netem: invalid MCS %d", int(cfg.MCS))
	}
	m := &Medium{
		mcs:  cfg.MCS,
		mac:  MACModel{CollisionProb: cfg.CollisionProb},
		htb:  cfg.HTB,
		loss: cfg.Loss,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
	}
	if cfg.Metrics != nil {
		m.mFrames = cfg.Metrics.Counter("netem.tx.frames")
		m.mWireBytes = cfg.Metrics.Counter("netem.tx.wire_bytes")
		m.mLostFrames = cfg.Metrics.Counter("netem.tx.lost_frames")
		m.mAirtimeHist = cfg.Metrics.Histogram("netem.airtime_micros",
			[]int64{50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000})
	}
	return m, nil
}

// Transmit models one frame from the given sender class entering the
// channel at `at`, returning the instant its last bit arrives at the RSU.
func (m *Medium) Transmit(class string, payloadBytes int, at time.Time) (time.Time, error) {
	start := at
	if m.htb != nil {
		shaped, err := m.htb.Reserve(class, payloadBytes, at)
		if err != nil {
			return time.Time{}, err
		}
		start = shaped
	}
	// CSMA/CA: wait for the medium, then DIFS + random backoff.
	if m.freeAt.After(start) {
		start = m.freeAt
	}
	backoff := m.randomBackoff()
	tPkt, err := PacketDuration(payloadBytes, m.mcs)
	if err != nil {
		return time.Time{}, err
	}
	contention := DIFS + backoff
	done := start.Add(contention + tPkt)
	m.freeAt = done

	m.delivered += int64(payloadBytes)
	m.deliveredWire += int64(payloadBytes + MACHeaderBytes)
	m.transmissions++
	m.totalAirtime += tPkt
	m.contentionTime += contention
	if m.mFrames != nil {
		m.mFrames.Inc()
		m.mWireBytes.Add(int64(payloadBytes + MACHeaderBytes))
		m.mAirtimeHist.ObserveDuration(tPkt)
	}
	return done, nil
}

// randomBackoff draws a uniform backoff in [0, CW) slots where the
// contention window is scaled by the collision probability — light-load
// channels back off rarely, dense ones up to p_c * CWMax slots on average
// (matching the Equation 6 expectation).
func (m *Medium) randomBackoff() time.Duration {
	pc := m.mac.CollisionProb
	if pc <= 0 {
		pc = DefaultCollisionProb
	}
	maxSlots := int(2 * pc * CWMax) // mean pc*CWMax, as in Eq. 6
	if maxSlots < 1 {
		maxSlots = 1
	}
	return time.Duration(m.rng.Intn(maxSlots+1)) * SlotTime
}

// MediumStats is a snapshot of channel usage.
type MediumStats struct {
	PayloadBytes   int64
	WireBytes      int64
	Transmissions  int64
	TotalAirtime   time.Duration
	ContentionTime time.Duration
}

// Stats returns cumulative channel statistics.
func (m *Medium) Stats() MediumStats {
	return MediumStats{
		PayloadBytes:   m.delivered,
		WireBytes:      m.deliveredWire,
		Transmissions:  m.transmissions,
		TotalAirtime:   m.totalAirtime,
		ContentionTime: m.contentionTime,
	}
}

// MCS returns the configured modulation-and-coding scheme.
func (m *Medium) MCS() MCS { return m.mcs }

// TransmitFrom models a frame sent from the given distance: the MCS
// adapts to the link length, the loss model may drop the frame (it still
// occupies airtime — a corrupted frame busies the channel), and the
// delivery time is returned along with whether the RSU decoded it.
func (m *Medium) TransmitFrom(class string, payloadBytes int, at time.Time, distanceMeters float64) (time.Time, bool, error) {
	mcs := AdaptMCS(distanceMeters)
	saved := m.mcs
	m.mcs = mcs
	done, err := m.Transmit(class, payloadBytes, at)
	m.mcs = saved
	if err != nil {
		return time.Time{}, false, err
	}
	if m.loss != nil && m.rng.Float64() < m.loss.Probability(distanceMeters) {
		m.lost++
		if m.mLostFrames != nil {
			m.mLostFrames.Inc()
		}
		return done, false, nil
	}
	return done, true, nil
}

// Lost returns the number of frames dropped by the loss model.
func (m *Medium) Lost() int64 { return m.lost }
