package netem

import (
	"testing"
	"testing/quick"
	"time"
)

func TestAdaptMCSMonotone(t *testing.T) {
	prev := MCS8
	for _, d := range []float64{50, 150, 250, 400, 500, 700, 1000} {
		m := AdaptMCS(d)
		if !m.Valid() {
			t.Fatalf("AdaptMCS(%v) invalid", d)
		}
		if m > prev {
			t.Errorf("rate should not increase with distance: %v at %v m after %v", m, d, prev)
		}
		prev = m
	}
	if AdaptMCS(100) != MCS8 {
		t.Error("close range should use the dense-deployment mode (paper §VII-B: 125 m @ 64-QAM 3/4)")
	}
	if AdaptMCS(5000) != MCS1 {
		t.Error("extreme range should use the most robust mode")
	}
}

func TestLossModelShape(t *testing.T) {
	l := LossModel{}
	if p := l.Probability(0); p < 0.001 || p > 0.01 {
		t.Errorf("floor loss = %v", p)
	}
	if l.Probability(300) >= l.Probability(900) {
		t.Error("loss should grow with distance")
	}
	if p := l.Probability(10_000); p != 1 {
		t.Errorf("far loss = %v, want clamped to 1", p)
	}
	if p := l.Probability(-5); p != l.Probability(0) {
		t.Errorf("negative distance should clamp: %v", p)
	}
	f := func(d float64) bool {
		if d < 0 {
			d = -d
		}
		p := l.Probability(d)
		return p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMediumTransmitFromLoss(t *testing.T) {
	m, err := NewMedium(MediumConfig{Loss: &LossModel{Floor: 0.002, EdgeMeters: 900}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	now := t0
	var delivered, lost int
	for i := 0; i < 500; i++ {
		_, ok, err := m.TransmitFrom("v", ReportBytes, now, 850)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			delivered++
		} else {
			lost++
		}
		now = now.Add(100 * time.Millisecond)
	}
	if lost == 0 {
		t.Error("no loss at 850 m with ~45% loss probability")
	}
	if delivered == 0 {
		t.Error("everything lost")
	}
	if m.Lost() != int64(lost) {
		t.Errorf("Lost() = %d, counted %d", m.Lost(), lost)
	}
	// Near transmissions almost never drop.
	m2, _ := NewMedium(MediumConfig{Loss: &LossModel{}, Seed: 2})
	lost = 0
	now = t0
	for i := 0; i < 200; i++ {
		_, ok, _ := m2.TransmitFrom("v", ReportBytes, now, 50)
		if !ok {
			lost++
		}
		now = now.Add(100 * time.Millisecond)
	}
	if lost > 5 {
		t.Errorf("near-range loss %d/200 too high", lost)
	}
}

func TestMediumTransmitFromAdaptsAirtime(t *testing.T) {
	// A near frame (MCS8) must occupy less airtime than a far one (MCS1).
	near, _ := NewMedium(MediumConfig{Seed: 3})
	far, _ := NewMedium(MediumConfig{Seed: 3})
	dNear, _, err := near.TransmitFrom("v", ReportBytes, t0, 50)
	if err != nil {
		t.Fatal(err)
	}
	dFar, _, err := far.TransmitFrom("v", ReportBytes, t0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if !dNear.Before(dFar) {
		t.Errorf("near delivery %v should precede far %v", dNear, dFar)
	}
	// The configured MCS is restored after adaptive sends.
	if near.MCS() != MCS3 {
		t.Errorf("MCS = %v after TransmitFrom, want default restored", near.MCS())
	}
}

func TestChannelManagerSpreadsNeighbors(t *testing.T) {
	m := NewChannelManager(600, 0.5)
	// Five RSUs clustered within interference range: all should land on
	// distinct channels (6 service channels available).
	chans := make(map[Channel]bool)
	for i, name := range []string{"A", "B", "C", "D", "E"} {
		ch, err := m.AddSite(name, float64(i)*100, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !ch.Valid() {
			t.Fatalf("invalid channel %v", ch)
		}
		if chans[ch] {
			t.Errorf("site %s assigned already-used channel %v", name, ch)
		}
		chans[ch] = true
	}
	if len(m.Conflicts()) != 0 {
		t.Errorf("conflicts = %v, want none", m.Conflicts())
	}
}

func TestChannelManagerReusesChannelsWhenFar(t *testing.T) {
	m := NewChannelManager(600, 0.5)
	chA, _ := m.AddSite("A", 0, 0)
	chB, _ := m.AddSite("B", 10_000, 0) // far beyond interference range
	if chA != chB {
		t.Errorf("distant sites should reuse the best channel: %v vs %v", chA, chB)
	}
}

func TestChannelManagerSwitchOnInterference(t *testing.T) {
	m := NewChannelManager(600, 0.5)
	// Seven clustered sites: six service channels, so one conflict is
	// inevitable.
	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	for i, n := range names {
		if _, err := m.AddSite(n, float64(i)*50, 0); err != nil {
			t.Fatal(err)
		}
	}
	if len(m.Conflicts()) == 0 {
		t.Fatal("7 clustered sites on 6 channels must conflict")
	}
	// Low interference: no switch.
	switched, err := m.ReportInterference("G", 0.1)
	if err != nil || switched {
		t.Errorf("low interference switched: %v, %v", switched, err)
	}
	// High interference on a conflicted site: it may switch (to the
	// least-conflicted channel) — and the call must never error.
	conflict := m.Conflicts()[0]
	if _, err := m.ReportInterference(conflict[0], 0.9); err != nil {
		t.Fatal(err)
	}
	if _, err := m.ReportInterference("ghost", 0.9); err == nil {
		t.Error("want error for unknown site")
	}
}

func TestChannelManagerSwitchFreesConflict(t *testing.T) {
	m := NewChannelManager(600, 0.5)
	// Force two sites onto the same channel by filling all six channels
	// twice in a tight cluster; then free one cluster and report
	// interference: the conflicted site should move.
	chA, _ := m.AddSite("A", 0, 0)
	// B lands on a different channel; force the scenario instead with
	// a third site out of range reusing A's channel, then moving close.
	_ = chA
	for _, n := range []string{"B", "C", "D", "E", "F"} {
		if _, err := m.AddSite(n, 10, 0); err != nil {
			t.Fatal(err)
		}
	}
	// All 6 channels used once. The 7th site conflicts with someone.
	ch7, _ := m.AddSite("G", 20, 0)
	if len(m.Conflicts()) == 0 {
		t.Fatal("expected a conflict with 7 sites")
	}
	_ = ch7
	switched, err := m.ReportInterference("G", 0.9)
	if err != nil {
		t.Fatal(err)
	}
	// With every channel occupied nearby a switch may not help; either
	// way the manager stays consistent.
	if switched && m.Switches() == 0 {
		t.Error("switch not counted")
	}
	if ch, ok := m.ChannelOf("G"); !ok || !ch.Valid() {
		t.Errorf("ChannelOf(G) = %v, %v", ch, ok)
	}
	if _, ok := m.ChannelOf("ghost"); ok {
		t.Error("unknown site should report ok=false")
	}
}

func TestChannelManagerValidation(t *testing.T) {
	m := NewChannelManager(0, 0)
	if _, err := m.AddSite("", 0, 0); err == nil {
		t.Error("want error for empty name")
	}
	if _, err := m.AddSite("A", 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.AddSite("A", 1, 1); err == nil {
		t.Error("want error for duplicate site")
	}
	if !CCH178.Valid() || Channel(179).Valid() || Channel(170).Valid() {
		t.Error("channel validity broken")
	}
	if len(ServiceChannels()) != 6 {
		t.Errorf("service channels = %v", ServiceChannels())
	}
}

func TestSwitchesCounterStartsZero(t *testing.T) {
	m := NewChannelManager(0, 0)
	if m.Switches() != 0 {
		t.Errorf("Switches = %d", m.Switches())
	}
}
