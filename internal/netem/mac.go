package netem

import (
	"fmt"
	"math"
	"time"
)

// IEEE 802.11p MAC/PHY constants for the 10 MHz DSRC channel, as used in
// §VI-D1 of the paper (citing Bilstrup et al. and Bazzi et al.).
const (
	// SlotTime is the 802.11p slot duration (9 us).
	SlotTime = 9 * time.Microsecond
	// SIFS is the short interframe space (16 us).
	SIFS = 16 * time.Microsecond
	// CWMax is the maximum contention window (255 slots).
	CWMax = 255
	// DefaultCollisionProb is the paper's p_c <= 0.03 bound
	// (proportional to vehicle density and distance to the RSU).
	DefaultCollisionProb = 0.03
	// OFDMSymbol is the 802.11p OFDM symbol duration on 10 MHz (8 us).
	OFDMSymbol = 8 * time.Microsecond
	// PLCPPreamble is the PHY preamble duration (32 us on 10 MHz).
	PLCPPreamble = 32 * time.Microsecond
	// PLCPSignal is the PHY SIGNAL field duration (one symbol).
	PLCPSignal = OFDMSymbol
	// MACHeaderBytes is the 802.11 MAC header + FCS overhead.
	MACHeaderBytes = 36
	// ServiceBits and TailBits frame the PSDU inside the OFDM DATA field.
	ServiceBits = 16
	TailBits    = 6
)

// DIFS is the distributed interframe space: SIFS + 2 slots (Equation 6).
const DIFS = SIFS + 2*SlotTime

// MCS identifies an 802.11p modulation-and-coding scheme. The paper
// indexes them 1-8 (BPSK 1/2 ... 64-QAM 3/4).
type MCS int

// The 802.11p MCS ladder on a 10 MHz channel.
const (
	MCS1 MCS = iota + 1 // BPSK 1/2, 3 Mb/s
	MCS2                // BPSK 3/4, 4.5 Mb/s
	MCS3                // QPSK 1/2, 6 Mb/s
	MCS4                // QPSK 3/4, 9 Mb/s
	MCS5                // 16-QAM 1/2, 12 Mb/s
	MCS6                // 16-QAM 3/4, 18 Mb/s
	MCS7                // 64-QAM 2/3, 24 Mb/s
	MCS8                // 64-QAM 3/4, 27 Mb/s
)

var mcsRateMbps = map[MCS]float64{
	MCS1: 3, MCS2: 4.5, MCS3: 6, MCS4: 9,
	MCS5: 12, MCS6: 18, MCS7: 24, MCS8: 27,
}

// Valid reports whether the MCS is in the 802.11p ladder.
func (m MCS) Valid() bool {
	_, ok := mcsRateMbps[m]
	return ok
}

// DataRateMbps returns the PHY data rate.
func (m MCS) DataRateMbps() float64 { return mcsRateMbps[m] }

// BitsPerSymbol returns N_DBPS: data bits carried per OFDM symbol.
func (m MCS) BitsPerSymbol() float64 {
	return m.DataRateMbps() * OFDMSymbol.Seconds() * 1e6
}

// String implements fmt.Stringer.
func (m MCS) String() string {
	if !m.Valid() {
		return fmt.Sprintf("MCS(%d)", int(m))
	}
	return fmt.Sprintf("MCS %d (%.1f Mb/s)", int(m), m.DataRateMbps())
}

// PacketDuration returns the on-air time of a frame with the given payload
// at the given MCS: PHY preamble + SIGNAL + ceil(service+MAC+payload+tail
// bits / N_DBPS) OFDM symbols.
func PacketDuration(payloadBytes int, m MCS) (time.Duration, error) {
	if !m.Valid() {
		return 0, fmt.Errorf("netem: invalid MCS %d", int(m))
	}
	if payloadBytes < 0 {
		return 0, fmt.Errorf("netem: negative payload %d", payloadBytes)
	}
	bits := float64(ServiceBits + 8*(payloadBytes+MACHeaderBytes) + TailBits)
	symbols := math.Ceil(bits / m.BitsPerSymbol())
	return PLCPPreamble + PLCPSignal + time.Duration(symbols)*OFDMSymbol, nil
}

// MACModel evaluates Equations 5-6 of the paper: the time for numVehicles
// stations to each get one packet through the shared CSMA/CA medium.
type MACModel struct {
	// CollisionProb is p_c. Values <= 0 select DefaultCollisionProb.
	CollisionProb float64
}

// Backoff returns t_backoff = p_c * cw_max * t_slot (Equation 6).
func (m MACModel) Backoff() time.Duration {
	pc := m.CollisionProb
	if pc <= 0 {
		pc = DefaultCollisionProb
	}
	return time.Duration(pc * CWMax * float64(SlotTime))
}

// AccessTime returns Equation 5:
//
//	t_v = t_backoff + num_v * (DIFS + t_pkt)
//
// — the time for numVehicles stations to each transmit one payload-sized
// packet.
func (m MACModel) AccessTime(numVehicles, payloadBytes int, mcs MCS) (time.Duration, error) {
	if numVehicles < 0 {
		return 0, fmt.Errorf("netem: negative vehicle count %d", numVehicles)
	}
	tPkt, err := PacketDuration(payloadBytes, mcs)
	if err != nil {
		return 0, err
	}
	return m.Backoff() + time.Duration(numVehicles)*(DIFS+tPkt), nil
}

// FitsReportingPeriod reports whether numVehicles stations sending
// payloadBytes at ReportHz all fit within one reporting period (100 ms) —
// the feasibility check of §VI-D1 ("all packets are sent before the next
// packets are generated").
func (m MACModel) FitsReportingPeriod(numVehicles, payloadBytes int, mcs MCS) (bool, time.Duration, error) {
	t, err := m.AccessTime(numVehicles, payloadBytes, mcs)
	if err != nil {
		return false, 0, err
	}
	period := time.Second / ReportHz
	return t <= period, t, nil
}
