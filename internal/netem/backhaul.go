package netem

import (
	"fmt"
	"math/rand"
	"time"
)

// Inter-RSU links: the paper's RSUs interconnect over "either coaxial or
// optical Ethernet ... or cellular communication (5G or LTE) as the
// latency requirements and data volumes are lower" (§IV-A), with §VII-D
// proposing LTE/5G for RSUs beyond DSRC range. Backhaul models those
// options as parametric one-way delay distributions plus a serialization
// rate, used to delay CO-DATA summary forwarding in the multi-RSU
// experiments.

// BackhaulKind selects a link technology.
type BackhaulKind int

// Link technologies from the paper.
const (
	BackhaulEthernet BackhaulKind = iota + 1
	BackhaulLTE
	Backhaul5G
)

// String implements fmt.Stringer.
func (k BackhaulKind) String() string {
	switch k {
	case BackhaulEthernet:
		return "ethernet"
	case BackhaulLTE:
		return "lte"
	case Backhaul5G:
		return "5g"
	default:
		return "backhaul"
	}
}

// Backhaul is a point-to-point inter-RSU link.
type Backhaul struct {
	kind    BackhaulKind
	base    time.Duration // propagation + scheduling floor
	jitter  time.Duration // uniform +- jitter
	rateBps float64       // serialization rate (bits/s)
	rng     *rand.Rand

	sent      int64
	sentBytes int64
}

// Backhaul presets: one-way latency floors and typical jitter from the
// V2X literature the paper cites — wired Ethernet sub-millisecond, LTE
// tens of milliseconds, 5G URLLC a few milliseconds.
func backhaulPreset(kind BackhaulKind) (base, jitter time.Duration, rate float64, err error) {
	switch kind {
	case BackhaulEthernet:
		return 300 * time.Microsecond, 100 * time.Microsecond, 1e9, nil
	case BackhaulLTE:
		return 25 * time.Millisecond, 15 * time.Millisecond, 20e6, nil
	case Backhaul5G:
		return 3 * time.Millisecond, 1500 * time.Microsecond, 100e6, nil
	default:
		return 0, 0, 0, fmt.Errorf("netem: unknown backhaul kind %d", int(kind))
	}
}

// NewBackhaul creates a link of the given technology.
func NewBackhaul(kind BackhaulKind, seed int64) (*Backhaul, error) {
	base, jitter, rate, err := backhaulPreset(kind)
	if err != nil {
		return nil, err
	}
	return &Backhaul{
		kind: kind, base: base, jitter: jitter, rateBps: rate,
		rng: rand.New(rand.NewSource(seed)),
	}, nil
}

// Delay returns the one-way transfer time of a payload: floor + jitter +
// serialization.
func (b *Backhaul) Delay(payloadBytes int) time.Duration {
	if payloadBytes < 0 {
		payloadBytes = 0
	}
	j := time.Duration((b.rng.Float64()*2 - 1) * float64(b.jitter))
	ser := time.Duration(float64(payloadBytes) * 8 / b.rateBps * float64(time.Second))
	d := b.base + j + ser
	if d < 0 {
		d = 0
	}
	b.sent++
	b.sentBytes += int64(payloadBytes)
	return d
}

// Kind returns the link technology.
func (b *Backhaul) Kind() BackhaulKind { return b.kind }

// Sent returns the cumulative (messages, bytes) carried.
func (b *Backhaul) Sent() (int64, int64) { return b.sent, b.sentBytes }
