package netem

import (
	"testing"
	"time"
)

func TestSimulatorOrdering(t *testing.T) {
	s := NewSimulator(t0)
	var order []int
	s.After(30*time.Millisecond, func() { order = append(order, 3) })
	s.After(10*time.Millisecond, func() { order = append(order, 1) })
	s.After(20*time.Millisecond, func() { order = append(order, 2) })
	if n := s.Run(); n != 3 {
		t.Fatalf("Run processed %d events", n)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("order = %v", order)
	}
	if got := s.Now(); !got.Equal(t0.Add(30 * time.Millisecond)) {
		t.Errorf("clock = %v", got)
	}
}

func TestSimulatorFIFOTiebreak(t *testing.T) {
	s := NewSimulator(t0)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.After(time.Millisecond, func() { order = append(order, i) })
	}
	s.Run()
	for i, got := range order {
		if got != i {
			t.Fatalf("simultaneous events out of FIFO order: %v", order)
		}
	}
}

func TestSimulatorCascade(t *testing.T) {
	s := NewSimulator(t0)
	var fired int
	var chain func()
	chain = func() {
		fired++
		if fired < 10 {
			s.After(time.Millisecond, chain)
		}
	}
	s.After(0, chain)
	s.Run()
	if fired != 10 {
		t.Errorf("cascade fired %d times, want 10", fired)
	}
}

func TestSimulatorRunUntil(t *testing.T) {
	s := NewSimulator(t0)
	var fired []time.Duration
	for _, d := range []time.Duration{10, 20, 30, 40} {
		d := d * time.Millisecond
		s.After(d, func() { fired = append(fired, d) })
	}
	n := s.RunUntil(t0.Add(25 * time.Millisecond))
	if n != 2 || len(fired) != 2 {
		t.Errorf("RunUntil processed %d events, fired %v", n, fired)
	}
	if !s.Now().Equal(t0.Add(25 * time.Millisecond)) {
		t.Errorf("clock after RunUntil = %v", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
}

func TestSimulatorPastScheduling(t *testing.T) {
	s := NewSimulator(t0)
	var at time.Time
	s.At(t0.Add(-time.Hour), func() { at = s.Now() })
	s.Run()
	if !at.Equal(t0) {
		t.Errorf("past event fired at %v, want clamped to %v", at, t0)
	}
	s.After(-5*time.Second, func() {})
	if err := s.Step(); err != nil {
		t.Fatal(err)
	}
	if err := s.Step(); err != ErrSimEmpty {
		t.Errorf("err = %v, want ErrSimEmpty", err)
	}
}

func TestMediumSerializesTransmissions(t *testing.T) {
	m, err := NewMedium(MediumConfig{MCS: MCS3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Two frames entering at the same instant: the second must wait for
	// the first to clear the channel.
	d1, err := m.Transmit("v1", ReportBytes, t0)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := m.Transmit("v2", ReportBytes, t0)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.After(d1) {
		t.Errorf("second frame delivered at %v, not after first %v", d2, d1)
	}
	gap := d2.Sub(d1)
	if gap < 360*time.Microsecond {
		t.Errorf("gap %v below one frame airtime", gap)
	}
	st := m.Stats()
	if st.Transmissions != 2 || st.PayloadBytes != 2*ReportBytes {
		t.Errorf("stats = %+v", st)
	}
	if st.WireBytes <= st.PayloadBytes {
		t.Error("wire bytes must include MAC overhead")
	}
	if m.MCS() != MCS3 {
		t.Errorf("MCS = %v", m.MCS())
	}
}

func TestMediumIdleChannelFast(t *testing.T) {
	m, err := NewMedium(MediumConfig{MCS: MCS8, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	// On an idle channel a report should deliver in well under 1 ms.
	d, err := m.Transmit("v1", ReportBytes, t0)
	if err != nil {
		t.Fatal(err)
	}
	if lat := d.Sub(t0); lat > time.Millisecond {
		t.Errorf("idle-channel latency %v, want < 1ms", lat)
	}
}

func TestMediumWithHTBShaping(t *testing.T) {
	h, err := NewHTB(DSRCBandwidthBps, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass("v1", PerVehicleFloorBps, 0); err != nil {
		t.Fatal(err)
	}
	m, err := NewMedium(MediumConfig{MCS: MCS3, HTB: h, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit("v1", ReportBytes, t0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Transmit("ghost", ReportBytes, t0); err == nil {
		t.Error("want unknown-class error through shaping")
	}
}

func TestMediumInvalidConfig(t *testing.T) {
	if _, err := NewMedium(MediumConfig{MCS: MCS(42)}); err == nil {
		t.Error("want invalid-MCS error")
	}
	m, err := NewMedium(MediumConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if m.MCS() != MCS3 {
		t.Errorf("default MCS = %v, want MCS3", m.MCS())
	}
}

func TestMedium256VehiclesOneRound(t *testing.T) {
	// 256 vehicles each sending one 200 B report: the channel must drain
	// them in the same order of magnitude as Equation 5 predicts (~100 ms
	// at MCS3) and within a few reporting periods.
	m, err := NewMedium(MediumConfig{MCS: MCS3, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	var last time.Time
	for v := 0; v < 256; v++ {
		d, err := m.Transmit("v", ReportBytes, t0)
		if err != nil {
			t.Fatal(err)
		}
		last = d
	}
	total := last.Sub(t0)
	if total < 50*time.Millisecond || total > 250*time.Millisecond {
		t.Errorf("256-vehicle drain = %v, want ~100ms order", total)
	}
}
