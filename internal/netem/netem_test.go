package netem

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

var t0 = time.Date(2016, 7, 1, 8, 0, 0, 0, time.UTC)

func TestTokenBucketBurstThenDrain(t *testing.T) {
	// 8000 bits/s = 1000 bytes/s, burst 500 bytes.
	b, err := NewTokenBucket(8000, 500, t0)
	if err != nil {
		t.Fatal(err)
	}
	// Burst passes immediately.
	if got := b.Reserve(500, t0); !got.Equal(t0) {
		t.Errorf("burst reserve at %v, want %v", got, t0)
	}
	// Next 100 bytes need 100 ms of refill.
	got := b.Reserve(100, t0)
	want := t0.Add(100 * time.Millisecond)
	if got.Sub(want).Abs() > time.Millisecond {
		t.Errorf("drained reserve at %v, want ~%v", got, want)
	}
}

func TestTokenBucketRefill(t *testing.T) {
	b, err := NewTokenBucket(8000, 1000, t0) // 1000 B/s
	if err != nil {
		t.Fatal(err)
	}
	_ = b.Reserve(1000, t0) // empty it
	later := t0.Add(500 * time.Millisecond)
	if avail := b.Available(later); math.Abs(avail-500) > 1 {
		t.Errorf("available after 500ms = %.1f, want ~500", avail)
	}
}

func TestTokenBucketValidation(t *testing.T) {
	if _, err := NewTokenBucket(0, 100, t0); err == nil {
		t.Error("want error for zero rate")
	}
	if _, err := NewTokenBucket(100, 0, t0); err == nil {
		t.Error("want error for zero burst")
	}
}

func TestTokenBucketNeverExceedsRateProperty(t *testing.T) {
	// Long-run throughput through a bucket must never exceed rate*time +
	// burst.
	f := func(sizes []uint16) bool {
		b, err := NewTokenBucket(1_000_000, 1000, t0) // 125 kB/s
		if err != nil {
			return false
		}
		now := t0
		var total float64
		for _, s := range sizes {
			n := int(s%1000) + 1
			now = b.Reserve(n, now)
			total += float64(n)
		}
		elapsed := now.Sub(t0).Seconds()
		return total <= 125_000*elapsed+1000+1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHTBFloorAndCeiling(t *testing.T) {
	h, err := NewHTB(DSRCBandwidthBps, t0)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"v1", "v2"} {
		if err := h.AddClass(name, PerVehicleFloorBps, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := h.AddClass("v1", 1, 0); err == nil {
		t.Error("want duplicate-class error")
	}
	if got := h.TotalAssuredBps(); math.Abs(got-2*PerVehicleFloorBps) > 1 {
		t.Errorf("TotalAssuredBps = %v", got)
	}
	// A vehicle's 200-byte report at 10 Hz (2 kB/s = 16 kb/s) is far
	// below its 100 kb/s floor: every reservation should clear instantly.
	now := t0
	for i := 0; i < 50; i++ {
		dep, err := h.Reserve("v1", ReportBytes, now)
		if err != nil {
			t.Fatal(err)
		}
		if dep.After(now.Add(time.Millisecond)) {
			t.Fatalf("report %d delayed to %v despite floor", i, dep)
		}
		now = now.Add(100 * time.Millisecond)
	}
	if h.ClassSentBytes("v1") != 50*ReportBytes {
		t.Errorf("ClassSentBytes = %d", h.ClassSentBytes("v1"))
	}
	if _, err := h.Reserve("ghost", 1, t0); err == nil {
		t.Error("want unknown-class error")
	}
}

func TestHTBAggregateCeilingBinds(t *testing.T) {
	// One greedy class trying to push 54 Mb/s through a 27 Mb/s root must
	// be delayed to the root's rate.
	h, err := NewHTB(DSRCBandwidthBps, t0)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.AddClass("greedy", PerVehicleFloorBps, DSRCBandwidthBps); err != nil {
		t.Fatal(err)
	}
	const chunk = 1_000_000 // 1 MB chunks
	now := t0
	var last time.Time
	for i := 0; i < 10; i++ {
		dep, err := h.Reserve("greedy", chunk, now)
		if err != nil {
			t.Fatal(err)
		}
		last = dep
	}
	elapsed := last.Sub(t0).Seconds()
	throughputBits := 10 * chunk * 8 / elapsed
	if throughputBits > DSRCBandwidthBps*1.05 {
		t.Errorf("throughput %.0f b/s exceeds 27 Mb/s ceiling", throughputBits)
	}
}

func TestPacketDuration(t *testing.T) {
	// 200 B payload at MCS3 (6 Mb/s, 48 bits/symbol):
	// bits = 16 + 8*(200+36) + 6 = 1910 -> ceil(1910/48) = 40 symbols
	// -> 32 + 8 + 320 = 360 us.
	d, err := PacketDuration(ReportBytes, MCS3)
	if err != nil {
		t.Fatal(err)
	}
	if d != 360*time.Microsecond {
		t.Errorf("MCS3 duration = %v, want 360us", d)
	}
	// MCS8 (27 Mb/s, 216 bits/symbol): ceil(1910/216) = 9 symbols
	// -> 32 + 8 + 72 = 112 us.
	d, err = PacketDuration(ReportBytes, MCS8)
	if err != nil {
		t.Fatal(err)
	}
	if d != 112*time.Microsecond {
		t.Errorf("MCS8 duration = %v, want 112us", d)
	}
	if _, err := PacketDuration(10, MCS(99)); err == nil {
		t.Error("want invalid-MCS error")
	}
	if _, err := PacketDuration(-1, MCS3); err == nil {
		t.Error("want negative-payload error")
	}
}

func TestMACAccessTimeEquation5(t *testing.T) {
	// Reproduce §VI-D1: 256 vehicles, 200 B, p_c = 0.03.
	m := MACModel{CollisionProb: 0.03}
	if got := m.Backoff(); got != time.Duration(0.03*255*9000) {
		t.Errorf("backoff = %v", got)
	}

	t3, err := m.AccessTime(256, ReportBytes, MCS3)
	if err != nil {
		t.Fatal(err)
	}
	t8, err := m.AccessTime(256, ReportBytes, MCS8)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports 92.62 ms (MCS 3) and 54.28 ms (MCS 8). Our frame
	// model gives ~101 ms and ~37 ms; assert the paper's qualitative
	// claims: order of tens of ms, MCS3 > MCS8, and MCS8 fits the 100 ms
	// reporting period.
	if t3 < 50*time.Millisecond || t3 > 150*time.Millisecond {
		t.Errorf("MCS3 access time = %v, want order of ~100ms", t3)
	}
	if t8 < 20*time.Millisecond || t8 > 80*time.Millisecond {
		t.Errorf("MCS8 access time = %v, want order of ~50ms", t8)
	}
	if t8 >= t3 {
		t.Errorf("MCS8 (%v) should beat MCS3 (%v)", t8, t3)
	}
	ok, _, err := m.FitsReportingPeriod(256, ReportBytes, MCS8)
	if err != nil || !ok {
		t.Errorf("256 vehicles @ MCS8 should fit the 100 ms period (got %v, %v)", ok, err)
	}

	// §VII-B: 400 vehicles at MCS8 under 85 ms.
	t400, err := m.AccessTime(400, ReportBytes, MCS8)
	if err != nil {
		t.Fatal(err)
	}
	if t400 > 85*time.Millisecond {
		t.Errorf("400 vehicles @ MCS8 = %v, paper says under 85 ms", t400)
	}

	if _, err := m.AccessTime(-1, 10, MCS3); err == nil {
		t.Error("want negative-vehicles error")
	}
}

func TestMACAccessTimeMonotoneProperty(t *testing.T) {
	m := MACModel{}
	f := func(n uint8) bool {
		a, err1 := m.AccessTime(int(n), ReportBytes, MCS3)
		b, err2 := m.AccessTime(int(n)+1, ReportBytes, MCS3)
		return err1 == nil && err2 == nil && b > a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMCSLadder(t *testing.T) {
	prev := 0.0
	for mcs := MCS1; mcs <= MCS8; mcs++ {
		if !mcs.Valid() {
			t.Fatalf("%v invalid", mcs)
		}
		if r := mcs.DataRateMbps(); r <= prev {
			t.Errorf("%v rate %.1f not increasing", mcs, r)
		} else {
			prev = r
		}
	}
	if MCS(0).Valid() || MCS(9).Valid() {
		t.Error("out-of-ladder MCS should be invalid")
	}
	if MCS8.BitsPerSymbol() != 216 {
		t.Errorf("MCS8 NDBPS = %v, want 216", MCS8.BitsPerSymbol())
	}
	if MCS3.String() == "" || MCS(42).String() == "" {
		t.Error("String must not be empty")
	}
}
