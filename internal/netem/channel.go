package netem

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// §VII-B of the paper sketches how a dense RSU deployment stays feasible:
// position RSUs so ranges do not overlap, raise the modulation rate on
// congested roads (higher data rate, smaller range), and let a manager
// switch an RSU's operating service channel when interference rises.
// This file implements those mechanisms.

// Channel identifies a DSRC channel. US DSRC allocates control channel
// 178 and service channels 172-184.
type Channel int

// The DSRC channel set.
const (
	SCH172 Channel = 172
	SCH174 Channel = 174
	SCH176 Channel = 176
	CCH178 Channel = 178
	SCH180 Channel = 180
	SCH182 Channel = 182
	SCH184 Channel = 184
)

// ServiceChannels lists the channels available for CAD3 data exchange
// (the control channel is reserved for safety beacons).
func ServiceChannels() []Channel {
	return []Channel{SCH172, SCH174, SCH176, SCH180, SCH182, SCH184}
}

// Valid reports whether c is a DSRC channel.
func (c Channel) Valid() bool {
	return c >= SCH172 && c <= SCH184 && c%2 == 0
}

// AdaptMCS selects the modulation-and-coding scheme for a link of the
// given length: near vehicles use high-rate, short-range modes (§VII-B's
// "higher data rate and smaller range"), distant ones fall back to robust
// low-rate modes. Thresholds follow the qualitative ranges of Bazzi et
// al. (the paper's [24]).
func AdaptMCS(distanceMeters float64) MCS {
	switch {
	case distanceMeters <= 125:
		return MCS8 // 64-QAM 3/4 — the paper's dense-deployment example
	case distanceMeters <= 200:
		return MCS7
	case distanceMeters <= 300:
		return MCS5
	case distanceMeters <= 450:
		return MCS4
	case distanceMeters <= 600:
		return MCS3
	case distanceMeters <= 800:
		return MCS2
	default:
		return MCS1
	}
}

// LossModel gives the frame-loss probability of a DSRC link as a function
// of distance: a small floor plus quadratic growth toward the edge of the
// range (free-space path loss dominated).
type LossModel struct {
	// Floor is the loss probability at zero distance. Values < 0 select
	// 0.002.
	Floor float64
	// EdgeMeters is the distance where loss reaches ~50%. Values <= 0
	// select 900.
	EdgeMeters float64
}

// Probability returns the loss probability at the given distance,
// clamped to [Floor, 1].
func (l LossModel) Probability(distanceMeters float64) float64 {
	floor := l.Floor
	if floor < 0 {
		floor = 0.002
	}
	if l.Floor == 0 {
		floor = 0.002
	}
	edge := l.EdgeMeters
	if edge <= 0 {
		edge = 900
	}
	if distanceMeters < 0 {
		distanceMeters = 0
	}
	p := floor + 0.5*(distanceMeters/edge)*(distanceMeters/edge)
	return math.Min(1, p)
}

// RSUSite describes one deployed RSU for channel planning.
type RSUSite struct {
	Name string
	// X, Y are planar coordinates in meters (a local tangent frame).
	X, Y float64
	// Channel is the currently assigned service channel (0 = unassigned).
	Channel Channel
}

// ChannelManager assigns service channels to RSU sites so that RSUs
// within interference range avoid sharing a channel, and switches a
// site's channel when measured interference exceeds the threshold — the
// "high-level management scheme" of §VII-B.
type ChannelManager struct {
	mu sync.Mutex
	// InterferenceRangeM is the distance under which co-channel RSUs
	// interfere.
	interferenceRangeM float64
	sites              map[string]*RSUSite
	// interference accumulates reported load per site.
	interference map[string]float64
	threshold    float64
	switches     int
}

// NewChannelManager creates a manager. interferenceRangeM <= 0 selects
// 600 m (2x the default DSRC planning range); switchThreshold <= 0
// selects 0.5.
func NewChannelManager(interferenceRangeM, switchThreshold float64) *ChannelManager {
	if interferenceRangeM <= 0 {
		interferenceRangeM = 600
	}
	if switchThreshold <= 0 {
		switchThreshold = 0.5
	}
	return &ChannelManager{
		interferenceRangeM: interferenceRangeM,
		sites:              make(map[string]*RSUSite),
		interference:       make(map[string]float64),
		threshold:          switchThreshold,
	}
}

// AddSite registers an RSU and assigns it the least-conflicted service
// channel.
func (m *ChannelManager) AddSite(name string, x, y float64) (Channel, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if name == "" {
		return 0, fmt.Errorf("netem: empty site name")
	}
	if _, ok := m.sites[name]; ok {
		return 0, fmt.Errorf("netem: site %q already registered", name)
	}
	site := &RSUSite{Name: name, X: x, Y: y}
	site.Channel = m.bestChannelLocked(site)
	m.sites[name] = site
	return site.Channel, nil
}

// bestChannelLocked picks the service channel with the fewest co-channel
// neighbors within interference range (ties broken by channel number).
func (m *ChannelManager) bestChannelLocked(site *RSUSite) Channel {
	best := SCH172
	bestConflicts := math.MaxInt32
	for _, ch := range ServiceChannels() {
		conflicts := 0
		for _, other := range m.sites {
			if other.Name == site.Name || other.Channel != ch {
				continue
			}
			if m.distance(site, other) <= m.interferenceRangeM {
				conflicts++
			}
		}
		if conflicts < bestConflicts {
			best, bestConflicts = ch, conflicts
		}
	}
	return best
}

func (m *ChannelManager) distance(a, b *RSUSite) float64 {
	dx, dy := a.X-b.X, a.Y-b.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// ChannelOf returns a site's current channel.
func (m *ChannelManager) ChannelOf(name string) (Channel, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, ok := m.sites[name]
	if !ok {
		return 0, false
	}
	return s.Channel, true
}

// ReportInterference records a site's measured interference level
// (0..1). When it crosses the threshold the manager moves the site to the
// least-conflicted channel; the report is reset after a switch.
func (m *ChannelManager) ReportInterference(name string, level float64) (switched bool, err error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	site, ok := m.sites[name]
	if !ok {
		return false, fmt.Errorf("netem: unknown site %q", name)
	}
	m.interference[name] = level
	if level < m.threshold {
		return false, nil
	}
	old := site.Channel
	site.Channel = 0 // exclude self while re-picking
	next := m.bestChannelLocked(site)
	site.Channel = next
	if next != old {
		m.switches++
		m.interference[name] = 0
		return true, nil
	}
	return false, nil
}

// Conflicts returns the co-channel pairs within interference range —
// the residual interference after assignment. Pairs are ordered by name.
func (m *ChannelManager) Conflicts() [][2]string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.sites))
	for n := range m.sites {
		names = append(names, n)
	}
	sort.Strings(names)
	var out [][2]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			a, b := m.sites[names[i]], m.sites[names[j]]
			if a.Channel == b.Channel && m.distance(a, b) <= m.interferenceRangeM {
				out = append(out, [2]string{a.Name, b.Name})
			}
		}
	}
	return out
}

// Switches returns how many channel switches the manager has performed.
func (m *ChannelManager) Switches() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.switches
}
