package geo

import (
	"errors"
	"math"
)

// The map matcher implements the hidden-Markov-model approach of Newson &
// Krumm ("Hidden Markov Map Matching Through Noise and Sparseness", ACM GIS
// 2009), which the paper uses to map trajectories onto Shenzhen's road
// network. States are candidate road segments near each GPS fix; emission
// probability decays with the perpendicular GPS error, and transition
// probability decays with the difference between great-circle and
// route-implied travel distance. Decoding is Viterbi.

// ErrNoMatch is returned when no candidate segment lies within the search
// radius of any GPS fix.
var ErrNoMatch = errors.New("mapmatch: no candidate segments within search radius")

// MatcherConfig tunes the HMM map matcher.
type MatcherConfig struct {
	// SearchRadiusMeters bounds the candidate search around each fix.
	// Values <= 0 select 200.
	SearchRadiusMeters float64
	// GPSSigmaMeters is the standard deviation of GPS error used by the
	// emission model. Values <= 0 select 20 (typical automotive GPS).
	GPSSigmaMeters float64
	// TransitionBeta is the scale (meters) of the exponential transition
	// model. Values <= 0 select 50.
	TransitionBeta float64
	// MaxCandidates caps the number of candidate segments per fix.
	// Values <= 0 select 8.
	MaxCandidates int
}

func (c MatcherConfig) withDefaults() MatcherConfig {
	if c.SearchRadiusMeters <= 0 {
		c.SearchRadiusMeters = 200
	}
	if c.GPSSigmaMeters <= 0 {
		c.GPSSigmaMeters = 20
	}
	if c.TransitionBeta <= 0 {
		c.TransitionBeta = 50
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 8
	}
	return c
}

// Matcher matches GPS fix sequences onto a Network.
type Matcher struct {
	net *Network
	cfg MatcherConfig
}

// NewMatcher creates a map matcher over the given network.
func NewMatcher(net *Network, cfg MatcherConfig) *Matcher {
	return &Matcher{net: net, cfg: cfg.withDefaults()}
}

// Match returns, for each input fix, the matched segment projection. The
// output has the same length as fixes. It returns ErrNoMatch if any fix has
// no candidates within the search radius.
func (m *Matcher) Match(fixes []Point) ([]Projection, error) {
	if len(fixes) == 0 {
		return nil, nil
	}

	// Candidate generation.
	cands := make([][]Projection, len(fixes))
	for i, p := range fixes {
		c := m.net.Nearby(p, m.cfg.SearchRadiusMeters)
		if len(c) == 0 {
			return nil, ErrNoMatch
		}
		if len(c) > m.cfg.MaxCandidates {
			c = c[:m.cfg.MaxCandidates]
		}
		cands[i] = c
	}

	// Viterbi in log space.
	sigma := m.cfg.GPSSigmaMeters
	beta := m.cfg.TransitionBeta
	emit := func(pr Projection) float64 {
		z := pr.DistanceMeters / sigma
		return -0.5 * z * z
	}
	trans := func(prev, cur Projection, gcDist float64) float64 {
		// Route distance approximation: same segment -> |along delta|,
		// different segments -> straight-line between projections plus a
		// switching penalty unless the segments are connected.
		var routeDist float64
		penalty := 0.0
		if prev.SegmentID == cur.SegmentID {
			routeDist = math.Abs(cur.AlongMeters - prev.AlongMeters)
		} else {
			routeDist = DistanceMeters(prev.Point, cur.Point)
			if !m.connected(prev.SegmentID, cur.SegmentID) {
				penalty = 2 // log-space penalty for jumping between roads
			}
		}
		return -math.Abs(gcDist-routeDist)/beta - penalty
	}

	n := len(fixes)
	score := make([][]float64, n)
	back := make([][]int, n)
	score[0] = make([]float64, len(cands[0]))
	back[0] = make([]int, len(cands[0]))
	for j, c := range cands[0] {
		score[0][j] = emit(c)
	}
	for i := 1; i < n; i++ {
		gc := DistanceMeters(fixes[i-1], fixes[i])
		score[i] = make([]float64, len(cands[i]))
		back[i] = make([]int, len(cands[i]))
		for j, cur := range cands[i] {
			best, bestK := math.Inf(-1), 0
			for k, prev := range cands[i-1] {
				s := score[i-1][k] + trans(prev, cur, gc)
				if s > best {
					best, bestK = s, k
				}
			}
			score[i][j] = best + emit(cur)
			back[i][j] = bestK
		}
	}

	// Backtrack.
	out := make([]Projection, n)
	bestJ := 0
	for j := range score[n-1] {
		if score[n-1][j] > score[n-1][bestJ] {
			bestJ = j
		}
	}
	for i := n - 1; i >= 0; i-- {
		out[i] = cands[i][bestJ]
		bestJ = back[i][bestJ]
	}
	return out, nil
}

func (m *Matcher) connected(a, b SegmentID) bool {
	for _, id := range m.net.next[a] {
		if id == b {
			return true
		}
	}
	for _, id := range m.net.next[b] {
		if id == a {
			return true
		}
	}
	return false
}
