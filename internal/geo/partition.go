package geo

// City partitioning: the geographic half of the sharded city driver
// (internal/city). A full synthetic road network is covered by RSU
// sites placed along every segment at the planning coverage interval
// (rsuplan.go's budget model, made concrete positions), and the sites
// are assigned to worker shards by a consistent-hash ring over the
// site's map-matched position — quantized to a coarse geographic cell
// so neighbouring sites usually land on the same shard and a vehicle
// crosses shards at cell edges, not at every site edge. The functions
// here are pure geometry + hashing: deterministic for a fixed network,
// so a journey's map-matched path always yields the same shard
// sequence (ShardPath), which is what the handover settlement ledger
// relies on.

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// RSUSite is one planned roadside unit position: the unit of coverage
// (each site serves a contiguous stretch of one segment) and the unit
// of shard assignment.
type RSUSite struct {
	ID          int // dense, deterministic: assigned in (segment, along) order
	Segment     SegmentID
	AlongMeters float64 // site center along the segment
	Position    Point   // interpolated polyline point at AlongMeters
}

// PlaceRSUSites plans concrete RSU positions for every segment of the
// network: each segment gets ceil-ish len/coverage sites at the centers
// of equal stretches, so the count agrees with rsuplan.go's budget
// model to within rounding. Sites are ordered by (segment ID, along),
// making IDs deterministic for a fixed network.
func PlaceRSUSites(net *Network, coverageMeters float64) []RSUSite {
	if coverageMeters <= 0 {
		coverageMeters = DefaultRSUCoverageMeters
	}
	var sites []RSUSite
	for _, seg := range net.AllSegments() {
		length := seg.LengthMeters()
		k := int(math.Round(length / coverageMeters))
		if k < 1 {
			k = 1
		}
		stretch := length / float64(k)
		for i := 0; i < k; i++ {
			along := (float64(i) + 0.5) * stretch
			sites = append(sites, RSUSite{
				ID:          len(sites),
				Segment:     seg.ID,
				AlongMeters: along,
				Position:    seg.PointAt(along / math.Max(length, 1e-9)),
			})
		}
	}
	return sites
}

// SiteIndex answers "which RSU site serves this map-matched position".
type SiteIndex struct {
	bySeg map[SegmentID][]RSUSite // sorted by AlongMeters
}

// NewSiteIndex indexes planned sites by segment.
func NewSiteIndex(sites []RSUSite) *SiteIndex {
	idx := &SiteIndex{bySeg: make(map[SegmentID][]RSUSite)}
	for _, s := range sites {
		idx.bySeg[s.Segment] = append(idx.bySeg[s.Segment], s)
	}
	for seg := range idx.bySeg {
		row := idx.bySeg[seg]
		sort.Slice(row, func(i, j int) bool { return row[i].AlongMeters < row[j].AlongMeters })
	}
	return idx
}

// SiteAt returns the site whose center is closest to the along-track
// position on the segment. ok is false for segments with no sites.
func (x *SiteIndex) SiteAt(seg SegmentID, alongMeters float64) (RSUSite, bool) {
	row := x.bySeg[seg]
	if len(row) == 0 {
		return RSUSite{}, false
	}
	i := sort.Search(len(row), func(i int) bool { return row[i].AlongMeters >= alongMeters })
	if i == len(row) {
		return row[len(row)-1], true
	}
	if i > 0 && alongMeters-row[i-1].AlongMeters <= row[i].AlongMeters-alongMeters {
		return row[i-1], true
	}
	return row[i], true
}

// Sites returns the segment's sites in along order (shared slice; do
// not mutate).
func (x *SiteIndex) Sites(seg SegmentID) []RSUSite { return x.bySeg[seg] }

// Ring is a consistent-hash ring mapping position cells to shards.
// Virtual nodes smooth the per-shard arc lengths; with enough of them
// shard loads concentrate near the mean even for small shard counts.
type Ring struct {
	shards int
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds a ring of shards*vnodes points. vnodes <= 0 selects
// 128 virtual nodes per shard.
func NewRing(shards, vnodes int) (*Ring, error) {
	if shards < 1 {
		return nil, fmt.Errorf("geo: ring needs >= 1 shard, got %d", shards)
	}
	if vnodes <= 0 {
		vnodes = 128
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*vnodes)}
	var label [16]byte
	for s := 0; s < shards; s++ {
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint64(label[0:8], uint64(s))
			binary.LittleEndian.PutUint64(label[8:16], uint64(v))
			h := fnv.New64a()
			_, _ = h.Write(label[:])
			r.points = append(r.points, ringPoint{hash: h.Sum64(), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].shard < r.points[j].shard
	})
	return r, nil
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// mixKey re-hashes a key before the ring walk: position-cell keys are
// tiny integers whose raw values cluster on one arc.
func mixKey(key uint64) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	_, _ = h.Write(b[:])
	return h.Sum64()
}

// ShardForKey walks clockwise from the hashed key to the next virtual
// node and returns its shard.
func (r *Ring) ShardForKey(key uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= mixKey(key) })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].shard
}

// WalkFrom returns every shard exactly once, in ring order starting at
// the key's point — the fallback sequence for bounded-load placement.
func (r *Ring) WalkFrom(key uint64) []int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= mixKey(key) })
	out := make([]int, 0, r.shards)
	seen := make([]bool, r.shards)
	for i := 0; i < len(r.points) && len(out) < r.shards; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.shard] {
			seen[p.shard] = true
			out = append(out, p.shard)
		}
	}
	return out
}

// PositionCell quantizes a point to a coarse square cell of the given
// size and packs the cell coordinates into a hashable key. Neighbouring
// positions share a key, which is what gives the consistent-hash
// assignment its spatial locality.
func PositionCell(p Point, cellMeters float64) uint64 {
	if cellMeters <= 0 {
		cellMeters = 2000
	}
	const metersPerDegLat = 111_320.0
	// A fixed mid-latitude longitude scale keeps the key a pure function
	// of the point (no per-network reference latitude to thread around).
	const metersPerDegLon = 78_710.0 // cos(45°) * metersPerDegLat
	x := int64(math.Floor(p.Lon * metersPerDegLon / cellMeters))
	y := int64(math.Floor(p.Lat * metersPerDegLat / cellMeters))
	return uint64(uint32(x))<<32 | uint64(uint32(y))
}

// PartitionConfig sizes a city partition.
type PartitionConfig struct {
	// CoverageMeters is the per-site coverage interval. <= 0 selects
	// DefaultRSUCoverageMeters.
	CoverageMeters float64
	// Shards is the worker shard count. <= 0 selects 4.
	Shards int
	// VNodes is the virtual node count per shard. <= 0 selects 128.
	VNodes int
	// CellMeters is the position-cell size for shard assignment. <= 0
	// selects 2000 m.
	CellMeters float64
	// LoadEpsilon bounds the load spill: no shard takes more than
	// (1 + epsilon) x the average site load before its cells overflow
	// to the next shard on the ring (consistent hashing with bounded
	// loads). <= 0 selects 0.10; values >= 1 disable the bound (pure
	// consistent hashing).
	LoadEpsilon float64
}

// CityPartition is a planned city: the RSU sites covering a network
// and their consistent-hash shard assignment.
type CityPartition struct {
	Net        *Network
	Sites      []RSUSite
	CellMeters float64

	idx     *SiteIndex
	ring    *Ring
	shardOf []int // by site ID
}

// PartitionCity places RSU sites over the network and assigns each to
// a shard via the ring. The result is deterministic for a fixed
// network and config.
func PartitionCity(net *Network, cfg PartitionConfig) (*CityPartition, error) {
	if net == nil || net.SegmentCount() == 0 {
		return nil, fmt.Errorf("geo: partition needs a non-empty network")
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.CellMeters <= 0 {
		cfg.CellMeters = 2000
	}
	if cfg.LoadEpsilon <= 0 {
		cfg.LoadEpsilon = 0.10
	}
	ring, err := NewRing(cfg.Shards, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	sites := PlaceRSUSites(net, cfg.CoverageMeters)
	cp := &CityPartition{
		Net:        net,
		Sites:      sites,
		CellMeters: cfg.CellMeters,
		idx:        NewSiteIndex(sites),
		ring:       ring,
		shardOf:    make([]int, len(sites)),
	}
	cellShard := assignCells(ring, sites, cfg.CellMeters, cfg.LoadEpsilon)
	for i, s := range sites {
		cp.shardOf[i] = cellShard[PositionCell(s.Position, cfg.CellMeters)]
	}
	return cp, nil
}

// assignCells maps every distinct position cell to a shard: consistent
// hashing with bounded loads. Each cell wants the ring's shard, but a
// shard already holding more than (1 + eps) x the average site load
// spills the cell to the next shard on the ring. Cells are placed in
// ring-hash order, so the assignment is a pure function of (network,
// ring, cell size) — heavier downtown cells cannot pile onto one shard
// the way unweighted consistent hashing lets them.
func assignCells(ring *Ring, sites []RSUSite, cellMeters, eps float64) map[uint64]int {
	weight := make(map[uint64]int)
	for _, s := range sites {
		weight[PositionCell(s.Position, cellMeters)]++
	}
	cells := make([]uint64, 0, len(weight))
	for c := range weight {
		cells = append(cells, c)
	}
	sort.Slice(cells, func(i, j int) bool {
		hi, hj := mixKey(cells[i]), mixKey(cells[j])
		if hi != hj {
			return hi < hj
		}
		return cells[i] < cells[j]
	})
	capacity := len(sites) // eps >= 1 disables the bound
	if eps < 1 {
		capacity = int(math.Ceil((1 + eps) * float64(len(sites)) / float64(ring.Shards())))
	}
	load := make([]int, ring.Shards())
	out := make(map[uint64]int, len(cells))
	for _, c := range cells {
		walk := ring.WalkFrom(c)
		shard := walk[0]
		placed := false
		for _, s := range walk {
			if load[s]+weight[c] <= capacity {
				shard, placed = s, true
				break
			}
		}
		if !placed {
			// A single cell heavier than the capacity: take the least
			// loaded shard on its walk.
			for _, s := range walk {
				if load[s] < load[shard] {
					shard = s
				}
			}
		}
		load[shard] += weight[c]
		out[c] = shard
	}
	return out
}

// Shards returns the shard count.
func (cp *CityPartition) Shards() int { return cp.ring.Shards() }

// ShardOfSite returns the shard a site is assigned to.
func (cp *CityPartition) ShardOfSite(siteID int) int { return cp.shardOf[siteID] }

// SiteAt map-matches an along-track position to its serving site.
func (cp *CityPartition) SiteAt(seg SegmentID, alongMeters float64) (RSUSite, bool) {
	return cp.idx.SiteAt(seg, alongMeters)
}

// ShardAt returns the shard serving an along-track position.
func (cp *CityPartition) ShardAt(seg SegmentID, alongMeters float64) (int, bool) {
	site, ok := cp.idx.SiteAt(seg, alongMeters)
	if !ok {
		return 0, false
	}
	return cp.shardOf[site.ID], true
}

// SitesOf returns a segment's sites in along order (shared slice; do
// not mutate). The city driver's vehicles use it to find the next
// coverage boundary ahead of their position.
func (cp *CityPartition) SitesOf(seg SegmentID) []RSUSite { return cp.idx.Sites(seg) }

// ShardPath walks a route through the partition and returns the shard
// sequence the journey visits, consecutive duplicates collapsed. It is
// the reference the handover ledger checks vehicles against: the same
// route always produces the same sequence.
func (cp *CityPartition) ShardPath(route []SegmentID) []int {
	var path []int
	for _, seg := range route {
		for _, site := range cp.idx.Sites(seg) {
			shard := cp.shardOf[site.ID]
			if len(path) == 0 || path[len(path)-1] != shard {
				path = append(path, shard)
			}
		}
	}
	return path
}

// Boundary is one adjacent site pair whose shards differ — a place a
// through-driving vehicle hands over between shards.
type Boundary struct {
	FromSite, ToSite   int
	FromShard, ToShard int
}

// Boundaries extracts every shard boundary: consecutive sites along one
// segment, and the last site of a segment against the first site of
// each successor. Sorted by (FromSite, ToSite).
func (cp *CityPartition) Boundaries() []Boundary {
	var out []Boundary
	add := func(a, b RSUSite) {
		sa, sb := cp.shardOf[a.ID], cp.shardOf[b.ID]
		if sa != sb {
			out = append(out, Boundary{FromSite: a.ID, ToSite: b.ID, FromShard: sa, ToShard: sb})
		}
	}
	for _, seg := range cp.Net.AllSegments() {
		row := cp.idx.Sites(seg.ID)
		if len(row) == 0 {
			continue
		}
		for i := 1; i < len(row); i++ {
			add(row[i-1], row[i])
		}
		last := row[len(row)-1]
		for _, succ := range cp.Net.Successors(seg.ID) {
			if next := cp.idx.Sites(succ); len(next) > 0 {
				add(last, next[0])
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FromSite != out[j].FromSite {
			return out[i].FromSite < out[j].FromSite
		}
		return out[i].ToSite < out[j].ToSite
	})
	return out
}

// ShardSiteCounts returns how many sites each shard owns.
func (cp *CityPartition) ShardSiteCounts() []int {
	counts := make([]int, cp.ring.Shards())
	for _, s := range cp.shardOf {
		counts[s]++
	}
	return counts
}

// ConnectNearest densifies the network's adjacency so random journeys
// keep moving: for every segment it connects the segment end to up to k
// nearby segments (closest first) within the radius. The synthetic
// builder only connects main roads to their ramp families, leaving most
// segments without successors; city-scale driving needs every street to
// lead somewhere. Existing connections are kept and not duplicated.
// Returns the number of connections added. Deterministic for a fixed
// network.
func ConnectNearest(net *Network, k int, radiusMeters float64) int {
	if k <= 0 {
		k = 2
	}
	if radiusMeters <= 0 {
		radiusMeters = 500
	}
	added := 0
	for _, seg := range net.AllSegments() {
		have := make(map[SegmentID]bool)
		for _, id := range net.Successors(seg.ID) {
			have[id] = true
		}
		if len(have) >= k {
			continue
		}
		for _, proj := range net.Nearby(seg.End(), radiusMeters) {
			if len(have) >= k {
				break
			}
			if proj.SegmentID == seg.ID || have[proj.SegmentID] {
				continue
			}
			if err := net.Connect(seg.ID, proj.SegmentID); err != nil {
				continue
			}
			have[proj.SegmentID] = true
			added++
		}
	}
	return added
}

// RandomRoute generates a random-walk route of up to maxSegs segments
// starting at start, choosing each successor with pick(n) in [0, n).
// The walk stops early at dead ends. Deterministic for a fixed network
// and pick sequence (Successors order is Connect-insertion order).
func RandomRoute(net *Network, start SegmentID, pick func(n int) int, maxSegs int) []SegmentID {
	if net.Segment(start) == nil || maxSegs < 1 {
		return nil
	}
	route := make([]SegmentID, 1, maxSegs)
	route[0] = start
	cur := start
	for len(route) < maxSegs {
		succ := net.next[cur]
		if len(succ) == 0 {
			break
		}
		cur = succ[pick(len(succ))]
		route = append(route, cur)
	}
	return route
}

// NextSegment advances a random walk by one step without materializing
// a route: it returns the pick(n)-th successor of cur, or ok=false at a
// dead end. The city driver's vehicles use it to walk indefinitely with
// no per-vehicle route storage.
func (n *Network) NextSegment(cur SegmentID, pick func(n int) int) (SegmentID, bool) {
	succ := n.next[cur]
	if len(succ) == 0 {
		return 0, false
	}
	return succ[pick(len(succ))], true
}
