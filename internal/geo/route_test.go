package geo

import (
	"errors"
	"math/rand"
	"testing"
)

// chainNetwork builds a linear chain of n segments: 1 -> 2 -> ... -> n,
// plus an expensive bypass 1 -> n for route-choice tests.
func chainNetwork(t *testing.T, n int) *Network {
	t.Helper()
	net := NewNetwork(0)
	start := ShenzhenCenter
	for i := 1; i <= n; i++ {
		seg := line(t, SegmentID(i), Primary, start, 90, 500, 2)
		if err := net.AddSegment(seg); err != nil {
			t.Fatal(err)
		}
		start = seg.End()
	}
	for i := 1; i < n; i++ {
		if err := net.Connect(SegmentID(i), SegmentID(i+1)); err != nil {
			t.Fatal(err)
		}
	}
	return net
}

func TestRouteLinearChain(t *testing.T) {
	net := chainNetwork(t, 5)
	r := NewRouter(net)
	route, err := r.Route(1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 5 {
		t.Fatalf("route = %v", route)
	}
	for i, id := range route {
		if id != SegmentID(i+1) {
			t.Fatalf("route = %v, want 1..5 in order", route)
		}
	}
	if tt := r.TravelTimeSeconds(route); tt <= 0 {
		t.Errorf("travel time = %v", tt)
	}
}

func TestRoutePrefersFastRoads(t *testing.T) {
	// Two parallel paths 1 -> {2 slow residential, 3 fast motorway} -> 4.
	net := NewNetwork(0)
	a := line(t, 1, Primary, ShenzhenCenter, 90, 300, 2)
	slow := line(t, 2, Residential, a.End(), 60, 1000, 2)
	fast := line(t, 3, Motorway, a.End(), 120, 1200, 2)
	end := line(t, 4, Primary, slow.End(), 90, 300, 2)
	for _, s := range []*Segment{a, slow, fast, end} {
		if err := net.AddSegment(s); err != nil {
			t.Fatal(err)
		}
	}
	_ = net.Connect(1, 2)
	_ = net.Connect(1, 3)
	_ = net.Connect(2, 4)
	_ = net.Connect(3, 4)

	route, err := NewRouter(net).Route(1, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Motorway at 100 km/h over 1200 m (43 s) beats residential at
	// 30 km/h over 1000 m (120 s).
	if len(route) != 3 || route[1] != 3 {
		t.Errorf("route = %v, want via motorway (3)", route)
	}
}

func TestRouteTrivialAndErrors(t *testing.T) {
	net := chainNetwork(t, 3)
	r := NewRouter(net)
	route, err := r.Route(2, 2)
	if err != nil || len(route) != 1 || route[0] != 2 {
		t.Errorf("self route = %v, %v", route, err)
	}
	if _, err := r.Route(99, 1); err == nil {
		t.Error("want error for unknown source")
	}
	if _, err := r.Route(1, 99); err == nil {
		t.Error("want error for unknown target")
	}
	// Disconnected: 3 -> 1 has no edges (chain is directed).
	if _, err := r.Route(3, 1); !errors.Is(err, ErrNoRoute) {
		t.Errorf("err = %v, want ErrNoRoute", err)
	}
}

func TestRouteOnSyntheticNetwork(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.05, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(net)
	// Every motorway connects to a link, so motorway -> its link routes.
	mw := net.SegmentsOfType(Motorway)[0]
	succ := net.Successors(mw.ID)
	if len(succ) == 0 {
		t.Skip("no successors")
	}
	route, err := r.Route(mw.ID, succ[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(route) != 2 {
		t.Errorf("route = %v", route)
	}
}

func TestHeatmapCountsAndHotspots(t *testing.T) {
	center := ShenzhenCenter
	pts := []Point{center, center, center, Destination(center, 90, 3000)}
	h, err := NewHeatmap(pts, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if h.Total != 4 {
		t.Errorf("Total = %d", h.Total)
	}
	hot := h.Hotspots(1)
	if len(hot) != 1 || hot[0].Count != 3 {
		t.Fatalf("hotspots = %+v", hot)
	}
	if d := DistanceMeters(hot[0].Center, center); d > 1200 {
		t.Errorf("hotspot center %.0f m from the cluster", d)
	}
	if h.Render() == "" {
		t.Error("empty render")
	}
	if _, err := NewHeatmap(nil, 0.01); err == nil {
		t.Error("want error for empty input")
	}
}

func TestHeatmapAddClamps(t *testing.T) {
	h, err := NewHeatmap([]Point{ShenzhenCenter}, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// Far outside the grid: must clamp, not panic.
	h.Add(Destination(ShenzhenCenter, 45, 100_000))
	if h.Total != 2 {
		t.Errorf("Total = %d", h.Total)
	}
}

func TestFindCoverageGaps(t *testing.T) {
	center := ShenzhenCenter
	hotspotA := Destination(center, 90, 5000) // will be covered
	hotspotB := Destination(center, 0, 9000)  // uncovered

	var pts []Point
	for i := 0; i < 10; i++ {
		pts = append(pts, hotspotA, hotspotB)
	}
	h, err := NewHeatmap(pts, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	infra := []Point{Destination(hotspotA, 45, 100)} // near A only

	gaps := FindCoverageGaps(h, infra, 5, 300)
	if len(gaps) != 1 {
		t.Fatalf("gaps = %+v, want exactly the uncovered hotspot", gaps)
	}
	if d := DistanceMeters(gaps[0].Cell.Center, hotspotB); d > 1000 {
		t.Errorf("gap at %.0f m from hotspot B", d)
	}
	if gaps[0].NearestInfraMeters < 300 {
		t.Errorf("gap nearest infra %.0f m should exceed range", gaps[0].NearestInfraMeters)
	}

	// With a huge range everything is covered.
	if gaps := FindCoverageGaps(h, infra, 5, 50_000); len(gaps) != 0 {
		t.Errorf("gaps with huge range = %+v", gaps)
	}
}

func TestInfrastructurePoints(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.05, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	placement := PlaceInfrastructure(net, 200, 50, rng.NormFloat64)
	pts := InfrastructurePoints(net, placement)
	var marks int
	for _, m := range placement {
		marks += len(m)
	}
	if len(pts) != marks {
		t.Errorf("points = %d, placement marks = %d", len(pts), marks)
	}
	for _, p := range pts {
		if !p.Valid() {
			t.Fatalf("invalid infrastructure point %v", p)
		}
	}
}
