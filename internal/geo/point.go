// Package geo provides the geographic substrate for CAD3: geodesic math,
// road types and road-network modelling, a synthetic Shenzhen-scale network
// generator, hidden-Markov-model map matching, and roadside-unit placement
// planning.
//
// The paper's evaluation relies on OpenStreetMap extractions of Shenzhen
// (roads, traffic signs, lamp posts). Those extractions are not shipped with
// the paper, so this package regenerates statistically equivalent networks
// from the aggregate statistics the paper prints (Table V and Table VI); see
// DESIGN.md for the substitution rationale.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMeters is the mean Earth radius used by the great-circle
// distance computation, in meters.
const EarthRadiusMeters = 6_371_000.0

// Point is a WGS84 geographic coordinate.
type Point struct {
	Lat float64 `json:"lat"` // degrees, [-90, 90]
	Lon float64 `json:"lon"` // degrees, [-180, 180]
}

// String implements fmt.Stringer.
func (p Point) String() string {
	return fmt.Sprintf("(%.6f,%.6f)", p.Lat, p.Lon)
}

// Valid reports whether the point lies within WGS84 coordinate bounds.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180 &&
		!math.IsNaN(p.Lat) && !math.IsNaN(p.Lon)
}

// DistanceMeters returns the great-circle (haversine) distance between two
// points in meters. This is the Dist function of Equation 4 in the paper.
func DistanceMeters(a, b Point) float64 {
	const degToRad = math.Pi / 180
	lat1 := a.Lat * degToRad
	lat2 := b.Lat * degToRad
	dLat := (b.Lat - a.Lat) * degToRad
	dLon := (b.Lon - a.Lon) * degToRad

	sinLat := math.Sin(dLat / 2)
	sinLon := math.Sin(dLon / 2)
	h := sinLat*sinLat + math.Cos(lat1)*math.Cos(lat2)*sinLon*sinLon
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMeters * math.Asin(math.Sqrt(h))
}

// Destination returns the point reached by travelling distanceMeters from p
// along the given initial bearing (degrees clockwise from north). It is the
// forward geodesic problem on a sphere, used by the synthetic network
// generator to lay out road segments.
func Destination(p Point, bearingDeg, distanceMeters float64) Point {
	const degToRad = math.Pi / 180
	const radToDeg = 180 / math.Pi

	delta := distanceMeters / EarthRadiusMeters
	theta := bearingDeg * degToRad
	phi1 := p.Lat * degToRad
	lambda1 := p.Lon * degToRad

	sinPhi2 := math.Sin(phi1)*math.Cos(delta) + math.Cos(phi1)*math.Sin(delta)*math.Cos(theta)
	phi2 := math.Asin(sinPhi2)
	y := math.Sin(theta) * math.Sin(delta) * math.Cos(phi1)
	x := math.Cos(delta) - math.Sin(phi1)*sinPhi2
	lambda2 := lambda1 + math.Atan2(y, x)

	lon := math.Mod(lambda2*radToDeg+540, 360) - 180
	return Point{Lat: phi2 * radToDeg, Lon: lon}
}

// Midpoint returns the great-circle midpoint between a and b. Adequate for
// the short segments used in the synthetic network.
func Midpoint(a, b Point) Point {
	return Point{Lat: (a.Lat + b.Lat) / 2, Lon: (a.Lon + b.Lon) / 2}
}

// BearingDeg returns the initial bearing from a to b in degrees clockwise
// from north, normalized to [0, 360).
func BearingDeg(a, b Point) float64 {
	const degToRad = math.Pi / 180
	const radToDeg = 180 / math.Pi

	phi1 := a.Lat * degToRad
	phi2 := b.Lat * degToRad
	dLambda := (b.Lon - a.Lon) * degToRad

	y := math.Sin(dLambda) * math.Cos(phi2)
	x := math.Cos(phi1)*math.Sin(phi2) - math.Sin(phi1)*math.Cos(phi2)*math.Cos(dLambda)
	deg := math.Atan2(y, x) * radToDeg
	return math.Mod(deg+360, 360)
}
