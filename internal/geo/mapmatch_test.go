package geo

import (
	"math/rand"
	"testing"
)

// buildCorridor creates a motorway followed by a connected motorway link,
// returning the network and both segments.
func buildCorridor(t *testing.T) (*Network, *Segment, *Segment) {
	t.Helper()
	net := NewNetwork(0)
	mw := line(t, 1, Motorway, ShenzhenCenter, 90, 3000, 12)
	lk := line(t, 2, MotorwayLink, mw.End(), 90, 600, 3)
	if err := net.AddSegment(mw); err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(lk); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	return net, mw, lk
}

func noisyTrace(rng *rand.Rand, seg *Segment, n int, sigmaM float64) []Point {
	fixes := make([]Point, n)
	for i := 0; i < n; i++ {
		frac := float64(i) / float64(n-1)
		p := seg.PointAt(frac)
		fixes[i] = Destination(p, rng.Float64()*360, rng.Float64()*sigmaM)
	}
	return fixes
}

func TestMatchSingleRoad(t *testing.T) {
	net, mw, _ := buildCorridor(t)
	rng := rand.New(rand.NewSource(1))
	fixes := noisyTrace(rng, mw, 20, 15)

	m := NewMatcher(net, MatcherConfig{})
	got, err := m.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(fixes) {
		t.Fatalf("got %d projections, want %d", len(got), len(fixes))
	}
	for i, pr := range got {
		if pr.SegmentID != mw.ID {
			t.Errorf("fix %d matched to segment %d, want %d", i, pr.SegmentID, mw.ID)
		}
	}
}

func TestMatchHandoverCorridor(t *testing.T) {
	net, mw, lk := buildCorridor(t)
	rng := rand.New(rand.NewSource(2))
	fixes := append(noisyTrace(rng, mw, 15, 10), noisyTrace(rng, lk, 5, 10)...)

	m := NewMatcher(net, MatcherConfig{})
	got, err := m.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	// The first stretch must be on the motorway and the tail on the link.
	for i := 0; i < 10; i++ {
		if got[i].SegmentID != mw.ID {
			t.Errorf("fix %d on segment %d, want motorway", i, got[i].SegmentID)
		}
	}
	for i := len(fixes) - 3; i < len(fixes); i++ {
		if got[i].SegmentID != lk.ID {
			t.Errorf("fix %d on segment %d, want link", i, got[i].SegmentID)
		}
	}
}

func TestMatchNoCandidates(t *testing.T) {
	net, _, _ := buildCorridor(t)
	far := Destination(ShenzhenCenter, 180, 50_000)
	m := NewMatcher(net, MatcherConfig{})
	if _, err := m.Match([]Point{far}); err != ErrNoMatch {
		t.Errorf("err = %v, want ErrNoMatch", err)
	}
}

func TestMatchEmptyInput(t *testing.T) {
	net, _, _ := buildCorridor(t)
	m := NewMatcher(net, MatcherConfig{})
	got, err := m.Match(nil)
	if err != nil || got != nil {
		t.Errorf("Match(nil) = %v, %v", got, err)
	}
}

func TestMatchPrefersContinuity(t *testing.T) {
	// Two parallel roads 60 m apart; a noisy trace down the first should
	// not flip-flop even when individual fixes are closer to the second.
	net := NewNetwork(0)
	r1 := line(t, 1, Primary, ShenzhenCenter, 90, 2000, 8)
	r2 := line(t, 2, Primary, Destination(ShenzhenCenter, 0, 60), 90, 2000, 8)
	_ = net.AddSegment(r1)
	_ = net.AddSegment(r2)

	rng := rand.New(rand.NewSource(3))
	fixes := make([]Point, 30)
	for i := range fixes {
		p := r1.PointAt(float64(i) / 29)
		// Bias noise northward so some fixes are nearer r2.
		fixes[i] = Destination(p, 0, rng.Float64()*40)
	}
	m := NewMatcher(net, MatcherConfig{GPSSigmaMeters: 30})
	got, err := m.Match(fixes)
	if err != nil {
		t.Fatal(err)
	}
	switches := 0
	for i := 1; i < len(got); i++ {
		if got[i].SegmentID != got[i-1].SegmentID {
			switches++
		}
	}
	if switches > 2 {
		t.Errorf("matched path switches roads %d times; HMM should smooth", switches)
	}
}
