package geo

import (
	"math"
	"testing"
)

func TestNetworkAddAndLookup(t *testing.T) {
	net := NewNetwork(0)
	s1 := line(t, 1, Motorway, ShenzhenCenter, 90, 1000, 4)
	s2 := line(t, 2, MotorwayLink, s1.End(), 0, 300, 2)
	if err := net.AddSegment(s1); err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(s2); err != nil {
		t.Fatal(err)
	}
	if err := net.AddSegment(s1); err == nil {
		t.Error("want duplicate-id error")
	}
	if net.SegmentCount() != 2 {
		t.Errorf("SegmentCount = %d", net.SegmentCount())
	}
	if net.Segment(1) != s1 || net.Segment(99) != nil {
		t.Error("Segment lookup broken")
	}
	if got := net.SegmentsOfType(Motorway); len(got) != 1 || got[0].ID != 1 {
		t.Errorf("SegmentsOfType(Motorway) = %v", got)
	}
	if got := net.TotalLengthMeters(Motorway); math.Abs(got-1000) > 5 {
		t.Errorf("TotalLengthMeters = %.1f", got)
	}
}

func TestNetworkConnect(t *testing.T) {
	net := NewNetwork(0)
	s1 := line(t, 1, Motorway, ShenzhenCenter, 90, 1000, 2)
	s2 := line(t, 2, MotorwayLink, s1.End(), 0, 300, 2)
	_ = net.AddSegment(s1)
	_ = net.AddSegment(s2)
	if err := net.Connect(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := net.Connect(1, 99); err == nil {
		t.Error("want error for unknown target")
	}
	if err := net.Connect(99, 1); err == nil {
		t.Error("want error for unknown source")
	}
	succ := net.Successors(1)
	if len(succ) != 1 || succ[0] != 2 {
		t.Errorf("Successors = %v", succ)
	}
	// Mutating the returned slice must not affect the network.
	succ[0] = 42
	if got := net.Successors(1); got[0] != 2 {
		t.Error("Successors must return a copy")
	}
}

func TestNetworkNearby(t *testing.T) {
	net := NewNetwork(0)
	s1 := line(t, 1, Motorway, ShenzhenCenter, 90, 1000, 4)
	far := Destination(ShenzhenCenter, 0, 5000)
	s2 := line(t, 2, Primary, far, 90, 1000, 4)
	_ = net.AddSegment(s1)
	_ = net.AddSegment(s2)

	near := Destination(s1.PointAt(0.5), 0, 30)
	got := net.Nearby(near, 100)
	if len(got) != 1 || got[0].SegmentID != 1 {
		t.Fatalf("Nearby = %+v, want only segment 1", got)
	}
	if math.Abs(got[0].DistanceMeters-30) > 3 {
		t.Errorf("distance = %.1f, want ~30", got[0].DistanceMeters)
	}

	if got := net.Nearby(near, 10_000); len(got) != 2 {
		t.Errorf("wide search found %d segments, want 2", len(got))
	}
	if got := net.Nearby(Destination(ShenzhenCenter, 180, 20_000), 100); len(got) != 0 {
		t.Errorf("remote search found %d segments, want 0", len(got))
	}
}

func TestNearbySortedByDistance(t *testing.T) {
	net := NewNetwork(0)
	base := ShenzhenCenter
	for i := 1; i <= 5; i++ {
		start := Destination(base, 0, float64(i)*100)
		_ = net.AddSegment(line(t, SegmentID(i), Primary, start, 90, 500, 2))
	}
	got := net.Nearby(base, 2000)
	for i := 1; i < len(got); i++ {
		if got[i].DistanceMeters < got[i-1].DistanceMeters {
			t.Fatalf("Nearby not sorted: %v", got)
		}
	}
	if len(got) != 5 {
		t.Errorf("found %d segments, want 5", len(got))
	}
}
