package geo

import (
	"fmt"
	"math"
	"sort"
)

// Network is a collection of road segments with a coarse spatial index.
// It is the substrate the trace generator drives vehicles over and the map
// matcher matches GPS fixes against.
type Network struct {
	segments map[SegmentID]*Segment
	byType   map[RoadType][]*Segment
	// adjacency: successor segments reachable from the end of a segment.
	next map[SegmentID][]SegmentID
	// grid index: cell -> segment IDs whose bounding box intersects it.
	grid     map[gridCell][]SegmentID
	cellSize float64 // degrees
}

type gridCell struct{ x, y int }

// NewNetwork creates an empty network. cellSizeDeg controls the spatial
// index resolution; 0 selects a default of 0.005 degrees (~500 m).
func NewNetwork(cellSizeDeg float64) *Network {
	if cellSizeDeg <= 0 {
		cellSizeDeg = 0.005
	}
	return &Network{
		segments: make(map[SegmentID]*Segment),
		byType:   make(map[RoadType][]*Segment),
		next:     make(map[SegmentID][]SegmentID),
		grid:     make(map[gridCell][]SegmentID),
		cellSize: cellSizeDeg,
	}
}

// AddSegment inserts a segment. Duplicate IDs are rejected.
func (n *Network) AddSegment(s *Segment) error {
	if s == nil {
		return fmt.Errorf("nil segment")
	}
	if _, ok := n.segments[s.ID]; ok {
		return fmt.Errorf("duplicate segment id %d", s.ID)
	}
	n.segments[s.ID] = s
	n.byType[s.Type] = append(n.byType[s.Type], s)
	for _, c := range n.cellsFor(s) {
		n.grid[c] = append(n.grid[c], s.ID)
	}
	return nil
}

// Connect declares that segment to is reachable from the end of segment
// from, used by route generation and the map matcher's transition model.
func (n *Network) Connect(from, to SegmentID) error {
	if _, ok := n.segments[from]; !ok {
		return fmt.Errorf("connect: unknown segment %d", from)
	}
	if _, ok := n.segments[to]; !ok {
		return fmt.Errorf("connect: unknown segment %d", to)
	}
	n.next[from] = append(n.next[from], to)
	return nil
}

// Segment returns the segment with the given ID, or nil.
func (n *Network) Segment(id SegmentID) *Segment { return n.segments[id] }

// Successors returns the IDs of segments reachable from the end of id.
// The returned slice is a copy.
func (n *Network) Successors(id SegmentID) []SegmentID {
	src := n.next[id]
	out := make([]SegmentID, len(src))
	copy(out, src)
	return out
}

// SegmentCount returns the number of segments in the network.
func (n *Network) SegmentCount() int { return len(n.segments) }

// SegmentsOfType returns all segments of the given type. The returned slice
// is a copy sorted by ID for determinism.
func (n *Network) SegmentsOfType(t RoadType) []*Segment {
	src := n.byType[t]
	out := make([]*Segment, len(src))
	copy(out, src)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// AllSegments returns every segment, sorted by ID.
func (n *Network) AllSegments() []*Segment {
	out := make([]*Segment, 0, len(n.segments))
	for _, s := range n.segments {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// TotalLengthMeters returns the summed length of all segments of type t.
func (n *Network) TotalLengthMeters(t RoadType) float64 {
	var total float64
	for _, s := range n.byType[t] {
		total += s.LengthMeters()
	}
	return total
}

func (n *Network) cellOf(p Point) gridCell {
	return gridCell{
		x: int(math.Floor(p.Lon / n.cellSize)),
		y: int(math.Floor(p.Lat / n.cellSize)),
	}
}

func (n *Network) cellsFor(s *Segment) []gridCell {
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, p := range s.Polyline {
		minLat = math.Min(minLat, p.Lat)
		maxLat = math.Max(maxLat, p.Lat)
		minLon = math.Min(minLon, p.Lon)
		maxLon = math.Max(maxLon, p.Lon)
	}
	lo := n.cellOf(Point{Lat: minLat, Lon: minLon})
	hi := n.cellOf(Point{Lat: maxLat, Lon: maxLon})
	cells := make([]gridCell, 0, (hi.x-lo.x+1)*(hi.y-lo.y+1))
	for x := lo.x; x <= hi.x; x++ {
		for y := lo.y; y <= hi.y; y++ {
			cells = append(cells, gridCell{x: x, y: y})
		}
	}
	return cells
}

// Nearby returns the segments whose indexed cells fall within radiusMeters
// of p, sorted by projected distance (closest first). It is the candidate
// generator for map matching.
func (n *Network) Nearby(p Point, radiusMeters float64) []Projection {
	if len(n.segments) == 0 {
		return nil
	}
	// Convert the radius to a cell span.
	metersPerDegLat := 111_320.0
	span := int(math.Ceil(radiusMeters/metersPerDegLat/n.cellSize)) + 1
	center := n.cellOf(p)
	seen := make(map[SegmentID]bool)
	var out []Projection
	for dx := -span; dx <= span; dx++ {
		for dy := -span; dy <= span; dy++ {
			for _, id := range n.grid[gridCell{x: center.x + dx, y: center.y + dy}] {
				if seen[id] {
					continue
				}
				seen[id] = true
				proj := n.segments[id].Project(p)
				if proj.DistanceMeters <= radiusMeters {
					out = append(out, proj)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DistanceMeters != out[j].DistanceMeters {
			return out[i].DistanceMeters < out[j].DistanceMeters
		}
		return out[i].SegmentID < out[j].SegmentID
	})
	return out
}
