package geo

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDistanceMetersKnown(t *testing.T) {
	tests := []struct {
		name string
		a, b Point
		want float64 // meters
		tol  float64
	}{
		{
			name: "same point",
			a:    Point{Lat: 22.5431, Lon: 114.0579},
			b:    Point{Lat: 22.5431, Lon: 114.0579},
			want: 0, tol: 0.001,
		},
		{
			name: "shenzhen to hong kong",
			a:    Point{Lat: 22.5431, Lon: 114.0579},
			b:    Point{Lat: 22.3193, Lon: 114.1694},
			want: 27_400, tol: 500,
		},
		{
			name: "one degree of latitude at equator",
			a:    Point{Lat: 0, Lon: 0},
			b:    Point{Lat: 1, Lon: 0},
			want: 111_195, tol: 200,
		},
		{
			name: "antipodal-ish long haul",
			a:    Point{Lat: 0, Lon: 0},
			b:    Point{Lat: 0, Lon: 180},
			want: math.Pi * EarthRadiusMeters, tol: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := DistanceMeters(tt.a, tt.b)
			if math.Abs(got-tt.want) > tt.tol {
				t.Errorf("DistanceMeters(%v,%v) = %.1f, want %.1f +- %.1f", tt.a, tt.b, got, tt.want, tt.tol)
			}
		})
	}
}

func clampPoint(lat, lon float64) Point {
	// Map arbitrary floats into valid coordinate space near Shenzhen so
	// property tests stay in the regime the code is used in.
	return Point{
		Lat: 22 + math.Mod(math.Abs(lat), 1.0),
		Lon: 113 + math.Mod(math.Abs(lon), 1.0),
	}
}

func TestDistanceSymmetryProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := clampPoint(lat1, lon1)
		b := clampPoint(lat2, lon2)
		d1 := DistanceMeters(a, b)
		d2 := DistanceMeters(b, a)
		return d1 >= 0 && math.Abs(d1-d2) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceIdentityProperty(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := clampPoint(lat, lon)
		return DistanceMeters(p, p) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleProperty(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2, lat3, lon3 float64) bool {
		a := clampPoint(lat1, lon1)
		b := clampPoint(lat2, lon2)
		c := clampPoint(lat3, lon3)
		return DistanceMeters(a, c) <= DistanceMeters(a, b)+DistanceMeters(b, c)+1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	start := ShenzhenCenter
	for _, bearing := range []float64{0, 45, 90, 180, 270, 359} {
		for _, dist := range []float64{10, 500, 5000} {
			dst := Destination(start, bearing, dist)
			got := DistanceMeters(start, dst)
			if math.Abs(got-dist) > dist*0.001+0.01 {
				t.Errorf("Destination bearing=%v dist=%v: measured %.3f m", bearing, dist, got)
			}
			back := BearingDeg(start, dst)
			diff := math.Abs(math.Mod(back-bearing+540, 360) - 180)
			if diff > 1 { // bearings should agree within 1 degree
				t.Errorf("BearingDeg = %.2f, want ~%.2f", back, bearing)
			}
		}
	}
}

func TestPointValid(t *testing.T) {
	valid := []Point{{0, 0}, {90, 180}, {-90, -180}, ShenzhenCenter}
	for _, p := range valid {
		if !p.Valid() {
			t.Errorf("%v should be valid", p)
		}
	}
	invalid := []Point{{91, 0}, {0, 181}, {-91, 0}, {math.NaN(), 0}, {0, math.NaN()}}
	for _, p := range invalid {
		if p.Valid() {
			t.Errorf("%v should be invalid", p)
		}
	}
}

func TestMidpoint(t *testing.T) {
	a := Point{Lat: 22.5, Lon: 114.0}
	b := Point{Lat: 22.6, Lon: 114.2}
	m := Midpoint(a, b)
	if math.Abs(m.Lat-22.55) > 1e-9 || math.Abs(m.Lon-114.1) > 1e-9 {
		t.Errorf("Midpoint = %v", m)
	}
}
