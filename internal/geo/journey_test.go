package geo

import (
	"errors"
	"math"
	"testing"
	"time"
)

func TestJourneyAdvancesAlongRoute(t *testing.T) {
	net := chainNetwork(t, 3) // 3 x 500 m
	j, err := NewJourney(net, []SegmentID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if j.Segment() != 1 || j.Done() {
		t.Fatalf("initial state: segment %d done %v", j.Segment(), j.Done())
	}
	if r := j.RemainingMeters(); math.Abs(r-1500) > 5 {
		t.Errorf("remaining = %.1f, want ~1500", r)
	}

	// 36 km/h = 10 m/s: 10 s per step = 100 m.
	var handovers []SegmentID
	steps := 0
	for !j.Done() {
		st, err := j.Advance(36, 10*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		if st.HandoverFrom != 0 {
			handovers = append(handovers, st.HandoverFrom)
		}
		steps++
		if steps > 100 {
			t.Fatal("journey never finished")
		}
	}
	if len(handovers) != 2 || handovers[0] != 1 || handovers[1] != 2 {
		t.Errorf("handovers = %v, want [1 2]", handovers)
	}
	// ~1500 m at 100 m/step -> 15 steps.
	if steps < 14 || steps > 16 {
		t.Errorf("steps = %d, want ~15", steps)
	}
	if _, err := j.Advance(36, time.Second); !errors.Is(err, ErrJourneyDone) {
		t.Errorf("err = %v, want ErrJourneyDone", err)
	}
	if r := j.RemainingMeters(); math.Abs(r) > 1 {
		t.Errorf("remaining after finish = %.2f", r)
	}
}

func TestJourneyBigStepCrossesMultipleSegments(t *testing.T) {
	net := chainNetwork(t, 3)
	j, err := NewJourney(net, []SegmentID{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// 1200 m in one step: lands on segment 3.
	st, err := j.Advance(120, 36*time.Second) // 33.3 m/s * 36 s = 1200 m
	if err != nil {
		t.Fatal(err)
	}
	if st.Segment != 3 {
		t.Errorf("segment = %d, want 3", st.Segment)
	}
	if st.HandoverFrom != 1 {
		t.Errorf("handover from %d, want 1 (the pre-step segment)", st.HandoverFrom)
	}
	if math.Abs(st.AlongMeters-200) > 5 {
		t.Errorf("along = %.1f, want ~200", st.AlongMeters)
	}
	if !st.Position.Valid() {
		t.Error("invalid position")
	}
}

func TestJourneyValidation(t *testing.T) {
	net := chainNetwork(t, 3)
	if _, err := NewJourney(nil, []SegmentID{1}); err == nil {
		t.Error("want error for nil network")
	}
	if _, err := NewJourney(net, nil); err == nil {
		t.Error("want error for empty route")
	}
	if _, err := NewJourney(net, []SegmentID{99}); err == nil {
		t.Error("want error for unknown segment")
	}
	if _, err := NewJourney(net, []SegmentID{1, 3}); err == nil {
		t.Error("want error for disconnected route")
	}
	// Negative speed clamps to zero (no movement).
	j, _ := NewJourney(net, []SegmentID{1, 2})
	st, err := j.Advance(-10, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.AlongMeters != 0 || st.Segment != 1 {
		t.Errorf("negative speed moved the vehicle: %+v", st)
	}
}

func TestJourneyEndClampsToRouteEnd(t *testing.T) {
	net := chainNetwork(t, 2)
	j, _ := NewJourney(net, []SegmentID{1, 2})
	st, err := j.Advance(1000, time.Hour) // far past the end
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Segment != 2 {
		t.Errorf("end state = %+v", st)
	}
	end := net.Segment(2).End()
	if d := DistanceMeters(st.Position, end); d > 5 {
		t.Errorf("final position %.1f m from route end", d)
	}
}
