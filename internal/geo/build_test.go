package geo

import (
	"math"
	"testing"
)

func TestBuildNetworkCounts(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.05, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, st := range ShenzhenRoadStats() {
		want := int(math.Round(float64(st.Count) * 0.05))
		if want < 1 {
			want = 1
		}
		got := len(net.SegmentsOfType(st.Type))
		if got != want {
			t.Errorf("%v: %d segments, want %d", st.Type, got, want)
		}
	}
}

func TestBuildNetworkDeterministic(t *testing.T) {
	a, err := BuildNetwork(BuildConfig{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildNetwork(BuildConfig{Scale: 0.02, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	as, bs := a.AllSegments(), b.AllSegments()
	if len(as) != len(bs) {
		t.Fatalf("segment counts differ: %d vs %d", len(as), len(bs))
	}
	for i := range as {
		if as[i].ID != bs[i].ID || as[i].Type != bs[i].Type ||
			math.Abs(as[i].LengthMeters()-bs[i].LengthMeters()) > 1e-9 {
			t.Fatalf("segment %d differs between identical seeds", i)
		}
	}
}

func TestBuildNetworkLengthDistribution(t *testing.T) {
	// With the full-scale network the mean motorway length should land
	// near the Table V mean (3357 m); lognormal sampling is skewed so we
	// allow a generous band.
	net, err := BuildNetwork(BuildConfig{Scale: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	segs := net.SegmentsOfType(Motorway)
	var mean float64
	for _, s := range segs {
		mean += s.LengthMeters()
	}
	mean /= float64(len(segs))
	if mean < 3357*0.6 || mean > 3357*1.6 {
		t.Errorf("mean motorway length %.0f m, want within 60%%..160%% of 3357", mean)
	}
}

func TestBuildNetworkMotorwayLinkConnectivity(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.1, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range net.SegmentsOfType(Motorway) {
		found := false
		for _, id := range net.Successors(m.ID) {
			if net.Segment(id).Type == MotorwayLink {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("motorway %d has no motorway-link successor", m.ID)
		}
	}
}

func TestSampleLengthPositive(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range net.AllSegments() {
		if s.LengthMeters() < 49.9 { // geodesic rounding can shave <0.1 m
			t.Errorf("segment %d length %.1f < 50 m floor", s.ID, s.LengthMeters())
		}
	}
}
