package geo

import (
	"math/rand"
	"reflect"
	"testing"
)

// buildTestCity builds a small deterministic synthetic network, densified
// so random walks keep moving.
func buildTestCity(t *testing.T, seed int64) *Network {
	t.Helper()
	net, err := BuildNetwork(BuildConfig{Scale: 0.05, ExtentMeters: 6000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if added := ConnectNearest(net, 2, 1500); added == 0 {
		t.Fatal("ConnectNearest added no connections on a synthetic city")
	}
	return net
}

func testPartition(t *testing.T, net *Network, shards int) *CityPartition {
	t.Helper()
	cp, err := PartitionCity(net, PartitionConfig{Shards: shards, CellMeters: 1000})
	if err != nil {
		t.Fatal(err)
	}
	return cp
}

func TestPlaceRSUSitesDeterministicAndCoverage(t *testing.T) {
	net := buildTestCity(t, 1)
	a := PlaceRSUSites(net, 1000)
	b := PlaceRSUSites(net, 1000)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("PlaceRSUSites is not deterministic")
	}
	if len(a) < net.SegmentCount() {
		t.Fatalf("placed %d sites for %d segments; want at least one per segment",
			len(a), net.SegmentCount())
	}
	// Site IDs are dense and ordered by (segment, along).
	for i, s := range a {
		if s.ID != i {
			t.Fatalf("site %d has ID %d", i, s.ID)
		}
		if i > 0 && a[i-1].Segment == s.Segment && a[i-1].AlongMeters >= s.AlongMeters {
			t.Fatalf("sites %d,%d out of along order on segment %d", i-1, i, s.Segment)
		}
	}
	// The site count tracks the rsuplan.go budget model to within
	// rounding (one per short segment vs fractional budget rows).
	planned := TotalRSUs(PlanRSUsFromNetwork(net, 1000))
	if len(a) < planned/2 || len(a) > planned*3 {
		t.Fatalf("placed %d sites, plan budget %d: placement diverged from the plan", len(a), planned)
	}
}

func TestSiteIndexMatchesNearestCenter(t *testing.T) {
	net := buildTestCity(t, 2)
	sites := PlaceRSUSites(net, 800)
	idx := NewSiteIndex(sites)
	for _, seg := range net.AllSegments()[:10] {
		length := seg.LengthMeters()
		for frac := 0.0; frac <= 1.0; frac += 0.25 {
			along := frac * length
			got, ok := idx.SiteAt(seg.ID, along)
			if !ok {
				t.Fatalf("segment %d has no site", seg.ID)
			}
			// Brute force: the returned site must be (one of) the closest.
			best := -1.0
			for _, s := range idx.Sites(seg.ID) {
				d := s.AlongMeters - along
				if d < 0 {
					d = -d
				}
				if best < 0 || d < best {
					best = d
				}
			}
			gd := got.AlongMeters - along
			if gd < 0 {
				gd = -gd
			}
			if gd > best+1e-9 {
				t.Fatalf("SiteAt(%d, %.1f) returned site %.1fm away; closest is %.1fm",
					seg.ID, along, gd, best)
			}
		}
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1, err := NewRing(8, 128)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(8, 128)
	counts := make([]int, 8)
	for k := uint64(0); k < 10_000; k++ {
		s := r1.ShardForKey(k)
		if s != r2.ShardForKey(k) {
			t.Fatalf("ring assignment for key %d differs between identical rings", k)
		}
		counts[s]++
	}
	for s, c := range counts {
		if c < 10_000/8/3 || c > 10_000/8*3 {
			t.Fatalf("shard %d owns %d of 10000 keys: ring badly unbalanced %v", s, c, counts)
		}
	}
}

func TestPositionCellLocality(t *testing.T) {
	p := Point{Lat: 22.54, Lon: 114.05}
	q := Point{Lat: p.Lat + 0.0001, Lon: p.Lon + 0.0001} // ~11 m away
	if PositionCell(p, 2000) != PositionCell(q, 2000) {
		t.Fatal("points 11m apart landed in different 2km cells")
	}
	far := Point{Lat: p.Lat + 0.1, Lon: p.Lon} // ~11 km away
	if PositionCell(p, 2000) == PositionCell(far, 2000) {
		t.Fatal("points 11km apart share a 2km cell")
	}
}

// TestShardPathDeterministic is the satellite coverage for journeys
// across partition boundaries: a journey's map-matched path must yield
// a deterministic shard sequence under the consistent-hash ring.
func TestShardPathDeterministic(t *testing.T) {
	net := buildTestCity(t, 3)
	cp1 := testPartition(t, net, 8)
	cp2 := testPartition(t, net, 8)

	segs := net.AllSegments()
	rng := rand.New(rand.NewSource(42))
	crossings := 0
	for i := 0; i < 50; i++ {
		start := segs[rng.Intn(len(segs))].ID
		seq := rng.Int63()
		routeA := RandomRoute(net, start, seededPick(seq), 30)
		routeB := RandomRoute(net, start, seededPick(seq), 30)
		if !reflect.DeepEqual(routeA, routeB) {
			t.Fatal("RandomRoute is not deterministic for an identical pick sequence")
		}
		pathA := cp1.ShardPath(routeA)
		pathB := cp2.ShardPath(routeA)
		if !reflect.DeepEqual(pathA, pathB) {
			t.Fatalf("shard path differs across identically-configured partitions:\n%v\n%v", pathA, pathB)
		}
		if len(pathA) == 0 {
			t.Fatalf("route %v produced an empty shard path", routeA)
		}
		for j, s := range pathA {
			if s < 0 || s >= cp1.Shards() {
				t.Fatalf("shard path %v has out-of-range shard at %d", pathA, j)
			}
			if j > 0 && pathA[j-1] == s {
				t.Fatalf("shard path %v has consecutive duplicates", pathA)
			}
		}
		crossings += len(pathA) - 1
	}
	if crossings == 0 {
		t.Fatal("no route crossed a shard boundary; partition too coarse for the test city")
	}
}

// seededPick returns a deterministic pick function from one seed.
func seededPick(seed int64) func(n int) int {
	rng := rand.New(rand.NewSource(seed))
	return func(n int) int { return rng.Intn(n) }
}

// TestShardPathMatchesIncrementalWalk pins the equivalence the city
// driver relies on: walking a route site-by-site through ShardAt
// produces exactly the ShardPath sequence.
func TestShardPathMatchesIncrementalWalk(t *testing.T) {
	net := buildTestCity(t, 4)
	cp := testPartition(t, net, 6)
	segs := net.AllSegments()
	route := RandomRoute(net, segs[0].ID, seededPick(7), 40)

	var walked []int
	for _, segID := range route {
		seg := net.Segment(segID)
		for _, site := range cp.idx.Sites(segID) {
			_ = seg
			shard := cp.ShardOfSite(site.ID)
			if len(walked) == 0 || walked[len(walked)-1] != shard {
				walked = append(walked, shard)
			}
		}
	}
	if !reflect.DeepEqual(walked, cp.ShardPath(route)) {
		t.Fatalf("incremental walk %v != ShardPath %v", walked, cp.ShardPath(route))
	}
}

func TestBoundariesConsistent(t *testing.T) {
	net := buildTestCity(t, 5)
	cp := testPartition(t, net, 8)
	bounds := cp.Boundaries()
	if len(bounds) == 0 {
		t.Fatal("a multi-shard city has no boundaries")
	}
	for _, b := range bounds {
		if b.FromShard == b.ToShard {
			t.Fatalf("boundary %+v joins a shard to itself", b)
		}
		if cp.ShardOfSite(b.FromSite) != b.FromShard || cp.ShardOfSite(b.ToSite) != b.ToShard {
			t.Fatalf("boundary %+v disagrees with site assignment", b)
		}
	}
	counts := cp.ShardSiteCounts()
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != len(cp.Sites) {
		t.Fatalf("shard site counts sum to %d, want %d", total, len(cp.Sites))
	}
}

func TestConnectNearestNavigable(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.05, ExtentMeters: 6000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	before := 0
	for _, s := range net.AllSegments() {
		if len(net.Successors(s.ID)) > 0 {
			before++
		}
	}
	ConnectNearest(net, 2, 1500)
	after := 0
	for _, s := range net.AllSegments() {
		if len(net.Successors(s.ID)) > 0 {
			after++
		}
	}
	if after <= before {
		t.Fatalf("densification left navigability unchanged: %d -> %d segments with successors", before, after)
	}
	if frac := float64(after) / float64(net.SegmentCount()); frac < 0.9 {
		t.Fatalf("only %.0f%% of segments have successors after densification", frac*100)
	}
	// NextSegment walks must keep moving from any navigable start.
	pick := seededPick(9)
	cur := net.AllSegments()[0].ID
	steps := 0
	for i := 0; i < 100; i++ {
		next, ok := net.NextSegment(cur, pick)
		if !ok {
			break
		}
		cur = next
		steps++
	}
	if steps < 50 {
		t.Fatalf("random walk stalled after %d steps", steps)
	}
}
