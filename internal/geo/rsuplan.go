package geo

import (
	"math"
	"sort"
)

// DefaultRSUCoverageMeters is the road length covered by one RSU in the
// paper's deployment plan. Table V is consistent with one RSU per 1,000 m
// of frequently-used road (DSRC range of ~500 m covering both directions).
const DefaultRSUCoverageMeters = 1000

// RSUPlanRow is one row of the Table V reproduction: the RSU deployment
// required for one road class.
type RSUPlanRow struct {
	Type         RoadType
	DensityShare float64
	RoadCount    int
	MeanLengthM  float64
	StdLengthM   float64
	RSUs         int
}

// PlanRSUsFromStats reproduces Table V directly from aggregate road
// statistics: the number of RSUs per class is the total class road length
// divided by the per-RSU coverage. coverageMeters <= 0 selects
// DefaultRSUCoverageMeters.
func PlanRSUsFromStats(stats []RoadClassStats, coverageMeters float64) []RSUPlanRow {
	if coverageMeters <= 0 {
		coverageMeters = DefaultRSUCoverageMeters
	}
	rows := make([]RSUPlanRow, 0, len(stats))
	for _, st := range stats {
		total := float64(st.Count) * st.MeanLengthM
		rows = append(rows, RSUPlanRow{
			Type:         st.Type,
			DensityShare: st.DensityShare,
			RoadCount:    st.Count,
			MeanLengthM:  st.MeanLengthM,
			StdLengthM:   st.StdLengthM,
			RSUs:         int(math.Floor(total / coverageMeters)),
		})
	}
	return rows
}

// PlanRSUsFromNetwork computes the same plan from an actual (synthetic)
// network by measuring the generated segments, demonstrating that the
// sampled network reproduces the aggregate plan.
func PlanRSUsFromNetwork(net *Network, coverageMeters float64) []RSUPlanRow {
	if coverageMeters <= 0 {
		coverageMeters = DefaultRSUCoverageMeters
	}
	var rows []RSUPlanRow
	var grand float64
	lengths := make(map[RoadType][]float64)
	for _, t := range AllRoadTypes() {
		for _, s := range net.SegmentsOfType(t) {
			lengths[t] = append(lengths[t], s.LengthMeters())
			grand += s.LengthMeters()
		}
	}
	for _, t := range AllRoadTypes() {
		ls := lengths[t]
		if len(ls) == 0 {
			continue
		}
		mean, std := meanStd(ls)
		total := mean * float64(len(ls))
		rows = append(rows, RSUPlanRow{
			Type:        t,
			RoadCount:   len(ls),
			MeanLengthM: mean,
			StdLengthM:  std,
			RSUs:        int(math.Floor(total / coverageMeters)),
		})
	}
	return rows
}

// TotalRSUs sums the RSUs column of a plan.
func TotalRSUs(rows []RSUPlanRow) int {
	var total int
	for _, r := range rows {
		total += r.RSUs
	}
	return total
}

func meanStd(xs []float64) (mean, std float64) {
	if len(xs) == 0 {
		return 0, 0
	}
	for _, x := range xs {
		mean += x
	}
	mean /= float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(xs)))
	return mean, std
}

// SpacingStats summarises the distances between consecutive roadside
// infrastructure elements along roads (the Table VI reproduction).
type SpacingStats struct {
	Kind  string
	Count int
	AvgM  float64
	StdM  float64
	P75M  float64
	MaxM  float64
}

// InfrastructureKind identifies a class of existing roadside infrastructure
// that an edge node could be co-located with.
type InfrastructureKind int

// Infrastructure kinds considered by the paper's feasibility study.
const (
	TrafficLight InfrastructureKind = iota + 1
	LampPole
)

// String implements fmt.Stringer.
func (k InfrastructureKind) String() string {
	switch k {
	case TrafficLight:
		return "traffic_light"
	case LampPole:
		return "lamp_pole"
	default:
		return "infrastructure"
	}
}

// PlaceInfrastructure lays infrastructure elements along every segment of
// the network with the given mean spacing (jittered by the supplied jitter
// function, typically rng.NormFloat64), returning the element positions
// ordered along each road. Used to regenerate Table VI.
func PlaceInfrastructure(net *Network, meanSpacingM, jitterStdM float64, jitter func() float64) map[SegmentID][]float64 {
	out := make(map[SegmentID][]float64)
	for _, s := range net.AllSegments() {
		var at float64
		var marks []float64
		for {
			step := meanSpacingM + jitterStdM*jitter()
			if step < 10 {
				step = 10
			}
			at += step
			if at > s.LengthMeters() {
				break
			}
			marks = append(marks, at)
		}
		if len(marks) > 0 {
			out[s.ID] = marks
		}
	}
	return out
}

// SpacingFromPlacement computes Table VI-style spacing statistics from a
// placement map produced by PlaceInfrastructure.
func SpacingFromPlacement(kind InfrastructureKind, placement map[SegmentID][]float64) SpacingStats {
	var gaps []float64
	var count int
	ids := make([]SegmentID, 0, len(placement))
	for id := range placement {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		marks := placement[id]
		count += len(marks)
		prev := 0.0
		for _, m := range marks {
			gaps = append(gaps, m-prev)
			prev = m
		}
	}
	st := SpacingStats{Kind: kind.String(), Count: count}
	if len(gaps) == 0 {
		return st
	}
	st.AvgM, st.StdM = meanStd(gaps)
	sort.Float64s(gaps)
	st.P75M = percentile(gaps, 0.75)
	st.MaxM = gaps[len(gaps)-1]
	return st
}

// percentile returns the p-quantile (0..1) of sorted xs by linear
// interpolation.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
