package geo

import (
	"math"
	"testing"
)

func line(t *testing.T, id SegmentID, rt RoadType, start Point, bearing, length float64, legs int) *Segment {
	t.Helper()
	pts := []Point{start}
	cur := start
	for i := 0; i < legs; i++ {
		cur = Destination(cur, bearing, length/float64(legs))
		pts = append(pts, cur)
	}
	s, err := NewSegment(id, rt, "test", pts)
	if err != nil {
		t.Fatalf("NewSegment: %v", err)
	}
	return s
}

func TestNewSegmentValidation(t *testing.T) {
	if _, err := NewSegment(1, Motorway, "x", []Point{{Lat: 22, Lon: 114}}); err == nil {
		t.Error("want error for single-point polyline")
	}
	if _, err := NewSegment(1, Motorway, "x", []Point{{Lat: 22, Lon: 114}, {Lat: 200, Lon: 114}}); err == nil {
		t.Error("want error for invalid coordinate")
	}
}

func TestSegmentLength(t *testing.T) {
	s := line(t, 1, Motorway, ShenzhenCenter, 90, 1000, 4)
	if math.Abs(s.LengthMeters()-1000) > 2 {
		t.Errorf("LengthMeters = %.2f, want ~1000", s.LengthMeters())
	}
}

func TestSegmentPointAt(t *testing.T) {
	s := line(t, 1, Motorway, ShenzhenCenter, 0, 2000, 8)
	tests := []struct {
		frac float64
		want float64 // distance from start
	}{
		{0, 0}, {0.25, 500}, {0.5, 1000}, {1, 2000}, {-1, 0}, {2, 2000},
	}
	for _, tt := range tests {
		p := s.PointAt(tt.frac)
		got := DistanceMeters(s.Start(), p)
		if math.Abs(got-tt.want) > 5 {
			t.Errorf("PointAt(%v): %.1f m from start, want %.1f", tt.frac, got, tt.want)
		}
	}
}

func TestSegmentProject(t *testing.T) {
	s := line(t, 1, Motorway, ShenzhenCenter, 90, 1000, 4) // due east
	// A point 50 m north of the midpoint should project onto the middle.
	mid := s.PointAt(0.5)
	off := Destination(mid, 0, 50)
	proj := s.Project(off)
	if math.Abs(proj.DistanceMeters-50) > 2 {
		t.Errorf("perpendicular distance = %.2f, want ~50", proj.DistanceMeters)
	}
	if math.Abs(proj.AlongMeters-500) > 10 {
		t.Errorf("along = %.2f, want ~500", proj.AlongMeters)
	}
	if proj.SegmentID != s.ID {
		t.Errorf("SegmentID = %d", proj.SegmentID)
	}
}

func TestSegmentProjectBeyondEnds(t *testing.T) {
	s := line(t, 1, Motorway, ShenzhenCenter, 90, 1000, 2)
	before := Destination(s.Start(), 270, 100) // 100 m before start
	proj := s.Project(before)
	if proj.AlongMeters > 1 {
		t.Errorf("point before start should project at along ~0, got %.2f", proj.AlongMeters)
	}
	after := Destination(s.End(), 90, 100)
	proj = s.Project(after)
	if math.Abs(proj.AlongMeters-1000) > 5 {
		t.Errorf("point after end should project at along ~length, got %.2f", proj.AlongMeters)
	}
}

func TestRoadTypeString(t *testing.T) {
	for _, rt := range AllRoadTypes() {
		if !rt.Valid() {
			t.Errorf("%v should be valid", rt)
		}
		parsed, err := ParseRoadType(rt.String())
		if err != nil {
			t.Fatalf("ParseRoadType(%q): %v", rt.String(), err)
		}
		if parsed != rt {
			t.Errorf("round trip %v -> %v", rt, parsed)
		}
	}
	if _, err := ParseRoadType("bogus"); err == nil {
		t.Error("want error for unknown road type")
	}
	if RoadType(0).Valid() {
		t.Error("zero road type should be invalid")
	}
}

func TestRoadTypeDefaults(t *testing.T) {
	if Motorway.SpeedLimitKmh() <= MotorwayLink.SpeedLimitKmh() {
		t.Error("motorway should be faster than motorway link")
	}
	for _, rt := range AllRoadTypes() {
		if rt.SpeedLimitKmh() <= 0 {
			t.Errorf("%v speed limit must be positive", rt)
		}
		if rt.Lanes() < 1 {
			t.Errorf("%v lanes must be >= 1", rt)
		}
	}
}
