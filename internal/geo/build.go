package geo

import (
	"fmt"
	"math"
	"math/rand"
)

// RoadClassStats carries the aggregate per-road-type statistics that the
// paper reports for Shenzhen's network (Table V). The synthetic network
// generator samples road lengths to match these.
type RoadClassStats struct {
	Type RoadType
	// DensityShare is the fraction of vehicle observations on this road
	// type (the "Density" column of Table V).
	DensityShare float64
	// Count is the number of frequently-used roads of this type.
	Count int
	// MeanLengthM and StdLengthM describe the road length distribution.
	MeanLengthM float64
	StdLengthM  float64
}

// ShenzhenRoadStats returns the Table V statistics verbatim. These drive
// both the synthetic network generation and the RSU-planning reproduction.
func ShenzhenRoadStats() []RoadClassStats {
	return []RoadClassStats{
		{Type: Motorway, DensityShare: 0.077, Count: 435, MeanLengthM: 3357, StdLengthM: 7652},
		{Type: MotorwayLink, DensityShare: 0.028, Count: 159, MeanLengthM: 596, StdLengthM: 1626},
		{Type: Trunk, DensityShare: 0.116, Count: 656, MeanLengthM: 1622, StdLengthM: 5520},
		{Type: TrunkLink, DensityShare: 0.044, Count: 247, MeanLengthM: 339, StdLengthM: 1931},
		{Type: Primary, DensityShare: 0.252, Count: 1431, MeanLengthM: 668, StdLengthM: 2939},
		{Type: PrimaryLink, DensityShare: 0.034, Count: 191, MeanLengthM: 211, StdLengthM: 169},
		{Type: Secondary, DensityShare: 0.201, Count: 1140, MeanLengthM: 561, StdLengthM: 2337},
		{Type: SecondaryLink, DensityShare: 0.003, Count: 36, MeanLengthM: 186, StdLengthM: 156},
		{Type: Tertiary, DensityShare: 0.188, Count: 1064, MeanLengthM: 522, StdLengthM: 2592},
		{Type: Residential, DensityShare: 0.053, Count: 303, MeanLengthM: 334, StdLengthM: 1470},
	}
}

// ShenzhenCenter is the city center used as the synthetic network origin.
var ShenzhenCenter = Point{Lat: 22.5431, Lon: 114.0579}

// BuildConfig configures the synthetic network generator.
type BuildConfig struct {
	// Center of the generated city. Zero value selects ShenzhenCenter.
	Center Point
	// Scale multiplies the per-class road counts; 1.0 reproduces the full
	// Table V network (~5,700 roads), 0.05 a small test network. Values
	// <= 0 select 1.0.
	Scale float64
	// ExtentMeters is the half-width of the square the roads are scattered
	// over. Values <= 0 select 25,000 (Shenzhen is roughly 50 km wide).
	ExtentMeters float64
	// Seed for the deterministic generator.
	Seed int64
	// Stats overrides the per-class statistics; nil selects
	// ShenzhenRoadStats.
	Stats []RoadClassStats
}

func (c BuildConfig) withDefaults() BuildConfig {
	if c.Center == (Point{}) {
		c.Center = ShenzhenCenter
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	if c.ExtentMeters <= 0 {
		c.ExtentMeters = 25_000
	}
	if c.Stats == nil {
		c.Stats = ShenzhenRoadStats()
	}
	return c
}

// BuildNetwork generates a synthetic road network whose per-class counts
// and length distributions match the configured statistics. Roads are laid
// out on a jittered grid orientation; every motorway is connected to a
// nearby motorway link (when one exists) so that motorway -> motorway-link
// handovers — the paper's microscopic use case — always have a route.
func BuildNetwork(cfg BuildConfig) (*Network, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := NewNetwork(0)

	var nextID SegmentID = 1
	for _, st := range cfg.Stats {
		count := int(math.Round(float64(st.Count) * cfg.Scale))
		if count < 1 {
			count = 1
		}
		for i := 0; i < count; i++ {
			length := sampleLength(rng, st.MeanLengthM, st.StdLengthM)
			seg, err := buildRoad(rng, nextID, st.Type, cfg, length)
			if err != nil {
				return nil, fmt.Errorf("build %s road: %w", st.Type, err)
			}
			if err := net.AddSegment(seg); err != nil {
				return nil, err
			}
			nextID++
		}
	}
	connectLinks(net)
	return net, nil
}

// sampleLength draws a road length from a lognormal distribution matched to
// the given mean/std (Table V distributions are heavily right-skewed: std
// often exceeds the mean, which a lognormal captures and a Gaussian cannot
// without producing negative lengths).
func sampleLength(rng *rand.Rand, mean, std float64) float64 {
	if mean <= 0 {
		return 100
	}
	// Lognormal parameters from mean m and std s:
	// sigma^2 = ln(1 + (s/m)^2), mu = ln(m) - sigma^2/2.
	ratio := std / mean
	sigma2 := math.Log(1 + ratio*ratio)
	mu := math.Log(mean) - sigma2/2
	l := math.Exp(mu + math.Sqrt(sigma2)*rng.NormFloat64())
	return math.Max(50, math.Min(l, mean+6*std))
}

func buildRoad(rng *rand.Rand, id SegmentID, t RoadType, cfg BuildConfig, lengthM float64) (*Segment, error) {
	// Random start inside the extent, grid-ish bearing with jitter.
	dx := (rng.Float64()*2 - 1) * cfg.ExtentMeters
	dy := (rng.Float64()*2 - 1) * cfg.ExtentMeters
	start := Destination(Destination(cfg.Center, 90, dx), 0, dy)
	bearing := float64(rng.Intn(4))*90 + rng.NormFloat64()*10

	// Polyline with mild curvature: one vertex every <= 250 m.
	nLegs := int(math.Ceil(lengthM / 250))
	if nLegs < 1 {
		nLegs = 1
	}
	legLen := lengthM / float64(nLegs)
	pts := make([]Point, 0, nLegs+1)
	pts = append(pts, start)
	cur := start
	for i := 0; i < nLegs; i++ {
		bearing += rng.NormFloat64() * 4
		cur = Destination(cur, bearing, legLen)
		pts = append(pts, cur)
	}
	return NewSegment(id, t, fmt.Sprintf("%s-%d", t, id), pts)
}

// connectLinks wires every motorway to its nearest motorway link (and trunk
// to trunk link, etc.) so the route generator can produce the paper's
// handover scenario. Links connect back to the nearest main road of the
// same family, forming small subgraphs.
func connectLinks(net *Network) {
	families := []struct{ main, link RoadType }{
		{Motorway, MotorwayLink},
		{Trunk, TrunkLink},
		{Primary, PrimaryLink},
		{Secondary, SecondaryLink},
	}
	for _, f := range families {
		mains := net.SegmentsOfType(f.main)
		links := net.SegmentsOfType(f.link)
		if len(mains) == 0 || len(links) == 0 {
			continue
		}
		for _, m := range mains {
			l := nearestSegment(links, m.End())
			_ = net.Connect(m.ID, l.ID)
		}
		for _, l := range links {
			m := nearestSegment(mains, l.End())
			_ = net.Connect(l.ID, m.ID)
		}
	}
}

func nearestSegment(candidates []*Segment, p Point) *Segment {
	best := candidates[0]
	bestD := DistanceMeters(best.Start(), p)
	for _, s := range candidates[1:] {
		if d := DistanceMeters(s.Start(), p); d < bestD {
			best, bestD = s, d
		}
	}
	return best
}
