package geo

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// The macroscopic feasibility study (Figure 9 of the paper) overlays
// vehicle density on the existing roadside infrastructure and marks the
// regions that still need RSU installations (gray circles). This file
// regenerates that analysis: a density heatmap over a grid, and a
// coverage-gap finder comparing traffic against infrastructure reach.

// Heatmap is a lat/lon grid of observation counts.
type Heatmap struct {
	MinLat, MinLon float64
	CellDeg        float64
	Rows, Cols     int
	Counts         [][]int
	Total          int
}

// NewHeatmap builds an empty grid covering the bounding box of the given
// points with the given cell size in degrees (<= 0 selects 0.01 ≈ 1 km).
func NewHeatmap(points []Point, cellDeg float64) (*Heatmap, error) {
	if len(points) == 0 {
		return nil, fmt.Errorf("geo: heatmap needs at least one point")
	}
	if cellDeg <= 0 {
		cellDeg = 0.01
	}
	minLat, maxLat := math.Inf(1), math.Inf(-1)
	minLon, maxLon := math.Inf(1), math.Inf(-1)
	for _, p := range points {
		minLat = math.Min(minLat, p.Lat)
		maxLat = math.Max(maxLat, p.Lat)
		minLon = math.Min(minLon, p.Lon)
		maxLon = math.Max(maxLon, p.Lon)
	}
	rows := int(math.Ceil((maxLat-minLat)/cellDeg)) + 1
	cols := int(math.Ceil((maxLon-minLon)/cellDeg)) + 1
	counts := make([][]int, rows)
	for i := range counts {
		counts[i] = make([]int, cols)
	}
	h := &Heatmap{MinLat: minLat, MinLon: minLon, CellDeg: cellDeg, Rows: rows, Cols: cols, Counts: counts}
	for _, p := range points {
		h.Add(p)
	}
	return h, nil
}

// Add records one observation (points outside the grid are clamped to the
// border cells).
func (h *Heatmap) Add(p Point) {
	r := int((p.Lat - h.MinLat) / h.CellDeg)
	c := int((p.Lon - h.MinLon) / h.CellDeg)
	if r < 0 {
		r = 0
	}
	if c < 0 {
		c = 0
	}
	if r >= h.Rows {
		r = h.Rows - 1
	}
	if c >= h.Cols {
		c = h.Cols - 1
	}
	h.Counts[r][c]++
	h.Total++
}

// CellCenter returns the geographic center of cell (r, c).
func (h *Heatmap) CellCenter(r, c int) Point {
	return Point{
		Lat: h.MinLat + (float64(r)+0.5)*h.CellDeg,
		Lon: h.MinLon + (float64(c)+0.5)*h.CellDeg,
	}
}

// Hotspots returns the n densest cells, ordered by count descending.
func (h *Heatmap) Hotspots(n int) []HeatCell {
	var cells []HeatCell
	for r := 0; r < h.Rows; r++ {
		for c := 0; c < h.Cols; c++ {
			if h.Counts[r][c] > 0 {
				cells = append(cells, HeatCell{Row: r, Col: c, Count: h.Counts[r][c], Center: h.CellCenter(r, c)})
			}
		}
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].Count != cells[j].Count {
			return cells[i].Count > cells[j].Count
		}
		if cells[i].Row != cells[j].Row {
			return cells[i].Row < cells[j].Row
		}
		return cells[i].Col < cells[j].Col
	})
	if n > 0 && len(cells) > n {
		cells = cells[:n]
	}
	return cells
}

// HeatCell is one populated heatmap cell.
type HeatCell struct {
	Row, Col int
	Count    int
	Center   Point
}

// Render draws the heatmap as ASCII art (rows top = north), mapping
// counts to ' .:-=+*#%@'.
func (h *Heatmap) Render() string {
	ramp := []byte(" .:-=+*#%@")
	max := 0
	for r := 0; r < h.Rows; r++ {
		for c := 0; c < h.Cols; c++ {
			if h.Counts[r][c] > max {
				max = h.Counts[r][c]
			}
		}
	}
	var sb strings.Builder
	for r := h.Rows - 1; r >= 0; r-- {
		for c := 0; c < h.Cols; c++ {
			idx := 0
			if max > 0 && h.Counts[r][c] > 0 {
				idx = 1 + h.Counts[r][c]*(len(ramp)-2)/max
				if idx >= len(ramp) {
					idx = len(ramp) - 1
				}
			}
			sb.WriteByte(ramp[idx])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// CoverageGap is a traffic hotspot with no roadside infrastructure within
// DSRC range — one of the paper's gray circles requiring an RSU
// installation.
type CoverageGap struct {
	Cell HeatCell
	// NearestInfraMeters is the distance to the closest infrastructure
	// element.
	NearestInfraMeters float64
}

// DefaultDSRCRangeMeters is the coverage radius used by the feasibility
// study (a few hundred meters; the paper cites ranges up to ~1 km and
// plans conservatively).
const DefaultDSRCRangeMeters = 300

// FindCoverageGaps returns the heatmap cells with at least minCount
// observations whose center lies farther than rangeMeters (<= 0 selects
// DefaultDSRCRangeMeters) from every infrastructure point, ordered by
// density.
func FindCoverageGaps(h *Heatmap, infra []Point, minCount int, rangeMeters float64) []CoverageGap {
	if rangeMeters <= 0 {
		rangeMeters = DefaultDSRCRangeMeters
	}
	if minCount < 1 {
		minCount = 1
	}
	var gaps []CoverageGap
	for _, cell := range h.Hotspots(0) {
		if cell.Count < minCount {
			continue
		}
		nearest := math.Inf(1)
		for _, p := range infra {
			if d := DistanceMeters(cell.Center, p); d < nearest {
				nearest = d
				if nearest <= rangeMeters {
					break
				}
			}
		}
		if nearest > rangeMeters {
			gaps = append(gaps, CoverageGap{Cell: cell, NearestInfraMeters: nearest})
		}
	}
	return gaps
}

// InfrastructurePoints converts a PlaceInfrastructure result into
// geographic points for coverage analysis.
func InfrastructurePoints(net *Network, placement map[SegmentID][]float64) []Point {
	var out []Point
	ids := make([]SegmentID, 0, len(placement))
	for id := range placement {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		seg := net.Segment(id)
		if seg == nil {
			continue
		}
		l := seg.LengthMeters()
		if l <= 0 {
			continue
		}
		for _, at := range placement[id] {
			out = append(out, seg.PointAt(at/l))
		}
	}
	return out
}
