package geo

import (
	"math/rand"
	"testing"
)

func BenchmarkDistanceMeters(b *testing.B) {
	a := ShenzhenCenter
	c := Destination(a, 45, 5000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = DistanceMeters(a, c)
	}
}

func BenchmarkNetworkNearby(b *testing.B) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.1, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	probes := make([]Point, 256)
	for i := range probes {
		probes[i] = Destination(ShenzhenCenter, rng.Float64()*360, rng.Float64()*20000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = net.Nearby(probes[i%len(probes)], 300)
	}
}

func BenchmarkMapMatch(b *testing.B) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.05, Seed: 3})
	if err != nil {
		b.Fatal(err)
	}
	seg := net.SegmentsOfType(Motorway)[0]
	rng := rand.New(rand.NewSource(4))
	fixes := make([]Point, 50)
	for i := range fixes {
		p := seg.PointAt(float64(i) / 49)
		fixes[i] = Destination(p, rng.Float64()*360, rng.Float64()*15)
	}
	m := NewMatcher(net, MatcherConfig{})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Match(fixes); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoute(b *testing.B) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.1, Seed: 5})
	if err != nil {
		b.Fatal(err)
	}
	mws := net.SegmentsOfType(Motorway)
	links := net.SegmentsOfType(MotorwayLink)
	r := NewRouter(net)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Routes may not exist between arbitrary pairs; benchmark the attempt.
		_, _ = r.Route(mws[i%len(mws)].ID, links[i%len(links)].ID)
	}
}
