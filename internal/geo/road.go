package geo

import (
	"fmt"
	"math"
)

// RoadType classifies a road segment following the OpenStreetMap highway
// taxonomy used by the paper (Table V).
type RoadType int

// Road types, ordered as in Table V of the paper.
const (
	Motorway RoadType = iota + 1
	MotorwayLink
	Trunk
	TrunkLink
	Primary
	PrimaryLink
	Secondary
	SecondaryLink
	Tertiary
	Residential
)

// AllRoadTypes lists every road type in Table V order.
func AllRoadTypes() []RoadType {
	return []RoadType{
		Motorway, MotorwayLink, Trunk, TrunkLink, Primary,
		PrimaryLink, Secondary, SecondaryLink, Tertiary, Residential,
	}
}

var roadTypeNames = map[RoadType]string{
	Motorway:      "motorway",
	MotorwayLink:  "motorway_link",
	Trunk:         "trunk",
	TrunkLink:     "trunk_link",
	Primary:       "primary",
	PrimaryLink:   "primary_link",
	Secondary:     "secondary",
	SecondaryLink: "secondary_link",
	Tertiary:      "tertiary",
	Residential:   "residential",
}

// String implements fmt.Stringer.
func (t RoadType) String() string {
	if s, ok := roadTypeNames[t]; ok {
		return s
	}
	return fmt.Sprintf("roadtype(%d)", int(t))
}

// ParseRoadType parses the OSM-style name of a road type.
func ParseRoadType(s string) (RoadType, error) {
	for t, name := range roadTypeNames {
		if name == s {
			return t, nil
		}
	}
	return 0, fmt.Errorf("unknown road type %q", s)
}

// Valid reports whether t is a known road type.
func (t RoadType) Valid() bool {
	_, ok := roadTypeNames[t]
	return ok
}

// SpeedLimitKmh returns a representative speed limit for the road type,
// used by the synthetic trace generator as the center of the normal-driving
// speed distribution during free flow.
func (t RoadType) SpeedLimitKmh() float64 {
	switch t {
	case Motorway:
		return 100
	case MotorwayLink:
		return 40
	case Trunk:
		return 80
	case TrunkLink:
		return 40
	case Primary:
		return 60
	case PrimaryLink:
		return 35
	case Secondary:
		return 50
	case SecondaryLink:
		return 30
	case Tertiary:
		return 40
	case Residential:
		return 30
	default:
		return 50
	}
}

// Lanes returns a representative per-direction lane count for the type.
func (t RoadType) Lanes() int {
	switch t {
	case Motorway:
		return 4
	case Trunk:
		return 3
	case Primary:
		return 3
	case Secondary:
		return 2
	case Tertiary:
		return 2
	default:
		return 1
	}
}

// SegmentID identifies a road segment within a Network. It corresponds to
// the RdID column of the paper's Table II schema.
type SegmentID int64

// Segment is a directed road segment: a polyline of geographic points with
// a road type. Segments are the unit of context in CAD3 — each RSU covers
// one or more segments and learns that road's normal speed profile.
type Segment struct {
	ID       SegmentID
	Type     RoadType
	Name     string
	Polyline []Point // at least two points
	length   float64 // cached, meters
}

// NewSegment builds a segment and caches its length. It returns an error if
// the polyline has fewer than two points or contains invalid coordinates.
func NewSegment(id SegmentID, t RoadType, name string, polyline []Point) (*Segment, error) {
	if len(polyline) < 2 {
		return nil, fmt.Errorf("segment %d: polyline needs >= 2 points, got %d", id, len(polyline))
	}
	for i, p := range polyline {
		if !p.Valid() {
			return nil, fmt.Errorf("segment %d: invalid point %d: %v", id, i, p)
		}
	}
	pts := make([]Point, len(polyline))
	copy(pts, polyline)
	s := &Segment{ID: id, Type: t, Name: name, Polyline: pts}
	s.length = polylineLength(pts)
	return s, nil
}

func polylineLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += DistanceMeters(pts[i-1], pts[i])
	}
	return total
}

// LengthMeters returns the polyline length of the segment in meters.
func (s *Segment) LengthMeters() float64 { return s.length }

// Start returns the first polyline point.
func (s *Segment) Start() Point { return s.Polyline[0] }

// End returns the last polyline point.
func (s *Segment) End() Point { return s.Polyline[len(s.Polyline)-1] }

// PointAt returns the point at the given fraction (0..1) of the segment's
// length, interpolated along the polyline. Fractions outside [0,1] are
// clamped.
func (s *Segment) PointAt(frac float64) Point {
	if frac <= 0 {
		return s.Start()
	}
	if frac >= 1 {
		return s.End()
	}
	target := frac * s.length
	var walked float64
	for i := 1; i < len(s.Polyline); i++ {
		a, b := s.Polyline[i-1], s.Polyline[i]
		leg := DistanceMeters(a, b)
		if walked+leg >= target && leg > 0 {
			f := (target - walked) / leg
			return Point{
				Lat: a.Lat + (b.Lat-a.Lat)*f,
				Lon: a.Lon + (b.Lon-a.Lon)*f,
			}
		}
		walked += leg
	}
	return s.End()
}

// Projection is the result of projecting a GPS point onto a segment.
type Projection struct {
	SegmentID      SegmentID
	Point          Point   // closest point on the polyline
	DistanceMeters float64 // perpendicular distance from the GPS point
	AlongMeters    float64 // distance from segment start to the projection
}

// Project returns the closest point on the segment's polyline to p, the
// perpendicular distance, and the along-track offset. It approximates each
// leg as planar, which is accurate for the sub-kilometer legs used here.
func (s *Segment) Project(p Point) Projection {
	best := Projection{SegmentID: s.ID, DistanceMeters: math.Inf(1)}
	var walked float64
	cosLat := math.Cos(p.Lat * math.Pi / 180)
	for i := 1; i < len(s.Polyline); i++ {
		a, b := s.Polyline[i-1], s.Polyline[i]
		leg := DistanceMeters(a, b)
		// Planar approximation in a local tangent frame (meters).
		ax := (a.Lon - p.Lon) * cosLat
		ay := a.Lat - p.Lat
		bx := (b.Lon - p.Lon) * cosLat
		by := b.Lat - p.Lat
		dx, dy := bx-ax, by-ay
		t := 0.0
		if l2 := dx*dx + dy*dy; l2 > 0 {
			t = -(ax*dx + ay*dy) / l2
			t = math.Max(0, math.Min(1, t))
		}
		proj := Point{
			Lat: a.Lat + (b.Lat-a.Lat)*t,
			Lon: a.Lon + (b.Lon-a.Lon)*t,
		}
		d := DistanceMeters(p, proj)
		if d < best.DistanceMeters {
			best.Point = proj
			best.DistanceMeters = d
			best.AlongMeters = walked + t*leg
		}
		walked += leg
	}
	return best
}
