package geo

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestPlanRSUsFromStatsReproducesTableV checks the exact Table V RSU
// column from the paper's own aggregate statistics.
func TestPlanRSUsFromStatsReproducesTableV(t *testing.T) {
	want := map[RoadType]int{
		Motorway:     1460,
		MotorwayLink: 94,
		Trunk:        1064,
		TrunkLink:    83,
		// The paper prints 956 for primary; with the rounded mean length
		// it publishes (668 m), 1431*668/1000 floors to 955 — the paper's
		// figure evidently used the unrounded mean. We assert the value
		// derivable from the published inputs.
		Primary:       955,
		PrimaryLink:   40,
		Secondary:     639,
		SecondaryLink: 6,
		Tertiary:      555,
		Residential:   101,
	}
	rows := PlanRSUsFromStats(ShenzhenRoadStats(), 0)
	for _, r := range rows {
		if r.RSUs != want[r.Type] {
			t.Errorf("%v: RSUs = %d, want %d (Table V)", r.Type, r.RSUs, want[r.Type])
		}
	}
	if got := TotalRSUs(rows); got != 4997 {
		t.Errorf("TotalRSUs = %d, want 4997", got)
	}
}

func TestPlanRSUsFromNetworkApproximatesStats(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fromNet := PlanRSUsFromNetwork(net, 0)
	fromStats := PlanRSUsFromStats(ShenzhenRoadStats(), 0)
	byType := make(map[RoadType]RSUPlanRow, len(fromStats))
	for _, r := range fromStats {
		byType[r.Type] = r
	}
	for _, r := range fromNet {
		want := byType[r.Type]
		if r.RoadCount != want.RoadCount {
			t.Errorf("%v: road count %d, want %d", r.Type, r.RoadCount, want.RoadCount)
		}
		// Sampled totals should be within 2.5x of the aggregate plan
		// (lognormal tails make per-seed variation large for skewed
		// classes).
		lo, hi := float64(want.RSUs)/2.5, float64(want.RSUs)*2.5
		if float64(r.RSUs) < lo || float64(r.RSUs) > hi {
			t.Errorf("%v: RSUs from network = %d, want within [%.0f, %.0f]", r.Type, r.RSUs, lo, hi)
		}
	}
}

func TestPlaceInfrastructureAndSpacing(t *testing.T) {
	net, err := BuildNetwork(BuildConfig{Scale: 0.2, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	placement := PlaceInfrastructure(net, 245, 120, rng.NormFloat64)
	st := SpacingFromPlacement(TrafficLight, placement)
	if st.Count == 0 {
		t.Fatal("no infrastructure placed")
	}
	if math.Abs(st.AvgM-245) > 40 {
		t.Errorf("avg spacing %.1f, want ~245 (Table VI traffic lights)", st.AvgM)
	}
	if st.P75M < st.AvgM*0.8 {
		t.Errorf("p75 %.1f implausibly below mean %.1f", st.P75M, st.AvgM)
	}
	if st.MaxM < st.P75M {
		t.Errorf("max %.1f < p75 %.1f", st.MaxM, st.P75M)
	}
	if st.Kind != "traffic_light" {
		t.Errorf("kind = %q", st.Kind)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				xs = append(xs, x)
			}
		}
		if len(xs) == 0 {
			return true
		}
		sort.Float64s(xs)
		p50 := percentile(xs, 0.5)
		p75 := percentile(xs, 0.75)
		return percentile(xs, 0) == xs[0] &&
			percentile(xs, 1) == xs[len(xs)-1] &&
			p50 <= p75 &&
			p50 >= xs[0] && p75 <= xs[len(xs)-1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanStd(t *testing.T) {
	mean, std := meanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if math.Abs(mean-5) > 1e-9 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if math.Abs(std-2) > 1e-9 {
		t.Errorf("std = %v, want 2", std)
	}
	if m, s := meanStd(nil); m != 0 || s != 0 {
		t.Errorf("meanStd(nil) = %v, %v", m, s)
	}
}
