package geo

import (
	"errors"
	"fmt"
	"time"
)

// Journey advances a vehicle along a route of connected segments with
// simple kinematics, reporting its position and the segment transitions
// that trigger RSU handovers. It is the mobility model behind the live
// mesoscopic experiments: the paper emulates vehicle movement by
// migrating producers between RSUs; Journey derives those migrations from
// actual geometry.
type Journey struct {
	net   *Network
	route []SegmentID
	idx   int
	along float64 // meters into the current segment
	done  bool
}

// ErrJourneyDone is returned by Advance after the route is exhausted.
var ErrJourneyDone = errors.New("geo: journey complete")

// NewJourney validates the route (segments must exist and be pairwise
// connected) and starts at the beginning of the first segment.
func NewJourney(net *Network, route []SegmentID) (*Journey, error) {
	if net == nil {
		return nil, fmt.Errorf("geo: journey requires a network")
	}
	if len(route) == 0 {
		return nil, fmt.Errorf("geo: journey requires a route")
	}
	for i, id := range route {
		if net.Segment(id) == nil {
			return nil, fmt.Errorf("geo: journey segment %d unknown", id)
		}
		if i > 0 {
			connected := false
			for _, succ := range net.next[route[i-1]] {
				if succ == id {
					connected = true
					break
				}
			}
			if !connected {
				return nil, fmt.Errorf("geo: route segments %d -> %d not connected", route[i-1], id)
			}
		}
	}
	return &Journey{net: net, route: route}, nil
}

// JourneyStep is the state after one Advance.
type JourneyStep struct {
	// Position is the vehicle's location.
	Position Point
	// Segment is the road currently driven.
	Segment SegmentID
	// AlongMeters is the distance into the segment.
	AlongMeters float64
	// HandoverFrom is nonzero when this step crossed from another
	// segment — the moment the previous RSU should forward the summary.
	HandoverFrom SegmentID
	// Done marks the final step of the route.
	Done bool
}

// Advance moves the vehicle for dt at the given speed, returning the new
// state. Crossing one or more segment boundaries in a single step reports
// the handover from the segment the vehicle occupied before the step.
func (j *Journey) Advance(speedKmh float64, dt time.Duration) (JourneyStep, error) {
	if j.done {
		return JourneyStep{}, ErrJourneyDone
	}
	if speedKmh < 0 {
		speedKmh = 0
	}
	prev := j.route[j.idx]
	j.along += speedKmh / 3.6 * dt.Seconds()
	for {
		seg := j.net.Segment(j.route[j.idx])
		if j.along < seg.LengthMeters() {
			break
		}
		if j.idx == len(j.route)-1 {
			// End of route: clamp to the last point.
			j.along = seg.LengthMeters()
			j.done = true
			break
		}
		j.along -= seg.LengthMeters()
		j.idx++
	}

	cur := j.route[j.idx]
	seg := j.net.Segment(cur)
	step := JourneyStep{
		Position:    seg.PointAt(j.along / seg.LengthMeters()),
		Segment:     cur,
		AlongMeters: j.along,
		Done:        j.done,
	}
	if cur != prev {
		step.HandoverFrom = prev
	}
	return step, nil
}

// Segment returns the segment currently driven.
func (j *Journey) Segment() SegmentID { return j.route[j.idx] }

// Done reports whether the route is exhausted.
func (j *Journey) Done() bool { return j.done }

// RemainingMeters returns the distance left on the route.
func (j *Journey) RemainingMeters() float64 {
	var total float64
	for i := j.idx; i < len(j.route); i++ {
		total += j.net.Segment(j.route[i]).LengthMeters()
	}
	return total - j.along
}
