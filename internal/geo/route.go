package geo

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrNoRoute is returned when no connected path exists between segments.
var ErrNoRoute = errors.New("geo: no route between segments")

// Router computes shortest routes over the network's segment connectivity
// graph with Dijkstra's algorithm. Costs are segment traversal times
// (length / speed limit), so routes prefer fast roads, as drivers do.
type Router struct {
	net *Network
}

// NewRouter creates a router over the network.
func NewRouter(net *Network) *Router { return &Router{net: net} }

// Route returns the segment sequence from `from` to `to` (inclusive of
// both) minimising total traversal time.
func (r *Router) Route(from, to SegmentID) ([]SegmentID, error) {
	if r.net.Segment(from) == nil {
		return nil, fmt.Errorf("geo: route source %d unknown", from)
	}
	if r.net.Segment(to) == nil {
		return nil, fmt.Errorf("geo: route target %d unknown", to)
	}
	if from == to {
		return []SegmentID{from}, nil
	}

	dist := map[SegmentID]float64{from: r.cost(from)}
	prev := make(map[SegmentID]SegmentID)
	done := make(map[SegmentID]bool)
	pq := &routeQueue{{id: from, cost: dist[from]}}

	for pq.Len() > 0 {
		cur := heap.Pop(pq).(routeItem)
		if done[cur.id] {
			continue
		}
		done[cur.id] = true
		if cur.id == to {
			break
		}
		for _, next := range r.net.next[cur.id] {
			if done[next] {
				continue
			}
			nd := cur.cost + r.cost(next)
			if old, ok := dist[next]; !ok || nd < old {
				dist[next] = nd
				prev[next] = cur.id
				heap.Push(pq, routeItem{id: next, cost: nd})
			}
		}
	}
	if !done[to] {
		return nil, fmt.Errorf("%w: %d -> %d", ErrNoRoute, from, to)
	}

	// Backtrack.
	var path []SegmentID
	for at := to; ; {
		path = append(path, at)
		if at == from {
			break
		}
		at = prev[at]
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path, nil
}

// TravelTimeSeconds returns the summed traversal time of a route.
func (r *Router) TravelTimeSeconds(route []SegmentID) float64 {
	var total float64
	for _, id := range route {
		total += r.cost(id)
	}
	return total
}

// cost is a segment's free-flow traversal time in seconds.
func (r *Router) cost(id SegmentID) float64 {
	s := r.net.Segment(id)
	if s == nil {
		return 0
	}
	v := s.Type.SpeedLimitKmh() / 3.6 // m/s
	if v <= 0 {
		v = 10
	}
	return s.LengthMeters() / v
}

type routeItem struct {
	id   SegmentID
	cost float64
}

type routeQueue []routeItem

func (q routeQueue) Len() int           { return len(q) }
func (q routeQueue) Less(i, j int) bool { return q[i].cost < q[j].cost }
func (q routeQueue) Swap(i, j int)      { q[i], q[j] = q[j], q[i] }
func (q *routeQueue) Push(x any)        { *q = append(*q, x.(routeItem)) }
func (q *routeQueue) Pop() any          { old := *q; n := len(old); it := old[n-1]; *q = old[:n-1]; return it }
