// Command linkcheck validates markdown cross-references without touching
// the network: relative links must point at files that exist in the repo,
// and fragment links (`#section`, `FILE.md#section`) must match a heading
// in the target document using GitHub's anchor rules. External http(s)
// links are only checked for URL well-formedness, so the docs CI job
// stays hermetic and never flakes on a remote server.
//
// Usage:
//
//	go run ./internal/tools/linkcheck README.md DESIGN.md ...
//
// Exit status is non-zero when any link is broken; each problem is
// printed as file:line: message.
package main

import (
	"fmt"
	"net/url"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"unicode"
)

// linkRe matches inline markdown links [text](target). Images and
// reference-style definitions are out of scope for this repo's docs.
var linkRe = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// headingRe matches ATX headings; the anchor derives from the text.
var headingRe = regexp.MustCompile(`(?m)^#{1,6}\s+(.+?)\s*#*\s*$`)

// codeFenceRe strips fenced code blocks so links in examples (or stray
// `](...)` sequences inside code) are not checked.
var codeFenceRe = regexp.MustCompile("(?s)```.*?```")

// inlineCodeRe strips inline code spans for the same reason.
var inlineCodeRe = regexp.MustCompile("`[^`\n]*`")

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: linkcheck FILE.md [FILE.md ...]")
		os.Exit(2)
	}
	anchors := map[string]map[string]bool{} // abs path -> anchor set
	broken := 0
	for _, path := range os.Args[1:] {
		broken += checkFile(path, anchors)
	}
	if broken > 0 {
		fmt.Fprintf(os.Stderr, "linkcheck: %d broken link(s)\n", broken)
		os.Exit(1)
	}
}

// checkFile validates every link in one markdown file, returning the
// number of broken links found.
func checkFile(path string, anchors map[string]map[string]bool) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", path, err)
		return 1
	}
	text := string(data)
	stripped := inlineCodeRe.ReplaceAllString(codeFenceRe.ReplaceAllString(text, ""), "")
	broken := 0
	for _, line := range strings.Split(stripped, "\n") {
		for _, m := range linkRe.FindAllStringSubmatch(line, -1) {
			target := m[1]
			if msg := checkTarget(path, target, anchors); msg != "" {
				// Line numbers shift once fences are stripped; report the
				// target instead, which is enough to locate the link.
				fmt.Fprintf(os.Stderr, "%s: link (%s): %s\n", path, target, msg)
				broken++
			}
		}
	}
	return broken
}

// checkTarget validates one link target relative to the file containing
// it. It returns an empty string when the target is fine.
func checkTarget(fromFile, target string, anchors map[string]map[string]bool) string {
	if strings.HasPrefix(target, "http://") || strings.HasPrefix(target, "https://") {
		if _, err := url.Parse(target); err != nil {
			return fmt.Sprintf("malformed URL: %v", err)
		}
		return "" // external: well-formed is all the hermetic check asserts
	}
	if strings.HasPrefix(target, "mailto:") {
		return ""
	}
	pathPart, frag, _ := strings.Cut(target, "#")
	resolved := fromFile
	if pathPart != "" {
		resolved = filepath.Join(filepath.Dir(fromFile), pathPart)
		info, err := os.Stat(resolved)
		if err != nil {
			return "file does not exist"
		}
		if info.IsDir() || frag == "" {
			return ""
		}
	}
	if frag == "" {
		return ""
	}
	if !strings.HasSuffix(resolved, ".md") {
		return "" // anchors are only checkable in markdown
	}
	set, err := anchorsOf(resolved, anchors)
	if err != nil {
		return fmt.Sprintf("cannot read anchor target: %v", err)
	}
	if !set[strings.ToLower(frag)] {
		return fmt.Sprintf("no heading matches #%s", frag)
	}
	return ""
}

// anchorsOf returns (building on demand) the set of GitHub-style anchors
// for a markdown file's headings.
func anchorsOf(path string, cache map[string]map[string]bool) (map[string]bool, error) {
	if set, ok := cache[path]; ok {
		return set, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	set := map[string]bool{}
	text := codeFenceRe.ReplaceAllString(string(data), "")
	for _, m := range headingRe.FindAllStringSubmatch(text, -1) {
		a := slugify(m[1])
		// GitHub de-duplicates repeated headings with -1, -2, ... suffixes;
		// register the first occurrence and the suffixed variants lazily.
		if set[a] {
			for i := 1; ; i++ {
				cand := fmt.Sprintf("%s-%d", a, i)
				if !set[cand] {
					set[cand] = true
					break
				}
			}
		} else {
			set[a] = true
		}
	}
	cache[path] = set
	return set, nil
}

// slugify applies GitHub's anchor algorithm: lowercase, drop everything
// but letters/digits/spaces/hyphens, spaces become hyphens.
func slugify(heading string) string {
	// Strip inline code backticks and link syntax from the heading text.
	heading = strings.NewReplacer("`", "", "[", "", "]", "").Replace(heading)
	var b strings.Builder
	for _, r := range strings.ToLower(heading) {
		switch {
		case r == ' ':
			b.WriteRune('-')
		case r == '-' || r == '_' ||
			(r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') ||
			(r > 127 && (unicode.IsLetter(r) || unicode.IsDigit(r))):
			b.WriteRune(r)
		}
	}
	return b.String()
}
