package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSlugify(t *testing.T) {
	cases := map[string]string{
		"Observability":                  "observability",
		"§9 Observability":               "9-observability",
		"Trace stages & Figure 6":        "trace-stages--figure-6",
		"The `/metrics` endpoint":        "the-metrics-endpoint",
		"Micro-batch engine (50 ms)":     "micro-batch-engine-50-ms",
		"pipeline.tx_micros, explained!": "pipelinetx_micros-explained",
	}
	for in, want := range cases {
		if got := slugify(in); got != want {
			t.Errorf("slugify(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCheckTarget(t *testing.T) {
	dir := t.TempDir()
	doc := filepath.Join(dir, "doc.md")
	other := filepath.Join(dir, "other.md")
	if err := os.WriteFile(doc, []byte("# Top Section\n\nbody\n\n## Top Section\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(other, []byte("# Other Heading\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	cache := map[string]map[string]bool{}
	ok := []string{
		"https://example.com/page",
		"other.md",
		"other.md#other-heading",
		"#top-section",
		"#top-section-1", // de-duplicated repeat heading
	}
	for _, target := range ok {
		if msg := checkTarget(doc, target, cache); msg != "" {
			t.Errorf("checkTarget(%q) = %q, want ok", target, msg)
		}
	}
	bad := []string{
		"missing.md",
		"other.md#no-such-heading",
		"#nope",
	}
	for _, target := range bad {
		if msg := checkTarget(doc, target, cache); msg == "" {
			t.Errorf("checkTarget(%q) passed, want broken", target)
		}
	}
}
