package city

import (
	"encoding/binary"
	"fmt"

	"cad3/internal/core"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// shard is one worker: a replicated broker cluster plus the detection
// state for the RSU sites the ring assigned it. All of a shard's work
// runs inside simulator events, so everything here is single-threaded.
type shard struct {
	d    *Driver
	id   int
	name string

	rs   *stream.ReplicaSet
	prod *stream.ReplicatedClient // AckAll producer

	// Per-partition read cursors, advanced by FetchCommitted — shard
	// consumers read from followers (fetch-from-ISR), never past the
	// committed offset.
	inOff, coOff, outOff []int64

	builder *core.SummaryBuilder
	store   *core.SummaryStore

	// Handovers this shard has applied (receiver-side dedup: the router
	// transport is at-least-once, application is exactly-once).
	applied map[hoKey]bool

	// pending holds produces refused during leaderless windows, retried
	// in FIFO order each tick. Entries own their buffers.
	pending []pendingRec
	head    int

	// Load accounting for the skew gauges.
	dwellMs int64
	records int64
}

// pendingRec is one queued produce: owned copies plus the ack callback
// (ledger bookkeeping) to run when it finally lands.
type pendingRec struct {
	topic      string
	key, value []byte
	onAck      func()
}

// newShard stands up one shard's broker cluster on the driver's clock.
func newShard(d *Driver, id int) (*shard, error) {
	cfg := d.cfg
	bcfg := stream.BrokerConfig{Now: d.sim.Now}
	replicas := make([]stream.Replica, cfg.Replicas)
	for r := 0; r < cfg.Replicas; r++ {
		replicas[r] = stream.Replica{
			ID:     fmt.Sprintf("s%d-r%d", id, r),
			Broker: stream.NewBroker(bcfg),
		}
	}
	rs, err := stream.NewReplicaSet(stream.ReplicaSetConfig{
		Metrics: cfg.Metrics,
		Rebuild: bcfg,
	}, replicas...)
	if err != nil {
		return nil, err
	}
	for _, topic := range []string{stream.TopicInData, stream.TopicCoData, stream.TopicOutData} {
		if err := rs.CreateTopic(topic, cfg.Partitions); err != nil {
			return nil, err
		}
	}
	s := &shard{
		d:       d,
		id:      id,
		name:    fmt.Sprintf("shard-%d", id),
		rs:      rs,
		prod:    rs.Client(stream.AckAll),
		inOff:   make([]int64, cfg.Partitions),
		coOff:   make([]int64, cfg.Partitions),
		outOff:  make([]int64, cfg.Partitions),
		builder: core.NewSummaryBuilder(int64(id), d.sim.Now),
		store:   core.NewSummaryStore(cfg.SummaryTTL, d.sim.Now),
		applied: make(map[hoKey]bool),
	}
	return s, nil
}

// produce appends one record at AckAll, preserving FIFO order with any
// backlog: while the pending queue is non-empty new records queue
// behind it rather than overtake.
func (s *shard) produce(topic string, key, value []byte, onAck func()) {
	if s.head < len(s.pending) {
		s.enqueue(topic, key, value, onAck)
		return
	}
	if _, _, err := s.prod.Produce(topic, stream.AutoPartition, key, value); err != nil {
		s.enqueue(topic, key, value, onAck)
		return
	}
	if onAck != nil {
		onAck()
	}
}

// enqueue copies the record into an owned pending entry (callers reuse
// their scratch buffers).
func (s *shard) enqueue(topic string, key, value []byte, onAck func()) {
	s.pending = append(s.pending, pendingRec{
		topic: topic,
		key:   append([]byte(nil), key...),
		value: append([]byte(nil), value...),
		onAck: onAck,
	})
}

// retryPending replays the backlog in order, stopping at the first
// record the cluster still refuses. Reports whether anything landed.
func (s *shard) retryPending() bool {
	progressed := false
	for s.head < len(s.pending) {
		p := s.pending[s.head]
		if _, _, err := s.prod.Produce(p.topic, stream.AutoPartition, p.key, p.value); err != nil {
			break
		}
		s.d.m.produceRetries.Inc()
		if p.onAck != nil {
			p.onAck()
		}
		s.pending[s.head] = pendingRec{}
		s.head++
		progressed = true
	}
	if s.head == len(s.pending) {
		s.pending = s.pending[:0]
		s.head = 0
	}
	return progressed
}

// pendingCount reports the backlog length (settlement quiescence check).
func (s *shard) pendingCount() int { return len(s.pending) - s.head }

// batch is one detection round: drain telemetry, inbound handovers and
// the warning log through committed-offset (follower-read) fetches.
func (s *shard) batch() int {
	n := s.drain(stream.TopicInData, s.inOff, s.handleIn)
	n += s.drain(stream.TopicCoData, s.coOff, s.handleCo)
	n += s.drain(stream.TopicOutData, s.outOff, s.handleOut)
	return n
}

// tick is one control-plane round: elections + follower resync, then a
// backlog retry now that leadership may have settled.
func (s *shard) tick() {
	s.rs.Tick()
	s.retryPending()
}

// drain advances one topic's cursors through FetchCommitted until dry.
// A leaderless partition simply stays put until a later round.
func (s *shard) drain(topic string, offs []int64, handle func(m *stream.Message)) int {
	n := 0
	for p := range offs {
		for {
			msgs, err := s.rs.FetchCommitted(topic, int32(p), offs[p], 512)
			if err != nil || len(msgs) == 0 {
				break
			}
			for i := range msgs {
				handle(&msgs[i])
			}
			offs[p] += int64(len(msgs))
			n += len(msgs)
			stream.RecycleMessages(msgs)
		}
	}
	return n
}

// handleIn runs detection on one telemetry record: consult the
// collaborative prior, fold the prediction into the summary builder,
// and emit a warning for abnormal driving.
func (s *shard) handleIn(msg *stream.Message) {
	rec, err := core.DecodeRecord(msg.Value)
	if err != nil {
		return
	}
	s.records++
	if _, ok := s.store.Get(rec.Car); ok {
		s.d.m.priorHits.Inc()
	} else {
		s.d.m.priorFallbacks.Inc()
	}
	abnormal := rec.Accel >= s.d.cfg.AccelThreshold
	pNormal := 0.95
	if abnormal {
		pNormal = 0.05
	}
	s.builder.Observe(rec.Car, pNormal)
	if !abnormal {
		return
	}
	s.d.m.warnings.Inc()
	w := core.Warning{
		Car:          rec.Car,
		Road:         int64(rec.Road),
		PNormal:      pNormal,
		SourceTsMs:   rec.TimestampMs,
		DetectedTsMs: s.d.nowMs(),
	}
	s.d.scratch = core.AppendWarning(s.d.scratch[:0], w)
	s.produce(stream.TopicOutData, msg.Key, s.d.scratch, nil)
}

// handleCo applies one inbound handover summary, exactly once: repeat
// deliveries of a (car, seq) the shard has already applied are
// suppressed, and summaries addressed to another shard are refused.
func (s *shard) handleCo(msg *stream.Message) {
	car, seq, ok := parseHandoverKey(msg.Key)
	if !ok {
		return
	}
	k := hoKey{car: car, seq: seq}
	row := s.d.hoLedger[k]
	if row == nil || row.dst != s.id {
		s.d.m.handoverMisrouted.Inc()
		return
	}
	if s.applied[k] {
		s.d.m.handoverDups.Inc()
		return
	}
	sum, err := core.DecodeSummary(msg.Value)
	if err != nil {
		return
	}
	s.applied[k] = true
	row.applied++
	s.store.Put(sum)
	s.d.m.handoverApplied.Inc()
}

// handleOut credits one delivered warning against the settlement ledger.
func (s *shard) handleOut(msg *stream.Message) {
	w, err := core.DecodeWarning(msg.Value)
	if err != nil {
		return
	}
	s.d.warnSeen[warnKey{car: w.Car, ts: w.SourceTsMs}]++
	s.d.m.warningsDelivered.Inc()
}

// applyFault executes one scheduled replica kill or revive.
func (s *shard) applyFault(f Fault) {
	id := fmt.Sprintf("s%d-r%d", s.id, f.Replica)
	if f.Revive {
		_, _ = s.rs.Revive(id)
	} else {
		_ = s.rs.Kill(id)
	}
}

// summarizeForHandover produces the CO-DATA payload for a departing
// vehicle: live prediction history first, else the last forwarded prior
// while still fresh (chained handover).
func (s *shard) summarizeForHandover(car trace.CarID) (core.PredictionSummary, bool) {
	if sum, ok := s.builder.Summarize(car); ok {
		s.builder.Forget(car)
		return sum, true
	}
	return s.store.Get(car)
}

// handoverKeySize is the CO-DATA key layout: car (8 bytes) | seq (4).
const handoverKeySize = 12

// appendHandoverKey encodes a (car, seq) handover key into dst.
func appendHandoverKey(dst []byte, car trace.CarID, seq int32) []byte {
	var b [handoverKeySize]byte
	binary.BigEndian.PutUint64(b[0:8], uint64(car))
	binary.BigEndian.PutUint32(b[8:12], uint32(seq))
	return append(dst, b[:]...)
}

// parseHandoverKey decodes a CO-DATA handover key.
func parseHandoverKey(key []byte) (trace.CarID, int32, bool) {
	if len(key) != handoverKeySize {
		return 0, 0, false
	}
	car := trace.CarID(binary.BigEndian.Uint64(key[0:8]))
	seq := int32(binary.BigEndian.Uint32(key[8:12]))
	return car, seq, true
}
