package city

import (
	"strconv"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// cityVehicle is one simulated vehicle, event-driven: it owns no
// goroutine and no route — just a position on the network, a tiny PRNG,
// and the shard its telemetry currently streams to. Two event chains
// advance it: movement events fire at RSU site boundaries and segment
// ends, telemetry events at exponential inter-arrival gaps.
type cityVehicle struct {
	car trace.CarID
	rng splitmix

	seg      geo.SegmentID
	alongM   float64
	speedMps float64

	site  geo.RSUSite
	shard int
	// enteredMs is when the vehicle entered its current shard (dwell
	// accounting for the skew gauges).
	enteredMs int64

	// hoSeq numbers this vehicle's shard handovers (ledger key).
	hoSeq int32
	// lastTsMs keeps telemetry timestamps strictly increasing per
	// vehicle, so (car, timestamp) is a unique ledger key.
	lastTsMs int64

	keyBuf []byte // "car-<id>", reused for every produce
}

// minMoveMeters clamps a movement hop so boundary epsilons cannot
// schedule zero-length event storms.
const minMoveMeters = 0.5

// spawnVehicles places the fleet uniformly over the network and starts
// each vehicle's movement and telemetry event chains.
func (d *Driver) spawnVehicles() {
	d.vehicles = make([]*cityVehicle, d.cfg.Vehicles)
	for i := range d.vehicles {
		v := &cityVehicle{
			car: trace.CarID(i + 1),
			rng: newSplitmix(d.rng.next()),
		}
		v.seg = d.segs[v.rng.intn(len(d.segs))]
		seg := d.part.Net.Segment(v.seg)
		v.alongM = v.rng.float() * seg.LengthMeters()
		v.refreshSpeed(seg)
		site, ok := d.part.SiteAt(v.seg, v.alongM)
		if !ok {
			// Every segment gets >= 1 site at partitioning; unreachable.
			continue
		}
		v.site = site
		v.shard = d.part.ShardOfSite(site.ID)
		v.enteredMs = d.nowMs()
		v.keyBuf = append([]byte("car-"), strconv.Itoa(i+1)...)
		d.vehicles[i] = v
		d.scheduleMove(v)
		d.scheduleTelemetry(v)
	}
}

// refreshSpeed redraws the vehicle's speed for a segment: 75%..125% of
// the road-type limit.
func (v *cityVehicle) refreshSpeed(seg *geo.Segment) {
	limit := seg.Type.SpeedLimitKmh()
	v.speedMps = limit * (0.75 + 0.5*v.rng.float()) / 3.6
	if v.speedMps < 1 {
		v.speedMps = 1
	}
}

// nextBoundary returns the along-track position of the next RSU site
// boundary ahead of the vehicle (the midpoint between consecutive site
// centers), or the segment length when the rest of the segment is one
// coverage stretch.
func (d *Driver) nextBoundary(v *cityVehicle, length float64) float64 {
	row := d.part.SitesOf(v.seg)
	for i := 0; i+1 < len(row); i++ {
		mid := (row[i].AlongMeters + row[i+1].AlongMeters) / 2
		if mid > v.alongM+1e-6 {
			return mid
		}
	}
	return length
}

// scheduleMove schedules the vehicle's next site-boundary or
// segment-end crossing. Each firing reschedules the next, so a vehicle
// costs O(crossings) events, not O(ticks).
func (d *Driver) scheduleMove(v *cityVehicle) {
	seg := d.part.Net.Segment(v.seg)
	length := seg.LengthMeters()
	bound := d.nextBoundary(v, length)
	dist := bound - v.alongM
	if dist < minMoveMeters {
		dist = minMoveMeters
	}
	dt := time.Duration(dist / v.speedMps * float64(time.Second))
	if dt < time.Millisecond {
		dt = time.Millisecond
	}
	d.sim.After(dt, func() {
		if bound >= length-1e-6 {
			d.advanceSegment(v)
		} else {
			v.alongM = bound + 0.01
		}
		d.relocate(v)
		if d.sim.Now().Before(d.end) {
			d.scheduleMove(v)
		}
	})
}

// advanceSegment walks the vehicle onto a successor segment, or
// teleports it to a random one at a dead end (counted — the synthetic
// graph keeps these rare after densification).
func (d *Driver) advanceSegment(v *cityVehicle) {
	next, ok := d.part.Net.NextSegment(v.seg, v.rng.intn)
	if !ok {
		next = d.segs[v.rng.intn(len(d.segs))]
		d.m.routeResets.Inc()
	}
	v.seg = next
	v.alongM = 0
	v.refreshSpeed(d.part.Net.Segment(next))
}

// relocate re-map-matches the vehicle after a move and runs the
// handover protocol on site and shard crossings.
func (d *Driver) relocate(v *cityVehicle) {
	site, ok := d.part.SiteAt(v.seg, v.alongM)
	if !ok || site.ID == v.site.ID {
		return
	}
	v.site = site
	d.m.siteHandovers.Inc()
	if next := d.part.ShardOfSite(site.ID); next != v.shard {
		d.handover(v, next)
	}
}

// handover moves a vehicle's stream affinity between shards: dwell is
// settled against the source shard, the in-flight CO-DATA summary is
// forwarded through the router, and the transfer is entered into the
// settlement ledger.
func (d *Driver) handover(v *cityVehicle, dst int) {
	src := d.shards[v.shard]
	now := d.nowMs()
	src.dwellMs += now - v.enteredMs
	v.enteredMs = now
	d.m.handovers.Inc()

	if sum, ok := src.summarizeForHandover(v.car); ok {
		seq := v.hoSeq
		v.hoSeq++
		payload, err := core.EncodeSummary(sum)
		if err == nil {
			d.scratch = appendHandoverKey(d.scratch[:0], v.car, seq)
			if d.router.Forward(d.shards[dst].name, d.scratch, payload) == nil {
				d.hoLedger[hoKey{car: v.car, seq: seq}] = &hoRow{dst: dst}
				d.m.handoverSummaries.Inc()
			}
		}
	} else {
		d.m.handoverEmpty.Inc()
	}
	v.shard = dst
}

// scheduleTelemetry schedules the vehicle's next telemetry emission at
// an exponential gap over the combined probe + abnormal-event rate.
func (d *Driver) scheduleTelemetry(v *cityVehicle) {
	rate := d.cfg.EventsPerVehicleHour + d.cfg.ProbesPerVehicleHour
	d.sim.After(v.rng.expGap(rate), func() {
		d.emitTelemetry(v)
		if d.sim.Now().Before(d.end) {
			d.scheduleTelemetry(v)
		}
	})
}

// emitTelemetry produces one telemetry record to the vehicle's current
// shard and books it into the warning ledger: ground truth (was it
// abnormal?) is recorded now, the acked flag flips when the produce
// lands, and settlement holds detection to exactly the acked abnormal
// rows.
func (d *Driver) emitTelemetry(v *cityVehicle) {
	abnormal := v.rng.float()*(d.cfg.EventsPerVehicleHour+d.cfg.ProbesPerVehicleHour) < d.cfg.EventsPerVehicleHour
	seg := d.part.Net.Segment(v.seg)
	limit := seg.Type.SpeedLimitKmh()
	ts := d.nowMs()
	if ts <= v.lastTsMs {
		ts = v.lastTsMs + 1
	}
	v.lastTsMs = ts
	now := d.sim.Now()
	rec := trace.Record{
		Car:           v.car,
		Road:          v.seg,
		Hour:          now.Hour(),
		Day:           now.Day(),
		RoadType:      seg.Type,
		RoadMeanSpeed: limit * 0.9,
		TimestampMs:   ts,
	}
	pos := seg.PointAt(v.alongM / maxf(seg.LengthMeters(), 1e-9))
	rec.Lat, rec.Lon = pos.Lat, pos.Lon
	if abnormal {
		rec.Accel = d.cfg.AccelThreshold*1.5 + 4*v.rng.float()
		rec.Speed = limit * 1.6
		d.m.abnormal.Inc()
	} else {
		rec.Accel = 2 * v.rng.float()
		rec.Speed = limit * (0.8 + 0.3*v.rng.float())
		d.m.probes.Inc()
	}
	d.m.telemetry.Inc()

	k := warnKey{car: v.car, ts: ts}
	d.warnLedger[k] = warnRow{shard: v.shard, abnormal: abnormal}
	d.scratch = core.AppendRecord(d.scratch[:0], rec)
	d.shards[v.shard].produce(stream.TopicInData, v.keyBuf, d.scratch, func() {
		row := d.warnLedger[k]
		row.acked = true
		d.warnLedger[k] = row
	})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
