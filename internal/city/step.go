package city

// Stepping API: the scenario harness drives a city Driver round by
// round (Start, then Advance per 50 ms window) instead of letting Run
// replay the whole span at once, injects faults at round boundaries
// (InjectFault, RewireRouter) and audits the settlement ledgers without
// consuming them (Audit). Run and the stepping calls share every
// invariant — same event scheduling, same ledgers — so a property the
// acceptance study proves holds under scenario-driven chaos too.

import (
	"fmt"
	"time"

	"cad3/internal/stream"
)

// Advance runs the virtual clock forward by dt, executing every due
// event, and returns the number of events executed. The driver must be
// Started and dt must keep the clock inside the configured Duration —
// past it the shard cadences have stopped rescheduling and the city
// would go silent rather than fail loudly.
func (d *Driver) Advance(dt time.Duration) (int, error) {
	if !d.started {
		return 0, fmt.Errorf("city: Advance before Start")
	}
	target := d.sim.Now().Add(dt)
	if target.After(d.end) {
		return 0, fmt.Errorf("city: Advance past the configured duration (%v past end)", target.Sub(d.end))
	}
	return d.sim.RunUntil(target), nil
}

// InjectFault applies one replica kill or revive immediately (the
// scheduled-fault path validates and fires the same way; this is the
// round-boundary entry point for the scenario harness).
func (d *Driver) InjectFault(f Fault) error {
	if f.Shard < 0 || f.Shard >= len(d.shards) || f.Replica < 0 || f.Replica >= d.cfg.Replicas {
		return fmt.Errorf("city: fault out of range: %+v", f)
	}
	d.shards[f.Shard].applyFault(f)
	return nil
}

// Shards returns the shard count (fault fan-out for callers that storm
// every shard at once).
func (d *Driver) Shards() int { return len(d.shards) }

// RewireRouter re-registers every shard's router destination through
// wrap — the chaos-injection point: wrap the real client in one that
// refuses produces with some probability and the inter-shard handover
// link becomes lossy, while the router's at-least-once retry and the
// receiver-side dedup keep the settlement ledger clean. The router
// keeps each destination's queued backlog across the swap; wrap(nil)
// semantics are not supported — wrap must return a usable client.
func (d *Driver) RewireRouter(wrap func(dest string, c stream.Client) stream.Client) error {
	for _, s := range d.shards {
		c := wrap(s.name, s.rs.Client(stream.AckAll))
		if err := d.router.Register(s.name, c); err != nil {
			return err
		}
	}
	return nil
}

// Audit is a non-destructive settlement snapshot: the same sweep
// settle() runs once at the end of a run, computed against the current
// ledger state without touching the metric counters. Mid-run, in-flight
// work legitimately shows up as "lost" or "unacked" — callers gate the
// loss fields on InFlight() == 0 after a Drain.
type Audit struct {
	// TelemetryUnacked counts ledgered records whose produce ack never
	// arrived.
	TelemetryUnacked int64
	// WarningsLost counts acked abnormal records that produced no
	// delivered warning.
	WarningsLost int64
	// WarningsDup counts extra deliveries of the same warning.
	WarningsDup int64
	// FalseWarnings counts delivered warnings for normal records.
	FalseWarnings int64
	// HandoverLost counts ledgered handover summaries never applied by
	// their destination shard.
	HandoverLost int64
	// HandoverForwarded and HandoverApplied size the handover ledger.
	HandoverForwarded int64
	HandoverApplied   int64
}

// Clean reports a loss-free, duplicate-free audit.
func (a Audit) Clean() bool {
	return a.TelemetryUnacked == 0 && a.WarningsLost == 0 && a.WarningsDup == 0 &&
		a.FalseWarnings == 0 && a.HandoverLost == 0
}

// Audit sweeps both settlement ledgers without consuming them.
func (d *Driver) Audit() Audit {
	var a Audit
	for k, row := range d.warnLedger {
		if !row.acked {
			a.TelemetryUnacked++
			continue
		}
		n := d.warnSeen[k]
		if row.abnormal {
			if n == 0 {
				a.WarningsLost++
			} else if n > 1 {
				a.WarningsDup += int64(n - 1)
			}
		} else if n > 0 {
			a.FalseWarnings += int64(n)
		}
	}
	for _, row := range d.hoLedger {
		a.HandoverForwarded++
		if row.applied == 0 {
			a.HandoverLost++
		} else {
			a.HandoverApplied++
		}
	}
	return a
}
