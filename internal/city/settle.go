package city

import "sort"

// maxSettleRounds bounds the post-run quiescence loop. Each round is a
// full control-plane tick plus a complete drain, so the bound is only a
// backstop against a partition that never heals.
const maxSettleRounds = 50

// settle runs the end-of-simulation protocol: close out dwell
// accounting, pump the clusters until every queue is dry (two
// consecutive quiet rounds), then sweep the ledgers and publish the
// load gauges.
func (d *Driver) settle() {
	// RunUntil clamps the clock to the deadline, so on the Run path this
	// is exactly d.end; a stepped driver (scenario harness) settles at
	// whatever instant it stopped advancing.
	endMs := d.sim.Now().UnixMilli()
	for _, v := range d.vehicles {
		if v == nil {
			continue
		}
		d.shards[v.shard].dwellMs += endMs - v.enteredMs
		v.enteredMs = endMs
	}
	d.Drain()
	d.sweepLedgers()
	d.publishLoad()
}

// Drain pumps the whole city — control-plane ticks, a router flush, a
// full drain round on every shard — until two consecutive rounds make
// no progress and no backlog remains (or the round bound trips: a
// cluster that never heals). It does not advance virtual time and does
// not sweep the ledgers, so a stepping caller can drain mid-run and
// keep going. Returns the number of pump rounds executed.
func (d *Driver) Drain() int {
	quiet := 0
	round := 0
	for ; round < maxSettleRounds && quiet < 2; round++ {
		progress := false
		for _, s := range d.shards {
			s.tick()
		}
		if sent, _ := d.router.Flush(); sent > 0 {
			progress = true
		}
		for _, s := range d.shards {
			if s.batch() > 0 {
				progress = true
			}
		}
		if !progress && d.InFlight() == 0 {
			quiet++
		} else {
			quiet = 0
		}
	}
	return round
}

// InFlight counts work still in transit: router-queued handover
// summaries plus every shard's pending (leaderless-window) produces.
func (d *Driver) InFlight() int {
	n := d.router.Pending()
	for _, s := range d.shards {
		n += s.pendingCount()
	}
	return n
}

// sweepLedgers settles both ledgers against what the shards actually
// delivered and applied.
func (d *Driver) sweepLedgers() {
	for k, row := range d.warnLedger {
		if !row.acked {
			d.m.telemetryUnacked.Inc()
			continue
		}
		n := d.warnSeen[k]
		if row.abnormal {
			if n == 0 {
				d.m.warningsLost.Inc()
			} else if n > 1 {
				d.m.warningsDup.Add(int64(n - 1))
			}
		} else if n > 0 {
			d.m.falseWarnings.Add(int64(n))
		}
	}
	for _, row := range d.hoLedger {
		if row.applied == 0 {
			d.m.handoverLost.Inc()
		}
	}
}

// publishLoad computes the per-shard load spread (dwell milliseconds
// and records processed) and publishes the skew gauges.
func (d *Driver) publishLoad() {
	dwell := make([]int64, len(d.shards))
	records := make([]int64, len(d.shards))
	for i, s := range d.shards {
		dwell[i] = s.dwellMs
		records[i] = s.records
	}
	dMax, dMed := maxMedian(dwell)
	rMax, rMed := maxMedian(records)
	d.m.dwellMax.Set(dMax)
	d.m.dwellMedian.Set(dMed)
	d.m.shardRecordsMax.Set(rMax)
	d.m.shardRecordsMedian.Set(rMed)
	if dMed > 0 {
		d.m.skewX1000.Set(dMax * 1000 / dMed)
	}
}

// maxMedian returns the max and median of a sample (median of an even
// count is the lower middle — a pessimistic skew denominator).
func maxMedian(xs []int64) (max, median int64) {
	if len(xs) == 0 {
		return 0, 0
	}
	sorted := make([]int64, len(xs))
	copy(sorted, xs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return sorted[len(sorted)-1], sorted[(len(sorted)-1)/2]
}
