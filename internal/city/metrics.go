package city

import "cad3/internal/obsv"

// cityMetrics caches the city.* / shard.* registry handles. Every name
// registers eagerly at Driver construction so the metric-inventory
// conformance test sees the full family without running a simulation.
type cityMetrics struct {
	reg *obsv.Registry

	// Telemetry path.
	telemetry, telemetryUnacked *obsv.Counter
	abnormal, probes            *obsv.Counter
	warnings, warningsDelivered *obsv.Counter
	warningsLost, warningsDup   *obsv.Counter
	falseWarnings               *obsv.Counter

	// Handover protocol.
	handovers, handoverSummaries, handoverEmpty *obsv.Counter
	handoverApplied, handoverDups, handoverLost *obsv.Counter
	handoverMisrouted                           *obsv.Counter
	siteHandovers                               *obsv.Counter

	// Collaborative detection.
	priorHits, priorFallbacks *obsv.Counter

	// Driver machinery.
	produceRetries, routeResets *obsv.Counter

	// Load accounting (set at settlement).
	vehicles, shards, sites             *obsv.Gauge
	dwellMax, dwellMedian, skewX1000    *obsv.Gauge
	shardRecordsMax, shardRecordsMedian *obsv.Gauge
}

func newCityMetrics(reg *obsv.Registry) *cityMetrics {
	return &cityMetrics{
		reg:                reg,
		telemetry:          reg.Counter("city.telemetry"),
		telemetryUnacked:   reg.Counter("city.telemetry_unacked"),
		abnormal:           reg.Counter("city.abnormal"),
		probes:             reg.Counter("city.probes"),
		warnings:           reg.Counter("city.warnings"),
		warningsDelivered:  reg.Counter("city.warnings_delivered"),
		warningsLost:       reg.Counter("city.warnings_lost"),
		warningsDup:        reg.Counter("city.warnings_dup"),
		falseWarnings:      reg.Counter("city.false_warnings"),
		handovers:          reg.Counter("city.handovers"),
		handoverSummaries:  reg.Counter("city.handover_summaries"),
		handoverEmpty:      reg.Counter("city.handover_empty"),
		handoverApplied:    reg.Counter("city.handover_applied"),
		handoverDups:       reg.Counter("city.handover_dups"),
		handoverLost:       reg.Counter("city.handover_lost"),
		handoverMisrouted:  reg.Counter("city.handover_misrouted"),
		siteHandovers:      reg.Counter("city.site_handovers"),
		priorHits:          reg.Counter("city.prior_hits"),
		priorFallbacks:     reg.Counter("city.prior_fallbacks"),
		produceRetries:     reg.Counter("city.produce_retries"),
		routeResets:        reg.Counter("city.route_resets"),
		vehicles:           reg.Gauge("city.vehicles"),
		shards:             reg.Gauge("city.shards"),
		sites:              reg.Gauge("city.sites"),
		dwellMax:           reg.Gauge("shard.dwell_max_ms"),
		dwellMedian:        reg.Gauge("shard.dwell_median_ms"),
		skewX1000:          reg.Gauge("shard.skew_x1000"),
		shardRecordsMax:    reg.Gauge("shard.records_max"),
		shardRecordsMedian: reg.Gauge("shard.records_median"),
	}
}
