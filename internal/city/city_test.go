package city

import (
	"reflect"
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/obsv"
)

// testNetwork builds a small deterministic synthetic city, densified so
// random walks keep moving.
func testNetwork(t *testing.T, seed int64) *geo.Network {
	t.Helper()
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: 0.05, ExtentMeters: 6000, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if added := geo.ConnectNearest(net, 2, 1500); added == 0 {
		t.Fatal("ConnectNearest added no connections")
	}
	return net
}

func testConfig(t *testing.T, net *geo.Network) Config {
	t.Helper()
	return Config{
		Network:    net,
		Shards:     4,
		CellMeters: 1000,
		Vehicles:   150,
		Seed:       7,
		Duration:   3 * time.Minute,
		// High rates so a short run still exercises every path.
		EventsPerVehicleHour: 30,
		ProbesPerVehicleHour: 60,
	}
}

func runCity(t *testing.T, cfg Config) *Report {
	t.Helper()
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestCityRunSettlesClean is the tentpole invariant at unit scale: a
// multi-shard run with live handover traffic settles with zero warnings
// lost or double-counted and zero handover summaries lost, duplicated
// or misrouted.
func TestCityRunSettlesClean(t *testing.T) {
	rep := runCity(t, testConfig(t, testNetwork(t, 1)))
	if rep.Telemetry == 0 || rep.Abnormal == 0 {
		t.Fatalf("no traffic: %+v", rep)
	}
	if rep.Handovers == 0 {
		t.Fatal("no shard handovers in a 4-shard city run")
	}
	if rep.HandoverSummaries == 0 {
		t.Fatal("no summaries crossed shards")
	}
	if rep.WarningsDelivered == 0 {
		t.Fatal("no warnings delivered")
	}
	if !rep.SettlementClean() {
		t.Fatalf("settlement dirty:\n%s", rep)
	}
	if rep.TelemetryUnacked != 0 {
		t.Fatalf("telemetry unacked without faults: %d", rep.TelemetryUnacked)
	}
	if rep.PriorHits == 0 {
		t.Fatal("no collaborative prior hits: handed-over summaries never consulted")
	}
	if rep.SiteHandovers < rep.Handovers {
		t.Fatalf("site handovers %d < shard handovers %d", rep.SiteHandovers, rep.Handovers)
	}
}

// TestCityDeterministicReport: identical config and seed produce
// byte-identical reports — the property every scenario replay and
// regression seed depends on.
func TestCityDeterministicReport(t *testing.T) {
	a := runCity(t, testConfig(t, testNetwork(t, 1)))
	b := runCity(t, testConfig(t, testNetwork(t, 1)))
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed diverged:\n%s\nvs\n%s", a, b)
	}
	c := func() Config {
		cfg := testConfig(t, testNetwork(t, 1))
		cfg.Seed = 8
		return cfg
	}()
	if reflect.DeepEqual(a, runCity(t, c)) {
		t.Fatal("different seeds produced identical reports")
	}
}

// TestCityLeaderKillZeroLoss kills one replica of two shards mid-run
// (leaderless windows + elections) and revives them later: the
// settlement must still be clean — acked telemetry and ledgered
// handovers survive broker failover.
func TestCityLeaderKillZeroLoss(t *testing.T) {
	cfg := testConfig(t, testNetwork(t, 1))
	cfg.Faults = []Fault{
		{At: 30 * time.Second, Shard: 0, Replica: 0},
		{At: 45 * time.Second, Shard: 1, Replica: 0},
		{At: 90 * time.Second, Shard: 0, Replica: 0, Revive: true},
		{At: 2 * time.Minute, Shard: 1, Replica: 0, Revive: true},
	}
	rep := runCity(t, cfg)
	if rep.Elections == 0 {
		t.Fatal("killed two leaders, saw no elections")
	}
	if !rep.SettlementClean() {
		t.Fatalf("settlement dirty after failover:\n%s", rep)
	}
	if rep.TelemetryUnacked != 0 {
		t.Fatalf("telemetry never acked after revival: %d", rep.TelemetryUnacked)
	}
}

// TestCityLoadSkewBounded: with position-cell sharding the per-shard
// dwell load stays within a small factor of the median even at unit
// scale (the scaled acceptance gate is 1.5x; small fleets are noisier).
func TestCityLoadSkewBounded(t *testing.T) {
	rep := runCity(t, testConfig(t, testNetwork(t, 1)))
	if rep.DwellMedianMs == 0 {
		t.Fatalf("no dwell recorded: %+v", rep.ShardDwellMs)
	}
	if skew := rep.Skew(); skew > 3.0 {
		t.Fatalf("shard dwell skew %.2fx > 3.0x: %v", skew, rep.ShardDwellMs)
	}
	for i, d := range rep.ShardDwellMs {
		if d == 0 {
			t.Fatalf("shard %d saw no vehicles: %v", i, rep.ShardDwellMs)
		}
	}
}

// TestCityMetricsExported: supplying a registry exposes the city.* and
// shard.* family, and the gauges agree with the report.
func TestCityMetricsExported(t *testing.T) {
	reg := obsv.NewRegistry()
	cfg := testConfig(t, testNetwork(t, 1))
	cfg.Metrics = reg
	rep := runCity(t, cfg)
	snap := snapshotMap(reg)
	for _, name := range []string{
		"city.telemetry", "city.warnings", "city.handovers",
		"city.handover_applied", "shard.skew_x1000", "shard.dwell_max_ms",
		"repl.follower_fetches", "shard.router.sent",
	} {
		if _, ok := snap[name]; !ok {
			t.Fatalf("metric %q not exported", name)
		}
	}
	if snap["city.telemetry"] != rep.Telemetry {
		t.Fatalf("city.telemetry gauge %d != report %d", snap["city.telemetry"], rep.Telemetry)
	}
	if snap["city.handover_applied"] != rep.HandoverApplied {
		t.Fatal("handover_applied mismatch between registry and report")
	}
}

func snapshotMap(reg *obsv.Registry) map[string]int64 {
	out := make(map[string]int64)
	snap := reg.Snapshot()
	for name, v := range snap.Counters {
		out[name] = v
	}
	for name, v := range snap.Gauges {
		out[name] = v
	}
	return out
}

// TestCityDriverRunsOnce: a Driver refuses a second Run.
func TestCityDriverRunsOnce(t *testing.T) {
	d, err := NewDriver(testConfig(t, testNetwork(t, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Run(); err == nil {
		t.Fatal("second Run accepted")
	}
}

// TestCityConfigValidation: a missing network is refused.
func TestCityConfigValidation(t *testing.T) {
	if _, err := NewDriver(Config{}); err == nil {
		t.Fatal("empty config accepted")
	}
}
