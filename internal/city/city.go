// Package city is the sharded city-scale simulation driver: the whole
// synthetic city — road network, RSU sites, brokers, vehicles — runs as
// one discrete-event program on a single virtual clock, partitioned
// across N worker shards. Each shard owns a replicated broker cluster
// (stream.ReplicaSet) and the detection state for the RSU sites the
// consistent-hash ring assigns it; vehicles are event-driven (an event
// per site-boundary crossing and per telemetry emission, not per tick),
// which is what lets a 100k-vehicle simulated hour finish in minutes of
// wall time and a 1M-vehicle hour stay tractable.
//
// When a journey crosses a shard boundary the driver runs the handover
// protocol: the vehicle's stream affinity moves to the destination
// shard's broker, and its in-flight CO-DATA summary (live prediction
// history, or the last forwarded prior while still fresh) is forwarded
// through the cross-shard SummaryRouter. Every forwarded summary is
// entered into a settlement ledger keyed (car, handover seq); the
// destination shard dedups on that key, and settlement proves each
// ledgered summary was applied exactly once — none lost in transit,
// none double-counted. Warnings settle the same way, keyed (car,
// source timestamp), against the ground truth recorded when the
// abnormal record was acked.
//
// The package is wall-clock-free by construction (cad3-vet's
// virtualclock analyzer enforces it): all time comes from the injected
// netem.Simulator.
package city

import (
	"fmt"
	"math"
	"time"

	"cad3/internal/geo"
	"cad3/internal/netem"
	"cad3/internal/obsv"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// cityEpochMs anchors the virtual clock (same instant the scenario
// harness uses), so timestamps are stable run to run.
const cityEpochMs = 1_700_000_000_000

// Fault is one scheduled replica fault: a kill or revive of one member
// of one shard's broker cluster at a virtual offset into the run.
type Fault struct {
	At      time.Duration
	Shard   int
	Replica int
	Revive  bool
}

// Config sizes a city run. The zero value of every field selects a
// sensible small default; Network is required.
type Config struct {
	// Network is the city road graph. Required; densify it first
	// (geo.ConnectNearest) so random journeys keep moving.
	Network *geo.Network
	// CoverageMeters is the RSU coverage interval (site spacing).
	// <= 0 selects geo.DefaultRSUCoverageMeters.
	CoverageMeters float64
	// Shards is the worker shard count. <= 0 selects 4.
	Shards int
	// VNodes per shard on the consistent-hash ring. <= 0 selects 2048:
	// a city has only a few hundred position cells, so the ring needs
	// many virtual nodes before per-shard arc lengths concentrate
	// tightly enough for the 1.5x load-skew gate.
	VNodes int
	// CellMeters is the position-cell size for shard assignment. <= 0
	// selects 2000 m.
	CellMeters float64
	// Vehicles is the fleet size. <= 0 selects 1000.
	Vehicles int
	// Replicas is each shard's broker cluster size. <= 0 selects 3.
	Replicas int
	// Partitions per topic. <= 0 selects 4.
	Partitions int
	// Seed drives every random choice (routes, speeds, event times).
	Seed int64
	// Duration is the simulated time span. <= 0 selects 10 minutes.
	Duration time.Duration
	// BatchInterval is each shard's detection/drain cadence. <= 0
	// selects 100 ms.
	BatchInterval time.Duration
	// TickInterval is the control-plane cadence (replica resync +
	// elections + router flush). <= 0 selects 1 s.
	TickInterval time.Duration
	// EventsPerVehicleHour is the abnormal-episode rate. <= 0 selects 2.
	EventsPerVehicleHour float64
	// ProbesPerVehicleHour is the normal-telemetry rate. <= 0 selects 2.
	ProbesPerVehicleHour float64
	// SummaryTTL is the freshness window for forwarded priors. <= 0
	// selects 5 minutes.
	SummaryTTL time.Duration
	// AccelThreshold (km/h/s) separates abnormal from normal records.
	// <= 0 selects 8.
	AccelThreshold float64
	// Faults is an optional replica kill/revive schedule.
	Faults []Fault
	// Metrics receives the city.* / shard.* family (plus the per-shard
	// repl.* / election.* and router families). Nil uses a private
	// registry; the Report carries the numbers either way.
	Metrics *obsv.Registry
}

func (c Config) withDefaults() (Config, error) {
	if c.Network == nil || c.Network.SegmentCount() == 0 {
		return c, fmt.Errorf("city: config needs a non-empty network")
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.VNodes <= 0 {
		c.VNodes = 2048
	}
	if c.Vehicles <= 0 {
		c.Vehicles = 1000
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Minute
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 100 * time.Millisecond
	}
	if c.TickInterval <= 0 {
		c.TickInterval = time.Second
	}
	if c.EventsPerVehicleHour <= 0 {
		c.EventsPerVehicleHour = 2
	}
	if c.ProbesPerVehicleHour <= 0 {
		c.ProbesPerVehicleHour = 2
	}
	if c.SummaryTTL <= 0 {
		c.SummaryTTL = 5 * time.Minute
	}
	if c.AccelThreshold <= 0 {
		c.AccelThreshold = 8
	}
	if c.Metrics == nil {
		c.Metrics = obsv.NewRegistry()
	}
	return c, nil
}

// warnKey identifies one telemetry record in the warning ledger.
type warnKey struct {
	car trace.CarID
	ts  int64
}

// warnRow is the warning ledger's ground truth for one record.
type warnRow struct {
	shard    int
	abnormal bool
	acked    bool
}

// hoKey identifies one ledgered handover.
type hoKey struct {
	car trace.CarID
	seq int32
}

// hoRow is one settlement-ledger handover entry.
type hoRow struct {
	dst     int
	applied int
}

// Driver owns one city run.
type Driver struct {
	cfg  Config
	sim  *netem.Simulator
	part *geo.CityPartition
	segs []geo.SegmentID

	shards   []*shard
	router   *stream.SummaryRouter
	vehicles []*cityVehicle

	m   *cityMetrics
	rng splitmix

	start, end time.Time

	// Settlement ledgers.
	warnLedger map[warnKey]warnRow
	warnSeen   map[warnKey]int
	hoLedger   map[hoKey]*hoRow

	scratch []byte // single-goroutine encode buffer
	started bool
	ran     bool
}

// NewDriver partitions the city and stands up every shard's replicated
// broker cluster. Construction registers the full metric family but
// runs nothing.
func NewDriver(cfg Config) (*Driver, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	part, err := geo.PartitionCity(cfg.Network, geo.PartitionConfig{
		CoverageMeters: cfg.CoverageMeters,
		Shards:         cfg.Shards,
		VNodes:         cfg.VNodes,
		CellMeters:     cfg.CellMeters,
	})
	if err != nil {
		return nil, err
	}
	d := &Driver{
		cfg:        cfg,
		sim:        netem.NewSimulator(time.UnixMilli(cityEpochMs)),
		part:       part,
		m:          newCityMetrics(cfg.Metrics),
		rng:        newSplitmix(uint64(cfg.Seed) ^ 0x9e3779b97f4a7c15),
		warnLedger: make(map[warnKey]warnRow),
		warnSeen:   make(map[warnKey]int),
		hoLedger:   make(map[hoKey]*hoRow),
	}
	d.start = d.sim.Now()
	d.end = d.start.Add(cfg.Duration)
	for _, seg := range cfg.Network.AllSegments() {
		d.segs = append(d.segs, seg.ID)
	}
	d.router = stream.NewSummaryRouter(stream.RouterConfig{Metrics: cfg.Metrics})
	for i := 0; i < cfg.Shards; i++ {
		s, err := newShard(d, i)
		if err != nil {
			return nil, err
		}
		d.shards = append(d.shards, s)
		if err := d.router.Register(s.name, s.rs.Client(stream.AckAll)); err != nil {
			return nil, err
		}
	}
	d.m.vehicles.Set(int64(cfg.Vehicles))
	d.m.shards.Set(int64(cfg.Shards))
	d.m.sites.Set(int64(len(part.Sites)))
	return d, nil
}

// Partition exposes the planned city (sites + shard assignment).
func (d *Driver) Partition() *geo.CityPartition { return d.part }

// Run executes the configured virtual span and settles the ledgers.
// One Driver runs once.
func (d *Driver) Run() (*Report, error) {
	if d.ran || d.started {
		return nil, fmt.Errorf("city: driver already ran")
	}
	d.ran = true
	if err := d.Start(); err != nil {
		return nil, err
	}
	events := d.sim.RunUntil(d.end)
	d.settle()
	return d.report(int64(events)), nil
}

// Start spawns the fleet, schedules every shard's cadences and the
// configured fault plan, but runs nothing: virtual time only advances
// through Run (the whole span at once) or Advance (incremental stepping
// for a round-driven caller like the scenario harness).
func (d *Driver) Start() error {
	if d.started {
		return fmt.Errorf("city: driver already started")
	}
	d.started = true
	d.spawnVehicles()
	for _, s := range d.shards {
		d.scheduleBatch(s)
		d.scheduleTick(s)
	}
	for i := range d.cfg.Faults {
		f := d.cfg.Faults[i]
		s := f.Shard
		if s < 0 || s >= len(d.shards) || f.Replica < 0 || f.Replica >= d.cfg.Replicas {
			return fmt.Errorf("city: fault %d out of range: %+v", i, f)
		}
		d.sim.At(d.start.Add(f.At), func() { d.shards[s].applyFault(f) })
	}
	return nil
}

// scheduleBatch self-reschedules a shard's drain/detect cadence until
// the run ends.
func (d *Driver) scheduleBatch(s *shard) {
	d.sim.After(d.cfg.BatchInterval, func() {
		s.batch()
		if d.sim.Now().Before(d.end) {
			d.scheduleBatch(s)
		}
	})
}

// scheduleTick self-reschedules a shard's control-plane cadence. The
// router flush rides shard 0's tick (one flush per interval).
func (d *Driver) scheduleTick(s *shard) {
	d.sim.After(d.cfg.TickInterval, func() {
		s.tick()
		if s.id == 0 {
			_, _ = d.router.Flush()
		}
		if d.sim.Now().Before(d.end) {
			d.scheduleTick(s)
		}
	})
}

// nowMs returns the current virtual instant in Unix milliseconds.
func (d *Driver) nowMs() int64 { return d.sim.Now().UnixMilli() }

// splitmix is splitmix64: a tiny, fast, deterministic PRNG. One 8-byte
// state per vehicle keeps a million-vehicle fleet's memory flat where a
// math/rand.Rand per vehicle would cost ~5 KB each.
type splitmix struct{ state uint64 }

func newSplitmix(seed uint64) splitmix { return splitmix{state: seed} }

func (s *splitmix) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform int in [0, n).
func (s *splitmix) intn(n int) int {
	return int(s.next() % uint64(n))
}

// float returns a uniform float64 in [0, 1).
func (s *splitmix) float() float64 {
	return float64(s.next()>>11) / float64(1<<53)
}

// expGap draws an exponential inter-arrival gap for a rate per hour.
func (s *splitmix) expGap(perHour float64) time.Duration {
	u := s.float()
	if u <= 0 {
		u = 1e-12
	}
	hours := -math.Log(u) / perHour
	return time.Duration(hours * float64(time.Hour))
}
