package city

import (
	"fmt"
	"strings"
)

// Report is a completed city run's accounting: the settlement verdict
// plus the load and traffic numbers the acceptance gates check.
type Report struct {
	Vehicles, Shards, Sites int
	SimEvents               int64

	// Telemetry path.
	Telemetry, Abnormal, Probes int64
	TelemetryUnacked            int64
	Warnings                    int64
	WarningsDelivered           int64
	WarningsLost, WarningsDup   int64
	FalseWarnings               int64

	// Handover protocol.
	Handovers, HandoverSummaries, HandoverEmpty int64
	HandoverApplied, HandoverDups, HandoverLost int64
	HandoverMisrouted                           int64
	SiteHandovers                               int64

	// Collaboration + machinery.
	PriorHits, PriorFallbacks   int64
	ProduceRetries, RouteResets int64
	Elections                   int64

	// Per-shard load.
	ShardDwellMs              []int64
	ShardRecords              []int64
	DwellMaxMs, DwellMedianMs int64
	SkewX1000                 int64
}

// report snapshots the metric family into a Report.
func (d *Driver) report(simEvents int64) *Report {
	m := d.m
	r := &Report{
		Vehicles:          d.cfg.Vehicles,
		Shards:            d.cfg.Shards,
		Sites:             len(d.part.Sites),
		SimEvents:         simEvents,
		Telemetry:         m.telemetry.Value(),
		Abnormal:          m.abnormal.Value(),
		Probes:            m.probes.Value(),
		TelemetryUnacked:  m.telemetryUnacked.Value(),
		Warnings:          m.warnings.Value(),
		WarningsDelivered: m.warningsDelivered.Value(),
		WarningsLost:      m.warningsLost.Value(),
		WarningsDup:       m.warningsDup.Value(),
		FalseWarnings:     m.falseWarnings.Value(),
		Handovers:         m.handovers.Value(),
		HandoverSummaries: m.handoverSummaries.Value(),
		HandoverEmpty:     m.handoverEmpty.Value(),
		HandoverApplied:   m.handoverApplied.Value(),
		HandoverDups:      m.handoverDups.Value(),
		HandoverLost:      m.handoverLost.Value(),
		HandoverMisrouted: m.handoverMisrouted.Value(),
		SiteHandovers:     m.siteHandovers.Value(),
		PriorHits:         m.priorHits.Value(),
		PriorFallbacks:    m.priorFallbacks.Value(),
		ProduceRetries:    m.produceRetries.Value(),
		RouteResets:       m.routeResets.Value(),
		Elections:         m.reg.Counter("election.count").Value(),
		DwellMaxMs:        m.dwellMax.Value(),
		DwellMedianMs:     m.dwellMedian.Value(),
		SkewX1000:         m.skewX1000.Value(),
	}
	for _, s := range d.shards {
		r.ShardDwellMs = append(r.ShardDwellMs, s.dwellMs)
		r.ShardRecords = append(r.ShardRecords, s.records)
	}
	return r
}

// SettlementClean reports the headline invariant: every acked abnormal
// record produced exactly one delivered warning, and every ledgered
// handover summary was applied exactly once at its destination shard.
func (r *Report) SettlementClean() bool {
	return r.WarningsLost == 0 && r.WarningsDup == 0 && r.FalseWarnings == 0 &&
		r.HandoverLost == 0 && r.HandoverDups == 0 && r.HandoverMisrouted == 0
}

// Skew returns max/median shard dwell as a ratio (1.0 = perfectly even).
func (r *Report) Skew() float64 {
	if r.DwellMedianMs == 0 {
		return 0
	}
	return float64(r.DwellMaxMs) / float64(r.DwellMedianMs)
}

// String renders the report as the city study's summary block.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "city: %d vehicles, %d RSU sites, %d shards, %d sim events\n",
		r.Vehicles, r.Sites, r.Shards, r.SimEvents)
	fmt.Fprintf(&b, "telemetry: %d produced (%d abnormal, %d probes), %d unacked\n",
		r.Telemetry, r.Abnormal, r.Probes, r.TelemetryUnacked)
	fmt.Fprintf(&b, "warnings: %d raised, %d delivered, %d lost, %d dup, %d false\n",
		r.Warnings, r.WarningsDelivered, r.WarningsLost, r.WarningsDup, r.FalseWarnings)
	fmt.Fprintf(&b, "handovers: %d shard (%d summaries, %d empty), %d applied, %d lost, %d dup, %d misrouted, %d site-local\n",
		r.Handovers, r.HandoverSummaries, r.HandoverEmpty,
		r.HandoverApplied, r.HandoverLost, r.HandoverDups, r.HandoverMisrouted, r.SiteHandovers)
	fmt.Fprintf(&b, "collab: %d prior hits, %d fallbacks; %d elections, %d produce retries, %d route resets\n",
		r.PriorHits, r.PriorFallbacks, r.Elections, r.ProduceRetries, r.RouteResets)
	fmt.Fprintf(&b, "load: dwell max/median %dms/%dms (skew %.2fx)\n",
		r.DwellMaxMs, r.DwellMedianMs, r.Skew())
	verdict := "CLEAN"
	if !r.SettlementClean() {
		verdict = "DIRTY"
	}
	fmt.Fprintf(&b, "settlement: %s\n", verdict)
	return b.String()
}
