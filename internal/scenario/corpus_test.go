package scenario

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// triggerHarness is a minimal deterministic harness whose only failure
// mode is firing a kill_leader: after one, every Measure reports lost
// acked records. It gives the minimizer a single guilty action to find.
type triggerHarness struct {
	fired bool
}

func (h *triggerHarness) Reset(seed int64) error       { h.fired = false; return nil }
func (h *triggerHarness) BeginPhase(name string) error { return nil }
func (h *triggerHarness) Round(tr Traffic) error       { return nil }
func (h *triggerHarness) Settle() error                { return nil }
func (h *triggerHarness) Apply(a Action) error {
	if a.Type == "kill_leader" {
		h.fired = true
	}
	return nil
}
func (h *triggerHarness) Measure() (Measurements, error) {
	lost := 0.0
	if h.fired {
		lost = 7
	}
	return Measurements{"lost_acked": lost}, nil
}

// guiltySpec builds a three-phase spec where only the middle phase's
// kill_leader causes the failure; the decoy actions and phases are
// minimizer chaff.
func guiltySpec() *Spec {
	p1 := steadyPhase("calm", 6)
	p1.Actions = []ActionSpec{
		{At: 1, Type: "link_loss", Prob: 0.1},
		{At: 2, Type: "clock_skew", SkewMs: 10},
	}
	p1.Assertions = []AssertionSpec{{Metric: "lost_acked", Op: "==", Value: 0}}
	p2 := steadyPhase("trouble", 8)
	p2.Actions = []ActionSpec{
		{At: 0, Type: "link_dup", Prob: 0.05},
		{At: 2, Type: "kill_leader"},
		{At: 4, Type: "reorder", Prob: 0.2},
		{At: 5, Type: "heal_all"},
	}
	p2.Assertions = []AssertionSpec{{Metric: "lost_acked", Op: "==", Value: 0}}
	p3 := steadyPhase("recover", 6)
	p3.Assertions = []AssertionSpec{{Metric: "lost_acked", Op: "==", Value: 0}}
	return steadySpec("guilty", 11, p1, p2, p3)
}

// TestMinimizeFindsGuiltyAction: the delta-debugger strips the chaff and
// converges on a one-phase spec still holding the kill_leader, and the
// minimized spec still fails.
func TestMinimizeFindsGuiltyAction(t *testing.T) {
	e := New(Config{})
	h := &triggerHarness{}
	x := &Explorer{Engine: e, Harness: h, Rng: rand.New(rand.NewSource(1)), MaxCandidates: 64}

	min, runs, err := x.Minimize(guiltySpec())
	if err != nil {
		t.Fatal(err)
	}
	if runs < 2 {
		t.Fatalf("minimizer spent only %d runs — it did not search", runs)
	}
	if len(min.Phases) != 1 {
		t.Fatalf("minimized to %d phases, want 1: %+v", len(min.Phases), min.Phases)
	}
	var hasKill bool
	total := 0
	for _, a := range min.Phases[0].Actions {
		total++
		if a.Type == "kill_leader" {
			hasKill = true
		}
	}
	if !hasKill {
		t.Fatalf("minimized spec lost the guilty kill_leader: %+v", min.Phases[0].Actions)
	}
	if total != 1 {
		t.Errorf("minimized spec kept %d actions, want exactly the guilty one", total)
	}
	res, err := e.Run(min, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("minimized spec no longer fails")
	}
	if !strings.Contains(min.Notes, "minimized from") {
		t.Errorf("minimized spec notes lack provenance: %q", min.Notes)
	}
}

// TestMinimizeRejectsPassingSpec: the minimizer refuses a spec that does
// not fail — minimizing a passing spec would be minimizing nothing.
func TestMinimizeRejectsPassingSpec(t *testing.T) {
	e := New(Config{})
	x := &Explorer{Engine: e, Harness: &triggerHarness{}, Rng: rand.New(rand.NewSource(1))}
	spec := steadySpec("fine", 1, steadyPhase("p", 2))
	spec.Phases[0].Assertions = []AssertionSpec{{Metric: "lost_acked", Op: "==", Value: 0}}
	if _, _, err := x.Minimize(spec); err == nil {
		t.Fatal("want an error minimizing a passing spec")
	}
}

// TestPerturbDeterministic: two explorers seeded identically derive the
// same perturbed spec, and the perturbation never mutates the original.
func TestPerturbDeterministic(t *testing.T) {
	base, err := LoadSpec(filepath.Join("testdata", "specs", "ok-kitchen-sink.json"))
	if err != nil {
		t.Fatal(err)
	}
	before, _ := base.Marshal()
	mk := func() *Spec {
		x := &Explorer{Rng: rand.New(rand.NewSource(5))}
		return x.Perturb(base)
	}
	a, b := mk(), mk()
	da, _ := a.Marshal()
	db, _ := b.Marshal()
	if !bytes.Equal(da, db) {
		t.Fatal("same explorer seed produced different perturbations")
	}
	if err := a.Validate(); err != nil {
		t.Fatalf("perturbed spec does not validate: %v", err)
	}
	after, _ := base.Marshal()
	if !bytes.Equal(before, after) {
		t.Fatal("Perturb mutated the base spec")
	}
}

// TestArchiveIdempotent: archiving the same spec twice writes the same
// content-addressed file, and the file round-trips through the parser.
func TestArchiveIdempotent(t *testing.T) {
	dir := t.TempDir()
	x := &Explorer{Engine: New(Config{})}
	spec := steadySpec("archived", 3, steadyPhase("p", 2))
	p1, err := x.Archive(spec, dir)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := x.Archive(spec, dir)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("same spec archived to two paths: %s vs %s", p1, p2)
	}
	if _, err := LoadSpec(p1); err != nil {
		t.Fatalf("archived spec does not re-load: %v", err)
	}
	entries, _ := os.ReadDir(dir)
	if len(entries) != 1 {
		t.Fatalf("archive dir holds %d files, want 1", len(entries))
	}
}

// TestLoadCorpusSorted: specs come back in filename order, non-JSON
// files are ignored, and an empty directory is an error.
func TestLoadCorpusSorted(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, s *Spec) {
		data, err := s.Marshal()
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("b-second.json", steadySpec("second", 2, steadyPhase("p", 1)))
	write("a-first.json", steadySpec("first", 1, steadyPhase("p", 1)))
	if err := os.WriteFile(filepath.Join(dir, "README.md"), []byte("not a spec"), 0o644); err != nil {
		t.Fatal(err)
	}
	specs, names, err := LoadCorpus(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || names[0] != "a-first.json" || names[1] != "b-second.json" {
		t.Fatalf("corpus order wrong: %v", names)
	}
	if specs[0].Name != "first" || specs[1].Name != "second" {
		t.Fatalf("specs out of order: %s, %s", specs[0].Name, specs[1].Name)
	}
	if _, _, err := LoadCorpus(t.TempDir()); err == nil {
		t.Fatal("want an error for an empty corpus directory")
	}
}

// TestExploreFindsInjectedFailure: end-to-end explorer loop — perturbing
// a spec whose harness always fails on kill_leader finds, minimizes and
// reports a Finding.
func TestExploreFindsInjectedFailure(t *testing.T) {
	e := New(Config{})
	x := &Explorer{Engine: e, Harness: &triggerHarness{}, Rng: rand.New(rand.NewSource(9)), MaxCandidates: 64}
	f, err := x.Explore(guiltySpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("explorer found nothing; the injected failure fires on every run")
	}
	if f.Origin != "guilty" {
		t.Errorf("finding origin %q, want guilty", f.Origin)
	}
	if f.Result.Pass {
		t.Fatal("finding's result claims the minimized spec passes")
	}
	path, err := x.Archive(f.Spec, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := LoadSpec(path); err != nil {
		t.Fatalf("archived finding does not re-load: %v", err)
	}
}
