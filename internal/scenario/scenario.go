// Package scenario is a declarative, deterministic scenario engine for
// the CAD3 substrate: fault + traffic + assertion studies written as
// versioned JSON specs instead of bespoke Go programs.
//
// A spec (spec.go) names a sequence of phases — the canonical shape is
// stabilize → inject → recover — each with a traffic shape (steady
// corridor replay, rush-hour surge, accident shockwave, platoon burst,
// sensor-fault storm, adversarial spoofed telemetry), a list of fault
// actions fired at round offsets (partition, leader kill/revive, link
// loss/delay/dup and their ramps, RSU flap, clock skew, reorder), and
// pass/fail assertions evaluated over the measurements the harness
// reports at the end of the phase (warning p99 ceiling, FN floor, shed
// fraction, acked-loss == 0, ISR recovery, …).
//
// The engine (engine.go) compiles a spec into a Plan — ramps expand into
// per-round actions, traffic shapes into pure per-round rate functions —
// and executes it round by round against a Harness, the interface a
// system under test implements (internal/experiments wires the full
// corridor pipeline: replicated broker, chaos injector, paced fleet,
// RSU node). The engine itself is clockless and pure: all timing lives
// behind the Harness on a virtual clock, so a run is a deterministic
// function of (spec, seed) and its transcript is byte-stable — the
// property the regression corpus (corpus.go) depends on.
//
// The corpus runner replays a directory of checked-in specs (known-bad
// seeds that once exposed real failures) and fails on any regression;
// the explorer perturbs specs at random, and when a perturbation fails
// its assertions, delta-debugs it down to a minimal failing spec and
// archives it into the corpus. See SCENARIOS.md for the operator-facing
// reference and cmd/cad3-scenario / `make scenarios` for the CLI.
package scenario

// Measurements is what a Harness reports at the end of a phase: a flat
// name → value map the assertion evaluator matches against. Which names
// exist, their units, and whether they are phase-scoped deltas or
// run-cumulative values is a property of the harness; SCENARIOS.md
// documents the corridor harness's inventory. An assertion naming an
// absent measurement fails (a misspelled metric must not pass silently).
type Measurements map[string]float64

// Action is one compiled fault action, fired by the engine at a round
// boundary (before that round's traffic). Ramps and flaps from the spec
// are already expanded: the runtime vocabulary is exactly
//
//	partition, heal, heal_all       — named directed links (From/To/Both)
//	kill_leader, kill, revive       — broker replicas (Replica)
//	link_loss, link_delay, link_dup — injector fault probabilities (Prob,
//	                                  MinMs/MaxMs for delay bounds)
//	clock_skew                      — vehicle clock offset (SkewMs)
//	reorder                         — send-queue adjacent-swap probability
type Action struct {
	Type    string
	Replica string
	From    string
	To      string
	Both    bool
	Prob    float64
	MinMs   int
	MaxMs   int
	SkewMs  int64
}

// Traffic is one round's traffic order, computed by the compiled shape.
type Traffic struct {
	// Round is the absolute round index across the whole run.
	Round int
	// Rate is the offered-load multiplier for this round (1.0 = the
	// nominal fleet rate).
	Rate float64
	// Burst is the number of extra ledgered records this round (a
	// platoon passing the RSU in one window).
	Burst int
	// SpoofFrac is the fraction of ledgered records replaced by
	// adversarial spoofed telemetry (forged car IDs, impossible
	// kinematics).
	SpoofFrac float64
	// FaultFrac is the fraction of ledgered records corrupted as if by a
	// failing sensor (extreme speed/acceleration readings).
	FaultFrac float64
}

// Harness is the system under test. The engine calls, in order:
// Reset(seed) once; then per phase BeginPhase, Round for every round
// (actions due at a round are Applied first), Settle at the end of a
// phase that requests it (always on the final phase), and Measure.
//
// The contract that makes the corpus replayable: given the same seed and
// the same call sequence, a harness must behave identically — all
// randomness from one seeded PRNG, all timing from a virtual clock, no
// map-ordered iteration affecting observable results. Apply errors are
// recorded and survivable (a minimized spec may revive a replica that
// was never killed); Reset/BeginPhase/Round/Settle/Measure errors abort
// the run.
type Harness interface {
	Reset(seed int64) error
	BeginPhase(name string) error
	Round(tr Traffic) error
	Apply(a Action) error
	Settle() error
	Measure() (Measurements, error)
}
