package scenario

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
)

// SpecVersion is the only spec version this engine parses. Bumping it is
// a deliberate act: old corpus files must either still parse or be
// migrated, never silently reinterpreted.
const SpecVersion = 1

// Spec is one versioned scenario: a named, seeded sequence of phases.
type Spec struct {
	Version int    `json:"version"`
	Name    string `json:"name"`
	Seed    int64  `json:"seed"`
	// Notes is free-form documentation carried with the spec (what the
	// scenario reproduces, which PR's failure it pins).
	Notes  string      `json:"notes,omitempty"`
	Phases []PhaseSpec `json:"phases"`
}

// PhaseSpec is one phase: rounds of shaped traffic, fault actions at
// round offsets, and assertions evaluated against the phase-end
// measurements.
type PhaseSpec struct {
	Name    string      `json:"name"`
	Rounds  int         `json:"rounds"`
	Traffic TrafficSpec `json:"traffic"`
	// Settle asks the engine to run the harness's settle procedure
	// (flush pending produces, drain in-flight warnings, let the control
	// plane re-sync) before measuring. The final phase always settles.
	Settle     bool            `json:"settle,omitempty"`
	Actions    []ActionSpec    `json:"actions,omitempty"`
	Assertions []AssertionSpec `json:"assertions,omitempty"`
}

// TrafficSpec selects and parameterises a traffic shape.
type TrafficSpec struct {
	// Shape is one of steady, surge, shockwave, platoon, storm, spoof.
	Shape string `json:"shape"`
	// Rate is the base offered-load multiplier (1.0 = nominal).
	Rate float64 `json:"rate"`
	// Peak is the target multiplier for surge (reached at the last
	// round) and the in-window multiplier for shockwave.
	Peak float64 `json:"peak,omitempty"`
	// AtFrac centres the shockwave window within the phase [0,1].
	AtFrac float64 `json:"at_frac,omitempty"`
	// WidthFrac is the shockwave window width as a fraction of the phase.
	WidthFrac float64 `json:"width_frac,omitempty"`
	// Size and Every shape platoon bursts: Size extra records every
	// Every rounds.
	Size  int `json:"size,omitempty"`
	Every int `json:"every,omitempty"`
	// FaultFrac is the sensor-fault fraction (storm always, shockwave
	// inside its window).
	FaultFrac float64 `json:"fault_frac,omitempty"`
	// SpoofFrac is the adversarial spoofed-telemetry fraction (spoof).
	SpoofFrac float64 `json:"spoof_frac,omitempty"`
}

// ActionSpec is one declared fault action. At is the round offset within
// the phase at which it fires (before that round's traffic). The field
// set each type consumes is validated; see SCENARIOS.md for semantics.
type ActionSpec struct {
	At      int     `json:"at"`
	Type    string  `json:"type"`
	Replica string  `json:"replica,omitempty"`
	From    string  `json:"from,omitempty"`
	To      string  `json:"to,omitempty"`
	Both    bool    `json:"both,omitempty"`
	Prob    float64 `json:"prob,omitempty"`
	// FromProb/ToProb bound a ramp's interpolated probability.
	FromProb float64 `json:"from_prob,omitempty"`
	ToProb   float64 `json:"to_prob,omitempty"`
	MinMs    int     `json:"min_ms,omitempty"`
	MaxMs    int     `json:"max_ms,omitempty"`
	// Rounds is a ramp's span or a flap's down time.
	Rounds int   `json:"rounds,omitempty"`
	SkewMs int64 `json:"skew_ms,omitempty"`
}

// AssertionSpec is one phase-end pass/fail check: measurement Op value.
type AssertionSpec struct {
	Metric string  `json:"metric"`
	Op     string  `json:"op"`
	Value  float64 `json:"value"`
}

// shapeNames is the traffic-shape vocabulary.
var shapeNames = map[string]bool{
	"steady": true, "surge": true, "shockwave": true,
	"platoon": true, "storm": true, "spoof": true,
}

// declaredActions maps every spec-level action type to whether it is a
// macro (expanded at compile time) or fires as-is.
var declaredActions = map[string]bool{
	"partition": false, "heal": false, "heal_all": false,
	"kill_leader": false, "kill": false, "revive": false,
	"link_loss": false, "link_delay": false, "link_dup": false,
	"clock_skew": false, "reorder": false,
	"loss_ramp": true, "delay_ramp": true, "rsu_flap": true,
}

// ParseSpec parses and validates a spec from JSON. Unknown fields are
// errors — a typoed parameter must not silently become a default.
func ParseSpec(data []byte) (*Spec, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var s Spec
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("scenario: parse: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return nil, fmt.Errorf("scenario: parse: trailing data after spec")
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// LoadSpec reads and parses one spec file.
func LoadSpec(path string) (*Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("scenario: %w", err)
	}
	s, err := ParseSpec(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return s, nil
}

// Marshal renders the spec as the canonical indented JSON the corpus
// stores — stable byte-for-byte for a given spec, so archived files diff
// cleanly.
func (s *Spec) Marshal() ([]byte, error) {
	data, err := json.MarshalIndent(s, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("scenario: marshal: %w", err)
	}
	return append(data, '\n'), nil
}

// Clone deep-copies the spec (the explorer mutates copies, never the
// corpus originals).
func (s *Spec) Clone() *Spec {
	out := *s
	out.Phases = make([]PhaseSpec, len(s.Phases))
	for i, ph := range s.Phases {
		cp := ph
		cp.Actions = append([]ActionSpec(nil), ph.Actions...)
		cp.Assertions = append([]AssertionSpec(nil), ph.Assertions...)
		out.Phases[i] = cp
	}
	return &out
}

// Validate checks the spec structurally: version, naming, phase and
// action parameters, assertion grammar. Error messages carry the path to
// the offending element so a corpus author can fix specs from the
// message alone.
func (s *Spec) Validate() error {
	if s.Version != SpecVersion {
		return fmt.Errorf("scenario: unsupported spec version %d (engine speaks %d)", s.Version, SpecVersion)
	}
	if s.Name == "" {
		return fmt.Errorf("scenario: spec needs a name")
	}
	if len(s.Phases) == 0 {
		return fmt.Errorf("scenario %q: needs at least one phase", s.Name)
	}
	seen := map[string]bool{}
	for i, ph := range s.Phases {
		at := fmt.Sprintf("scenario %q phase %d", s.Name, i)
		if ph.Name == "" {
			return fmt.Errorf("%s: needs a name", at)
		}
		at = fmt.Sprintf("scenario %q phase %d (%q)", s.Name, i, ph.Name)
		if seen[ph.Name] {
			return fmt.Errorf("%s: duplicate phase name", at)
		}
		seen[ph.Name] = true
		if ph.Rounds < 1 {
			return fmt.Errorf("%s: rounds must be >= 1, got %d", at, ph.Rounds)
		}
		if err := ph.Traffic.validate(); err != nil {
			return fmt.Errorf("%s: traffic: %w", at, err)
		}
		for j, a := range ph.Actions {
			if err := a.validate(ph.Rounds); err != nil {
				return fmt.Errorf("%s action %d: %w", at, j, err)
			}
		}
		for j, as := range ph.Assertions {
			if err := as.validate(); err != nil {
				return fmt.Errorf("%s assertion %d: %w", at, j, err)
			}
		}
	}
	return nil
}

func (t TrafficSpec) validate() error {
	if !shapeNames[t.Shape] {
		return fmt.Errorf("unknown shape %q", t.Shape)
	}
	if t.Rate <= 0 {
		return fmt.Errorf("shape %q needs rate > 0, got %g", t.Shape, t.Rate)
	}
	switch t.Shape {
	case "surge", "shockwave":
		if t.Peak < t.Rate {
			return fmt.Errorf("shape %q needs peak >= rate, got peak %g < rate %g", t.Shape, t.Peak, t.Rate)
		}
	}
	switch t.Shape {
	case "shockwave":
		if t.AtFrac < 0 || t.AtFrac > 1 {
			return fmt.Errorf("shockwave at_frac must be in [0,1], got %g", t.AtFrac)
		}
		if t.WidthFrac <= 0 || t.WidthFrac > 1 {
			return fmt.Errorf("shockwave width_frac must be in (0,1], got %g", t.WidthFrac)
		}
	case "platoon":
		if t.Size < 1 {
			return fmt.Errorf("platoon needs size >= 1, got %d", t.Size)
		}
		if t.Every < 1 {
			return fmt.Errorf("platoon needs every >= 1, got %d", t.Every)
		}
	case "storm":
		if t.FaultFrac <= 0 || t.FaultFrac > 1 {
			return fmt.Errorf("storm fault_frac must be in (0,1], got %g", t.FaultFrac)
		}
	case "spoof":
		if t.SpoofFrac <= 0 || t.SpoofFrac > 1 {
			return fmt.Errorf("spoof spoof_frac must be in (0,1], got %g", t.SpoofFrac)
		}
	}
	if t.FaultFrac < 0 || t.FaultFrac > 1 {
		return fmt.Errorf("fault_frac must be in [0,1], got %g", t.FaultFrac)
	}
	if t.SpoofFrac < 0 || t.SpoofFrac > 1 {
		return fmt.Errorf("spoof_frac must be in [0,1], got %g", t.SpoofFrac)
	}
	if t.FaultFrac+t.SpoofFrac > 1 {
		return fmt.Errorf("fault_frac + spoof_frac must not exceed 1, got %g", t.FaultFrac+t.SpoofFrac)
	}
	return nil
}

func probField(name string, v float64) error {
	if v < 0 || v > 1 {
		return fmt.Errorf("%s must be in [0,1], got %g", name, v)
	}
	return nil
}

func (a ActionSpec) validate(phaseRounds int) error {
	if _, ok := declaredActions[a.Type]; !ok {
		return fmt.Errorf("unknown type %q", a.Type)
	}
	if a.At < 0 || a.At >= phaseRounds {
		return fmt.Errorf("%s at %d is outside the phase's %d rounds", a.Type, a.At, phaseRounds)
	}
	switch a.Type {
	case "partition", "heal":
		if a.From == "" || a.To == "" {
			return fmt.Errorf("%s needs from and to link names", a.Type)
		}
	case "kill":
		if a.Replica == "" {
			return fmt.Errorf("kill needs a replica")
		}
	case "rsu_flap":
		if a.Replica == "" {
			return fmt.Errorf("rsu_flap needs a replica")
		}
		if a.Rounds < 1 {
			return fmt.Errorf("rsu_flap needs rounds >= 1 (the down time), got %d", a.Rounds)
		}
		if a.At+a.Rounds >= phaseRounds {
			return fmt.Errorf("rsu_flap revive at round %d is outside the phase's %d rounds", a.At+a.Rounds, phaseRounds)
		}
	case "link_loss", "link_dup", "reorder":
		if err := probField(a.Type+" prob", a.Prob); err != nil {
			return err
		}
	case "link_delay":
		if err := probField("link_delay prob", a.Prob); err != nil {
			return err
		}
		if a.MaxMs <= 0 {
			return fmt.Errorf("link_delay needs max_ms > 0, got %d", a.MaxMs)
		}
		if a.MinMs < 0 || a.MinMs > a.MaxMs {
			return fmt.Errorf("link_delay needs 0 <= min_ms <= max_ms, got %d..%d", a.MinMs, a.MaxMs)
		}
	case "loss_ramp", "delay_ramp":
		if err := probField(a.Type+" from_prob", a.FromProb); err != nil {
			return err
		}
		if err := probField(a.Type+" to_prob", a.ToProb); err != nil {
			return err
		}
		if a.Rounds < 2 {
			return fmt.Errorf("%s needs rounds >= 2 to interpolate over, got %d", a.Type, a.Rounds)
		}
		if a.At+a.Rounds > phaseRounds {
			return fmt.Errorf("%s ends at round %d, outside the phase's %d rounds", a.Type, a.At+a.Rounds-1, phaseRounds)
		}
		if a.Type == "delay_ramp" {
			if a.MaxMs <= 0 {
				return fmt.Errorf("delay_ramp needs max_ms > 0, got %d", a.MaxMs)
			}
			if a.MinMs < 0 || a.MinMs > a.MaxMs {
				return fmt.Errorf("delay_ramp needs 0 <= min_ms <= max_ms, got %d..%d", a.MinMs, a.MaxMs)
			}
		}
	}
	return nil
}

func (a AssertionSpec) validate() error {
	if a.Metric == "" {
		return fmt.Errorf("assertion needs a metric")
	}
	if _, ok := opFns[a.Op]; !ok {
		return fmt.Errorf("unknown op %q (want one of ==, !=, <, <=, >, >=)", a.Op)
	}
	return nil
}
