package scenario

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"

	"cad3/internal/obsv"
)

// fakeHarness is a scripted, fully deterministic Harness: it records
// every call in order and synthesises measurements from a seed-keyed
// counter, so engine behaviour can be asserted without the simulation
// stack.
type fakeHarness struct {
	calls    []string
	seed     int64
	rounds   int
	applyErr map[string]error
	// measure overrides the synthesised measurements when set.
	measure func(h *fakeHarness) Measurements
}

func (h *fakeHarness) Reset(seed int64) error {
	h.seed, h.rounds = seed, 0
	h.calls = append(h.calls, fmt.Sprintf("reset seed=%d", seed))
	return nil
}

func (h *fakeHarness) BeginPhase(name string) error {
	h.calls = append(h.calls, "begin "+name)
	return nil
}

func (h *fakeHarness) Round(tr Traffic) error {
	h.rounds++
	h.calls = append(h.calls, fmt.Sprintf("round abs=%d rate=%s burst=%d fault=%s spoof=%s",
		tr.Round, fnum(tr.Rate), tr.Burst, fnum(tr.FaultFrac), fnum(tr.SpoofFrac)))
	return nil
}

func (h *fakeHarness) Apply(a Action) error {
	h.calls = append(h.calls, "apply "+a.String())
	if err := h.applyErr[a.Type]; err != nil {
		return err
	}
	return nil
}

func (h *fakeHarness) Settle() error {
	h.calls = append(h.calls, "settle")
	return nil
}

func (h *fakeHarness) Measure() (Measurements, error) {
	h.calls = append(h.calls, "measure")
	if h.measure != nil {
		return h.measure(h), nil
	}
	return Measurements{
		"rounds":     float64(h.rounds),
		"seed_echo":  float64(h.seed),
		"lost_acked": 0,
	}, nil
}

func steadySpec(name string, seed int64, phases ...PhaseSpec) *Spec {
	return &Spec{Version: SpecVersion, Name: name, Seed: seed, Phases: phases}
}

func steadyPhase(name string, rounds int) PhaseSpec {
	return PhaseSpec{Name: name, Rounds: rounds, Traffic: TrafficSpec{Shape: "steady", Rate: 1}}
}

// TestEngineCallOrder pins the executor's call discipline: reset once,
// then per phase begin → (actions before traffic) per round → settle
// (forced on the final phase) → measure.
func TestEngineCallOrder(t *testing.T) {
	ph := steadyPhase("warm", 2)
	ph.Actions = []ActionSpec{{At: 1, Type: "kill_leader"}}
	ph.Assertions = []AssertionSpec{{Metric: "rounds", Op: "==", Value: 2}}
	spec := steadySpec("order", 7, ph)

	h := &fakeHarness{}
	res, err := New(Config{}).Run(spec, h)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{
		"reset seed=7",
		"begin warm",
		"round abs=0 rate=1 burst=0 fault=0 spoof=0",
		"apply kill_leader",
		"round abs=1 rate=1 burst=0 fault=0 spoof=0",
		"settle",
		"measure",
	}
	if got := strings.Join(h.calls, "\n"); got != strings.Join(want, "\n") {
		t.Fatalf("call order:\n%s\nwant:\n%s", got, strings.Join(want, "\n"))
	}
	if !res.Pass || res.Failures != 0 {
		t.Fatalf("expected passing run, got pass=%v failures=%d\n%s", res.Pass, res.Failures, res.Transcript)
	}
}

// TestEngineAbsoluteRounds: Traffic.Round is the absolute round index,
// continuous across phases — harnesses key virtual time off it.
func TestEngineAbsoluteRounds(t *testing.T) {
	spec := steadySpec("abs", 1, steadyPhase("a", 3), steadyPhase("b", 2))
	h := &fakeHarness{}
	if _, err := New(Config{}).Run(spec, h); err != nil {
		t.Fatal(err)
	}
	var rounds []string
	for _, c := range h.calls {
		if strings.HasPrefix(c, "round ") {
			rounds = append(rounds, strings.Fields(c)[1])
		}
	}
	want := []string{"abs=0", "abs=1", "abs=2", "abs=3", "abs=4"}
	if strings.Join(rounds, " ") != strings.Join(want, " ") {
		t.Fatalf("absolute rounds %v, want %v", rounds, want)
	}
}

// TestRampExpansion checks the loss_ramp macro lowers to one link_loss
// per round with linearly interpolated probabilities, first and last
// rounds landing exactly on from_prob/to_prob.
func TestRampExpansion(t *testing.T) {
	ph := steadyPhase("ramp", 10)
	ph.Actions = []ActionSpec{{At: 2, Type: "loss_ramp", FromProb: 0.1, ToProb: 0.5, Rounds: 5}}
	plan, err := Compile(steadySpec("ramps", 1, ph))
	if err != nil {
		t.Fatal(err)
	}
	acts := plan.Phases[0].Actions
	if plan.Phases[0].ActionCount() != 5 {
		t.Fatalf("want 5 expanded firings, got %d", plan.Phases[0].ActionCount())
	}
	wantProbs := []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	for i, want := range wantProbs {
		fired := acts[2+i]
		if len(fired) != 1 || fired[0].Type != "link_loss" {
			t.Fatalf("round %d: want one link_loss, got %v", 2+i, fired)
		}
		if math.Abs(fired[0].Prob-want) > 1e-9 {
			t.Errorf("round %d: prob %g, want %g", 2+i, fired[0].Prob, want)
		}
	}
}

// TestFlapExpansion: rsu_flap lowers to a kill at At and a revive at
// At+Rounds against the same replica.
func TestFlapExpansion(t *testing.T) {
	ph := steadyPhase("flap", 8)
	ph.Actions = []ActionSpec{{At: 2, Type: "rsu_flap", Replica: "r1", Rounds: 3}}
	plan, err := Compile(steadySpec("flaps", 1, ph))
	if err != nil {
		t.Fatal(err)
	}
	acts := plan.Phases[0].Actions
	if len(acts[2]) != 1 || acts[2][0].Type != "kill" || acts[2][0].Replica != "r1" {
		t.Fatalf("round 2: want kill r1, got %v", acts[2])
	}
	if len(acts[5]) != 1 || acts[5][0].Type != "revive" || acts[5][0].Replica != "r1" {
		t.Fatalf("round 5: want revive r1, got %v", acts[5])
	}
}

// TestTrafficShapes probes each compiled shape at characteristic rounds.
func TestTrafficShapes(t *testing.T) {
	probe := func(ts TrafficSpec, rounds, i int) Traffic {
		return compileTraffic(ts, rounds)(i)
	}
	if got := probe(TrafficSpec{Shape: "steady", Rate: 2}, 10, 5); got.Rate != 2 {
		t.Errorf("steady: rate %g, want 2", got.Rate)
	}
	// Surge climbs linearly: first round at rate, last at peak.
	if got := probe(TrafficSpec{Shape: "surge", Rate: 1, Peak: 8}, 8, 0); got.Rate != 1 {
		t.Errorf("surge first: rate %g, want 1", got.Rate)
	}
	if got := probe(TrafficSpec{Shape: "surge", Rate: 1, Peak: 8}, 8, 7); got.Rate != 8 {
		t.Errorf("surge last: rate %g, want 8", got.Rate)
	}
	// Shockwave: peak+faults inside the window, base outside.
	sw := TrafficSpec{Shape: "shockwave", Rate: 1, Peak: 4, AtFrac: 0.5, WidthFrac: 0.2, FaultFrac: 0.3}
	if got := probe(sw, 20, 10); got.Rate != 4 || got.FaultFrac != 0.3 {
		t.Errorf("shockwave centre: %+v", got)
	}
	if got := probe(sw, 20, 0); got.Rate != 1 || got.FaultFrac != 0 {
		t.Errorf("shockwave edge: %+v", got)
	}
	// Platoon: burst every Every rounds, none between.
	pl := TrafficSpec{Shape: "platoon", Rate: 1, Size: 25, Every: 4}
	if got := probe(pl, 12, 4); got.Burst != 25 {
		t.Errorf("platoon on-beat: burst %d, want 25", got.Burst)
	}
	if got := probe(pl, 12, 5); got.Burst != 0 {
		t.Errorf("platoon off-beat: burst %d, want 0", got.Burst)
	}
	if got := probe(TrafficSpec{Shape: "storm", Rate: 1, FaultFrac: 0.4}, 5, 2); got.FaultFrac != 0.4 {
		t.Errorf("storm: fault_frac %g, want 0.4", got.FaultFrac)
	}
	if got := probe(TrafficSpec{Shape: "spoof", Rate: 1, SpoofFrac: 0.2}, 5, 2); got.SpoofFrac != 0.2 {
		t.Errorf("spoof: spoof_frac %g, want 0.2", got.SpoofFrac)
	}
}

// TestApplyErrorSurvivable: a failing action is recorded in the
// transcript and counted, but the run continues and assertions still
// decide the verdict.
func TestApplyErrorSurvivable(t *testing.T) {
	ph := steadyPhase("p", 3)
	ph.Actions = []ActionSpec{{At: 1, Type: "revive", Replica: "r9"}}
	ph.Assertions = []AssertionSpec{{Metric: "rounds", Op: "==", Value: 3}}
	spec := steadySpec("survive", 3, ph)

	reg := obsv.NewRegistry()
	e := New(Config{Metrics: reg})
	h := &fakeHarness{applyErr: map[string]error{"revive": errors.New("nothing to revive")}}
	res, err := e.Run(spec, h)
	if err != nil {
		t.Fatalf("apply error must not abort the run: %v", err)
	}
	if !res.Pass {
		t.Fatalf("run should still pass its assertions:\n%s", res.Transcript)
	}
	if !strings.Contains(res.Transcript, "!error: nothing to revive") {
		t.Fatalf("transcript does not record the action error:\n%s", res.Transcript)
	}
	if got := reg.Snapshot().Counters["scenario.action_errors"]; got != 1 {
		t.Fatalf("scenario.action_errors = %d, want 1", got)
	}
}

// TestTranscriptDeterminism is the engine-level determinism contract:
// the same (spec, harness) run twice yields byte-identical transcripts,
// and a different seed yields a different one.
func TestTranscriptDeterminism(t *testing.T) {
	ph := steadyPhase("p", 4)
	ph.Actions = []ActionSpec{
		{At: 0, Type: "loss_ramp", FromProb: 0, ToProb: 0.3, Rounds: 3},
		{At: 2, Type: "clock_skew", SkewMs: 25},
	}
	ph.Assertions = []AssertionSpec{
		{Metric: "rounds", Op: "==", Value: 4},
		{Metric: "missing_metric", Op: "<", Value: 1},
	}
	spec := steadySpec("det", 99, ph)

	e := New(Config{})
	run := func(s *Spec) string {
		res, err := e.Run(s, &fakeHarness{})
		if err != nil {
			t.Fatal(err)
		}
		return res.Transcript
	}
	t1, t2 := run(spec), run(spec)
	if t1 != t2 {
		t.Fatalf("same spec, different transcripts:\n--- 1\n%s\n--- 2\n%s", t1, t2)
	}
	if !strings.Contains(t1, "assert missing_metric < 1 :: FAIL (metric absent)") {
		t.Fatalf("absent-metric assertion not rendered as expected:\n%s", t1)
	}
	other := spec.Clone()
	other.Seed = 100
	if t3 := run(other); t3 == t1 {
		t.Fatal("different seeds produced identical transcripts")
	}
}

// TestEngineMetrics spot-checks the scenario.* counter family after a
// mixed pass/fail run.
func TestEngineMetrics(t *testing.T) {
	ph := steadyPhase("p", 2)
	ph.Assertions = []AssertionSpec{
		{Metric: "rounds", Op: "==", Value: 2},
		{Metric: "rounds", Op: "==", Value: 3},
	}
	spec := steadySpec("metrics", 1, ph)
	reg := obsv.NewRegistry()
	res, err := New(Config{Metrics: reg}).Run(spec, &fakeHarness{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass || res.Failures != 1 {
		t.Fatalf("want one failure, got pass=%v failures=%d", res.Pass, res.Failures)
	}
	snap := reg.Snapshot()
	for name, want := range map[string]int64{
		"scenario.runs":        1,
		"scenario.runs.failed": 1,
		"scenario.phases":      1,
		"scenario.rounds":      2,
		"scenario.assert.pass": 1,
		"scenario.assert.fail": 1,
	} {
		if got := snap.Counters[name]; got != want {
			t.Errorf("%s = %d, want %d", name, got, want)
		}
	}
}
