package scenario

// The assertion evaluator: a deliberately small grammar — one measurement
// name, one comparison operator, one constant — because every scenario
// failure must be explainable from the transcript alone. Compound
// predicates are expressed as multiple assertions on the same phase.

// opFns is the comparison vocabulary. Comparisons are exact float64
// comparisons: thresholds in specs are authored against deterministic
// replays, so boundary-equal cases are meaningful (asserted by tests),
// not flaky.
var opFns = map[string]func(got, want float64) bool{
	"==": func(g, w float64) bool { return g == w },
	"!=": func(g, w float64) bool { return g != w },
	"<":  func(g, w float64) bool { return g < w },
	"<=": func(g, w float64) bool { return g <= w },
	">":  func(g, w float64) bool { return g > w },
	">=": func(g, w float64) bool { return g >= w },
}

// AssertionResult is one evaluated assertion.
type AssertionResult struct {
	Spec AssertionSpec
	// Got is the measured value (zero when Found is false).
	Got float64
	// Found reports whether the measurement existed. An assertion on an
	// absent measurement fails: a misspelled metric, or a harness that
	// stopped reporting one, must surface, not vacuously pass.
	Found bool
	Pass  bool
}

// Eval evaluates one assertion against a measurement set.
func (a AssertionSpec) Eval(m Measurements) AssertionResult {
	res := AssertionResult{Spec: a}
	got, ok := m[a.Metric]
	if !ok {
		return res // Found=false, Pass=false
	}
	res.Got = got
	res.Found = true
	res.Pass = opFns[a.Op](got, a.Value)
	return res
}
