package scenario

import (
	"fmt"
	"strconv"
	"strings"

	"cad3/internal/obsv"
)

// Engine executes compiled plans against a harness and evaluates their
// assertions. One engine serves many runs (the corpus runner and the
// explorer share one); per-run state lives on the stack of Run.
//
// The engine is clockless: rounds are pure counters, all timing lives
// behind the Harness on a virtual clock. That keeps the executor inside
// the cad3-vet virtualclock discipline and makes the transcript — the
// run's canonical record — a deterministic function of (spec, harness
// seed).
type Engine struct {
	mRuns       *obsv.Counter
	mRunsFailed *obsv.Counter
	mPhases     *obsv.Counter
	mRounds     *obsv.Counter
	mActions    *obsv.Counter
	mActionErrs *obsv.Counter
	mAssertPass *obsv.Counter
	mAssertFail *obsv.Counter
	mExpCand    *obsv.Counter
	mExpFail    *obsv.Counter
	mExpArch    *obsv.Counter
	gPhase      *obsv.Gauge
}

// Config configures an Engine.
type Config struct {
	// Metrics, when set, receives the scenario.* counter family
	// (OBSERVABILITY.md). Nil gives the engine a private registry.
	Metrics *obsv.Registry
}

// New builds an engine and registers its metric handles eagerly — the
// whole scenario.* family exists (at zero) from construction, so the
// inventory conformance test sees it without running a scenario.
func New(cfg Config) *Engine {
	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}
	return &Engine{
		mRuns:       reg.Counter("scenario.runs"),
		mRunsFailed: reg.Counter("scenario.runs.failed"),
		mPhases:     reg.Counter("scenario.phases"),
		mRounds:     reg.Counter("scenario.rounds"),
		mActions:    reg.Counter("scenario.actions"),
		mActionErrs: reg.Counter("scenario.action_errors"),
		mAssertPass: reg.Counter("scenario.assert.pass"),
		mAssertFail: reg.Counter("scenario.assert.fail"),
		mExpCand:    reg.Counter("scenario.explorer.candidates"),
		mExpFail:    reg.Counter("scenario.explorer.failures"),
		mExpArch:    reg.Counter("scenario.explorer.archived"),
		gPhase:      reg.Gauge("scenario.phase"),
	}
}

// PhaseResult is one executed phase's outcome.
type PhaseResult struct {
	Name string
	// Fired lists the fired actions (rendered) in firing order.
	Fired        []string
	Measurements Measurements
	Assertions   []AssertionResult
}

// Failed counts the phase's failed assertions.
func (p PhaseResult) Failed() int {
	n := 0
	for _, a := range p.Assertions {
		if !a.Pass {
			n++
		}
	}
	return n
}

// Result is one run's outcome.
type Result struct {
	Spec   *Spec
	Phases []PhaseResult
	// Pass is true when every assertion of every phase passed.
	Pass bool
	// Failures is the total failed-assertion count.
	Failures int
	// Transcript is the run's canonical record: byte-identical across
	// runs of the same (spec, harness seed) — the determinism contract
	// the regression corpus asserts.
	Transcript string
}

// Run compiles and executes a spec.
func (e *Engine) Run(spec *Spec, h Harness) (*Result, error) {
	plan, err := Compile(spec)
	if err != nil {
		return nil, err
	}
	return e.RunPlan(plan, h)
}

// fnum renders a float64 deterministically for transcripts.
func fnum(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// RunPlan executes a compiled plan.
func (e *Engine) RunPlan(plan *Plan, h Harness) (*Result, error) {
	spec := plan.Spec
	res := &Result{Spec: spec, Pass: true}
	var tb strings.Builder
	fmt.Fprintf(&tb, "scenario %s version=%d seed=%d phases=%d\n",
		spec.Name, spec.Version, spec.Seed, len(plan.Phases))

	if err := h.Reset(spec.Seed); err != nil {
		return nil, fmt.Errorf("scenario %q: reset: %w", spec.Name, err)
	}
	absRound := 0
	for pi, ph := range plan.Phases {
		e.gPhase.Set(int64(pi))
		e.mPhases.Inc()
		fmt.Fprintf(&tb, "phase %s rounds=%d actions=%d\n", ph.Name, ph.Rounds, ph.ActionCount())
		if err := h.BeginPhase(ph.Name); err != nil {
			return nil, fmt.Errorf("scenario %q phase %q: begin: %w", spec.Name, ph.Name, err)
		}
		pr := PhaseResult{Name: ph.Name}
		for i := 0; i < ph.Rounds; i++ {
			for _, a := range ph.Actions[i] {
				e.mActions.Inc()
				rendered := a.String()
				if err := h.Apply(a); err != nil {
					// Survivable by design: a minimized spec may fire an
					// action its context no longer supports (revive with
					// nothing killed). The transcript records it; the
					// phase's assertions decide whether it mattered.
					e.mActionErrs.Inc()
					rendered += " !error: " + err.Error()
				}
				pr.Fired = append(pr.Fired, rendered)
				fmt.Fprintf(&tb, "  @%-4d action %s\n", i, rendered)
			}
			tr := ph.Traffic(i)
			tr.Round = absRound
			if err := h.Round(tr); err != nil {
				return nil, fmt.Errorf("scenario %q phase %q round %d: %w", spec.Name, ph.Name, i, err)
			}
			absRound++
			e.mRounds.Inc()
		}
		if ph.Settle {
			if err := h.Settle(); err != nil {
				return nil, fmt.Errorf("scenario %q phase %q: settle: %w", spec.Name, ph.Name, err)
			}
			fmt.Fprintf(&tb, "  settle\n")
		}
		m, err := h.Measure()
		if err != nil {
			return nil, fmt.Errorf("scenario %q phase %q: measure: %w", spec.Name, ph.Name, err)
		}
		pr.Measurements = m
		for _, k := range sortedKeys(m) {
			fmt.Fprintf(&tb, "  measure %s=%s\n", k, fnum(m[k]))
		}
		for _, as := range ph.Assertions {
			ar := as.Eval(m)
			pr.Assertions = append(pr.Assertions, ar)
			verdict := "PASS"
			detail := "got " + fnum(ar.Got)
			if !ar.Found {
				detail = "metric absent"
			}
			if !ar.Pass {
				verdict = "FAIL"
				res.Pass = false
				res.Failures++
				e.mAssertFail.Inc()
			} else {
				e.mAssertPass.Inc()
			}
			fmt.Fprintf(&tb, "  assert %s %s %s :: %s (%s)\n",
				as.Metric, as.Op, fnum(as.Value), verdict, detail)
		}
		res.Phases = append(res.Phases, pr)
	}
	if res.Pass {
		fmt.Fprintf(&tb, "verdict PASS\n")
	} else {
		fmt.Fprintf(&tb, "verdict FAIL failures=%d\n", res.Failures)
	}
	res.Transcript = tb.String()
	e.mRuns.Inc()
	if !res.Pass {
		e.mRunsFailed.Inc()
	}
	return res, nil
}
