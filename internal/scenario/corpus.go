package scenario

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
)

// The regression corpus: a directory of checked-in spec files, each a
// scenario that once exposed (or pins against) a real failure. The
// runner replays every spec and fails on any regression; the explorer
// perturbs specs at random and, when a perturbation's assertions fail,
// delta-debugs it to a minimal failing spec and archives it — turning a
// random find into a permanent, replayable regression test.

// LoadCorpus reads every *.json spec under dir, sorted by filename so a
// corpus replay has a stable order. The filenames are returned alongside
// the specs for reporting.
func LoadCorpus(dir string) ([]*Spec, []string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, fmt.Errorf("scenario: corpus: %w", err)
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && filepath.Ext(e.Name()) == ".json" {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil, fmt.Errorf("scenario: corpus %s holds no *.json specs", dir)
	}
	specs := make([]*Spec, 0, len(names))
	for _, name := range names {
		s, err := LoadSpec(filepath.Join(dir, name))
		if err != nil {
			return nil, nil, err
		}
		specs = append(specs, s)
	}
	return specs, names, nil
}

// RunCorpus replays every spec against the harness, in order, and
// returns one result per spec. A run error aborts (a corpus spec that
// cannot execute at all is itself a regression).
func (e *Engine) RunCorpus(specs []*Spec, h Harness) ([]*Result, error) {
	results := make([]*Result, 0, len(specs))
	for _, s := range specs {
		res, err := e.Run(s, h)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// Explorer perturbs specs, hunts for assertion failures, and minimizes
// what it finds. All randomness comes from Rng, so an exploration
// session is reproducible from its seed.
type Explorer struct {
	Engine  *Engine
	Harness Harness
	Rng     *rand.Rand
	// MaxCandidates bounds the minimizer's candidate runs. Values <= 0
	// select 48.
	MaxCandidates int
}

// Finding is one minimized failing spec.
type Finding struct {
	// Spec is the minimized failing spec (seeded, replayable).
	Spec *Spec
	// Origin names the corpus spec the perturbation started from.
	Origin string
	// Candidates is how many runs the minimizer spent.
	Candidates int
	// Result is the minimized spec's (failing) run result.
	Result *Result
}

// Explore perturbs base up to tries times. The first perturbation whose
// run fails an assertion is minimized and returned; nil means every
// perturbation passed (the usual, healthy outcome).
func (x *Explorer) Explore(base *Spec, tries int) (*Finding, error) {
	for t := 0; t < tries; t++ {
		cand := x.Perturb(base)
		x.Engine.mExpCand.Inc()
		res, err := x.Engine.Run(cand, x.Harness)
		if err != nil {
			// A perturbation the harness cannot execute is noise, not a
			// finding; skip it.
			continue
		}
		if res.Pass {
			continue
		}
		x.Engine.mExpFail.Inc()
		min, n, err := x.Minimize(cand)
		if err != nil {
			return nil, err
		}
		final, err := x.Engine.Run(min, x.Harness)
		if err != nil {
			return nil, err
		}
		return &Finding{Spec: min, Origin: base.Name, Candidates: n + 1, Result: final}, nil
	}
	return nil, nil
}

// Perturb derives a random variant of base: a fresh seed and jittered
// rates, peaks, action rounds and probabilities. Structure (phases,
// action types, assertions) is preserved — the perturbation explores the
// parameter space the assertions were written for.
func (x *Explorer) Perturb(base *Spec) *Spec {
	s := base.Clone()
	s.Seed = x.Rng.Int63n(1 << 31)
	s.Name = fmt.Sprintf("%s-x%d", base.Name, s.Seed)
	jitter := func(v float64) float64 { return v * (0.75 + 0.5*x.Rng.Float64()) }
	for i := range s.Phases {
		ph := &s.Phases[i]
		ph.Traffic.Rate = jitter(ph.Traffic.Rate)
		if ph.Traffic.Peak > 0 {
			ph.Traffic.Peak = jitter(ph.Traffic.Peak)
			if ph.Traffic.Peak < ph.Traffic.Rate {
				ph.Traffic.Peak = ph.Traffic.Rate
			}
		}
		for j := range ph.Actions {
			a := &ph.Actions[j]
			span := ph.Rounds
			if a.Rounds > 0 {
				span = ph.Rounds - a.Rounds
			}
			if span > 1 {
				a.At = x.Rng.Intn(span)
			}
			clampProb := func(p float64) float64 {
				p = jitter(p)
				if p > 1 {
					p = 1
				}
				return p
			}
			if a.Prob > 0 {
				a.Prob = clampProb(a.Prob)
			}
			if a.ToProb > 0 {
				a.ToProb = clampProb(a.ToProb)
			}
		}
	}
	return s
}

// Minimize delta-debugs a failing spec: it drops phases, drops halves of
// each phase's action list (then single actions), and halves round
// counts — keeping each simplification only if the spec still fails —
// until a fixpoint or the candidate budget. The returned spec fails by
// construction; the int is the number of candidate runs spent.
func (x *Explorer) Minimize(spec *Spec) (*Spec, int, error) {
	budget := x.MaxCandidates
	if budget <= 0 {
		budget = 48
	}
	runs := 0
	fails := func(s *Spec) bool {
		if runs >= budget {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		runs++
		x.Engine.mExpCand.Inc()
		res, err := x.Engine.Run(s, x.Harness)
		return err == nil && !res.Pass
	}
	if !fails(spec) {
		return nil, runs, fmt.Errorf("scenario: minimize: spec %q does not fail", spec.Name)
	}
	cur := spec.Clone()
	for changed := true; changed && runs < budget; {
		changed = false
		// Drop whole phases (keep at least one).
		for i := 0; len(cur.Phases) > 1 && i < len(cur.Phases); i++ {
			cand := cur.Clone()
			cand.Phases = append(cand.Phases[:i], cand.Phases[i+1:]...)
			if fails(cand) {
				cur, changed = cand, true
				i--
			}
		}
		// Drop action halves, then stragglers, per phase.
		for pi := range cur.Phases {
			acts := cur.Phases[pi].Actions
			if len(acts) > 1 {
				for _, keep := range [][2]int{{len(acts) / 2, len(acts)}, {0, len(acts) / 2}} {
					cand := cur.Clone()
					cand.Phases[pi].Actions = append([]ActionSpec(nil), acts[keep[0]:keep[1]]...)
					if fails(cand) {
						cur, changed = cand, true
						break
					}
				}
			}
			for ai := 0; ai < len(cur.Phases[pi].Actions); ai++ {
				cand := cur.Clone()
				cand.Phases[pi].Actions = append(
					append([]ActionSpec(nil), cur.Phases[pi].Actions[:ai]...),
					cur.Phases[pi].Actions[ai+1:]...)
				if fails(cand) {
					cur, changed = cand, true
					ai--
				}
			}
		}
		// Halve round counts.
		for pi := range cur.Phases {
			if cur.Phases[pi].Rounds > 1 {
				cand := cur.Clone()
				cand.Phases[pi].Rounds /= 2
				if fails(cand) {
					cur, changed = cand, true
				}
			}
		}
	}
	cur.Notes = fmt.Sprintf("minimized from %s (%d candidate runs); %s", spec.Name, runs, spec.Notes)
	return cur, runs, nil
}

// Archive writes a minimized failing spec into the corpus directory as
// minimized-<name>-<hash>.json and returns the path. The hash covers the
// canonical JSON, so archiving the same finding twice is idempotent.
func (x *Explorer) Archive(spec *Spec, dir string) (string, error) {
	data, err := spec.Marshal()
	if err != nil {
		return "", err
	}
	h := fnv.New32a()
	h.Write(data)
	path := filepath.Join(dir, fmt.Sprintf("minimized-%08x.json", h.Sum32()))
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return "", fmt.Errorf("scenario: archive: %w", err)
	}
	x.Engine.mExpArch.Inc()
	return path, nil
}
