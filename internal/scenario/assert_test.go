package scenario

import "testing"

// TestAssertionOps sweeps every operator across below/equal/above
// measurements, pinning the boundary-equal semantics the deterministic
// replays make meaningful.
func TestAssertionOps(t *testing.T) {
	cases := []struct {
		op   string
		got  float64
		want float64
		pass bool
	}{
		{"==", 5, 5, true}, {"==", 5.0001, 5, false},
		{"!=", 5, 5, false}, {"!=", 4, 5, true},
		{"<", 4, 5, true}, {"<", 5, 5, false}, {"<", 6, 5, false},
		{"<=", 4, 5, true}, {"<=", 5, 5, true}, {"<=", 6, 5, false},
		{">", 6, 5, true}, {">", 5, 5, false}, {">", 4, 5, false},
		{">=", 6, 5, true}, {">=", 5, 5, true}, {">=", 4, 5, false},
		{"==", 0, 0, true}, {"<=", 0, 0, true}, {">=", 0, 0, true},
	}
	for _, c := range cases {
		as := AssertionSpec{Metric: "m", Op: c.op, Value: c.want}
		res := as.Eval(Measurements{"m": c.got})
		if !res.Found {
			t.Fatalf("%g %s %g: metric unexpectedly absent", c.got, c.op, c.want)
		}
		if res.Pass != c.pass {
			t.Errorf("%g %s %g: pass=%v, want %v", c.got, c.op, c.want, res.Pass, c.pass)
		}
		if res.Got != c.got {
			t.Errorf("%g %s %g: Got=%g", c.got, c.op, c.want, res.Got)
		}
	}
}

// TestAssertionAbsentMetric pins the absent-metric contract: an
// assertion on a measurement the harness never reported fails with
// Found=false — it must not vacuously pass, whatever the operator.
func TestAssertionAbsentMetric(t *testing.T) {
	for op := range opFns {
		as := AssertionSpec{Metric: "nope", Op: op, Value: 0}
		res := as.Eval(Measurements{"other": 1})
		if res.Found {
			t.Errorf("op %s: Found=true for absent metric", op)
		}
		if res.Pass {
			t.Errorf("op %s: absent metric passed", op)
		}
	}
}

// TestAssertionEmptyMeasurements: an empty phase (harness measured
// nothing) fails every assertion rather than crashing or passing.
func TestAssertionEmptyMeasurements(t *testing.T) {
	as := AssertionSpec{Metric: "lost_acked", Op: "==", Value: 0}
	res := as.Eval(Measurements{})
	if res.Found || res.Pass {
		t.Fatalf("empty measurements: Found=%v Pass=%v, want false/false", res.Found, res.Pass)
	}
	res = as.Eval(nil)
	if res.Found || res.Pass {
		t.Fatalf("nil measurements: Found=%v Pass=%v, want false/false", res.Found, res.Pass)
	}
}
