package scenario

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// TestSpecGolden drives the parser over the checked-in golden corpus:
// every testdata/specs/ok-*.json must parse and validate; every
// bad-*.json must fail with an error matching the regexp in its paired
// bad-*.err file. Adding a grammar rule means adding a pair here — the
// test fails loudly on an unpaired file.
func TestSpecGolden(t *testing.T) {
	dir := filepath.Join("testdata", "specs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	okSeen, badSeen := 0, 0
	for _, e := range entries {
		name := e.Name()
		switch {
		case strings.HasPrefix(name, "ok-") && strings.HasSuffix(name, ".json"):
			okSeen++
			t.Run(name, func(t *testing.T) {
				s, err := LoadSpec(filepath.Join(dir, name))
				if err != nil {
					t.Fatalf("want clean parse, got %v", err)
				}
				if _, err := Compile(s); err != nil {
					t.Fatalf("want clean compile, got %v", err)
				}
			})
		case strings.HasPrefix(name, "bad-") && strings.HasSuffix(name, ".json"):
			badSeen++
			t.Run(name, func(t *testing.T) {
				errFile := strings.TrimSuffix(name, ".json") + ".err"
				wantRE, err := os.ReadFile(filepath.Join(dir, errFile))
				if err != nil {
					t.Fatalf("bad spec %s has no paired %s: %v", name, errFile, err)
				}
				re, err := regexp.Compile(strings.TrimSpace(string(wantRE)))
				if err != nil {
					t.Fatalf("%s holds an invalid regexp: %v", errFile, err)
				}
				_, perr := LoadSpec(filepath.Join(dir, name))
				if perr == nil {
					t.Fatalf("want parse error matching %q, got success", re)
				}
				if !re.MatchString(perr.Error()) {
					t.Fatalf("error %q does not match %q", perr, re)
				}
			})
		}
	}
	if okSeen < 2 || badSeen < 5 {
		t.Fatalf("golden corpus too thin: %d ok, %d bad specs", okSeen, badSeen)
	}
}

// TestSpecMarshalRoundTrip checks Marshal → ParseSpec is the identity on
// the golden ok specs, and that Marshal is byte-stable — the property the
// explorer's content-addressed archive names rely on.
func TestSpecMarshalRoundTrip(t *testing.T) {
	s, err := LoadSpec(filepath.Join("testdata", "specs", "ok-kitchen-sink.json"))
	if err != nil {
		t.Fatal(err)
	}
	data1, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := ParseSpec(data1)
	if err != nil {
		t.Fatalf("marshalled spec does not re-parse: %v", err)
	}
	data2, err := s2.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, data2) {
		t.Fatal("Marshal is not byte-stable across a parse round trip")
	}
}

// TestSpecClone proves Clone is deep: mutating a clone's phases, actions
// and assertions leaves the original untouched.
func TestSpecClone(t *testing.T) {
	s, err := LoadSpec(filepath.Join("testdata", "specs", "ok-kitchen-sink.json"))
	if err != nil {
		t.Fatal(err)
	}
	orig, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	c := s.Clone()
	c.Name = "mutated"
	c.Phases[0].Rounds = 999
	c.Phases[1].Actions[0].ToProb = 0.99
	c.Phases[2].Assertions[0].Value = -1
	after, err := s.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(orig, after) {
		t.Fatal("mutating a clone leaked into the original spec")
	}
}
