package scenario

import (
	"fmt"
	"sort"
	"strings"
)

// Compilation: spec → plan. Macros (ramps, flaps) expand into the
// runtime action vocabulary pinned to concrete rounds, and each phase's
// traffic shape becomes a pure round → Traffic function, so the executor
// is a dumb loop and every scheduling decision is visible in the plan.

// Plan is a compiled spec, ready for execution.
type Plan struct {
	Spec   *Spec
	Phases []PlanPhase
}

// PlanPhase is one compiled phase.
type PlanPhase struct {
	Name   string
	Rounds int
	Settle bool
	// Actions maps round-in-phase → actions fired before that round's
	// traffic, in declaration order (macro expansions keep their
	// declaration position at each expanded round).
	Actions map[int][]Action
	// Traffic computes round-in-phase → traffic order; pure.
	Traffic    func(i int) Traffic
	Assertions []AssertionSpec
}

// ActionCount returns the number of compiled action firings.
func (p PlanPhase) ActionCount() int {
	n := 0
	for _, as := range p.Actions {
		n += len(as)
	}
	return n
}

// Compile validates and compiles a spec.
func Compile(s *Spec) (*Plan, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	plan := &Plan{Spec: s}
	for i, ph := range s.Phases {
		pp := PlanPhase{
			Name:       ph.Name,
			Rounds:     ph.Rounds,
			Settle:     ph.Settle || i == len(s.Phases)-1,
			Actions:    map[int][]Action{},
			Traffic:    compileTraffic(ph.Traffic, ph.Rounds),
			Assertions: ph.Assertions,
		}
		for _, a := range ph.Actions {
			for _, fired := range expandAction(a) {
				pp.Actions[fired.at] = append(pp.Actions[fired.at], fired.action)
			}
		}
		plan.Phases = append(plan.Phases, pp)
	}
	return plan, nil
}

// firedAction is one expanded (round, action) pair.
type firedAction struct {
	at     int
	action Action
}

// expandAction lowers one declared action to its runtime firings.
func expandAction(a ActionSpec) []firedAction {
	base := Action{
		Type: a.Type, Replica: a.Replica, From: a.From, To: a.To,
		Both: a.Both, Prob: a.Prob, MinMs: a.MinMs, MaxMs: a.MaxMs,
		SkewMs: a.SkewMs,
	}
	switch a.Type {
	case "loss_ramp", "delay_ramp":
		// One interpolated setting per round across the span; the last
		// round lands exactly on to_prob.
		typ := "link_loss"
		if a.Type == "delay_ramp" {
			typ = "link_delay"
		}
		out := make([]firedAction, 0, a.Rounds)
		for i := 0; i < a.Rounds; i++ {
			frac := float64(i) / float64(a.Rounds-1)
			step := base
			step.Type = typ
			step.Prob = a.FromProb + (a.ToProb-a.FromProb)*frac
			out = append(out, firedAction{at: a.At + i, action: step})
		}
		return out
	case "rsu_flap":
		kill := base
		kill.Type = "kill"
		revive := base
		revive.Type = "revive"
		return []firedAction{
			{at: a.At, action: kill},
			{at: a.At + a.Rounds, action: revive},
		}
	default:
		return []firedAction{{at: a.At, action: base}}
	}
}

// compileTraffic builds the pure per-round traffic function for a shape.
func compileTraffic(t TrafficSpec, rounds int) func(i int) Traffic {
	switch t.Shape {
	case "steady":
		return func(i int) Traffic { return Traffic{Rate: t.Rate} }
	case "surge":
		// Rush hour: linear climb from rate to peak across the phase.
		return func(i int) Traffic {
			frac := 0.0
			if rounds > 1 {
				frac = float64(i) / float64(rounds-1)
			}
			return Traffic{Rate: t.Rate + (t.Peak-t.Rate)*frac}
		}
	case "shockwave":
		// Accident shockwave: inside the window centred at at_frac the
		// load jumps to peak and a slab of records shows crash-braking
		// kinematics (fault_frac); outside it the corridor is steady.
		lo := int((t.AtFrac - t.WidthFrac/2) * float64(rounds))
		hi := int((t.AtFrac + t.WidthFrac/2) * float64(rounds))
		return func(i int) Traffic {
			if i >= lo && i <= hi {
				return Traffic{Rate: t.Peak, FaultFrac: t.FaultFrac}
			}
			return Traffic{Rate: t.Rate}
		}
	case "platoon":
		// A platoon passes the RSU every Every rounds: Size extra
		// ledgered records land in one window.
		return func(i int) Traffic {
			tr := Traffic{Rate: t.Rate}
			if i%t.Every == 0 {
				tr.Burst = t.Size
			}
			return tr
		}
	case "storm":
		return func(i int) Traffic { return Traffic{Rate: t.Rate, FaultFrac: t.FaultFrac} }
	case "spoof":
		return func(i int) Traffic { return Traffic{Rate: t.Rate, SpoofFrac: t.SpoofFrac} }
	default:
		// Unreachable after Validate; a zero-traffic round is the safe
		// failure mode.
		return func(i int) Traffic { return Traffic{} }
	}
}

// String renders an action deterministically for transcripts.
func (a Action) String() string {
	var sb strings.Builder
	sb.WriteString(a.Type)
	add := func(k, v string) { fmt.Fprintf(&sb, " %s=%s", k, v) }
	if a.Replica != "" {
		add("replica", a.Replica)
	}
	if a.From != "" {
		add("from", a.From)
	}
	if a.To != "" {
		add("to", a.To)
	}
	if a.Both {
		add("both", "true")
	}
	switch a.Type {
	case "link_loss", "link_dup", "reorder", "link_delay":
		add("prob", fnum(a.Prob))
	}
	if a.Type == "link_delay" {
		add("delay_ms", fmt.Sprintf("%d..%d", a.MinMs, a.MaxMs))
	}
	if a.Type == "clock_skew" {
		add("skew_ms", fmt.Sprintf("%d", a.SkewMs))
	}
	return sb.String()
}

// sortedKeys returns a measurement set's names in stable order.
func sortedKeys(m Measurements) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
