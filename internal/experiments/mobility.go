package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// The live-mobility experiment closes the loop the paper only emulates:
// vehicles physically move along the corridor geometry (geo.Journey),
// their telemetry goes to whichever RSU covers their current segment, and
// crossing the motorway -> link boundary triggers the real handover path
// (summary over CO-DATA, prior used by the link RSU's CAD3). The paper
// approximates this by migrating Kafka producers between brokers.

// MobilityConfig configures the run.
type MobilityConfig struct {
	// Vehicles on the corridor. Values <= 0 select 24.
	Vehicles int
	// AggressiveFraction of drivers. Values <= 0 select 0.4.
	AggressiveFraction float64
	// StepInterval is the telemetry period. Values <= 0 select 1 s.
	StepInterval time.Duration
	// Seed drives driver behaviour.
	Seed int64
}

func (c MobilityConfig) withDefaults() MobilityConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 24
	}
	if c.AggressiveFraction <= 0 {
		c.AggressiveFraction = 0.4
	}
	if c.StepInterval <= 0 {
		c.StepInterval = time.Second
	}
	return c
}

// MobilityResult summarises the run.
type MobilityResult struct {
	Vehicles  int
	Steps     int
	Records   int64
	Handovers int64
	Warnings  int64
	PriorHits int64
	// Warned counts vehicles that received at least one warning, split by
	// driver class.
	AggressiveWarned int
	NormalWarned     int
	Aggressive       int
	// AggressiveWarnRate and NormalWarnRate are mean per-record warning
	// rates per driver class — the discriminative metric.
	AggressiveWarnRate float64
	NormalWarnRate     float64
}

// RunMobileHandover drives a fleet along the corridor through a live
// 2-node cluster (motorway AD3 feeding link CAD3) until every journey
// completes.
func RunMobileHandover(sc *Scenario, cfg MobilityConfig) (*MobilityResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	mwBroker := stream.NewBroker(stream.BrokerConfig{})
	lkBroker := stream.NewBroker(stream.BrokerConfig{})
	cluster, err := rsu.NewCluster(sc.Net, []rsu.Config{
		{Name: "Mw", Road: CorridorMotorwayID, Detector: sc.Upstream, Client: stream.NewInProcClient(mwBroker)},
		{Name: "Link", Road: CorridorLinkID, Detector: sc.CAD3, Client: stream.NewInProcClient(lkBroker)},
	})
	if err != nil {
		return nil, err
	}
	// Fixed road order: error surfacing and drain order below must not
	// depend on map iteration (the run transcript is seed-compared).
	roadBrokers := []struct {
		road   geo.SegmentID
		broker *stream.Broker
	}{
		{CorridorMotorwayID, mwBroker},
		{CorridorLinkID, lkBroker},
	}
	producers := map[geo.SegmentID]*stream.Producer{}
	for _, rb := range roadBrokers {
		p, err := stream.NewProducer(stream.NewInProcClient(rb.broker), stream.TopicInData)
		if err != nil {
			return nil, err
		}
		producers[rb.road] = p
	}

	type car struct {
		id         trace.CarID
		journey    *geo.Journey
		aggressive bool
		biasK      float64
		speed      float64 // current speed, evolves smoothly
	}
	profile := trace.DefaultSpeedProfile()
	cars := make([]*car, 0, cfg.Vehicles)
	for i := 1; i <= cfg.Vehicles; i++ {
		j, err := geo.NewJourney(sc.Net, []geo.SegmentID{CorridorMotorwayID, CorridorLinkID})
		if err != nil {
			return nil, err
		}
		aggressive := rng.Float64() < cfg.AggressiveFraction
		bias := 0.2 * rng.Float64()
		if aggressive {
			bias = 1.4 + rng.Float64()
		}
		if rng.Float64() < 0.3 {
			bias = -bias
		}
		mean, std := profile.MeanStd(geo.Motorway, 12, false)
		cars = append(cars, &car{
			id: trace.CarID(i), journey: j, aggressive: aggressive, biasK: bias,
			speed: mean + bias*std,
		})
	}

	res := &MobilityResult{Vehicles: cfg.Vehicles}
	warnCount := make(map[trace.CarID]int)
	recCount := make(map[trace.CarID]int)
	consumers := make([]*stream.Consumer, 0, len(roadBrokers))
	for _, rb := range roadBrokers {
		c, err := stream.NewConsumer(stream.NewInProcClient(rb.broker), stream.TopicOutData, 0)
		if err != nil {
			return nil, err
		}
		consumers = append(consumers, c)
	}

	dt := cfg.StepInterval
	for step := 0; step < 10_000; step++ {
		active := 0
		for _, c := range cars {
			if c.journey.Done() {
				continue
			}
			active++
			seg := c.journey.Segment()
			segType := sc.Net.Segment(seg).Type
			mean, std := profile.MeanStd(segType, 12, false)
			// First-order response toward the driver's habitual target,
			// bounded to ordinary acceleration so emitted accels match
			// the training distribution.
			target := mean + c.biasK*std + rng.NormFloat64()*std*0.2
			maxAccel := 1.5 * dt.Seconds() // km/h change per step
			delta := target - c.speed
			if delta > maxAccel {
				delta = maxAccel
			} else if delta < -maxAccel {
				delta = -maxAccel
			}
			prev := c.speed
			c.speed += delta
			if c.speed < 0 {
				c.speed = 0
			}
			speed := c.speed
			st, err := c.journey.Advance(speed, dt)
			if err != nil {
				return nil, err
			}
			if st.HandoverFrom != 0 {
				if err := cluster.Handover(c.id, st.HandoverFrom, st.Segment); err != nil {
					return nil, err
				}
				res.Handovers++
			}
			rec := trace.Record{
				Car:      c.id,
				Road:     st.Segment,
				RoadType: sc.Net.Segment(st.Segment).Type,
				Speed:    speed,
				Accel:    (speed - prev) / dt.Seconds(),
				Lat:      st.Position.Lat,
				Lon:      st.Position.Lon,
				Hour:     12,
				Day:      4,
			}
			payload := core.AppendRecord(stream.GetPayload(), rec)
			_, _, err = producers[st.Segment].Send(nil, payload)
			stream.PutPayload(payload)
			if err != nil {
				return nil, err
			}
			res.Records++
			recCount[c.id]++
		}
		if _, err := cluster.StepAll(); err != nil {
			return nil, fmt.Errorf("step %d: %w", step, err)
		}
		for _, cons := range consumers {
			msgs, err := cons.Poll(1 << 10)
			if err != nil {
				return nil, err
			}
			for _, m := range msgs {
				w, derr := core.DecodeWarning(m.Value)
				if derr != nil {
					continue
				}
				res.Warnings++
				warnCount[w.Car]++
			}
			stream.RecycleMessages(msgs)
		}
		if active == 0 {
			res.Steps = step + 1
			break
		}
	}

	var aggRate, normRate float64
	for _, c := range cars {
		rate := 0.0
		if recCount[c.id] > 0 {
			rate = float64(warnCount[c.id]) / float64(recCount[c.id])
		}
		if c.aggressive {
			res.Aggressive++
			aggRate += rate
			if warnCount[c.id] > 0 {
				res.AggressiveWarned++
			}
		} else {
			normRate += rate
			if warnCount[c.id] > 0 {
				res.NormalWarned++
			}
		}
	}
	if res.Aggressive > 0 {
		res.AggressiveWarnRate = aggRate / float64(res.Aggressive)
	}
	if n := res.Vehicles - res.Aggressive; n > 0 {
		res.NormalWarnRate = normRate / float64(n)
	}
	stats := cluster.Stats()
	res.PriorHits = stats["Link"].PriorHits
	return res, nil
}

// FormatMobility renders the mobility run.
func FormatMobility(res *MobilityResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "vehicles=%d (aggressive %d), steps=%d, records=%d\n",
		res.Vehicles, res.Aggressive, res.Steps, res.Records)
	fmt.Fprintf(&sb, "handovers=%d, link-RSU prior hits=%d, warnings=%d\n",
		res.Handovers, res.PriorHits, res.Warnings)
	fmt.Fprintf(&sb, "warned drivers: %d/%d aggressive (rate %.2f), %d/%d normal (rate %.2f)\n",
		res.AggressiveWarned, res.Aggressive, res.AggressiveWarnRate,
		res.NormalWarned, res.Vehicles-res.Aggressive, res.NormalWarnRate)
	return sb.String()
}
