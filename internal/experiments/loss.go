package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/netem"
	"cad3/internal/trace"
)

// The loss-impact study quantifies what the paper's limitations section
// (§VII-E) flags as unverified: real DSRC links drop frames, increasingly
// so toward the edge of the RSU's range. Telemetry loss turns into missed
// detections — an abnormal record that never reaches the RSU can never be
// warned about. This experiment spreads vehicles across the coverage
// radius, applies the distance-dependent loss model with adaptive MCS,
// and measures delivery and warning ratios per distance band.

// LossConfig configures the study.
type LossConfig struct {
	// Vehicles spread uniformly across the coverage radius. Values <= 0
	// select 64.
	Vehicles int
	// RangeMeters is the RSU coverage radius. Values <= 0 select 900.
	RangeMeters float64
	// Rounds of 10 Hz reporting. Values <= 0 select 200.
	Rounds int
	// Seed drives placement, loss and replay.
	Seed int64
	// Records / Detector as in LatencyConfig. Required.
	Records  []trace.Record
	Detector core.Detector
}

func (c LossConfig) withDefaults() LossConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 64
	}
	if c.RangeMeters <= 0 {
		c.RangeMeters = 900
	}
	if c.Rounds <= 0 {
		c.Rounds = 200
	}
	return c
}

// LossBand aggregates one distance band.
type LossBand struct {
	FromM, ToM   float64
	Sent         int64
	Delivered    int64
	Warnings     int64
	AbnormalSent int64
	AbnormalSeen int64
}

// DeliveryRatio returns delivered/sent.
func (b LossBand) DeliveryRatio() float64 {
	if b.Sent == 0 {
		return 0
	}
	return float64(b.Delivered) / float64(b.Sent)
}

// AbnormalCoverage returns the share of abnormal records that reached the
// RSU — the quantity lost frames eat into.
func (b LossBand) AbnormalCoverage() float64 {
	if b.AbnormalSent == 0 {
		return 0
	}
	return float64(b.AbnormalSeen) / float64(b.AbnormalSent)
}

// RunLossImpact executes the study: vehicles at fixed distances report at
// 10 Hz through a lossy adaptive-MCS medium; delivered records run
// through the detector.
func RunLossImpact(cfg LossConfig) ([]LossBand, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Records) == 0 || cfg.Detector == nil {
		return nil, fmt.Errorf("experiments: loss study needs records and a detector")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	start := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	medium, err := netem.NewMedium(netem.MediumConfig{
		Loss: &netem.LossModel{EdgeMeters: cfg.RangeMeters},
		Seed: cfg.Seed,
	})
	if err != nil {
		return nil, err
	}

	const bands = 6
	out := make([]LossBand, bands)
	for i := range out {
		out[i].FromM = float64(i) * cfg.RangeMeters / bands
		out[i].ToM = float64(i+1) * cfg.RangeMeters / bands
	}
	bandOf := func(d float64) *LossBand {
		i := int(d / cfg.RangeMeters * bands)
		if i >= bands {
			i = bands - 1
		}
		return &out[i]
	}

	// Fixed vehicle distances, uniform across the radius.
	dist := make([]float64, cfg.Vehicles)
	for v := range dist {
		dist[v] = (float64(v) + 0.5) * cfg.RangeMeters / float64(cfg.Vehicles)
	}

	now := start
	idx := 0
	for round := 0; round < cfg.Rounds; round++ {
		for v := 0; v < cfg.Vehicles; v++ {
			rec := cfg.Records[idx%len(cfg.Records)]
			idx++
			rec.Car = trace.CarID(v + 1)
			b := bandOf(dist[v])
			b.Sent++
			det, derr := cfg.Detector.Detect(rec, nil)
			abnormal := derr == nil && det.Abnormal()
			if abnormal {
				b.AbnormalSent++
			}
			_, okDelivered, terr := medium.TransmitFrom(fmt.Sprintf("v%d", v), core.RecordWireSize, now, dist[v])
			if terr != nil {
				return nil, terr
			}
			if !okDelivered {
				continue
			}
			b.Delivered++
			if abnormal {
				b.AbnormalSeen++
				b.Warnings++
			}
		}
		now = now.Add(100 * time.Millisecond)
		_ = rng
	}
	return out, nil
}

// FormatLossBands renders the study.
func FormatLossBands(bands []LossBand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%14s %8s %10s %12s %16s\n", "distance(m)", "sent", "delivered", "delivery", "abn-coverage")
	for _, b := range bands {
		fmt.Fprintf(&sb, "%6.0f-%-7.0f %8d %10d %11.1f%% %15.1f%%\n",
			b.FromM, b.ToM, b.Sent, b.Delivered, b.DeliveryRatio()*100, b.AbnormalCoverage()*100)
	}
	return sb.String()
}
