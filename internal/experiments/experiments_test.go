package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"cad3/internal/geo"
	"cad3/internal/netem"
)

var (
	scOnce sync.Once
	scVal  *Scenario
	scErr  error
)

func testScenario(t *testing.T) *Scenario {
	t.Helper()
	scOnce.Do(func() { scVal, scErr = BuildScenario(ScenarioConfig{Cars: 400, Seed: 77}) })
	if scErr != nil {
		t.Fatal(scErr)
	}
	return scVal
}

func TestScenarioShape(t *testing.T) {
	sc := testScenario(t)
	if len(sc.Train) == 0 || len(sc.Test) == 0 || len(sc.TestLink) < 100 {
		t.Fatalf("scenario sizes: train=%d test=%d link=%d", len(sc.Train), len(sc.Test), len(sc.TestLink))
	}
	if len(sc.Summaries) == 0 {
		t.Fatal("no evaluation summaries")
	}
	if sc.Net.Segment(CorridorMotorwayID) == nil || sc.Net.Segment(CorridorLinkID) == nil {
		t.Fatal("corridor segments missing")
	}
}

func TestModelComparisonOrdering(t *testing.T) {
	sc := testScenario(t)
	rows, err := RunModelComparison(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]ModelRow{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	c, a, x := byName["Centralized"], byName["AD3"], byName["CAD3"]
	t.Logf("\n%s", FormatModelRows(rows))
	if !(x.F1 > a.F1 && a.F1 > c.F1) {
		t.Errorf("F1 ordering violated: CAD3 %.4f, AD3 %.4f, centralized %.4f", x.F1, a.F1, c.F1)
	}
	if !(x.FNRate < a.FNRate && a.FNRate < c.FNRate) {
		t.Errorf("FN ordering violated: CAD3 %.4f, AD3 %.4f, centralized %.4f", x.FNRate, a.FNRate, c.FNRate)
	}
	if !(x.ExpectedAccidents < a.ExpectedAccidents && a.ExpectedAccidents < c.ExpectedAccidents) {
		t.Errorf("E(Lambda) ordering violated: %.1f / %.1f / %.1f",
			x.ExpectedAccidents, a.ExpectedAccidents, c.ExpectedAccidents)
	}
	if FormatModelRows(rows) == "" {
		t.Error("empty format")
	}
}

func TestMesoscopicTimeline(t *testing.T) {
	sc := testScenario(t)
	res, err := RunMesoscopicTimeline(sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Timeline) == 0 {
		t.Fatal("empty timeline")
	}
	out := FormatMesoscopic(res)
	t.Logf("\n%s", out)
	if !strings.Contains(out, "CAD3") || !strings.Contains(out, "truth") {
		t.Error("format missing strips")
	}
	// Figure 8's core claim is about missed abnormal points: on the
	// aggressive driver's trip CAD3 must miss no more abnormal records
	// than AD3, which must miss no more than centralized.
	fn := func(pick func(TimelineRow) int) int {
		n := 0
		for _, pt := range res.Timeline {
			if pt.Truth == 0 && pick(pt) == 1 { // abnormal waved through
				n++
			}
		}
		return n
	}
	fnC := fn(func(r TimelineRow) int { return r.Centralized })
	fnA := fn(func(r TimelineRow) int { return r.AD3 })
	fnX := fn(func(r TimelineRow) int { return r.CAD3 })
	if fnX > fnA || fnA > fnC {
		t.Errorf("trip FN ordering violated: CAD3=%d AD3=%d centralized=%d", fnX, fnA, fnC)
	}
}

func TestRunLatencyScalingFigure6a(t *testing.T) {
	pool, det, err := BuildLatencyInputs(5)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunLatencyScaling([]int{8, 64}, LatencyConfig{
		Duration: 2 * time.Second,
		Seed:     5,
		Records:  pool,
		Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatLatencyResults(results))
	for _, r := range results {
		if r.Warnings == 0 {
			t.Fatalf("%d vehicles: no warnings disseminated", r.Vehicles)
		}
		total := r.Report.Total.Mean
		if total <= 0 || total > 60*time.Millisecond {
			t.Errorf("%d vehicles: total latency %v, want (0, 60ms]", r.Vehicles, total)
		}
		// Paper: ~20 kb/s per vehicle.
		if r.PerVehicleBps < 10_000 || r.PerVehicleBps > 40_000 {
			t.Errorf("%d vehicles: per-vehicle rate %.0f b/s, want ~20 kb/s", r.Vehicles, r.PerVehicleBps)
		}
	}
	// More vehicles -> more total bandwidth and >= latency.
	if results[1].TotalBps <= results[0].TotalBps {
		t.Error("total bandwidth should grow with vehicles")
	}
	if results[1].Report.Processing.Mean <= results[0].Report.Processing.Mean {
		t.Error("processing time should grow with vehicles")
	}
}

// TestLatencyLiveTraceMatchesOffline pins the wire-trace measurement path
// against the offline reconstruction: every warning is measured twice —
// once through the arrivals/pending bookkeeping maps, once through the
// TraceContext stamped into the payloads in flight — and the two paths
// must agree. The live path truncates the detection instant to the
// warning's millisecond DetectedTsMs field only on the offline side, so
// per-component means may differ by strictly less than 1 ms.
func TestLatencyLiveTraceMatchesOffline(t *testing.T) {
	pool, det, err := BuildLatencyInputs(9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLatency(LatencyConfig{
		Vehicles: 16,
		Duration: 2 * time.Second,
		Seed:     9,
		Records:  pool,
		Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Warnings == 0 {
		t.Fatal("no warnings disseminated")
	}
	// Every offline-scored warning must also complete its trace.
	if int64(res.LiveTraced) != res.Warnings {
		t.Fatalf("LiveTraced = %d, Warnings = %d: trace contexts lost in flight",
			res.LiveTraced, res.Warnings)
	}
	within := func(name string, live, offline time.Duration) {
		diff := live - offline
		if diff < 0 {
			diff = -diff
		}
		if diff >= time.Millisecond {
			t.Errorf("%s mean: live %v vs offline %v (diff %v, want < 1ms)",
				name, live, offline, diff)
		}
	}
	within("tx", res.Live.Tx.Mean, res.Report.Tx.Mean)
	within("queue", res.Live.Queue.Mean, res.Report.Queue.Mean)
	within("processing", res.Live.Processing.Mean, res.Report.Processing.Mean)
	within("dissemination", res.Live.Dissemination.Mean, res.Report.Dissemination.Mean)
	within("total", res.Live.Total.Mean, res.Report.Total.Mean)
	// Tx uses the same two instants on both paths; the only divergence is
	// the stamps' truncation to whole microseconds.
	if diff := res.Live.Tx.Mean - res.Report.Tx.Mean; diff < -2*time.Microsecond || diff > 2*time.Microsecond {
		t.Errorf("tx means differ by %v: live %v offline %v (want within stamp truncation)",
			diff, res.Live.Tx.Mean, res.Report.Tx.Mean)
	}
}

func TestRunLatency256UnderPaperBounds(t *testing.T) {
	if testing.Short() {
		t.Skip("256-vehicle DES run in -short mode")
	}
	pool, det, err := BuildLatencyInputs(6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunLatency(LatencyConfig{
		Vehicles: 256,
		Duration: 2 * time.Second,
		Seed:     6,
		Records:  pool,
		Detector: det,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("256 vehicles: total=%v tx=%v queue=%v proc=%v diss=%v, %.2f Mb/s",
		res.Report.Total.Mean, res.Report.Tx.Mean, res.Report.Queue.Mean,
		res.Report.Processing.Mean, res.Report.Dissemination.Mean, res.TotalBps/1e6)
	// The paper's headline: < 50 ms end-to-end at 256 vehicles, ~5 Mb/s
	// total, well under the 27 Mb/s DSRC capacity.
	if res.Report.Total.Mean > 60*time.Millisecond {
		t.Errorf("total latency %v exceeds the 60 ms envelope (paper: ~48 ms on Ethernet Tx; we model DSRC MAC Tx)", res.Report.Total.Mean)
	}
	if res.TotalBps > 8e6 {
		t.Errorf("total bandwidth %.2f Mb/s, paper reports ~5", res.TotalBps/1e6)
	}
	if res.TotalBps >= netem.DSRCBandwidthBps {
		t.Error("bandwidth exceeds DSRC capacity")
	}
}

func TestRunMultiRSUFigure6bd(t *testing.T) {
	pool, det, err := BuildLatencyInputs(7)
	if err != nil {
		t.Fatal(err)
	}
	results, err := RunMultiRSU(MultiRSUConfig{
		MotorwayRSUs:   2,
		VehiclesPerRSU: 32,
		Duration:       2 * time.Second,
		Seed:           7,
		Records:        pool,
		Detector:       det,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatRSUResults(results))
	if len(results) != 3 {
		t.Fatalf("results = %d", len(results))
	}
	link := results[0]
	if !link.IsLink {
		t.Fatal("first result should be the link RSU")
	}
	if link.CoDataBps <= 0 {
		t.Error("link RSU should receive CO-DATA traffic")
	}
	for _, r := range results[1:] {
		if r.CoDataBps != 0 {
			t.Errorf("%s should not receive CO-DATA", r.Name)
		}
		// Figure 6d: the link RSU's total is slightly higher.
		if link.TotalBps() <= r.UplinkBps {
			t.Errorf("link total %.0f should exceed %s uplink %.0f", link.TotalBps(), r.Name, r.UplinkBps)
		}
	}
	for _, r := range results {
		if r.Warnings == 0 {
			t.Errorf("%s disseminated no warnings", r.Name)
		}
		// Figure 6b: dissemination ~17 ms (10 ms poll + 7.2 +- 4.4).
		if r.Dissemination.Mean < 5*time.Millisecond || r.Dissemination.Mean > 30*time.Millisecond {
			t.Errorf("%s dissemination %v, want ~17 ms", r.Name, r.Dissemination.Mean)
		}
	}
}

func TestRunMACAnalysis(t *testing.T) {
	rows, err := RunMACAnalysis()
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatMACRows(rows))
	var mcs3At256, mcs8At256, mcs8At400 MACRow
	for _, r := range rows {
		switch {
		case r.Vehicles == 256 && r.MCS == netem.MCS3:
			mcs3At256 = r
		case r.Vehicles == 256 && r.MCS == netem.MCS8:
			mcs8At256 = r
		case r.Vehicles == 400 && r.MCS == netem.MCS8:
			mcs8At400 = r
		}
	}
	if mcs3At256.AccessTime <= mcs8At256.AccessTime {
		t.Error("MCS3 should be slower than MCS8")
	}
	if !mcs8At256.FitsPeriod {
		t.Error("256 vehicles @ MCS8 should fit the 100 ms period")
	}
	if mcs8At400.AccessTime > 85*time.Millisecond {
		t.Errorf("400 vehicles @ MCS8 = %v, paper says under 85 ms", mcs8At400.AccessTime)
	}
}

func TestRunTable5(t *testing.T) {
	fromStats, fromNet, err := RunTable5(0.1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if geo.TotalRSUs(fromStats) != 4997 {
		t.Errorf("stats total = %d", geo.TotalRSUs(fromStats))
	}
	if len(fromNet) == 0 {
		t.Error("empty network plan")
	}
	if FormatTable5(fromStats) == "" {
		t.Error("empty format")
	}
}

func TestRunTable6(t *testing.T) {
	rows, err := RunTable6(0.05, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lights, lamps := rows[0], rows[1]
	if lights.AvgM < 180 || lights.AvgM > 320 {
		t.Errorf("traffic-light spacing %.1f, want ~245 (Table VI)", lights.AvgM)
	}
	if lamps.AvgM >= lights.AvgM {
		t.Error("lamp poles should be denser than traffic lights")
	}
	if lamps.Count <= lights.Count {
		t.Error("lamp poles should outnumber traffic lights")
	}
	if FormatTable6(rows) == "" {
		t.Error("empty format")
	}
}

func TestRunCityScale(t *testing.T) {
	c := RunCityScale(2_000_000)
	// Paper §II-B: 2M vehicles at 200 B / 10 Hz = 4 GB/s centralized.
	if c.CentralizedBytesPerSec != 4e9 {
		t.Errorf("centralized = %.2e B/s, want 4e9", c.CentralizedBytesPerSec)
	}
	// Paper §VI-D2: 51,129 trunks x 256 vehicles ~= 13M capacity.
	if c.SystemCapacity < 13_000_000 || c.SystemCapacity > 13_200_000 {
		t.Errorf("capacity = %d, want ~13.1M", c.SystemCapacity)
	}
	if c.PerEdgeBandwidthShare <= 0 || c.PerEdgeBandwidthShare > 0.3 {
		t.Errorf("edge share = %.3f, paper says ~1/5", c.PerEdgeBandwidthShare)
	}
	if FormatCityScale(c) == "" {
		t.Error("empty format")
	}
	if d := RunCityScale(0); d.ConcurrentVehicles != 2_000_000 {
		t.Error("default vehicles not applied")
	}
}

func TestRunFigure2AndTable3(t *testing.T) {
	sc := testScenario(t)
	series := RunFigure2(sc)
	if len(series) != 4 {
		t.Fatalf("series = %d", len(series))
	}
	for _, s := range series {
		if s.RoadType == geo.Motorway && !s.Weekend {
			// Motorway weekday rush (8h) slower than late evening (22h)
			// in the generative model.
			if s.Model[8] >= s.Model[22] {
				t.Error("model rush-hour dip missing")
			}
		}
	}
	if FormatFigure2(series) == "" {
		t.Error("empty figure 2 format")
	}

	rows := RunTable3(sc)
	if len(rows) != 3 || rows[0].Region != "Shenzhen" {
		t.Fatalf("table 3 rows = %+v", rows)
	}
	if rows[0].Trajectories == 0 || rows[0].Cars == 0 {
		t.Error("empty city row")
	}
	if FormatTable3(rows) == "" {
		t.Error("empty table 3 format")
	}
}

func TestAblationSweeps(t *testing.T) {
	sc := testScenario(t)

	weights, err := RunCollabWeightSweep(sc, []float64{0.25, 0.5, 0.75})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatWeightRows(weights))
	if len(weights) != 3 {
		t.Fatalf("weight rows = %d", len(weights))
	}
	for _, w := range weights {
		if w.F1 <= 0 || w.F1 > 1 {
			t.Errorf("weight %.2f: F1 %.4f out of range", w.Weight, w.F1)
		}
	}

	depths, err := RunSummaryDepthSweep(sc, []int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatDepthRows(depths))
	if len(depths) != 2 {
		t.Fatalf("depth rows = %d", len(depths))
	}

	features, err := RunDTFeatureAblation(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFeatureRows(features))
	if len(features) != 5 {
		t.Fatalf("feature rows = %d", len(features))
	}
	full := features[0]
	if full.Features != "hour+pX+classNB" {
		t.Fatalf("first variant = %q", full.Features)
	}
}

func TestIntervalSweeps(t *testing.T) {
	pool, det, err := BuildLatencyInputs(8)
	if err != nil {
		t.Fatal(err)
	}
	base := LatencyConfig{Vehicles: 16, Duration: time.Second, Seed: 8, Records: pool, Detector: det}

	batch, err := RunBatchIntervalSweep(base, []time.Duration{25 * time.Millisecond, 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatIntervalRows(batch))
	if batch[1].QueueMean <= batch[0].QueueMean {
		t.Error("larger batch window should increase queue wait")
	}

	poll, err := RunPollIntervalSweep(base, []time.Duration{time.Millisecond, 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatIntervalRows(poll))
	if poll[1].DissMean <= poll[0].DissMean {
		t.Error("slower polling should increase dissemination latency")
	}
}

func TestLatencyValidation(t *testing.T) {
	pool, det, err := BuildLatencyInputs(9)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunLatency(LatencyConfig{Records: pool, Detector: det}); err == nil {
		t.Error("want error for zero vehicles")
	}
	if _, err := RunLatency(LatencyConfig{Vehicles: 4, Detector: det}); err == nil {
		t.Error("want error for no records")
	}
	if _, err := RunLatency(LatencyConfig{Vehicles: 4, Records: pool}); err == nil {
		t.Error("want error for no detector")
	}
	if _, err := RunMultiRSU(MultiRSUConfig{}); err == nil {
		t.Error("want error for missing inputs")
	}
}

func TestRunDetectorComparison(t *testing.T) {
	sc := testScenario(t)
	rows, err := RunDetectorComparison(sc)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatDetectorRows(rows))
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Accuracy < 0.6 || r.Accuracy > 1 {
			t.Errorf("%s accuracy %.3f implausible", r.Detector, r.Accuracy)
		}
		if r.F1 <= 0 || r.F1 > 1 {
			t.Errorf("%s F1 %.3f out of range", r.Detector, r.F1)
		}
	}
	if FormatDetectorRows(rows) == "" {
		t.Error("empty format")
	}
}

func TestRunMobileHandover(t *testing.T) {
	sc := testScenario(t)
	res, err := RunMobileHandover(sc, MobilityConfig{Vehicles: 16, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatMobility(res))
	if res.Handovers != int64(res.Vehicles) {
		t.Errorf("handovers = %d, want %d (one per vehicle)", res.Handovers, res.Vehicles)
	}
	if res.PriorHits == 0 {
		t.Error("link RSU never used a forwarded prior")
	}
	if res.Records == 0 || res.Steps == 0 {
		t.Errorf("run too small: %+v", res)
	}
	if res.Aggressive > 0 && res.AggressiveWarned == 0 {
		t.Error("no aggressive driver was ever warned")
	}
	// Driver-awareness: aggressive drivers must be warned far more often
	// per record than ordinary drivers.
	if res.Aggressive > 0 && res.Vehicles > res.Aggressive {
		if res.AggressiveWarnRate <= 2*res.NormalWarnRate {
			t.Errorf("aggressive warn rate %.3f should be at least 2x normal %.3f",
				res.AggressiveWarnRate, res.NormalWarnRate)
		}
	}
}

func TestRunInterference(t *testing.T) {
	res, err := RunInterference(InterferenceConfig{RSUs: 20, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatInterference(res))
	if res.NaiveConflicts == 0 {
		t.Fatal("dense single-channel deployment must conflict")
	}
	if res.ManagedConflicts >= res.NaiveConflicts {
		t.Errorf("management left %d conflicts of %d naive", res.ManagedConflicts, res.NaiveConflicts)
	}
	if res.MCS != netem.MCS8 {
		t.Errorf("125 m spacing should select MCS8, got %v", res.MCS)
	}
	if !res.Dense400OK {
		t.Error("400 vehicles should fit under 85 ms at the dense mode (§VII-B)")
	}
	if FormatInterference(res) == "" {
		t.Error("empty format")
	}
}

func TestRunBackhaulAnalysis(t *testing.T) {
	rows, err := RunBackhaulAnalysis(3)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatBackhaulRows(rows))
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Ordering: ethernet < 5g < lte.
	if !(rows[0].Mean < rows[1].Mean && rows[1].Mean < rows[2].Mean) {
		t.Errorf("backhaul ordering broken: %v", rows)
	}
	for _, r := range rows {
		if r.P95 < r.Mean {
			t.Errorf("%s: p95 %v below mean %v", r.Kind, r.P95, r.Mean)
		}
	}
}

func TestRunLossImpact(t *testing.T) {
	pool, det, err := BuildLatencyInputs(11)
	if err != nil {
		t.Fatal(err)
	}
	bands, err := RunLossImpact(LossConfig{Vehicles: 48, Rounds: 100, Seed: 11, Records: pool, Detector: det})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatLossBands(bands))
	if len(bands) != 6 {
		t.Fatalf("bands = %d", len(bands))
	}
	near, far := bands[0], bands[len(bands)-1]
	if near.Sent == 0 || far.Sent == 0 {
		t.Fatal("empty bands")
	}
	if near.DeliveryRatio() <= far.DeliveryRatio() {
		t.Errorf("delivery should fall with distance: near %.3f vs far %.3f",
			near.DeliveryRatio(), far.DeliveryRatio())
	}
	if near.DeliveryRatio() < 0.95 {
		t.Errorf("near band delivery %.3f too low", near.DeliveryRatio())
	}
	if far.DeliveryRatio() > 0.8 {
		t.Errorf("far band delivery %.3f too high for the edge of range", far.DeliveryRatio())
	}
	// Abnormal coverage follows delivery.
	if near.AbnormalCoverage() <= far.AbnormalCoverage() {
		t.Errorf("abnormal coverage should fall with distance")
	}
	if _, err := RunLossImpact(LossConfig{}); err == nil {
		t.Error("want error for missing inputs")
	}
}

func TestRunChainMobility(t *testing.T) {
	sc := testScenario(t)
	res, err := RunChainMobility(sc, ChainConfig{Hops: 4, Vehicles: 12, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatChain(res))
	if len(res.Hops) != 4 {
		t.Fatalf("hops = %d", len(res.Hops))
	}
	// Every boundary crossed by every vehicle: (hops-1) x vehicles.
	if res.Handovers != int64(3*res.Vehicles) {
		t.Errorf("handovers = %d, want %d", res.Handovers, 3*res.Vehicles)
	}
	// The summary is carried on: every hop after the first received one
	// summary per vehicle and used priors.
	for i, h := range res.Hops {
		if h.Records == 0 {
			t.Errorf("hop %d saw no records", i)
		}
		if i == 0 {
			continue
		}
		if h.SummariesReceived != int64(res.Vehicles) {
			t.Errorf("hop %d received %d summaries, want %d", i, h.SummariesReceived, res.Vehicles)
		}
		if h.PriorHits == 0 {
			t.Errorf("hop %d never used a prior", i)
		}
	}
	// Driver-awareness persists to the final hop.
	if res.Aggressive > 0 && res.Vehicles > res.Aggressive {
		if res.FinalAggressiveWarnRate <= res.FinalNormalWarnRate {
			t.Errorf("final-hop warn rates: aggressive %.3f <= normal %.3f",
				res.FinalAggressiveWarnRate, res.FinalNormalWarnRate)
		}
	}
}
