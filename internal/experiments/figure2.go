package experiments

import (
	"fmt"
	"strings"

	"cad3/internal/geo"
	"cad3/internal/trace"
)

// SpeedProfileSeries is one curve of Figure 2: per-hour mean speed for a
// road type and day class, both as the generative model produces it and
// as measured from generated records.
type SpeedProfileSeries struct {
	RoadType geo.RoadType
	Weekend  bool
	Model    [24]float64
	Measured [24]float64
}

// RunFigure2 regenerates the Figure 2 speed-profile comparison from a
// scenario's filtered records.
func RunFigure2(sc *Scenario) []SpeedProfileSeries {
	profile := trace.DefaultSpeedProfile()
	all := append(append([]trace.Record(nil), sc.Train...), sc.Test...)
	var out []SpeedProfileSeries
	for _, rt := range []geo.RoadType{geo.Motorway, geo.MotorwayLink} {
		for _, weekend := range []bool{false, true} {
			out = append(out, SpeedProfileSeries{
				RoadType: rt,
				Weekend:  weekend,
				Model:    profile.HourlyMeans(rt, weekend),
				Measured: trace.SpeedSeries(all, rt, weekend),
			})
		}
	}
	return out
}

// FormatFigure2 renders the hourly series.
func FormatFigure2(series []SpeedProfileSeries) string {
	var sb strings.Builder
	for _, s := range series {
		day := "weekday"
		if s.Weekend {
			day = "weekend"
		}
		fmt.Fprintf(&sb, "%s (%s) measured km/h by hour:\n  ", s.RoadType, day)
		for h := 0; h < 24; h++ {
			if s.Measured[h] == 0 {
				fmt.Fprintf(&sb, "%6s", "-")
			} else {
				fmt.Fprintf(&sb, "%6.1f", s.Measured[h])
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// RunTable3 reproduces the dataset-statistics rows (Table III) from a
// scenario's filtered records.
func RunTable3(sc *Scenario) []trace.StatsRow {
	all := append(append([]trace.Record(nil), sc.Train...), sc.Test...)
	return trace.DatasetStats(all, []geo.RoadType{geo.Motorway, geo.MotorwayLink})
}

// FormatTable3 renders the Table III reproduction.
func FormatTable3(rows []trace.StatsRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %8s %12s %14s\n", "region", "#cars", "#trips", "mean-speed", "#trajectories")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %8d %8d %12.1f %14d\n",
			r.Region, r.Cars, r.Trips, r.MeanSpeedKmh, r.Trajectories)
	}
	return sb.String()
}
