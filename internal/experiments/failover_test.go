package experiments

import (
	"testing"
)

// TestFailoverStudy is the acceptance drill for the replicated broker:
// kill the IN-DATA partition leader with zero warning mid-replay and
// require (a) zero acks=all record loss, (b) warning p99 back within 2x
// the pre-kill baseline after recovery, (c) exactly-once OUT-DATA
// delivery across the mid-run consumer-group rebalance, and (d) the
// revived replica back in every ISR.
func TestFailoverStudy(t *testing.T) {
	sc := testScenario(t)
	res, err := RunFailoverStudy(FailoverConfig{Scenario: sc, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatFailoverResult(res))

	// The failover actually happened: a leader died, a window opened,
	// an election closed it.
	if res.KilledReplica == "" {
		t.Fatal("the schedule never killed a leader")
	}
	if res.Elections == 0 {
		t.Error("no election ran after the leader kill")
	}
	if res.NewLeader == res.KilledReplica || res.NewLeader == "" {
		t.Errorf("IN-DATA/0 leader is %q after killing %q — no failover", res.NewLeader, res.KilledReplica)
	}
	if res.FailedProduces == 0 {
		t.Error("no produce was refused — the leaderless window never opened")
	}

	// (a) The headline invariant: nothing acked at acks=all is gone.
	if res.AckedRecords == 0 {
		t.Fatal("empty acks=all ledger")
	}
	if res.LostAcked != 0 {
		t.Errorf("lost %d of %d acked records across the failover", res.LostAcked, res.AckedRecords)
	}

	// (b) Disruption is bounded to the failover window: the recovered
	// phase's warning p99 is within 2x the pre-kill baseline (both are
	// same-replay-step deliveries in the healthy steady state).
	pre, rec := res.Phases[0], res.Phases[2]
	if pre.Warnings == 0 || rec.Warnings == 0 {
		t.Fatalf("phases produced no warnings: pre=%d recovered=%d", pre.Warnings, rec.Warnings)
	}
	if rec.WarnP99 > 2*pre.WarnP99 {
		t.Errorf("recovered warning p99 %v exceeds 2x pre-kill baseline %v", rec.WarnP99, pre.WarnP99)
	}

	// (c) Exactly-once handoff across the rebalance.
	if res.Generations < 2 {
		t.Errorf("generations = %d, want >= 2 (w1 join, w2 join)", res.Generations)
	}
	if res.Revoked == 0 || res.Assigned == 0 {
		t.Errorf("rebalance hooks observed revoked=%d assigned=%d, want both > 0", res.Revoked, res.Assigned)
	}
	if res.DupDeliveries != 0 {
		t.Errorf("group delivered %d duplicate offsets", res.DupDeliveries)
	}
	if res.MissedDeliveries != 0 {
		t.Errorf("group skipped %d offsets", res.MissedDeliveries)
	}
	if int64(res.Delivered) != res.OutHighWater {
		t.Errorf("delivered %d != %d produced warnings", res.Delivered, res.OutHighWater)
	}

	// (d) Revive + resync closed the loop: every partition's ISR is back
	// to full strength.
	if res.FinalISRSize != int64(res.Replicas) {
		t.Errorf("final min ISR = %d, want %d (revived replica never rejoined)",
			res.FinalISRSize, res.Replicas)
	}
}

// TestFailoverStudyDeterministic re-runs the study on the same inputs
// and requires an identical outcome — the failover drill is a pure
// function of (scenario, fractions).
func TestFailoverStudyDeterministic(t *testing.T) {
	sc := testScenario(t)
	cfg := FailoverConfig{Scenario: sc, Seed: 7}
	a, err := RunFailoverStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFailoverStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Phases {
		if a.Phases[i] != b.Phases[i] {
			t.Errorf("phase %s diverged: %+v vs %+v", a.Phases[i].Name, a.Phases[i], b.Phases[i])
		}
	}
	if a.AckedRecords != b.AckedRecords || a.FailedProduces != b.FailedProduces ||
		a.Delivered != b.Delivered || a.Elections != b.Elections {
		t.Errorf("accounting diverged: %+v vs %+v", a, b)
	}
}

func TestFailoverStudyValidation(t *testing.T) {
	if _, err := RunFailoverStudy(FailoverConfig{}); err == nil {
		t.Error("want error without a scenario")
	}
	sc := testScenario(t)
	if _, err := RunFailoverStudy(FailoverConfig{
		Scenario: sc, KillFrac: 0.8, JoinFrac: 0.5, ReviveFrac: 0.9,
	}); err == nil {
		t.Error("want error for unordered fractions")
	}
}
