package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/metrics"
	"cad3/internal/netem"
)

// The access-link scalability study (§VII-B): a dense RSU deployment must
// avoid co-channel interference between adjacent nodes. This experiment
// places RSUs along a congested corridor at the paper's dense spacing
// (125 m), assigns service channels with the manager, and measures the
// residual co-channel conflicts — then injects interference reports and
// counts the resulting channel switches.

// InterferenceConfig configures the study.
type InterferenceConfig struct {
	// RSUs along the corridor. Values <= 0 select 20.
	RSUs int
	// SpacingMeters between adjacent RSUs. Values <= 0 select 125 (the
	// paper's dense-deployment example).
	SpacingMeters float64
	// InterferenceRangeMeters for co-channel conflict. Values <= 0
	// select 600.
	InterferenceRangeMeters float64
	// Seed drives the interference reports.
	Seed int64
}

func (c InterferenceConfig) withDefaults() InterferenceConfig {
	if c.RSUs <= 0 {
		c.RSUs = 20
	}
	if c.SpacingMeters <= 0 {
		c.SpacingMeters = 125
	}
	if c.InterferenceRangeMeters <= 0 {
		c.InterferenceRangeMeters = 600
	}
	return c
}

// InterferenceResult summarises the study.
type InterferenceResult struct {
	RSUs          int
	SpacingMeters float64
	// NaiveConflicts is the co-channel pair count if every RSU used one
	// shared channel (the no-management baseline).
	NaiveConflicts int
	// ManagedConflicts is the count after channel assignment.
	ManagedConflicts int
	// Switches performed while reacting to injected interference.
	Switches int
	// MCS is the modulation the dense deployment uses and the resulting
	// per-RSU capacity check (400 vehicles under 85 ms, §VII-B).
	MCS            netem.MCS
	Dense400OK     bool
	Dense400Access string
}

// RunInterference executes the study.
func RunInterference(cfg InterferenceConfig) (*InterferenceResult, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Baseline: all on one channel — every pair within range conflicts.
	naive := 0
	for i := 0; i < cfg.RSUs; i++ {
		for j := i + 1; j < cfg.RSUs; j++ {
			if float64(j-i)*cfg.SpacingMeters <= cfg.InterferenceRangeMeters {
				naive++
			}
		}
	}

	mgr := netem.NewChannelManager(cfg.InterferenceRangeMeters, 0.5)
	for i := 0; i < cfg.RSUs; i++ {
		name := fmt.Sprintf("rsu-%02d", i)
		if _, err := mgr.AddSite(name, float64(i)*cfg.SpacingMeters, 0); err != nil {
			return nil, err
		}
	}
	managed := len(mgr.Conflicts())

	// Inject interference reports on the conflicted sites.
	for round := 0; round < 3; round++ {
		for _, pair := range mgr.Conflicts() {
			if _, err := mgr.ReportInterference(pair[0], 0.6+0.4*rng.Float64()); err != nil {
				return nil, err
			}
		}
	}

	// Per-RSU capacity at the dense deployment's modulation.
	mcs := netem.AdaptMCS(cfg.SpacingMeters)
	model := netem.MACModel{}
	_, access, err := model.FitsReportingPeriod(400, netem.ReportBytes, mcs)
	if err != nil {
		return nil, err
	}
	return &InterferenceResult{
		RSUs:             cfg.RSUs,
		SpacingMeters:    cfg.SpacingMeters,
		NaiveConflicts:   naive,
		ManagedConflicts: managed,
		Switches:         mgr.Switches(),
		MCS:              mcs,
		Dense400OK:       access <= 85_000_000, // 85 ms in ns
		Dense400Access:   access.String(),
	}, nil
}

// FormatInterference renders the study.
func FormatInterference(res *InterferenceResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d RSUs at %.0f m spacing\n", res.RSUs, res.SpacingMeters)
	fmt.Fprintf(&sb, "co-channel conflicts: %d naive (single channel) -> %d managed\n",
		res.NaiveConflicts, res.ManagedConflicts)
	fmt.Fprintf(&sb, "channel switches under injected interference: %d\n", res.Switches)
	fmt.Fprintf(&sb, "dense mode %s: 400 vehicles in %s (paper: under 85 ms) ok=%v\n",
		res.MCS, res.Dense400Access, res.Dense400OK)
	return sb.String()
}

// BackhaulRow is one row of the inter-RSU link comparison (§IV-A / §VII-D:
// Ethernet where RSUs are cabled, LTE/5G beyond cable reach).
type BackhaulRow struct {
	Kind netem.BackhaulKind
	Mean time.Duration
	P95  time.Duration
}

// RunBackhaulAnalysis samples the one-way delivery delay of a CO-DATA
// summary (~300 B) over each link technology.
func RunBackhaulAnalysis(seed int64) ([]BackhaulRow, error) {
	const payload = 300
	const samples = 2000
	kinds := []netem.BackhaulKind{netem.BackhaulEthernet, netem.Backhaul5G, netem.BackhaulLTE}
	rows := make([]BackhaulRow, 0, len(kinds))
	for _, kind := range kinds {
		link, err := netem.NewBackhaul(kind, seed)
		if err != nil {
			return nil, err
		}
		durs := make([]time.Duration, samples)
		for i := range durs {
			durs[i] = link.Delay(payload)
		}
		s := metrics.Summarize(durs)
		rows = append(rows, BackhaulRow{Kind: kind, Mean: s.Mean, P95: s.P95})
	}
	return rows, nil
}

// FormatBackhaulRows renders the comparison.
func FormatBackhaulRows(rows []BackhaulRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %12s %12s\n", "backhaul", "mean", "p95")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-10s %12s %12s\n", r.Kind,
			r.Mean.Round(10*time.Microsecond), r.P95.Round(10*time.Microsecond))
	}
	return sb.String()
}
