package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// The paper's mesoscopic mechanism is recursive: "upon vehicle handover,
// the former RSU passes a prediction summary to the next, the process
// which is carried on" (§I). The chain experiment verifies the carry-on:
// vehicles drive a route of several road classes, each covered by its own
// RSU; every boundary forwards the local summary to the next RSU, whose
// collaborative detector fuses it — so driver-awareness survives the whole
// trip, not just one handover.

// ChainConfig configures the multi-hop run.
type ChainConfig struct {
	// Hops is the number of chained RSUs. Values <= 0 select 4.
	Hops int
	// Vehicles on the route. Values <= 0 select 16.
	Vehicles int
	// AggressiveFraction of drivers. Values <= 0 select 0.4.
	AggressiveFraction float64
	// SegmentMeters per hop. Values <= 0 select 700.
	SegmentMeters float64
	// Seed drives driver behaviour.
	Seed int64
}

func (c ChainConfig) withDefaults() ChainConfig {
	if c.Hops <= 0 {
		c.Hops = 4
	}
	if c.Vehicles <= 0 {
		c.Vehicles = 16
	}
	if c.AggressiveFraction <= 0 {
		c.AggressiveFraction = 0.4
	}
	if c.SegmentMeters <= 0 {
		c.SegmentMeters = 700
	}
	return c
}

// ChainHop summarises one RSU of the chain.
type ChainHop struct {
	Name              string
	RoadType          geo.RoadType
	Records           int64
	Warnings          int64
	SummariesReceived int64
	SummariesSent     int64
	PriorHits         int64
}

// ChainResult summarises the run.
type ChainResult struct {
	Hops      []ChainHop
	Vehicles  int
	Steps     int
	Handovers int64
	// Warn rates per driver class at the FINAL hop — where the summary
	// has been carried across every boundary.
	FinalAggressiveWarnRate float64
	FinalNormalWarnRate     float64
	Aggressive              int
}

// chainRoadTypes cycles through road classes in decreasing speed order.
var chainRoadTypes = []geo.RoadType{
	geo.Motorway, geo.MotorwayLink, geo.Primary, geo.Secondary,
	geo.Tertiary, geo.Residential,
}

// RunChainMobility builds an n-hop road chain with one RSU per segment
// (hop 0 standalone AD3, every later hop a CAD3 whose upstream is the
// previous hop) and drives a fleet down it.
func RunChainMobility(sc *Scenario, cfg ChainConfig) (*ChainResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Hops > len(chainRoadTypes) {
		cfg.Hops = len(chainRoadTypes)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Fresh chain network, independent of the scenario's.
	net := geo.NewNetwork(0)
	segIDs := make([]geo.SegmentID, cfg.Hops)
	cursor := geo.Destination(geo.ShenzhenCenter, 10, 8000)
	for i := 0; i < cfg.Hops; i++ {
		id := geo.SegmentID(800001 + i)
		end := geo.Destination(cursor, 90, cfg.SegmentMeters)
		seg, err := geo.NewSegment(id, chainRoadTypes[i], fmt.Sprintf("chain-%d", i),
			[]geo.Point{cursor, end})
		if err != nil {
			return nil, err
		}
		if err := net.AddSegment(seg); err != nil {
			return nil, err
		}
		if i > 0 {
			if err := net.Connect(segIDs[i-1], id); err != nil {
				return nil, err
			}
		}
		segIDs[i] = id
		cursor = end
	}

	// Detectors: hop 0 standalone; later hops collaborative with the
	// previous hop as upstream — the paper's carried-on summary chain.
	detectors := make([]core.Detector, cfg.Hops)
	upstreams := make([]*core.AD3, cfg.Hops)
	for i := 0; i < cfg.Hops; i++ {
		ad3 := core.NewAD3(chainRoadTypes[i])
		if err := ad3.Train(sc.Train, sc.Labeler); err != nil {
			return nil, fmt.Errorf("chain hop %d AD3: %w", i, err)
		}
		upstreams[i] = ad3
		if i == 0 {
			detectors[i] = ad3
			continue
		}
		cad := core.NewCAD3(chainRoadTypes[i], core.CAD3Config{})
		if err := cad.Train(sc.Train, sc.Labeler, upstreams[i-1]); err != nil {
			return nil, fmt.Errorf("chain hop %d CAD3: %w", i, err)
		}
		detectors[i] = cad
	}

	// One broker + node per hop, wired as a cluster.
	brokers := make([]*stream.Broker, cfg.Hops)
	configs := make([]rsu.Config, cfg.Hops)
	for i := 0; i < cfg.Hops; i++ {
		brokers[i] = stream.NewBroker(stream.BrokerConfig{})
		configs[i] = rsu.Config{
			Name:     fmt.Sprintf("hop-%d (%s)", i, chainRoadTypes[i]),
			Road:     segIDs[i],
			Detector: detectors[i],
			Client:   stream.NewInProcClient(brokers[i]),
		}
	}
	cluster, err := rsu.NewCluster(net, configs)
	if err != nil {
		return nil, err
	}
	producers := make(map[geo.SegmentID]*stream.Producer, cfg.Hops)
	for i, id := range segIDs {
		p, err := stream.NewProducer(stream.NewInProcClient(brokers[i]), stream.TopicInData)
		if err != nil {
			return nil, err
		}
		producers[id] = p
	}
	lastConsumer, err := stream.NewConsumer(stream.NewInProcClient(brokers[cfg.Hops-1]), stream.TopicOutData, 0)
	if err != nil {
		return nil, err
	}

	// Fleet on the full route.
	type car struct {
		id         trace.CarID
		journey    *geo.Journey
		aggressive bool
		biasK      float64
		speed      float64
	}
	profile := trace.DefaultSpeedProfile()
	cars := make([]*car, 0, cfg.Vehicles)
	for i := 1; i <= cfg.Vehicles; i++ {
		j, err := geo.NewJourney(net, segIDs)
		if err != nil {
			return nil, err
		}
		aggressive := rng.Float64() < cfg.AggressiveFraction
		bias := 0.2 * rng.Float64()
		if aggressive {
			bias = 1.4 + rng.Float64()
		}
		if rng.Float64() < 0.3 {
			bias = -bias
		}
		mean, std := profile.MeanStd(chainRoadTypes[0], 12, false)
		cars = append(cars, &car{
			id: trace.CarID(i), journey: j, aggressive: aggressive, biasK: bias,
			speed: mean + bias*std,
		})
	}

	res := &ChainResult{Vehicles: cfg.Vehicles}
	lastHopWarn := make(map[trace.CarID]int)
	lastHopRecs := make(map[trace.CarID]int)
	lastSeg := segIDs[cfg.Hops-1]
	dt := time.Second
	for step := 0; step < 20_000; step++ {
		active := 0
		for _, c := range cars {
			if c.journey.Done() {
				continue
			}
			active++
			segType := net.Segment(c.journey.Segment()).Type
			mean, std := profile.MeanStd(segType, 12, false)
			target := mean + c.biasK*std + rng.NormFloat64()*std*0.2
			maxAccel := 1.5 * dt.Seconds()
			delta := target - c.speed
			if delta > maxAccel {
				delta = maxAccel
			} else if delta < -maxAccel {
				delta = -maxAccel
			}
			prev := c.speed
			c.speed += delta
			if c.speed < 0 {
				c.speed = 0
			}
			st, err := c.journey.Advance(c.speed, dt)
			if err != nil {
				return nil, err
			}
			if st.HandoverFrom != 0 {
				if err := cluster.Handover(c.id, st.HandoverFrom, st.Segment); err != nil {
					return nil, err
				}
				res.Handovers++
			}
			rec := trace.Record{
				Car: c.id, Road: st.Segment, RoadType: net.Segment(st.Segment).Type,
				Speed: c.speed, Accel: (c.speed - prev) / dt.Seconds(),
				Lat: st.Position.Lat, Lon: st.Position.Lon, Hour: 12, Day: 4,
			}
			payload := core.AppendRecord(stream.GetPayload(), rec)
			_, _, err = producers[st.Segment].Send(nil, payload)
			stream.PutPayload(payload)
			if err != nil {
				return nil, err
			}
			if st.Segment == lastSeg {
				lastHopRecs[c.id]++
			}
		}
		if _, err := cluster.StepAll(); err != nil {
			return nil, fmt.Errorf("chain step %d: %w", step, err)
		}
		msgs, err := lastConsumer.Poll(1 << 10)
		if err != nil {
			return nil, err
		}
		for _, m := range msgs {
			w, derr := core.DecodeWarning(m.Value)
			if derr != nil {
				continue
			}
			lastHopWarn[w.Car]++
		}
		stream.RecycleMessages(msgs)
		if active == 0 {
			res.Steps = step + 1
			break
		}
	}

	stats := cluster.Stats()
	for i := 0; i < cfg.Hops; i++ {
		st := stats[configs[i].Name]
		res.Hops = append(res.Hops, ChainHop{
			Name:              configs[i].Name,
			RoadType:          chainRoadTypes[i],
			Records:           st.Records,
			Warnings:          st.Warnings,
			SummariesReceived: st.SummariesReceived,
			SummariesSent:     st.SummariesSent,
			PriorHits:         st.PriorHits,
		})
	}
	var aggRate, normRate float64
	for _, c := range cars {
		rate := 0.0
		if lastHopRecs[c.id] > 0 {
			rate = float64(lastHopWarn[c.id]) / float64(lastHopRecs[c.id])
		}
		if c.aggressive {
			res.Aggressive++
			aggRate += rate
		} else {
			normRate += rate
		}
	}
	if res.Aggressive > 0 {
		res.FinalAggressiveWarnRate = aggRate / float64(res.Aggressive)
	}
	if n := cfg.Vehicles - res.Aggressive; n > 0 {
		res.FinalNormalWarnRate = normRate / float64(n)
	}
	return res, nil
}

// FormatChain renders the multi-hop run.
func FormatChain(res *ChainResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%d vehicles (%d aggressive), %d steps, %d handovers\n",
		res.Vehicles, res.Aggressive, res.Steps, res.Handovers)
	fmt.Fprintf(&sb, "%-24s %8s %8s %10s %10s %10s\n",
		"hop", "records", "warns", "summ-rx", "summ-tx", "prior-hit")
	for _, h := range res.Hops {
		fmt.Fprintf(&sb, "%-24s %8d %8d %10d %10d %10d\n",
			h.Name, h.Records, h.Warnings, h.SummariesReceived, h.SummariesSent, h.PriorHits)
	}
	fmt.Fprintf(&sb, "final-hop warn rate: aggressive %.2f vs normal %.2f\n",
		res.FinalAggressiveWarnRate, res.FinalNormalWarnRate)
	return sb.String()
}
