package experiments

import (
	"testing"

	"cad3/internal/chaos"
)

// TestChaosStudyContinuity is the acceptance drill for the crash-safe
// substrate: partition the inter-RSU link, kill and recover the CO-DATA
// neighbor mid-scenario, and require (a) live CAD3 never does worse than
// the standalone AD3 floor during the fault, (b) detection quality comes
// back after recovery, (c) the upstream node actually resumed from its
// checkpoint.
func TestChaosStudyContinuity(t *testing.T) {
	sc := testScenario(t)
	res, err := RunChaosStudy(ChaosConfig{Scenario: sc, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatChaosResult(res))

	if len(res.Phases) != 3 {
		t.Fatalf("phases = %d", len(res.Phases))
	}
	pre, fault, rec := res.Phases[0], res.Phases[1], res.Phases[2]
	for _, ph := range res.Phases {
		if ph.Live.Total() == 0 {
			t.Fatalf("phase %q scored no records", ph.Name)
		}
	}

	// (a) Degradation floor: during the fault the live pipeline is CAD3
	// without priors, which IS the standalone model — its FN rate must
	// not exceed the offline AD3 reference on the same records (tiny
	// tolerance for cars handed over before the partition).
	if fault.Live.FNRate() > fault.RefAD3.FNRate()+1e-9 {
		t.Errorf("fault-phase live FN %.4f worse than AD3 floor %.4f",
			fault.Live.FNRate(), fault.RefAD3.FNRate())
	}

	// (b) Recovery: the recovered phase must beat the fault phase's
	// severity-weighted miss rate per record, heading back toward the
	// fault-free ceiling.
	faultSev := fault.ExpectedSeverity / float64(fault.Live.Total())
	recSev := rec.ExpectedSeverity / float64(rec.Live.Total())
	if recSev > faultSev {
		t.Errorf("per-record E(Lambda) did not recover: fault %.5f -> recovered %.5f",
			faultSev, recSev)
	}
	// Pre-fault, collaboration is live: FN rate must not exceed the AD3
	// floor there either.
	if pre.Live.FNRate() > pre.RefAD3.FNRate()+1e-9 {
		t.Errorf("pre-fault live FN %.4f worse than AD3 floor %.4f",
			pre.Live.FNRate(), pre.RefAD3.FNRate())
	}

	// (c) The crash actually happened and the node came back with state.
	if res.ChaosStats.Blocked == 0 {
		t.Error("partition never blocked a CO-DATA operation")
	}
	if res.RecoveredTrackedCars == 0 {
		t.Error("upstream node recovered with no tracked cars — checkpoint not applied")
	}
	deg := res.LinkStats.DegradedCounters()
	if deg.Fallbacks == 0 {
		t.Error("no CAD3->AD3 fallbacks accounted during the partition")
	}
	if res.UpstreamPreCrash.DroppedHandovers == 0 {
		t.Error("no handovers dropped during the partition")
	}
	// Blocked handovers kept their history; after heal the recovered node
	// delivers summaries built from pre-crash records — proof the
	// checkpointed builder state survived the crash.
	if res.UpstreamStats.SummariesSent == 0 {
		t.Error("recovered node delivered no summaries after heal")
	}
}

// TestChaosStudyDeterministic re-runs the study on the same seed and
// requires identical phase confusions and injector stats.
func TestChaosStudyDeterministic(t *testing.T) {
	sc := testScenario(t)
	cfg := ChaosConfig{
		Scenario: sc, Seed: 7,
		Faults: chaos.Config{DropProb: 0.05, DupProb: 0.05, KillProb: 0.05},
	}
	a, err := RunChaosStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunChaosStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.ChaosStats != b.ChaosStats {
		t.Errorf("injector stats diverged: %+v vs %+v", a.ChaosStats, b.ChaosStats)
	}
	for i := range a.Phases {
		if a.Phases[i].Live != b.Phases[i].Live {
			t.Errorf("phase %s live confusion diverged: %+v vs %+v",
				a.Phases[i].Name, a.Phases[i].Live, b.Phases[i].Live)
		}
		if a.Phases[i].ExpectedSeverity != b.Phases[i].ExpectedSeverity {
			t.Errorf("phase %s severity diverged", a.Phases[i].Name)
		}
	}
	if a.RecoveredTrackedCars != b.RecoveredTrackedCars {
		t.Errorf("recovered cars diverged: %d vs %d", a.RecoveredTrackedCars, b.RecoveredTrackedCars)
	}
}

func TestChaosStudyValidation(t *testing.T) {
	if _, err := RunChaosStudy(ChaosConfig{}); err == nil {
		t.Error("want error without a scenario")
	}
	sc := testScenario(t)
	if _, err := RunChaosStudy(ChaosConfig{
		Scenario: sc, PartitionFrac: 0.8, CrashFrac: 0.5, HealFrac: 0.9,
	}); err == nil {
		t.Error("want error for unordered fault fractions")
	}
}
