// Package experiments contains one runner per table and figure of the
// paper's evaluation (§VI), regenerating the same rows and series from
// this repository's substrates. DESIGN.md maps each experiment to its
// runner; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/trace"
)

// Corridor segment IDs for the testbed corridor (a 2 km motorway feeding
// an 800 m motorway link), inserted into the synthetic network like the
// paper's two extracted real roads.
const (
	CorridorMotorwayID geo.SegmentID = 900001
	CorridorLinkID     geo.SegmentID = 900002
)

// ScenarioConfig sizes the model-evaluation scenario.
type ScenarioConfig struct {
	// Cars is the corridor fleet size (each drives motorway -> link
	// once) and the background fleet size. Values <= 0 select 600.
	Cars int
	// Seed drives all randomness.
	Seed int64
	// NetworkScale scales the synthetic Shenzhen network. Values <= 0
	// select 0.02 (test-sized); 1.0 is the full Table V network.
	NetworkScale float64
	// AggressiveFraction of drivers with anomalous tendencies. Values
	// <= 0 select 0.35 (the paper's data has ~35% abnormal samples).
	AggressiveFraction float64
	// SampleInterval for GPS fixes. Values <= 0 select 5 s (the paper's
	// trajectory sparsity).
	SampleInterval time.Duration
}

func (c ScenarioConfig) withDefaults() ScenarioConfig {
	if c.Cars <= 0 {
		c.Cars = 600
	}
	if c.NetworkScale <= 0 {
		c.NetworkScale = 0.02
	}
	if c.AggressiveFraction <= 0 {
		c.AggressiveFraction = 0.35
	}
	if c.SampleInterval <= 0 {
		c.SampleInterval = 5 * time.Second
	}
	return c
}

// Scenario is the trained three-model comparison setup shared by the
// Figure 7 / Figure 8 / Table IV experiments.
type Scenario struct {
	Net      *geo.Network
	Train    []trace.Record
	Test     []trace.Record
	TestLink []trace.Record
	Labeler  *core.Labeler

	Centralized *core.Centralized
	Upstream    *core.AD3 // motorway RSU model
	AD3         *core.AD3 // motorway-link RSU standalone model
	CAD3        *core.CAD3

	// Summaries holds the evaluation priors: the upstream model replayed
	// over the test cars' motorway records, standing in for the online
	// CO-DATA stream.
	Summaries map[trace.CarID]core.PredictionSummary
}

// BuildScenario generates the dataset (corridor trips + city-wide
// background), derives and filters records, splits by car, and trains the
// three models.
func BuildScenario(cfg ScenarioConfig) (*Scenario, error) {
	cfg = cfg.withDefaults()
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: cfg.NetworkScale, Seed: cfg.Seed + 1000})
	if err != nil {
		return nil, fmt.Errorf("scenario network: %w", err)
	}
	mw, link, err := AddCorridor(net)
	if err != nil {
		return nil, fmt.Errorf("scenario corridor: %w", err)
	}

	gen, err := trace.NewGenerator(trace.GeneratorConfig{
		Network:            net,
		Cars:               cfg.Cars,
		Seed:               cfg.Seed,
		AggressiveFraction: cfg.AggressiveFraction,
		SampleInterval:     cfg.SampleInterval,
	})
	if err != nil {
		return nil, err
	}
	var pts []trace.TrajectoryPoint
	var tripID trace.TripID = 1
	for c := 1; c <= cfg.Cars; c++ {
		day := 1 + (c % 28)
		hour := []int{8, 12, 18, 22}[c%4]
		_, p, err := gen.GenerateTripOn(trace.CarID(c), tripID, []geo.SegmentID{mw.ID, link.ID}, day, hour)
		if err != nil {
			return nil, err
		}
		tripID++
		pts = append(pts, p...)
	}

	bg, err := trace.NewGenerator(trace.GeneratorConfig{
		Network:            net,
		Cars:               cfg.Cars,
		Seed:               cfg.Seed + 1,
		TripsPerCar:        4,
		AggressiveFraction: cfg.AggressiveFraction,
		SampleInterval:     cfg.SampleInterval,
	})
	if err != nil {
		return nil, err
	}
	bgDS, err := bg.Generate()
	if err != nil {
		return nil, err
	}
	for i := range bgDS.Trajectories {
		bgDS.Trajectories[i].Car += trace.CarID(cfg.Cars)
		bgDS.Trajectories[i].Trip += tripID
	}
	pts = append(pts, bgDS.Trajectories...)

	recs, err := trace.DeriveRecords(net, pts, trace.DeriveOptions{})
	if err != nil {
		return nil, err
	}
	clean, _ := trace.FilterRecords(recs)
	split := trace.SplitByCar(clean, 0.8, cfg.Seed)

	labeler, err := core.TrainLabeler(split.Train, 0)
	if err != nil {
		return nil, err
	}
	sc := &Scenario{
		Net:      net,
		Train:    split.Train,
		Test:     split.Test,
		TestLink: trace.RecordsOfType(split.Test, geo.MotorwayLink),
		Labeler:  labeler,
	}
	sc.Centralized = core.NewCentralized()
	if err := sc.Centralized.Train(split.Train, labeler); err != nil {
		return nil, err
	}
	sc.Upstream = core.NewAD3(geo.Motorway)
	if err := sc.Upstream.Train(split.Train, labeler); err != nil {
		return nil, err
	}
	sc.AD3 = core.NewAD3(geo.MotorwayLink)
	if err := sc.AD3.Train(split.Train, labeler); err != nil {
		return nil, err
	}
	sc.CAD3 = core.NewCAD3(geo.MotorwayLink, core.CAD3Config{SummaryRoad: CorridorMotorwayID})
	if err := sc.CAD3.Train(split.Train, labeler, sc.Upstream); err != nil {
		return nil, err
	}
	// Evaluation priors come from the corridor motorway only — the road
	// the test vehicles actually drove before handing over to the link
	// RSU (the online CO-DATA stream's content).
	var corridorMw []trace.Record
	for _, r := range trace.RecordsOfType(split.Test, geo.Motorway) {
		if r.Road == CorridorMotorwayID {
			corridorMw = append(corridorMw, r)
		}
	}
	sc.Summaries, err = core.BuildTrainingSummaries(corridorMw, sc.Upstream, 0)
	if err != nil {
		return nil, err
	}
	return sc, nil
}

// AddCorridor inserts the testbed corridor into a network and returns the
// motorway and link segments.
func AddCorridor(net *geo.Network) (*geo.Segment, *geo.Segment, error) {
	start := geo.Destination(geo.ShenzhenCenter, 45, 3000)
	mwEnd := geo.Destination(start, 90, 2000)
	mw, err := geo.NewSegment(CorridorMotorwayID, geo.Motorway, "corridor-motorway",
		[]geo.Point{start, geo.Midpoint(start, mwEnd), mwEnd})
	if err != nil {
		return nil, nil, err
	}
	lkEnd := geo.Destination(mwEnd, 135, 800)
	lk, err := geo.NewSegment(CorridorLinkID, geo.MotorwayLink, "corridor-link",
		[]geo.Point{mwEnd, geo.Midpoint(mwEnd, lkEnd), lkEnd})
	if err != nil {
		return nil, nil, err
	}
	if err := net.AddSegment(mw); err != nil {
		return nil, nil, err
	}
	if err := net.AddSegment(lk); err != nil {
		return nil, nil, err
	}
	if err := net.Connect(mw.ID, lk.ID); err != nil {
		return nil, nil, err
	}
	return mw, lk, nil
}
