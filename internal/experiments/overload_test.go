package experiments

import (
	"testing"
	"time"
)

// TestOverloadGracefulDegradation is the study's contract at >= 2x load:
// warning latency stays bounded, the shed fraction is reported rather
// than silent, and no warning or neighbour summary is dropped anywhere in
// the pipeline — only telemetry.
func TestOverloadGracefulDegradation(t *testing.T) {
	sc := testScenario(t)
	res, err := RunOverloadStudy(OverloadConfig{
		Scenario:    sc,
		Multipliers: []float64{1, 6},
		Vehicles:    40,
		Rounds:      200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 2 {
		t.Fatalf("points: got %d, want 2", len(res.Points))
	}
	t.Logf("\n%s", FormatOverloadResult(res))
	nominal, overload := res.Points[0], res.Points[1]

	for _, p := range res.Points {
		name := p.Multiplier
		// The never-shed invariant, end to end: every warning the node
		// produced reached the consumer, every summary offered reached the
		// node, and neither gate ever refused one.
		if p.WarningsDelivered != p.Warnings {
			t.Errorf("x%g: warnings produced %d, delivered %d", name, p.Warnings, p.WarningsDelivered)
		}
		if p.WarningGateRefusals != 0 {
			t.Errorf("x%g: OUT-DATA gate refused %d warnings", name, p.WarningGateRefusals)
		}
		if p.SummariesDelivered != p.SummariesOffered {
			t.Errorf("x%g: summaries offered %d, delivered %d", name, p.SummariesOffered, p.SummariesDelivered)
		}
		if p.SummaryGateRefusals != 0 {
			t.Errorf("x%g: CO-DATA gate refused %d summaries", name, p.SummaryGateRefusals)
		}
		if p.Warnings == 0 {
			t.Errorf("x%g: no warnings produced (nothing measured)", name)
		}
		// Bounded latency: the gates cap the backlog, so even at overload
		// the warning p99 must stay within a small number of batch windows
		// — not grow with the run length.
		if p.WarnP99 > 800*time.Millisecond {
			t.Errorf("x%g: warning p99 %v, want <= 800ms", name, p.WarnP99)
		}
		// Accounting closes: every attempt either hit the wire, was
		// decimated locally, or was absorbed as backpressure.
		if got := p.SentWire + p.PacedOut + p.Backpressured; got != p.Offered {
			t.Errorf("x%g: wire %d + paced %d + backpressured %d = %d, want offered %d",
				name, p.SentWire, p.PacedOut, p.Backpressured, got, p.Offered)
		}
	}

	// Nominal load: essentially nothing shed, no degraded rounds.
	if nominal.ShedFraction > 0.01 {
		t.Errorf("x1: shed fraction %.3f, want ~0", nominal.ShedFraction)
	}
	if nominal.DegradedRounds != 0 {
		t.Errorf("x1: degraded rounds %d, want 0", nominal.DegradedRounds)
	}

	// Overload: the load is shed visibly, the node runs degraded, and
	// stale low-risk telemetry is dropped by node-level admission.
	if overload.ShedFraction < 0.1 {
		t.Errorf("x6: shed fraction %.3f, want >= 0.1", overload.ShedFraction)
	}
	if overload.DegradedRounds == 0 {
		t.Error("x6: node never entered degraded mode under 6x load")
	}
	if overload.ShedStale == 0 {
		t.Error("x6: degraded-mode admission shed nothing")
	}
	if overload.PacedOut == 0 {
		t.Error("x6: vehicle pacing never decimated")
	}
	if overload.Offered <= 2*nominal.Offered {
		t.Errorf("x6 offered %d not > 2x nominal %d", overload.Offered, nominal.Offered)
	}
	// Graceful, not collapsed: the overloaded node still detects at a
	// comparable rate to nominal (it sheds load, it does not thrash).
	if overload.GoodputPerSec < nominal.GoodputPerSec*0.5 {
		t.Errorf("x6 goodput %.0f/s collapsed vs nominal %.0f/s",
			overload.GoodputPerSec, nominal.GoodputPerSec)
	}
}
