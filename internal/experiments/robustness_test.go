package experiments

import (
	"testing"
)

// TestSeedRobustness re-runs the headline comparison on several seeds and
// asserts the paper's safety orderings (FN rate and expected accidents
// strictly decrease centralized -> AD3 -> CAD3) on every one. The F1
// ordering, which the 7-seed sweep in EXPERIMENTS.md shows holding on
// most but not all seeds, is reported but not asserted.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-seed sweep in -short mode")
	}
	for _, seed := range []int64{7, 42, 2024} {
		seed := seed
		t.Run("", func(t *testing.T) {
			sc, err := BuildScenario(ScenarioConfig{Cars: 500, Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			rows, err := RunModelComparison(sc)
			if err != nil {
				t.Fatal(err)
			}
			c, a, x := rows[0], rows[1], rows[2]
			t.Logf("seed %d: F1 c=%.3f a=%.3f x=%.3f | FN c=%.3f a=%.3f x=%.3f",
				seed, c.F1, a.F1, x.F1, c.FNRate, a.FNRate, x.FNRate)
			if !(x.FNRate < a.FNRate && a.FNRate < c.FNRate) {
				t.Errorf("seed %d: FN ordering violated", seed)
			}
			if !(x.ExpectedAccidents < a.ExpectedAccidents && a.ExpectedAccidents < c.ExpectedAccidents) {
				t.Errorf("seed %d: E(Lambda) ordering violated", seed)
			}
			if !(x.Accuracy > c.Accuracy && a.Accuracy > c.Accuracy) {
				t.Errorf("seed %d: accuracy ordering violated", seed)
			}
		})
	}
}
