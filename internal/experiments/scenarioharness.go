package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"cad3/internal/chaos"
	"cad3/internal/core"
	"cad3/internal/flow"
	"cad3/internal/obsv"
	"cad3/internal/rsu"
	"cad3/internal/scenario"
	"cad3/internal/stream"
	"cad3/internal/trace"
	"cad3/internal/vehicle"
)

// ScenarioHarness implements scenario.Harness over the full simulation
// stack: a replicated broker cluster under a chaos injector, a live CAD3
// link RSU, a paced vehicle fleet, and an acks=all corridor replay whose
// ledger settles the durability measurements. One harness serves many
// runs; Reset rebuilds everything from the spec's seed, so a run is a
// pure function of (spec, harness config) and the engine's transcript
// determinism contract holds end to end.
//
// Two data paths feed the RSU each round:
//
//   - the fleet path: Vehicles paced senders replaying link telemetry
//     through a chaos.Client link ("veh" -> "rsu") at Traffic.Rate times
//     the nominal 10 Hz — the offered-load knob, where pacing,
//     backpressure and link faults bite;
//   - the ledger path: corridor link records (original car IDs, ground
//     truth labels) produced at acks=all straight at the replica set and
//     entered into the durability ledger — the records the zero
//     acked-loss and false-negative measurements are computed over.
//     Traffic.SpoofFrac / FaultFrac mutate a slice of these before
//     produce; mutated records are tracked separately and excluded from
//     truth accounting.
//
// Replication links are chaos.ReplicaLinks named "leader" -> r<i>, so
// spec partitions can cut exactly the paths the ISR depends on.
type ScenarioHarness struct {
	cfg ScenarioHarnessConfig
	// events is the sorted corridor link replay with precomputed ground
	// truth, shared by every run.
	events []ledgerSrc
	run    *scenarioRun
}

// ScenarioHarnessConfig configures a harness.
type ScenarioHarnessConfig struct {
	// Scenario supplies corridor records and the trained CAD3. Required.
	Scenario *Scenario
	// Vehicles is the paced fleet size. Values <= 0 select 24.
	Vehicles int
	// Replicas is the broker cluster size. Values <= 0 select 3.
	Replicas int
	// FlowCapacity is the per-partition admission bound. Values <= 0
	// select 128.
	FlowCapacity int
	// LedgerPerRound is the nominal acks=all corridor records per round
	// (scaled by Traffic.Rate). Values <= 0 select 4.
	LedgerPerRound int
	// TickRounds is the control-plane cadence in rounds. Values <= 0
	// select 8 (400 ms virtual at the 50 ms round).
	TickRounds int
}

func (c ScenarioHarnessConfig) withDefaults() ScenarioHarnessConfig {
	if c.Vehicles <= 0 {
		c.Vehicles = 24
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.FlowCapacity <= 0 {
		c.FlowCapacity = 128
	}
	if c.LedgerPerRound <= 0 {
		c.LedgerPerRound = 4
	}
	if c.TickRounds <= 0 {
		c.TickRounds = 8
	}
	return c
}

// ledgerSrc is one corridor record with its offline ground truth.
type ledgerSrc struct {
	rec      trace.Record
	truth    int
	hasTruth bool
}

// ackedRow is one acks=all ledger row (what was acked, where, and what
// the durability sweep must read back).
type ackedRow struct {
	part    int32
	off     int64
	car     trace.CarID
	ts      int64
	truth   int
	scored  bool // has ground truth and was not mutated
	spoofed bool
}

// pendingLedger is a refused ledger record waiting to retry.
type pendingLedger struct {
	payload []byte
	row     ackedRow
	retried bool
}

// phaseBase snapshots the cumulative counters a phase's deltas are
// computed against.
type phaseBase struct {
	produced, acked, failed, retried int64
	spoofed, faulty                  int64
	delivered, spoofWarn             int64
	fleetOffered, fleetSent          int64
	fleetPaced, fleetBackpressured   int64
	fleetSendErrs                    int64
	nodeStats                        rsu.Stats
	leaderless                       int64
}

// scenarioRun is one run's live state, rebuilt by Reset.
type scenarioRun struct {
	h   *ScenarioHarness
	rng *rand.Rand

	vnowMs int64
	skewMs int64

	inj    *chaos.Injector
	rset   *stream.ReplicaSet
	reg    *obsv.Registry
	node   *rsu.Node
	fleet  *vehicle.Fleet
	member *stream.GroupMember

	replicaIDs []string
	killed     map[string]bool

	round       int // absolute rounds driven
	eventIdx    int // replay cursor into h.events
	reorderProb float64
	spoofSeq    int64

	// fleetAcc/fleetIdx are per-vehicle fractional-rate accumulators and
	// replay cursors; ledgerAcc is the ledger path's. fleetOfferedTotal
	// counts pre-pacing send attempts (the offered-load denominator).
	fleetAcc          []float64
	fleetIdx          []int
	ledgerAcc         float64
	fleetOfferedTotal int64
	fleetSendErrs     int64

	ledger  []ackedRow
	pending []pendingLedger

	// produced..leaderless are the cumulative counters phase deltas read.
	produced, acked, failed, retried int64
	spoofed, faulty                  int64
	delivered, spoofWarn             int64
	dupDeliveries                    int64
	leaderless                       int64

	// warned indexes delivered warnings by (car, source ts) for the
	// false-negative accounting; seen is the exactly-once delivery book.
	warned map[trace.CarID]map[int64]bool
	seen   map[int32]map[int64]bool

	// latMs collects this phase's warning latencies (reset per phase).
	latMs []int64

	base phaseBase
}

// NewScenarioHarness builds a harness over a trained scenario.
func NewScenarioHarness(cfg ScenarioHarnessConfig) (*ScenarioHarness, error) {
	cfg = cfg.withDefaults()
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("experiments: scenario harness needs a scenario")
	}
	var events []ledgerSrc
	for _, r := range sc.Test {
		if r.Road == CorridorLinkID {
			src := ledgerSrc{rec: r}
			if truth, err := sc.Labeler.Label(r); err == nil {
				src.truth, src.hasTruth = truth, true
			}
			events = append(events, src)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: scenario has no corridor link records")
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].rec.TimestampMs != events[j].rec.TimestampMs {
			return events[i].rec.TimestampMs < events[j].rec.TimestampMs
		}
		return events[i].rec.Car < events[j].rec.Car
	})
	return &ScenarioHarness{cfg: cfg, events: events}, nil
}

const (
	scenarioRoundMs   = 50                       // batch window (paper: 50 ms)
	scenarioSendEvery = 100                      // nominal per-vehicle period (10 Hz)
	scenarioBaseMs    = int64(1_700_000_000_000) // virtual epoch
	scenarioSpoofBase = trace.CarID(1_000_000)   // spoofed telemetry car IDs
	// scenarioProcUs is the modeled per-record detection cost charged to
	// the virtual clock (the overload study's ProcCost): it makes batch
	// latency, staleness and warning latency functions of offered load,
	// so overload shapes actually overload.
	scenarioProcUs = 500
)

// Reset implements scenario.Harness: tear down the previous run and
// build a fresh cluster, node, fleet and consumer from the seed.
func (h *ScenarioHarness) Reset(seed int64) error {
	cfg := h.cfg
	sc := cfg.Scenario
	run := &scenarioRun{
		h:      h,
		rng:    rand.New(rand.NewSource(seed)),
		vnowMs: scenarioBaseMs,
		killed: map[string]bool{},
		warned: map[trace.CarID]map[int64]bool{},
		seen:   map[int32]map[int64]bool{},
		reg:    obsv.NewRegistry(),
	}
	now := func() time.Time { return time.UnixMilli(run.vnowMs) }
	sleep := func(d time.Duration) { run.vnowMs += d.Milliseconds() }

	// The injector's PRNG is offset from the run seed so fault draws and
	// traffic mutation draws are independent streams.
	run.inj = chaos.NewInjector(chaos.Config{Seed: seed + 1})

	replicas := make([]stream.Replica, cfg.Replicas)
	run.replicaIDs = make([]string, cfg.Replicas)
	for i := range replicas {
		id := fmt.Sprintf("r%d", i)
		run.replicaIDs[i] = id
		b := stream.NewBroker(stream.BrokerConfig{Now: now, FlowCapacity: cfg.FlowCapacity})
		link := chaos.NewReplicaLink(run.inj, "leader", id, b)
		link.Sleep = sleep
		replicas[i] = stream.Replica{ID: id, Broker: b, Link: link}
	}
	rset, err := stream.NewReplicaSet(stream.ReplicaSetConfig{
		Metrics: run.reg,
		Rebuild: stream.BrokerConfig{Now: now, FlowCapacity: cfg.FlowCapacity},
	}, replicas...)
	if err != nil {
		return err
	}
	run.rset = rset

	run.node, err = rsu.New(rsu.Config{
		Name: "Link", Road: CorridorLinkID,
		Detector: sc.CAD3, Client: rset.Client(stream.AckAll),
		Workers: 1, Now: now, Metrics: run.reg,
		BatchSLO:       25 * time.Millisecond,
		ShedStaleAfter: 150 * time.Millisecond,
	})
	if err != nil {
		return err
	}

	// The fleet reaches the cluster over the faultable radio link.
	dataLink := chaos.NewClient(run.inj, "veh", "rsu", rset.Client(stream.AckLeader))
	dataLink.Sleep = sleep
	run.fleet, err = vehicle.NewFleet(cfg.Vehicles, sc.TestLink,
		func(int) stream.Client { return dataLink },
		vehicle.Config{
			Loop: true, Now: now,
			Pacing: flow.PacerConfig{MaxDecimation: 8, RecoverAfter: 16},
		})
	if err != nil {
		return err
	}

	// Seed the CO-DATA priors: behaving-vehicle summaries for the fleet
	// IDs, the scenario's trained summaries for the replayed cars — the
	// evidence degraded-mode shedding and the CAD3 prior path need.
	coProducer, err := stream.NewProducer(rset.Client(stream.AckAll), stream.TopicCoData)
	if err != nil {
		return err
	}
	for i := 1; i <= cfg.Vehicles; i++ {
		payload, serr := core.EncodeSummary(core.PredictionSummary{
			Car: trace.CarID(i), MeanPNormal: 0.9, Count: 10,
			FromRoad: int64(CorridorMotorwayID), UpdatedMs: run.vnowMs,
		})
		if serr != nil {
			return serr
		}
		if _, _, serr = coProducer.Send(nil, payload); serr != nil {
			return fmt.Errorf("seed fleet summary %d: %w", i, serr)
		}
	}
	cars := make([]trace.CarID, 0, len(sc.Summaries))
	for car := range sc.Summaries {
		cars = append(cars, car)
	}
	sort.Slice(cars, func(i, j int) bool { return cars[i] < cars[j] })
	for _, car := range cars {
		s := sc.Summaries[car]
		s.UpdatedMs = run.vnowMs
		payload, serr := core.EncodeSummary(s)
		if serr != nil {
			return serr
		}
		if _, _, serr = coProducer.Send(nil, payload); serr != nil {
			return fmt.Errorf("seed summary car %d: %w", car, serr)
		}
	}

	group, err := stream.NewGroupCfg(stream.GroupConfig{
		Client: rset.Client(stream.AckLeader), Topic: stream.TopicOutData, Metrics: run.reg,
	})
	if err != nil {
		return err
	}
	run.member, err = group.Join("w1")
	if err != nil {
		return err
	}
	run.fleetAcc = make([]float64, cfg.Vehicles)
	run.fleetIdx = make([]int, cfg.Vehicles)
	h.run = run
	return nil
}

// BeginPhase implements scenario.Harness: snapshot the cumulative
// counters so this phase's measurements are deltas, and reset the
// latency sample set.
func (h *ScenarioHarness) BeginPhase(name string) error {
	r := h.run
	if r == nil {
		return fmt.Errorf("scenario harness: BeginPhase before Reset")
	}
	r.base = phaseBase{
		produced: r.produced, acked: r.acked, failed: r.failed, retried: r.retried,
		spoofed: r.spoofed, faulty: r.faulty,
		delivered: r.delivered, spoofWarn: r.spoofWarn,
		leaderless: r.leaderless,
		nodeStats:  r.node.Stats(),
	}
	for _, v := range r.fleet.Vehicles() {
		r.base.fleetSent += v.Sent()
		r.base.fleetPaced += v.Pacer().Decimated()
		r.base.fleetBackpressured += v.Pacer().Backpressured()
	}
	r.base.fleetOffered = r.fleetOfferedTotal
	r.base.fleetSendErrs = r.fleetSendErrs
	r.latMs = r.latMs[:0]
	return nil
}

// Apply implements scenario.Harness: execute one fault action.
func (h *ScenarioHarness) Apply(a scenario.Action) error {
	r := h.run
	if r == nil {
		return fmt.Errorf("scenario harness: Apply before Reset")
	}
	switch a.Type {
	case "partition":
		if a.Both {
			r.inj.PartitionBoth(a.From, a.To)
		} else {
			r.inj.Partition(a.From, a.To)
		}
	case "heal":
		r.inj.Heal(a.From, a.To)
		if a.Both {
			r.inj.Heal(a.To, a.From)
		}
	case "heal_all":
		r.inj.HealAll()
	case "kill_leader":
		id, _, ok := r.rset.Leader(stream.TopicInData, 0)
		if !ok {
			return fmt.Errorf("kill_leader: no leader to kill")
		}
		if err := r.rset.Kill(id); err != nil {
			return err
		}
		r.killed[id] = true
	case "kill":
		if err := r.rset.Kill(a.Replica); err != nil {
			return err
		}
		r.killed[a.Replica] = true
	case "revive":
		if !r.killed[a.Replica] {
			return fmt.Errorf("revive %s: not killed", a.Replica)
		}
		if _, err := r.rset.Revive(a.Replica); err != nil {
			return err
		}
		delete(r.killed, a.Replica)
	case "link_loss":
		cfg := r.inj.Config()
		cfg.DropProb = a.Prob
		r.inj.SetConfig(cfg)
	case "link_dup":
		cfg := r.inj.Config()
		cfg.DupProb = a.Prob
		r.inj.SetConfig(cfg)
	case "link_delay":
		cfg := r.inj.Config()
		cfg.DelayProb = a.Prob
		cfg.MinDelay = time.Duration(a.MinMs) * time.Millisecond
		cfg.MaxDelay = time.Duration(a.MaxMs) * time.Millisecond
		r.inj.SetConfig(cfg)
	case "clock_skew":
		r.skewMs = a.SkewMs
	case "reorder":
		r.reorderProb = a.Prob
	default:
		return fmt.Errorf("scenario harness: unknown action %q", a.Type)
	}
	return nil
}

// Round implements scenario.Harness: one 50 ms window — control-plane
// tick on cadence, fleet sends at the shaped rate, the ledger batch at
// acks=all, one node micro-batch, and a warning drain.
func (h *ScenarioHarness) Round(tr scenario.Traffic) error {
	r := h.run
	if r == nil {
		return fmt.Errorf("scenario harness: Round before Reset")
	}
	r.vnowMs += scenarioRoundMs
	if r.round%h.cfg.TickRounds == 0 {
		r.rset.Tick()
	}
	r.round++

	// Fleet path: each vehicle offers rate x (window / period) samples.
	perVehicle := tr.Rate * float64(scenarioRoundMs) / float64(scenarioSendEvery)
	for i, v := range r.fleet.Vehicles() {
		r.fleetAcc[i] += perVehicle
		for r.fleetAcc[i] >= 1 {
			r.fleetAcc[i]--
			if _, err := v.SendNext(r.fleetIdx[i]); err != nil {
				// Frames at a dead antenna: a leaderless window or a
				// partitioned radio link loses the sample, it does not
				// abort the world. The count is a measurement.
				r.fleetSendErrs++
			}
			r.fleetIdx[i]++
			r.fleetOfferedTotal++
		}
	}

	// Ledger path: retry what previous rounds refused, then the batch.
	r.flushPending()
	batch := r.buildBatch(tr)
	for i := range batch {
		r.produced++
		if len(r.pending) > 0 || !r.produce(&batch[i]) {
			r.pending = append(r.pending, batch[i])
		}
	}

	bs, err := r.node.Step()
	if err != nil {
		r.leaderless++
	}
	r.vnowMs += int64(bs.Records) * scenarioProcUs / 1000
	return r.drain()
}

// buildBatch assembles this round's acks=all corridor slice: replayed
// records re-stamped onto the virtual clock (plus any injected skew),
// with the traffic shape's spoof/fault fractions mutated in and the
// reorder probability applied as adjacent swaps.
func (r *scenarioRun) buildBatch(tr scenario.Traffic) []pendingLedger {
	h := r.h
	n := 0
	r.ledgerAcc += float64(h.cfg.LedgerPerRound) * tr.Rate
	for r.ledgerAcc >= 1 {
		r.ledgerAcc--
		n++
	}
	n += tr.Burst
	batch := make([]pendingLedger, 0, n)
	for k := 0; k < n; k++ {
		src := h.events[r.eventIdx%len(h.events)]
		r.eventIdx++
		rec := src.rec
		rec.TimestampMs = r.vnowMs + r.skewMs + int64(k)
		row := ackedRow{car: rec.Car, ts: rec.TimestampMs, truth: src.truth, scored: src.hasTruth}
		u := r.rng.Float64()
		switch {
		case u < tr.SpoofFrac:
			// Adversarial spoofed telemetry: an identity the corridor has
			// never seen, reporting implausible kinematics.
			r.spoofSeq++
			rec.Car = scenarioSpoofBase + trace.CarID(r.spoofSeq)
			rec.Speed *= 2.5
			rec.Accel = 40
			row.car, row.scored, row.spoofed = rec.Car, false, true
			r.spoofed++
		case u < tr.SpoofFrac+tr.FaultFrac:
			// Sensor fault: a stuck/garbage reading from a real car.
			rec.Speed = 0
			rec.Accel = -80
			row.scored = false
			r.faulty++
		}
		payload, err := core.EncodeRecord(rec)
		if err != nil {
			continue
		}
		batch = append(batch, pendingLedger{payload: payload, row: row})
	}
	if r.reorderProb > 0 {
		for i := 0; i+1 < len(batch); i += 2 {
			if r.rng.Float64() < r.reorderProb {
				batch[i], batch[i+1] = batch[i+1], batch[i]
			}
		}
	}
	return batch
}

// produce attempts one acks=all append and books the ledger row.
func (r *scenarioRun) produce(p *pendingLedger) bool {
	part, off, err := r.rset.Produce(stream.TopicInData, stream.AutoPartition, nil, p.payload, stream.AckAll)
	if err != nil {
		r.failed++
		if !p.retried {
			p.retried = true
			r.retried++
		}
		return false
	}
	p.row.part, p.row.off = part, off
	r.ledger = append(r.ledger, p.row)
	r.acked++
	return true
}

func (r *scenarioRun) flushPending() {
	for len(r.pending) > 0 {
		if !r.produce(&r.pending[0]) {
			return
		}
		r.pending = r.pending[1:]
	}
}

// drain delivers pending OUT-DATA warnings to the group member, booking
// exactly-once state, spoof attribution and latency samples.
func (r *scenarioRun) drain() error {
	for {
		//cad3:allow wireerrexhaustive leaderless-window fetch errors are the disruption under measurement, not a run failure; exactly-once booking below tolerates the gap
		msgs, _ := r.member.Poll(512)
		if len(msgs) == 0 {
			// Leaderless-window fetch errors are the disruption under
			// measurement, not a run failure.
			return nil
		}
		for i := range msgs {
			byOff := r.seen[msgs[i].Partition]
			if byOff == nil {
				byOff = make(map[int64]bool)
				r.seen[msgs[i].Partition] = byOff
			}
			if byOff[msgs[i].Offset] {
				r.dupDeliveries++
			}
			byOff[msgs[i].Offset] = true
			r.delivered++
			w, err := core.DecodeWarning(msgs[i].Value)
			if err != nil {
				continue
			}
			if w.Car >= scenarioSpoofBase {
				r.spoofWarn++
			}
			byTs := r.warned[w.Car]
			if byTs == nil {
				byTs = make(map[int64]bool)
				r.warned[w.Car] = byTs
			}
			byTs[w.SourceTsMs] = true
			l := r.vnowMs - w.SourceTsMs
			if l < 0 {
				l = 0
			}
			r.latMs = append(r.latMs, l)
		}
		stream.RecycleMessages(msgs)
	}
}

// Settle implements scenario.Harness: tick the control plane and drain
// the pipeline until the send queue is flushed and two consecutive
// iterations move nothing.
func (h *ScenarioHarness) Settle() error {
	r := h.run
	if r == nil {
		return fmt.Errorf("scenario harness: Settle before Reset")
	}
	quiet := 0
	for i := 0; i < 60 && quiet < 2; i++ {
		r.vnowMs += int64(h.cfg.TickRounds) * scenarioRoundMs
		r.rset.Tick()
		r.flushPending()
		before := r.delivered
		bs, err := r.node.Step()
		if err != nil {
			r.leaderless++
		}
		r.vnowMs += int64(bs.Records) * scenarioProcUs / 1000
		if derr := r.drain(); derr != nil {
			return derr
		}
		if len(r.pending) == 0 && bs.Records == 0 && r.delivered == before {
			quiet++
		} else {
			quiet = 0
		}
	}
	return nil
}

// Measure implements scenario.Harness: phase deltas plus the cumulative
// durability, control-plane and detection-quality books. Conditional
// measurements (latency quantiles with no samples, fn_rate with no
// labeled abnormal records, missed_deliveries during a leaderless
// window) are omitted rather than zeroed, so assertions on them fail
// loudly instead of passing vacuously — SCENARIOS.md documents each key.
func (h *ScenarioHarness) Measure() (scenario.Measurements, error) {
	r := h.run
	if r == nil {
		return nil, fmt.Errorf("scenario harness: Measure before Reset")
	}
	m := scenario.Measurements{}

	// Phase deltas.
	m["produced"] = float64(r.produced - r.base.produced)
	m["acked"] = float64(r.acked - r.base.acked)
	m["failed_produces"] = float64(r.failed - r.base.failed)
	m["retried_records"] = float64(r.retried - r.base.retried)
	m["spoofed"] = float64(r.spoofed - r.base.spoofed)
	m["faulty"] = float64(r.faulty - r.base.faulty)
	m["warnings"] = float64(r.delivered - r.base.delivered)
	m["spoof_warnings"] = float64(r.spoofWarn - r.base.spoofWarn)
	m["leaderless_steps"] = float64(r.leaderless - r.base.leaderless)

	var sent, paced, backpressured int64
	for _, v := range r.fleet.Vehicles() {
		sent += v.Sent()
		paced += v.Pacer().Decimated()
		backpressured += v.Pacer().Backpressured()
	}
	offered := r.fleetOfferedTotal - r.base.fleetOffered
	m["fleet_offered"] = float64(offered)
	m["fleet_sent"] = float64(sent - r.base.fleetSent)
	m["fleet_paced_out"] = float64(paced - r.base.fleetPaced)
	m["fleet_backpressured"] = float64(backpressured - r.base.fleetBackpressured)
	m["fleet_send_errors"] = float64(r.fleetSendErrs - r.base.fleetSendErrs)

	st := r.node.Stats()
	m["node_processed"] = float64(st.Records - r.base.nodeStats.Records)
	m["node_shed_stale"] = float64(st.ShedStale - r.base.nodeStats.ShedStale)
	m["node_detected"] = float64((st.Records - st.ShedStale) -
		(r.base.nodeStats.Records - r.base.nodeStats.ShedStale))
	m["node_degraded_rounds"] = float64(st.DegradedRounds - r.base.nodeStats.DegradedRounds)
	if offered > 0 {
		m["shed_fraction"] = (float64(paced-r.base.fleetPaced) +
			float64(st.ShedStale-r.base.nodeStats.ShedStale)) / float64(offered)
	}

	if len(r.latMs) > 0 {
		sorted := append([]int64(nil), r.latMs...)
		sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
		m["warn_p50_ms"] = float64(pctOf(sorted, 0.50).Milliseconds())
		m["warn_p99_ms"] = float64(pctOf(sorted, 0.99).Milliseconds())
		m["warn_max_ms"] = float64(pctOf(sorted, 1.0).Milliseconds())
	}

	// Cumulative books.
	m["acked_records"] = float64(len(r.ledger))
	m["pending_unacked"] = float64(len(r.pending))
	m["warnings_produced"] = float64(st.Warnings)
	m["warnings_delivered"] = float64(r.delivered)
	m["dup_deliveries"] = float64(r.dupDeliveries)
	snap := r.reg.Snapshot()
	m["elections"] = float64(snap.Counters["election.count"])
	m["generations"] = float64(snap.Counters["rebalance.generations"])
	m["isr_size"] = float64(snap.Gauges["repl.isr_size"])

	lost, unverified := r.durabilitySweep()
	m["lost_acked"] = float64(lost)
	m["unverified_acked"] = float64(unverified)

	if missed, ok := r.missedDeliveries(); ok {
		m["missed_deliveries"] = float64(missed)
	}

	var abnormal, warnedAbnormal int64
	for _, e := range r.ledger {
		if !e.scored || e.truth != core.ClassAbnormal {
			continue
		}
		abnormal++
		if r.warned[e.car][e.ts] {
			warnedAbnormal++
		}
	}
	m["abnormal_truth"] = float64(abnormal)
	if abnormal > 0 {
		m["fn_rate"] = 1 - float64(warnedAbnormal)/float64(abnormal)
	}
	return m, nil
}

// durabilitySweep reads every acked ledger offset back from the current
// leaders and compares identity. Partitions without a readable leader
// (mid-outage measure) count their rows as unverified, not lost — only a
// readable partition missing an acked record is a durability breach.
func (r *scenarioRun) durabilitySweep() (lost, unverified int) {
	byPart := map[int32]map[int64]ackedRow{}
	for _, e := range r.ledger {
		rows := byPart[e.part]
		if rows == nil {
			rows = map[int64]ackedRow{}
			byPart[e.part] = rows
		}
		rows[e.off] = e
	}
	parts := make([]int32, 0, len(byPart))
	for p := range byPart {
		parts = append(parts, p)
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i] < parts[j] })
	for _, p := range parts {
		want := byPart[p]
		got := map[int64]ackedRow{}
		off := int64(0)
		readable := true
		for {
			msgs, err := r.rset.Fetch(stream.TopicInData, p, off, 512)
			if err != nil {
				readable = false
				break
			}
			if len(msgs) == 0 {
				break
			}
			for i := range msgs {
				if rec, derr := core.DecodeRecord(msgs[i].Value); derr == nil {
					got[msgs[i].Offset] = ackedRow{car: rec.Car, ts: rec.TimestampMs}
				}
				off = msgs[i].Offset + 1
			}
			stream.RecycleMessages(msgs)
		}
		if !readable {
			unverified += len(want)
			continue
		}
		for o, e := range want {
			g, ok := got[o]
			if !ok || g.car != e.car || g.ts != e.ts {
				lost++
			}
		}
	}
	return lost, unverified
}

// missedDeliveries compares the exactly-once book against the OUT-DATA
// high watermarks. Reported only when every partition has a readable
// leader; a leaderless window makes the watermark unknowable, and a
// guessed zero would fake completeness.
func (r *scenarioRun) missedDeliveries() (int64, bool) {
	parts, err := r.rset.Client(stream.AckLeader).PartitionCount(stream.TopicOutData)
	if err != nil {
		return 0, false
	}
	var missed int64
	for p := 0; p < parts; p++ {
		id, _, ok := r.rset.Leader(stream.TopicOutData, int32(p))
		if !ok {
			return 0, false
		}
		b, _, berr := r.rset.BrokerFor(id)
		if berr != nil {
			return 0, false
		}
		hwm, herr := b.HighWaterMark(stream.TopicOutData, int32(p))
		if herr != nil {
			return 0, false
		}
		missed += hwm - int64(len(r.seen[int32(p)]))
	}
	return missed, true
}
