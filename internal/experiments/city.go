package experiments

import (
	"fmt"
	"strings"
	"time"

	"cad3/internal/city"
	"cad3/internal/geo"
	"cad3/internal/obsv"
)

// The city study is the acceptance drill for the sharded city driver
// (DESIGN.md §15): build a full synthetic city, partition it across N
// worker shards — each a replicated broker cluster — and replay a
// large vehicle fleet on one virtual clock. The study's verdict is the
// settlement ledger: every acked abnormal record delivered as exactly
// one warning, every ledgered cross-shard handover summary applied
// exactly once at its destination, and the per-shard dwell load within
// a small factor of the median.

// CityStudyConfig sizes the city study.
type CityStudyConfig struct {
	// Scale multiplies the synthetic network's street density; Extent
	// is the city's half-width in meters. Zero values select a compact
	// city (Scale 0.25, Extent 12 km) that still places hundreds of
	// RSU sites.
	Scale        float64
	ExtentMeters float64
	// Shards is the worker shard count. <= 0 selects 4.
	Shards int
	// Vehicles is the fleet size. <= 0 selects 10_000.
	Vehicles int
	// Replicas per shard broker cluster. <= 0 selects 3.
	Replicas int
	// Duration is the simulated span. <= 0 selects 10 minutes.
	Duration time.Duration
	// Seed drives the network build and every vehicle's randomness.
	Seed int64
	// Faults, when true, kills one replica per even shard mid-run and
	// revives it before the end — failover under live handover traffic.
	Faults bool
	// Metrics optionally receives the run's full registry.
	Metrics *obsv.Registry
}

func (c CityStudyConfig) withDefaults() CityStudyConfig {
	if c.Scale <= 0 {
		c.Scale = 0.25
	}
	if c.ExtentMeters <= 0 {
		c.ExtentMeters = 12_000
	}
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Vehicles <= 0 {
		c.Vehicles = 10_000
	}
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.Duration <= 0 {
		c.Duration = 10 * time.Minute
	}
	return c
}

// CityStudy is the study's result: the settlement report plus the city
// geometry it ran over.
type CityStudy struct {
	Config   CityStudyConfig
	Segments int
	Sites    []int // per-shard site counts
	Report   *city.Report
}

// RunCityStudy builds the synthetic city and runs the sharded driver.
func RunCityStudy(cfg CityStudyConfig) (*CityStudy, error) {
	cfg = cfg.withDefaults()
	net, err := geo.BuildNetwork(geo.BuildConfig{
		Scale:        cfg.Scale,
		ExtentMeters: cfg.ExtentMeters,
		Seed:         cfg.Seed,
	})
	if err != nil {
		return nil, fmt.Errorf("city study: build network: %w", err)
	}
	geo.ConnectNearest(net, 2, 1500)
	var faults []city.Fault
	if cfg.Faults {
		for s := 0; s < cfg.Shards; s += 2 {
			faults = append(faults,
				city.Fault{At: cfg.Duration / 4, Shard: s, Replica: 0},
				city.Fault{At: cfg.Duration * 3 / 4, Shard: s, Replica: 0, Revive: true},
			)
		}
	}
	driver, err := city.NewDriver(city.Config{
		Network:  net,
		Shards:   cfg.Shards,
		Vehicles: cfg.Vehicles,
		Replicas: cfg.Replicas,
		Duration: cfg.Duration,
		Seed:     cfg.Seed,
		Faults:   faults,
		Metrics:  cfg.Metrics,
	})
	if err != nil {
		return nil, fmt.Errorf("city study: %w", err)
	}
	rep, err := driver.Run()
	if err != nil {
		return nil, fmt.Errorf("city study: %w", err)
	}
	return &CityStudy{
		Config:   cfg,
		Segments: net.SegmentCount(),
		Sites:    driver.Partition().ShardSiteCounts(),
		Report:   rep,
	}, nil
}

// FormatCityStudy renders the study as the EXPERIMENTS.md city table.
func FormatCityStudy(s *CityStudy) string {
	var b strings.Builder
	r := s.Report
	fmt.Fprintf(&b, "City study: %d vehicles over %d segments / %d RSU sites, %d shards x %d replicas, %s simulated (seed %d)\n",
		r.Vehicles, s.Segments, r.Sites, r.Shards, s.Config.Replicas, s.Config.Duration, s.Config.Seed)
	fmt.Fprintf(&b, "shard sites: %v\n\n", s.Sites)
	b.WriteString("| metric | value |\n|---|---|\n")
	row := func(k string, v int64) { fmt.Fprintf(&b, "| %s | %d |\n", k, v) }
	row("sim events", r.SimEvents)
	row("telemetry records", r.Telemetry)
	row("abnormal episodes", r.Abnormal)
	row("warnings delivered", r.WarningsDelivered)
	row("warnings lost", r.WarningsLost)
	row("warnings duplicated", r.WarningsDup)
	row("false warnings", r.FalseWarnings)
	row("shard handovers", r.Handovers)
	row("handover summaries forwarded", r.HandoverSummaries)
	row("handover summaries applied", r.HandoverApplied)
	row("handover summaries lost", r.HandoverLost)
	row("handover duplicates suppressed", r.HandoverDups)
	row("handovers misrouted", r.HandoverMisrouted)
	row("site handovers (shard-local)", r.SiteHandovers)
	row("collaborative prior hits", r.PriorHits)
	row("leader elections", r.Elections)
	row("produce retries", r.ProduceRetries)
	fmt.Fprintf(&b, "| shard dwell skew | %.2fx |\n", r.Skew())
	verdict := "CLEAN — zero loss, zero double-count"
	if !r.SettlementClean() {
		verdict = "DIRTY"
	}
	fmt.Fprintf(&b, "\nSettlement: %s\n", verdict)
	return b.String()
}
