package experiments

import (
	"path/filepath"
	"strings"
	"testing"

	"cad3/internal/scenario"
)

// testHarness builds a ScenarioHarness over the shared cached test
// scenario. Each engine run Resets it, so one harness serves every test.
func testHarness(t *testing.T) *ScenarioHarness {
	t.Helper()
	h, err := NewScenarioHarness(ScenarioHarnessConfig{Scenario: testScenario(t)})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestScenarioCorpusPasses replays every checked-in scenarios/*.json
// spec against the full stack — the same gate `make scenarios` runs in
// CI. A failure here means a spec's pinned invariant regressed.
func TestScenarioCorpusPasses(t *testing.T) {
	specs, names, err := scenario.LoadCorpus(filepath.Join("..", "..", "scenarios"))
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) < 5 {
		t.Fatalf("corpus holds %d specs, want >= 5", len(specs))
	}
	h := testHarness(t)
	e := scenario.New(scenario.Config{})
	var cityH *CityScenarioHarness
	for i, s := range specs {
		var target scenario.Harness = h
		if strings.HasPrefix(s.Name, "city-") {
			// city-* specs replay against the sharded city harness,
			// same selection rule cmd/cad3-scenario applies.
			if cityH == nil {
				cityH, err = NewCityScenarioHarness(CityHarnessConfig{})
				if err != nil {
					t.Fatal(err)
				}
			}
			target = cityH
		}
		res, err := e.Run(s, target)
		if err != nil {
			t.Fatalf("%s: %v", names[i], err)
		}
		if !res.Pass {
			t.Errorf("%s: %d assertion(s) failed\n%s", names[i], res.Failures, res.Transcript)
		}
	}
}

// TestScenarioHarnessDeterministic pins the determinism contract at the
// full-stack level: the same spec replayed twice through the real
// harness yields byte-identical transcripts, and a different seed does
// not.
func TestScenarioHarnessDeterministic(t *testing.T) {
	spec := &scenario.Spec{
		Version: scenario.SpecVersion, Name: "determinism-probe", Seed: 3,
		Phases: []scenario.PhaseSpec{
			{
				Name: "churn", Rounds: 24,
				Traffic: scenario.TrafficSpec{Shape: "spoof", Rate: 1.5, SpoofFrac: 0.25},
				Actions: []scenario.ActionSpec{
					{At: 2, Type: "link_loss", Prob: 0.2},
					{At: 4, Type: "link_delay", Prob: 0.5, MinMs: 5, MaxMs: 40},
					{At: 6, Type: "kill_leader"},
					{At: 16, Type: "revive", Replica: "r0"},
				},
			},
			{Name: "drain", Rounds: 12, Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	h := testHarness(t)
	e := scenario.New(scenario.Config{})
	r1, err := e.Run(spec, h)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(spec, h)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Transcript != r2.Transcript {
		t.Fatal("same spec, same harness, different transcripts — the replay is not deterministic")
	}
	reseeded := spec.Clone()
	reseeded.Seed = 4
	r3, err := e.Run(reseeded, h)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Transcript == r1.Transcript {
		t.Fatal("different seeds produced identical transcripts — the seed is not reaching the run")
	}
}

// TestScenarioExplorerMinimizesOnRealHarness drives the explorer's
// minimize path against the full stack: a spec carrying an impossible
// assertion must be confirmed failing and survive minimization still
// failing — the cmd/cad3-scenario -selfcheck path, as a test.
func TestScenarioExplorerMinimizesOnRealHarness(t *testing.T) {
	spec := &scenario.Spec{
		Version: scenario.SpecVersion, Name: "impossible", Seed: 8,
		Phases: []scenario.PhaseSpec{
			{
				Name: "a", Rounds: 4,
				Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1},
				Actions: []scenario.ActionSpec{{At: 1, Type: "clock_skew", SkewMs: 25}},
			},
			{
				Name: "b", Rounds: 4,
				Traffic:    scenario.TrafficSpec{Shape: "steady", Rate: 1},
				Assertions: []scenario.AssertionSpec{{Metric: "acked_records", Op: "<", Value: 0}},
			},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	h := testHarness(t)
	e := scenario.New(scenario.Config{})
	x := &scenario.Explorer{Engine: e, Harness: h}
	min, runs, err := x.Minimize(spec)
	if err != nil {
		t.Fatal(err)
	}
	if runs < 2 {
		t.Fatalf("minimizer spent only %d runs", runs)
	}
	res, err := e.Run(min, h)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("minimized spec no longer fails")
	}
	if len(min.Phases) > len(spec.Phases) {
		t.Fatalf("minimized spec grew: %d phases", len(min.Phases))
	}
}
