package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/flow"
	"cad3/internal/obsv"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
	"cad3/internal/vehicle"
)

// The overload study answers the question the paper's evaluation holds
// fixed: what happens when the offered telemetry load exceeds what the
// RSU can process? It replays the corridor link records through the full
// bounded pipeline — paced vehicles, flow-controlled broker, adaptively
// batched RSU with degraded-mode admission — at a sweep of load
// multipliers, on a virtual clock, and reports the goodput / warning-p99
// / shed-fraction curve. The graceful-degradation contract: warning
// latency stays bounded (the backlog cannot exceed the admission gates),
// the shed fraction is reported rather than silent, and no warning or
// neighbour summary is ever dropped — only stale low-value telemetry.

// OverloadConfig configures the study.
type OverloadConfig struct {
	// Scenario supplies the corridor link records and the trained CAD3
	// detector. Required.
	Scenario *Scenario
	// Multipliers are the offered-load multiples of the nominal 10 Hz
	// fleet rate to sweep. Empty selects {1, 2, 4, 8}.
	Multipliers []float64
	// Vehicles is the fleet size. Values <= 0 select 60.
	Vehicles int
	// Rounds is the number of 50 ms batch windows driven per multiplier
	// (the tail is drained afterwards). Values <= 0 select 400.
	Rounds int
	// Partitions per topic. Values <= 0 select 2.
	Partitions int
	// FlowCapacity is the per-partition admission bound (credits). Values
	// <= 0 select 128.
	FlowCapacity int
	// BatchSLO is the adaptive batcher's per-batch latency objective.
	// Values <= 0 select 25 ms.
	BatchSLO time.Duration
	// ProcCost is the modeled per-record detection cost the virtual clock
	// charges (the paper's real pipeline spends most of its latency
	// here). Values <= 0 select 500 µs.
	ProcCost time.Duration
	// ShedStaleAfter is the node's degraded-mode staleness threshold.
	// Values <= 0 select 150 ms.
	ShedStaleAfter time.Duration
	// MaxDecimation / RecoverAfter configure the vehicles' send pacers.
	// Values <= 0 select 8 and 16.
	MaxDecimation int
	RecoverAfter  int
}

func (c OverloadConfig) withDefaults() OverloadConfig {
	if len(c.Multipliers) == 0 {
		c.Multipliers = []float64{1, 2, 4, 8}
	}
	if c.Vehicles <= 0 {
		c.Vehicles = 60
	}
	if c.Rounds <= 0 {
		c.Rounds = 400
	}
	if c.Partitions <= 0 {
		c.Partitions = 2
	}
	if c.FlowCapacity <= 0 {
		c.FlowCapacity = 128
	}
	if c.BatchSLO <= 0 {
		c.BatchSLO = 25 * time.Millisecond
	}
	if c.ProcCost <= 0 {
		c.ProcCost = 500 * time.Microsecond
	}
	if c.ShedStaleAfter <= 0 {
		c.ShedStaleAfter = 150 * time.Millisecond
	}
	if c.MaxDecimation <= 0 {
		c.MaxDecimation = 8
	}
	if c.RecoverAfter <= 0 {
		c.RecoverAfter = 16
	}
	return c
}

// OverloadPoint is one multiplier's measured outcome.
type OverloadPoint struct {
	Multiplier float64
	// Offered counts send attempts at the full (multiplied) rate;
	// SentWire is what actually left the vehicles after pacing.
	Offered  int64
	SentWire int64
	// PacedOut counts samples the vehicles decimated locally;
	// Backpressured counts sends the gate refused (absorbed, not
	// retried).
	PacedOut      int64
	Backpressured int64
	// GateShed / GateRejected are the broker IN-DATA gate's refusals.
	GateShed     int64
	GateRejected int64
	// Processed counts records the node drained; ShedStale of those were
	// shed by degraded-mode admission before detection ran.
	Processed int64
	ShedStale int64
	// Detected = Processed - ShedStale: records the detector actually ran.
	Detected        int64
	DegradedRounds  int64
	MaxDecimation   int
	FinalBatchLimit int64
	// Warnings were produced by the node; WarningsDelivered reached the
	// OUT-DATA consumer. The two must match: warnings are never shed.
	Warnings          int64
	WarningsDelivered int64
	// WarningGateRefusals / SummaryGateRefusals count OUT-DATA / CO-DATA
	// admission refusals — the never-shed invariant demands zero.
	WarningGateRefusals int64
	SummaryGateRefusals int64
	SummariesOffered    int64
	SummariesDelivered  int64
	// WarnP50 / WarnP99 are send-to-delivery warning latencies in
	// simulated time.
	WarnP50, WarnP99 time.Duration
	// GoodputPerSec is detected records per simulated second.
	GoodputPerSec float64
	// ShedFraction = (PacedOut + GateShed + GateRejected + ShedStale) /
	// Offered — every intentional drop, over what the fleet wanted to send.
	ShedFraction float64
	// SimElapsed is the simulated duration including the tail drain.
	SimElapsed time.Duration
}

// OverloadResult is the study outcome: one point per multiplier.
type OverloadResult struct {
	Points []OverloadPoint
}

// RunOverloadStudy sweeps the load multipliers, one fresh pipeline each.
// Deterministic: single-worker engine, virtual clock driven by the round
// counter plus the modeled per-record detection cost.
func RunOverloadStudy(cfg OverloadConfig) (*OverloadResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Scenario == nil {
		return nil, fmt.Errorf("experiments: overload study needs a scenario")
	}
	if len(cfg.Scenario.TestLink) == 0 {
		return nil, fmt.Errorf("experiments: scenario has no corridor link records")
	}
	res := &OverloadResult{}
	for _, m := range cfg.Multipliers {
		pt, err := runOverloadPoint(cfg, m)
		if err != nil {
			return nil, fmt.Errorf("overload x%.2g: %w", m, err)
		}
		res.Points = append(res.Points, pt)
	}
	return res, nil
}

func runOverloadPoint(cfg OverloadConfig, multiplier float64) (OverloadPoint, error) {
	pt := OverloadPoint{Multiplier: multiplier}
	const (
		intervalMs  = 50  // batch window (paper: 50 ms)
		sendEveryMs = 100 // nominal per-vehicle send period (10 Hz)
		baseMs      = int64(1_700_000_000_000)
	)

	// Virtual clock: the round counter advances the wall, and every record
	// the detector runs charges ProcCost — so the engine's measured batch
	// latency, the warning timestamps, and the staleness ages all come from
	// one consistent timeline. Shed records charge nothing: shedding is the
	// act of skipping the detector.
	procUs := cfg.ProcCost.Microseconds()
	vbaseMs := baseMs
	var node *rsu.Node
	curMs := func() int64 {
		ms := vbaseMs
		if node != nil {
			st := node.Stats()
			ms += (st.Records - st.ShedStale) * procUs / 1000
		}
		return ms
	}
	now := func() time.Time { return time.UnixMilli(curMs()) }

	reg := obsv.NewRegistry()
	broker := stream.NewBroker(stream.BrokerConfig{
		Now:          now,
		Metrics:      reg,
		FlowCapacity: cfg.FlowCapacity,
		// FlowPolicy nil: the pipeline-default PriorityShed — telemetry
		// sheds under pressure, warnings and summaries never do.
	})
	client := stream.NewInProcClient(broker)

	var err error
	node, err = rsu.New(rsu.Config{
		Name:           "Overload",
		Road:           CorridorLinkID,
		Detector:       cfg.Scenario.CAD3,
		Client:         client,
		Workers:        1, // deterministic replay
		Partitions:     cfg.Partitions,
		BatchSLO:       cfg.BatchSLO,
		ShedStaleAfter: cfg.ShedStaleAfter,
		Now:            now,
		Metrics:        reg,
	})
	if err != nil {
		return pt, err
	}

	fleet, err := vehicle.NewFleet(cfg.Vehicles, cfg.Scenario.TestLink,
		func(int) stream.Client { return client },
		vehicle.Config{
			Loop: true,
			Now:  now,
			Pacing: flow.PacerConfig{
				MaxDecimation: cfg.MaxDecimation,
				RecoverAfter:  cfg.RecoverAfter,
			},
		})
	if err != nil {
		return pt, err
	}

	// Seed the CO-DATA priors: the upstream RSU's forwarded summaries say
	// every vehicle in the fleet has been behaving — the evidence the
	// degraded-mode shed requires before it may drop a stale sample.
	coProducer, err := stream.NewProducer(client, stream.TopicCoData)
	if err != nil {
		return pt, err
	}
	for i := 1; i <= cfg.Vehicles; i++ {
		payload, serr := core.EncodeSummary(core.PredictionSummary{
			Car:         trace.CarID(i),
			MeanPNormal: 0.9,
			Count:       10,
			FromRoad:    int64(CorridorMotorwayID),
			UpdatedMs:   curMs(),
		})
		if serr != nil {
			return pt, serr
		}
		if _, _, serr = coProducer.Send(nil, payload); serr != nil {
			return pt, fmt.Errorf("seed summary car %d: %w", i, serr)
		}
		pt.SummariesOffered++
	}

	outCons, err := stream.NewConsumer(client, stream.TopicOutData, 0)
	if err != nil {
		return pt, err
	}
	var latMs []int64
	drainWarnings := func() error {
		for {
			msgs, perr := outCons.Poll(4096)
			if len(msgs) == 0 {
				if perr != nil {
					return perr
				}
				return nil
			}
			for _, msg := range msgs {
				w, derr := core.DecodeWarning(msg.Value)
				if derr != nil {
					continue
				}
				pt.WarningsDelivered++
				l := curMs() - w.SourceTsMs
				if l < 0 {
					l = 0
				}
				latMs = append(latMs, l)
			}
			stream.RecycleMessages(msgs)
		}
	}

	// Drive the rounds: each 50 ms window the fleet offers
	// multiplier x (window / send period) records per vehicle, then the
	// node runs one micro-batch and the warnings are collected.
	perRound := multiplier * float64(intervalMs) / float64(sendEveryMs)
	acc := make([]float64, cfg.Vehicles)
	idx := make([]int, cfg.Vehicles)
	for round := 0; round < cfg.Rounds; round++ {
		vbaseMs += intervalMs
		for i, v := range fleet.Vehicles() {
			acc[i] += perRound
			for acc[i] >= 1 {
				acc[i]--
				if _, serr := v.SendNext(idx[i]); serr != nil {
					return pt, fmt.Errorf("vehicle %d send: %w", i+1, serr)
				}
				idx[i]++
				pt.Offered++
			}
			if d := v.Pacer().Decimation(); d > pt.MaxDecimation {
				pt.MaxDecimation = d
			}
		}
		if _, serr := node.Step(); serr != nil {
			return pt, fmt.Errorf("node step: %w", serr)
		}
		if derr := drainWarnings(); derr != nil {
			return pt, derr
		}
	}

	// Drain the admitted tail so every produced warning is counted (the
	// gates bound the backlog, so this converges fast).
	for extra, empty := 0, 0; empty < 2 && extra < 1000; extra++ {
		vbaseMs += intervalMs
		bs, serr := node.Step()
		if serr != nil {
			return pt, fmt.Errorf("drain step: %w", serr)
		}
		if derr := drainWarnings(); derr != nil {
			return pt, derr
		}
		if bs.Records == 0 {
			empty++
		} else {
			empty = 0
		}
	}

	// Collect the accounting from every layer.
	st := node.Stats()
	pt.Processed = st.Records
	pt.ShedStale = st.ShedStale
	pt.Detected = st.Records - st.ShedStale
	pt.DegradedRounds = st.DegradedRounds
	pt.Warnings = st.Warnings
	pt.SummariesDelivered = st.SummariesReceived
	for _, v := range fleet.Vehicles() {
		pt.SentWire += v.Sent()
		pt.PacedOut += v.Pacer().Decimated()
		pt.Backpressured += v.Pacer().Backpressured()
	}
	in := broker.FlowStats(stream.TopicInData)
	pt.GateShed = in.Shed[flow.ClassTelemetry]
	pt.GateRejected = in.Rejected
	out := broker.FlowStats(stream.TopicOutData)
	pt.WarningGateRefusals = out.Rejected + out.ShedTotal()
	co := broker.FlowStats(stream.TopicCoData)
	pt.SummaryGateRefusals = co.Rejected + co.ShedTotal()
	pt.FinalBatchLimit = reg.Snapshot().Gauges["flow.node.batch_limit"]

	pt.SimElapsed = time.Duration(curMs()-baseMs) * time.Millisecond
	if secs := pt.SimElapsed.Seconds(); secs > 0 {
		pt.GoodputPerSec = float64(pt.Detected) / secs
	}
	if pt.Offered > 0 {
		pt.ShedFraction = float64(pt.PacedOut+pt.GateShed+pt.GateRejected+pt.ShedStale) /
			float64(pt.Offered)
	}
	sort.Slice(latMs, func(i, j int) bool { return latMs[i] < latMs[j] })
	pt.WarnP50 = pctOf(latMs, 0.50)
	pt.WarnP99 = pctOf(latMs, 0.99)
	return pt, nil
}

// pctOf reads the q-quantile of sorted millisecond latencies.
func pctOf(sorted []int64, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return time.Duration(sorted[i]) * time.Millisecond
}

// FormatOverloadResult renders the goodput / latency / shed curve.
func FormatOverloadResult(res *OverloadResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-6s %9s %9s %7s %9s %9s %8s %8s %9s %9s %6s\n",
		"load", "offered", "goodput", "shed%", "paced", "gate-shed",
		"stale", "warn-p50", "warn-p99", "degraded", "limit")
	for _, p := range res.Points {
		fmt.Fprintf(&sb, "%-6s %9d %7.0f/s %6.1f%% %9d %9d %8d %8s %9s %9d %6d\n",
			fmt.Sprintf("x%.3g", p.Multiplier), p.Offered, p.GoodputPerSec,
			p.ShedFraction*100, p.PacedOut, p.GateShed, p.ShedStale,
			p.WarnP50.Round(time.Millisecond), p.WarnP99.Round(time.Millisecond),
			p.DegradedRounds, p.FinalBatchLimit)
	}
	for _, p := range res.Points {
		fmt.Fprintf(&sb, "x%.3g: warnings %d produced / %d delivered (gate refusals %d); summaries %d offered / %d delivered (gate refusals %d); max decimation %d\n",
			p.Multiplier, p.Warnings, p.WarningsDelivered, p.WarningGateRefusals,
			p.SummariesOffered, p.SummariesDelivered, p.SummaryGateRefusals,
			p.MaxDecimation)
	}
	return sb.String()
}
