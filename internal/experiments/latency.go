package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/metrics"
	"cad3/internal/netem"
	"cad3/internal/obsv"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// ProcessingModel converts batch size to virtual processing time. The
// defaults are calibrated to the paper's measurements on its 6-worker
// Spark cluster (7.3 ms per batch at 8 vehicles, 11.7 ms at 256): the
// fixed part is Spark micro-batch scheduling overhead, the linear part
// per-record classification cost. (The Go detectors themselves classify a
// record in ~1 us; the model represents the paper's substrate, not ours.)
type ProcessingModel struct {
	Base      time.Duration
	PerRecord time.Duration
}

// DefaultProcessingModel solves the paper's two calibration points.
func DefaultProcessingModel() ProcessingModel {
	return ProcessingModel{Base: 7150 * time.Microsecond, PerRecord: 35500 * time.Nanosecond}
}

// Cost returns the processing time for a batch of n records.
func (p ProcessingModel) Cost(n int) time.Duration {
	return p.Base + time.Duration(n)*p.PerRecord
}

// DisseminationModel adds the consumer-side fetch overhead the paper
// measures (§VI-D3 decomposes dissemination as 10 ms poll + 7.2 +- 4.4 ms
// fetch/deserialize): each delivered warning pays a jittered overhead on
// top of the poll-alignment wait the simulation produces naturally.
type DisseminationModel struct {
	FetchOverhead time.Duration
	FetchJitter   time.Duration
}

// DefaultDisseminationModel matches the paper's 7.2 +- 4.4 ms.
func DefaultDisseminationModel() DisseminationModel {
	return DisseminationModel{FetchOverhead: 7200 * time.Microsecond, FetchJitter: 4400 * time.Microsecond}
}

func (d DisseminationModel) sample(rng *rand.Rand) time.Duration {
	j := time.Duration((rng.Float64()*2 - 1) * float64(d.FetchJitter))
	out := d.FetchOverhead + j
	if out < 0 {
		out = 0
	}
	return out
}

// LatencyConfig configures the Figure 6a/6c discrete-event experiment:
// N vehicles stream 200 B records at 10 Hz over the emulated DSRC channel
// into one RSU running 50 ms micro-batches; warnings flow back through
// 10 ms consumer polls.
type LatencyConfig struct {
	// Vehicles attached to the RSU (paper sweeps 8..256).
	Vehicles int
	// Duration is the virtual experiment length. Values <= 0 select 5 s.
	Duration time.Duration
	// BatchInterval (50 ms), SendInterval (100 ms = 10 Hz) and
	// PollInterval (10 ms) default to the paper's settings.
	BatchInterval time.Duration
	SendInterval  time.Duration
	PollInterval  time.Duration
	// MCS selects the DSRC modulation; zero selects MCS8 (64-QAM 3/4).
	// Per the paper's own Equation 5 analysis, MCS 3 barely fits 256
	// vehicles in one 100 ms reporting period (92.62 ms) and §VII-B
	// prescribes higher-rate modes for dense deployments; with this
	// repository's fuller 802.11p frame model MCS 3 saturates at 256
	// vehicles, so the dense-deployment mode is the default.
	MCS netem.MCS
	// Seed drives jitter.
	Seed int64
	// Records is the telemetry replay pool. Required.
	Records []trace.Record
	// Detector classifies records. Required (priors are not exercised
	// here; this is the single-RSU network experiment).
	Detector core.Detector
	// Proc and Diss inject the substrate cost models.
	Proc ProcessingModel
	Diss DisseminationModel
}

func (c LatencyConfig) withDefaults() LatencyConfig {
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.BatchInterval <= 0 {
		c.BatchInterval = 50 * time.Millisecond
	}
	if c.SendInterval <= 0 {
		c.SendInterval = 100 * time.Millisecond
	}
	if c.PollInterval <= 0 {
		c.PollInterval = 10 * time.Millisecond
	}
	if c.MCS == 0 {
		c.MCS = netem.MCS8
	}
	if c.Proc == (ProcessingModel{}) {
		c.Proc = DefaultProcessingModel()
	}
	if c.Diss == (DisseminationModel{}) {
		c.Diss = DefaultDisseminationModel()
	}
	return c
}

// LatencyResult is one point of Figure 6a and 6c.
type LatencyResult struct {
	Vehicles int
	Report   metrics.LatencyReport
	// Live is the same experiment measured through the wire-format trace
	// context (obsv.TraceContext riding the record frame's padding and the
	// warning's trace tail) instead of the offline bookkeeping maps: every
	// stage stamps the payload in flight and the poll loop completes the
	// breakdown per warning. Offline reconstruction (Report) and the live
	// path must agree — TestLatencyLiveTraceMatchesOffline pins the means
	// within a millisecond.
	Live metrics.LatencyReport
	// LiveTraced counts warnings whose trace context survived the full
	// pipeline (equal to Warnings when every hop is trace-aware).
	LiveTraced int
	Warnings   int64
	Records    int64
	// PerVehicleBps is the mean uplink rate per vehicle; TotalBps the
	// RSU's received bandwidth (Figure 6c).
	PerVehicleBps float64
	TotalBps      float64
}

// RunLatency executes the single-RSU discrete-event pipeline.
func RunLatency(cfg LatencyConfig) (*LatencyResult, error) {
	cfg = cfg.withDefaults()
	if cfg.Vehicles <= 0 {
		return nil, fmt.Errorf("experiments: vehicles must be positive")
	}
	if len(cfg.Records) == 0 {
		return nil, fmt.Errorf("experiments: latency run needs a record pool")
	}
	if cfg.Detector == nil {
		return nil, fmt.Errorf("experiments: latency run needs a detector")
	}

	start := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	sim := netem.NewSimulator(start)
	rng := rand.New(rand.NewSource(cfg.Seed))

	htb, err := netem.NewHTB(netem.DSRCBandwidthBps, start)
	if err != nil {
		return nil, err
	}
	medium, err := netem.NewMedium(netem.MediumConfig{MCS: cfg.MCS, HTB: htb, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}

	broker := stream.NewBroker(stream.BrokerConfig{Now: sim.Now})
	for _, topic := range []string{stream.TopicInData, stream.TopicOutData} {
		if err := broker.CreateTopic(topic, stream.DefaultPartitions); err != nil {
			return nil, err
		}
	}
	client := stream.NewInProcClient(broker)
	inConsumer, err := stream.NewConsumer(client, stream.TopicInData, 0)
	if err != nil {
		return nil, err
	}
	outProducer, err := stream.NewProducer(client, stream.TopicOutData)
	if err != nil {
		return nil, err
	}

	// Pending breakdowns keyed by (car, source timestamp).
	type key struct {
		car trace.CarID
		ts  int64
	}
	arrivals := make(map[key]time.Time)
	pending := make(map[key]metrics.LatencyBreakdown)
	recorder := metrics.NewLatencyRecorder()
	live := metrics.NewBreakdownAccumulator()
	var warnings, records int64
	end := start.Add(cfg.Duration)

	// Vehicle send loops, desynchronized across the send interval.
	for v := 1; v <= cfg.Vehicles; v++ {
		v := v
		class := fmt.Sprintf("veh-%d", v)
		if err := htb.AddClass(class, netem.PerVehicleFloorBps, 0); err != nil {
			return nil, err
		}
		offset := time.Duration(rng.Int63n(int64(cfg.SendInterval)))
		idx := rng.Intn(len(cfg.Records))
		var tick func()
		tick = func() {
			now := sim.Now()
			if now.After(end) {
				return
			}
			rec := cfg.Records[idx%len(cfg.Records)]
			idx++
			rec.Car = trace.CarID(v)
			rec.TimestampMs = now.UnixMilli()
			// Pooled encode: the closure owns the buffer until the MAC
			// delivery event fires and the broker clones it. The trace
			// context rides the frame's padding; StageSent uses the
			// record's own (ms-truncated) timestamp so the live Tx matches
			// the offline reconstruction exactly.
			var tc obsv.TraceContext
			tc.Stamp(obsv.StageSent, time.UnixMilli(rec.TimestampMs))
			payload := core.AppendRecordTraced(stream.GetPayload(), rec, tc)
			sent := now
			if delivered, terr := medium.Transmit(class, len(payload), now); terr == nil {
				k := key{car: rec.Car, ts: rec.TimestampMs}
				sim.At(delivered, func() {
					if _, _, perr := broker.Produce(stream.TopicInData, stream.AutoPartition, nil, payload); perr == nil {
						arrivals[k] = sim.Now()
						_ = sent
					}
					stream.PutPayload(payload)
				})
			} else {
				stream.PutPayload(payload)
			}
			sim.After(cfg.SendInterval, tick)
		}
		sim.After(offset, tick)
	}

	// RSU micro-batch loop. Poll failures cannot abort a sim callback
	// mid-flight; the first one is kept and fails the run afterwards.
	var pollErr error
	var batch func()
	var inMsgs []stream.Message
	var batchID uint64
	batch = func() {
		now := sim.Now()
		if now.After(end) {
			return
		}
		var perr error
		inMsgs, perr = inConsumer.PollInto(inMsgs[:0], 1<<16)
		if perr != nil && pollErr == nil {
			pollErr = fmt.Errorf("latency: rsu poll: %w", perr)
		}
		msgs := inMsgs
		if len(msgs) > 0 {
			batchID++
			records += int64(len(msgs))
			cost := cfg.Proc.Cost(len(msgs))
			done := now.Add(cost)
			for _, m := range msgs {
				rec, derr := core.DecodeRecord(m.Value)
				if derr != nil {
					continue
				}
				det, derr := cfg.Detector.Detect(rec, nil)
				if derr != nil || !det.Abnormal() {
					continue
				}
				k := key{car: rec.Car, ts: rec.TimestampMs}
				arr, ok := arrivals[k]
				if !ok {
					continue
				}
				delete(arrivals, k)
				sent := time.UnixMilli(rec.TimestampMs)
				pending[k] = metrics.LatencyBreakdown{
					Tx:         arr.Sub(sent),
					Queue:      now.Sub(arr),
					Processing: cost,
				}
				w := core.Warning{
					Car:          rec.Car,
					Road:         int64(rec.Road),
					PNormal:      det.PNormal,
					SourceTsMs:   rec.TimestampMs,
					DetectedTsMs: done.UnixMilli(),
				}
				// Live path: the record frame carries Sent (vehicle) and
				// Arrive (broker log-append time); this loop adds the
				// dequeue and detection stamps and forwards the context on
				// the warning's trace tail.
				var payload []byte
				if tc, traced := core.RecordTrace(m.Value); traced {
					tc.BatchID = batchID
					tc.Stamp(obsv.StageDequeue, now)
					tc.Stamp(obsv.StageDetect, done)
					payload = core.AppendWarningTraced(stream.GetPayload(), w, tc)
				} else {
					payload = core.AppendWarning(stream.GetPayload(), w)
				}
				sim.At(done, func() {
					_, _, _ = outProducer.Send(nil, payload)
					stream.PutPayload(payload)
				})
			}
			stream.RecycleMessages(msgs)
		}
		sim.After(cfg.BatchInterval, batch)
	}
	sim.After(cfg.BatchInterval, batch)

	// Warning dissemination: one shared poll loop standing in for the
	// per-vehicle consumers (they all poll at the same 10 ms period; the
	// per-warning fetch overhead is sampled from the dissemination
	// model).
	outConsumer, err := stream.NewConsumer(client, stream.TopicOutData, 0)
	if err != nil {
		return nil, err
	}
	var poll func()
	var outMsgs []stream.Message
	poll = func() {
		now := sim.Now()
		if now.After(end.Add(200 * time.Millisecond)) { // drain tail
			return
		}
		var perr error
		outMsgs, perr = outConsumer.PollInto(outMsgs[:0], 1<<14)
		if perr != nil && pollErr == nil {
			pollErr = fmt.Errorf("latency: dissemination poll: %w", perr)
		}
		msgs := outMsgs
		for _, m := range msgs {
			w, derr := core.DecodeWarning(m.Value)
			if derr != nil {
				continue
			}
			k := key{car: w.Car, ts: w.SourceTsMs}
			lb, ok := pending[k]
			if !ok {
				continue
			}
			delete(pending, k)
			detected := time.UnixMilli(w.DetectedTsMs)
			ds := cfg.Diss.sample(rng)
			lb.Dissemination = now.Sub(detected) + ds
			recorder.Record(lb)
			warnings++
			// Live path: the delivery stamp closes the trace; the same
			// jittered fetch-overhead sample rides on top so both paths
			// measure the same warning.
			if tc, traced := core.WarningTrace(m.Value); traced {
				tc.Stamp(obsv.StageDeliver, now.Add(ds))
				if bd, complete := tc.Breakdown(); complete {
					live.Observe(bd)
				}
			}
		}
		stream.RecycleMessages(msgs)
		sim.After(cfg.PollInterval, poll)
	}
	sim.After(cfg.PollInterval, poll)

	sim.RunUntil(end.Add(300 * time.Millisecond))
	if pollErr != nil {
		return nil, pollErr
	}

	st := medium.Stats()
	dur := cfg.Duration.Seconds()
	total := float64(st.WireBytes) * 8 / dur
	return &LatencyResult{
		Vehicles:      cfg.Vehicles,
		Report:        recorder.Report(),
		Live:          live.Report(),
		LiveTraced:    live.Count(),
		Warnings:      warnings,
		Records:       records,
		PerVehicleBps: total / float64(cfg.Vehicles),
		TotalBps:      total,
	}, nil
}

// RunLatencyScaling sweeps vehicle counts (Figure 6a/6c; the paper uses
// 8, 16, 32, 64, 128, 256).
func RunLatencyScaling(counts []int, base LatencyConfig) ([]*LatencyResult, error) {
	if len(counts) == 0 {
		counts = []int{8, 16, 32, 64, 128, 256}
	}
	out := make([]*LatencyResult, 0, len(counts))
	for _, n := range counts {
		cfg := base
		cfg.Vehicles = n
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, fmt.Errorf("latency run %d vehicles: %w", n, err)
		}
		out = append(out, res)
	}
	return out, nil
}

// FormatLatencyResults renders the Figure 6a + 6c series. The live-total
// column is the wire-trace measurement of the same warnings (see
// LatencyResult.Live) — it should track the offline total within a
// millisecond.
func FormatLatencyResults(results []*LatencyResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %10s %10s %10s %10s %10s %10s %12s %12s\n",
		"vehicles", "tx", "queue", "proc", "dissem", "total", "live-total", "kbps/vehicle", "total-mbps")
	for _, r := range results {
		fmt.Fprintf(&sb, "%8d %10s %10s %10s %10s %10s %10s %12.1f %12.3f\n",
			r.Vehicles,
			r.Report.Tx.Mean.Round(10*time.Microsecond),
			r.Report.Queue.Mean.Round(10*time.Microsecond),
			r.Report.Processing.Mean.Round(10*time.Microsecond),
			r.Report.Dissemination.Mean.Round(10*time.Microsecond),
			r.Report.Total.Mean.Round(10*time.Microsecond),
			r.Live.Total.Mean.Round(10*time.Microsecond),
			r.PerVehicleBps/1000,
			r.TotalBps/1e6,
		)
	}
	return sb.String()
}

// BuildLatencyInputs builds a compact record pool (~40% abnormal
// motorway-link records) and a trained AD3 detector for the network
// experiments, without the full model scenario.
func BuildLatencyInputs(seed int64) ([]trace.Record, core.Detector, error) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(speed, accel float64, hour int) trace.Record {
		return trace.Record{
			Car: 1, Road: CorridorLinkID, RoadType: geo.MotorwayLink,
			Speed: speed, Accel: accel, Hour: hour, Day: 4, RoadMeanSpeed: 35,
			Lat:     geo.ShenzhenCenter.Lat + rng.Float64()*0.01,
			Lon:     geo.ShenzhenCenter.Lon + rng.Float64()*0.01,
			Heading: rng.Float64() * 360,
		}
	}
	var train []trace.Record
	for i := 0; i < 4000; i++ {
		train = append(train, mk(35+rng.NormFloat64()*5, rng.NormFloat64(), 8+rng.Intn(12)))
	}
	for i := 0; i < 1200; i++ {
		train = append(train, mk(55+rng.NormFloat64()*10, rng.NormFloat64()*3, 8+rng.Intn(12)))
	}
	labeler, err := core.TrainLabeler(train, 0)
	if err != nil {
		return nil, nil, err
	}
	det := core.NewAD3(geo.MotorwayLink)
	if err := det.Train(train, labeler); err != nil {
		return nil, nil, err
	}
	// Replay pool: a fresh mixed sample.
	var pool []trace.Record
	for i := 0; i < 600; i++ {
		if i%5 < 3 {
			pool = append(pool, mk(35+rng.NormFloat64()*5, rng.NormFloat64(), 9))
		} else {
			pool = append(pool, mk(60+rng.NormFloat64()*8, rng.NormFloat64()*3, 9))
		}
	}
	return pool, det, nil
}
