package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cad3/internal/chaos"
	"cad3/internal/core"
	"cad3/internal/mlkit"
	"cad3/internal/obsv"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// The chaos study replays the headline corridor scenario through two live
// RSU nodes — the upstream motorway AD3 and the link CAD3 — while killing
// the CO-DATA neighbor mid-run and partitioning the inter-RSU link, then
// recovering both (broker log restore + node checkpoint recovery). It
// answers the robustness question the accuracy experiments assume away:
// what happens to detection quality while the collaboration substrate is
// failing, and does it come back afterward?
//
// The invariant asserted: during the fault window live CAD3 degrades to
// AD3-level false-negative rate — never worse, because a CAD3 without a
// prior IS the standalone model — and after recovery it climbs back
// toward the fault-free baseline.

// ChaosConfig configures the study.
type ChaosConfig struct {
	// Scenario supplies records, trained models and fault-free priors.
	// Required.
	Scenario *Scenario
	// Seed drives the fault injector.
	Seed int64
	// Faults adds message-level chaos on the inter-RSU link for the whole
	// run (drops, dups, delays) on top of the scheduled partition/crash.
	// Zero means only the scheduled faults fire.
	Faults chaos.Config
	// PartitionFrac is the point of the merged timeline where the
	// inter-RSU link partitions (both directions). Values <= 0 select
	// 0.35.
	PartitionFrac float64
	// CrashFrac is where the upstream RSU process dies (its broker goes
	// down with it). Values <= 0 select 0.45. The node is checkpointed at
	// PartitionFrac — the last healthy supervision cycle before trouble.
	CrashFrac float64
	// HealFrac is where the upstream broker is restored from its log
	// snapshot, the node recovered from its checkpoint, and the partition
	// healed. Values <= 0 select 0.70.
	HealFrac float64
	// SummaryTTL for the link node's store. Values <= 0 select 30 min
	// (trips are minutes long; the default 10 min would add unrelated
	// expiries at phase edges).
	SummaryTTL time.Duration
	// Metrics, when set, receives the link node's live observability
	// registry (the CAD3 under test) — cad3-chaos serves it on its
	// -debug-addr endpoint while the study runs. Nil gives the node a
	// private registry.
	Metrics *obsv.Registry
}

func (c ChaosConfig) withDefaults() ChaosConfig {
	if c.PartitionFrac <= 0 {
		c.PartitionFrac = 0.35
	}
	if c.CrashFrac <= 0 {
		c.CrashFrac = 0.45
	}
	if c.HealFrac <= 0 {
		c.HealFrac = 0.70
	}
	if c.SummaryTTL <= 0 {
		c.SummaryTTL = 30 * time.Minute
	}
	return c
}

// ChaosPhase scores one phase of the run (pre-fault, fault, recovered).
type ChaosPhase struct {
	Name string
	// Live is the link node's actual output, matched record-by-record
	// against ground truth via OUT-DATA warnings.
	Live mlkit.ConfusionMatrix
	// ExpectedSeverity is E(Lambda) over the live false negatives
	// (Equation 3).
	ExpectedSeverity float64
	// RefAD3 runs the standalone link model offline on the same records:
	// the degradation floor.
	RefAD3 mlkit.ConfusionMatrix
	// RefCAD3 runs CAD3 offline with every fault-free prior available:
	// the no-fault ceiling.
	RefCAD3 mlkit.ConfusionMatrix
}

// ChaosResult is the study outcome.
type ChaosResult struct {
	Phases []ChaosPhase // pre, fault, recovered

	// UpstreamStats are the recovered upstream node's counters (they
	// start fresh at recovery, like any restarted process);
	// UpstreamPreCrash preserves the dead node's final counters — the
	// dropped handovers during the partition live there. The link node's
	// Degraded() block accounts the CAD3->AD3 fallbacks.
	UpstreamStats    rsu.Stats
	UpstreamPreCrash rsu.Stats
	LinkStats        rsu.Stats
	// ChaosStats counts what the injector did on the inter-RSU link.
	ChaosStats chaos.Stats
	// RecoveredTrackedCars is how many vehicles' prediction histories the
	// upstream node still held right after checkpoint recovery — crash
	// survival made visible.
	RecoveredTrackedCars int
	// LinkRecords is the number of evaluated corridor link records.
	LinkRecords int
}

// RunChaosStudy executes the study. Deterministic for a fixed scenario
// and seed: the virtual clock is driven by record timestamps and the
// injector by the seed.
func RunChaosStudy(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.withDefaults()
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("experiments: chaos study needs a scenario")
	}
	if !(cfg.PartitionFrac < cfg.CrashFrac && cfg.CrashFrac < cfg.HealFrac && cfg.HealFrac < 1) {
		return nil, fmt.Errorf("experiments: chaos fractions must satisfy partition < crash < heal < 1")
	}

	// The live pipeline replays the corridor only: cars that drive the
	// instrumented motorway -> link handover.
	type event struct {
		rec  trace.Record
		link bool
	}
	var events []event
	for _, r := range sc.Test {
		switch r.Road {
		case CorridorMotorwayID:
			events = append(events, event{rec: r})
		case CorridorLinkID:
			events = append(events, event{rec: r, link: true})
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: scenario has no corridor test records")
	}
	// Time order; motorway before link at equal stamps (the car is
	// upstream before it hands over).
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].rec.TimestampMs != events[j].rec.TimestampMs {
			return events[i].rec.TimestampMs < events[j].rec.TimestampMs
		}
		return !events[i].link && events[j].link
	})
	partitionAt := events[int(cfg.PartitionFrac*float64(len(events)))].rec.TimestampMs
	crashAt := events[int(cfg.CrashFrac*float64(len(events)))].rec.TimestampMs
	healAt := events[int(cfg.HealFrac*float64(len(events)))].rec.TimestampMs

	// Virtual clock driven by the replay.
	vnowMs := events[0].rec.TimestampMs
	now := func() time.Time { return time.UnixMilli(vnowMs) }

	const (
		upstreamName = "Mw"
		linkName     = "Link"
	)
	inj := chaos.NewInjector(chaos.Config{
		Seed:      cfg.Seed,
		DropProb:  cfg.Faults.DropProb,
		DupProb:   cfg.Faults.DupProb,
		DelayProb: cfg.Faults.DelayProb,
		MinDelay:  cfg.Faults.MinDelay,
		MaxDelay:  cfg.Faults.MaxDelay,
		KillProb:  cfg.Faults.KillProb,
	})

	mwBroker := stream.NewBroker(stream.BrokerConfig{Now: now})
	linkBroker := stream.NewBroker(stream.BrokerConfig{Now: now})
	mwClient := stream.NewInProcClient(mwBroker)
	linkClient := stream.NewInProcClient(linkBroker)

	mwNode, err := rsu.New(rsu.Config{
		Name: upstreamName, Road: CorridorMotorwayID,
		Detector: sc.Upstream, Client: mwClient, Now: now,
	})
	if err != nil {
		return nil, err
	}
	linkNode, err := rsu.New(rsu.Config{
		Name: linkName, Road: CorridorLinkID,
		Detector: sc.CAD3, Client: linkClient, Now: now,
		SummaryTTL: cfg.SummaryTTL,
		Metrics:    cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	// The inter-RSU CO-DATA path goes through the injector; injected
	// delays advance nothing (the replay clock is the records').
	coLink := chaos.NewClient(inj, upstreamName, linkName, linkClient)
	coLink.Sleep = func(time.Duration) {}
	if err := mwNode.AddNeighbor(linkName, coLink); err != nil {
		return nil, err
	}

	var (
		checkpoint  *rsu.Checkpoint
		brokerSnap  *stream.BrokerSnapshot
		preCrash    rsu.Stats
		partitioned bool
		crashed     bool
		healed      bool
		mwDown      bool
		recoveredN  int
		handedOver  = make(map[trace.CarID]bool)
		// pending tracks cars whose handover the partition blocked; the
		// heal step flushes them (their history survived in the builder
		// and therefore in the checkpoint).
		pending = make(map[trace.CarID]bool)
	)

	for _, e := range events {
		vnowMs = e.rec.TimestampMs

		if !partitioned && vnowMs >= partitionAt {
			inj.PartitionBoth(upstreamName, linkName)
			partitioned = true
		}
		if !crashed && vnowMs >= crashAt {
			// The supervisor heartbeats the node's own broker, which the
			// inter-RSU partition does not touch, so checkpoints keep
			// landing until the process dies — model the last one.
			cp, cerr := mwNode.Checkpoint()
			if cerr != nil {
				return nil, fmt.Errorf("chaos: pre-crash checkpoint: %w", cerr)
			}
			checkpoint = cp
			preCrash = mwNode.Stats()
			// The broker's log is durable; the process is not.
			brokerSnap = mwBroker.Snapshot()
			_ = mwBroker.Close()
			mwDown = true
			crashed = true
		}
		if !healed && vnowMs >= healAt {
			restored, rerr := stream.RestoreBroker(stream.BrokerConfig{Now: now}, brokerSnap)
			if rerr != nil {
				return nil, fmt.Errorf("chaos: restore broker: %w", rerr)
			}
			mwBroker = restored
			mwNode, rerr = rsu.Recover(rsu.Config{
				Client: stream.NewInProcClient(restored), Now: now,
			}, checkpoint)
			if rerr != nil {
				return nil, fmt.Errorf("chaos: recover node: %w", rerr)
			}
			recoveredN = mwNode.TrackedCars()
			inj.HealAll() // heal before rewiring: the producer handshake rides the link
			if nerr := mwNode.AddNeighbor(linkName, coLink); nerr != nil {
				return nil, fmt.Errorf("chaos: rewire neighbor: %w", nerr)
			}
			mwDown = false
			healed = true
			// Flush the handovers the partition blocked, in car order for
			// determinism. Late summaries are still correct: the store
			// keys by car and the link node may yet see the car again.
			cars := make([]trace.CarID, 0, len(pending))
			for car := range pending {
				cars = append(cars, car)
			}
			sort.Slice(cars, func(i, j int) bool { return cars[i] < cars[j] })
			for _, car := range cars {
				if herr := mwNode.Handover(car, linkName); herr == nil {
					handedOver[car] = true
					delete(pending, car)
				}
			}
		}

		if e.link {
			// First link record = the handover moment. A handover blocked
			// by the partition (or a dead upstream) is retried on the
			// car's next record — a healed link can still deliver it.
			if !handedOver[e.rec.Car] && !mwDown {
				if herr := mwNode.Handover(e.rec.Car, linkName); herr == nil {
					handedOver[e.rec.Car] = true
					delete(pending, e.rec.Car)
				} else {
					pending[e.rec.Car] = true
				}
			}
			payload, perr := core.EncodeRecord(e.rec)
			if perr != nil {
				return nil, perr
			}
			//cad3:allow wireerrexhaustive chaos harness: telemetry lost at a partitioned broker is the fault under measurement, not a run failure
			_, _, _ = linkClient.Produce(stream.TopicInData, stream.AutoPartition, nil, payload)
			if _, serr := linkNode.Step(); serr != nil {
				return nil, fmt.Errorf("chaos: link step: %w", serr)
			}
		} else {
			payload, perr := core.EncodeRecord(e.rec)
			if perr != nil {
				return nil, perr
			}
			// Telemetry sent at a dead broker is lost, like frames at a
			// dead antenna.
			//cad3:allow wireerrexhaustive chaos harness: telemetry sent at a dead broker is lost like frames at a dead antenna — the loss is the experiment
			_, _, _ = mwClient.Produce(stream.TopicInData, stream.AutoPartition, nil, payload)
			if !mwDown {
				if _, serr := mwNode.Step(); serr != nil {
					return nil, fmt.Errorf("chaos: upstream step: %w", serr)
				}
			}
		}
	}
	if _, err := linkNode.Step(); err != nil { // flush the tail
		return nil, err
	}

	// Collect the link node's warnings and match them back to records by
	// (car, source timestamp) — WarnCooldown is zero, so every abnormal
	// verdict produced exactly one warning.
	warned := make(map[trace.CarID]map[int64]bool)
	outCons, err := stream.NewConsumer(linkClient, stream.TopicOutData, 0)
	if err != nil {
		return nil, err
	}
	for {
		msgs, perr := outCons.Poll(4096)
		if len(msgs) == 0 {
			if perr != nil {
				return nil, perr
			}
			break
		}
		for _, m := range msgs {
			w, derr := core.DecodeWarning(m.Value)
			if derr != nil {
				continue
			}
			byTs := warned[w.Car]
			if byTs == nil {
				byTs = make(map[int64]bool)
				warned[w.Car] = byTs
			}
			byTs[w.SourceTsMs] = true
		}
		stream.RecycleMessages(msgs)
	}

	// Score every corridor link record into its phase.
	phases := []ChaosPhase{{Name: "pre-fault"}, {Name: "fault"}, {Name: "recovered"}}
	phaseOf := func(ts int64) *ChaosPhase {
		switch {
		case ts < partitionAt:
			return &phases[0]
		case ts < healAt:
			return &phases[1]
		default:
			return &phases[2]
		}
	}
	linkRecords := 0
	for _, e := range events {
		if !e.link {
			continue
		}
		r := e.rec
		truth, lerr := sc.Labeler.Label(r)
		if lerr != nil {
			continue
		}
		linkRecords++
		ph := phaseOf(r.TimestampMs)

		liveClass := core.ClassNormal
		if warned[r.Car][r.TimestampMs] {
			liveClass = core.ClassAbnormal
		}
		ph.Live.Observe(truth, liveClass)
		if truth == core.ClassAbnormal && liveClass == core.ClassNormal {
			ph.ExpectedSeverity += core.Delta(r.Speed, r.RoadMeanSpeed)
		}

		if d, derr := sc.AD3.Detect(r, nil); derr == nil {
			ph.RefAD3.Observe(truth, d.Class)
		}
		var prior *core.PredictionSummary
		if s, ok := sc.Summaries[r.Car]; ok {
			prior = &s
		}
		if d, derr := sc.CAD3.Detect(r, prior); derr == nil {
			ph.RefCAD3.Observe(truth, d.Class)
		}
	}

	return &ChaosResult{
		Phases:               phases,
		UpstreamStats:        mwNode.Stats(),
		UpstreamPreCrash:     preCrash,
		LinkStats:            linkNode.Stats(),
		ChaosStats:           inj.Stats(),
		RecoveredTrackedCars: recoveredN,
		LinkRecords:          linkRecords,
	}, nil
}

// FormatChaosResult renders the per-phase continuity table.
func FormatChaosResult(res *ChaosResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %8s %10s %10s %12s %12s %12s\n",
		"phase", "records", "live-F1", "live-FN", "E(Lambda)", "AD3-FN", "CAD3-FN")
	for _, ph := range res.Phases {
		fmt.Fprintf(&sb, "%-10s %8d %10.4f %9.1f%% %12.3f %11.1f%% %11.1f%%\n",
			ph.Name, ph.Live.Total(), ph.Live.F1(), ph.Live.FNRate()*100,
			ph.ExpectedSeverity, ph.RefAD3.FNRate()*100, ph.RefCAD3.FNRate()*100)
	}
	deg := res.LinkStats.DegradedCounters()
	fmt.Fprintf(&sb, "link degraded: fallbacks=%d staleSummaries=%d droppedHandovers=%d\n",
		deg.Fallbacks, deg.StaleSummaries, deg.DroppedHandovers)
	fmt.Fprintf(&sb, "chaos link: blocked=%d drops=%d dups=%d kills=%d delays=%d ops=%d\n",
		res.ChaosStats.Blocked, res.ChaosStats.Drops, res.ChaosStats.Dups,
		res.ChaosStats.Kills, res.ChaosStats.Delays, res.ChaosStats.Operations)
	fmt.Fprintf(&sb, "upstream: %d handovers dropped pre-crash; recovered with %d tracked cars; %d sent after recovery\n",
		res.UpstreamPreCrash.DroppedHandovers, res.RecoveredTrackedCars,
		res.UpstreamStats.SummariesSent)
	return sb.String()
}
