package experiments

import (
	"fmt"
	"sort"
	"strings"

	"cad3/internal/core"
	"cad3/internal/trace"
)

// ModelRow is one bar group of Figure 7 plus the Table IV columns for one
// model.
type ModelRow struct {
	Model     string
	Accuracy  float64
	Precision float64
	Recall    float64 // TP rate (Table IV)
	F1        float64
	FNRate    float64 // Table IV
	// ExpectedAccidents is E(Lambda) of Equation 3 (Table IV).
	ExpectedAccidents float64
	FalseNegatives    int
	Records           int
}

// RunModelComparison evaluates the three models on the motorway-link test
// records — Figure 7 (F1/accuracy) and Table IV (TP/FN rates, E(Lambda))
// in one pass.
func RunModelComparison(sc *Scenario) ([]ModelRow, error) {
	type entry struct {
		name      string
		det       core.Detector
		summaries map[trace.CarID]core.PredictionSummary
	}
	entries := []entry{
		{"Centralized", sc.Centralized, nil},
		{"AD3", sc.AD3, nil},
		{"CAD3", sc.CAD3, sc.Summaries},
	}
	rows := make([]ModelRow, 0, len(entries))
	for _, e := range entries {
		m, err := core.EvaluateDetector(e.det, sc.TestLink, sc.Labeler, e.summaries)
		if err != nil {
			return nil, fmt.Errorf("evaluate %s: %w", e.name, err)
		}
		acc, err := core.EstimateAccidents(e.det, sc.TestLink, sc.Labeler, e.summaries)
		if err != nil {
			return nil, fmt.Errorf("accidents %s: %w", e.name, err)
		}
		rows = append(rows, ModelRow{
			Model:             e.name,
			Accuracy:          m.Accuracy(),
			Precision:         m.Precision(),
			Recall:            m.Recall(),
			F1:                m.F1(),
			FNRate:            m.FNRate(),
			ExpectedAccidents: acc.Expected,
			FalseNegatives:    acc.FalseNegatives,
			Records:           m.Total(),
		})
	}
	return rows, nil
}

// FormatModelRows renders the Figure 7 / Table IV reproduction.
func FormatModelRows(rows []ModelRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-12s %8s %8s %8s %8s %8s %10s\n",
		"Model", "Acc", "F1", "TP-rate", "FN-rate", "FN", "E(Lambda)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-12s %8.4f %8.4f %8.4f %8.4f %8d %10.1f\n",
			r.Model, r.Accuracy, r.F1, r.Recall, r.FNRate, r.FalseNegatives, r.ExpectedAccidents)
	}
	return sb.String()
}

// TimelineRow is one point of the Figure 8 mesoscopic timeline.
type TimelineRow struct {
	Index       int
	Truth       int
	Centralized int
	AD3         int
	CAD3        int
}

// MesoscopicResult is the Figure 8 reproduction: one abnormal driver's
// trip replayed through the three models.
type MesoscopicResult struct {
	Car      trace.CarID
	Timeline []TimelineRow
	// Accuracy and Flips per model quantify Figure 8's qualitative claim
	// (CAD3 accurate and stable; AD3 fluctuating; centralized
	// unpredictable).
	Accuracy map[string]float64
	Flips    map[string]int
}

// RunMesoscopicTimeline replays one abnormal driver's motorway-link trip
// through the three models (an "aggressively driving car", as in
// Figure 8).
func RunMesoscopicTimeline(sc *Scenario) (*MesoscopicResult, error) {
	byCar := make(map[trace.CarID][]trace.Record)
	for _, r := range sc.TestLink {
		byCar[r.Car] = append(byCar[r.Car], r)
	}
	// Figure 8 is an illustrative single-trip strip chart. Candidates are
	// abnormal-leaning drivers the motorway RSU already flagged (low
	// summarised P(normal)); among them we show the trip on which the
	// standalone model is least stable — the case the paper's figure
	// illustrates.
	cars := make([]trace.CarID, 0, len(byCar))
	for car := range byCar {
		cars = append(cars, car)
	}
	sort.Slice(cars, func(i, j int) bool { return cars[i] < cars[j] })

	var bestCar trace.CarID
	bestFlips := -1
	for _, car := range cars {
		recs := byCar[car]
		s, ok := sc.Summaries[car]
		if !ok || len(recs) < 8 || s.MeanPNormal > 0.6 {
			continue
		}
		abn := 0
		for _, r := range recs {
			if l, err := sc.Labeler.Label(r); err == nil && l == core.ClassAbnormal {
				abn++
			}
		}
		if abn < len(recs)/4 {
			continue
		}
		trace.SortRecordsByTime(recs)
		tl, err := core.DetectionTimeline([]core.Detector{sc.AD3}, recs, sc.Labeler, sc.Summaries)
		if err != nil {
			continue
		}
		if flips := core.Flips(tl, "AD3"); flips > bestFlips {
			bestFlips, bestCar = flips, car
		}
	}
	if bestFlips < 0 {
		return nil, fmt.Errorf("experiments: no abnormal test driver found")
	}
	trip := byCar[bestCar]
	trace.SortRecordsByTime(trip)

	dets := []core.Detector{sc.Centralized, sc.AD3, sc.CAD3}
	timeline, err := core.DetectionTimeline(dets, trip, sc.Labeler, sc.Summaries)
	if err != nil {
		return nil, err
	}
	res := &MesoscopicResult{
		Car:      bestCar,
		Accuracy: make(map[string]float64, 3),
		Flips:    make(map[string]int, 3),
	}
	for _, pt := range timeline {
		res.Timeline = append(res.Timeline, TimelineRow{
			Index:       pt.Index,
			Truth:       pt.Truth,
			Centralized: pt.Verdict["Centralized"],
			AD3:         pt.Verdict["AD3"],
			CAD3:        pt.Verdict["CAD3"],
		})
	}
	for _, name := range []string{"Centralized", "AD3", "CAD3"} {
		res.Accuracy[name] = core.TimelineAccuracy(timeline, name)
		res.Flips[name] = core.Flips(timeline, name)
	}
	return res, nil
}

// FormatMesoscopic renders the Figure 8 reproduction as a strip chart:
// 'A' marks abnormal verdicts, '.' normal ones.
func FormatMesoscopic(res *MesoscopicResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "car %d trip, %d link records (A=abnormal, .=normal)\n", res.Car, len(res.Timeline))
	strip := func(name string, pick func(TimelineRow) int) {
		fmt.Fprintf(&sb, "%-12s ", name)
		for _, pt := range res.Timeline {
			if pick(pt) == core.ClassAbnormal {
				sb.WriteByte('A')
			} else {
				sb.WriteByte('.')
			}
		}
		sb.WriteByte('\n')
	}
	strip("truth", func(r TimelineRow) int { return r.Truth })
	strip("Centralized", func(r TimelineRow) int { return r.Centralized })
	strip("AD3", func(r TimelineRow) int { return r.AD3 })
	strip("CAD3", func(r TimelineRow) int { return r.CAD3 })
	for _, name := range []string{"Centralized", "AD3", "CAD3"} {
		fmt.Fprintf(&sb, "%-12s accuracy=%.3f flips=%d\n", name, res.Accuracy[name], res.Flips[name])
	}
	return sb.String()
}
