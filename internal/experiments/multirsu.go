package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/metrics"
	"cad3/internal/netem"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// MultiRSUConfig configures the Figure 6b/6d experiment: one motorway-link
// RSU connected to four motorway RSUs (Figure 1's intersection), 128
// vehicles per RSU, with the motorway RSUs forwarding prediction
// summaries to the link RSU's CO-DATA topic.
type MultiRSUConfig struct {
	// MotorwayRSUs is the number of motorway RSUs feeding the link RSU.
	// Values <= 0 select 4.
	MotorwayRSUs int
	// VehiclesPerRSU. Values <= 0 select 128.
	VehiclesPerRSU int
	// Duration is the virtual experiment length. Values <= 0 select 5 s.
	Duration time.Duration
	// SummaryInterval is how often each motorway RSU forwards a batch of
	// handover summaries. Values <= 0 select 1 s.
	SummaryInterval time.Duration
	// SummariesPerInterval is how many vehicles hand over per interval.
	// Values <= 0 select 8.
	SummariesPerInterval int
	// Seed drives jitter.
	Seed int64
	// Backhaul selects the inter-RSU link technology for CO-DATA
	// forwarding (paper §IV-A: wired Ethernet, or LTE/5G where RSUs are
	// beyond cable reach). Zero selects Ethernet.
	Backhaul netem.BackhaulKind
	// Records / Detector as in LatencyConfig. Required.
	Records  []trace.Record
	Detector core.Detector
	// Proc / Diss inject substrate cost models (defaults as in
	// LatencyConfig).
	Proc ProcessingModel
	Diss DisseminationModel
}

func (c MultiRSUConfig) withDefaults() MultiRSUConfig {
	if c.MotorwayRSUs <= 0 {
		c.MotorwayRSUs = 4
	}
	if c.VehiclesPerRSU <= 0 {
		c.VehiclesPerRSU = 128
	}
	if c.Duration <= 0 {
		c.Duration = 5 * time.Second
	}
	if c.SummaryInterval <= 0 {
		c.SummaryInterval = time.Second
	}
	if c.SummariesPerInterval <= 0 {
		c.SummariesPerInterval = 8
	}
	if c.Backhaul == 0 {
		c.Backhaul = netem.BackhaulEthernet
	}
	if c.Proc == (ProcessingModel{}) {
		c.Proc = DefaultProcessingModel()
	}
	if c.Diss == (DisseminationModel{}) {
		c.Diss = DefaultDisseminationModel()
	}
	return c
}

// RSUResult is one bar of Figure 6b (dissemination latency per RSU) and
// Figure 6d (received bandwidth per RSU).
type RSUResult struct {
	Name          string
	IsLink        bool
	Dissemination metrics.Summary
	// UplinkBps is the vehicle->RSU bandwidth; CoDataBps the extra
	// inter-RSU summary traffic (nonzero only for the link RSU).
	UplinkBps float64
	CoDataBps float64
	Warnings  int64
}

// TotalBps returns the RSU's total received bandwidth (Figure 6d).
func (r RSUResult) TotalBps() float64 { return r.UplinkBps + r.CoDataBps }

// RunMultiRSU executes the 5-RSU discrete-event scenario.
func RunMultiRSU(cfg MultiRSUConfig) ([]RSUResult, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Records) == 0 || cfg.Detector == nil {
		return nil, fmt.Errorf("experiments: multi-RSU run needs records and a detector")
	}

	start := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	sim := netem.NewSimulator(start)
	rng := rand.New(rand.NewSource(cfg.Seed))
	end := start.Add(cfg.Duration)

	type rsuState struct {
		name     string
		isLink   bool
		medium   *netem.Medium
		broker   *stream.Broker
		in       *stream.Consumer
		out      *stream.Producer
		outCons  *stream.Consumer
		recorder *metrics.LatencyRecorder
		coBytes  int64
		warnings int64
		// pendingDetected maps warning key -> detection completion time.
		pendingDetected map[string]time.Time
	}

	n := cfg.MotorwayRSUs + 1
	states := make([]*rsuState, 0, n)
	// Broker errors cannot abort a sim callback mid-flight; the first
	// one is kept and fails the run after the clock drains.
	var simErr error
	for i := 0; i < n; i++ {
		isLink := i == 0
		name := "Mw Link"
		if !isLink {
			name = fmt.Sprintf("Mw R%d", i)
		}
		htb, err := netem.NewHTB(netem.DSRCBandwidthBps, start)
		if err != nil {
			return nil, err
		}
		medium, err := netem.NewMedium(netem.MediumConfig{MCS: netem.MCS8, HTB: htb, Seed: cfg.Seed + int64(i)})
		if err != nil {
			return nil, err
		}
		broker := stream.NewBroker(stream.BrokerConfig{Now: sim.Now})
		for _, topic := range []string{stream.TopicInData, stream.TopicOutData, stream.TopicCoData} {
			if err := broker.CreateTopic(topic, stream.DefaultPartitions); err != nil {
				return nil, err
			}
		}
		client := stream.NewInProcClient(broker)
		in, err := stream.NewConsumer(client, stream.TopicInData, 0)
		if err != nil {
			return nil, err
		}
		out, err := stream.NewProducer(client, stream.TopicOutData)
		if err != nil {
			return nil, err
		}
		outCons, err := stream.NewConsumer(client, stream.TopicOutData, 0)
		if err != nil {
			return nil, err
		}
		st := &rsuState{
			name: name, isLink: isLink, medium: medium, broker: broker,
			in: in, out: out, outCons: outCons,
			recorder:        metrics.NewLatencyRecorder(),
			pendingDetected: make(map[string]time.Time),
		}
		states = append(states, st)

		// Vehicle send loops for this RSU.
		for v := 1; v <= cfg.VehiclesPerRSU; v++ {
			class := fmt.Sprintf("veh-%d", v)
			if err := htb.AddClass(class, netem.PerVehicleFloorBps, 0); err != nil {
				return nil, err
			}
			car := trace.CarID(i*cfg.VehiclesPerRSU + v)
			offset := time.Duration(rng.Int63n(int64(100 * time.Millisecond)))
			idx := rng.Intn(len(cfg.Records))
			var tick func()
			tick = func() {
				now := sim.Now()
				if now.After(end) {
					return
				}
				rec := cfg.Records[idx%len(cfg.Records)]
				idx++
				rec.Car = car
				rec.TimestampMs = now.UnixMilli()
				payload := core.AppendRecord(stream.GetPayload(), rec)
				if delivered, terr := st.medium.Transmit(class, len(payload), now); terr == nil {
					sim.At(delivered, func() {
						if _, _, perr := st.broker.Produce(stream.TopicInData, stream.AutoPartition, nil, payload); perr != nil && simErr == nil {
							simErr = fmt.Errorf("multirsu: %s produce: %w", st.name, perr)
						}
						stream.PutPayload(payload)
					})
				} else {
					stream.PutPayload(payload)
				}
				sim.After(100*time.Millisecond, tick)
			}
			sim.After(offset, tick)
		}

		// Micro-batch loop.
		var batch func()
		var inMsgs []stream.Message
		batch = func() {
			now := sim.Now()
			if now.After(end) {
				return
			}
			var perr error
			inMsgs, perr = st.in.PollInto(inMsgs[:0], 1<<16)
			if perr != nil && simErr == nil {
				simErr = fmt.Errorf("multirsu: %s batch poll: %w", st.name, perr)
			}
			msgs := inMsgs
			if len(msgs) > 0 {
				cost := cfg.Proc.Cost(len(msgs))
				done := now.Add(cost)
				for _, m := range msgs {
					rec, derr := core.DecodeRecord(m.Value)
					if derr != nil {
						continue
					}
					det, derr := cfg.Detector.Detect(rec, nil)
					if derr != nil || !det.Abnormal() {
						continue
					}
					w := core.Warning{
						Car: rec.Car, Road: int64(rec.Road), PNormal: det.PNormal,
						SourceTsMs: rec.TimestampMs, DetectedTsMs: done.UnixMilli(),
					}
					payload := core.AppendWarning(stream.GetPayload(), w)
					sim.At(done, func() {
						_, _, _ = st.out.Send(nil, payload)
						stream.PutPayload(payload)
					})
				}
				stream.RecycleMessages(msgs)
			}
			sim.After(50*time.Millisecond, batch)
		}
		sim.After(50*time.Millisecond, batch)

		// Dissemination poll loop (10 ms).
		var poll func()
		var outMsgs []stream.Message
		poll = func() {
			now := sim.Now()
			if now.After(end.Add(200 * time.Millisecond)) {
				return
			}
			var perr error
			outMsgs, perr = st.outCons.PollInto(outMsgs[:0], 1<<14)
			if perr != nil && simErr == nil {
				simErr = fmt.Errorf("multirsu: %s dissemination poll: %w", st.name, perr)
			}
			msgs := outMsgs
			for _, m := range msgs {
				w, derr := core.DecodeWarning(m.Value)
				if derr != nil {
					continue
				}
				detected := time.UnixMilli(w.DetectedTsMs)
				st.recorder.Record(metrics.LatencyBreakdown{
					Dissemination: now.Sub(detected) + cfg.Diss.sample(rng),
				})
				st.warnings++
			}
			stream.RecycleMessages(msgs)
			sim.After(10*time.Millisecond, poll)
		}
		sim.After(10*time.Millisecond+time.Duration(rng.Int63n(int64(10*time.Millisecond))), poll)
	}

	// Inter-RSU collaboration: each motorway RSU periodically forwards
	// handover summaries to the link RSU's CO-DATA topic over the
	// configured backhaul link (the delivery pays the link's delay).
	link := states[0]
	backhaul, err := netem.NewBackhaul(cfg.Backhaul, cfg.Seed+100)
	if err != nil {
		return nil, err
	}
	for i := 1; i < len(states); i++ {
		i := i
		var forward func()
		forward = func() {
			now := sim.Now()
			if now.After(end) {
				return
			}
			for k := 0; k < cfg.SummariesPerInterval; k++ {
				sum := core.PredictionSummary{
					Car:         trace.CarID(i*cfg.VehiclesPerRSU + rng.Intn(cfg.VehiclesPerRSU) + 1),
					MeanPNormal: rng.Float64(),
					Count:       10 + rng.Intn(90),
					FromRoad:    int64(i),
					UpdatedMs:   now.UnixMilli(),
				}
				payload, err := core.EncodeSummary(sum)
				if err != nil {
					continue
				}
				sim.After(backhaul.Delay(len(payload)), func() {
					if _, _, err := link.broker.Produce(stream.TopicCoData, stream.AutoPartition, nil, payload); err == nil {
						link.coBytes += int64(len(payload))
					}
					stream.PutPayload(payload)
				})
			}
			sim.After(cfg.SummaryInterval, forward)
		}
		sim.After(cfg.SummaryInterval, forward)
	}

	sim.RunUntil(end.Add(300 * time.Millisecond))
	if simErr != nil {
		return nil, simErr
	}

	dur := cfg.Duration.Seconds()
	out := make([]RSUResult, 0, len(states))
	for _, st := range states {
		ms := st.medium.Stats()
		out = append(out, RSUResult{
			Name:          st.name,
			IsLink:        st.isLink,
			Dissemination: st.recorder.Report().Dissemination,
			UplinkBps:     float64(ms.WireBytes) * 8 / dur,
			CoDataBps:     float64(st.coBytes) * 8 / dur,
			Warnings:      st.warnings,
		})
	}
	return out, nil
}

// FormatRSUResults renders Figure 6b + 6d.
func FormatRSUResults(results []RSUResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-8s %14s %12s %12s %12s\n", "RSU", "dissem(mean)", "dissem(se)", "uplink-mbps", "total-mbps")
	for _, r := range results {
		fmt.Fprintf(&sb, "%-8s %14s %12s %12.3f %12.3f\n",
			r.Name,
			r.Dissemination.Mean.Round(10*time.Microsecond),
			r.Dissemination.StdErr.Round(10*time.Microsecond),
			r.UplinkBps/1e6,
			r.TotalBps()/1e6,
		)
	}
	return sb.String()
}
