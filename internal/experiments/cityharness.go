package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"cad3/internal/city"
	"cad3/internal/geo"
	"cad3/internal/obsv"
	"cad3/internal/scenario"
	"cad3/internal/stream"
)

// CityScenarioHarness adapts the sharded city driver (internal/city) to
// the scenario engine, so corpus specs can storm shard-boundary
// handover the same way corridor specs storm a single RSU. One round is
// one virtual second (a control-plane tick), not the corridor's 50 ms
// batch window: handovers are journeys crossing shard boundaries, and a
// vehicle needs whole seconds of motion to reach one.
//
// The city fleet generates its own offered load (every vehicle is an
// arrival process on the virtual clock), so traffic shapes only pace
// the rounds — Rate and the mutation fractions are ignored. The action
// vocabulary is the subset that maps onto a sharded city:
//
//	kill / revive rK   kill (revive) replica K of EVERY shard's broker
//	                   cluster at once — a correlated storm, which is
//	                   what makes a flap interesting at city scale
//	link_loss          set the inter-shard handover link's drop
//	                   probability: forwarded CO-DATA summaries are
//	                   refused with prob p, exercising the router's
//	                   at-least-once retry and the receiver-side dedup
//	heal_all           clear the handover-link loss
//
// Everything else (partitions, delay, clock skew, reorder) is reported
// as an action error and the run continues, per the engine's contract.
//
// Measurements are phase-scoped deltas of the city.* counters plus the
// cumulative settlement audit; the loss/duplication fields are omitted
// unless the city is fully drained (in_flight == 0), the same
// conditional-omission rule the corridor harness uses — a spec cannot
// vacuously pass a zero-loss assertion against an undrained city.
type CityScenarioHarness struct {
	cfg CityHarnessConfig
	net *geo.Network

	drv  *city.Driver
	reg  *obsv.Registry
	loss float64
	rng  *rand.Rand

	base map[string]int64 // counter snapshot at BeginPhase
}

// CityHarnessConfig sizes the per-run city. The zero value selects a
// compact city (4 shards, 300 vehicles) that still hands over briskly.
type CityHarnessConfig struct {
	// Shards is the worker shard count. <= 0 selects 4.
	Shards int
	// Vehicles is the fleet size. <= 0 selects 300.
	Vehicles int
	// Replicas per shard broker cluster. <= 0 selects 3.
	Replicas int
	// Scale / ExtentMeters / NetSeed shape the synthetic road network,
	// built once and shared across runs (the network is read-only; all
	// per-run randomness comes from the spec seed). Zero values select
	// the compact test city (0.05, 6 km, seed 11).
	Scale        float64
	ExtentMeters float64
	NetSeed      int64
}

// NewCityScenarioHarness builds the road network and returns a harness
// ready for the engine; the city itself is rebuilt on every Reset.
func NewCityScenarioHarness(cfg CityHarnessConfig) (*CityScenarioHarness, error) {
	if cfg.Shards <= 0 {
		cfg.Shards = 4
	}
	if cfg.Vehicles <= 0 {
		cfg.Vehicles = 300
	}
	if cfg.Replicas <= 0 {
		cfg.Replicas = 3
	}
	if cfg.Scale <= 0 {
		cfg.Scale = 0.05
	}
	if cfg.ExtentMeters <= 0 {
		cfg.ExtentMeters = 6000
	}
	if cfg.NetSeed == 0 {
		cfg.NetSeed = 11
	}
	net, err := geo.BuildNetwork(geo.BuildConfig{
		Scale:        cfg.Scale,
		ExtentMeters: cfg.ExtentMeters,
		Seed:         cfg.NetSeed,
	})
	if err != nil {
		return nil, fmt.Errorf("city harness: build network: %w", err)
	}
	geo.ConnectNearest(net, 2, 1500)
	return &CityScenarioHarness{cfg: cfg, net: net}, nil
}

var _ scenario.Harness = (*CityScenarioHarness)(nil)

// cityRound is the virtual span of one scenario round.
const cityRound = time.Second

// cityMaxRun bounds a run's virtual span; Advance refuses to step past
// it, so a spec would need > 3000 rounds to hit the bound.
const cityMaxRun = time.Hour

// Reset stands up a fresh city for one run: new registry, new driver
// seeded by the spec, fleet spawned, handover links rewired through the
// lossy chaos client (loss starts at 0).
func (h *CityScenarioHarness) Reset(seed int64) error {
	h.reg = obsv.NewRegistry()
	h.loss = 0
	h.rng = rand.New(rand.NewSource(seed ^ 0x5ca1ab1e))
	drv, err := city.NewDriver(city.Config{
		Network:  h.net,
		Shards:   h.cfg.Shards,
		Vehicles: h.cfg.Vehicles,
		Replicas: h.cfg.Replicas,
		Seed:     seed,
		Duration: cityMaxRun,
		// The compact city hands over briskly at the test rates.
		CellMeters:           1000,
		EventsPerVehicleHour: 30,
		ProbesPerVehicleHour: 60,
		Metrics:              h.reg,
	})
	if err != nil {
		return err
	}
	if err := drv.Start(); err != nil {
		return err
	}
	err = drv.RewireRouter(func(dest string, c stream.Client) stream.Client {
		return &lossyClient{inner: c, prob: &h.loss, rng: h.rng}
	})
	if err != nil {
		return err
	}
	h.drv = drv
	h.base = h.counters()
	return nil
}

// BeginPhase snapshots the counters so Measure can report phase deltas.
func (h *CityScenarioHarness) BeginPhase(string) error {
	h.base = h.counters()
	return nil
}

// Round advances the city by one virtual second.
func (h *CityScenarioHarness) Round(scenario.Traffic) error {
	_, err := h.drv.Advance(cityRound)
	return err
}

// Apply maps one engine action onto the city (see the type comment for
// the supported vocabulary).
func (h *CityScenarioHarness) Apply(a scenario.Action) error {
	switch a.Type {
	case "kill", "revive":
		var rep int
		if _, err := fmt.Sscanf(a.Replica, "r%d", &rep); err != nil {
			return fmt.Errorf("city harness: bad replica %q", a.Replica)
		}
		for s := 0; s < h.drv.Shards(); s++ {
			f := city.Fault{Shard: s, Replica: rep, Revive: a.Type == "revive"}
			if err := h.drv.InjectFault(f); err != nil {
				return err
			}
		}
		return nil
	case "link_loss":
		h.loss = a.Prob
		return nil
	case "heal_all":
		h.loss = 0
		return nil
	default:
		return fmt.Errorf("city harness: unsupported action %q", a.Type)
	}
}

// Settle pumps the city until every queue is dry (no virtual time
// passes — the same drain the settlement protocol runs).
func (h *CityScenarioHarness) Settle() error {
	h.drv.Drain()
	return nil
}

// cityPhaseCounters are the registry counters Measure reports as
// phase-scoped deltas, keyed by measurement name.
var cityPhaseCounters = map[string]string{
	"telemetry":          "city.telemetry",
	"abnormal":           "city.abnormal",
	"warnings":           "city.warnings",
	"warnings_delivered": "city.warnings_delivered",
	"handovers":          "city.handovers",
	"handover_summaries": "city.handover_summaries",
	"handover_applied":   "city.handover_applied",
	"handover_dups":      "city.handover_dups",
	"handover_misrouted": "city.handover_misrouted",
	"site_handovers":     "city.site_handovers",
	"prior_hits":         "city.prior_hits",
	"produce_retries":    "city.produce_retries",
	"router_retries":     "shard.router.retries",
	"router_sent":        "shard.router.sent",
}

// counters snapshots every phase-scoped counter.
func (h *CityScenarioHarness) counters() map[string]int64 {
	out := make(map[string]int64, len(cityPhaseCounters))
	for name, metric := range cityPhaseCounters {
		out[name] = h.reg.Counter(metric).Value()
	}
	return out
}

// Measure reports phase deltas plus the cumulative settlement audit.
// The loss/duplication book is conditional on a drained city: with work
// still in flight those fields are omitted so an assertion against them
// fails loudly rather than reading a half-settled ledger.
func (h *CityScenarioHarness) Measure() (scenario.Measurements, error) {
	m := scenario.Measurements{}
	now := h.counters()
	for name := range cityPhaseCounters {
		m[name] = float64(now[name] - h.base[name])
	}
	m["elections"] = float64(h.reg.Counter("election.count").Value())
	inFlight := h.drv.InFlight()
	m["in_flight"] = float64(inFlight)
	if inFlight == 0 {
		a := h.drv.Audit()
		m["telemetry_unacked"] = float64(a.TelemetryUnacked)
		m["warnings_lost"] = float64(a.WarningsLost)
		m["warnings_dup"] = float64(a.WarningsDup)
		m["false_warnings"] = float64(a.FalseWarnings)
		m["handover_lost"] = float64(a.HandoverLost)
		m["handover_applied_total"] = float64(a.HandoverApplied)
	}
	return m, nil
}

// lossyClient is the chaos wrapper RewireRouter installs on every
// inter-shard handover link: Produce is refused with the shared drop
// probability, so a forwarded summary stays queued in the router and is
// retried on the next flush — at-least-once transport under loss, with
// the receiver's dedup keeping application exactly-once.
type lossyClient struct {
	inner stream.Client
	prob  *float64
	rng   *rand.Rand
}

var _ stream.Client = (*lossyClient)(nil)

func (l *lossyClient) Produce(topic string, partition int32, key, value []byte) (int32, int64, error) {
	if p := *l.prob; p > 0 && l.rng.Float64() < p {
		return 0, 0, fmt.Errorf("lossy link: dropped produce to %s", topic)
	}
	return l.inner.Produce(topic, partition, key, value)
}

func (l *lossyClient) CreateTopic(name string, partitions int) error {
	return l.inner.CreateTopic(name, partitions)
}

func (l *lossyClient) Fetch(topic string, partition int32, offset int64, max int) ([]stream.Message, error) {
	return l.inner.Fetch(topic, partition, offset, max)
}

func (l *lossyClient) PartitionCount(topic string) (int, error) {
	return l.inner.PartitionCount(topic)
}

func (l *lossyClient) ListTopics() ([]string, error) { return l.inner.ListTopics() }

func (l *lossyClient) Close() error { return l.inner.Close() }
