package experiments

import (
	"strings"
	"testing"
	"time"
)

// TestCityStudyAcceptance is the CI acceptance gate for the sharded
// city driver, scaled down to stay fast: 4 shards x 10k vehicles on
// one virtual clock, with replica faults injected mid-run. The gates
// mirror `make city`: settlement CLEAN (zero warnings or handover
// summaries lost, duplicated or misrouted) and per-shard dwell load
// within 1.5x of the median.
func TestCityStudyAcceptance(t *testing.T) {
	s, err := RunCityStudy(CityStudyConfig{
		Vehicles: 10_000,
		Shards:   4,
		Duration: 10 * time.Minute,
		Seed:     42,
		Faults:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := s.Report
	if r.Sites < 100 {
		t.Fatalf("city placed %d RSU sites, want >= 100", r.Sites)
	}
	if r.Telemetry == 0 || r.HandoverSummaries == 0 {
		t.Fatalf("city run produced no traffic:\n%s", FormatCityStudy(s))
	}
	if r.Elections == 0 {
		t.Fatal("fault plan killed replicas but no elections ran")
	}
	if !r.SettlementClean() {
		t.Fatalf("settlement dirty:\n%s", FormatCityStudy(s))
	}
	if r.TelemetryUnacked != 0 {
		t.Fatalf("%d telemetry records never acked after revival", r.TelemetryUnacked)
	}
	if skew := r.Skew(); skew > 1.5 {
		t.Fatalf("shard dwell skew %.2fx > 1.5x: %v", skew, r.ShardDwellMs)
	}
}

// TestFormatCityStudy locks the table shape EXPERIMENTS.md documents.
func TestFormatCityStudy(t *testing.T) {
	s, err := RunCityStudy(CityStudyConfig{
		Vehicles: 500,
		Shards:   2,
		Duration: 2 * time.Minute,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := FormatCityStudy(s)
	for _, want := range []string{
		"City study:", "| metric | value |", "warnings lost",
		"handover summaries applied", "shard dwell skew", "Settlement:",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("study output missing %q:\n%s", want, out)
		}
	}
}
