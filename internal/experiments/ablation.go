package experiments

import (
	"fmt"
	"strings"
	"time"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// The ablations quantify the design choices DESIGN.md calls out: the
// Equation 1 fusion weight, the micro-batch interval, the summary depth,
// the Decision Tree feature set, and the consumer poll interval.

// WeightRow is one point of the collaboration-weight sweep (w = 0
// collapses CAD3 to AD3-like behaviour; the paper fixes w = 0.5).
type WeightRow struct {
	Weight float64
	F1     float64
	FNRate float64
}

// RunCollabWeightSweep retrains CAD3 across fusion weights.
func RunCollabWeightSweep(sc *Scenario, weights []float64) ([]WeightRow, error) {
	if len(weights) == 0 {
		weights = []float64{0.1, 0.25, 0.5, 0.75, 0.9}
	}
	rows := make([]WeightRow, 0, len(weights))
	for _, w := range weights {
		det := core.NewCAD3(geo.MotorwayLink, core.CAD3Config{Weight: w})
		if err := det.Train(sc.Train, sc.Labeler, sc.Upstream); err != nil {
			return nil, fmt.Errorf("weight %.2f: %w", w, err)
		}
		m, err := core.EvaluateDetector(det, sc.TestLink, sc.Labeler, sc.Summaries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, WeightRow{Weight: w, F1: m.F1(), FNRate: m.FNRate()})
	}
	return rows, nil
}

// DepthRow is one point of the summary-depth sweep (0 = full-trip mean,
// the paper's choice; k > 0 = last-k predictions only).
type DepthRow struct {
	Depth  int
	F1     float64
	FNRate float64
}

// RunSummaryDepthSweep retrains CAD3 across summary depths.
func RunSummaryDepthSweep(sc *Scenario, depths []int) ([]DepthRow, error) {
	if len(depths) == 0 {
		depths = []int{0, 1, 4, 8, 16}
	}
	rows := make([]DepthRow, 0, len(depths))
	for _, d := range depths {
		det := core.NewCAD3(geo.MotorwayLink, core.CAD3Config{SummaryDepth: d})
		if err := det.Train(sc.Train, sc.Labeler, sc.Upstream); err != nil {
			return nil, fmt.Errorf("depth %d: %w", d, err)
		}
		m, err := core.EvaluateDetector(det, sc.TestLink, sc.Labeler, sc.Summaries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, DepthRow{Depth: d, F1: m.F1(), FNRate: m.FNRate()})
	}
	return rows, nil
}

// featureAblationDetector reimplements the CAD3 fusion with a
// configurable Decision Tree feature subset, to measure what each of
// [Hour, P_X, Class_NB] contributes.
type featureAblationDetector struct {
	local   *core.AD3
	tree    *mlkit.DecisionTree
	useHour bool
	usePX   bool
	useCls  bool
}

func (d *featureAblationDetector) Name() string { return "CAD3-ablated" }

func (d *featureAblationDetector) features(rec trace.Record, pNB float64, prior *core.PredictionSummary) []float64 {
	pPrev := pNB
	if prior != nil {
		pPrev = prior.MeanPNormal
	}
	pX := 0.5*pPrev + 0.5*pNB
	out := make([]float64, 0, 3)
	if d.useHour {
		out = append(out, float64(rec.Hour))
	}
	if d.usePX {
		out = append(out, pX)
	}
	if d.useCls {
		out = append(out, float64(mlkit.PredictLabel(pNB)))
	}
	return out
}

func (d *featureAblationDetector) Detect(rec trace.Record, prior *core.PredictionSummary) (core.Detection, error) {
	pNB, err := d.local.PredictProba(rec)
	if err != nil {
		return core.Detection{}, err
	}
	p, err := d.tree.PredictProba(d.features(rec, pNB, prior))
	if err != nil {
		return core.Detection{}, err
	}
	return core.Detection{
		Car: rec.Car, Road: int64(rec.Road),
		Class: mlkit.PredictLabel(p), PNormal: p, UsedPrior: prior != nil,
	}, nil
}

// FeatureRow is one row of the DT-feature ablation.
type FeatureRow struct {
	Features string
	F1       float64
	FNRate   float64
}

// RunDTFeatureAblation trains the collaborative tree on each feature
// subset and evaluates it.
func RunDTFeatureAblation(sc *Scenario) ([]FeatureRow, error) {
	variants := []struct {
		name          string
		hour, pX, cls bool
	}{
		{"hour+pX+classNB", true, true, true}, // the paper's feature set
		{"pX+classNB", false, true, true},
		{"hour+classNB", true, false, true},
		{"hour+pX", true, true, false},
		{"pX", false, true, false},
	}
	upstreamRecs := trace.RecordsOfType(sc.Train, geo.Motorway)
	trainSumm, err := core.BuildTrainingSummaries(upstreamRecs, sc.Upstream, 0)
	if err != nil {
		return nil, err
	}
	linkTrain := trace.RecordsOfType(sc.Train, geo.MotorwayLink)

	rows := make([]FeatureRow, 0, len(variants))
	for _, v := range variants {
		det := &featureAblationDetector{
			local:   sc.AD3,
			tree:    mlkit.NewDecisionTree(mlkit.TreeConfig{}),
			useHour: v.hour, usePX: v.pX, useCls: v.cls,
		}
		samples := make([]mlkit.Sample, 0, len(linkTrain))
		for _, r := range linkTrain {
			label, lerr := sc.Labeler.Label(r)
			if lerr != nil {
				continue
			}
			pNB, perr := sc.AD3.PredictProba(r)
			if perr != nil {
				return nil, perr
			}
			var prior *core.PredictionSummary
			if s, ok := trainSumm[r.Car]; ok {
				prior = &s
			}
			samples = append(samples, mlkit.Sample{Features: det.features(r, pNB, prior), Label: label})
		}
		if err := det.tree.Fit(samples); err != nil {
			return nil, fmt.Errorf("ablation %s: %w", v.name, err)
		}
		m, err := core.EvaluateDetector(det, sc.TestLink, sc.Labeler, sc.Summaries)
		if err != nil {
			return nil, err
		}
		rows = append(rows, FeatureRow{Features: v.name, F1: m.F1(), FNRate: m.FNRate()})
	}
	return rows, nil
}

// IntervalRow is one point of the batch-interval or poll-interval sweep.
type IntervalRow struct {
	Interval  time.Duration
	TotalMean time.Duration
	QueueMean time.Duration
	DissMean  time.Duration
}

// RunBatchIntervalSweep measures end-to-end latency across micro-batch
// windows (the paper fixes 50 ms).
func RunBatchIntervalSweep(base LatencyConfig, intervals []time.Duration) ([]IntervalRow, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			10 * time.Millisecond, 25 * time.Millisecond, 50 * time.Millisecond,
			100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		}
	}
	rows := make([]IntervalRow, 0, len(intervals))
	for _, iv := range intervals {
		cfg := base
		cfg.BatchInterval = iv
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, fmt.Errorf("batch interval %v: %w", iv, err)
		}
		rows = append(rows, IntervalRow{
			Interval:  iv,
			TotalMean: res.Report.Total.Mean,
			QueueMean: res.Report.Queue.Mean,
			DissMean:  res.Report.Dissemination.Mean,
		})
	}
	return rows, nil
}

// RunPollIntervalSweep measures dissemination latency across consumer
// poll periods (the paper fixes 10 ms "to avoid consuming the
// bandwidth").
func RunPollIntervalSweep(base LatencyConfig, intervals []time.Duration) ([]IntervalRow, error) {
	if len(intervals) == 0 {
		intervals = []time.Duration{
			time.Millisecond, 5 * time.Millisecond, 10 * time.Millisecond,
			20 * time.Millisecond, 50 * time.Millisecond,
		}
	}
	rows := make([]IntervalRow, 0, len(intervals))
	for _, iv := range intervals {
		cfg := base
		cfg.PollInterval = iv
		res, err := RunLatency(cfg)
		if err != nil {
			return nil, fmt.Errorf("poll interval %v: %w", iv, err)
		}
		rows = append(rows, IntervalRow{
			Interval:  iv,
			TotalMean: res.Report.Total.Mean,
			QueueMean: res.Report.Queue.Mean,
			DissMean:  res.Report.Dissemination.Mean,
		})
	}
	return rows, nil
}

// FormatWeightRows renders the weight sweep.
func FormatWeightRows(rows []WeightRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %8s\n", "weight", "F1", "FN-rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8.2f %8.4f %8.4f\n", r.Weight, r.F1, r.FNRate)
	}
	return sb.String()
}

// FormatDepthRows renders the depth sweep.
func FormatDepthRows(rows []DepthRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %8s %8s\n", "depth", "F1", "FN-rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %8.4f %8.4f\n", r.Depth, r.F1, r.FNRate)
	}
	return sb.String()
}

// FormatFeatureRows renders the feature ablation.
func FormatFeatureRows(rows []FeatureRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %8s %8s\n", "features", "F1", "FN-rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %8.4f %8.4f\n", r.Features, r.F1, r.FNRate)
	}
	return sb.String()
}

// FormatIntervalRows renders an interval sweep.
func FormatIntervalRows(rows []IntervalRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%10s %12s %12s %12s\n", "interval", "total", "queue", "dissem")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%10s %12s %12s %12s\n",
			r.Interval,
			r.TotalMean.Round(10*time.Microsecond),
			r.QueueMean.Round(10*time.Microsecond),
			r.DissMean.Round(10*time.Microsecond))
	}
	return sb.String()
}
