package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"cad3/internal/chaos"
	"cad3/internal/core"
	"cad3/internal/obsv"
	"cad3/internal/rsu"
	"cad3/internal/stream"
	"cad3/internal/trace"
)

// The failover study is the acceptance drill for the replicated broker
// (DESIGN.md §13): it replays the corridor link through a live CAD3 node
// whose stream substrate is a three-broker ReplicaSet, kills the
// partition leader with zero warning mid-replay, and checks the
// durability contract the replication layer sells:
//
//   - zero acked-record loss: every IN-DATA record acked at acks=all
//     before, during, or after the failover is still readable — with the
//     same content at the same offset — from whichever replica leads the
//     partition at the end of the run;
//   - bounded disruption: warning latency spikes only for records that
//     hit the leaderless window, and the post-recovery p99 returns to
//     within 2x the pre-kill baseline;
//   - exact consumer handoff: the OUT-DATA consumer group, rebalanced
//     mid-run by a joining member, delivers every warning offset exactly
//     once — no duplicates, no skips — across the generation change.
//
// The study runs on a virtual clock driven by the replay's record
// timestamps; the kill/join/revive sequence fires from a chaos.Schedule,
// so a run is a pure function of (scenario, seed, fractions).

// FailoverConfig configures the study.
type FailoverConfig struct {
	// Scenario supplies corridor records and the trained link model.
	// Required.
	Scenario *Scenario
	// Seed names the run (recorded, and reserved for fault configs that
	// draw randomness; the base study is fully deterministic).
	Seed int64
	// Replicas is the broker cluster size. Values <= 0 select 3.
	Replicas int
	// KillFrac is the point of the link timeline where the partition
	// leader is killed with zero warning. Values <= 0 select 0.40.
	KillFrac float64
	// JoinFrac is where a second consumer-group member joins and forces a
	// rebalance of the OUT-DATA group. Values <= 0 select 0.55.
	JoinFrac float64
	// ReviveFrac is where the killed replica is rebuilt from a live
	// peer's snapshot and rejoins as a follower. Values <= 0 select 0.70.
	ReviveFrac float64
	// TickEvery is the control-plane cadence (election + follower resync)
	// in virtual time. Values <= 0 select 30 s — deliberately coarse, so
	// the kill opens a leaderless window spanning several replay records
	// (the record cadence is the scenario's 5 s GPS sampling) before the
	// next tick elects.
	TickEvery time.Duration
	// Metrics, when set, receives the study's live registry (repl.* /
	// election.* / rebalance.* plus the node's pipeline metrics) —
	// cad3-chaos serves it on its -debug-addr endpoint. Nil gives the
	// study a private registry.
	Metrics *obsv.Registry
}

func (c FailoverConfig) withDefaults() FailoverConfig {
	if c.Replicas <= 0 {
		c.Replicas = 3
	}
	if c.KillFrac <= 0 {
		c.KillFrac = 0.40
	}
	if c.JoinFrac <= 0 {
		c.JoinFrac = 0.55
	}
	if c.ReviveFrac <= 0 {
		c.ReviveFrac = 0.70
	}
	if c.TickEvery <= 0 {
		c.TickEvery = 30 * time.Second
	}
	return c
}

// FailoverPhase aggregates one phase of the run (pre-kill, failover,
// recovered), keyed by record timestamp.
type FailoverPhase struct {
	Name string
	// Produced counts IN-DATA records whose timestamp falls in the phase.
	Produced int
	// Warnings counts warnings sourced from the phase's records.
	Warnings int
	// WarnP50/WarnP99/WarnMax are record-timestamp -> group-delivery
	// latencies in virtual time; the max makes the outage visible even
	// when few of the delayed records warn.
	WarnP50, WarnP99, WarnMax time.Duration
}

// FailoverResult is the study outcome.
type FailoverResult struct {
	Phases []FailoverPhase // pre-kill, failover, recovered

	// AckedRecords is the size of the acks=all ledger; LostAcked counts
	// ledger entries the post-run sweep could not read back intact from
	// the surviving leaders. The headline invariant is LostAcked == 0.
	AckedRecords int
	LostAcked    int
	// FailedProduces counts produce attempts refused during leaderless
	// windows; RetriedRecords counts distinct records that needed at
	// least one retry before acking.
	FailedProduces int
	RetriedRecords int
	// LeaderlessSteps counts node pipeline rounds that reported errors
	// while the substrate had no leader.
	LeaderlessSteps int

	// Elections / Generations / Revoked / Assigned are the control-plane
	// counters at the end of the run.
	Elections   int64
	Generations int64
	Revoked     int
	Assigned    int

	// Delivered is the number of OUT-DATA messages the group handed out;
	// DupDeliveries counts (partition, offset) pairs delivered twice and
	// MissedDeliveries offsets below the final high watermarks never
	// delivered. Exactly-once handoff means both are zero and Delivered
	// equals OutHighWater.
	Delivered        int
	DupDeliveries    int
	MissedDeliveries int64
	OutHighWater     int64

	// FinalISRSize is the smallest ISR at the end (full recovery returns
	// it to Replicas); KilledReplica and NewLeader document the failover.
	FinalISRSize  int64
	Replicas      int
	KilledReplica string
	NewLeader     string
	// Fired lists the schedule's events in firing order.
	Fired []string
	// LinkRecords is the number of replayed corridor link records.
	LinkRecords int
}

// ackedEntry is one acks=all ledger row: where the record was acked and
// what it contained.
type ackedEntry struct {
	part int32
	off  int64
	car  trace.CarID
	ts   int64
}

// RunFailoverStudy executes the study.
func RunFailoverStudy(cfg FailoverConfig) (*FailoverResult, error) {
	cfg = cfg.withDefaults()
	sc := cfg.Scenario
	if sc == nil {
		return nil, fmt.Errorf("experiments: failover study needs a scenario")
	}
	if !(cfg.KillFrac < cfg.JoinFrac && cfg.JoinFrac < cfg.ReviveFrac && cfg.ReviveFrac < 1) {
		return nil, fmt.Errorf("experiments: failover fractions must satisfy kill < join < revive < 1")
	}

	// The replay is the corridor link stream only: the records the link
	// RSU would ingest from its road. Time order, car order at ties.
	var events []trace.Record
	for _, r := range sc.Test {
		if r.Road == CorridorLinkID {
			events = append(events, r)
		}
	}
	if len(events) == 0 {
		return nil, fmt.Errorf("experiments: scenario has no corridor link records")
	}
	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TimestampMs != events[j].TimestampMs {
			return events[i].TimestampMs < events[j].TimestampMs
		}
		return events[i].Car < events[j].Car
	})
	killAt := events[int(cfg.KillFrac*float64(len(events)))].TimestampMs
	joinAt := events[int(cfg.JoinFrac*float64(len(events)))].TimestampMs
	reviveAt := events[int(cfg.ReviveFrac*float64(len(events)))].TimestampMs

	vnowMs := events[0].TimestampMs
	now := func() time.Time { return time.UnixMilli(vnowMs) }

	reg := cfg.Metrics
	if reg == nil {
		reg = obsv.NewRegistry()
	}

	// Three brokers on the virtual clock; the replica set is the control
	// plane, the AckAll client the data plane every component shares.
	replicas := make([]stream.Replica, cfg.Replicas)
	for i := range replicas {
		replicas[i] = stream.Replica{
			ID:     fmt.Sprintf("r%d", i),
			Broker: stream.NewBroker(stream.BrokerConfig{Now: now}),
		}
	}
	rset, err := stream.NewReplicaSet(stream.ReplicaSetConfig{
		Metrics: reg,
		Rebuild: stream.BrokerConfig{Now: now},
	}, replicas...)
	if err != nil {
		return nil, err
	}
	client := rset.Client(stream.AckAll)

	node, err := rsu.New(rsu.Config{
		Name: "Link", Road: CorridorLinkID,
		Detector: sc.CAD3, Client: client, Now: now,
		Metrics: reg,
	})
	if err != nil {
		return nil, err
	}

	res := &FailoverResult{
		Phases:      []FailoverPhase{{Name: "pre-kill"}, {Name: "failover"}, {Name: "recovered"}},
		Replicas:    cfg.Replicas,
		LinkRecords: len(events),
	}
	phaseOf := func(ts int64) *FailoverPhase {
		switch {
		case ts < killAt:
			return &res.Phases[0]
		case ts < reviveAt:
			return &res.Phases[1]
		default:
			return &res.Phases[2]
		}
	}

	// The OUT-DATA consumer group. Member w1 carries rebalance hooks so
	// the revoke/assign volley of the mid-run join is observable; w2
	// joins from the schedule.
	group, err := stream.NewGroupCfg(stream.GroupConfig{
		Client: rset.Client(stream.AckLeader), Topic: stream.TopicOutData, Metrics: reg,
	})
	if err != nil {
		return nil, err
	}
	hooks := stream.RebalanceHooks{
		OnRevoke: func(gen int64, parts []int32) { res.Revoked += len(parts) },
		OnAssign: func(gen int64, parts []int32) { res.Assigned += len(parts) },
	}
	w1, err := group.JoinWithHooks("w1", hooks)
	if err != nil {
		return nil, err
	}
	members := []*stream.GroupMember{w1}

	// The fault script. The kill closure resolves the leader at fire
	// time — elections before the kill (there are none in the base study)
	// would otherwise stale the target. It also resets the control-plane
	// cadence so the next scan is a full period away: the worst case for
	// detection latency, which is the window under measurement — without
	// it the kill could land a virtual millisecond before a scheduled
	// tick and the study would show a zero-length outage.
	nextTickMs := vnowMs + cfg.TickEvery.Milliseconds()
	sched := chaos.NewSchedule()
	sched.At(time.UnixMilli(killAt), "kill-leader", func() {
		id, _, ok := rset.Leader(stream.TopicInData, 0)
		if !ok {
			return
		}
		res.KilledReplica = id
		_ = rset.Kill(id)
		nextTickMs = vnowMs + cfg.TickEvery.Milliseconds()
	})
	sched.At(time.UnixMilli(joinAt), "join-w2", func() {
		w2, jerr := group.JoinWithHooks("w2", hooks)
		if jerr == nil {
			members = append(members, w2)
		}
	})
	sched.At(time.UnixMilli(reviveAt), "revive", func() {
		if res.KilledReplica != "" {
			_, _ = rset.Revive(res.KilledReplica)
		}
	})

	// Per-phase latency samples (virtual ms) and the exactly-once
	// delivery book for OUT-DATA.
	latMs := make([][]int64, len(res.Phases))
	seen := make(map[int32]map[int64]bool)
	drain := func() {
		for _, m := range members {
			for {
				msgs, perr := m.Poll(512)
				if len(msgs) == 0 {
					// Leaderless-window fetch errors are the disruption under
					// measurement, not a study failure.
					_ = perr
					break
				}
				for i := range msgs {
					byOff := seen[msgs[i].Partition]
					if byOff == nil {
						byOff = make(map[int64]bool)
						seen[msgs[i].Partition] = byOff
					}
					if byOff[msgs[i].Offset] {
						res.DupDeliveries++
					}
					byOff[msgs[i].Offset] = true
					res.Delivered++
					w, derr := core.DecodeWarning(msgs[i].Value)
					if derr != nil {
						continue
					}
					ph := phaseOf(w.SourceTsMs)
					ph.Warnings++
					pi := 0
					for j := range res.Phases {
						if ph == &res.Phases[j] {
							pi = j
						}
					}
					latMs[pi] = append(latMs[pi], vnowMs-w.SourceTsMs)
				}
				stream.RecycleMessages(msgs)
			}
		}
	}

	// pending holds records the leaderless window refused; they retry in
	// arrival order ahead of new traffic, like a producer's send queue.
	// ledger is the acks=all book the durability sweep settles against.
	type pendingRec struct {
		car     trace.CarID
		ts      int64
		payload []byte
		retried bool
	}
	var pending []pendingRec
	var ledger []ackedEntry
	produce := func(p *pendingRec) bool {
		part, off, perr := rset.Produce(stream.TopicInData, stream.AutoPartition, nil, p.payload, stream.AckAll)
		if perr != nil {
			res.FailedProduces++
			if !p.retried {
				p.retried = true
				res.RetriedRecords++
			}
			return false
		}
		ledger = append(ledger, ackedEntry{part: part, off: off, car: p.car, ts: p.ts})
		return true
	}

	flush := func() {
		for len(pending) > 0 {
			if !produce(&pending[0]) {
				break
			}
			pending = pending[1:]
		}
	}
	// tick is one control-plane round at its own virtual time, followed
	// by the data-plane work it may have unblocked (flushing the send
	// queue, stepping the node, draining warnings).
	tick := func() {
		rset.Tick()
		nextTickMs = vnowMs + cfg.TickEvery.Milliseconds()
		sched.Advance(now())
		flush()
		if _, serr := node.Step(); serr != nil {
			res.LeaderlessSteps++
		}
		drain()
	}
	for _, rec := range events {
		// Fire the cadence points the replay skipped over — corridor
		// traffic clusters by (day, hour), and a controller on a 30 s
		// scan must elect during the quiet gaps, not at the next record.
		target := rec.TimestampMs
		for nextTickMs <= target {
			vnowMs = nextTickMs
			tick()
		}
		vnowMs = target
		sched.Advance(now())

		flush()
		payload, perr := core.EncodeRecord(rec)
		if perr != nil {
			return nil, perr
		}
		phaseOf(rec.TimestampMs).Produced++
		p := pendingRec{car: rec.Car, ts: rec.TimestampMs, payload: payload}
		if len(pending) > 0 || !produce(&p) {
			pending = append(pending, p)
		}

		if _, serr := node.Step(); serr != nil {
			res.LeaderlessSteps++
		}
		drain()
	}
	// Settle: tick until the pending queue flushes and the revived
	// follower is back in sync, then flush the node and drain the tail.
	for i := 0; i < 4; i++ {
		vnowMs += cfg.TickEvery.Milliseconds()
		tick()
	}
	if len(pending) > 0 {
		return nil, fmt.Errorf("experiments: %d records still unacked after recovery", len(pending))
	}

	// Durability sweep: read every acked offset back from the current
	// leaders and compare content. A lost or rewritten record is exactly
	// the loss acks=all promises cannot happen.
	byPart := make(map[int32]map[int64]ackedEntry)
	for _, e := range ledger {
		m := byPart[e.part]
		if m == nil {
			m = make(map[int64]ackedEntry)
			byPart[e.part] = m
		}
		m[e.off] = e
	}
	parts, err := client.PartitionCount(stream.TopicInData)
	if err != nil {
		return nil, err
	}
	for p := 0; p < parts; p++ {
		want := byPart[int32(p)]
		got := make(map[int64]ackedEntry, len(want))
		off := int64(0)
		for {
			msgs, ferr := rset.Fetch(stream.TopicInData, int32(p), off, 512)
			if ferr != nil {
				return nil, fmt.Errorf("durability sweep %d: %w", p, ferr)
			}
			if len(msgs) == 0 {
				break
			}
			for i := range msgs {
				if r, derr := core.DecodeRecord(msgs[i].Value); derr == nil {
					got[msgs[i].Offset] = ackedEntry{car: r.Car, ts: r.TimestampMs}
				}
				off = msgs[i].Offset + 1
			}
			stream.RecycleMessages(msgs)
		}
		for o, e := range want {
			g, ok := got[o]
			if !ok || g.car != e.car || g.ts != e.ts {
				res.LostAcked++
			}
		}
	}
	res.AckedRecords = len(ledger)

	// Delivery completeness: every OUT-DATA offset below the final high
	// watermarks must have been delivered exactly once.
	outParts, err := client.PartitionCount(stream.TopicOutData)
	if err != nil {
		return nil, err
	}
	for p := 0; p < outParts; p++ {
		id, _, _ := rset.Leader(stream.TopicOutData, int32(p))
		b, _, berr := rset.BrokerFor(id)
		if berr != nil {
			return nil, berr
		}
		hwm, herr := b.HighWaterMark(stream.TopicOutData, int32(p))
		if herr != nil {
			return nil, herr
		}
		res.OutHighWater += hwm
		res.MissedDeliveries += hwm - int64(len(seen[int32(p)]))
	}

	for i := range res.Phases {
		sort.Slice(latMs[i], func(a, b int) bool { return latMs[i][a] < latMs[i][b] })
		res.Phases[i].WarnP50 = pctOf(latMs[i], 0.50)
		res.Phases[i].WarnP99 = pctOf(latMs[i], 0.99)
		res.Phases[i].WarnMax = pctOf(latMs[i], 1.0)
	}
	snap := reg.Snapshot()
	res.Elections = snap.Counters["election.count"]
	res.Generations = snap.Counters["rebalance.generations"]
	res.FinalISRSize = snap.Gauges["repl.isr_size"]
	if id, _, ok := rset.Leader(stream.TopicInData, 0); ok {
		res.NewLeader = id
	}
	res.Fired = sched.Fired()
	return res, nil
}

// FormatFailoverResult renders the per-phase disruption table and the
// durability/handoff accounting.
func FormatFailoverResult(res *FailoverResult) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-10s %9s %9s %10s %10s %10s\n",
		"phase", "records", "warnings", "warn-p50", "warn-p99", "warn-max")
	for _, ph := range res.Phases {
		fmt.Fprintf(&sb, "%-10s %9d %9d %10s %10s %10s\n",
			ph.Name, ph.Produced, ph.Warnings,
			ph.WarnP50.Round(time.Millisecond), ph.WarnP99.Round(time.Millisecond),
			ph.WarnMax.Round(time.Millisecond))
	}
	fmt.Fprintf(&sb, "durability: %d acks=all records, %d lost (%d refused during leaderless windows, %d retried to ack)\n",
		res.AckedRecords, res.LostAcked, res.FailedProduces, res.RetriedRecords)
	fmt.Fprintf(&sb, "failover: killed %s -> elected %s (%d elections, final min ISR %d/%d replicas)\n",
		res.KilledReplica, res.NewLeader, res.Elections, res.FinalISRSize, res.Replicas)
	fmt.Fprintf(&sb, "group: %d delivered over %d offsets, %d duplicates, %d missed, %d generations (%d revoked / %d assigned)\n",
		res.Delivered, res.OutHighWater, res.DupDeliveries, res.MissedDeliveries,
		res.Generations, res.Revoked, res.Assigned)
	fmt.Fprintf(&sb, "schedule: %s; %d node rounds erred while leaderless\n",
		strings.Join(res.Fired, " -> "), res.LeaderlessSteps)
	return sb.String()
}
