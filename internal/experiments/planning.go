package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"cad3/internal/geo"
	"cad3/internal/netem"
)

// RunTable5 reproduces Table V: the RSU deployment plan per road class,
// both from the paper's aggregate statistics and from a sampled synthetic
// network of the given scale.
func RunTable5(scale float64, seed int64) (fromStats, fromNetwork []geo.RSUPlanRow, err error) {
	fromStats = geo.PlanRSUsFromStats(geo.ShenzhenRoadStats(), 0)
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: scale, Seed: seed})
	if err != nil {
		return nil, nil, err
	}
	fromNetwork = geo.PlanRSUsFromNetwork(net, 0)
	return fromStats, fromNetwork, nil
}

// FormatTable5 renders the Table V reproduction.
func FormatTable5(rows []geo.RSUPlanRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-16s %8s %8s %10s %10s %8s\n", "road", "density", "#roads", "mean(m)", "std(m)", "RSUs")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-16s %7.1f%% %8d %10.0f %10.0f %8d\n",
			r.Type, r.DensityShare*100, r.RoadCount, r.MeanLengthM, r.StdLengthM, r.RSUs)
	}
	fmt.Fprintf(&sb, "%-16s %8s %8s %10s %10s %8d\n", "total", "", "", "", "", geo.TotalRSUs(rows))
	return sb.String()
}

// RunTable6 reproduces Table VI: spacing statistics of existing roadside
// infrastructure the edge nodes could co-locate with. The mean spacings
// come from the paper (traffic lights ~245 m; lamp poles ~83 m).
func RunTable6(scale float64, seed int64) ([]geo.SpacingStats, error) {
	net, err := geo.BuildNetwork(geo.BuildConfig{Scale: scale, Seed: seed})
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	lights := geo.PlaceInfrastructure(net, 245, 150, rng.NormFloat64)
	lamps := geo.PlaceInfrastructure(net, 83, 36, rng.NormFloat64)
	return []geo.SpacingStats{
		geo.SpacingFromPlacement(geo.TrafficLight, lights),
		geo.SpacingFromPlacement(geo.LampPole, lamps),
	}, nil
}

// FormatTable6 renders the Table VI reproduction.
func FormatTable6(rows []geo.SpacingStats) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-14s %8s %9s %9s %9s %9s\n", "RSU", "count", "avg(m)", "std(m)", "p75(m)", "max(m)")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-14s %8d %9.1f %9.1f %9.1f %9.1f\n",
			r.Kind, r.Count, r.AvgM, r.StdM, r.P75M, r.MaxM)
	}
	return sb.String()
}

// MACRow is one channel-access evaluation point (§VI-D1 and §VII-B).
type MACRow struct {
	Vehicles   int
	MCS        netem.MCS
	AccessTime time.Duration
	FitsPeriod bool
}

// RunMACAnalysis evaluates Equation 5 for the paper's cases: 256 vehicles
// at MCS 3 and MCS 8 (§VI-D1, 92.62 / 54.28 ms) and 400 vehicles at MCS 8
// (§VII-B, < 85 ms), plus the full vehicle sweep.
func RunMACAnalysis() ([]MACRow, error) {
	model := netem.MACModel{CollisionProb: netem.DefaultCollisionProb}
	cases := []struct {
		n   int
		mcs netem.MCS
	}{
		{8, netem.MCS3}, {16, netem.MCS3}, {32, netem.MCS3}, {64, netem.MCS3},
		{128, netem.MCS3}, {256, netem.MCS3},
		{256, netem.MCS8},
		{400, netem.MCS8},
	}
	rows := make([]MACRow, 0, len(cases))
	for _, c := range cases {
		fits, t, err := model.FitsReportingPeriod(c.n, netem.ReportBytes, c.mcs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, MACRow{Vehicles: c.n, MCS: c.mcs, AccessTime: t, FitsPeriod: fits})
	}
	return rows, nil
}

// FormatMACRows renders the Equation 5 evaluation.
func FormatMACRows(rows []MACRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%8s %-18s %12s %14s\n", "vehicles", "MCS", "access-time", "fits 100 ms")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%8d %-18s %12s %14v\n",
			r.Vehicles, r.MCS, r.AccessTime.Round(10*time.Microsecond), r.FitsPeriod)
	}
	return sb.String()
}

// CityScale reproduces the paper's scale arithmetic (§II-B, §VI-D2): the
// centralized load of city-wide telemetry versus the per-edge load, and
// the road-trunk-based system capacity.
type CityScale struct {
	// ConcurrentVehicles at peak (paper: >2M in Shenzhen's morning rush).
	ConcurrentVehicles int
	// CentralizedBytesPerSec is the aggregate cloud ingest load.
	CentralizedBytesPerSec float64
	// PerEdgeVehicles / PerEdgeBytesPerSec is the per-RSU load at the
	// 256-vehicle cap.
	PerEdgeVehicles       int
	PerEdgeBytesPerSec    float64
	PerEdgeBandwidthShare float64 // fraction of the 27 Mb/s DSRC channel
	// RoadTrunks and SystemCapacity: one RSU per trunk (paper: 51,129
	// trunks -> ~13M concurrent road users).
	RoadTrunks     int
	SystemCapacity int
}

// ShenzhenRoadTrunks is the paper's trunk count for Shenzhen.
const ShenzhenRoadTrunks = 51_129

// RunCityScale evaluates the arithmetic for the given peak vehicle count.
func RunCityScale(concurrentVehicles int) CityScale {
	if concurrentVehicles <= 0 {
		concurrentVehicles = 2_000_000
	}
	perVehicleBps := float64(netem.ReportBytes * netem.ReportHz) // bytes/s
	perEdge := 256
	perEdgeLoad := float64(perEdge) * perVehicleBps
	// Wire rate includes framing overhead; ~20 kb/s per vehicle as
	// measured in Figure 6c.
	perEdgeBits := perEdgeLoad * 8 * 1.25
	return CityScale{
		ConcurrentVehicles:     concurrentVehicles,
		CentralizedBytesPerSec: float64(concurrentVehicles) * perVehicleBps,
		PerEdgeVehicles:        perEdge,
		PerEdgeBytesPerSec:     perEdgeLoad,
		PerEdgeBandwidthShare:  perEdgeBits / netem.DSRCBandwidthBps,
		RoadTrunks:             ShenzhenRoadTrunks,
		SystemCapacity:         ShenzhenRoadTrunks * perEdge,
	}
}

// FormatCityScale renders the scale analysis.
func FormatCityScale(c CityScale) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "concurrent vehicles:        %d\n", c.ConcurrentVehicles)
	fmt.Fprintf(&sb, "centralized ingest:         %.2f GB/s\n", c.CentralizedBytesPerSec/1e9)
	fmt.Fprintf(&sb, "per-edge vehicles:          %d\n", c.PerEdgeVehicles)
	fmt.Fprintf(&sb, "per-edge ingest:            %.0f KB/s\n", c.PerEdgeBytesPerSec/1e3)
	fmt.Fprintf(&sb, "per-edge DSRC share:        %.2f (paper: ~1/5)\n", c.PerEdgeBandwidthShare)
	fmt.Fprintf(&sb, "road trunks:                %d\n", c.RoadTrunks)
	fmt.Fprintf(&sb, "system capacity (vehicles): %d\n", c.SystemCapacity)
	return sb.String()
}
