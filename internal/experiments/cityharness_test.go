package experiments

import (
	"testing"

	"cad3/internal/scenario"
)

// cityTestHarness shares one compact city network across the package's
// tests; each engine run Resets the harness.
func cityTestHarness(t *testing.T) *CityScenarioHarness {
	t.Helper()
	h, err := NewCityScenarioHarness(CityHarnessConfig{})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// TestCityHarnessDeterministic pins the determinism contract for the
// city-backed harness: same spec, byte-identical transcripts; a
// different seed reaches the city and changes the run.
func TestCityHarnessDeterministic(t *testing.T) {
	spec := &scenario.Spec{
		Version: scenario.SpecVersion, Name: "city-determinism-probe", Seed: 3,
		Phases: []scenario.PhaseSpec{
			{
				Name: "churn", Rounds: 40,
				Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1},
				Actions: []scenario.ActionSpec{
					{At: 5, Type: "link_loss", Prob: 0.3},
					{At: 10, Type: "kill", Replica: "r1"},
					{At: 25, Type: "revive", Replica: "r1"},
					{At: 30, Type: "heal_all"},
				},
			},
			{Name: "drain", Rounds: 20, Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1}},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	h := cityTestHarness(t)
	e := scenario.New(scenario.Config{})
	r1, err := e.Run(spec, h)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := e.Run(spec, h)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Transcript != r2.Transcript {
		t.Fatal("same spec, same city harness, different transcripts — the replay is not deterministic")
	}
	reseeded := spec.Clone()
	reseeded.Seed = 4
	r3, err := e.Run(reseeded, h)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Transcript == r1.Transcript {
		t.Fatal("different seeds produced identical transcripts — the seed is not reaching the city")
	}
}

// TestCityHarnessSettlesCleanUnderChaos drives a correlated replica
// flap plus a lossy handover link through the engine and demands the
// settled audit is clean with real handover traffic behind it.
func TestCityHarnessSettlesCleanUnderChaos(t *testing.T) {
	spec := &scenario.Spec{
		Version: scenario.SpecVersion, Name: "city-chaos-probe", Seed: 7,
		Phases: []scenario.PhaseSpec{
			{
				Name: "storm", Rounds: 60,
				Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1},
				Actions: []scenario.ActionSpec{
					{At: 5, Type: "link_loss", Prob: 0.5},
					{At: 10, Type: "kill", Replica: "r0"},
					{At: 35, Type: "revive", Replica: "r0"},
					{At: 45, Type: "heal_all"},
				},
				Assertions: []scenario.AssertionSpec{
					{Metric: "elections", Op: ">=", Value: 1},
					{Metric: "handovers", Op: ">", Value: 0},
					{Metric: "router_retries", Op: ">", Value: 0},
				},
			},
			{
				Name: "settled", Rounds: 20,
				Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1},
				Assertions: []scenario.AssertionSpec{
					{Metric: "in_flight", Op: "==", Value: 0},
					{Metric: "handover_lost", Op: "==", Value: 0},
					{Metric: "handover_dups", Op: "==", Value: 0},
					{Metric: "warnings_lost", Op: "==", Value: 0},
					{Metric: "warnings_dup", Op: "==", Value: 0},
					{Metric: "telemetry_unacked", Op: "==", Value: 0},
					{Metric: "handover_applied_total", Op: ">", Value: 0},
				},
			},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	h := cityTestHarness(t)
	e := scenario.New(scenario.Config{})
	res, err := e.Run(spec, h)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Pass {
		t.Fatalf("%d assertion(s) failed:\n%s", res.Failures, res.Transcript)
	}
}

// TestCityHarnessRejectsUnsupportedActions pins the contract that an
// action outside the city vocabulary is an action error (recorded,
// run continues), not a run abort.
func TestCityHarnessRejectsUnsupportedActions(t *testing.T) {
	spec := &scenario.Spec{
		Version: scenario.SpecVersion, Name: "city-unsupported-probe", Seed: 1,
		Phases: []scenario.PhaseSpec{
			{
				Name: "probe", Rounds: 5,
				Traffic: scenario.TrafficSpec{Shape: "steady", Rate: 1},
				Actions: []scenario.ActionSpec{
					{At: 1, Type: "clock_skew", SkewMs: 500},
				},
			},
		},
	}
	if err := spec.Validate(); err != nil {
		t.Fatal(err)
	}
	h := cityTestHarness(t)
	e := scenario.New(scenario.Config{})
	res, err := e.Run(spec, h)
	if err != nil {
		t.Fatalf("unsupported action aborted the run: %v", err)
	}
	if !res.Pass {
		t.Fatalf("run failed:\n%s", res.Transcript)
	}
}
