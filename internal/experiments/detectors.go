package experiments

import (
	"fmt"
	"strings"

	"cad3/internal/core"
	"cad3/internal/geo"
	"cad3/internal/mlkit"
	"cad3/internal/trace"
)

// DetectorRow is one row of the detector-algorithm comparison: the
// paper's future work proposes running "complex anomaly detection
// algorithms" within CAD3; this experiment measures what each standalone
// algorithm buys at the motorway-link RSU.
type DetectorRow struct {
	Detector string
	Accuracy float64
	F1       float64
	FNRate   float64
}

// RunDetectorComparison trains and scores the standalone detector
// algorithms on the scenario's motorway-link data: the paper's Gaussian
// NB (AD3), logistic regression, a decision tree over the instantaneous
// features, and the continuously learning online NB.
func RunDetectorComparison(sc *Scenario) ([]DetectorRow, error) {
	var rows []DetectorRow
	evalRow := func(name string, det core.Detector) error {
		m, err := core.EvaluateDetector(det, sc.TestLink, sc.Labeler, nil)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		rows = append(rows, DetectorRow{
			Detector: name, Accuracy: m.Accuracy(), F1: m.F1(), FNRate: m.FNRate(),
		})
		return nil
	}

	// Gaussian NB (the paper's AD3) — already trained in the scenario.
	if err := evalRow("GaussianNB (AD3)", sc.AD3); err != nil {
		return nil, err
	}

	// Logistic regression.
	logit := core.NewLogisticAD3(geo.MotorwayLink, mlkit.LogisticConfig{})
	if err := logit.Train(sc.Train, sc.Labeler); err != nil {
		return nil, err
	}
	if err := evalRow("Logistic", logit); err != nil {
		return nil, err
	}

	// Decision tree over the instantaneous features.
	tree := &treeDetector{tree: mlkit.NewDecisionTree(mlkit.TreeConfig{})}
	linkTrain := trace.RecordsOfType(sc.Train, geo.MotorwayLink)
	samples, _ := sc.Labeler.MakeSamples(linkTrain)
	if err := tree.tree.Fit(samples); err != nil {
		return nil, err
	}
	if err := evalRow("DecisionTree", tree); err != nil {
		return nil, err
	}

	// kNN stores the (standardized) training set.
	knn := &knnDetector{knn: mlkit.NewKNN(7)}
	if err := knn.knn.Fit(samples); err != nil {
		return nil, err
	}
	if err := evalRow("kNN(7)", knn); err != nil {
		return nil, err
	}

	// Online NB fed the training stream once (the continuously learning
	// RSU after one day of traffic, so to speak).
	online, err := core.NewOnlineAD3(geo.MotorwayLink, 0, 100)
	if err != nil {
		return nil, err
	}
	for _, r := range linkTrain {
		if err := online.Observe(r); err != nil {
			return nil, err
		}
	}
	if err := evalRow("OnlineNB", online); err != nil {
		return nil, err
	}
	return rows, nil
}

// knnDetector adapts kNN over Features to the Detector interface.
type knnDetector struct {
	knn *mlkit.KNN
}

func (d *knnDetector) Name() string { return "kNN" }

func (d *knnDetector) Detect(rec trace.Record, _ *core.PredictionSummary) (core.Detection, error) {
	v := core.FeatureVec(rec)
	p, err := d.knn.PredictProba(v[:])
	if err != nil {
		return core.Detection{}, err
	}
	return core.Detection{
		Car: rec.Car, Road: int64(rec.Road),
		Class: mlkit.PredictLabel(p), PNormal: p,
	}, nil
}

// treeDetector adapts a plain decision tree over Features to the Detector
// interface.
type treeDetector struct {
	tree *mlkit.DecisionTree
}

func (d *treeDetector) Name() string { return "DecisionTree" }

func (d *treeDetector) Detect(rec trace.Record, _ *core.PredictionSummary) (core.Detection, error) {
	v := core.FeatureVec(rec)
	p, err := d.tree.PredictProba(v[:])
	if err != nil {
		return core.Detection{}, err
	}
	return core.Detection{
		Car: rec.Car, Road: int64(rec.Road),
		Class: mlkit.PredictLabel(p), PNormal: p,
	}, nil
}

// FormatDetectorRows renders the comparison.
func FormatDetectorRows(rows []DetectorRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-18s %8s %8s %8s\n", "detector", "acc", "F1", "FN-rate")
	for _, r := range rows {
		fmt.Fprintf(&sb, "%-18s %8.4f %8.4f %8.4f\n", r.Detector, r.Accuracy, r.F1, r.FNRate)
	}
	return sb.String()
}
