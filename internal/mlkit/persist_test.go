package mlkit

import (
	"encoding/json"
	"math/rand"
	"testing"
)

func TestGaussianNBJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	nb := NewGaussianNB()
	if err := nb.Fit(gaussianSamples(rng, 300, 4)); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(nb)
	if err != nil {
		t.Fatal(err)
	}
	loaded := NewGaussianNB()
	if err := json.Unmarshal(data, loaded); err != nil {
		t.Fatal(err)
	}
	probe := rand.New(rand.NewSource(2))
	for i := 0; i < 100; i++ {
		x := []float64{probe.NormFloat64() * 3, probe.NormFloat64() * 3}
		a, _ := nb.PredictProba(x)
		b, err := loaded.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("probabilities diverge after round trip: %v vs %v", a, b)
		}
	}
}

func TestGaussianNBMarshalUntrained(t *testing.T) {
	if _, err := json.Marshal(NewGaussianNB()); err == nil {
		t.Error("want error marshaling untrained NB")
	}
}

func TestGaussianNBUnmarshalRejectsBadState(t *testing.T) {
	cases := map[string]string{
		"garbage":        `»`,
		"bad version":    `{"version":9,"width":1,"mean":[[0],[1]],"vari":[[1],[1]]}`,
		"zero width":     `{"version":1,"width":0,"mean":[[],[]],"vari":[[],[]]}`,
		"width mismatch": `{"version":1,"width":2,"mean":[[0],[1]],"vari":[[1],[1]]}`,
		"bad variance":   `{"version":1,"width":1,"mean":[[0],[1]],"vari":[[0],[1]]}`,
	}
	for name, in := range cases {
		nb := NewGaussianNB()
		if err := json.Unmarshal([]byte(in), nb); err == nil {
			t.Errorf("%s: want error", name)
		}
		if nb.Trained() {
			t.Errorf("%s: failed unmarshal left NB trained", name)
		}
	}
}

func TestDecisionTreeJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dt := NewDecisionTree(TreeConfig{MaxDepth: 5})
	if err := dt.Fit(xorSamples(rng, 500)); err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(dt)
	if err != nil {
		t.Fatal(err)
	}
	loaded := NewDecisionTree(TreeConfig{})
	if err := json.Unmarshal(data, loaded); err != nil {
		t.Fatal(err)
	}
	if loaded.Depth() != dt.Depth() {
		t.Errorf("depth %d vs %d after round trip", loaded.Depth(), dt.Depth())
	}
	probe := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		x := []float64{probe.Float64() * 1.2, probe.Float64() * 1.2}
		a, _ := dt.PredictProba(x)
		b, err := loaded.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		if a != b {
			t.Fatalf("tree probabilities diverge: %v vs %v", a, b)
		}
	}
}

func TestDecisionTreeUnmarshalRejectsBadState(t *testing.T) {
	cases := map[string]string{
		"garbage":     `{`,
		"bad version": `{"version":7,"width":1,"root":{"leaf":true,"pNormal":0.5}}`,
		"no root":     `{"version":1,"width":1}`,
		"bad leaf":    `{"version":1,"width":1,"root":{"leaf":true,"pNormal":7}}`,
		"bad feature": `{"version":1,"width":1,"root":{"leaf":false,"feature":3,"left":{"leaf":true},"right":{"leaf":true}}}`,
		"no children": `{"version":1,"width":1,"root":{"leaf":false,"feature":0}}`,
	}
	for name, in := range cases {
		dt := NewDecisionTree(TreeConfig{})
		if err := json.Unmarshal([]byte(in), dt); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestDecisionTreeMarshalUntrained(t *testing.T) {
	if _, err := json.Marshal(NewDecisionTree(TreeConfig{})); err == nil {
		t.Error("want error marshaling untrained tree")
	}
}
