package mlkit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfusionMatrixCounts(t *testing.T) {
	var m ConfusionMatrix
	m.Observe(ClassAbnormal, ClassAbnormal) // TP
	m.Observe(ClassAbnormal, ClassAbnormal) // TP
	m.Observe(ClassAbnormal, ClassNormal)   // FN
	m.Observe(ClassNormal, ClassNormal)     // TN
	m.Observe(ClassNormal, ClassNormal)     // TN
	m.Observe(ClassNormal, ClassNormal)     // TN
	m.Observe(ClassNormal, ClassAbnormal)   // FP

	if m.TP != 2 || m.FN != 1 || m.TN != 3 || m.FP != 1 {
		t.Fatalf("counts = %+v", m)
	}
	if m.Total() != 7 {
		t.Errorf("Total = %d", m.Total())
	}
	if got := m.Accuracy(); math.Abs(got-5.0/7.0) > 1e-12 {
		t.Errorf("Accuracy = %v", got)
	}
	if got := m.Precision(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Precision = %v", got)
	}
	if got := m.Recall(); math.Abs(got-2.0/3.0) > 1e-12 {
		t.Errorf("Recall = %v", got)
	}
	if m.TPRate() != m.Recall() {
		t.Error("TPRate should alias Recall")
	}
	if got := m.FNRate(); math.Abs(got-1.0/3.0) > 1e-12 {
		t.Errorf("FNRate = %v", got)
	}
	wantF1 := 2 * (2.0 / 3.0) * (2.0 / 3.0) / (4.0 / 3.0)
	if got := m.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("F1 = %v, want %v", got, wantF1)
	}
}

func TestConfusionMatrixZeroSafety(t *testing.T) {
	var m ConfusionMatrix
	if m.Accuracy() != 0 || m.Precision() != 0 || m.Recall() != 0 || m.F1() != 0 || m.FNRate() != 0 {
		t.Error("empty matrix metrics should be 0, not NaN")
	}
}

func TestTPPlusFNRateIsOne(t *testing.T) {
	f := func(tp, fn uint8) bool {
		m := ConfusionMatrix{TP: int(tp), FN: int(fn)}
		if m.TP+m.FN == 0 {
			return true
		}
		return math.Abs(m.TPRate()+m.FNRate()-1) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestConfusionMatrixString(t *testing.T) {
	m := ConfusionMatrix{TP: 1, FN: 2, TN: 3, FP: 4}
	s := m.String()
	if s == "" {
		t.Error("empty String()")
	}
}

type constClassifier struct{ p float64 }

func (c constClassifier) PredictProba([]float64) (float64, error) { return c.p, nil }
func (c constClassifier) Predict([]float64) (int, error)          { return PredictLabel(c.p), nil }

func TestEvaluate(t *testing.T) {
	samples := []Sample{
		{Features: []float64{0}, Label: ClassNormal},
		{Features: []float64{0}, Label: ClassAbnormal},
	}
	m, err := Evaluate(constClassifier{p: 0.9}, samples)
	if err != nil {
		t.Fatal(err)
	}
	if m.TN != 1 || m.FN != 1 {
		t.Errorf("matrix = %+v", m)
	}
}

func TestEvaluatePropagatesErrors(t *testing.T) {
	nb := NewGaussianNB()
	if _, err := Evaluate(nb, []Sample{{Features: []float64{1}, Label: 1}}); err == nil {
		t.Error("want error from untrained classifier")
	}
}

func TestPredictLabel(t *testing.T) {
	if PredictLabel(0.5) != ClassNormal || PredictLabel(0.9) != ClassNormal {
		t.Error("p >= 0.5 should be normal")
	}
	if PredictLabel(0.49) != ClassAbnormal || PredictLabel(0) != ClassAbnormal {
		t.Error("p < 0.5 should be abnormal")
	}
}
