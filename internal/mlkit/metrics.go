package mlkit

import "fmt"

// ConfusionMatrix counts binary-classification outcomes with abnormal
// (ClassAbnormal) as the positive class, matching the paper's Table IV:
// a true positive is an abnormal point detected as abnormal, a false
// negative an abnormal point the model waved through.
type ConfusionMatrix struct {
	TP int // abnormal, predicted abnormal
	FN int // abnormal, predicted normal
	TN int // normal, predicted normal
	FP int // normal, predicted abnormal
}

// Observe records one (truth, prediction) pair.
func (m *ConfusionMatrix) Observe(truth, predicted int) {
	switch {
	case truth == ClassAbnormal && predicted == ClassAbnormal:
		m.TP++
	case truth == ClassAbnormal && predicted == ClassNormal:
		m.FN++
	case truth == ClassNormal && predicted == ClassNormal:
		m.TN++
	default:
		m.FP++
	}
}

// Total returns the number of observations.
func (m ConfusionMatrix) Total() int { return m.TP + m.FN + m.TN + m.FP }

// Accuracy returns (TP+TN)/total.
func (m ConfusionMatrix) Accuracy() float64 {
	t := m.Total()
	if t == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(t)
}

// Precision returns TP/(TP+FP).
func (m ConfusionMatrix) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// Recall returns TP/(TP+FN) — the paper's "TP rate".
func (m ConfusionMatrix) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// TPRate is an alias of Recall matching the paper's Table IV terminology.
func (m ConfusionMatrix) TPRate() float64 { return m.Recall() }

// FNRate returns FN/(TP+FN): the share of abnormal points the model missed,
// the quantity the paper ties to potential accidents.
func (m ConfusionMatrix) FNRate() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.FN) / float64(m.TP+m.FN)
}

// F1 returns the harmonic mean of precision and recall.
func (m ConfusionMatrix) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// String implements fmt.Stringer.
func (m ConfusionMatrix) String() string {
	return fmt.Sprintf("TP=%d FN=%d TN=%d FP=%d acc=%.4f f1=%.4f",
		m.TP, m.FN, m.TN, m.FP, m.Accuracy(), m.F1())
}

// Evaluate runs a classifier over labelled samples and accumulates a
// confusion matrix.
func Evaluate(c Classifier, samples []Sample) (ConfusionMatrix, error) {
	var m ConfusionMatrix
	for i, s := range samples {
		pred, err := c.Predict(s.Features)
		if err != nil {
			return m, fmt.Errorf("evaluate sample %d: %w", i, err)
		}
		m.Observe(s.Label, pred)
	}
	return m, nil
}
