package mlkit

import (
	"fmt"
	"math"
	"sort"
)

// KNN is a k-nearest-neighbors binary classifier with standardized
// Euclidean distance — another candidate for the paper's future-work
// "complex anomaly detection algorithms", at the opposite end of the
// memory/latency trade-off from Naive Bayes (it stores the training set
// and pays O(n) per prediction).
type KNN struct {
	k         int
	features  [][]float64 // standardized
	labels    []int
	mean, std []float64
	trained   bool
}

var _ Classifier = (*KNN)(nil)

// NewKNN creates an untrained classifier. k <= 0 selects 5; k is rounded
// up to odd so votes cannot tie.
func NewKNN(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	if k%2 == 0 {
		k++
	}
	return &KNN{k: k}
}

// Fit stores the standardized training set.
func (kn *KNN) Fit(samples []Sample) error {
	width, err := validateSamples(samples)
	if err != nil {
		return err
	}
	kn.mean = make([]float64, width)
	kn.std = make([]float64, width)
	n := float64(len(samples))
	for _, s := range samples {
		for f, x := range s.Features {
			kn.mean[f] += x
		}
	}
	for f := range kn.mean {
		kn.mean[f] /= n
	}
	for _, s := range samples {
		for f, x := range s.Features {
			d := x - kn.mean[f]
			kn.std[f] += d * d
		}
	}
	for f := range kn.std {
		kn.std[f] = math.Sqrt(kn.std[f] / n)
		if kn.std[f] < 1e-9 {
			kn.std[f] = 1
		}
	}
	kn.features = make([][]float64, len(samples))
	kn.labels = make([]int, len(samples))
	for i, s := range samples {
		row := make([]float64, width)
		for f, x := range s.Features {
			row[f] = (x - kn.mean[f]) / kn.std[f]
		}
		kn.features[i] = row
		kn.labels[i] = s.Label
	}
	kn.trained = true
	return nil
}

// PredictProba returns the normal-vote fraction among the k nearest
// neighbors.
func (kn *KNN) PredictProba(features []float64) (float64, error) {
	if !kn.trained {
		return 0, ErrNotTrained
	}
	if len(features) != len(kn.mean) {
		return 0, ErrFeatureWidth
	}
	q := make([]float64, len(features))
	for f, x := range features {
		q[f] = (x - kn.mean[f]) / kn.std[f]
	}
	type hit struct {
		dist  float64
		label int
	}
	hits := make([]hit, len(kn.features))
	for i, row := range kn.features {
		var d float64
		for f := range row {
			diff := row[f] - q[f]
			d += diff * diff
		}
		hits[i] = hit{dist: d, label: kn.labels[i]}
	}
	k := kn.k
	if k > len(hits) {
		k = len(hits)
	}
	// Partial selection of the k nearest.
	sort.Slice(hits, func(i, j int) bool { return hits[i].dist < hits[j].dist })
	var normal int
	for _, h := range hits[:k] {
		if h.label == ClassNormal {
			normal++
		}
	}
	return float64(normal) / float64(k), nil
}

// Predict returns the majority vote.
func (kn *KNN) Predict(features []float64) (int, error) {
	p, err := kn.PredictProba(features)
	if err != nil {
		return 0, err
	}
	return PredictLabel(p), nil
}

// K returns the (odd) neighbor count.
func (kn *KNN) K() int { return kn.k }

// Trained reports whether Fit has succeeded.
func (kn *KNN) Trained() bool { return kn.trained }

// TrainingSize returns the stored sample count.
func (kn *KNN) TrainingSize() int { return len(kn.features) }

// String implements fmt.Stringer.
func (kn *KNN) String() string { return fmt.Sprintf("kNN(k=%d,n=%d)", kn.k, len(kn.features)) }
