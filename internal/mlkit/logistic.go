package mlkit

import (
	"fmt"
	"math"
)

// LogisticRegression is a binary logistic-regression classifier trained
// with full-batch gradient descent and L2 regularisation. The paper's
// future work calls for "complex anomaly detection algorithms" operating
// within CAD3; this is the first step beyond Naive Bayes while staying
// explainable (weights are readable).
type LogisticRegression struct {
	cfg     LogisticConfig
	weights []float64 // one per feature
	bias    float64
	// Standardisation parameters learned from the training set.
	mean, std []float64
	trained   bool
}

var _ Classifier = (*LogisticRegression)(nil)

// LogisticConfig tunes training.
type LogisticConfig struct {
	// LearningRate for gradient descent. Values <= 0 select 0.1.
	LearningRate float64
	// Epochs of full-batch descent. Values <= 0 select 200.
	Epochs int
	// L2 regularisation strength. Values < 0 select 1e-4.
	L2 float64
}

func (c LogisticConfig) withDefaults() LogisticConfig {
	if c.LearningRate <= 0 {
		c.LearningRate = 0.1
	}
	if c.Epochs <= 0 {
		c.Epochs = 200
	}
	if c.L2 < 0 {
		c.L2 = 1e-4
	}
	if c.L2 == 0 {
		c.L2 = 1e-4
	}
	return c
}

// NewLogisticRegression returns an untrained model.
func NewLogisticRegression(cfg LogisticConfig) *LogisticRegression {
	return &LogisticRegression{cfg: cfg.withDefaults()}
}

// Fit trains the model. Features are standardised internally.
func (lr *LogisticRegression) Fit(samples []Sample) error {
	width, err := validateSamples(samples)
	if err != nil {
		return err
	}
	lr.mean = make([]float64, width)
	lr.std = make([]float64, width)
	n := float64(len(samples))
	for _, s := range samples {
		for f, x := range s.Features {
			lr.mean[f] += x
		}
	}
	for f := range lr.mean {
		lr.mean[f] /= n
	}
	for _, s := range samples {
		for f, x := range s.Features {
			d := x - lr.mean[f]
			lr.std[f] += d * d
		}
	}
	for f := range lr.std {
		lr.std[f] = math.Sqrt(lr.std[f] / n)
		if lr.std[f] < 1e-9 {
			lr.std[f] = 1
		}
	}

	// Standardised design matrix, computed once.
	xs := make([][]float64, len(samples))
	ys := make([]float64, len(samples))
	for i, s := range samples {
		row := make([]float64, width)
		for f, x := range s.Features {
			row[f] = (x - lr.mean[f]) / lr.std[f]
		}
		xs[i] = row
		ys[i] = float64(s.Label) // 1 = normal
	}

	lr.weights = make([]float64, width)
	lr.bias = 0
	grad := make([]float64, width)
	for epoch := 0; epoch < lr.cfg.Epochs; epoch++ {
		for f := range grad {
			grad[f] = 0
		}
		var gradBias float64
		for i, row := range xs {
			p := sigmoid(lr.bias + dot(lr.weights, row))
			e := p - ys[i]
			for f, x := range row {
				grad[f] += e * x
			}
			gradBias += e
		}
		for f := range lr.weights {
			lr.weights[f] -= lr.cfg.LearningRate * (grad[f]/n + lr.cfg.L2*lr.weights[f])
		}
		lr.bias -= lr.cfg.LearningRate * gradBias / n
	}
	lr.trained = true
	return nil
}

// PredictProba returns P(normal | features).
func (lr *LogisticRegression) PredictProba(features []float64) (float64, error) {
	if !lr.trained {
		return 0, ErrNotTrained
	}
	if len(features) != len(lr.weights) {
		return 0, ErrFeatureWidth
	}
	z := lr.bias
	for f, x := range features {
		z += lr.weights[f] * (x - lr.mean[f]) / lr.std[f]
	}
	return sigmoid(z), nil
}

// Predict returns the most likely class label.
func (lr *LogisticRegression) Predict(features []float64) (int, error) {
	p, err := lr.PredictProba(features)
	if err != nil {
		return 0, err
	}
	return PredictLabel(p), nil
}

// Weights returns a copy of the fitted (standardised-space) weights, for
// explainability.
func (lr *LogisticRegression) Weights() []float64 {
	out := make([]float64, len(lr.weights))
	copy(out, lr.weights)
	return out
}

// Trained reports whether Fit has succeeded.
func (lr *LogisticRegression) Trained() bool { return lr.trained }

func sigmoid(z float64) float64 {
	if z >= 0 {
		return 1 / (1 + math.Exp(-z))
	}
	e := math.Exp(z)
	return e / (1 + e)
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// KFoldCrossValidate scores a model-builder over k folds, returning the
// per-fold confusion matrices. build must return a fresh untrained
// classifier together with its Fit function.
func KFoldCrossValidate(samples []Sample, k int, build func() (Classifier, func([]Sample) error)) ([]ConfusionMatrix, error) {
	if k < 2 {
		return nil, fmt.Errorf("mlkit: k-fold needs k >= 2, got %d", k)
	}
	if len(samples) < k {
		return nil, fmt.Errorf("mlkit: %d samples cannot fill %d folds", len(samples), k)
	}
	out := make([]ConfusionMatrix, 0, k)
	foldSize := len(samples) / k
	for fold := 0; fold < k; fold++ {
		lo := fold * foldSize
		hi := lo + foldSize
		if fold == k-1 {
			hi = len(samples)
		}
		test := samples[lo:hi]
		train := make([]Sample, 0, len(samples)-len(test))
		train = append(train, samples[:lo]...)
		train = append(train, samples[hi:]...)

		clf, fit := build()
		if err := fit(train); err != nil {
			return nil, fmt.Errorf("fold %d: %w", fold, err)
		}
		m, err := Evaluate(clf, test)
		if err != nil {
			return nil, fmt.Errorf("fold %d: %w", fold, err)
		}
		out = append(out, m)
	}
	return out, nil
}

// MeanF1 averages F1 across confusion matrices.
func MeanF1(ms []ConfusionMatrix) float64 {
	if len(ms) == 0 {
		return 0
	}
	var total float64
	for _, m := range ms {
		total += m.F1()
	}
	return total / float64(len(ms))
}
