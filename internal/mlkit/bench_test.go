package mlkit

import (
	"math/rand"
	"testing"
)

func benchFixture(b *testing.B, n int) ([]Sample, [][]float64) {
	b.Helper()
	rng := rand.New(rand.NewSource(1))
	train := gaussianSamples(rng, n, 3)
	probes := make([][]float64, 1024)
	for i := range probes {
		probes[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	return train, probes
}

func BenchmarkGaussianNBFit(b *testing.B) {
	train, _ := benchFixture(b, 5000)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		nb := NewGaussianNB()
		if err := nb.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkGaussianNBPredict(b *testing.B) {
	train, probes := benchFixture(b, 5000)
	nb := NewGaussianNB()
	if err := nb.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := nb.PredictProba(probes[i%len(probes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecisionTreeFit(b *testing.B) {
	train, _ := benchFixture(b, 5000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dt := NewDecisionTree(TreeConfig{})
		if err := dt.Fit(train); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecisionTreePredict(b *testing.B) {
	train, probes := benchFixture(b, 5000)
	dt := NewDecisionTree(TreeConfig{})
	if err := dt.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dt.PredictProba(probes[i%len(probes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOnlineNBObserve(b *testing.B) {
	nb, err := NewOnlineGaussianNB(3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	features := [][]float64{
		{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
		{5 + rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()},
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := nb.Observe(features[i%2], i%2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKNNPredict(b *testing.B) {
	train, probes := benchFixture(b, 2000)
	kn := NewKNN(7)
	if err := kn.Fit(train); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kn.PredictProba(probes[i%len(probes)]); err != nil {
			b.Fatal(err)
		}
	}
}
