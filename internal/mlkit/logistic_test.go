package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLogisticSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := gaussianSamples(rng, 400, 5)
	test := gaussianSamples(rng, 200, 5)

	lr := NewLogisticRegression(LogisticConfig{})
	if err := lr.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(lr, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.97 {
		t.Errorf("accuracy %.3f on separable data, want >= 0.97", m.Accuracy())
	}
	if !lr.Trained() {
		t.Error("Trained() should be true")
	}
	if len(lr.Weights()) != 2 {
		t.Errorf("weights = %v", lr.Weights())
	}
}

func TestLogisticProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	lr := NewLogisticRegression(LogisticConfig{Epochs: 50})
	if err := lr.Fit(gaussianSamples(rng, 200, 3)); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p, err := lr.PredictProba([]float64{a, b})
		return err == nil && p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLogisticErrors(t *testing.T) {
	lr := NewLogisticRegression(LogisticConfig{})
	if _, err := lr.Predict([]float64{1}); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := lr.Fit(nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := lr.Fit(gaussianSamples(rng, 50, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := lr.PredictProba([]float64{1, 2, 3}); err != ErrFeatureWidth {
		t.Errorf("err = %v, want ErrFeatureWidth", err)
	}
}

func TestLogisticConstantFeature(t *testing.T) {
	var samples []Sample
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 100; i++ {
		samples = append(samples,
			Sample{Features: []float64{7, rng.NormFloat64()}, Label: ClassNormal},
			Sample{Features: []float64{7, 5 + rng.NormFloat64()}, Label: ClassAbnormal},
		)
	}
	lr := NewLogisticRegression(LogisticConfig{})
	if err := lr.Fit(samples); err != nil {
		t.Fatal(err)
	}
	p, err := lr.PredictProba([]float64{7, 0})
	if err != nil || math.IsNaN(p) {
		t.Fatalf("p = %v, err = %v", p, err)
	}
	if p < 0.5 {
		t.Errorf("P(normal|x2=0) = %.3f, want > 0.5", p)
	}
}

func TestSigmoidStability(t *testing.T) {
	if s := sigmoid(1000); s != 1 {
		t.Errorf("sigmoid(1000) = %v", s)
	}
	if s := sigmoid(-1000); s != 0 {
		t.Errorf("sigmoid(-1000) = %v", s)
	}
	if s := sigmoid(0); math.Abs(s-0.5) > 1e-12 {
		t.Errorf("sigmoid(0) = %v", s)
	}
}

func TestKFoldCrossValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	samples := gaussianSamples(rng, 300, 5)

	build := func() (Classifier, func([]Sample) error) {
		nb := NewGaussianNB()
		return nb, nb.Fit
	}
	ms, err := KFoldCrossValidate(samples, 5, build)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms) != 5 {
		t.Fatalf("folds = %d", len(ms))
	}
	var total int
	for _, m := range ms {
		total += m.Total()
	}
	if total != len(samples) {
		t.Errorf("folds cover %d samples, want %d", total, len(samples))
	}
	if f1 := MeanF1(ms); f1 < 0.95 {
		t.Errorf("mean F1 %.3f on separable data", f1)
	}

	if _, err := KFoldCrossValidate(samples, 1, build); err == nil {
		t.Error("want error for k < 2")
	}
	if _, err := KFoldCrossValidate(samples[:3], 5, build); err == nil {
		t.Error("want error for too few samples")
	}
	if MeanF1(nil) != 0 {
		t.Error("MeanF1(nil) should be 0")
	}
}

func TestKFoldComparesModels(t *testing.T) {
	// On XOR data the tree must beat logistic regression.
	rng := rand.New(rand.NewSource(6))
	samples := xorSamples(rng, 600)

	treeScores, err := KFoldCrossValidate(samples, 4, func() (Classifier, func([]Sample) error) {
		dt := NewDecisionTree(TreeConfig{MaxDepth: 4})
		return dt, dt.Fit
	})
	if err != nil {
		t.Fatal(err)
	}
	lrScores, err := KFoldCrossValidate(samples, 4, func() (Classifier, func([]Sample) error) {
		lr := NewLogisticRegression(LogisticConfig{Epochs: 100})
		return lr, lr.Fit
	})
	if err != nil {
		t.Fatal(err)
	}
	if MeanF1(treeScores) <= MeanF1(lrScores) {
		t.Errorf("tree F1 %.3f should beat logistic %.3f on XOR",
			MeanF1(treeScores), MeanF1(lrScores))
	}
}
