package mlkit

import (
	"math"
)

// GaussianNB is a binary Gaussian Naive Bayes classifier: per-class priors
// with per-feature independent Gaussian likelihoods. It is the road-aware
// detector of AD3 — each RSU trains one on its own road type's data and
// "learns the normal profile" (§IV-C of the paper).
type GaussianNB struct {
	trained bool
	width   int
	// prior[c] is log P(class c).
	prior [2]float64
	// mean[c][f] and vari[c][f] are the per-class Gaussian parameters.
	mean [2][]float64
	vari [2][]float64
}

var _ Classifier = (*GaussianNB)(nil)

// varSmoothing stabilises near-constant features, as in scikit-learn and
// Spark MLlib: a fraction of the largest feature variance is added to all.
const varSmoothing = 1e-9

// NewGaussianNB returns an untrained classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Fit estimates priors and Gaussian parameters from the training set.
func (nb *GaussianNB) Fit(samples []Sample) error {
	width, err := validateSamples(samples)
	if err != nil {
		return err
	}
	nb.width = width

	var count [2]int
	var sum, sumSq [2][]float64
	for c := 0; c < 2; c++ {
		sum[c] = make([]float64, width)
		sumSq[c] = make([]float64, width)
	}
	for _, s := range samples {
		count[s.Label]++
		for f, x := range s.Features {
			sum[s.Label][f] += x
			sumSq[s.Label][f] += x * x
		}
	}

	var maxVar float64
	for c := 0; c < 2; c++ {
		nb.prior[c] = math.Log(float64(count[c]) / float64(len(samples)))
		nb.mean[c] = make([]float64, width)
		nb.vari[c] = make([]float64, width)
		n := float64(count[c])
		for f := 0; f < width; f++ {
			m := sum[c][f] / n
			v := sumSq[c][f]/n - m*m
			if v < 0 {
				v = 0
			}
			nb.mean[c][f] = m
			nb.vari[c][f] = v
			if v > maxVar {
				maxVar = v
			}
		}
	}
	eps := varSmoothing * maxVar
	if eps <= 0 {
		eps = varSmoothing
	}
	for c := 0; c < 2; c++ {
		for f := 0; f < width; f++ {
			nb.vari[c][f] += eps
		}
	}
	nb.trained = true
	return nil
}

// PredictProba returns P(normal | features).
func (nb *GaussianNB) PredictProba(features []float64) (float64, error) {
	if !nb.trained {
		return 0, ErrNotTrained
	}
	if len(features) != nb.width {
		return 0, ErrFeatureWidth
	}
	var logLik [2]float64
	for c := 0; c < 2; c++ {
		ll := nb.prior[c]
		for f, x := range features {
			d := x - nb.mean[c][f]
			v := nb.vari[c][f]
			ll += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
		}
		logLik[c] = ll
	}
	// Normalise in log space: P(normal) = 1 / (1 + exp(ll0 - ll1)).
	diff := logLik[ClassAbnormal] - logLik[ClassNormal]
	if math.IsNaN(diff) {
		// Both likelihoods underflowed to -Inf (inputs astronomically far
		// from both classes): fall back to the class priors.
		diff = nb.prior[ClassAbnormal] - nb.prior[ClassNormal]
	}
	return 1 / (1 + math.Exp(diff)), nil
}

// Predict returns the most likely class label.
func (nb *GaussianNB) Predict(features []float64) (int, error) {
	p, err := nb.PredictProba(features)
	if err != nil {
		return 0, err
	}
	return PredictLabel(p), nil
}

// Trained reports whether Fit has succeeded.
func (nb *GaussianNB) Trained() bool { return nb.trained }

// FeatureWidth returns the trained feature width (0 if untrained).
func (nb *GaussianNB) FeatureWidth() int { return nb.width }

// ClassMean returns the fitted mean of feature f under class c, for
// explainability surfaces (the paper stresses explainable models).
func (nb *GaussianNB) ClassMean(c, f int) float64 {
	if !nb.trained || c < 0 || c > 1 || f < 0 || f >= nb.width {
		return math.NaN()
	}
	return nb.mean[c][f]
}
