package mlkit

import (
	"math"
)

// GaussianNB is a binary Gaussian Naive Bayes classifier: per-class priors
// with per-feature independent Gaussian likelihoods. It is the road-aware
// detector of AD3 — each RSU trains one on its own road type's data and
// "learns the normal profile" (§IV-C of the paper).
type GaussianNB struct {
	trained bool
	width   int
	// prior[c] is log P(class c).
	prior [2]float64
	// mean[c][f] and vari[c][f] are the per-class Gaussian parameters.
	mean [2][]float64
	vari [2][]float64
	// logNorm[c][f] = -0.5·ln(2π·vari[c][f]) and inv2v[c][f] =
	// 1/(2·vari[c][f]) are precomputed at Fit time so the per-record
	// predict path does no math.Log and no division.
	logNorm [2][]float64
	inv2v   [2][]float64
}

var _ Classifier = (*GaussianNB)(nil)

// varSmoothing stabilises near-constant features, as in scikit-learn and
// Spark MLlib: a fraction of the largest feature variance is added to all.
const varSmoothing = 1e-9

// NewGaussianNB returns an untrained classifier.
func NewGaussianNB() *GaussianNB { return &GaussianNB{} }

// Fit estimates priors and Gaussian parameters from the training set.
func (nb *GaussianNB) Fit(samples []Sample) error {
	width, err := validateSamples(samples)
	if err != nil {
		return err
	}
	nb.width = width

	var count [2]int
	var sum, sumSq [2][]float64
	for c := 0; c < 2; c++ {
		sum[c] = make([]float64, width)
		sumSq[c] = make([]float64, width)
	}
	for _, s := range samples {
		count[s.Label]++
		for f, x := range s.Features {
			sum[s.Label][f] += x
			sumSq[s.Label][f] += x * x
		}
	}

	var maxVar float64
	for c := 0; c < 2; c++ {
		nb.prior[c] = math.Log(float64(count[c]) / float64(len(samples)))
		nb.mean[c] = make([]float64, width)
		nb.vari[c] = make([]float64, width)
		n := float64(count[c])
		for f := 0; f < width; f++ {
			m := sum[c][f] / n
			v := sumSq[c][f]/n - m*m
			if v < 0 {
				v = 0
			}
			nb.mean[c][f] = m
			nb.vari[c][f] = v
			if v > maxVar {
				maxVar = v
			}
		}
	}
	eps := varSmoothing * maxVar
	if eps <= 0 {
		eps = varSmoothing
	}
	for c := 0; c < 2; c++ {
		for f := 0; f < width; f++ {
			nb.vari[c][f] += eps
		}
	}
	nb.finalize()
	nb.trained = true
	return nil
}

// finalize derives the per-class Gaussian log-likelihood constants from
// the fitted variances. Fit and model deserialization both call it.
func (nb *GaussianNB) finalize() {
	for c := 0; c < 2; c++ {
		nb.logNorm[c] = make([]float64, nb.width)
		nb.inv2v[c] = make([]float64, nb.width)
		for f := 0; f < nb.width; f++ {
			v := nb.vari[c][f]
			nb.logNorm[c][f] = -0.5 * math.Log(2*math.Pi*v)
			nb.inv2v[c][f] = 1 / (2 * v)
		}
	}
}

// PredictProba returns P(normal | features).
func (nb *GaussianNB) PredictProba(features []float64) (float64, error) {
	if !nb.trained {
		return 0, ErrNotTrained
	}
	if len(features) != nb.width {
		return 0, ErrFeatureWidth
	}
	var logLik [2]float64
	for c := 0; c < 2; c++ {
		ll := nb.prior[c]
		mean, logNorm, inv2v := nb.mean[c], nb.logNorm[c], nb.inv2v[c]
		for f, x := range features {
			d := x - mean[f]
			ll += logNorm[f] - d*d*inv2v[f]
		}
		logLik[c] = ll
	}
	return nb.normalize(logLik), nil
}

// PredictProba3 is the allocation-free fast path for the paper's
// three-feature vector: identical arithmetic to PredictProba, fixed-width
// array input so the caller's vector stays on its stack.
func (nb *GaussianNB) PredictProba3(features [3]float64) (float64, error) {
	if !nb.trained {
		return 0, ErrNotTrained
	}
	if nb.width != 3 {
		return 0, ErrFeatureWidth
	}
	var logLik [2]float64
	for c := 0; c < 2; c++ {
		ll := nb.prior[c]
		mean, logNorm, inv2v := nb.mean[c], nb.logNorm[c], nb.inv2v[c]
		for f := 0; f < 3; f++ {
			d := features[f] - mean[f]
			ll += logNorm[f] - d*d*inv2v[f]
		}
		logLik[c] = ll
	}
	return nb.normalize(logLik), nil
}

// normalize converts per-class log-likelihoods to P(normal) in log space:
// P(normal) = 1 / (1 + exp(ll0 - ll1)).
func (nb *GaussianNB) normalize(logLik [2]float64) float64 {
	diff := logLik[ClassAbnormal] - logLik[ClassNormal]
	if math.IsNaN(diff) {
		// Both likelihoods underflowed to -Inf (inputs astronomically far
		// from both classes): fall back to the class priors.
		diff = nb.prior[ClassAbnormal] - nb.prior[ClassNormal]
	}
	return 1 / (1 + math.Exp(diff))
}

// Predict returns the most likely class label.
func (nb *GaussianNB) Predict(features []float64) (int, error) {
	p, err := nb.PredictProba(features)
	if err != nil {
		return 0, err
	}
	return PredictLabel(p), nil
}

// Trained reports whether Fit has succeeded.
func (nb *GaussianNB) Trained() bool { return nb.trained }

// FeatureWidth returns the trained feature width (0 if untrained).
func (nb *GaussianNB) FeatureWidth() int { return nb.width }

// ClassMean returns the fitted mean of feature f under class c, for
// explainability surfaces (the paper stresses explainable models).
func (nb *GaussianNB) ClassMean(c, f int) float64 {
	if !nb.trained || c < 0 || c > 1 || f < 0 || f >= nb.width {
		return math.NaN()
	}
	return nb.mean[c][f]
}
