package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestKNNSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := gaussianSamples(rng, 300, 5)
	test := gaussianSamples(rng, 100, 5)

	kn := NewKNN(5)
	if err := kn.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(kn, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.97 {
		t.Errorf("accuracy %.3f on separable data", m.Accuracy())
	}
	if !kn.Trained() || kn.TrainingSize() != 600 {
		t.Errorf("state: trained=%v n=%d", kn.Trained(), kn.TrainingSize())
	}
	if kn.String() == "" {
		t.Error("empty String()")
	}
}

func TestKNNXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	kn := NewKNN(7)
	if err := kn.Fit(xorSamples(rng, 600)); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(kn, xorSamples(rng, 200))
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.95 {
		t.Errorf("kNN XOR accuracy %.3f", m.Accuracy())
	}
}

func TestKNNOddK(t *testing.T) {
	if NewKNN(4).K() != 5 {
		t.Error("even k should round up to odd")
	}
	if NewKNN(0).K() != 5 {
		t.Error("default k should be 5")
	}
	if NewKNN(3).K() != 3 {
		t.Error("odd k preserved")
	}
}

func TestKNNErrors(t *testing.T) {
	kn := NewKNN(3)
	if _, err := kn.Predict([]float64{1}); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := kn.Fit(nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	rng := rand.New(rand.NewSource(3))
	if err := kn.Fit(gaussianSamples(rng, 20, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := kn.Predict([]float64{1, 2, 3}); err != ErrFeatureWidth {
		t.Errorf("err = %v, want ErrFeatureWidth", err)
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	samples := []Sample{
		{Features: []float64{0}, Label: ClassNormal},
		{Features: []float64{10}, Label: ClassAbnormal},
		{Features: []float64{0.5}, Label: ClassNormal},
	}
	kn := NewKNN(99)
	if err := kn.Fit(samples); err != nil {
		t.Fatal(err)
	}
	// k clamps to the training size; majority near 0 is normal.
	cls, err := kn.Predict([]float64{0.2})
	if err != nil {
		t.Fatal(err)
	}
	if cls != ClassNormal {
		t.Errorf("class = %d", cls)
	}
}

func TestKNNProbabilityRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	kn := NewKNN(5)
	if err := kn.Fit(gaussianSamples(rng, 100, 3)); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p, err := kn.PredictProba([]float64{a, b})
		return err == nil && p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
