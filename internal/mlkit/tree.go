package mlkit

import (
	"fmt"
	"sort"
	"strings"
)

// DecisionTree is a binary CART classifier with Gini-impurity splits on
// continuous features. CAD3's collaborative stage feeds it the vector
// [Hour, P_X, Class_NB] (§IV-D of the paper).
type DecisionTree struct {
	cfg     TreeConfig
	root    *treeNode
	width   int
	trained bool
}

var _ Classifier = (*DecisionTree)(nil)

// TreeConfig bounds tree growth.
type TreeConfig struct {
	// MaxDepth limits the tree depth. Values <= 0 select 6.
	MaxDepth int
	// MinSamplesLeaf is the minimum samples per leaf. Values <= 0 select 5.
	MinSamplesLeaf int
	// MinImpurityDecrease prunes splits with negligible gain. Values < 0
	// select 1e-7.
	MinImpurityDecrease float64
	// MaxThresholds caps candidate thresholds evaluated per feature at
	// each node (quantile sketch), bounding training cost on large data.
	// Values <= 0 select 32.
	MaxThresholds int
}

func (c TreeConfig) withDefaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 6
	}
	if c.MinSamplesLeaf <= 0 {
		c.MinSamplesLeaf = 5
	}
	if c.MinImpurityDecrease < 0 {
		c.MinImpurityDecrease = 1e-7
	}
	if c.MinImpurityDecrease == 0 {
		c.MinImpurityDecrease = 1e-7
	}
	if c.MaxThresholds <= 0 {
		c.MaxThresholds = 32
	}
	return c
}

type treeNode struct {
	// Leaf payload.
	leaf    bool
	pNormal float64 // fraction of ClassNormal samples at the leaf
	n       int
	// Split payload.
	feature   int
	threshold float64
	left      *treeNode // features[feature] <= threshold
	right     *treeNode
}

// NewDecisionTree returns an untrained tree.
func NewDecisionTree(cfg TreeConfig) *DecisionTree {
	return &DecisionTree{cfg: cfg.withDefaults()}
}

// Fit grows the tree on the training set.
func (t *DecisionTree) Fit(samples []Sample) error {
	width, err := validateSamples(samples)
	if err != nil {
		return err
	}
	t.width = width
	idx := make([]int, len(samples))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.grow(samples, idx, 0)
	t.trained = true
	return nil
}

func (t *DecisionTree) grow(samples []Sample, idx []int, depth int) *treeNode {
	nNormal := 0
	for _, i := range idx {
		if samples[i].Label == ClassNormal {
			nNormal++
		}
	}
	node := &treeNode{
		pNormal: float64(nNormal) / float64(len(idx)),
		n:       len(idx),
	}
	if depth >= t.cfg.MaxDepth || len(idx) < 2*t.cfg.MinSamplesLeaf ||
		nNormal == 0 || nNormal == len(idx) {
		node.leaf = true
		return node
	}

	bestGain := t.cfg.MinImpurityDecrease
	bestFeature, bestThreshold := -1, 0.0
	parentImpurity := gini(nNormal, len(idx))

	for f := 0; f < t.width; f++ {
		thresholds := t.candidateThresholds(samples, idx, f)
		for _, th := range thresholds {
			lN, lNorm, rN, rNorm := 0, 0, 0, 0
			for _, i := range idx {
				if samples[i].Features[f] <= th {
					lN++
					if samples[i].Label == ClassNormal {
						lNorm++
					}
				} else {
					rN++
					if samples[i].Label == ClassNormal {
						rNorm++
					}
				}
			}
			if lN < t.cfg.MinSamplesLeaf || rN < t.cfg.MinSamplesLeaf {
				continue
			}
			wl := float64(lN) / float64(len(idx))
			gain := parentImpurity - wl*gini(lNorm, lN) - (1-wl)*gini(rNorm, rN)
			if gain > bestGain {
				bestGain, bestFeature, bestThreshold = gain, f, th
			}
		}
	}
	if bestFeature < 0 {
		node.leaf = true
		return node
	}

	var leftIdx, rightIdx []int
	for _, i := range idx {
		if samples[i].Features[bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	node.feature = bestFeature
	node.threshold = bestThreshold
	node.left = t.grow(samples, leftIdx, depth+1)
	node.right = t.grow(samples, rightIdx, depth+1)
	return node
}

// candidateThresholds returns up to MaxThresholds midpoints between
// distinct sorted values of feature f over idx.
func (t *DecisionTree) candidateThresholds(samples []Sample, idx []int, f int) []float64 {
	vals := make([]float64, 0, len(idx))
	for _, i := range idx {
		vals = append(vals, samples[i].Features[f])
	}
	sort.Float64s(vals)
	// De-duplicate.
	uniq := vals[:0]
	for i, v := range vals {
		if i == 0 || v != uniq[len(uniq)-1] {
			uniq = append(uniq, v)
		}
	}
	if len(uniq) < 2 {
		return nil
	}
	mids := make([]float64, 0, len(uniq)-1)
	for i := 1; i < len(uniq); i++ {
		mids = append(mids, (uniq[i-1]+uniq[i])/2)
	}
	if len(mids) <= t.cfg.MaxThresholds {
		return mids
	}
	// Quantile subsample.
	out := make([]float64, 0, t.cfg.MaxThresholds)
	step := float64(len(mids)) / float64(t.cfg.MaxThresholds)
	for i := 0; i < t.cfg.MaxThresholds; i++ {
		out = append(out, mids[int(float64(i)*step)])
	}
	return out
}

func gini(nNormal, n int) float64 {
	if n == 0 {
		return 0
	}
	p := float64(nNormal) / float64(n)
	return 2 * p * (1 - p)
}

// PredictProba returns P(normal | features): the normal-class fraction of
// the reached leaf.
func (t *DecisionTree) PredictProba(features []float64) (float64, error) {
	if !t.trained {
		return 0, ErrNotTrained
	}
	if len(features) != t.width {
		return 0, ErrFeatureWidth
	}
	node := t.root
	for !node.leaf {
		if features[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.pNormal, nil
}

// PredictProba3 is the allocation-free fast path for CAD3's fixed
// three-feature fusion vector [Hour, P_X, Class_NB]: the same traversal
// as PredictProba over an array the caller keeps on its stack.
func (t *DecisionTree) PredictProba3(features [3]float64) (float64, error) {
	if !t.trained {
		return 0, ErrNotTrained
	}
	if t.width != 3 {
		return 0, ErrFeatureWidth
	}
	node := t.root
	for !node.leaf {
		if features[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.pNormal, nil
}

// Predict returns the most likely class label.
func (t *DecisionTree) Predict(features []float64) (int, error) {
	p, err := t.PredictProba(features)
	if err != nil {
		return 0, err
	}
	return PredictLabel(p), nil
}

// Trained reports whether Fit has succeeded.
func (t *DecisionTree) Trained() bool { return t.trained }

// Depth returns the depth of the grown tree (0 for a stump/untrained).
func (t *DecisionTree) Depth() int { return depthOf(t.root) }

func depthOf(n *treeNode) int {
	if n == nil || n.leaf {
		return 0
	}
	l, r := depthOf(n.left), depthOf(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

// Dump renders the tree as indented text — the explainability surface the
// paper argues matters for road-safety liability (§VI-D4).
func (t *DecisionTree) Dump(featureNames []string) string {
	var sb strings.Builder
	var walk func(n *treeNode, depth int)
	walk = func(n *treeNode, depth int) {
		indent := strings.Repeat("  ", depth)
		if n.leaf {
			fmt.Fprintf(&sb, "%sleaf: P(normal)=%.3f n=%d\n", indent, n.pNormal, n.n)
			return
		}
		name := fmt.Sprintf("f%d", n.feature)
		if n.feature < len(featureNames) {
			name = featureNames[n.feature]
		}
		fmt.Fprintf(&sb, "%sif %s <= %.4f:\n", indent, name, n.threshold)
		walk(n.left, depth+1)
		fmt.Fprintf(&sb, "%selse:\n", indent)
		walk(n.right, depth+1)
	}
	if t.root != nil {
		walk(t.root, 0)
	}
	return sb.String()
}
