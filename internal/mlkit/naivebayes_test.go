package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// gaussianSamples draws n samples per class from two well-separated 2-D
// Gaussians.
func gaussianSamples(rng *rand.Rand, n int, sep float64) []Sample {
	out := make([]Sample, 0, 2*n)
	for i := 0; i < n; i++ {
		out = append(out, Sample{
			Features: []float64{rng.NormFloat64(), rng.NormFloat64()},
			Label:    ClassNormal,
		})
		out = append(out, Sample{
			Features: []float64{sep + rng.NormFloat64(), sep + rng.NormFloat64()},
			Label:    ClassAbnormal,
		})
	}
	return out
}

func TestGaussianNBSeparable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := gaussianSamples(rng, 500, 6)
	test := gaussianSamples(rng, 200, 6)

	nb := NewGaussianNB()
	if err := nb.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(nb, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.98 {
		t.Errorf("accuracy %.3f on well-separated classes, want >= 0.98", m.Accuracy())
	}
}

func TestGaussianNBProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	nb := NewGaussianNB()
	if err := nb.Fit(gaussianSamples(rng, 200, 3)); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p, err := nb.PredictProba([]float64{a, b})
		return err == nil && p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGaussianNBProbabilityMonotone(t *testing.T) {
	// With normal centered at 0 and abnormal at +6, P(normal) must fall
	// as the feature grows.
	rng := rand.New(rand.NewSource(3))
	nb := NewGaussianNB()
	if err := nb.Fit(gaussianSamples(rng, 500, 6)); err != nil {
		t.Fatal(err)
	}
	prev := math.Inf(1)
	for x := -2.0; x <= 8; x += 0.5 {
		p, err := nb.PredictProba([]float64{x, x})
		if err != nil {
			t.Fatal(err)
		}
		if p > prev+1e-9 {
			t.Fatalf("P(normal) not monotone: p(%v)=%.4f > previous %.4f", x, p, prev)
		}
		prev = p
	}
}

func TestGaussianNBErrors(t *testing.T) {
	nb := NewGaussianNB()
	if _, err := nb.PredictProba([]float64{1}); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := nb.Fit(nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	oneClass := []Sample{{Features: []float64{1}, Label: ClassNormal}}
	if err := nb.Fit(oneClass); err != ErrSingleClass {
		t.Errorf("err = %v, want ErrSingleClass", err)
	}
	bad := []Sample{
		{Features: []float64{1}, Label: ClassNormal},
		{Features: []float64{1, 2}, Label: ClassAbnormal},
	}
	if err := nb.Fit(bad); err == nil {
		t.Error("want feature-width error")
	}
	badLabel := []Sample{
		{Features: []float64{1}, Label: 3},
		{Features: []float64{2}, Label: ClassAbnormal},
	}
	if err := nb.Fit(badLabel); err == nil {
		t.Error("want label error")
	}

	rng := rand.New(rand.NewSource(4))
	if err := nb.Fit(gaussianSamples(rng, 50, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := nb.PredictProba([]float64{1}); err != ErrFeatureWidth {
		t.Errorf("err = %v, want ErrFeatureWidth", err)
	}
}

func TestGaussianNBConstantFeature(t *testing.T) {
	// A zero-variance feature must not blow up thanks to smoothing.
	samples := []Sample{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		samples = append(samples,
			Sample{Features: []float64{1, rng.NormFloat64()}, Label: ClassNormal},
			Sample{Features: []float64{1, 5 + rng.NormFloat64()}, Label: ClassAbnormal},
		)
	}
	nb := NewGaussianNB()
	if err := nb.Fit(samples); err != nil {
		t.Fatal(err)
	}
	p, err := nb.PredictProba([]float64{1, 0})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(p) || p < 0.5 {
		t.Errorf("P(normal|x2=0) = %v, want > 0.5", p)
	}
}

func TestGaussianNBIntrospection(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	nb := NewGaussianNB()
	if !math.IsNaN(nb.ClassMean(0, 0)) {
		t.Error("untrained ClassMean should be NaN")
	}
	if err := nb.Fit(gaussianSamples(rng, 300, 5)); err != nil {
		t.Fatal(err)
	}
	if !nb.Trained() || nb.FeatureWidth() != 2 {
		t.Errorf("Trained=%v width=%d", nb.Trained(), nb.FeatureWidth())
	}
	if m := nb.ClassMean(ClassAbnormal, 0); math.Abs(m-5) > 0.5 {
		t.Errorf("abnormal mean = %.2f, want ~5", m)
	}
	if m := nb.ClassMean(ClassNormal, 0); math.Abs(m) > 0.5 {
		t.Errorf("normal mean = %.2f, want ~0", m)
	}
	if !math.IsNaN(nb.ClassMean(2, 0)) || !math.IsNaN(nb.ClassMean(0, 9)) {
		t.Error("out-of-range ClassMean should be NaN")
	}
}
