package mlkit

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestOnlineNBMatchesBatchNB(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	samples := gaussianSamples(rng, 500, 4)

	batch := NewGaussianNB()
	if err := batch.Fit(samples); err != nil {
		t.Fatal(err)
	}
	online, err := NewOnlineGaussianNB(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range samples {
		if err := online.Observe(s.Features, s.Label); err != nil {
			t.Fatal(err)
		}
	}

	probe := rand.New(rand.NewSource(2))
	for i := 0; i < 200; i++ {
		x := []float64{probe.NormFloat64() * 3, probe.NormFloat64() * 3}
		pb, err := batch.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		po, err := online.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(pb-po) > 0.01 {
			t.Fatalf("batch %.4f vs online %.4f at %v", pb, po, x)
		}
	}
}

func TestOnlineNBWelfordStats(t *testing.T) {
	nb, err := NewOnlineGaussianNB(1)
	if err != nil {
		t.Fatal(err)
	}
	// Known data: class normal gets {2,4,4,4,5,5,7,9}: mean 5, var 4.
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		if err := nb.Observe([]float64{x}, ClassNormal); err != nil {
			t.Fatal(err)
		}
	}
	for _, x := range []float64{20, 22} {
		_ = nb.Observe([]float64{x}, ClassAbnormal)
	}
	if m := nb.Mean(ClassNormal, 0); math.Abs(m-5) > 1e-12 {
		t.Errorf("mean = %v, want 5", m)
	}
	if v := nb.Variance(ClassNormal, 0); math.Abs(v-4) > 1e-12 {
		t.Errorf("variance = %v, want 4", v)
	}
	if nb.Count(ClassNormal) != 8 || nb.Count(ClassAbnormal) != 2 {
		t.Errorf("counts = %d/%d", nb.Count(ClassNormal), nb.Count(ClassAbnormal))
	}
	if nb.Count(5) != 0 {
		t.Error("bogus label count should be 0")
	}
	if !math.IsNaN(nb.Mean(3, 0)) || !math.IsNaN(nb.Variance(0, 9)) {
		t.Error("out-of-range stats should be NaN")
	}
}

func TestOnlineNBReadiness(t *testing.T) {
	nb, err := NewOnlineGaussianNB(1)
	if err != nil {
		t.Fatal(err)
	}
	if nb.Ready() {
		t.Error("empty model should not be ready")
	}
	if _, err := nb.PredictProba([]float64{1}); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	_ = nb.Observe([]float64{1}, ClassNormal)
	_ = nb.Observe([]float64{2}, ClassNormal)
	_ = nb.Observe([]float64{10}, ClassAbnormal)
	if nb.Ready() {
		t.Error("one abnormal sample should not be enough")
	}
	_ = nb.Observe([]float64{11}, ClassAbnormal)
	if !nb.Ready() {
		t.Error("2+2 samples should be ready")
	}
	if _, err := nb.Predict([]float64{1}); err != nil {
		t.Errorf("Predict: %v", err)
	}
	if _, err := nb.Predict([]float64{1, 2}); err != ErrFeatureWidth {
		t.Errorf("err = %v, want ErrFeatureWidth", err)
	}
}

func TestOnlineNBValidation(t *testing.T) {
	if _, err := NewOnlineGaussianNB(0); err == nil {
		t.Error("want error for zero width")
	}
	nb, _ := NewOnlineGaussianNB(2)
	if err := nb.Observe([]float64{1}, ClassNormal); err != ErrFeatureWidth {
		t.Errorf("err = %v, want ErrFeatureWidth", err)
	}
	if err := nb.Observe([]float64{1, 2}, 7); err == nil {
		t.Error("want error for bogus label")
	}
}

func TestOnlineNBAdaptsToDrift(t *testing.T) {
	// The normal profile shifts (rush hour): the online model follows.
	nb, _ := NewOnlineGaussianNB(1)
	for i := 0; i < 200; i++ {
		_ = nb.Observe([]float64{100 + float64(i%5)}, ClassNormal)
		_ = nb.Observe([]float64{160 + float64(i%5)}, ClassAbnormal)
	}
	p1, _ := nb.PredictProba([]float64{130})
	// Now the whole road slows down; 130 becomes abnormal territory
	// relative to the new normal cluster at ~60.
	for i := 0; i < 2000; i++ {
		_ = nb.Observe([]float64{60 + float64(i%5)}, ClassNormal)
		_ = nb.Observe([]float64{130 + float64(i%5)}, ClassAbnormal)
	}
	p2, _ := nb.PredictProba([]float64{130})
	if p2 >= p1 {
		t.Errorf("P(normal|130) should fall after drift: %.4f -> %.4f", p1, p2)
	}
}

func TestOnlineNBProbabilityRangeProperty(t *testing.T) {
	nb, _ := NewOnlineGaussianNB(1)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		_ = nb.Observe([]float64{rng.NormFloat64()}, ClassNormal)
		_ = nb.Observe([]float64{5 + rng.NormFloat64()}, ClassAbnormal)
	}
	f := func(x float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
		p, err := nb.PredictProba([]float64{x})
		return err == nil && p >= 0 && p <= 1 && !math.IsNaN(p)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
