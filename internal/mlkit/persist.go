package mlkit

import (
	"encoding/json"
	"fmt"
)

// Model persistence: trained classifiers serialize to versioned JSON so a
// deployment can train once (or centrally) and ship models to RSUs
// instead of retraining at every node start.

// gaussianNBState is the serialized form of GaussianNB.
type gaussianNBState struct {
	Version int          `json:"version"`
	Width   int          `json:"width"`
	Prior   [2]float64   `json:"prior"`
	Mean    [2][]float64 `json:"mean"`
	Vari    [2][]float64 `json:"vari"`
}

const persistVersion = 1

// MarshalJSON implements json.Marshaler.
func (nb *GaussianNB) MarshalJSON() ([]byte, error) {
	if !nb.trained {
		return nil, ErrNotTrained
	}
	return json.Marshal(gaussianNBState{
		Version: persistVersion,
		Width:   nb.width,
		Prior:   nb.prior,
		Mean:    nb.mean,
		Vari:    nb.vari,
	})
}

// UnmarshalJSON implements json.Unmarshaler.
func (nb *GaussianNB) UnmarshalJSON(data []byte) error {
	var st gaussianNBState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("mlkit: decode NB: %w", err)
	}
	if st.Version != persistVersion {
		return fmt.Errorf("mlkit: NB model version %d, want %d", st.Version, persistVersion)
	}
	if st.Width <= 0 {
		return fmt.Errorf("mlkit: NB model width %d invalid", st.Width)
	}
	for c := 0; c < 2; c++ {
		if len(st.Mean[c]) != st.Width || len(st.Vari[c]) != st.Width {
			return fmt.Errorf("mlkit: NB model class %d parameter width mismatch", c)
		}
		for f, v := range st.Vari[c] {
			if v <= 0 {
				return fmt.Errorf("mlkit: NB model class %d feature %d variance %v invalid", c, f, v)
			}
		}
	}
	nb.width = st.Width
	nb.prior = st.Prior
	nb.mean = st.Mean
	nb.vari = st.Vari
	nb.finalize()
	nb.trained = true
	return nil
}

// treeNodeState is the serialized form of one decision-tree node.
type treeNodeState struct {
	Leaf      bool           `json:"leaf"`
	PNormal   float64        `json:"pNormal,omitempty"`
	N         int            `json:"n,omitempty"`
	Feature   int            `json:"feature,omitempty"`
	Threshold float64        `json:"threshold,omitempty"`
	Left      *treeNodeState `json:"left,omitempty"`
	Right     *treeNodeState `json:"right,omitempty"`
}

type decisionTreeState struct {
	Version int            `json:"version"`
	Width   int            `json:"width"`
	Root    *treeNodeState `json:"root"`
}

// MarshalJSON implements json.Marshaler.
func (t *DecisionTree) MarshalJSON() ([]byte, error) {
	if !t.trained {
		return nil, ErrNotTrained
	}
	return json.Marshal(decisionTreeState{
		Version: persistVersion,
		Width:   t.width,
		Root:    encodeTreeNode(t.root),
	})
}

func encodeTreeNode(n *treeNode) *treeNodeState {
	if n == nil {
		return nil
	}
	return &treeNodeState{
		Leaf:      n.leaf,
		PNormal:   n.pNormal,
		N:         n.n,
		Feature:   n.feature,
		Threshold: n.threshold,
		Left:      encodeTreeNode(n.left),
		Right:     encodeTreeNode(n.right),
	}
}

// UnmarshalJSON implements json.Unmarshaler.
func (t *DecisionTree) UnmarshalJSON(data []byte) error {
	var st decisionTreeState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("mlkit: decode tree: %w", err)
	}
	if st.Version != persistVersion {
		return fmt.Errorf("mlkit: tree model version %d, want %d", st.Version, persistVersion)
	}
	if st.Width <= 0 || st.Root == nil {
		return fmt.Errorf("mlkit: tree model incomplete")
	}
	root, err := decodeTreeNode(st.Root, st.Width, 0)
	if err != nil {
		return err
	}
	t.cfg = t.cfg.withDefaults()
	t.width = st.Width
	t.root = root
	t.trained = true
	return nil
}

// maxPersistDepth bounds recursion while decoding untrusted model files.
const maxPersistDepth = 64

func decodeTreeNode(st *treeNodeState, width, depth int) (*treeNode, error) {
	if depth > maxPersistDepth {
		return nil, fmt.Errorf("mlkit: tree model deeper than %d", maxPersistDepth)
	}
	n := &treeNode{
		leaf:      st.Leaf,
		pNormal:   st.PNormal,
		n:         st.N,
		feature:   st.Feature,
		threshold: st.Threshold,
	}
	if st.Leaf {
		if n.pNormal < 0 || n.pNormal > 1 {
			return nil, fmt.Errorf("mlkit: tree leaf probability %v invalid", n.pNormal)
		}
		return n, nil
	}
	if st.Feature < 0 || st.Feature >= width {
		return nil, fmt.Errorf("mlkit: tree split feature %d out of width %d", st.Feature, width)
	}
	if st.Left == nil || st.Right == nil {
		return nil, fmt.Errorf("mlkit: tree split missing children")
	}
	var err error
	if n.left, err = decodeTreeNode(st.Left, width, depth+1); err != nil {
		return nil, err
	}
	if n.right, err = decodeTreeNode(st.Right, width, depth+1); err != nil {
		return nil, err
	}
	return n, nil
}
