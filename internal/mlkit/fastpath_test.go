package mlkit

import (
	"math"
	"math/rand"
	"testing"
)

func fitTestNB(t testing.TB, rng *rand.Rand) *GaussianNB {
	t.Helper()
	var samples []Sample
	for i := 0; i < 500; i++ {
		samples = append(samples, Sample{
			Features: []float64{30 + rng.NormFloat64()*5, rng.NormFloat64(), float64(8 + rng.Intn(12))},
			Label:    ClassNormal,
		})
	}
	for i := 0; i < 200; i++ {
		samples = append(samples, Sample{
			Features: []float64{60 + rng.NormFloat64()*8, rng.NormFloat64() * 3, float64(8 + rng.Intn(12))},
			Label:    ClassAbnormal,
		})
	}
	nb := NewGaussianNB()
	if err := nb.Fit(samples); err != nil {
		t.Fatal(err)
	}
	return nb
}

// referenceProba recomputes P(normal) with the pre-optimisation formula
// (math.Log and the division evaluated per call) from the fitted
// parameters — the regression oracle for the precomputed-constant path.
func referenceProba(nb *GaussianNB, features []float64) float64 {
	var logLik [2]float64
	for c := 0; c < 2; c++ {
		ll := nb.prior[c]
		for f, x := range features {
			d := x - nb.mean[c][f]
			v := nb.vari[c][f]
			ll += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
		}
		logLik[c] = ll
	}
	diff := logLik[ClassAbnormal] - logLik[ClassNormal]
	if math.IsNaN(diff) {
		diff = nb.prior[ClassAbnormal] - nb.prior[ClassNormal]
	}
	return 1 / (1 + math.Exp(diff))
}

// TestGaussianNBPrecomputedMatchesReference asserts the Fit-time constant
// precomputation leaves the predicted probabilities identical (to within
// one part in 1e12 — the reciprocal-multiply vs divide reassociation) and
// the predicted labels exactly identical to the original per-call-Log
// implementation.
func TestGaussianNBPrecomputedMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nb := fitTestNB(t, rng)
	for i := 0; i < 5000; i++ {
		x := []float64{rng.Float64() * 120, rng.NormFloat64() * 4, float64(rng.Intn(24))}
		want := referenceProba(nb, x)
		got, err := nb.PredictProba(x)
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(got - want); diff > 1e-12 {
			t.Fatalf("x=%v: precomputed %v vs reference %v (diff %g)", x, got, want, diff)
		}
		if PredictLabel(got) != PredictLabel(want) {
			t.Fatalf("x=%v: label flipped: precomputed %v vs reference %v", x, got, want)
		}
	}
}

// TestPredictProba3BitIdentical asserts the fixed-width array fast paths
// return bit-identical probabilities to the slice paths.
func TestPredictProba3BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	nb := fitTestNB(t, rng)
	for i := 0; i < 5000; i++ {
		v := [3]float64{rng.Float64() * 120, rng.NormFloat64() * 4, float64(rng.Intn(24))}
		slice, err := nb.PredictProba(v[:])
		if err != nil {
			t.Fatal(err)
		}
		arr, err := nb.PredictProba3(v)
		if err != nil {
			t.Fatal(err)
		}
		if slice != arr {
			t.Fatalf("v=%v: slice path %v != array path %v", v, slice, arr)
		}
	}
}

func TestTreePredictProba3BitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	var samples []Sample
	for i := 0; i < 600; i++ {
		label := ClassNormal
		if rng.Float64() < 0.3 {
			label = ClassAbnormal
		}
		samples = append(samples, Sample{
			Features: []float64{float64(rng.Intn(24)), rng.Float64(), float64(rng.Intn(2))},
			Label:    label,
		})
	}
	tree := NewDecisionTree(TreeConfig{MaxDepth: 4})
	if err := tree.Fit(samples); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		v := [3]float64{float64(rng.Intn(24)), rng.Float64(), float64(rng.Intn(2))}
		slice, err := tree.PredictProba(v[:])
		if err != nil {
			t.Fatal(err)
		}
		arr, err := tree.PredictProba3(v)
		if err != nil {
			t.Fatal(err)
		}
		if slice != arr {
			t.Fatalf("v=%v: slice path %v != array path %v", v, slice, arr)
		}
	}
}

func TestFastPathErrors(t *testing.T) {
	nb := NewGaussianNB()
	if _, err := nb.PredictProba3([3]float64{}); err != ErrNotTrained {
		t.Errorf("untrained NB: got %v, want ErrNotTrained", err)
	}
	tree := NewDecisionTree(TreeConfig{})
	if _, err := tree.PredictProba3([3]float64{}); err != ErrNotTrained {
		t.Errorf("untrained tree: got %v, want ErrNotTrained", err)
	}
	// Width-2 models must reject the width-3 entry point.
	var samples []Sample
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 100; i++ {
		label := i % 2
		samples = append(samples, Sample{Features: []float64{rng.Float64(), rng.Float64()}, Label: label})
	}
	nb2 := NewGaussianNB()
	if err := nb2.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if _, err := nb2.PredictProba3([3]float64{}); err != ErrFeatureWidth {
		t.Errorf("width-2 NB: got %v, want ErrFeatureWidth", err)
	}
	tree2 := NewDecisionTree(TreeConfig{MinSamplesLeaf: 1})
	if err := tree2.Fit(samples); err != nil {
		t.Fatal(err)
	}
	if _, err := tree2.PredictProba3([3]float64{}); err != ErrFeatureWidth {
		t.Errorf("width-2 tree: got %v, want ErrFeatureWidth", err)
	}
}
