package mlkit

import (
	"fmt"
	"math"
)

// OnlineGaussianNB is an incrementally trainable Gaussian Naive Bayes:
// per-class running means and variances via Welford's algorithm, so an
// RSU can keep learning its road's normal profile as traffic flows
// ("each node learns the normal behavior over time", paper §III-A)
// without retraining from scratch.
type OnlineGaussianNB struct {
	width int
	// Per class: observation count, running mean, and sum of squared
	// deviations (M2) per feature.
	count [2]int64
	mean  [2][]float64
	m2    [2][]float64
}

var _ Classifier = (*OnlineGaussianNB)(nil)

// NewOnlineGaussianNB creates an online classifier for the given feature
// width.
func NewOnlineGaussianNB(width int) (*OnlineGaussianNB, error) {
	if width <= 0 {
		return nil, fmt.Errorf("mlkit: online NB width must be positive, got %d", width)
	}
	nb := &OnlineGaussianNB{width: width}
	for c := 0; c < 2; c++ {
		nb.mean[c] = make([]float64, width)
		nb.m2[c] = make([]float64, width)
	}
	return nb, nil
}

// Observe folds one labelled sample into the running statistics.
func (nb *OnlineGaussianNB) Observe(features []float64, label int) error {
	if len(features) != nb.width {
		return ErrFeatureWidth
	}
	if label != ClassAbnormal && label != ClassNormal {
		return fmt.Errorf("mlkit: label %d, want 0 or 1", label)
	}
	nb.count[label]++
	n := float64(nb.count[label])
	for f, x := range features {
		delta := x - nb.mean[label][f]
		nb.mean[label][f] += delta / n
		nb.m2[label][f] += delta * (x - nb.mean[label][f])
	}
	return nil
}

// Ready reports whether both classes have enough observations to predict
// (at least 2 each, so variances exist).
func (nb *OnlineGaussianNB) Ready() bool {
	return nb.count[0] >= 2 && nb.count[1] >= 2
}

// Count returns the number of observations of the given class.
func (nb *OnlineGaussianNB) Count(label int) int64 {
	if label != ClassAbnormal && label != ClassNormal {
		return 0
	}
	return nb.count[label]
}

// PredictProba returns P(normal | features).
func (nb *OnlineGaussianNB) PredictProba(features []float64) (float64, error) {
	if !nb.Ready() {
		return 0, ErrNotTrained
	}
	if len(features) != nb.width {
		return 0, ErrFeatureWidth
	}
	total := float64(nb.count[0] + nb.count[1])
	var maxVar float64
	for c := 0; c < 2; c++ {
		for f := 0; f < nb.width; f++ {
			if v := nb.m2[c][f] / float64(nb.count[c]); v > maxVar {
				maxVar = v
			}
		}
	}
	eps := varSmoothing * maxVar
	if eps <= 0 {
		eps = varSmoothing
	}

	var logLik [2]float64
	for c := 0; c < 2; c++ {
		ll := math.Log(float64(nb.count[c]) / total)
		for f, x := range features {
			v := nb.m2[c][f]/float64(nb.count[c]) + eps
			d := x - nb.mean[c][f]
			ll += -0.5*math.Log(2*math.Pi*v) - d*d/(2*v)
		}
		logLik[c] = ll
	}
	diff := logLik[ClassAbnormal] - logLik[ClassNormal]
	if math.IsNaN(diff) {
		diff = math.Log(float64(nb.count[ClassAbnormal])) - math.Log(float64(nb.count[ClassNormal]))
	}
	return 1 / (1 + math.Exp(diff)), nil
}

// Predict returns the most likely class label.
func (nb *OnlineGaussianNB) Predict(features []float64) (int, error) {
	p, err := nb.PredictProba(features)
	if err != nil {
		return 0, err
	}
	return PredictLabel(p), nil
}

// Mean returns the running mean of feature f under class c (NaN if out of
// range).
func (nb *OnlineGaussianNB) Mean(c, f int) float64 {
	if c < 0 || c > 1 || f < 0 || f >= nb.width {
		return math.NaN()
	}
	return nb.mean[c][f]
}

// Variance returns the running variance of feature f under class c.
func (nb *OnlineGaussianNB) Variance(c, f int) float64 {
	if c < 0 || c > 1 || f < 0 || f >= nb.width || nb.count[c] < 2 {
		return math.NaN()
	}
	return nb.m2[c][f] / float64(nb.count[c])
}
