// Package mlkit is a from-scratch, stdlib-only reimplementation of the two
// Spark MLlib classifiers CAD3 uses — Gaussian Naive Bayes and a CART
// Decision Tree — together with binary-classification metrics.
//
// Both classifiers are binary and expose calibrated-ish class
// probabilities, because the CAD3 collaboration mechanism (Equation 1 of
// the paper) fuses the Naive Bayes probability with the vehicle's history
// before the Decision Tree re-classifies. The paper deliberately chooses
// these explainable models over neural networks (§VI-D4); so do we.
package mlkit

import (
	"errors"
	"fmt"
)

// Class labels follow the paper's encoding: 1 = normal driving,
// 0 = abnormal driving. "Positive" in the metrics of Table IV means
// abnormal, so ClassAbnormal is the positive class there.
const (
	ClassAbnormal = 0
	ClassNormal   = 1
)

// Errors shared by the classifiers.
var (
	ErrNotTrained   = errors.New("mlkit: model is not trained")
	ErrNoSamples    = errors.New("mlkit: no training samples")
	ErrSingleClass  = errors.New("mlkit: training set contains a single class")
	ErrFeatureWidth = errors.New("mlkit: feature vector width mismatch")
)

// Sample is one labelled training example.
type Sample struct {
	Features []float64
	Label    int // ClassAbnormal or ClassNormal
}

// Classifier is a trained binary classifier.
type Classifier interface {
	// PredictProba returns P(class = ClassNormal | features) in [0, 1].
	PredictProba(features []float64) (float64, error)
	// Predict returns the most likely class label.
	Predict(features []float64) (int, error)
}

// validateSamples checks a training set for emptiness, label sanity and a
// consistent feature width, returning the width.
func validateSamples(samples []Sample) (int, error) {
	if len(samples) == 0 {
		return 0, ErrNoSamples
	}
	width := len(samples[0].Features)
	if width == 0 {
		return 0, fmt.Errorf("mlkit: empty feature vector")
	}
	seen := [2]bool{}
	for i, s := range samples {
		if len(s.Features) != width {
			return 0, fmt.Errorf("%w: sample %d has %d features, want %d",
				ErrFeatureWidth, i, len(s.Features), width)
		}
		if s.Label != ClassAbnormal && s.Label != ClassNormal {
			return 0, fmt.Errorf("mlkit: sample %d has label %d, want 0 or 1", i, s.Label)
		}
		seen[s.Label] = true
	}
	if !seen[0] || !seen[1] {
		return 0, ErrSingleClass
	}
	return width, nil
}

// PredictLabel converts a P(normal) probability into a class label with a
// 0.5 decision threshold.
func PredictLabel(pNormal float64) int {
	if pNormal >= 0.5 {
		return ClassNormal
	}
	return ClassAbnormal
}
