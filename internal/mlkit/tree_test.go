package mlkit

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// xorSamples builds the XOR pattern that a linear model cannot solve but a
// depth-2 tree can.
func xorSamples(rng *rand.Rand, n int) []Sample {
	out := make([]Sample, 0, n)
	for i := 0; i < n; i++ {
		x := float64(rng.Intn(2))
		y := float64(rng.Intn(2))
		label := ClassNormal
		if (x > 0.5) != (y > 0.5) {
			label = ClassAbnormal
		}
		out = append(out, Sample{
			Features: []float64{x + rng.NormFloat64()*0.05, y + rng.NormFloat64()*0.05},
			Label:    label,
		})
	}
	return out
}

func TestDecisionTreeXOR(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	train := xorSamples(rng, 800)
	test := xorSamples(rng, 200)

	dt := NewDecisionTree(TreeConfig{MaxDepth: 4})
	if err := dt.Fit(train); err != nil {
		t.Fatal(err)
	}
	m, err := Evaluate(dt, test)
	if err != nil {
		t.Fatal(err)
	}
	if m.Accuracy() < 0.95 {
		t.Errorf("XOR accuracy %.3f, want >= 0.95", m.Accuracy())
	}
	if dt.Depth() < 2 {
		t.Errorf("XOR needs depth >= 2, got %d", dt.Depth())
	}
}

func TestDecisionTreeRespectsMaxDepth(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	train := gaussianSamples(rng, 500, 1) // heavily overlapping
	for _, depth := range []int{1, 2, 3, 5} {
		dt := NewDecisionTree(TreeConfig{MaxDepth: depth, MinSamplesLeaf: 1})
		if err := dt.Fit(train); err != nil {
			t.Fatal(err)
		}
		if got := dt.Depth(); got > depth {
			t.Errorf("depth %d exceeds MaxDepth %d", got, depth)
		}
	}
}

func TestDecisionTreeProbabilityRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dt := NewDecisionTree(TreeConfig{})
	if err := dt.Fit(gaussianSamples(rng, 300, 2)); err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) || math.IsInf(a, 0) || math.IsInf(b, 0) {
			return true
		}
		p, err := dt.PredictProba([]float64{a, b})
		return err == nil && p >= 0 && p <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecisionTreeDeterministic(t *testing.T) {
	rng1 := rand.New(rand.NewSource(4))
	rng2 := rand.New(rand.NewSource(4))
	a := NewDecisionTree(TreeConfig{})
	b := NewDecisionTree(TreeConfig{})
	if err := a.Fit(gaussianSamples(rng1, 400, 3)); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(gaussianSamples(rng2, 400, 3)); err != nil {
		t.Fatal(err)
	}
	probe := rand.New(rand.NewSource(5))
	for i := 0; i < 100; i++ {
		x := []float64{probe.NormFloat64() * 3, probe.NormFloat64() * 3}
		pa, _ := a.PredictProba(x)
		pb, _ := b.PredictProba(x)
		if pa != pb {
			t.Fatalf("identical training produced different trees at %v: %v vs %v", x, pa, pb)
		}
	}
}

func TestDecisionTreeErrors(t *testing.T) {
	dt := NewDecisionTree(TreeConfig{})
	if _, err := dt.Predict([]float64{1}); err != ErrNotTrained {
		t.Errorf("err = %v, want ErrNotTrained", err)
	}
	if err := dt.Fit(nil); err != ErrNoSamples {
		t.Errorf("err = %v, want ErrNoSamples", err)
	}
	rng := rand.New(rand.NewSource(6))
	if err := dt.Fit(gaussianSamples(rng, 100, 4)); err != nil {
		t.Fatal(err)
	}
	if _, err := dt.Predict([]float64{1, 2, 3}); err != ErrFeatureWidth {
		t.Errorf("err = %v, want ErrFeatureWidth", err)
	}
	if !dt.Trained() {
		t.Error("Trained() should be true after Fit")
	}
}

func TestDecisionTreeMinSamplesLeaf(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	train := gaussianSamples(rng, 50, 5)
	dt := NewDecisionTree(TreeConfig{MinSamplesLeaf: 40})
	if err := dt.Fit(train); err != nil {
		t.Fatal(err)
	}
	// With 100 samples and MinSamplesLeaf 40, depth can be at most 1.
	if dt.Depth() > 1 {
		t.Errorf("depth %d with huge leaf floor", dt.Depth())
	}
}

func TestDecisionTreeDump(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	dt := NewDecisionTree(TreeConfig{MaxDepth: 2})
	if err := dt.Fit(gaussianSamples(rng, 200, 5)); err != nil {
		t.Fatal(err)
	}
	out := dt.Dump([]string{"speed", "accel"})
	if !strings.Contains(out, "leaf:") {
		t.Errorf("dump missing leaves:\n%s", out)
	}
	if !strings.Contains(out, "speed") && !strings.Contains(out, "accel") {
		t.Errorf("dump missing feature names:\n%s", out)
	}
}
