package microbatch

import (
	"math"
	"testing"
	"time"
)

func TestSlidingWindowStats(t *testing.T) {
	now := time.Date(2016, 7, 4, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	w := NewSlidingWindow[string](time.Second, 10, clock)

	if _, ok := w.Stats("road-1"); ok {
		t.Error("empty window should report ok=false")
	}
	for _, v := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Observe("road-1", v)
	}
	st, ok := w.Stats("road-1")
	if !ok {
		t.Fatal("stats missing")
	}
	if st.Count != 8 || math.Abs(st.Mean-5) > 1e-12 || math.Abs(st.Std-2) > 1e-12 {
		t.Errorf("stats = %+v", st)
	}
	if st.Min != 2 || st.Max != 9 {
		t.Errorf("min/max = %v/%v", st.Min, st.Max)
	}
	if w.Span() != 10*time.Second {
		t.Errorf("Span = %v", w.Span())
	}
}

func TestSlidingWindowKeysIsolated(t *testing.T) {
	now := time.Date(2016, 7, 4, 9, 0, 0, 0, time.UTC)
	w := NewSlidingWindow[int](time.Second, 5, func() time.Time { return now })
	w.Observe(1, 10)
	w.Observe(2, 99)
	s1, _ := w.Stats(1)
	s2, _ := w.Stats(2)
	if s1.Mean != 10 || s2.Mean != 99 {
		t.Errorf("keys leak: %+v %+v", s1, s2)
	}
	if keys := w.Keys(); len(keys) != 2 {
		t.Errorf("Keys = %v", keys)
	}
}

func TestSlidingWindowEviction(t *testing.T) {
	now := time.Date(2016, 7, 4, 9, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	w := NewSlidingWindow[string](time.Second, 3, clock)

	w.Observe("k", 100)
	now = now.Add(time.Second)
	w.Observe("k", 50)
	st, _ := w.Stats("k")
	if st.Count != 2 {
		t.Fatalf("count = %d", st.Count)
	}
	// Move past the window: the old samples vanish.
	now = now.Add(5 * time.Second)
	if _, ok := w.Stats("k"); ok {
		t.Error("window should be empty after span passes")
	}
	if keys := w.Keys(); len(keys) != 0 {
		t.Errorf("Keys after eviction = %v", keys)
	}
	// New samples repopulate cleanly despite stale ring entries.
	w.Observe("k", 7)
	st, ok := w.Stats("k")
	if !ok || st.Count != 1 || st.Mean != 7 {
		t.Errorf("post-eviction stats = %+v ok=%v", st, ok)
	}
}

func TestSlidingWindowDefaults(t *testing.T) {
	w := NewSlidingWindow[string](0, 0, nil)
	if w.Span() != time.Minute {
		t.Errorf("default span = %v, want 1m", w.Span())
	}
	w.Observe("x", 1)
	if st, ok := w.Stats("x"); !ok || st.Count != 1 {
		t.Errorf("stats = %+v, %v", st, ok)
	}
}
