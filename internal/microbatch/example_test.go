package microbatch_test

import (
	"fmt"
	"strconv"

	"cad3/internal/microbatch"
	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// ExampleEngine_Step drains one micro-batch synchronously — the drive mode
// the discrete-event simulator uses — with a metrics registry attached so
// the batch shows up in the live microbatch.* counters.
func ExampleEngine_Step() {
	broker := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(broker)
	if err := client.CreateTopic("numbers", 1); err != nil {
		fmt.Println(err)
		return
	}
	for i := 1; i <= 3; i++ {
		if _, _, err := client.Produce("numbers", 0, nil, []byte(strconv.Itoa(i))); err != nil {
			fmt.Println(err)
			return
		}
	}
	consumer, err := stream.NewConsumer(client, "numbers", 0)
	if err != nil {
		fmt.Println(err)
		return
	}

	reg := obsv.NewRegistry()
	sums := make(chan int, 8)
	engine, err := microbatch.NewEngine(microbatch.Config[int]{
		Source: consumer,
		// Decode must not retain the message bytes — they recycle into
		// the payload pool once the batch is decoded.
		Decode: func(m stream.Message) (int, error) { return strconv.Atoi(string(m.Value)) },
		Process: func(items []int) error {
			total := 0
			for _, v := range items {
				total += v
			}
			sums <- total
			return nil
		},
		Workers: 1,
		Metrics: reg,
	})
	if err != nil {
		fmt.Println(err)
		return
	}

	st, err := engine.Step()
	if err != nil {
		fmt.Println(err)
		return
	}
	snap := reg.Snapshot()
	fmt.Printf("batch of %d, sum %d\n", st.Records, <-sums)
	fmt.Printf("counters: batches=%d records=%d\n",
		snap.Counters["microbatch.batches"], snap.Counters["microbatch.records"])
	// Output:
	// batch of 3, sum 6
	// counters: batches=1 records=3
}
