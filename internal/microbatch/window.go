package microbatch

import (
	"math"
	"sync"
	"time"
)

// SlidingWindow is a keyed, time-bucketed aggregation over a stream — the
// micro-batch analogue of Spark Streaming's window operations. The RSU
// pipeline uses it for rolling per-road statistics; it is generic enough
// for any keyed count/mean/variance over the last W of stream time.
type SlidingWindow[K comparable] struct {
	mu      sync.Mutex
	bucketD time.Duration
	buckets int
	now     func() time.Time
	byKey   map[K][]windowBucket
}

type windowBucket struct {
	tick  int64
	n     int64
	sum   float64
	sumSq float64
	min   float64
	max   float64
}

// NewSlidingWindow creates a window of `buckets` intervals of `bucketD`
// each (total span = buckets * bucketD). bucketD <= 0 selects 1 s;
// buckets <= 0 selects 60; now nil selects time.Now.
func NewSlidingWindow[K comparable](bucketD time.Duration, buckets int, now func() time.Time) *SlidingWindow[K] {
	if bucketD <= 0 {
		bucketD = time.Second
	}
	if buckets <= 0 {
		buckets = 60
	}
	if now == nil {
		now = time.Now
	}
	return &SlidingWindow[K]{
		bucketD: bucketD,
		buckets: buckets,
		now:     now,
		byKey:   make(map[K][]windowBucket),
	}
}

// Observe folds one value for a key into the current bucket.
func (w *SlidingWindow[K]) Observe(key K, value float64) {
	w.mu.Lock()
	defer w.mu.Unlock()
	tick := w.now().UnixNano() / int64(w.bucketD)
	ring, ok := w.byKey[key]
	if !ok {
		ring = make([]windowBucket, w.buckets)
		w.byKey[key] = ring
	}
	b := &ring[tick%int64(w.buckets)]
	if b.tick != tick {
		*b = windowBucket{tick: tick, min: math.Inf(1), max: math.Inf(-1)}
	}
	b.n++
	b.sum += value
	b.sumSq += value * value
	if value < b.min {
		b.min = value
	}
	if value > b.max {
		b.max = value
	}
}

// WindowStats summarises a key's window.
type WindowStats struct {
	Count int64
	Mean  float64
	Std   float64
	Min   float64
	Max   float64
}

// Stats returns the windowed aggregate for a key; ok=false when the
// window holds no samples.
func (w *SlidingWindow[K]) Stats(key K) (WindowStats, bool) {
	w.mu.Lock()
	defer w.mu.Unlock()
	ring, found := w.byKey[key]
	if !found {
		return WindowStats{}, false
	}
	tick := w.now().UnixNano() / int64(w.bucketD)
	oldest := tick - int64(w.buckets) + 1
	var st WindowStats
	st.Min, st.Max = math.Inf(1), math.Inf(-1)
	var sum, sumSq float64
	for i := range ring {
		b := ring[i]
		if b.tick < oldest || b.tick > tick || b.n == 0 {
			continue
		}
		st.Count += b.n
		sum += b.sum
		sumSq += b.sumSq
		if b.min < st.Min {
			st.Min = b.min
		}
		if b.max > st.Max {
			st.Max = b.max
		}
	}
	if st.Count == 0 {
		return WindowStats{}, false
	}
	st.Mean = sum / float64(st.Count)
	variance := sumSq/float64(st.Count) - st.Mean*st.Mean
	if variance < 0 {
		variance = 0
	}
	st.Std = math.Sqrt(variance)
	return st, true
}

// Keys returns the keys with at least one sample inside the window.
func (w *SlidingWindow[K]) Keys() []K {
	w.mu.Lock()
	defer w.mu.Unlock()
	tick := w.now().UnixNano() / int64(w.bucketD)
	oldest := tick - int64(w.buckets) + 1
	var out []K
	for k, ring := range w.byKey {
		for i := range ring {
			if b := ring[i]; b.tick >= oldest && b.tick <= tick && b.n > 0 {
				out = append(out, k)
				break
			}
		}
	}
	return out
}

// Span returns the window's total time span.
func (w *SlidingWindow[K]) Span() time.Duration {
	return time.Duration(w.buckets) * w.bucketD
}
