// Package microbatch is a from-scratch micro-batch stream-processing
// engine in the spirit of the Spark Streaming deployment the paper uses:
// a consumer's stream is sliced into fixed-interval batches (50 ms in the
// paper, "to keep the processing latency minimized"), each batch becomes
// an in-memory dataset (see Dataset in rdd.go), and a worker pool (the
// paper configures a 6-worker Spark cluster) processes it.
//
// The engine has two drive modes sharing one code path:
//
//   - Step() drains and processes exactly one batch synchronously — the
//     hook the discrete-event simulator and the tests use;
//   - Run(ctx) ticks Step on the configured interval on the wall clock —
//     the networked deployment uses this.
package microbatch

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"cad3/internal/flow"
	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// DefaultInterval is the paper's micro-batch window.
const DefaultInterval = 50 * time.Millisecond

// DefaultWorkers matches the paper's 6-worker Spark cluster.
const DefaultWorkers = 6

// ErrNoHandler is returned by NewEngine when no Process hook is given.
var ErrNoHandler = errors.New("microbatch: config requires a Process handler")

// Poller abstracts the message source (satisfied by *stream.Consumer).
type Poller interface {
	Poll(max int) ([]stream.Message, error)
}

// intoPoller is the allocation-light drain path (satisfied by
// *stream.Consumer): the engine reuses one message slice across batches
// instead of letting Poll allocate a fresh one each window.
type intoPoller interface {
	PollInto(dst []stream.Message, max int) ([]stream.Message, error)
}

// Config configures an Engine.
type Config[T any] struct {
	// Source supplies messages. Required. Sources that also implement
	// PollInto (like *stream.Consumer) are drained through a reused
	// buffer and their message payloads are recycled after decoding.
	Source Poller
	// Decode converts a raw message into the item type. Required. The
	// decoded item must not retain the message's Key/Value bytes — they
	// are recycled into the payload pool once the batch is decoded.
	Decode func(stream.Message) (T, error)
	// Process handles one worker's share of a batch. Required. It is
	// called concurrently from up to Workers goroutines. The items slice
	// is only valid for the duration of the call (the engine reuses its
	// batch buffer).
	Process func(items []T) error
	// Interval is the batch window. Values <= 0 select DefaultInterval.
	Interval time.Duration
	// Workers is the processing parallelism. Values <= 0 select 6.
	Workers int
	// MaxBatch bounds messages drained per batch. Values <= 0 select 8192.
	MaxBatch int
	// Adaptive, when set, replaces the fixed MaxBatch drain bound with an
	// AIMD controller that sizes each batch toward its latency SLO: after
	// every batch the engine feeds back (drained, processing time) and the
	// next Step drains at most Adaptive.Size() messages. MaxBatch still
	// caps the controller (the engine never drains more than both bounds).
	Adaptive *flow.BatchController
	// Now injects a clock for processing-time measurement. Nil selects
	// time.Now.
	Now func() time.Time
	// OnError observes per-batch decode/process errors (the engine keeps
	// running). Nil discards them.
	OnError func(error)
	// Metrics, when set, receives live engine instrumentation: the
	// microbatch.* counters and the per-batch processing-time and
	// batch-size histograms (see OBSERVABILITY.md).
	Metrics *obsv.Registry
}

// BatchStats summarises one processed batch.
type BatchStats struct {
	Records        int
	DecodeErrors   int
	ProcessingTime time.Duration
	// Saturated reports that the batch drained its full bound — there were
	// at least as many messages waiting as the engine was willing to take,
	// the observable sign of backlog at the node.
	Saturated bool
}

// EngineStats aggregates across batches.
type EngineStats struct {
	Batches             int64
	Records             int64
	DecodeErrors        int64
	ProcessErrors       int64
	TotalProcessingTime time.Duration
	MaxProcessingTime   time.Duration
}

// AvgProcessingTime returns the mean per-batch processing time.
func (s EngineStats) AvgProcessingTime() time.Duration {
	if s.Batches == 0 {
		return 0
	}
	return s.TotalProcessingTime / time.Duration(s.Batches)
}

// Engine slices a message stream into micro-batches.
type Engine[T any] struct {
	cfg Config[T]

	mu    sync.Mutex
	stats EngineStats

	// Per-batch scratch buffers, reused across Step calls (stepMu keeps
	// concurrent Step calls from sharing them).
	stepMu sync.Mutex
	msgBuf []stream.Message
	items  []T

	// Cached registry handles, nil when cfg.Metrics is nil.
	mBatches, mRecords, mDecodeErrs, mProcessErrs *obsv.Counter
	mProcessHist, mBatchSizeHist                  *obsv.Histogram
}

// NewEngine validates the config and builds an engine.
func NewEngine[T any](cfg Config[T]) (*Engine[T], error) {
	if cfg.Source == nil {
		return nil, errors.New("microbatch: config requires a Source")
	}
	if cfg.Decode == nil {
		return nil, errors.New("microbatch: config requires a Decode func")
	}
	if cfg.Process == nil {
		return nil, ErrNoHandler
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	e := &Engine[T]{cfg: cfg}
	if cfg.Metrics != nil {
		e.mBatches = cfg.Metrics.Counter("microbatch.batches")
		e.mRecords = cfg.Metrics.Counter("microbatch.records")
		e.mDecodeErrs = cfg.Metrics.Counter("microbatch.decode_errors")
		e.mProcessErrs = cfg.Metrics.Counter("microbatch.process_errors")
		e.mProcessHist = cfg.Metrics.Histogram("microbatch.process_micros", nil)
		e.mBatchSizeHist = cfg.Metrics.Histogram("microbatch.batch_size",
			[]int64{0, 1, 8, 32, 128, 512, 2048, 8192})
	}
	return e, nil
}

// Step drains one batch from the source, decodes it, fans it out over the
// worker pool, and returns the batch stats. A batch with zero records
// still counts as a (trivial) batch.
func (e *Engine[T]) Step() (BatchStats, error) {
	e.stepMu.Lock()
	defer e.stepMu.Unlock()

	limit := e.cfg.MaxBatch
	if e.cfg.Adaptive != nil {
		if a := e.cfg.Adaptive.Size(); a < limit {
			limit = a
		}
	}
	var msgs []stream.Message
	var pollErr error
	recycler, pooled := e.cfg.Source.(intoPoller)
	if pooled {
		//cad3:allow lockdiscipline stepMu exists to serialize whole Step executions including the poll (msgBuf/items reuse); parallelism lives in the worker pool below it
		msgs, pollErr = recycler.PollInto(e.msgBuf[:0], limit)
		e.msgBuf = msgs
	} else {
		//cad3:allow lockdiscipline stepMu serializes whole Step executions including the poll; see the PollInto branch above
		msgs, pollErr = e.cfg.Source.Poll(limit)
	}
	if pollErr != nil {
		e.observeErr(fmt.Errorf("microbatch poll: %w", pollErr))
	}

	var bs BatchStats
	items := e.items[:0]
	for _, m := range msgs {
		item, err := e.cfg.Decode(m)
		if err != nil {
			bs.DecodeErrors++
			e.observeErr(fmt.Errorf("microbatch decode: %w", err))
			continue
		}
		items = append(items, item)
	}
	e.items = items
	if pooled {
		// Everything the batch needs now lives in items (Decode copies);
		// hand the payload buffers back to the pool.
		stream.RecycleMessages(msgs)
	}
	bs.Records = len(items)
	bs.Saturated = len(msgs) >= limit && limit > 0

	start := e.cfg.Now()
	if len(items) > 0 {
		e.processParallel(items)
	}
	bs.ProcessingTime = e.cfg.Now().Sub(start)

	if e.cfg.Adaptive != nil {
		// Feed back against the drained count (not the decoded count): a
		// batch that hit the drain bound is saturated even if some records
		// failed to decode.
		e.cfg.Adaptive.Observe(len(msgs), bs.ProcessingTime)
	}

	e.mu.Lock()
	e.stats.Batches++
	e.stats.Records += int64(bs.Records)
	e.stats.DecodeErrors += int64(bs.DecodeErrors)
	e.stats.TotalProcessingTime += bs.ProcessingTime
	if bs.ProcessingTime > e.stats.MaxProcessingTime {
		e.stats.MaxProcessingTime = bs.ProcessingTime
	}
	e.mu.Unlock()

	if e.mBatches != nil {
		e.mBatches.Inc()
		e.mRecords.Add(int64(bs.Records))
		e.mDecodeErrs.Add(int64(bs.DecodeErrors))
		e.mProcessHist.ObserveDuration(bs.ProcessingTime)
		e.mBatchSizeHist.Observe(int64(bs.Records))
	}
	return bs, pollErr
}

func (e *Engine[T]) processParallel(items []T) {
	workers := e.cfg.Workers
	if workers > len(items) {
		workers = len(items)
	}
	chunk := (len(items) + workers - 1) / workers
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if lo >= len(items) {
			break
		}
		if hi > len(items) {
			hi = len(items)
		}
		wg.Add(1)
		go func(part []T) {
			defer wg.Done()
			if err := e.cfg.Process(part); err != nil {
				e.mu.Lock()
				e.stats.ProcessErrors++
				e.mu.Unlock()
				if e.mProcessErrs != nil {
					e.mProcessErrs.Inc()
				}
				e.observeErr(fmt.Errorf("microbatch process: %w", err))
			}
		}(items[lo:hi])
	}
	wg.Wait()
}

// Run ticks Step every Interval until the context is cancelled. It returns
// the context's error (context.Canceled on a clean shutdown).
func (e *Engine[T]) Run(ctx context.Context) error {
	ticker := time.NewTicker(e.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-ticker.C:
			_, _ = e.Step() // errors surface through OnError
		}
	}
}

// Stats returns a snapshot of the aggregate statistics.
func (e *Engine[T]) Stats() EngineStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Interval returns the configured batch window.
func (e *Engine[T]) Interval() time.Duration { return e.cfg.Interval }

func (e *Engine[T]) observeErr(err error) {
	if e.cfg.OnError != nil {
		e.cfg.OnError(err)
	}
}
