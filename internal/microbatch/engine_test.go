package microbatch

import (
	"context"
	"errors"
	"fmt"
	"strconv"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cad3/internal/flow"
	"cad3/internal/stream"
)

func pipelineFixture(t *testing.T) (*stream.Broker, *stream.Producer, *stream.Consumer) {
	t.Helper()
	b := stream.NewBroker(stream.BrokerConfig{})
	if err := b.CreateTopic(stream.TopicInData, stream.DefaultPartitions); err != nil {
		t.Fatal(err)
	}
	client := stream.NewInProcClient(b)
	p, err := stream.NewProducer(client, stream.TopicInData)
	if err != nil {
		t.Fatal(err)
	}
	c, err := stream.NewConsumer(client, stream.TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	return b, p, c
}

func intDecode(m stream.Message) (int, error) {
	return strconv.Atoi(string(m.Value))
}

func TestEngineStepProcessesAll(t *testing.T) {
	_, p, c := pipelineFixture(t)
	var mu sync.Mutex
	var got []int
	eng, err := NewEngine(Config[int]{
		Source: c,
		Decode: intDecode,
		Process: func(items []int) error {
			mu.Lock()
			defer mu.Unlock()
			got = append(got, items...)
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 100; i++ {
		if _, _, err := p.Send(nil, []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	bs, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 100 {
		t.Errorf("batch records = %d, want 100", bs.Records)
	}
	sum := 0
	for _, x := range got {
		sum += x
	}
	if sum != 4950 {
		t.Errorf("processed sum = %d, want 4950", sum)
	}
	st := eng.Stats()
	if st.Batches != 1 || st.Records != 100 {
		t.Errorf("stats = %+v", st)
	}
}

func TestEngineDecodeErrorsCounted(t *testing.T) {
	_, p, c := pipelineFixture(t)
	var observed atomic.Int64
	eng, err := NewEngine(Config[int]{
		Source:  c,
		Decode:  intDecode,
		Process: func([]int) error { return nil },
		OnError: func(error) { observed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, _, _ = p.Send(nil, []byte("42"))
	_, _, _ = p.Send(nil, []byte("not-a-number"))
	_, _, _ = p.Send(nil, []byte("7"))

	bs, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 2 || bs.DecodeErrors != 1 {
		t.Errorf("batch = %+v", bs)
	}
	if observed.Load() != 1 {
		t.Errorf("OnError calls = %d, want 1", observed.Load())
	}
}

func TestEngineProcessErrorKeepsRunning(t *testing.T) {
	_, p, c := pipelineFixture(t)
	eng, err := NewEngine(Config[int]{
		Source:  c,
		Decode:  intDecode,
		Process: func([]int) error { return errors.New("boom") },
		Workers: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		_, _, _ = p.Send(nil, []byte("1"))
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	st := eng.Stats()
	if st.ProcessErrors == 0 {
		t.Error("process errors not counted")
	}
	// Engine still works on the next batch.
	_, _, _ = p.Send(nil, []byte("1"))
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
}

func TestEngineParallelWorkersAllItemsOnce(t *testing.T) {
	_, p, c := pipelineFixture(t)
	var count atomic.Int64
	eng, err := NewEngine(Config[int]{
		Source: c,
		Decode: intDecode,
		Process: func(items []int) error {
			count.Add(int64(len(items)))
			return nil
		},
		Workers: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	const n = 1001 // deliberately not divisible by 6
	for i := 0; i < n; i++ {
		_, _, _ = p.Send(nil, []byte("5"))
	}
	if _, err := eng.Step(); err != nil {
		t.Fatal(err)
	}
	if count.Load() != n {
		t.Errorf("processed %d items, want %d", count.Load(), n)
	}
}

func TestEngineEmptyBatch(t *testing.T) {
	_, _, c := pipelineFixture(t)
	called := false
	eng, err := NewEngine(Config[int]{
		Source:  c,
		Decode:  intDecode,
		Process: func([]int) error { called = true; return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 0 || called {
		t.Errorf("empty batch: records=%d called=%v", bs.Records, called)
	}
	if eng.Stats().Batches != 1 {
		t.Error("empty batch should still count")
	}
}

func TestEngineRunWallClock(t *testing.T) {
	_, p, c := pipelineFixture(t)
	var count atomic.Int64
	eng, err := NewEngine(Config[int]{
		Source:   c,
		Decode:   intDecode,
		Interval: 5 * time.Millisecond,
		Process: func(items []int) error {
			count.Add(int64(len(items)))
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- eng.Run(ctx) }()

	for i := 0; i < 50; i++ {
		_, _, _ = p.Send(nil, []byte("1"))
		time.Sleep(time.Millisecond)
	}
	deadline := time.Now().Add(2 * time.Second)
	for count.Load() < 50 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Errorf("Run returned %v, want context.Canceled", err)
	}
	if count.Load() != 50 {
		t.Errorf("wall-clock engine processed %d, want 50", count.Load())
	}
	if eng.Stats().AvgProcessingTime() < 0 {
		t.Error("negative processing time")
	}
}

func TestNewEngineValidation(t *testing.T) {
	_, _, c := pipelineFixture(t)
	if _, err := NewEngine(Config[int]{Decode: intDecode, Process: func([]int) error { return nil }}); err == nil {
		t.Error("want error for nil source")
	}
	if _, err := NewEngine(Config[int]{Source: c, Process: func([]int) error { return nil }}); err == nil {
		t.Error("want error for nil decode")
	}
	if _, err := NewEngine(Config[int]{Source: c, Decode: intDecode}); !errors.Is(err, ErrNoHandler) {
		t.Errorf("err = %v, want ErrNoHandler", err)
	}
	eng, err := NewEngine(Config[int]{Source: c, Decode: intDecode, Process: func([]int) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if eng.Interval() != DefaultInterval {
		t.Errorf("Interval = %v, want %v", eng.Interval(), DefaultInterval)
	}
}

func TestEnginePollErrorSurfaces(t *testing.T) {
	b, p, c := pipelineFixture(t)
	_, _ = p.SendToPartition(0, nil, []byte("1"))
	b.SetPartitionDown(stream.TopicInData, 1, true)
	var sawPollErr atomic.Bool
	eng, err := NewEngine(Config[int]{
		Source:  c,
		Decode:  intDecode,
		Process: func([]int) error { return nil },
		OnError: func(err error) {
			if errors.Is(err, stream.ErrPartitionDown) {
				sawPollErr.Store(true)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	bs, stepErr := eng.Step()
	if stepErr == nil {
		t.Error("Step should report the poll error")
	}
	if bs.Records != 1 {
		t.Errorf("healthy partitions yielded %d records, want 1", bs.Records)
	}
	if !sawPollErr.Load() {
		t.Error("OnError did not observe the poll failure")
	}
}

func TestEngineStatsAggregation(t *testing.T) {
	_, p, c := pipelineFixture(t)
	eng, err := NewEngine(Config[int]{
		Source:  c,
		Decode:  intDecode,
		Process: func([]int) error { return nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	for batch := 0; batch < 5; batch++ {
		for i := 0; i < 10; i++ {
			_, _, _ = p.Send(nil, []byte(fmt.Sprint(i)))
		}
		if _, err := eng.Step(); err != nil {
			t.Fatal(err)
		}
	}
	st := eng.Stats()
	if st.Batches != 5 || st.Records != 50 {
		t.Errorf("stats = %+v", st)
	}
	if st.MaxProcessingTime < st.AvgProcessingTime() {
		t.Error("max processing time below average")
	}
}

// An adaptive engine shrinks its drain bound when batches overrun the SLO
// and grows it back once saturated batches finish comfortably inside it.
func TestEngineAdaptiveBatchSizing(t *testing.T) {
	_, p, c := pipelineFixture(t)

	// Scripted clock: every call advances by lat, so each Step measures
	// exactly one lat of processing time.
	var now time.Time
	var lat time.Duration
	clock := func() time.Time {
		t := now
		now = now.Add(lat)
		return t
	}

	ctrl := flow.NewBatchController(flow.BatchControllerConfig{
		Min: 4, Max: 64, Initial: 16, Grow: 8, SLO: 50 * time.Millisecond,
	})
	eng, err := NewEngine(Config[int]{
		Source:   c,
		Decode:   intDecode,
		Process:  func([]int) error { return nil },
		Adaptive: ctrl,
		Now:      clock,
	})
	if err != nil {
		t.Fatal(err)
	}

	fill := func(n int) {
		t.Helper()
		for i := 0; i < n; i++ {
			if _, _, err := p.Send(nil, []byte(strconv.Itoa(i))); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Saturated batch that overruns the SLO: the bound halves.
	fill(200)
	lat = 100 * time.Millisecond
	bs, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 16 {
		t.Fatalf("first batch drained %d, want the initial bound 16", bs.Records)
	}
	if got := ctrl.Size(); got != 8 {
		t.Fatalf("bound after overrun = %d, want 8", got)
	}

	// Saturated batches well inside the SLO: the bound grows additively.
	lat = 5 * time.Millisecond
	if bs, err = eng.Step(); err != nil {
		t.Fatal(err)
	}
	if bs.Records != 8 {
		t.Fatalf("second batch drained %d, want the shrunk bound 8", bs.Records)
	}
	if got := ctrl.Size(); got != 16 {
		t.Fatalf("bound after fast saturated batch = %d, want 16", got)
	}

	// Idle batches leave the bound alone: an empty pipeline is not
	// evidence of capacity.
	for {
		bs, err = eng.Step()
		if err != nil {
			t.Fatal(err)
		}
		if bs.Records == 0 {
			break
		}
	}
	before := ctrl.Size()
	if _, err = eng.Step(); err != nil {
		t.Fatal(err)
	}
	if got := ctrl.Size(); got != before {
		t.Errorf("idle batch moved the bound %d -> %d", before, got)
	}
}

// MaxBatch still caps the adaptive bound: the engine drains at most the
// lower of the two.
func TestEngineAdaptiveRespectsMaxBatch(t *testing.T) {
	_, p, c := pipelineFixture(t)
	ctrl := flow.NewBatchController(flow.BatchControllerConfig{Min: 32, Max: 64, Initial: 64})
	eng, err := NewEngine(Config[int]{
		Source:   c,
		Decode:   intDecode,
		Process:  func([]int) error { return nil },
		Adaptive: ctrl,
		MaxBatch: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := p.Send(nil, []byte(strconv.Itoa(i))); err != nil {
			t.Fatal(err)
		}
	}
	bs, err := eng.Step()
	if err != nil {
		t.Fatal(err)
	}
	if bs.Records != 10 {
		t.Errorf("drained %d, want MaxBatch cap 10", bs.Records)
	}
}
