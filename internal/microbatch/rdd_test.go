package microbatch

import (
	"testing"
	"testing/quick"
)

func TestDatasetImmutability(t *testing.T) {
	src := []int{1, 2, 3}
	d := NewDataset(src)
	src[0] = 99
	if d.Items()[0] != 1 {
		t.Error("NewDataset must copy its input")
	}
	items := d.Items()
	items[1] = 99
	if d.Items()[1] != 2 {
		t.Error("Items must return a copy")
	}
}

func TestDatasetFilterMapReduce(t *testing.T) {
	d := NewDataset([]int{1, 2, 3, 4, 5, 6})
	even := d.Filter(func(x int) bool { return x%2 == 0 })
	if even.Len() != 3 {
		t.Errorf("Filter kept %d, want 3", even.Len())
	}
	doubled := Map(even, func(x int) int { return x * 2 })
	sum := Reduce(doubled, 0, func(a, x int) int { return a + x })
	if sum != 24 {
		t.Errorf("sum = %d, want 24", sum)
	}
	// Original untouched.
	if d.Len() != 6 {
		t.Error("Filter mutated the source dataset")
	}
}

func TestMapChangesType(t *testing.T) {
	d := NewDataset([]int{1, 22, 333})
	lens := Map(d, func(x int) string {
		s := ""
		for ; x > 0; x /= 10 {
			s += "x"
		}
		return s
	})
	if got := lens.Items(); got[2] != "xxx" {
		t.Errorf("Map to string = %v", got)
	}
}

func TestGroupBy(t *testing.T) {
	d := NewDataset([]int{1, 2, 3, 4, 5})
	groups := GroupBy(d, func(x int) bool { return x%2 == 0 })
	if len(groups[true]) != 2 || len(groups[false]) != 3 {
		t.Errorf("groups = %v", groups)
	}
}

func TestSortBy(t *testing.T) {
	d := NewDataset([]int{3, 1, 2})
	s := d.SortBy(func(a, b int) bool { return a < b })
	got := s.Items()
	if got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("sorted = %v", got)
	}
	if d.Items()[0] != 3 {
		t.Error("SortBy mutated source")
	}
}

func TestForEachOrder(t *testing.T) {
	d := NewDataset([]int{5, 6, 7})
	var got []int
	d.ForEach(func(x int) { got = append(got, x) })
	if len(got) != 3 || got[0] != 5 || got[2] != 7 {
		t.Errorf("ForEach order = %v", got)
	}
}

func TestFilterMapCompositionProperty(t *testing.T) {
	// Filter-then-map equals map-then-filter when the predicate commutes
	// with the mapping (here: doubling preserves parity of x vs 2x>0).
	f := func(raw []int16) bool {
		xs := make([]int, len(raw)) // int16 inputs avoid doubling overflow
		for i, x := range raw {
			xs[i] = int(x)
		}
		d := NewDataset(xs)
		a := Map(d.Filter(func(x int) bool { return x > 0 }), func(x int) int { return x * 2 })
		b := Map(d, func(x int) int { return x * 2 }).Filter(func(x int) bool { return x > 0 })
		ai, bi := a.Items(), b.Items()
		if len(ai) != len(bi) {
			return false
		}
		for i := range ai {
			if ai[i] != bi[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestReduceCountProperty(t *testing.T) {
	f := func(xs []int8) bool {
		d := NewDataset(xs)
		count := Reduce(d, 0, func(a int, _ int8) int { return a + 1 })
		return count == d.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
