package microbatch

import "sort"

// Dataset is the in-memory analogue of a Spark RDD scoped to one
// micro-batch: an immutable slice with functional transforms. Transforms
// return new Datasets; the input is never mutated.
type Dataset[T any] struct {
	items []T
}

// NewDataset copies items into a dataset.
func NewDataset[T any](items []T) Dataset[T] {
	cp := make([]T, len(items))
	copy(cp, items)
	return Dataset[T]{items: cp}
}

// Items returns a copy of the dataset contents.
func (d Dataset[T]) Items() []T {
	out := make([]T, len(d.items))
	copy(out, d.items)
	return out
}

// Len returns the element count.
func (d Dataset[T]) Len() int { return len(d.items) }

// Filter keeps elements for which keep returns true.
func (d Dataset[T]) Filter(keep func(T) bool) Dataset[T] {
	out := make([]T, 0, len(d.items))
	for _, x := range d.items {
		if keep(x) {
			out = append(out, x)
		}
	}
	return Dataset[T]{items: out}
}

// ForEach applies fn to every element in order.
func (d Dataset[T]) ForEach(fn func(T)) {
	for _, x := range d.items {
		fn(x)
	}
}

// Map transforms a dataset element-wise. (A method cannot introduce a new
// type parameter in Go, hence the free function.)
func Map[T, U any](d Dataset[T], fn func(T) U) Dataset[U] {
	out := make([]U, 0, len(d.items))
	for _, x := range d.items {
		out = append(out, fn(x))
	}
	return Dataset[U]{items: out}
}

// Reduce folds the dataset left-to-right from the initial accumulator.
func Reduce[T, A any](d Dataset[T], init A, fn func(A, T) A) A {
	acc := init
	for _, x := range d.items {
		acc = fn(acc, x)
	}
	return acc
}

// GroupBy partitions the dataset by a comparable key.
func GroupBy[T any, K comparable](d Dataset[T], key func(T) K) map[K][]T {
	out := make(map[K][]T)
	for _, x := range d.items {
		k := key(x)
		out[k] = append(out[k], x)
	}
	return out
}

// SortBy returns a new dataset ordered by less (stable).
func (d Dataset[T]) SortBy(less func(a, b T) bool) Dataset[T] {
	out := make([]T, len(d.items))
	copy(out, d.items)
	sort.SliceStable(out, func(i, j int) bool { return less(out[i], out[j]) })
	return Dataset[T]{items: out}
}
