package obsv

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"
)

// Debug HTTP endpoint. Every long-running binary mounts one behind its
// -debug-addr flag:
//
//	/metrics       registry snapshot (counters, gauges, histograms) as JSON
//	/trace/recent  most recent pipeline traces, newest first (?n=K limits)
//	/health        operator-supplied health document (supervisor heartbeat
//	               state, degraded-mode counters)
//	/debug/pprof/  the standard net/http/pprof profiles
//
// The handlers read atomic snapshots; serving them never blocks the
// pipeline. See OBSERVABILITY.md for curl walkthroughs.

// DebugOptions configures a debug endpoint. Nil fields disable the
// corresponding route (it answers 404).
type DebugOptions struct {
	// Registry backs /metrics.
	Registry *Registry
	// Ring backs /trace/recent.
	Ring *TraceRing
	// Health builds the /health response body; it must return a
	// JSON-marshalable value. The handler wraps it with a status line and
	// timestamp.
	Health func() any
	// Now injects the clock for the /health timestamp. Nil selects
	// time.Now.
	Now func() time.Time
}

// NewDebugMux builds the debug route table.
func NewDebugMux(opts DebugOptions) *http.ServeMux {
	now := opts.Now
	if now == nil {
		now = time.Now
	}
	mux := http.NewServeMux()
	if opts.Registry != nil {
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, opts.Registry.Snapshot())
		})
	}
	if opts.Ring != nil {
		mux.HandleFunc("/trace/recent", func(w http.ResponseWriter, r *http.Request) {
			max := 64
			if s := r.URL.Query().Get("n"); s != "" {
				n, err := strconv.Atoi(s)
				if err != nil || n <= 0 {
					http.Error(w, "bad n parameter", http.StatusBadRequest)
					return
				}
				max = n
			}
			writeJSON(w, map[string]any{"traces": opts.Ring.Recent(max)})
		})
	}
	if opts.Health != nil {
		mux.HandleFunc("/health", func(w http.ResponseWriter, r *http.Request) {
			writeJSON(w, map[string]any{
				"status":  "ok",
				"atMicro": now().UnixMicro(),
				"detail":  opts.Health(),
			})
		})
	}
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

// DebugServer is a running debug endpoint.
type DebugServer struct {
	srv  *http.Server
	addr net.Addr
}

// ServeDebug starts the debug endpoint on addr (e.g. "127.0.0.1:6060";
// port 0 picks a free port) and serves in a background goroutine. Close
// shuts it down.
func ServeDebug(addr string, opts DebugOptions) (*DebugServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obsv: debug listen %s: %w", addr, err)
	}
	srv := &http.Server{Handler: NewDebugMux(opts)}
	go func() { _ = srv.Serve(ln) }()
	return &DebugServer{srv: srv, addr: ln.Addr()}, nil
}

// Addr returns the bound address (useful with port 0).
func (d *DebugServer) Addr() net.Addr { return d.addr }

// Close stops the server immediately.
func (d *DebugServer) Close() error { return d.srv.Close() }
