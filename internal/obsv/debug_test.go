package obsv

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func debugFixture() DebugOptions {
	reg := NewRegistry()
	reg.Counter("rsu.warnings").Add(3)
	reg.Gauge("rsu.tracked_cars").Set(12)
	reg.Histogram("pipeline.process_micros", nil).ObserveDuration(11 * time.Millisecond)
	ring := NewTraceRing(8)
	ring.Push(TraceEntry{Car: 42, TxMicros: 3500, QueueMicros: 26500, ProcMicros: 11700})
	return DebugOptions{
		Registry: reg,
		Ring:     ring,
		Health: func() any {
			return map[string]any{"healthy": true, "degradedNodes": 0}
		},
		Now: func() time.Time { return time.UnixMicro(1000) },
	}
}

func getJSON(t *testing.T, srv *httptest.Server, path string, out any) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("%s: status %d", path, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("%s: content type %q", path, ct)
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		t.Fatalf("%s: decode: %v", path, err)
	}
}

func TestDebugEndpoints(t *testing.T) {
	srv := httptest.NewServer(NewDebugMux(debugFixture()))
	defer srv.Close()

	var snap Snapshot
	getJSON(t, srv, "/metrics", &snap)
	if snap.Counters["rsu.warnings"] != 3 || snap.Gauges["rsu.tracked_cars"] != 12 {
		t.Fatalf("metrics snapshot %+v", snap)
	}
	h, ok := snap.Histograms["pipeline.process_micros"]
	if !ok || h.Count != 1 {
		t.Fatalf("histogram missing from /metrics: %+v", snap.Histograms)
	}

	var traces struct {
		Traces []TraceEntry `json:"traces"`
	}
	getJSON(t, srv, "/trace/recent", &traces)
	if len(traces.Traces) != 1 || traces.Traces[0].Car != 42 {
		t.Fatalf("traces %+v", traces)
	}
	getJSON(t, srv, "/trace/recent?n=1", &traces)
	if len(traces.Traces) != 1 {
		t.Fatalf("traces with n=1: %+v", traces)
	}

	var health struct {
		Status  string         `json:"status"`
		AtMicro int64          `json:"atMicro"`
		Detail  map[string]any `json:"detail"`
	}
	getJSON(t, srv, "/health", &health)
	if health.Status != "ok" || health.AtMicro != 1000 || health.Detail["healthy"] != true {
		t.Fatalf("health %+v", health)
	}

	// pprof index must be mounted.
	resp, err := srv.Client().Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index status %d", resp.StatusCode)
	}
}

func TestDebugBadTraceParam(t *testing.T) {
	srv := httptest.NewServer(NewDebugMux(debugFixture()))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/trace/recent?n=bogus")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
}

func TestServeDebug(t *testing.T) {
	srv, err := ServeDebug("127.0.0.1:0", debugFixture())
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
}
