package obsv

import (
	"sync"
	"time"

	"cad3/internal/metrics"
)

// TraceEntry is one completed (or partially completed) pipeline trace as
// exposed by /trace/recent: the warning's identity plus the Figure 6
// latency components in microseconds.
type TraceEntry struct {
	Car     int64  `json:"car"`
	Road    int64  `json:"road"`
	BatchID uint64 `json:"batchId"`
	// AtMicro is when the entry was pushed (unix microseconds).
	AtMicro int64 `json:"atMicro"`
	// Stage latency components, microseconds. Stages not yet crossed are
	// zero (an RSU-side entry has no dissemination; the vehicle-side
	// entry completes it).
	TxMicros    int64 `json:"txMicros"`
	QueueMicros int64 `json:"queueMicros"`
	ProcMicros  int64 `json:"procMicros"`
	DissMicros  int64 `json:"dissMicros"`
	TotalMicros int64 `json:"totalMicros"`
}

// entryFromContext converts whatever stages tc has crossed into an entry.
func entryFromContext(car, road int64, tc TraceContext, at time.Time) TraceEntry {
	e := TraceEntry{Car: car, Road: road, BatchID: tc.BatchID, AtMicro: at.UnixMicro()}
	if tc.SentMicro != 0 && tc.ArriveMicro >= tc.SentMicro {
		e.TxMicros = tc.ArriveMicro - tc.SentMicro
	}
	if tc.ArriveMicro != 0 && tc.DequeueMicro >= tc.ArriveMicro {
		e.QueueMicros = tc.DequeueMicro - tc.ArriveMicro
	}
	if tc.DequeueMicro != 0 && tc.DetectMicro >= tc.DequeueMicro {
		e.ProcMicros = tc.DetectMicro - tc.DequeueMicro
	}
	if tc.DetectMicro != 0 && tc.DeliverMicro >= tc.DetectMicro {
		e.DissMicros = tc.DeliverMicro - tc.DetectMicro
	}
	e.TotalMicros = e.TxMicros + e.QueueMicros + e.ProcMicros + e.DissMicros
	return e
}

// Breakdown converts the entry back to the metrics decomposition.
func (e TraceEntry) Breakdown() metrics.LatencyBreakdown {
	return metrics.LatencyBreakdown{
		Tx:            time.Duration(e.TxMicros) * time.Microsecond,
		Queue:         time.Duration(e.QueueMicros) * time.Microsecond,
		Processing:    time.Duration(e.ProcMicros) * time.Microsecond,
		Dissemination: time.Duration(e.DissMicros) * time.Microsecond,
	}
}

// TraceRing keeps the most recent N trace entries for /trace/recent. A
// push overwrites the oldest entry; there is no unbounded growth. Safe for
// concurrent use.
type TraceRing struct {
	mu   sync.Mutex
	buf  []TraceEntry
	next int
	n    int
}

// DefaultTraceRingSize bounds /trace/recent memory (256 entries ≈ 20 KiB).
const DefaultTraceRingSize = 256

// NewTraceRing creates a ring holding up to size entries (<= 0 selects
// DefaultTraceRingSize).
func NewTraceRing(size int) *TraceRing {
	if size <= 0 {
		size = DefaultTraceRingSize
	}
	return &TraceRing{buf: make([]TraceEntry, size)}
}

// Push records an entry, evicting the oldest when full.
func (r *TraceRing) Push(e TraceEntry) {
	r.mu.Lock()
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
	if r.n < len(r.buf) {
		r.n++
	}
	r.mu.Unlock()
}

// PushContext converts the context's crossed stages and records them.
func (r *TraceRing) PushContext(car, road int64, tc TraceContext, at time.Time) {
	r.Push(entryFromContext(car, road, tc, at))
}

// Recent returns up to max entries, newest first.
func (r *TraceRing) Recent(max int) []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	if max <= 0 || max > r.n {
		max = r.n
	}
	out := make([]TraceEntry, 0, max)
	for i := 1; i <= max; i++ {
		out = append(out, r.buf[(r.next-i+len(r.buf))%len(r.buf)])
	}
	return out
}

// Len returns the number of stored entries.
func (r *TraceRing) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.n
}
