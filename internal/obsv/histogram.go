package obsv

import (
	"sync/atomic"
	"time"
)

// DefaultLatencyBuckets are the histogram bounds used for pipeline latency
// stages, in microseconds. They are tuned to the paper's measured range:
// sub-millisecond transmission at low load, the 50 ms micro-batch window,
// the ~7-12 ms Spark processing cost, and multi-second tails under MAC
// saturation (Figure 6a/6b tops out near 3 s at 256 vehicles on MCS 3).
var DefaultLatencyBuckets = []int64{
	100, 250, 500, // sub-ms: in-process hops
	1_000, 2_500, 5_000, 10_000, 25_000, 50_000, // 1-50 ms: batch window, processing
	100_000, 250_000, 500_000, // 0.1-0.5 s: queueing under load
	1_000_000, 2_500_000, 5_000_000, // 1-5 s: saturation tails
}

// Histogram is a fixed-bucket histogram over int64 observations
// (conventionally microseconds for latency metrics). Every observation is
// two atomic adds plus a branch-free-ish bucket search over a small sorted
// bounds slice — no locks, no allocation. Safe for concurrent use.
type Histogram struct {
	// bounds are inclusive upper bucket bounds, strictly increasing.
	// buckets has len(bounds)+1 slots; the last is the overflow bucket.
	bounds  []int64
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64
}

// NewHistogram creates a histogram with the given inclusive upper bounds
// (nil selects DefaultLatencyBuckets). Bounds must be sorted ascending;
// the constructor copies them.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBuckets
	}
	b := make([]int64, len(bounds))
	copy(b, bounds)
	return &Histogram{
		bounds:  b,
		buckets: make([]atomic.Int64, len(b)+1),
	}
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	// Linear scan: the bucket count is small (≤ ~16) and the values are
	// heavily skewed toward the low buckets, so this beats binary search
	// in practice and keeps the code branch-predictable.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
}

// ObserveDuration records a duration in microseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Microseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// HistogramSnapshot is a copy of a histogram's state. Counts[i] is the
// number of observations v with Bounds[i-1] < v <= Bounds[i]; the final
// slot is the overflow bucket.
type HistogramSnapshot struct {
	Bounds []int64 `json:"bounds"`
	Counts []int64 `json:"counts"`
	Count  int64   `json:"count"`
	Sum    int64   `json:"sum"`
}

// Mean returns the mean observation, zero when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// within the containing bucket — the live approximation of the offline
// metrics.Summarize percentiles. The overflow bucket reports its lower
// bound.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || len(s.Counts) == 0 {
		return 0
	}
	rank := q * float64(s.Count)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) { // overflow bucket
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := int64(0)
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		frac := (rank - prev) / float64(c)
		return lo + int64(frac*float64(s.Bounds[i]-lo))
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot copies the histogram state. Each bucket is read atomically; a
// concurrent Observe may land between reads, so Count can differ from the
// bucket sum by in-flight observations (never by more).
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: h.bounds, // immutable after construction
		Counts: make([]int64, len(h.buckets)),
		Count:  h.count.Load(),
		Sum:    h.sum.Load(),
	}
	for i := range h.buckets {
		s.Counts[i] = h.buckets[i].Load()
	}
	return s
}

func (h *Histogram) reset() {
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
	h.count.Store(0)
	h.sum.Store(0)
}

// restore overwrites the histogram with a snapshot taken from a histogram
// with identical bounds; mismatched bounds are ignored (a checkpoint from
// an older layout must not corrupt the live histogram).
func (h *Histogram) restore(s HistogramSnapshot) {
	if len(s.Bounds) != len(h.bounds) || len(s.Counts) != len(h.buckets) {
		return
	}
	for i, b := range s.Bounds {
		if b != h.bounds[i] {
			return
		}
	}
	for i := range h.buckets {
		h.buckets[i].Store(s.Counts[i])
	}
	h.count.Store(s.Count)
	h.sum.Store(s.Sum)
}
