// Package obsv is the live observability substrate for the CAD3 stack: a
// lock-cheap metrics registry (atomic counters, gauges, and fixed-bucket
// histograms), span-style pipeline tracing carried inside the binary wire
// format's reserved padding, and a debug HTTP endpoint exposing both plus
// pprof on every long-running binary.
//
// The paper's entire evaluation (Figure 6a-6d) is an observability
// exercise — decomposing warning latency into transmission, queuing,
// processing, and dissemination, and accounting bandwidth per vehicle and
// per RSU. internal/metrics summarises samples offline; this package
// instruments the running pipeline so the same decomposition is available
// live, per warning, from a curl against a deployed RSU.
//
// Three pieces:
//
//   - Registry (this file, histogram.go): named atomic counters, gauges
//     and histograms with consistent-enough snapshots, JSON rendering, and
//     checkpoint restore. It replaces metrics.CounterSet as the sink for
//     supervision and degraded-mode accounting.
//   - TraceContext (trace.go): a batch ID plus per-stage timestamps that
//     ride the record's 200 B frame padding and an optional warning tail,
//     accumulating stamps as the payload crosses netem -> broker ->
//     consumer -> micro-batch -> detector -> dissemination. A completed
//     context yields a metrics.LatencyBreakdown without any offline
//     reconstruction.
//   - DebugServer (debug.go): /metrics, /trace/recent and /health JSON
//     endpoints plus net/http/pprof, wired into cmd/cad3-rsu,
//     cmd/cad3-chaos and cmd/cad3-bench behind -debug-addr.
//
// Everything is stdlib-only and allocation-free on the hot path: counters
// and histogram observations are single atomic adds, and trace stamps are
// in-place writes into bytes the frame already carries.
package obsv

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonic atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta. Non-positive deltas are ignored:
// counters are monotonic (matching the CounterSet contract this package
// absorbs).
func (c *Counter) Add(delta int64) {
	if delta <= 0 {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (queue depth, tracked cars,
// degraded-node count).
type Gauge struct {
	v atomic.Int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adjusts the gauge by delta (may be negative).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Registry is a named-metric registry. Metric lookup takes a short RWMutex
// critical section; the returned handles are lock-free atomics, so steady
// state instrumentation holds no locks at all — callers cache the handle
// once and Add/Observe forever. Safe for concurrent use.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	hists      map[string]*Histogram
	gaugeFuncs map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		hists:      make(map[string]*Histogram),
		gaugeFuncs: make(map[string]func() int64),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; ok {
		return c
	}
	c = &Counter{}
	r.counters[name] = c
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; ok {
		return g
	}
	g = &Gauge{}
	r.gauges[name] = g
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (nil bounds select DefaultLatencyBuckets). Bounds are
// fixed at creation; a later call with different bounds returns the
// existing histogram unchanged.
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; ok {
		return h
	}
	h = NewHistogram(bounds)
	r.hists[name] = h
	return h
}

// RegisterGaugeFunc registers a callback evaluated at snapshot time — the
// bridge for components that already keep their own atomics (rsu.Node
// stats) and should not double-account on the hot path.
func (r *Registry) RegisterGaugeFunc(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gaugeFuncs[name] = fn
}

// AddCounter is shorthand for Counter(name).Add(delta); use the handle
// form on hot paths.
func (r *Registry) AddCounter(name string, delta int64) { r.Counter(name).Add(delta) }

// Snapshot is a point-in-time copy of a registry, JSON-marshalable as the
// /metrics response body and embeddable in an RSU checkpoint. Each metric
// is read atomically; the set as a whole is "consistent enough" — see
// DESIGN.md §9 for the memory model.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]int64             `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
}

// Snapshot captures every metric. Gauge funcs are evaluated inline.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)+len(r.gaugeFuncs)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFuncs {
		s.Gauges[name] = fn()
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	return s
}

// Reset zeroes every counter, gauge and histogram (registered gauge funcs
// are unaffected — they reflect live component state).
func (r *Registry) Reset() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.hists {
		h.reset()
	}
}

// Restore loads a snapshot into the registry, overwriting current values —
// the checkpoint-recovery path: a restarted RSU resumes its counters
// instead of starting the accounting from zero. Histograms whose bounds
// disagree with the snapshot's are left untouched.
func (r *Registry) Restore(s Snapshot) {
	for name, v := range s.Counters {
		r.Counter(name).v.Store(v)
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		r.Histogram(name, hs.Bounds).restore(hs)
	}
}

// CounterNames returns the registered counter names, sorted (tests and
// text renderers).
func (r *Registry) CounterNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.counters))
	for name := range r.counters {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
