package obsv

import (
	"encoding/binary"
	"time"

	"cad3/internal/metrics"
)

// Span-style pipeline tracing. A TraceContext is a batch ID plus one
// timestamp per pipeline stage; it is born when a vehicle encodes a
// record, rides the wire inside bytes the frame already reserves, and
// accumulates stamps as the payload crosses the pipeline:
//
//	stage     stamped by                        latency component ended
//	Sent      vehicle / experiment send loop    —
//	Arrive    broker on log append              Tx (transmission)
//	Dequeue   micro-batch decode                Queue (queuing)
//	Detect    detector completion               Processing
//	Deliver   warning consumer poll             Dissemination
//
// The four deltas are exactly the paper's Figure 6a/6b decomposition; a
// fully stamped context converts to a metrics.LatencyBreakdown with
// Breakdown, no offline reconstruction needed.
//
// On the wire the context is a 50-byte little-endian blob:
//
//	off  size  field
//	0    1     traceMagic (0xA7)
//	1    1     traceVersion (1)
//	2    8     BatchID
//	10   8     SentMicro
//	18   8     ArriveMicro
//	26   8     DequeueMicro
//	34   8     DetectMicro
//	42   8     DeliverMicro
//
// For records the blob sits at RecordTraceOffset inside the fixed 200 B
// frame's zero padding — tracing costs zero extra wire bytes and zero
// allocations (core asserts the offsets against its body layout). For
// warnings it is an optional tail after the 41-byte fixed body. JSON
// payloads have no padding, so the JSON fallback simply carries no trace:
// decoders report absence and the pipeline keeps working untraced.

// TraceBlobSize is the encoded size of a TraceContext.
const TraceBlobSize = 50

// Trace blob placement inside the core wire format. core/wire_trace_test.go
// cross-checks these against the codec's actual layout.
const (
	// RecordTraceOffset is where the blob starts inside a binary record
	// frame (the first padding byte after the 76-byte fixed body).
	RecordTraceOffset = 76
	// RecordFrameSize is the fixed binary record frame (core.RecordWireSize).
	RecordFrameSize = 200
	// WarningTraceOffset is where the optional blob starts in a binary
	// warning (right after the 41-byte fixed body).
	WarningTraceOffset = 41
)

const (
	traceMagic   = 0xA7
	traceVersion = 1
)

// Stage indexes one pipeline timestamp inside a TraceContext.
type Stage int

// Pipeline stages in wire order.
const (
	StageSent Stage = iota
	StageArrive
	StageDequeue
	StageDetect
	StageDeliver
	numStages
)

var stageNames = [...]string{"sent", "arrive", "dequeue", "detect", "deliver"}

// String returns the stage's wire name.
func (s Stage) String() string {
	if s < 0 || int(s) >= len(stageNames) {
		return "unknown"
	}
	return stageNames[s]
}

// TraceContext carries a record's identity and per-stage timestamps
// (microseconds since the Unix epoch; zero = not yet stamped). It is a
// plain value — copying it allocates nothing.
type TraceContext struct {
	BatchID      uint64
	SentMicro    int64
	ArriveMicro  int64
	DequeueMicro int64
	DetectMicro  int64
	DeliverMicro int64
}

// Valid reports whether the context was ever stamped at all.
func (tc TraceContext) Valid() bool {
	return tc.SentMicro != 0 || tc.ArriveMicro != 0 || tc.DequeueMicro != 0 ||
		tc.DetectMicro != 0 || tc.DeliverMicro != 0
}

// Stamp sets the stage timestamp from t.
func (tc *TraceContext) Stamp(s Stage, t time.Time) {
	tc.set(s, t.UnixMicro())
}

func (tc *TraceContext) set(s Stage, us int64) {
	switch s {
	case StageSent:
		tc.SentMicro = us
	case StageArrive:
		tc.ArriveMicro = us
	case StageDequeue:
		tc.DequeueMicro = us
	case StageDetect:
		tc.DetectMicro = us
	case StageDeliver:
		tc.DeliverMicro = us
	}
}

// Breakdown converts a fully stamped context into the paper's latency
// decomposition. ok is false while any stage is unstamped or the stamps
// are non-monotonic (clock skew between unsynchronised hosts).
func (tc TraceContext) Breakdown() (metrics.LatencyBreakdown, bool) {
	if tc.SentMicro == 0 || tc.ArriveMicro == 0 || tc.DequeueMicro == 0 ||
		tc.DetectMicro == 0 || tc.DeliverMicro == 0 {
		return metrics.LatencyBreakdown{}, false
	}
	if tc.ArriveMicro < tc.SentMicro || tc.DequeueMicro < tc.ArriveMicro ||
		tc.DetectMicro < tc.DequeueMicro || tc.DeliverMicro < tc.DetectMicro {
		return metrics.LatencyBreakdown{}, false
	}
	return metrics.LatencyBreakdown{
		Tx:            time.Duration(tc.ArriveMicro-tc.SentMicro) * time.Microsecond,
		Queue:         time.Duration(tc.DequeueMicro-tc.ArriveMicro) * time.Microsecond,
		Processing:    time.Duration(tc.DetectMicro-tc.DequeueMicro) * time.Microsecond,
		Dissemination: time.Duration(tc.DeliverMicro-tc.DetectMicro) * time.Microsecond,
	}, true
}

var traceLE = binary.LittleEndian

// PutTrace encodes tc into b, which must hold at least TraceBlobSize
// bytes. It writes in place and allocates nothing.
//
//cad3:noalloc
func PutTrace(b []byte, tc TraceContext) {
	_ = b[TraceBlobSize-1]
	b[0] = traceMagic
	b[1] = traceVersion
	traceLE.PutUint64(b[2:], tc.BatchID)
	traceLE.PutUint64(b[10:], uint64(tc.SentMicro))
	traceLE.PutUint64(b[18:], uint64(tc.ArriveMicro))
	traceLE.PutUint64(b[26:], uint64(tc.DequeueMicro))
	traceLE.PutUint64(b[34:], uint64(tc.DetectMicro))
	traceLE.PutUint64(b[42:], uint64(tc.DeliverMicro))
}

// GetTrace decodes a trace blob from b. ok is false when b is too short or
// does not start with a current-version trace header — untraced padding,
// JSON payloads, and future versions all land here and degrade to the
// untraced pipeline.
//
//cad3:noalloc
func GetTrace(b []byte) (TraceContext, bool) {
	if len(b) < TraceBlobSize || b[0] != traceMagic || b[1] != traceVersion {
		return TraceContext{}, false
	}
	return TraceContext{
		BatchID:      traceLE.Uint64(b[2:]),
		SentMicro:    int64(traceLE.Uint64(b[10:])),
		ArriveMicro:  int64(traceLE.Uint64(b[18:])),
		DequeueMicro: int64(traceLE.Uint64(b[26:])),
		DetectMicro:  int64(traceLE.Uint64(b[34:])),
		DeliverMicro: int64(traceLE.Uint64(b[42:])),
	}, true
}

// payloadTraceRegion locates the trace blob inside a wire payload: a
// 200 B binary record frame carries it in its padding, a traced binary
// warning as its tail. Anything else (JSON, untraced warnings, other
// payload types) has none.
//
//cad3:noalloc
func payloadTraceRegion(payload []byte) []byte {
	switch {
	case len(payload) == RecordFrameSize:
		return payload[RecordTraceOffset:]
	case len(payload) == WarningTraceOffset+TraceBlobSize:
		return payload[WarningTraceOffset:]
	default:
		return nil
	}
}

// PayloadTrace extracts the trace context from any wire payload, reporting
// ok=false for untraced or JSON payloads.
//
//cad3:noalloc
func PayloadTrace(payload []byte) (TraceContext, bool) {
	region := payloadTraceRegion(payload)
	if region == nil {
		return TraceContext{}, false
	}
	return GetTrace(region)
}

// StampPayload stamps the stage timestamp directly into a traced wire
// payload, in place and without allocating. Untraced payloads are left
// untouched (returns false). The broker uses this to stamp StageArrive on
// its own copy at append time, exactly like Kafka's log-append-time.
//
// A stage already stamped is left as-is (first write wins): a warning
// forwarded to OUT-DATA carries the original record's context, and the
// second broker hop must not overwrite the IN-DATA arrival — that hop's
// delay belongs to Dissemination, which StageDeliver closes.
//
//cad3:noalloc
func StampPayload(payload []byte, s Stage, t time.Time) bool {
	region := payloadTraceRegion(payload)
	if region == nil || region[0] != traceMagic || region[1] != traceVersion {
		return false
	}
	var off int
	switch s {
	case StageSent:
		off = 10
	case StageArrive:
		off = 18
	case StageDequeue:
		off = 26
	case StageDetect:
		off = 34
	case StageDeliver:
		off = 42
	default:
		return false
	}
	if traceLE.Uint64(region[off:]) != 0 {
		return false
	}
	traceLE.PutUint64(region[off:], uint64(t.UnixMicro()))
	return true
}
