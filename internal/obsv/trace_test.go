package obsv

import (
	"testing"
	"time"
)

func sampleContext() TraceContext {
	return TraceContext{
		BatchID:      42,
		SentMicro:    1_000_000,
		ArriveMicro:  1_003_500,
		DequeueMicro: 1_030_000,
		DetectMicro:  1_041_700,
		DeliverMicro: 1_055_000,
	}
}

func TestTraceBlobRoundTrip(t *testing.T) {
	tc := sampleContext()
	b := make([]byte, TraceBlobSize)
	PutTrace(b, tc)
	got, ok := GetTrace(b)
	if !ok {
		t.Fatal("GetTrace failed on a freshly encoded blob")
	}
	if got != tc {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tc)
	}
}

func TestGetTraceRejectsGarbage(t *testing.T) {
	if _, ok := GetTrace(nil); ok {
		t.Fatal("nil accepted")
	}
	if _, ok := GetTrace(make([]byte, TraceBlobSize)); ok {
		t.Fatal("zero padding accepted as a trace")
	}
	b := make([]byte, TraceBlobSize)
	PutTrace(b, sampleContext())
	b[1] = 99 // future version
	if _, ok := GetTrace(b); ok {
		t.Fatal("unknown version accepted")
	}
}

func TestBreakdown(t *testing.T) {
	tc := sampleContext()
	lb, ok := tc.Breakdown()
	if !ok {
		t.Fatal("complete context rejected")
	}
	if lb.Tx != 3500*time.Microsecond ||
		lb.Queue != 26500*time.Microsecond ||
		lb.Processing != 11700*time.Microsecond ||
		lb.Dissemination != 13300*time.Microsecond {
		t.Fatalf("breakdown %+v", lb)
	}
	if lb.Total() != 55000*time.Microsecond {
		t.Fatalf("total %v", lb.Total())
	}

	// Unstamped stage -> not a breakdown yet.
	partial := tc
	partial.DeliverMicro = 0
	if _, ok := partial.Breakdown(); ok {
		t.Fatal("partial context accepted")
	}
	// Non-monotonic stamps (clock skew) -> rejected.
	skewed := tc
	skewed.DequeueMicro = tc.SentMicro - 1
	if _, ok := skewed.Breakdown(); ok {
		t.Fatal("non-monotonic context accepted")
	}
}

func TestPayloadTraceAndStamp(t *testing.T) {
	// Record-shaped payload: 200 B frame with the blob in the padding.
	rec := make([]byte, RecordFrameSize)
	tc := TraceContext{BatchID: 7, SentMicro: 500}
	PutTrace(rec[RecordTraceOffset:], tc)
	got, ok := PayloadTrace(rec)
	if !ok || got.BatchID != 7 || got.SentMicro != 500 {
		t.Fatalf("record payload trace: ok=%v got=%+v", ok, got)
	}

	at := time.UnixMicro(12345)
	if !StampPayload(rec, StageArrive, at) {
		t.Fatal("stamp refused on traced record")
	}
	got, _ = PayloadTrace(rec)
	if got.ArriveMicro != 12345 {
		t.Fatalf("arrive = %d, want 12345", got.ArriveMicro)
	}

	// Warning-shaped payload: fixed body + trace tail.
	warn := make([]byte, WarningTraceOffset+TraceBlobSize)
	PutTrace(warn[WarningTraceOffset:], got)
	if !StampPayload(warn, StageDeliver, time.UnixMicro(99999)) {
		t.Fatal("stamp refused on traced warning")
	}
	wtc, ok := PayloadTrace(warn)
	if !ok || wtc.DeliverMicro != 99999 {
		t.Fatalf("warning trace: ok=%v got=%+v", ok, wtc)
	}
}

// TestPayloadTraceGracefulDegradation proves the JSON fallback and
// untraced binary frames simply carry no trace, instead of failing.
func TestPayloadTraceGracefulDegradation(t *testing.T) {
	cases := map[string][]byte{
		"json":             []byte(`{"Car":42,"Road":900001,"TimestampMs":123}`),
		"untraced record":  make([]byte, RecordFrameSize), // zero padding
		"plain warning":    make([]byte, WarningTraceOffset),
		"empty":            nil,
		"truncated record": make([]byte, RecordFrameSize-1),
	}
	for name, payload := range cases {
		if _, ok := PayloadTrace(payload); ok {
			t.Errorf("%s: trace unexpectedly present", name)
		}
		if StampPayload(payload, StageArrive, time.Now()) {
			t.Errorf("%s: stamp unexpectedly succeeded", name)
		}
	}
}
