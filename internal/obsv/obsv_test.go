package obsv

import (
	"sync"
	"testing"
	"time"
)

func TestCounterMonotonic(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	c.Add(3)
	c.Add(-5) // ignored: monotonic
	c.Add(0)  // ignored
	c.Inc()
	if got := c.Value(); got != 4 {
		t.Fatalf("counter = %d, want 4", got)
	}
	if r.Counter("x") != c {
		t.Fatal("Counter did not return the same handle")
	}
}

func TestGauge(t *testing.T) {
	g := NewRegistry().Gauge("depth")
	g.Set(10)
	g.Add(-3)
	if got := g.Value(); got != 7 {
		t.Fatalf("gauge = %d, want 7", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{5, 10, 11, 100, 500, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 1, 1} // (..10] (10..100] (100..1000] overflow
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 6 || s.Sum != 5+10+11+100+500+5000 {
		t.Fatalf("count=%d sum=%d", s.Count, s.Sum)
	}
	if m := s.Mean(); m < 900 || m > 940 {
		t.Fatalf("mean = %f", m)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]int64{10, 20, 40})
	for v := int64(1); v <= 40; v++ {
		h.Observe(v)
	}
	s := h.Snapshot()
	if q := s.Quantile(0.5); q < 15 || q > 25 {
		t.Fatalf("p50 = %d, want ~20", q)
	}
	if q := s.Quantile(0.95); q < 30 || q > 40 {
		t.Fatalf("p95 = %d, want ~38", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty quantile should be 0")
	}
}

// TestHistogramConcurrent hammers Observe from many goroutines while a
// reader snapshots continuously — run under -race this proves the
// histogram is data-race free and that snapshots never over-count.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram([]int64{100, 1000, 10000})
	const writers = 8
	const perWriter = 5000

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // concurrent snapshot reader
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var bucketSum int64
			for _, c := range s.Counts {
				bucketSum += c
			}
			// Each bucket slot is bumped before Count, so a snapshot's
			// bucket sum can run ahead of its Count by in-flight
			// observations but never lag behind it.
			if bucketSum < s.Count {
				t.Errorf("snapshot bucket sum %d below count %d", bucketSum, s.Count)
				return
			}
		}
	}()
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(seed * int64(i%77))
			}
		}(int64(w + 1))
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	// Let writers finish, then stop the reader.
	for h.Count() < writers*perWriter {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done

	s := h.Snapshot()
	if s.Count != writers*perWriter {
		t.Fatalf("count = %d, want %d", s.Count, writers*perWriter)
	}
	var bucketSum int64
	for _, c := range s.Counts {
		bucketSum += c
	}
	if bucketSum != s.Count {
		t.Fatalf("settled bucket sum %d != count %d", bucketSum, s.Count)
	}
}

func TestRegistrySnapshotResetRestore(t *testing.T) {
	r := NewRegistry()
	r.Counter("warnings").Add(7)
	r.Gauge("cars").Set(12)
	r.Histogram("lat", []int64{10, 100}).Observe(42)
	r.RegisterGaugeFunc("live", func() int64 { return 99 })

	s := r.Snapshot()
	if s.Counters["warnings"] != 7 || s.Gauges["cars"] != 12 || s.Gauges["live"] != 99 {
		t.Fatalf("snapshot %+v", s)
	}
	if s.Histograms["lat"].Count != 1 {
		t.Fatalf("hist snapshot %+v", s.Histograms["lat"])
	}

	// Restore into a fresh registry — the checkpoint-recovery path.
	r2 := NewRegistry()
	r2.Restore(s)
	if r2.Counter("warnings").Value() != 7 {
		t.Fatal("restore lost counter")
	}
	if r2.Histogram("lat", []int64{10, 100}).Count() != 1 {
		t.Fatal("restore lost histogram")
	}

	r.Reset()
	s = r.Snapshot()
	if s.Counters["warnings"] != 0 || s.Gauges["cars"] != 0 || s.Histograms["lat"].Count != 0 {
		t.Fatalf("reset left state: %+v", s)
	}
	if s.Gauges["live"] != 99 {
		t.Fatal("reset must not clear gauge funcs")
	}
}

func TestRegistryConcurrentLookup(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Counter("shared").Inc()
				r.Histogram("h", nil).Observe(int64(j))
				r.Gauge("g").Set(int64(j))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared").Value(); got != 8000 {
		t.Fatalf("shared counter = %d, want 8000", got)
	}
	if got := r.Histogram("h", nil).Count(); got != 8000 {
		t.Fatalf("hist count = %d, want 8000", got)
	}
}

func TestTraceRing(t *testing.T) {
	r := NewTraceRing(3)
	for i := int64(1); i <= 5; i++ {
		r.Push(TraceEntry{Car: i})
	}
	got := r.Recent(0)
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	// Newest first: 5, 4, 3.
	for i, want := range []int64{5, 4, 3} {
		if got[i].Car != want {
			t.Fatalf("recent[%d].Car = %d, want %d", i, got[i].Car, want)
		}
	}
	if got := r.Recent(1); len(got) != 1 || got[0].Car != 5 {
		t.Fatalf("recent(1) = %+v", got)
	}
}
