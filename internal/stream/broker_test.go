package stream

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

func newTestBroker(t *testing.T) *Broker {
	t.Helper()
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic(TopicInData, DefaultPartitions); err != nil {
		t.Fatal(err)
	}
	return b
}

func TestCreateTopic(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic("t", 3); err != nil {
		t.Fatal(err)
	}
	// Idempotent with identical partitions.
	if err := b.CreateTopic("t", 3); err != nil {
		t.Errorf("idempotent create failed: %v", err)
	}
	if err := b.CreateTopic("t", 5); !errors.Is(err, ErrTopicExists) {
		t.Errorf("err = %v, want ErrTopicExists", err)
	}
	if err := b.CreateTopic("", 3); !errors.Is(err, ErrEmptyTopicName) {
		t.Errorf("err = %v, want ErrEmptyTopicName", err)
	}
	if err := b.CreateTopic("bad", 0); err == nil {
		t.Error("want error for 0 partitions")
	}
	if got := b.Topics(); len(got) != 1 || got[0] != "t" {
		t.Errorf("Topics = %v", got)
	}
	n, err := b.PartitionCount("t")
	if err != nil || n != 3 {
		t.Errorf("PartitionCount = %d, %v", n, err)
	}
	if _, err := b.PartitionCount("nope"); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
}

func TestProduceFetchRoundTrip(t *testing.T) {
	b := newTestBroker(t)
	part, off, err := b.Produce(TopicInData, 0, []byte("car-1"), []byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if part != 0 || off != 0 {
		t.Errorf("part=%d off=%d", part, off)
	}
	msgs, err := b.Fetch(TopicInData, 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Value) != "hello" || string(msgs[0].Key) != "car-1" {
		t.Fatalf("msgs = %+v", msgs)
	}
	if msgs[0].Offset != 0 || msgs[0].Topic != TopicInData {
		t.Errorf("metadata = %+v", msgs[0])
	}
	if msgs[0].AppendedAt.IsZero() {
		t.Error("AppendedAt not stamped")
	}
}

func TestProduceErrors(t *testing.T) {
	b := newTestBroker(t)
	if _, _, err := b.Produce("nope", 0, nil, []byte("x")); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
	if _, _, err := b.Produce(TopicInData, 99, nil, []byte("x")); !errors.Is(err, ErrBadPartition) {
		t.Errorf("err = %v, want ErrBadPartition", err)
	}
	huge := make([]byte, MaxMessageSize+1)
	if _, _, err := b.Produce(TopicInData, 0, nil, huge); !errors.Is(err, ErrValueTooLarge) {
		t.Errorf("err = %v, want ErrValueTooLarge", err)
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := b.Produce(TopicInData, 0, nil, []byte("x")); !errors.Is(err, ErrBrokerClosed) {
		t.Errorf("err = %v, want ErrBrokerClosed", err)
	}
	if _, err := b.Fetch(TopicInData, 0, 0, 1); !errors.Is(err, ErrBrokerClosed) {
		t.Errorf("err = %v, want ErrBrokerClosed", err)
	}
	if err := b.CreateTopic("late", 1); !errors.Is(err, ErrBrokerClosed) {
		t.Errorf("err = %v, want ErrBrokerClosed", err)
	}
}

func TestKeyHashPartitioningStable(t *testing.T) {
	b := newTestBroker(t)
	key := []byte("car-42")
	first, _, err := b.Produce(TopicInData, AutoPartition, key, []byte("a"))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		part, _, err := b.Produce(TopicInData, AutoPartition, key, []byte("b"))
		if err != nil {
			t.Fatal(err)
		}
		if part != first {
			t.Fatalf("same key landed on partitions %d and %d", first, part)
		}
	}
}

func TestNilKeyRoundRobinSpreads(t *testing.T) {
	b := newTestBroker(t)
	seen := make(map[int32]bool)
	for i := 0; i < 30; i++ {
		part, _, err := b.Produce(TopicInData, AutoPartition, nil, []byte("x"))
		if err != nil {
			t.Fatal(err)
		}
		seen[part] = true
	}
	if len(seen) != DefaultPartitions {
		t.Errorf("round robin reached %d partitions, want %d", len(seen), DefaultPartitions)
	}
}

func TestOffsetsMonotonicPerPartition(t *testing.T) {
	b := newTestBroker(t)
	var last [DefaultPartitions]int64
	for i := range last {
		last[i] = -1
	}
	for i := 0; i < 300; i++ {
		part, off, err := b.Produce(TopicInData, AutoPartition, []byte(fmt.Sprintf("k%d", i)), []byte("v"))
		if err != nil {
			t.Fatal(err)
		}
		if off != last[part]+1 {
			t.Fatalf("partition %d: offset %d after %d", part, off, last[part])
		}
		last[part] = off
	}
}

func TestFetchBeyondHighWatermark(t *testing.T) {
	b := newTestBroker(t)
	_, _, _ = b.Produce(TopicInData, 0, nil, []byte("x"))
	msgs, err := b.Fetch(TopicInData, 0, 99, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 0 {
		t.Errorf("fetch past HWM returned %d messages", len(msgs))
	}
	hwm, err := b.HighWaterMark(TopicInData, 0)
	if err != nil || hwm != 1 {
		t.Errorf("HWM = %d, %v", hwm, err)
	}
}

func TestRetentionTruncation(t *testing.T) {
	b := NewBroker(BrokerConfig{MaxRetainedPerPartition: 10})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 25; i++ {
		if _, _, err := b.Produce("t", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Old offsets were truncated; fetching from 0 resumes at the base.
	msgs, err := b.Fetch("t", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) == 0 || len(msgs) > 11 {
		t.Fatalf("retained %d messages, want <= 11", len(msgs))
	}
	// Offsets must still be the original ones (stable across truncation).
	if msgs[len(msgs)-1].Offset != 24 {
		t.Errorf("last offset = %d, want 24", msgs[len(msgs)-1].Offset)
	}
	for i := 1; i < len(msgs); i++ {
		if msgs[i].Offset != msgs[i-1].Offset+1 {
			t.Fatal("offsets not contiguous after truncation")
		}
	}
}

func TestPartitionDownInjection(t *testing.T) {
	b := newTestBroker(t)
	b.SetPartitionDown(TopicInData, 1, true)
	if _, _, err := b.Produce(TopicInData, 1, nil, []byte("x")); !errors.Is(err, ErrPartitionDown) {
		t.Errorf("err = %v, want ErrPartitionDown", err)
	}
	if _, err := b.Fetch(TopicInData, 1, 0, 1); !errors.Is(err, ErrPartitionDown) {
		t.Errorf("err = %v, want ErrPartitionDown", err)
	}
	// Other partitions keep working.
	if _, _, err := b.Produce(TopicInData, 0, nil, []byte("x")); err != nil {
		t.Errorf("healthy partition failed: %v", err)
	}
	b.SetPartitionDown(TopicInData, 1, false)
	if _, _, err := b.Produce(TopicInData, 1, nil, []byte("x")); err != nil {
		t.Errorf("recovered partition failed: %v", err)
	}
}

func TestConcurrentProduceFetch(t *testing.T) {
	b := newTestBroker(t)
	const producers = 8
	const perProducer = 200
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			key := []byte(fmt.Sprintf("car-%d", p))
			for i := 0; i < perProducer; i++ {
				if _, _, err := b.Produce(TopicInData, AutoPartition, key, []byte("v")); err != nil {
					t.Errorf("produce: %v", err)
					return
				}
			}
		}(p)
	}
	wg.Wait()

	var total int
	for part := int32(0); part < DefaultPartitions; part++ {
		hwm, err := b.HighWaterMark(TopicInData, part)
		if err != nil {
			t.Fatal(err)
		}
		total += int(hwm)
	}
	if total != producers*perProducer {
		t.Errorf("total messages = %d, want %d", total, producers*perProducer)
	}
	if b.BytesIn() <= 0 {
		t.Error("BytesIn not accounted")
	}
}

func TestMessageCloneIndependence(t *testing.T) {
	m := Message{Key: []byte("k"), Value: []byte("v")}
	c := m.Clone()
	c.Key[0] = 'X'
	c.Value[0] = 'Y'
	if m.Key[0] != 'k' || m.Value[0] != 'v' {
		t.Error("Clone aliases original buffers")
	}
	if m.WireSize() <= 0 {
		t.Error("WireSize must be positive")
	}
}

func TestTimeBasedRetention(t *testing.T) {
	now := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	b := NewBroker(BrokerConfig{RetentionAge: time.Minute, Now: clock})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, _, err := b.Produce("t", 0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	// Two minutes later, a fresh produce evicts the stale history.
	now = now.Add(2 * time.Minute)
	if _, _, err := b.Produce("t", 0, nil, []byte{99}); err != nil {
		t.Fatal(err)
	}
	msgs, err := b.Fetch("t", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || msgs[0].Value[0] != 99 {
		t.Fatalf("retained %d messages (%v), want only the fresh one", len(msgs), msgs)
	}
	if msgs[0].Offset != 5 {
		t.Errorf("offset = %d, want 5 (stable across retention)", msgs[0].Offset)
	}
}

func TestTimeRetentionKeepsLatest(t *testing.T) {
	now := time.Date(2016, 7, 4, 8, 0, 0, 0, time.UTC)
	clock := func() time.Time { return now }
	b := NewBroker(BrokerConfig{RetentionAge: time.Second, Now: clock})
	if err := b.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	_, _, _ = b.Produce("t", 0, nil, []byte("old"))
	now = now.Add(time.Hour)
	_, _, _ = b.Produce("t", 0, nil, []byte("new"))
	msgs, err := b.Fetch("t", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	// The newest message always survives.
	if len(msgs) == 0 || string(msgs[len(msgs)-1].Value) != "new" {
		t.Fatalf("msgs = %v", msgs)
	}
}
