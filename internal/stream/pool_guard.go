//go:build cad3_checks

package stream

// Debug-build pool guard. The static analyzer (cad3-vet's poolsafety)
// proves the single-function cases at compile time but cannot follow a
// buffer across goroutines or through stored aliases; this runtime
// detector closes that gap. Every buffer admitted to a free list is
// tracked by its backing-array pointer; admitting it again before a
// lease panics with both recycle call sites.
//
// The guard only tracks buffers that are actually resident in a pool:
// a buffer the full ring dropped to the GC is retracted, because its
// address may be legitimately reused by a future allocation. Detection
// is therefore best-effort — exactly like the kernel's slab poisoning,
// it catches the overwhelmingly common case without false positives.

import (
	"fmt"
	"runtime"
	"strings"
	"sync"
	"unsafe"
)

var (
	guardMu sync.Mutex
	// freeSites maps the backing array of every pool-resident buffer to
	// the call chain that recycled it.
	freeSites = map[unsafe.Pointer]string{}
)

// recycleSite renders the caller chain above the guard hook.
func recycleSite() string {
	pc := make([]uintptr, 4)
	n := runtime.Callers(3, pc) // skip Callers, recycleSite, and the hook
	frames := runtime.CallersFrames(pc[:n])
	var parts []string
	for {
		f, more := frames.Next()
		parts = append(parts, fmt.Sprintf("%s:%d", f.File, f.Line))
		if !more || len(parts) == 4 {
			break
		}
	}
	return strings.Join(parts, " <- ")
}

// guardAdmit records a buffer entering a free list, panicking if it is
// already resident — a double recycle.
func guardAdmit(b []byte) {
	if cap(b) == 0 {
		return
	}
	p := unsafe.Pointer(unsafe.SliceData(b[:1]))
	site := recycleSite()
	guardMu.Lock()
	prev, dead := freeSites[p]
	if !dead {
		freeSites[p] = site
	}
	guardMu.Unlock()
	if dead {
		panic(fmt.Sprintf("stream: double recycle of pooled buffer %p at %s (already recycled at %s)", p, site, prev))
	}
}

// guardRetract forgets a buffer the full ring dropped to the GC.
func guardRetract(b []byte) {
	if cap(b) == 0 {
		return
	}
	guardMu.Lock()
	delete(freeSites, unsafe.Pointer(unsafe.SliceData(b[:1])))
	guardMu.Unlock()
}

// guardLease forgets a buffer leaving the pool for a new owner.
func guardLease(b []byte) {
	guardRetract(b)
}
