package stream

// Follower reads: replica-aware consumer fetch. The leader broker is
// the only member that accepts produces, but any in-sync replica holds
// every committed record, so consumers can fan their fetches out across
// the ISR instead of all hammering the leader — Kafka's KIP-392. The
// correctness rule is the high-watermark clamp: a follower may hold
// records the leader has appended but not yet fully replicated (or,
// during an AckLeader window, the reverse — the leader holds records no
// follower has), and none of those are committed. A follower read must
// never return a record past the committed offset, defined here as the
// minimum high watermark across live ISR members; otherwise a consumer
// could observe a record that a subsequent clean election erases.

import (
	"fmt"
)

// CommittedOffset reports a partition's committed offset: the minimum
// high watermark across live in-sync members. Records below it survive
// any clean election; follower reads are clamped to it.
func (rs *ReplicaSet) CommittedOffset(topicName string, partition int32) (int64, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ps, err := rs.partLocked(topicName, partition)
	if err != nil {
		return 0, err
	}
	return rs.committedLocked(topicName, partition, ps)
}

// partLocked resolves a (topic, partition) to its control-plane state.
func (rs *ReplicaSet) partLocked(topicName string, partition int32) (*partState, error) {
	t, ok := rs.topics[topicName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	if partition < 0 || int(partition) >= len(t.parts) {
		return nil, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	return &t.parts[partition], nil
}

// committedLocked computes the min HWM over live ISR members. A member
// whose broker cannot answer (closed under us) is skipped; a partition
// with no live in-sync member has nothing committed to serve.
func (rs *ReplicaSet) committedLocked(topicName string, partition int32, ps *partState) (int64, error) {
	committed, seen := int64(0), false
	for i, r := range rs.replicas {
		if !r.alive || !ps.isr[i] {
			continue
		}
		hwm, err := r.Broker.HighWaterMark(topicName, partition)
		if err != nil {
			continue
		}
		if !seen || hwm < committed {
			committed, seen = hwm, true
		}
	}
	if !seen {
		return 0, &notLeaderError{hint: DefaultLeaderRetryHint}
	}
	return committed, nil
}

// FetchCommitted reads from a live in-sync replica, preferring
// followers over the leader (round-robin across the eligible members),
// clamped so no returned record's offset reaches the committed offset
// boundary's far side: offset+count <= committed, always. During an
// AckLeader window the leader is ahead of the committed offset and a
// follower read simply does not see the uncommitted suffix yet; the
// next Tick (or an AckAll produce) advances the committed offset and
// the records appear. Because every ISR member holds all committed
// records, the clamped read is identical no matter which member serves
// it.
func (rs *ReplicaSet) FetchCommitted(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	ps, err := rs.partLocked(topicName, partition)
	if err != nil {
		return nil, err
	}
	committed, err := rs.committedLocked(topicName, partition, ps)
	if err != nil {
		return nil, err
	}
	if offset >= committed {
		return nil, nil // nothing committed past the consumer's position
	}
	if span := committed - offset; int64(max) > span {
		max = int(span)
		if rs.mFollowerClamped != nil {
			rs.mFollowerClamped.Inc()
		}
	}
	server := rs.pickReaderLocked(ps)
	if rs.mFollowerFetches != nil && server != ps.leader {
		rs.mFollowerFetches.Inc()
	}
	return rs.replicas[server].Broker.Fetch(topicName, partition, offset, max)
}

// pickReaderLocked rotates over live in-sync followers; only an ISR of
// one (the leader alone) falls back to the leader.
func (rs *ReplicaSet) pickReaderLocked(ps *partState) int {
	var eligible []int
	for i, r := range rs.replicas {
		if r.alive && ps.isr[i] && i != ps.leader {
			eligible = append(eligible, i)
		}
	}
	if len(eligible) == 0 {
		return ps.leader
	}
	rs.readRR++
	return eligible[rs.readRR%uint64(len(eligible))]
}

// followerReadClient is a ReplicatedClient whose fetches go to in-sync
// followers with the HWM clamp instead of the partition leader.
type followerReadClient struct {
	ReplicatedClient
}

// ReadClient returns a Client view of the set whose fetches are served
// by in-sync followers (committed records only), spreading consumer
// read load off the partition leaders. Produces still route to leaders
// at the given ack level.
func (rs *ReplicaSet) ReadClient(acks AckLevel) Client {
	return &followerReadClient{ReplicatedClient{rs: rs, acks: acks}}
}

// Fetch implements Client via FetchCommitted.
func (c *followerReadClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	return c.rs.FetchCommitted(topicName, partition, offset, max)
}
