package stream_test

import (
	"fmt"

	"cad3/internal/obsv"
	"cad3/internal/stream"
)

// Example wires the minimal produce/consume round trip: an in-process
// broker, one partitioned topic, a key-hashed producer, and a pull-based
// consumer — the same pipeline cad3-rsu runs over TCP.
func Example() {
	broker := stream.NewBroker(stream.BrokerConfig{})
	client := stream.NewInProcClient(broker)
	if err := client.CreateTopic(stream.TopicInData, 1); err != nil {
		fmt.Println(err)
		return
	}

	producer, err := stream.NewProducer(client, stream.TopicInData)
	if err != nil {
		fmt.Println(err)
		return
	}
	consumer, err := stream.NewConsumer(client, stream.TopicInData, 0)
	if err != nil {
		fmt.Println(err)
		return
	}

	if _, _, err := producer.Send([]byte("car-7"), []byte("status update")); err != nil {
		fmt.Println(err)
		return
	}
	msgs, err := consumer.Poll(16)
	if err != nil {
		fmt.Println(err)
		return
	}
	for _, m := range msgs {
		fmt.Printf("%s: %s\n", m.Key, m.Value)
	}
	// Output: car-7: status update
}

// ExampleBroker_metrics attaches an observability registry to a broker;
// every produce and fetch is counted live and a snapshot renders the
// /metrics view (see OBSERVABILITY.md).
func ExampleBroker_metrics() {
	reg := obsv.NewRegistry()
	broker := stream.NewBroker(stream.BrokerConfig{Metrics: reg})
	client := stream.NewInProcClient(broker)
	if err := client.CreateTopic(stream.TopicOutData, 1); err != nil {
		fmt.Println(err)
		return
	}

	for i := 0; i < 3; i++ {
		if _, _, err := client.Produce(stream.TopicOutData, 0, nil, []byte("warning")); err != nil {
			fmt.Println(err)
			return
		}
	}

	snap := reg.Snapshot()
	fmt.Printf("produced %d messages, %d wire bytes\n",
		snap.Counters["broker.produced.msgs"], snap.Counters["broker.produced.bytes"])
	// Output: produced 3 messages, 132 wire bytes
}
