package stream

import (
	"errors"
	"fmt"
	"sync/atomic"

	"cad3/internal/flow"
)

// Producer publishes messages to one topic through a Client. It is safe
// for concurrent use. Each emulated vehicle runs one producer (the paper's
// "Kafka Producers" on PC1).
type Producer struct {
	client Client
	topic  string
	sent   atomic.Int64
	bytes  atomic.Int64
}

// NewProducer binds a producer to a topic. The topic must already exist
// (or be created by the caller); Send surfaces ErrUnknownTopic otherwise.
func NewProducer(client Client, topicName string) (*Producer, error) {
	if client == nil {
		return nil, fmt.Errorf("stream: producer requires a client")
	}
	if topicName == "" {
		return nil, ErrEmptyTopicName
	}
	return &Producer{client: client, topic: topicName}, nil
}

// Send publishes value under key with automatic partitioning and returns
// the (partition, offset) the broker assigned.
func (p *Producer) Send(key, value []byte) (int32, int64, error) {
	part, off, err := p.client.Produce(p.topic, AutoPartition, key, value)
	if err != nil {
		// Backpressure and circuit-open pass through untouched: both are
		// part of the allocation-free fast path (they fire exactly when
		// the system is overloaded or the link is down), and senders
		// match them with errors.Is to drive their pacer.
		if errors.Is(err, flow.ErrBackpressure) || errors.Is(err, flow.ErrCircuitOpen) {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("produce to %q: %w", p.topic, err)
	}
	p.sent.Add(1)
	p.bytes.Add(int64(len(key) + len(value)))
	return part, off, nil
}

// SendPooled publishes a payload assembled into a pooled buffer: encode
// receives an empty pooled buffer and appends the wire bytes (e.g.
// core.AppendRecord). The buffer is recycled after the send — both the
// in-process broker and the TCP client copy the payload before returning —
// so a steady producer allocates nothing per message.
func (p *Producer) SendPooled(key []byte, encode func(dst []byte) []byte) (int32, int64, error) {
	value := encode(GetPayload())
	part, off, err := p.Send(key, value)
	PutPayload(value)
	return part, off, err
}

// SendToPartition publishes to an explicit partition.
func (p *Producer) SendToPartition(partition int32, key, value []byte) (int64, error) {
	_, off, err := p.client.Produce(p.topic, partition, key, value)
	if err != nil {
		if errors.Is(err, flow.ErrBackpressure) || errors.Is(err, flow.ErrCircuitOpen) {
			return 0, err
		}
		return 0, fmt.Errorf("produce to %q/%d: %w", p.topic, partition, err)
	}
	p.sent.Add(1)
	p.bytes.Add(int64(len(key) + len(value)))
	return off, nil
}

// Sent returns the number of successfully published messages.
func (p *Producer) Sent() int64 { return p.sent.Load() }

// Bytes returns the cumulative payload bytes published.
func (p *Producer) Bytes() int64 { return p.bytes.Load() }

// Topic returns the topic the producer publishes to.
func (p *Producer) Topic() string { return p.topic }
