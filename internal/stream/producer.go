package stream

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cad3/internal/flow"
)

// Producer publishes messages to one topic through a Client. It is safe
// for concurrent use. Each emulated vehicle runs one producer (the paper's
// "Kafka Producers" on PC1).
//
// A producer carries an AckLevel. The default AckLeader sends through the
// plain Client Produce path unchanged; AckNone and AckAll require a
// client that understands durability levels (AckClient — the replicated
// cluster's client). The bound client can be swapped at runtime
// (SwapClient) so a supervisor can rewire a producer to a new partition
// leader without rebuilding the pipeline around it.
type Producer struct {
	mu     sync.RWMutex
	client Client
	acks   AckLevel

	topic string
	sent  atomic.Int64
	bytes atomic.Int64
}

// NewProducer binds a producer to a topic at AckLeader. The topic must
// already exist (or be created by the caller); Send surfaces
// ErrUnknownTopic otherwise.
func NewProducer(client Client, topicName string) (*Producer, error) {
	return NewProducerAcks(client, topicName, AckLeader)
}

// NewProducerAcks binds a producer at an explicit durability level. Any
// level other than AckLeader requires an AckClient.
func NewProducerAcks(client Client, topicName string, acks AckLevel) (*Producer, error) {
	if client == nil {
		return nil, fmt.Errorf("stream: producer requires a client")
	}
	if topicName == "" {
		return nil, ErrEmptyTopicName
	}
	if acks != AckLeader {
		if _, ok := client.(AckClient); !ok {
			return nil, fmt.Errorf("stream: acks=%s requires an AckClient, got %T", acks, client)
		}
	}
	return &Producer{client: client, topic: topicName, acks: acks}, nil
}

// SwapClient rebinds the producer to a new client — the failover path
// after a broker is replaced. In-flight Sends finish against the client
// they started with.
func (p *Producer) SwapClient(client Client) error {
	if client == nil {
		return fmt.Errorf("stream: producer requires a client")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.acks != AckLeader {
		if _, ok := client.(AckClient); !ok {
			return fmt.Errorf("stream: acks=%s requires an AckClient, got %T", p.acks, client)
		}
	}
	p.client = client
	return nil
}

// produce routes one record through the bound client at the producer's
// ack level.
func (p *Producer) produce(partition int32, key, value []byte) (int32, int64, error) {
	p.mu.RLock()
	client, acks := p.client, p.acks
	p.mu.RUnlock()
	if acks != AckLeader {
		if ac, ok := client.(AckClient); ok {
			return ac.ProduceAcks(p.topic, partition, key, value, acks)
		}
	}
	return client.Produce(p.topic, partition, key, value)
}

// Send publishes value under key with automatic partitioning and returns
// the (partition, offset) the broker assigned.
func (p *Producer) Send(key, value []byte) (int32, int64, error) {
	part, off, err := p.produce(AutoPartition, key, value)
	if err != nil {
		// Backpressure and circuit-open pass through untouched: both are
		// part of the allocation-free fast path (they fire exactly when
		// the system is overloaded or the link is down), and senders
		// match them with errors.Is to drive their pacer.
		if errors.Is(err, flow.ErrBackpressure) || errors.Is(err, flow.ErrCircuitOpen) {
			return 0, 0, err
		}
		return 0, 0, fmt.Errorf("produce to %q: %w", p.topic, err)
	}
	p.sent.Add(1)
	p.bytes.Add(int64(len(key) + len(value)))
	return part, off, nil
}

// SendPooled publishes a payload assembled into a pooled buffer: encode
// receives an empty pooled buffer and appends the wire bytes (e.g.
// core.AppendRecord). The buffer is recycled after the send — both the
// in-process broker and the TCP client copy the payload before returning —
// so a steady producer allocates nothing per message.
func (p *Producer) SendPooled(key []byte, encode func(dst []byte) []byte) (int32, int64, error) {
	value := encode(GetPayload())
	part, off, err := p.Send(key, value)
	PutPayload(value)
	return part, off, err
}

// SendToPartition publishes to an explicit partition.
func (p *Producer) SendToPartition(partition int32, key, value []byte) (int64, error) {
	_, off, err := p.produce(partition, key, value)
	if err != nil {
		if errors.Is(err, flow.ErrBackpressure) || errors.Is(err, flow.ErrCircuitOpen) {
			return 0, err
		}
		return 0, fmt.Errorf("produce to %q/%d: %w", p.topic, partition, err)
	}
	p.sent.Add(1)
	p.bytes.Add(int64(len(key) + len(value)))
	return off, nil
}

// Acks returns the producer's durability level.
func (p *Producer) Acks() AckLevel {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.acks
}

// Sent returns the number of successfully published messages.
func (p *Producer) Sent() int64 { return p.sent.Load() }

// Bytes returns the cumulative payload bytes published.
func (p *Producer) Bytes() int64 { return p.bytes.Load() }

// Topic returns the topic the producer publishes to.
func (p *Producer) Topic() string { return p.topic }
