package stream

// Connection multiplexing. A city's worth of emulated vehicles sharing
// one RSU must not each hold a TCP connection: the PoolClient gives them
// a small pool of pipelined connections per broker address. Records with
// a key stick to one link (key-hash affinity preserves the per-key
// ordering the broker's partitioner relies on); keyless requests
// round-robin. Each link carries its own circuit breaker: consecutive
// transport failures trip it, traffic shifts to the surviving links, and
// half-open probes re-admit the link once it answers again. With every
// link open the pool returns flow.ErrCircuitOpen — the signal that
// drives the sender's pacer to its floor (flow.Pacer.Floor).

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"cad3/internal/flow"
	"cad3/internal/obsv"
)

// DefaultPoolSize is the default number of pooled connections per broker
// address — small on purpose: two pipelined links saturate a broker long
// before two hundred synchronous ones would.
const DefaultPoolSize = 2

// PoolConfig tunes a PoolClient.
type PoolConfig struct {
	// Size is the number of pooled connections. Values <= 0 select
	// DefaultPoolSize.
	Size int
	// Dial configures each pooled connection (window, frame limit,
	// request timeout, pipelining).
	Dial DialConfig
	// Breaker configures each link's circuit breaker (threshold,
	// cooldown, clock). Metrics and Name are overridden by the pool so
	// all links aggregate into the wire.breaker family.
	Breaker flow.BreakerConfig
	// Metrics, when set, receives the wire.* counters/gauges and the
	// wire.breaker.* family.
	Metrics *obsv.Registry
}

func (cfg PoolConfig) withDefaults() PoolConfig {
	if cfg.Size <= 0 {
		cfg.Size = DefaultPoolSize
	}
	return cfg
}

// poolLink is one pooled connection plus its breaker. conn is nil when
// the last use tore it down; the next admitted request redials lazily.
type poolLink struct {
	mu sync.Mutex
	c  *TCPClient
	br *flow.Breaker
}

// PoolClient multiplexes Client (and BatchClient) calls over a pool of
// pipelined connections with per-link circuit breakers. Safe for
// concurrent use — that is its purpose: many vehicle goroutines share
// one pool.
type PoolClient struct {
	addr  string
	dial  DialConfig
	links []*poolLink
	rr    atomic.Uint32

	mu     sync.Mutex
	closed bool

	mRequests, mTransportErrs *obsv.Counter
	mBatches, mBatchRecords   *obsv.Counter
	mInflight                 *obsv.Gauge
}

var _ Client = (*PoolClient)(nil)
var _ BatchClient = (*PoolClient)(nil)

// DialPool connects the first pooled link (so a bad address fails fast)
// and prepares the rest for lazy dialing. The wire.* metrics register
// eagerly: a dashboard sees zeros, not absence, before traffic flows.
func DialPool(addr string, cfg PoolConfig) (*PoolClient, error) {
	cfg = cfg.withDefaults()
	p := &PoolClient{
		addr:  addr,
		dial:  cfg.Dial,
		links: make([]*poolLink, cfg.Size),
	}
	brCfg := cfg.Breaker
	brCfg.Metrics = cfg.Metrics
	brCfg.Name = "wire.breaker"
	for i := range p.links {
		p.links[i] = &poolLink{br: flow.NewBreaker(brCfg)}
	}
	if cfg.Metrics != nil {
		p.mRequests = cfg.Metrics.Counter("wire.requests")
		p.mTransportErrs = cfg.Metrics.Counter("wire.transport_errors")
		p.mBatches = cfg.Metrics.Counter("wire.batches")
		p.mBatchRecords = cfg.Metrics.Counter("wire.batch_records")
		p.mInflight = cfg.Metrics.Gauge("wire.inflight")
	}
	c, err := DialCfg(addr, p.dial)
	if err != nil {
		return nil, err
	}
	p.links[0].c = c
	return p, nil
}

// Pipelined reports whether the first live link negotiated protocol v2.
func (p *PoolClient) Pipelined() bool {
	for _, l := range p.links {
		l.mu.Lock()
		c := l.c
		l.mu.Unlock()
		if c != nil {
			return c.Pipelined()
		}
	}
	return false
}

// Close closes every pooled connection. Closing twice is a no-op.
func (p *PoolClient) Close() error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return nil
	}
	p.closed = true
	p.mu.Unlock()
	var first error
	for _, l := range p.links {
		l.mu.Lock()
		c := l.c
		l.c = nil
		l.mu.Unlock()
		if c != nil {
			if err := c.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// linkIndex picks the home link: key-hash affinity for keyed requests
// (per-key ordering survives multiplexing), round-robin otherwise.
func (p *PoolClient) linkIndex(key []byte) int {
	if len(key) == 0 {
		return int(p.rr.Add(1)) % len(p.links)
	}
	// FNV-1a, inlined to keep the hot path allocation-free.
	h := uint32(2166136261)
	for _, b := range key {
		h ^= uint32(b)
		h *= 16777619
	}
	return int(h) % len(p.links)
}

// client returns the link's connection, dialing lazily if a previous
// failure tore it down.
func (l *poolLink) client(addr string, dial DialConfig) (*TCPClient, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.c != nil {
		return l.c, nil
	}
	c, err := DialCfg(addr, dial)
	if err != nil {
		return nil, err
	}
	l.c = c
	return c, nil
}

// dropConn tears the link's connection down after a transport failure so
// the next admitted request redials fresh.
func (l *poolLink) dropConn(c *TCPClient) {
	l.mu.Lock()
	if l.c == c {
		l.c = nil
	}
	l.mu.Unlock()
	_ = c.Close()
}

// isRemoteAnswer reports whether the error is an application-level
// response relayed over a healthy link (broker sentinel, backpressure,
// generic remote failure) as opposed to a transport failure. Remote
// answers count as breaker successes: the link delivered them.
func isRemoteAnswer(err error) bool {
	if err == nil {
		return true
	}
	if brokerError(err) {
		return true
	}
	// A not-leader refusal is the broker answering (redirect), not the
	// link failing: it must not open the breaker — the same link will
	// carry the follow-up to the new leader's pool entry.
	if errors.Is(err, ErrNotLeader) {
		return true
	}
	var rf *remoteFailure
	return errors.As(err, &rf)
}

// do runs op on the key's home link, failing over to the next link whose
// breaker admits the request. All breakers open means the address is
// effectively down: flow.ErrCircuitOpen tells the caller's pacer to cut
// to its floor instead of retrying into a dead peer.
func (p *PoolClient) do(key []byte, op func(c *TCPClient) error) error {
	p.mu.Lock()
	closed := p.closed
	p.mu.Unlock()
	if closed {
		return ErrClientClosed
	}
	if p.mRequests != nil {
		p.mRequests.Inc()
	}
	if p.mInflight != nil {
		p.mInflight.Add(1)
		defer p.mInflight.Add(-1)
	}
	start := p.linkIndex(key)
	var lastErr error
	admitted := false
	for i := 0; i < len(p.links); i++ {
		l := p.links[(start+i)%len(p.links)]
		if !l.br.Allow() {
			continue
		}
		admitted = true
		c, err := l.client(p.addr, p.dial)
		if err != nil {
			l.br.OnFailure()
			if p.mTransportErrs != nil {
				p.mTransportErrs.Inc()
			}
			lastErr = err
			continue
		}
		err = op(c)
		if isRemoteAnswer(err) {
			l.br.OnSuccess()
			return err
		}
		l.br.OnFailure()
		if p.mTransportErrs != nil {
			p.mTransportErrs.Inc()
		}
		l.dropConn(c)
		lastErr = err
	}
	if !admitted {
		return flow.ErrCircuitOpen
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("stream pool %s: no usable link", p.addr)
	}
	return lastErr
}

// CreateTopic implements Client.
func (p *PoolClient) CreateTopic(name string, partitions int) error {
	return p.do(nil, func(c *TCPClient) error { return c.CreateTopic(name, partitions) })
}

// Produce implements Client. The record's key picks its home link, so
// one key's records stay ordered on one connection.
func (p *PoolClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	var part int32
	var off int64
	err := p.do(key, func(c *TCPClient) error {
		var e error
		part, off, e = c.Produce(topicName, partition, key, value)
		return e
	})
	return part, off, err
}

// Fetch implements Client.
func (p *PoolClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	var msgs []Message
	err := p.do(nil, func(c *TCPClient) error {
		var e error
		msgs, e = c.Fetch(topicName, partition, offset, max)
		return e
	})
	return msgs, err
}

// ListTopics implements Client.
func (p *PoolClient) ListTopics() ([]string, error) {
	var topics []string
	err := p.do(nil, func(c *TCPClient) error {
		var e error
		topics, e = c.ListTopics()
		return e
	})
	return topics, err
}

// PartitionCount implements Client.
func (p *PoolClient) PartitionCount(topicName string) (int, error) {
	var n int
	err := p.do(nil, func(c *TCPClient) error {
		var e error
		n, e = c.PartitionCount(topicName)
		return e
	})
	return n, err
}

// ProduceBatchInto implements BatchClient. The first record's key picks
// the home link, so a per-vehicle batch stream keeps its link affinity.
func (p *PoolClient) ProduceBatchInto(topic string, partition int32, recs []BatchRecord, res []BatchResult) error {
	if len(res) != len(recs) {
		return errBatchSize
	}
	var key []byte
	if len(recs) > 0 {
		key = recs[0].Key
	}
	if p.mBatches != nil {
		p.mBatches.Inc()
		p.mBatchRecords.Add(int64(len(recs)))
	}
	return p.do(key, func(c *TCPClient) error {
		return c.ProduceBatchInto(topic, partition, recs, res)
	})
}
