package stream

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWireDecoder hardens the binary protocol decoder against arbitrary
// payloads: whatever the bytes, decoding must neither panic nor fabricate
// a successful parse of a short buffer. Run with `go test -fuzz
// FuzzWireDecoder ./internal/stream` for continuous fuzzing; plain `go
// test` exercises the seed corpus.
func FuzzWireDecoder(f *testing.F) {
	// Seed with a valid frame and mutations of it.
	var enc wireEncoder
	enc.reset(respFetch)
	enc.messages([]Message{{
		Topic: "IN-DATA", Partition: 2, Offset: 42,
		Key: []byte("car-7"), Value: []byte("payload"),
		AppendedAt: time.Unix(0, 1467331200000000000),
	}})
	valid := append([]byte(nil), enc.frame()[5:]...)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wireDecoder{buf: data}
		msgs := dec.messages()
		if dec.err != nil {
			return // rejected, fine
		}
		// Accepted: every decoded message must be internally consistent
		// and the decoder must not have read past the buffer.
		if dec.pos > len(data) {
			t.Fatalf("decoder position %d beyond buffer %d", dec.pos, len(data))
		}
		for _, m := range msgs {
			if len(m.Topic) > len(data) || len(m.Key) > len(data) || len(m.Value) > len(data) {
				t.Fatalf("decoded fields larger than input: %+v", m)
			}
		}
	})
}

// FuzzReadFrame hardens the frame reader against corrupt length prefixes.
func FuzzReadFrame(f *testing.F) {
	var enc wireEncoder
	enc.reset(reqProduce)
	enc.str("t")
	enc.u32(0)
	enc.bytes(nil)
	enc.bytes([]byte("v"))
	f.Add(append([]byte(nil), enc.frame()...))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := readFrame(bytes.NewReader(data))
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatalf("payload %d bytes from %d-byte input", len(payload), len(data))
		}
		_ = msgType
	})
}
