package stream

import (
	"bytes"
	"testing"
	"time"
)

// FuzzWireDecoder hardens the binary protocol decoder against arbitrary
// payloads: whatever the bytes, decoding must neither panic nor fabricate
// a successful parse of a short buffer. Run with `go test -fuzz
// FuzzWireDecoder ./internal/stream` for continuous fuzzing; plain `go
// test` exercises the seed corpus.
func FuzzWireDecoder(f *testing.F) {
	// Seed with a valid frame and mutations of it.
	var enc wireEncoder
	enc.reset(respFetch)
	enc.messages([]Message{{
		Topic: "IN-DATA", Partition: 2, Offset: 42,
		Key: []byte("car-7"), Value: []byte("payload"),
		AppendedAt: time.Unix(0, 1467331200000000000),
	}})
	valid := append([]byte(nil), enc.frame()[5:]...)
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Add(valid[:len(valid)/2])

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wireDecoder{buf: data}
		msgs := dec.messages("")
		if dec.err != nil {
			return // rejected, fine
		}
		// Accepted: every decoded message must be internally consistent
		// and the decoder must not have read past the buffer.
		if dec.pos > len(data) {
			t.Fatalf("decoder position %d beyond buffer %d", dec.pos, len(data))
		}
		for _, m := range msgs {
			if len(m.Topic) > len(data) || len(m.Key) > len(data) || len(m.Value) > len(data) {
				t.Fatalf("decoded fields larger than input: %+v", m)
			}
		}
	})
}

// FuzzBatchRequestDecoder hardens the zero-copy batched-produce decoder
// against hostile frames: truncated batches, record lengths overlapping
// the frame end, zero-record batches, and implausible record counts. The
// decoder must either reject the buffer or visit exactly n in-bounds
// records, never reading past the payload.
func FuzzBatchRequestDecoder(f *testing.F) {
	// Seed with a valid two-record batch (keyed + keyless) built the same
	// way the client builds the frame header.
	var enc wireEncoder
	enc.reset(reqProduceBatch)
	enc.str("IN-DATA")
	part := int32(AutoPartition)
	enc.u32(uint32(part))
	enc.u32(2)
	enc.bytes([]byte("car-7"))
	enc.bytes([]byte("payload"))
	enc.bytes(nil)
	enc.bytes([]byte("v2"))
	valid := append([]byte(nil), enc.frame()[5:]...)
	f.Add(valid)
	// Zero-record batch.
	enc.reset(reqProduceBatch)
	enc.str("t")
	enc.u32(0)
	enc.u32(0)
	f.Add(append([]byte(nil), enc.frame()[5:]...))
	// Count promises more records than the payload holds.
	enc.reset(reqProduceBatch)
	enc.str("t")
	enc.u32(0)
	enc.u32(1000)
	enc.bytes([]byte("k"))
	enc.bytes([]byte("v"))
	f.Add(append([]byte(nil), enc.frame()[5:]...))
	// Record length prefix overlapping the end of the frame.
	overlap := append([]byte(nil), valid...)
	overlap[len(overlap)-6] = 0xff
	f.Add(overlap)
	// Truncations of the valid frame.
	f.Add(valid[:len(valid)/2])
	f.Add(valid[:len(valid)-1])
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wireDecoder{buf: data}
		visited := 0
		topic, _, n, err := decodeBatchRequest(&dec, func(i int, topic string, partition int32, key, value []byte) {
			if i != visited {
				t.Fatalf("record index %d, expected %d", i, visited)
			}
			visited++
			// Zero-copy contract: every record slice lives inside the
			// input buffer.
			if len(key) > len(data) || len(value) > len(data) {
				t.Fatalf("record %d larger than input: key=%d value=%d", i, len(key), len(value))
			}
		})
		if err != nil {
			return // rejected, fine — but the callback count still bounds visits
		}
		if visited != n {
			t.Fatalf("decoder reported %d records but visited %d", n, visited)
		}
		if dec.pos > len(data) {
			t.Fatalf("decoder position %d beyond buffer %d", dec.pos, len(data))
		}
		if len(topic) > len(data) {
			t.Fatalf("topic %d bytes from %d-byte input", len(topic), len(data))
		}
	})
}

// FuzzBatchResponseDecoder hardens the client-side parse of a batched
// produce response (the per-record status stream PendingBatch.Await
// walks).
func FuzzBatchResponseDecoder(f *testing.F) {
	var enc wireEncoder
	enc.reset(respProduceBatch)
	enc.u32(3)
	var ok [batchOKResultSize]byte
	putBatchOK(ok[:], 2, 41)
	enc.buf = append(enc.buf, ok[:]...)
	enc.byte1(batchStatusBackpressure)
	enc.u64(1500)
	enc.byte1(batchStatusError)
	enc.str("unknown topic \"nope\"")
	valid := append([]byte(nil), enc.frame()[5:]...)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{0, 0, 0, 1, 3})
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		dec := wireDecoder{buf: data}
		n := int(dec.u32())
		if dec.err != nil || n < 0 || n > maxBatchRecords {
			return
		}
		for i := 0; i < n; i++ {
			switch dec.byte1() {
			case batchStatusOK:
				dec.u32()
				dec.u64()
			case batchStatusBackpressure:
				dec.u64()
			case batchStatusError:
				dec.str()
			default:
				return
			}
			if dec.err != nil {
				return
			}
		}
		if dec.pos > len(data) {
			t.Fatalf("decoder position %d beyond buffer %d", dec.pos, len(data))
		}
	})
}

// FuzzReadFrame hardens the frame reader against corrupt length prefixes.
func FuzzReadFrame(f *testing.F) {
	var enc wireEncoder
	enc.reset(reqProduce)
	enc.str("t")
	enc.u32(0)
	enc.bytes(nil)
	enc.bytes([]byte("v"))
	f.Add(append([]byte(nil), enc.frame()...))
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		msgType, payload, err := readFrame(bytes.NewReader(data), DefaultMaxFrameSize)
		if err != nil {
			return
		}
		if len(payload) > len(data) {
			t.Fatalf("payload %d bytes from %d-byte input", len(payload), len(data))
		}
		_ = msgType
	})
}
