package stream

// TCPClient half of the replication control plane: ReplicaAppend,
// SetPartitionRole, HighWaterMark and FetchSnapshot over the wire, so a
// replication controller can drive followers on other machines through
// the same ReplicaLink interface the in-process path uses. These are
// control-plane calls (cold relative to produce/fetch), so the pipelined
// variants use the generic pipeDo closure path.

import (
	"encoding/json"
	"fmt"
)

// encodeReplicate writes a reqReplicate body (after reset) into enc.
func encodeReplicate(enc *wireEncoder, topicName string, partition int32, epoch, base int64, recs []ReplicaRecord) {
	enc.str(topicName)
	enc.u32(uint32(partition))
	enc.u64(uint64(epoch))
	enc.u64(uint64(base))
	enc.u32(uint32(len(recs)))
	for i := range recs {
		enc.bytes(recs[i].Key)
		enc.bytes(recs[i].Value)
		enc.u64(uint64(recs[i].AppendedAtNs))
	}
}

// ReplicaAppend implements ReplicaLink over the wire. It returns the
// remote follower's new high watermark.
func (c *TCPClient) ReplicaAppend(topicName string, partition int32, epoch, base int64, recs []ReplicaRecord) (int64, error) {
	var msgType byte
	var dec wireDecoder
	var err error
	if c.pipe != nil {
		msgType, dec, err = c.pipeDo(reqReplicate, func(enc *wireEncoder) {
			encodeReplicate(enc, topicName, partition, epoch, base, recs)
		})
	} else {
		c.mu.Lock()
		c.enc.reset(reqReplicate)
		encodeReplicate(&c.enc, topicName, partition, epoch, base, recs)
		msgType, dec, err = c.roundTrip()
		c.mu.Unlock()
	}
	if err != nil {
		return 0, err
	}
	if msgType != respReplicate {
		dec.release()
		return 0, errUnexpectedResponse(msgType)
	}
	hwm := int64(dec.u64())
	err = dec.err
	dec.release()
	return hwm, err
}

// SetPartitionRole implements ReplicaLink over the wire.
func (c *TCPClient) SetPartitionRole(topicName string, partition int32, follower bool, epoch int64, leaderHint string) error {
	encode := func(enc *wireEncoder) {
		enc.str(topicName)
		enc.u32(uint32(partition))
		if follower {
			enc.byte1(1)
		} else {
			enc.byte1(0)
		}
		enc.u64(uint64(epoch))
		enc.str(leaderHint)
	}
	var dec wireDecoder
	var err error
	if c.pipe != nil {
		_, dec, err = c.pipeDo(reqSetRole, encode)
	} else {
		c.mu.Lock()
		c.enc.reset(reqSetRole)
		encode(&c.enc)
		_, dec, err = c.roundTrip()
		c.mu.Unlock()
	}
	if err != nil {
		return err
	}
	dec.release()
	return nil
}

// HighWaterMark asks the remote broker for a partition's next offset —
// the replication-lag probe.
func (c *TCPClient) HighWaterMark(topicName string, partition int32) (int64, error) {
	encode := func(enc *wireEncoder) {
		enc.str(topicName)
		enc.u32(uint32(partition))
	}
	var msgType byte
	var dec wireDecoder
	var err error
	if c.pipe != nil {
		msgType, dec, err = c.pipeDo(reqHighWater, encode)
	} else {
		c.mu.Lock()
		c.enc.reset(reqHighWater)
		encode(&c.enc)
		msgType, dec, err = c.roundTrip()
		c.mu.Unlock()
	}
	if err != nil {
		return 0, err
	}
	if msgType != respHighWater {
		dec.release()
		return 0, errUnexpectedResponse(msgType)
	}
	hwm := int64(dec.u64())
	err = dec.err
	dec.release()
	return hwm, err
}

// FetchSnapshot pulls the remote broker's full snapshot — the follower
// bootstrap path when the replica lives on another machine. Large logs
// may need a raised MaxFrameSize on both ends.
func (c *TCPClient) FetchSnapshot() (*BrokerSnapshot, error) {
	var msgType byte
	var dec wireDecoder
	var err error
	if c.pipe != nil {
		msgType, dec, err = c.pipeDo(reqSnapshot, nil)
	} else {
		c.mu.Lock()
		c.enc.reset(reqSnapshot)
		msgType, dec, err = c.roundTrip()
		c.mu.Unlock()
	}
	if err != nil {
		return nil, err
	}
	if msgType != respSnapshot {
		dec.release()
		return nil, errUnexpectedResponse(msgType)
	}
	data := dec.raw()
	var snap BrokerSnapshot
	uerr := json.Unmarshal(data, &snap)
	dec.release()
	if uerr != nil {
		return nil, fmt.Errorf("stream: decode snapshot: %w", uerr)
	}
	return &snap, nil
}
