package stream

// Per-partition leader/follower replication: the broker-side half of the
// replicated cluster (see DESIGN.md §13). Each (topic, partition) carries
// a replication role — leader or follower — and a fencing epoch. Clients
// may only produce to the leader; followers answer ErrNotLeader with a
// hint naming the current leader, which RetryClient follows. Leaders ship
// their log suffix to followers with ReplicaAppend, which enforces two
// invariants:
//
//   - epoch fencing: an append claiming an epoch older than the
//     partition's current one is a deposed leader replaying buffered
//     frames, and every record of it is rejected with ErrFencedEpoch;
//   - log contiguity: an append must start exactly at the follower's high
//     watermark. Starting below it is a benign overlap (the duplicate
//     prefix is skipped — replication is idempotent); starting above it
//     is ErrOffsetGap, the signal that the follower needs a snapshot
//     bootstrap (ReplicaSet.Revive) before it can tail the log again.
//
// A broker that never hears about replication (no SetPartitionRole call)
// leads every partition at epoch 0, so standalone deployments are
// unchanged.

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Replication errors, matched with errors.Is.
var (
	// ErrNotLeader rejects a produce addressed to a follower partition.
	// The concrete error usually carries a leader hint (LeaderHint) and a
	// retry-after estimate (flow.RetryAfter) covering election settle
	// time.
	ErrNotLeader = errors.New("stream: not partition leader")
	// ErrFencedEpoch rejects a replica append (or role change) carrying a
	// stale leadership epoch — the sender was deposed.
	ErrFencedEpoch = errors.New("stream: fenced: stale leader epoch")
	// ErrOffsetGap rejects a replica append that does not start at the
	// follower's high watermark: the follower missed a range and must
	// bootstrap from a leader snapshot.
	ErrOffsetGap = errors.New("stream: replica offset gap")
)

// DefaultLeaderRetryHint is the retry-after estimate attached to
// ErrNotLeader refusals: roughly one election settle interval, so
// failed-over producers back off past the leadership change instead of
// hammering the deposed follower.
const DefaultLeaderRetryHint = 20 * time.Millisecond

// notLeaderError is the concrete ErrNotLeader: it names the current
// leader (when known) and carries a retry-after hint. The Error text is
// parsed back by remoteError, so the leader hint survives the wire.
type notLeaderError struct {
	leader string
	hint   time.Duration
}

func (e *notLeaderError) Error() string {
	if e.leader == "" {
		return ErrNotLeader.Error()
	}
	return ErrNotLeader.Error() + " leader=" + e.leader
}

func (e *notLeaderError) Is(target error) bool      { return target == ErrNotLeader }
func (e *notLeaderError) Leader() string            { return e.leader }
func (e *notLeaderError) RetryAfter() time.Duration { return e.hint }

// LeaderHint extracts the new-leader address from an ErrNotLeader (ok is
// false when the error carries no hint). RetryClient uses it to redial
// the leader instead of the deposed follower.
func LeaderHint(err error) (string, bool) {
	for err != nil {
		if nl, ok := err.(interface{ Leader() string }); ok {
			return nl.Leader(), nl.Leader() != ""
		}
		err = errors.Unwrap(err)
	}
	return "", false
}

// parseNotLeader reconstructs a notLeaderError from its wire rendering
// ("stream: not partition leader leader=<addr> retry-after-us=<n>").
func parseNotLeader(msg string) *notLeaderError {
	e := &notLeaderError{}
	for _, tok := range strings.Fields(msg) {
		if v, ok := strings.CutPrefix(tok, "leader="); ok {
			e.leader = v
		}
		if v, ok := strings.CutPrefix(tok, "retry-after-us="); ok {
			if us, err := strconv.ParseInt(v, 10, 64); err == nil {
				e.hint = time.Duration(us) * time.Microsecond
			}
		}
	}
	return e
}

// AckLevel selects how many replicas must hold a record before Produce
// acknowledges it, mirroring Kafka's acks setting. The zero value is
// AckLeader.
type AckLevel int8

const (
	// AckLeader (acks=1, the default): the partition leader appended the
	// record. A leader lost before replicating it loses the record.
	AckLeader AckLevel = iota
	// AckNone (acks=0): fire-and-forget. The record is sent with no
	// durability claim at all.
	AckNone
	// AckAll (acks=all): every in-sync replica holds the record before
	// the produce returns. Leader loss cannot lose an acked record —
	// elections only promote ISR members.
	AckAll
)

// String renders the Kafka-style setting name.
func (a AckLevel) String() string {
	switch a {
	case AckNone:
		return "0"
	case AckAll:
		return "all"
	default:
		return "1"
	}
}

// partRole is one partition's replication role on this broker.
type partRole struct {
	follower bool
	epoch    int64
	leader   string // hint handed to refused producers
}

// ReplicaRecord is one record of a replica append: the leader's payload
// plus its original append timestamp, so follower retention decisions
// match the leader's.
type ReplicaRecord struct {
	Key          []byte
	Value        []byte
	AppendedAtNs int64
}

// ReplicaLink is the transport a replication controller uses to reach
// one replica: in-process it is the *Broker itself, across machines a
// *TCPClient, and chaos tests interpose a fault-injecting wrapper.
type ReplicaLink interface {
	ReplicaAppend(topicName string, partition int32, epoch, base int64, recs []ReplicaRecord) (int64, error)
	SetPartitionRole(topicName string, partition int32, follower bool, epoch int64, leaderHint string) error
}

var (
	_ ReplicaLink = (*Broker)(nil)
	_ ReplicaLink = (*TCPClient)(nil)
)

// SetPartitionRole installs a partition's replication role: follower or
// leader, the leadership epoch, and the leader hint refused producers
// receive. A role change carrying an epoch older than the current one is
// a deposed controller and is fenced.
func (b *Broker) SetPartitionRole(topicName string, partition int32, follower bool, epoch int64, leaderHint string) error {
	b.mu.RLock()
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	if partition < 0 || int(partition) >= len(t.partitions) {
		return fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	b.roleMu.Lock()
	defer b.roleMu.Unlock()
	m, ok := b.roles[topicName]
	if !ok {
		m = make(map[int32]partRole)
		b.roles[topicName] = m
	}
	if cur, ok := m[partition]; ok && epoch < cur.epoch {
		return fmt.Errorf("%w: %q/%d at epoch %d, role change claims %d",
			ErrFencedEpoch, topicName, partition, cur.epoch, epoch)
	}
	m[partition] = partRole{follower: follower, epoch: epoch, leader: leaderHint}
	return nil
}

// PartitionRole reports a partition's current role. Partitions never
// told otherwise lead at epoch 0.
func (b *Broker) PartitionRole(topicName string, partition int32) (follower bool, epoch int64, leader string) {
	b.roleMu.RLock()
	r := b.roles[topicName][partition]
	b.roleMu.RUnlock()
	return r.follower, r.epoch, r.leader
}

// leaderCheck refuses produces addressed to follower partitions with the
// current leader hint.
func (b *Broker) leaderCheck(topicName string, partition int32) error {
	b.roleMu.RLock()
	r := b.roles[topicName][partition]
	b.roleMu.RUnlock()
	if !r.follower {
		return nil
	}
	return &notLeaderError{leader: r.leader, hint: DefaultLeaderRetryHint}
}

// ReplicaAppend appends a leader's log suffix to a follower partition,
// enforcing epoch fencing and log contiguity (see the package comment
// above). base is the offset of recs[0] on the leader. The overlap with
// what the follower already holds is skipped, making retried replication
// idempotent. It returns the follower's new high watermark.
//
// An append claiming a NEWER epoch than the follower knows is the first
// contact from a freshly elected leader whose role push raced the data
// path: the follower adopts the new epoch (and follower role), exactly
// like a Kafka replica learning leadership from the fetch response.
func (b *Broker) ReplicaAppend(topicName string, partition int32, epoch, base int64, recs []ReplicaRecord) (int64, error) {
	b.mu.RLock()
	if b.closed {
		b.mu.RUnlock()
		return 0, ErrBrokerClosed
	}
	t, ok := b.topics[topicName]
	b.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	if partition < 0 || int(partition) >= len(t.partitions) {
		return 0, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}

	b.roleMu.Lock()
	m, ok := b.roles[topicName]
	if !ok {
		m = make(map[int32]partRole)
		b.roles[topicName] = m
	}
	cur := m[partition]
	if epoch < cur.epoch {
		b.roleMu.Unlock()
		if b.mReplFenced != nil {
			b.mReplFenced.Add(int64(len(recs)))
		}
		return 0, fmt.Errorf("%w: %q/%d at epoch %d, append claims %d",
			ErrFencedEpoch, topicName, partition, cur.epoch, epoch)
	}
	if epoch > cur.epoch {
		m[partition] = partRole{follower: true, epoch: epoch, leader: cur.leader}
	}
	b.roleMu.Unlock()

	hwm, appended, err := t.partitions[partition].appendReplica(topicName, partition, base, recs)
	if err != nil {
		return 0, fmt.Errorf("%w: %q/%d", err, topicName, partition)
	}
	if appended > 0 && b.mReplRecords != nil {
		b.mReplRecords.Add(int64(appended))
	}
	return hwm, nil
}

// ReplicaSnapshot adapts Snapshot to the error-returning shape remote
// links need (a TCPClient's snapshot fetch can fail in transport).
func (b *Broker) ReplicaSnapshot() (*BrokerSnapshot, error) {
	return b.Snapshot(), nil
}

// appendReplica installs a leader log suffix starting at base, skipping
// the already-held overlap and preserving the leader's offsets and
// append timestamps (retention parity). Replicated records enter a
// flow-controlled partition as credit debt, like a snapshot restore —
// replication is never shed, the leader already admitted the records.
func (l *partitionLog) appendReplica(topicName string, partition int32, base int64, recs []ReplicaRecord) (hwm int64, appended int, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cur := l.base + int64(len(l.msgs))
	if base > cur {
		return cur, 0, ErrOffsetGap
	}
	skip := int(cur - base)
	if skip >= len(recs) {
		return cur, 0, nil // fully duplicate: idempotent no-op
	}
	recs = recs[skip:]
	if len(l.msgs) == 0 && len(recs) > 0 {
		// Empty log (fresh bootstrap): adopt the leader's base so a
		// snapshot-restored or brand-new follower can tail from wherever
		// the leader's retention window starts.
		l.base = base + int64(skip)
		cur = l.base
	}
	var lastStamp time.Time
	for i := range recs {
		m := pooledCloneMessage(Message{
			Topic:     topicName,
			Partition: partition,
			Key:       recs[i].Key,
			Value:     recs[i].Value,
		})
		m.Offset = cur + int64(i)
		m.AppendedAt = time.Unix(0, recs[i].AppendedAtNs)
		lastStamp = m.AppendedAt
		l.msgs = append(l.msgs, m)
	}
	appended = len(recs)
	if l.gate != nil {
		l.gate.Acquire(int64(appended))
	}
	for len(l.msgs) > l.maxRetained {
		l.dropLocked(len(l.msgs) / 2)
	}
	if l.maxAge > 0 {
		cutoff := lastStamp.Add(-l.maxAge)
		drop := 0
		for drop < len(l.msgs)-1 && l.msgs[drop].AppendedAt.Before(cutoff) {
			drop++
		}
		if drop > 0 {
			l.dropLocked(drop)
		}
	}
	return l.base + int64(len(l.msgs)), appended, nil
}
