package stream

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"cad3/internal/obsv"
)

func routerBroker(t *testing.T) *Broker {
	t.Helper()
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic(TopicCoData, 2); err != nil {
		t.Fatal(err)
	}
	return b
}

func drainTopic(t *testing.T, b *Broker, topic string) []Message {
	t.Helper()
	var all []Message
	parts, err := b.PartitionCount(topic)
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < parts; p++ {
		msgs, err := b.Fetch(topic, int32(p), 0, 1000)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, msgs...)
	}
	return all
}

func TestRouterForwardsInOrderPerDest(t *testing.T) {
	reg := obsv.NewRegistry()
	r := NewSummaryRouter(RouterConfig{Metrics: reg})
	b1, b2 := routerBroker(t), routerBroker(t)
	if err := r.Register("shard-1", NewInProcClient(b1)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("shard-2", NewInProcClient(b2)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		dest := "shard-1"
		if i%2 == 1 {
			dest = "shard-2"
		}
		key := []byte(fmt.Sprintf("car-%d", i))
		if err := r.Forward(dest, key, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := r.Pending(); got != 10 {
		t.Fatalf("pending = %d, want 10", got)
	}
	sent, err := r.Flush()
	if err != nil || sent != 10 {
		t.Fatalf("flush = (%d, %v), want (10, nil)", sent, err)
	}
	if got := r.Pending(); got != 0 {
		t.Fatalf("pending after flush = %d", got)
	}
	// Keyed produce lands each car on a stable partition; per-partition
	// order must match forward order (FIFO within the queue).
	for bi, b := range []*Broker{b1, b2} {
		msgs := drainTopic(t, b, TopicCoData)
		if len(msgs) != 5 {
			t.Fatalf("broker %d holds %d messages, want 5", bi+1, len(msgs))
		}
		RecycleMessages(msgs)
	}
	snap := reg.Snapshot()
	if snap.Counters["shard.router.forwards"] != 10 || snap.Counters["shard.router.sent"] != 10 {
		t.Fatalf("router counters off: %+v", snap.Counters)
	}
}

func TestRouterUnknownDest(t *testing.T) {
	r := NewSummaryRouter(RouterConfig{})
	if err := r.Forward("nowhere", nil, []byte("x")); !errors.Is(err, ErrUnknownDest) {
		t.Fatalf("err = %v, want ErrUnknownDest", err)
	}
}

// TestRouterRetriesAcrossOutage: a destination whose broker is down
// keeps its backlog queued in order and delivers it once the broker
// heals — at-least-once across the outage, other destinations
// unaffected.
func TestRouterRetriesAcrossOutage(t *testing.T) {
	reg := obsv.NewRegistry()
	r := NewSummaryRouter(RouterConfig{Metrics: reg})
	down, up := routerBroker(t), routerBroker(t)
	if err := r.Register("down", NewInProcClient(down)); err != nil {
		t.Fatal(err)
	}
	if err := r.Register("up", NewInProcClient(up)); err != nil {
		t.Fatal(err)
	}
	down.SetPartitionDown(TopicCoData, 0, true)
	down.SetPartitionDown(TopicCoData, 1, true)
	for i := 0; i < 4; i++ {
		if err := r.Forward("down", []byte("k"), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := r.Forward("up", []byte("k"), []byte("ok")); err != nil {
		t.Fatal(err)
	}
	sent, err := r.Flush()
	if err == nil {
		t.Fatal("flush against a down partition reported no error")
	}
	if sent != 1 {
		t.Fatalf("flush delivered %d, want 1 (the healthy destination)", sent)
	}
	if got := r.Pending(); got != 4 {
		t.Fatalf("pending = %d, want the 4 queued for the down shard", got)
	}
	down.SetPartitionDown(TopicCoData, 0, false)
	down.SetPartitionDown(TopicCoData, 1, false)
	if sent, err := r.Flush(); err != nil || sent != 4 {
		t.Fatalf("post-heal flush = (%d, %v), want (4, nil)", sent, err)
	}
	msgs := drainTopic(t, down, TopicCoData)
	if len(msgs) != 4 {
		t.Fatalf("healed broker holds %d messages, want 4", len(msgs))
	}
	for i, m := range msgs {
		if m.Value[0] != byte(i) {
			t.Fatalf("message %d out of order: value %v", i, m.Value)
		}
	}
	RecycleMessages(msgs)
	if reg.Snapshot().Counters["shard.router.retries"] == 0 {
		t.Fatal("no retry was counted across the outage")
	}
}

// TestRouterOverWireClient runs a destination over the real v2 wire
// protocol (pooled pipelined TCP client), the deployment shape for
// cross-process shards.
func TestRouterOverWireClient(t *testing.T) {
	b := routerBroker(t)
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	pool, err := DialPool(srv.Addr(), PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	r := NewSummaryRouter(RouterConfig{})
	if err := r.Register("remote", pool); err != nil {
		t.Fatal(err)
	}
	defer r.Close() // closes the pool
	for i := 0; i < 8; i++ {
		if err := r.Forward("remote", []byte(fmt.Sprintf("car-%d", i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if sent, err := r.Flush(); err != nil || sent != 8 {
		t.Fatalf("wire flush = (%d, %v), want (8, nil)", sent, err)
	}
	msgs := drainTopic(t, b, TopicCoData)
	if len(msgs) != 8 {
		t.Fatalf("wire destination holds %d messages, want 8", len(msgs))
	}
	RecycleMessages(msgs)
}

// TestRouterRunStop covers the periodic wall-clock flusher's lifecycle.
func TestRouterRunStop(t *testing.T) {
	r := NewSummaryRouter(RouterConfig{})
	b := routerBroker(t)
	if err := r.Register("s", NewInProcClient(b)); err != nil {
		t.Fatal(err)
	}
	if err := r.Forward("s", nil, []byte("x")); err != nil {
		t.Fatal(err)
	}
	r.Run(time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for r.Pending() > 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	r.Stop()
	r.Stop() // idempotent
	if got := r.Pending(); got != 0 {
		t.Fatalf("periodic flusher left %d pending", got)
	}
}

// gatedClient blocks every Produce until released, signalling entry, so
// tests can observe what the router keeps responsive mid-produce.
type gatedClient struct {
	Client
	entered chan struct{}
	release chan struct{}
}

func (c *gatedClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	select {
	case c.entered <- struct{}{}:
	default: // later rounds: nobody is watching for entry any more
	}
	<-c.release
	return c.Client.Produce(topicName, partition, key, value)
}

// TestRouterFlushReleasesLockDuringProduce is the regression test for
// Flush holding r.mu across the network round trip: with a produce in
// flight, Forward and the pending gauge must still complete, and a
// concurrent Flush must skip instead of queueing behind the round.
func TestRouterFlushReleasesLockDuringProduce(t *testing.T) {
	r := NewSummaryRouter(RouterConfig{})
	b := routerBroker(t)
	gc := &gatedClient{
		Client:  NewInProcClient(b),
		entered: make(chan struct{}),
		release: make(chan struct{}),
	}
	if err := r.Register("s", gc); err != nil {
		t.Fatal(err)
	}
	if err := r.Forward("s", nil, []byte("first")); err != nil {
		t.Fatal(err)
	}

	flushed := make(chan struct{})
	go func() {
		defer close(flushed)
		if sent, err := r.Flush(); err != nil || sent != 1 {
			t.Errorf("flush = (%d, %v), want (1, nil)", sent, err)
		}
	}()
	<-gc.entered // the produce is now in flight

	// Forward and Pending must not block behind the produce. Run them
	// in a goroutine so a regression fails the test instead of hanging it.
	ok := make(chan struct{})
	go func() {
		defer close(ok)
		if err := r.Forward("s", nil, []byte("second")); err != nil {
			t.Errorf("forward during flush: %v", err)
		}
		if got := r.Pending(); got != 2 {
			t.Errorf("pending during flush = %d, want 2 (snapshot not yet trimmed)", got)
		}
	}()
	select {
	case <-ok:
	case <-time.After(2 * time.Second):
		t.Fatal("Forward/Pending blocked while Flush held a produce in flight")
	}

	// A concurrent Flush skips the in-flight round instead of stacking.
	if sent, err := r.Flush(); sent != 0 || err != nil {
		t.Fatalf("concurrent flush = (%d, %v), want (0, nil) skip", sent, err)
	}

	close(gc.release)
	<-flushed

	// The entry forwarded mid-flush stayed queued; the next round takes it.
	if got := r.Pending(); got != 1 {
		t.Fatalf("pending after flush = %d, want 1", got)
	}
	if sent, err := r.Flush(); err != nil || sent != 1 {
		t.Fatalf("second flush = (%d, %v), want (1, nil)", sent, err)
	}
	msgs := drainTopic(t, b, TopicCoData)
	if len(msgs) != 2 {
		t.Fatalf("destination holds %d messages, want 2", len(msgs))
	}
	// AutoPartition round-robins, so drain order across partitions is
	// not produce order; both entries arriving exactly once is the
	// at-least-once + trim-reconciliation property under test.
	seen := map[string]int{}
	for _, m := range msgs {
		seen[string(m.Value)]++
	}
	if seen["first"] != 1 || seen["second"] != 1 {
		t.Fatalf("delivery across split flushes = %v, want exactly one of each", seen)
	}
	RecycleMessages(msgs)
}
