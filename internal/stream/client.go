package stream

import "cad3/internal/flow"

// Client abstracts access to a broker: the in-process client binds
// directly, the TCP client speaks the wire protocol. Producers and
// consumers are written against this interface so the same pipeline code
// runs in simulation and over a real network.
type Client interface {
	// CreateTopic creates a topic (no-op if it exists identically).
	CreateTopic(name string, partitions int) error
	// Produce appends a message; partition AutoPartition auto-selects.
	Produce(topicName string, partition int32, key, value []byte) (int32, int64, error)
	// Fetch reads up to max messages from offset.
	Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error)
	// PartitionCount returns the topic's partition count.
	PartitionCount(topicName string) (int, error)
	// ListTopics returns the broker's topic names, sorted.
	ListTopics() ([]string, error)
	// Close releases the client.
	Close() error
}

// InProcClient is a Client bound directly to an in-memory Broker.
type InProcClient struct {
	broker *Broker
}

var _ Client = (*InProcClient)(nil)
var _ BatchClient = (*InProcClient)(nil)

// NewInProcClient binds a client to a broker.
func NewInProcClient(b *Broker) *InProcClient { return &InProcClient{broker: b} }

// CreateTopic implements Client.
func (c *InProcClient) CreateTopic(name string, partitions int) error {
	return c.broker.CreateTopic(name, partitions)
}

// Produce implements Client.
func (c *InProcClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	return c.broker.Produce(topicName, partition, key, value)
}

// Fetch implements Client.
func (c *InProcClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	return c.broker.Fetch(topicName, partition, offset, max)
}

// PartitionCount implements Client.
func (c *InProcClient) PartitionCount(topicName string) (int, error) {
	return c.broker.PartitionCount(topicName)
}

// ListTopics implements Client.
func (c *InProcClient) ListTopics() ([]string, error) {
	return c.broker.Topics(), nil
}

// ProduceBatchInto implements BatchClient: the broker's single-pass
// batch append, without a wire in between. Matching the TCP client,
// failures are reported per record in res; the call itself only errors
// on a res/recs length mismatch.
func (c *InProcClient) ProduceBatchInto(topic string, partition int32, recs []BatchRecord, res []BatchResult) error {
	if len(res) != len(recs) {
		return errBatchSize
	}
	err := c.broker.ProduceBatch(topic, partition, recs, func(i int, part int32, off int64, perr error) {
		res[i] = BatchResult{Partition: part, Offset: off, Err: perr}
		if perr != nil {
			if hint, ok := flow.RetryAfter(perr); ok {
				res[i].RetryAfter = hint
			}
		}
	})
	if err != nil {
		// Whole-batch refusal (unknown topic, closed broker): every record
		// failed the same way.
		for i := range res {
			res[i] = BatchResult{Err: err}
		}
	}
	return nil
}

// Close implements Client. The underlying broker stays open — it may be
// shared by other clients.
func (c *InProcClient) Close() error { return nil }
