package stream

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"cad3/internal/obsv"
)

// fetchReplicaRecords reads a broker's full partition log as the
// ReplicaRecord batch a (deposed) leader would ship — the shape of a
// buffered v2 replication frame.
func fetchReplicaRecords(t *testing.T, b *Broker, topic string, part int32) []ReplicaRecord {
	t.Helper()
	msgs, err := b.Fetch(topic, part, 0, 1024)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]ReplicaRecord, len(msgs))
	for i := range msgs {
		recs[i] = ReplicaRecord{
			Key:          append([]byte(nil), msgs[i].Key...),
			Value:        append([]byte(nil), msgs[i].Value...),
			AppendedAtNs: msgs[i].AppendedAt.UnixNano(),
		}
	}
	RecycleMessages(msgs)
	return recs
}

// TestEpochFencingDeposedLeaderReplay is the table-driven fencing drill:
// at every ack level, a leader is deposed by an election and then
// replays the replication batch it had buffered before dying. Every
// record of the replay must be rejected with ErrFencedEpoch and the new
// leader's log must not move — otherwise a zombie leader could fork the
// log after a failover.
func TestEpochFencingDeposedLeaderReplay(t *testing.T) {
	for _, tc := range []struct {
		name string
		acks AckLevel
	}{
		{"acks=0", AckNone},
		{"acks=1", AckLeader},
		{"acks=all", AckAll},
	} {
		t.Run(tc.name, func(t *testing.T) {
			bA := NewBroker(BrokerConfig{})
			bB := NewBroker(BrokerConfig{})
			rs, err := NewReplicaSet(ReplicaSetConfig{},
				Replica{ID: "rA", Broker: bA},
				Replica{ID: "rB", Broker: bB})
			if err != nil {
				t.Fatal(err)
			}
			if err := rs.CreateTopic(TopicInData, 1); err != nil {
				t.Fatal(err)
			}
			const n = 5
			for i := 0; i < n; i++ {
				k := []byte(fmt.Sprintf("car-%d", i))
				if _, _, err := rs.Produce(TopicInData, 0, k, []byte("obs"), tc.acks); err != nil {
					t.Fatalf("produce %d at %s: %v", i, tc.acks, err)
				}
			}
			// Sync the follower (acks=0/1 do not replicate inline), then
			// capture the batch the leader would have in flight.
			rs.Tick()
			replay := fetchReplicaRecords(t, bA, TopicInData, 0)
			if len(replay) != n {
				t.Fatalf("leader holds %d records, want %d", len(replay), n)
			}

			// Depose: kill rA, elect rB at a bumped epoch.
			if err := rs.Kill("rA"); err != nil {
				t.Fatal(err)
			}
			rs.Tick()
			leader, epoch, ok := rs.Leader(TopicInData, 0)
			if leader != "rB" || !ok {
				t.Fatalf("leader after election = %q (alive=%v), want rB", leader, ok)
			}
			if epoch != 1 {
				t.Fatalf("epoch after election = %d, want 1", epoch)
			}
			before, err := bB.HighWaterMark(TopicInData, 0)
			if err != nil {
				t.Fatal(err)
			}
			if before != n {
				t.Fatalf("new leader HWM = %d, want %d", before, n)
			}

			// The deposed leader replays its buffered batch at its old epoch
			// (0): whole-batch and per-record replays are both fenced.
			if _, err := bB.ReplicaAppend(TopicInData, 0, 0, 0, replay); !errors.Is(err, ErrFencedEpoch) {
				t.Errorf("batch replay err = %v, want ErrFencedEpoch", err)
			}
			for i := range replay {
				_, err := bB.ReplicaAppend(TopicInData, 0, 0, int64(i), replay[i:i+1])
				if !errors.Is(err, ErrFencedEpoch) {
					t.Errorf("record %d replay err = %v, want ErrFencedEpoch", i, err)
				}
			}
			// A stale role push from the deposed controller view is fenced
			// the same way.
			if err := bB.SetPartitionRole(TopicInData, 0, true, 0, "rA"); !errors.Is(err, ErrFencedEpoch) {
				t.Errorf("stale role push err = %v, want ErrFencedEpoch", err)
			}

			after, err := bB.HighWaterMark(TopicInData, 0)
			if err != nil {
				t.Fatal(err)
			}
			if after != before {
				t.Errorf("replay moved the new leader's HWM: %d -> %d", before, after)
			}
		})
	}
}

// TestEpochFencingOverWire replays a deposed leader's batch through the
// TCP control plane: the fencing error must survive the wire as
// ErrFencedEpoch (so remote controllers stop retrying instead of
// treating it as a transport failure).
func TestEpochFencingOverWire(t *testing.T) {
	b, s := startServer(t)
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	// The follower has already heard from the epoch-2 leader.
	if err := b.SetPartitionRole(TopicInData, 0, true, 2, "r-new"); err != nil {
		t.Fatal(err)
	}
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	recs := []ReplicaRecord{{Key: []byte("k"), Value: []byte("v"), AppendedAtNs: 1}}
	if _, err := c.ReplicaAppend(TopicInData, 0, 1, 0, recs); !errors.Is(err, ErrFencedEpoch) {
		t.Errorf("wire replay err = %v, want ErrFencedEpoch", err)
	}
	if err := c.SetPartitionRole(TopicInData, 0, false, 1, ""); !errors.Is(err, ErrFencedEpoch) {
		t.Errorf("wire role push err = %v, want ErrFencedEpoch", err)
	}
	hwm, err := c.HighWaterMark(TopicInData, 0)
	if err != nil || hwm != 0 {
		t.Errorf("follower HWM = %d, %v after fenced replay, want 0", hwm, err)
	}
	// The current epoch is accepted: the fence is on staleness, not on
	// replication itself.
	if hwm, err := c.ReplicaAppend(TopicInData, 0, 2, 0, recs); err != nil || hwm != 1 {
		t.Errorf("current-epoch append = %d, %v, want 1", hwm, err)
	}
}

// TestReplicaSetKillElectReviveZeroLoss walks the full failover arc
// in-process: acked-at-all records survive a zero-warning leader kill,
// the election promotes a caught-up ISR member, and the revived replica
// rebuilds from a peer snapshot and rejoins every ISR.
func TestReplicaSetKillElectReviveZeroLoss(t *testing.T) {
	reg := obsv.NewRegistry()
	mk := func() *Broker { return NewBroker(BrokerConfig{}) }
	rs, err := NewReplicaSet(ReplicaSetConfig{Metrics: reg},
		Replica{ID: "r0", Broker: mk()},
		Replica{ID: "r1", Broker: mk()},
		Replica{ID: "r2", Broker: mk()})
	if err != nil {
		t.Fatal(err)
	}
	const parts = 2
	if err := rs.CreateTopic(TopicInData, parts); err != nil {
		t.Fatal(err)
	}

	// Acked ledger: everything produced at acks=all, keyed for stable
	// partition affinity.
	type acked struct {
		part int32
		off  int64
		key  string
	}
	var ledger []acked
	produce := func(i int) error {
		k := fmt.Sprintf("car-%d", i)
		part, off, err := rs.Produce(TopicInData, AutoPartition, []byte(k), []byte("obs"), AckAll)
		if err != nil {
			return err
		}
		ledger = append(ledger, acked{part, off, k})
		return nil
	}
	for i := 0; i < 20; i++ {
		if err := produce(i); err != nil {
			t.Fatal(err)
		}
	}

	// Kill partition 0's leader with zero warning.
	victim, epoch0, ok := rs.Leader(TopicInData, 0)
	if !ok || victim != "r0" {
		t.Fatalf("initial leader = %q (alive=%v), want r0", victim, ok)
	}
	if err := rs.Kill(victim); err != nil {
		t.Fatal(err)
	}
	// The leaderless window refuses produces with ErrNotLeader.
	if _, _, err := rs.Produce(TopicInData, 0, []byte("x"), []byte("y"), AckAll); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("leaderless produce err = %v, want ErrNotLeader", err)
	}
	if _, err := rs.Fetch(TopicInData, 0, 0, 1); !errors.Is(err, ErrNotLeader) {
		t.Fatalf("leaderless fetch err = %v, want ErrNotLeader", err)
	}

	// Election: a caught-up ISR member takes over at a bumped epoch.
	rs.Tick()
	leader, epoch1, ok := rs.Leader(TopicInData, 0)
	if !ok || leader == victim {
		t.Fatalf("post-election leader = %q (alive=%v)", leader, ok)
	}
	if epoch1 <= epoch0 {
		t.Errorf("epoch did not advance: %d -> %d", epoch0, epoch1)
	}
	// Service resumes, still at acks=all, with one replica down.
	for i := 20; i < 30; i++ {
		if err := produce(i); err != nil {
			t.Fatal(err)
		}
	}

	// Revive the victim and let a Tick sync it back into the ISR.
	if _, err := rs.Revive(victim); err != nil {
		t.Fatal(err)
	}
	rs.Tick()

	// Zero acked loss: every ledger entry is still readable at its acked
	// (partition, offset) with its original key.
	for p := int32(0); p < parts; p++ {
		msgs, err := rs.Fetch(TopicInData, p, 0, 1024)
		if err != nil {
			t.Fatal(err)
		}
		got := make(map[int64]string, len(msgs))
		for i := range msgs {
			got[msgs[i].Offset] = string(msgs[i].Key)
		}
		RecycleMessages(msgs)
		for _, a := range ledger {
			if a.part != p {
				continue
			}
			if got[a.off] != a.key {
				t.Errorf("acked record %q lost: partition %d offset %d holds %q", a.key, p, a.off, got[a.off])
			}
		}
	}

	// The revived replica holds the full log (it may even lead partitions
	// it still owned), and the cluster is back at full ISR strength.
	rb, alive, err := rs.BrokerFor(victim)
	if err != nil || !alive {
		t.Fatalf("BrokerFor(%q) = alive=%v, %v", victim, alive, err)
	}
	for p := int32(0); p < parts; p++ {
		lid, _, _ := rs.Leader(TopicInData, p)
		lb, _, err := rs.BrokerFor(lid)
		if err != nil {
			t.Fatal(err)
		}
		want, _ := lb.HighWaterMark(TopicInData, p)
		got, _ := rb.HighWaterMark(TopicInData, p)
		if got != want {
			t.Errorf("revived replica HWM on partition %d = %d, want %d", p, got, want)
		}
	}
	snap := reg.Snapshot()
	if snap.Counters["election.count"] == 0 {
		t.Error("election.count = 0, want > 0")
	}
	if got := snap.Gauges["repl.isr_size"]; got != 3 {
		t.Errorf("repl.isr_size = %d after revive+tick, want 3", got)
	}
	if snap.Gauges["election.epoch"] == 0 {
		t.Error("election.epoch gauge = 0, want > 0")
	}
}

// TestReplicaSetStaysLeaderlessWithoutCandidate: elections are clean
// only. When every other ISR member is gone, the partition must stay
// leaderless (produces keep failing) rather than promote a replica that
// may miss acked records.
func TestReplicaSetStaysLeaderlessWithoutCandidate(t *testing.T) {
	rs, err := NewReplicaSet(ReplicaSetConfig{},
		Replica{ID: "r0", Broker: NewBroker(BrokerConfig{})},
		Replica{ID: "r1", Broker: NewBroker(BrokerConfig{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	if err := rs.Kill("r1"); err != nil { // the only follower
		t.Fatal(err)
	}
	rs.Tick()
	if err := rs.Kill("r0"); err != nil { // now the leader
		t.Fatal(err)
	}
	rs.Tick()
	if _, _, ok := rs.Leader(TopicInData, 0); ok {
		t.Error("partition found a live leader with an empty ISR")
	}
	if _, _, err := rs.Produce(TopicInData, 0, nil, []byte("v"), AckAll); !errors.Is(err, ErrNotLeader) {
		t.Errorf("produce err = %v, want ErrNotLeader", err)
	}
}

// TestRetryClientFollowsLeaderHint drives the producer-side failover
// path over the wire: a follower refuses a produce with ErrNotLeader
// naming the leader's address, and the RetryClient waits out the
// retry-after hint (jittered), redials the hinted address, and lands
// the record on the leader.
func TestRetryClientFollowsLeaderHint(t *testing.T) {
	follower, fsrv := startServer(t)
	leader, lsrv := startServer(t)
	for _, b := range []*Broker{follower, leader} {
		if err := b.CreateTopic(TopicInData, 1); err != nil {
			t.Fatal(err)
		}
	}
	if err := follower.SetPartitionRole(TopicInData, 0, true, 3, lsrv.Addr()); err != nil {
		t.Fatal(err)
	}

	rc, err := DialRetryContext(context.Background(), fsrv.Addr(), RetryConfig{
		MaxAttempts: 3,
		BaseBackoff: time.Millisecond,
		Jitter:      1e-9, // effectively none: assert the hint exactly
		Seed:        1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	var slept []time.Duration
	rc.sleep = func(d time.Duration) { slept = append(slept, d) }

	part, off, err := rc.Produce(TopicInData, 0, []byte("car-9"), []byte("obs"))
	if err != nil {
		t.Fatalf("produce through failover: %v", err)
	}
	if part != 0 || off != 0 {
		t.Errorf("produce landed at %d/%d, want 0/0", part, off)
	}
	if hwm, _ := leader.HighWaterMark(TopicInData, 0); hwm != 1 {
		t.Errorf("leader HWM = %d, want 1 (record did not follow the hint)", hwm)
	}
	if hwm, _ := follower.HighWaterMark(TopicInData, 0); hwm != 0 {
		t.Errorf("follower HWM = %d, want 0 (record produced on the follower)", hwm)
	}
	if got := rc.Addr(); got != lsrv.Addr() {
		t.Errorf("client address = %q, want the hinted leader %q", got, lsrv.Addr())
	}
	// One backoff, equal to the refusal's retry-after hint (the election
	// settle estimate), not the exponential schedule.
	if len(slept) != 1 {
		t.Fatalf("slept %d times (%v), want 1", len(slept), slept)
	}
	lo := time.Duration(float64(DefaultLeaderRetryHint) * 0.99)
	hi := time.Duration(float64(DefaultLeaderRetryHint) * 1.01)
	if slept[0] < lo || slept[0] > hi {
		t.Errorf("backoff = %v, want ~%v (the retry-after hint)", slept[0], DefaultLeaderRetryHint)
	}
}

// TestConsumerSetOffsetsPollIntoRace is the -race regression for the
// checkpoint-restore path: SetOffsets and PollInto serialize behind one
// mutex, so concurrent restores and polls must neither race nor let a
// poll observe a half-restored offset vector (offsets only ever move
// to 0 or forward from 0 here, so any fetch from a negative or absurd
// offset would error).
func TestConsumerSetOffsetsPollIntoRace(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)
	for i := 0; i < 90; i++ {
		k := []byte(fmt.Sprintf("k%d", i))
		if _, _, err := client.Produce(TopicInData, AutoPartition, k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	c, err := NewConsumer(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		restore := make([]int64, DefaultPartitions)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := c.SetOffsets(restore); err != nil {
				t.Error(err)
				return
			}
			_ = c.Offsets()
		}
	}()

	buf := make([]Message, 0, 32)
	for i := 0; i < 300; i++ {
		buf = buf[:0]
		buf, err = c.PollInto(buf, 16)
		if err != nil {
			t.Fatal(err)
		}
		for j := range buf {
			if buf[j].Offset < 0 {
				t.Fatalf("polled offset %d", buf[j].Offset)
			}
		}
		RecycleMessages(buf)
	}
	close(stop)
	wg.Wait()

	if err := c.SetOffsets(make([]int64, DefaultPartitions+1)); err == nil {
		t.Error("want error for offset vector of the wrong width")
	}
}
