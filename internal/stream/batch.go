package stream

// Batched produce. A reqProduceBatch frame packs N records for one topic
// into a single length-prefixed frame, flushed with one vectored write
// (net.Buffers → writev) straight from the callers' buffers — the frame
// header and the per-field length prefixes come from reused scratch, the
// key/value bytes are never copied on the way out. Against a pipelined
// server several batch frames ride in flight at once (the issue/await
// split below); against a synchronous one the batch degrades to
// sequential Produce calls, so callers need no fallback logic of their
// own.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"cad3/internal/flow"
)

// BatchRecord is one record in a produce batch. A nil Key selects
// round-robin partitioning, like Produce.
type BatchRecord struct {
	Key   []byte
	Value []byte
}

// BatchResult is the broker's per-record answer to a batch. Err is nil
// on success, flow.ErrBackpressure (with RetryAfter carrying the
// broker's hint) on a paced refusal, or a remote error otherwise — the
// sentinel shapes mirror Produce so callers reuse their handling.
type BatchResult struct {
	Partition  int32
	Offset     int64
	RetryAfter time.Duration
	Err        error
}

// BatchClient is a Client that can produce a batch in one round trip.
// TCPClient and PoolClient implement it; the in-proc client does not
// need to (there is no wire to amortize).
type BatchClient interface {
	Client
	// ProduceBatchInto sends recs to one topic/partition and decodes the
	// per-record results into res; len(res) must equal len(recs).
	ProduceBatchInto(topic string, partition int32, recs []BatchRecord, res []BatchResult) error
}

// errBatchSize is returned when len(res) != len(recs).
var errBatchSize = errors.New("stream: batch results length must match records")

// PendingBatch is an issued-but-unawaited batch: the frame is on the
// wire (or, in synchronous mode, the records are parked) and Await
// collects the per-record results. Keeping several pending batches in
// flight is how a producer fills the connection's window.
type PendingBatch struct {
	c  *TCPClient
	ch chan pipeResp
	n  int

	// Synchronous fallback: the records are sent one by one at Await.
	sync      bool
	topic     string
	partition int32
	recs      []BatchRecord
}

// batchFrameSize computes the full frame size (length prefix included)
// of a batch for the given topic and records.
//
//cad3:noalloc
func batchFrameSize(topic string, recs []BatchRecord) int {
	// frame len + type + corr + topic (u32 + bytes) + partition + count.
	n := 4 + 1 + corrSize + 4 + len(topic) + 4 + 4
	for i := range recs {
		n += 8 + len(recs[i].Key) + len(recs[i].Value)
	}
	return n
}

// batchInlineCutoff is the largest value that gets copied into the
// arena rather than referenced from the iov. The kernel charges writev
// per iovec entry: three entries per record turns a 64-record telemetry
// batch into ~200 segments and the segment walk, not the byte copy,
// dominates the syscall. Below the cutoff a memcpy into one contiguous
// arena run is far cheaper than its own iovec; above it, zero-copy by
// reference wins.
const batchInlineCutoff = 4096

// encodeBatchLocked assembles the vectored batch frame under c.mu: the
// header (frame length, type, correlation ID, topic, partition, count)
// goes into the encoder buffer; record prefixes, keys, and small values
// are packed contiguously into the reused arena, with only values past
// batchInlineCutoff parked in the iov by reference. One writev flushes
// the lot — for telemetry-sized records that is two iovec entries total.
//
//cad3:noalloc
func (c *TCPClient) encodeBatchLocked(topic string, partition int32, recs []BatchRecord, total int) {
	c.enc.str(topic)
	c.enc.u32(uint32(partition))
	c.enc.u32(uint32(len(recs)))

	// The arena is sized up front to the whole frame (a safe upper bound
	// on its share): growing it mid-loop would move the runs already
	// parked in the iov.
	if cap(c.arena) < total {
		c.arena = append(c.arena[:cap(c.arena)], make([]byte, total-cap(c.arena))...)
	}
	a := c.arena[:0]

	c.iov = c.iov[:0]
	c.iov = append(c.iov, c.enc.buf)
	seg := 0 // start of the arena run not yet parked in the iov
	var p [8]byte
	for i := range recs {
		k, v := recs[i].Key, recs[i].Value
		binary.BigEndian.PutUint32(p[0:], uint32(len(k)))
		binary.BigEndian.PutUint32(p[4:], uint32(len(v)))
		a = append(a, p[:4]...)
		a = append(a, k...)
		a = append(a, p[4:8]...)
		if len(v) > batchInlineCutoff {
			c.iov = append(c.iov, a[seg:len(a):len(a)])
			seg = len(a)
			c.iov = append(c.iov, v)
		} else {
			a = append(a, v...)
		}
	}
	if len(a) > seg {
		c.iov = append(c.iov, a[seg:len(a):len(a)])
	}
	// Patch the frame length over the whole vectored payload.
	binary.BigEndian.PutUint32(c.enc.buf[:4], uint32(total-4))
}

// ProduceBatchIssue puts a batch on the wire and returns without waiting
// for the results; Await collects them. recs (and the buffers behind
// them) must stay untouched until Await returns. On a synchronous
// connection nothing is sent until Await, which degrades to sequential
// Produce calls.
func (c *TCPClient) ProduceBatchIssue(topic string, partition int32, recs []BatchRecord) (PendingBatch, error) {
	if c.pipe == nil {
		return PendingBatch{c: c, sync: true, topic: topic, partition: partition, recs: recs, n: len(recs)}, nil
	}
	total := batchFrameSize(topic, recs)
	if uint32(total) > c.peerMax {
		return PendingBatch{}, fmt.Errorf("stream: batch frame %d B exceeds peer max %d B; flush smaller batches", total, c.peerMax)
	}
	p := c.pipe
	ch, err := p.acquire()
	if err != nil {
		return PendingBatch{}, err
	}
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		p.release(ch)
		return PendingBatch{}, ErrClientClosed
	}
	if err := c.pipeIssueLocked(ch, reqProduceBatch); err != nil {
		c.mu.Unlock()
		p.release(ch)
		return PendingBatch{}, err
	}
	c.encodeBatchLocked(topic, partition, recs, total)
	_, werr := c.iov.WriteTo(c.conn)
	if werr != nil {
		_ = c.conn.Close()
	}
	c.mu.Unlock()
	if werr != nil {
		r := <-ch // reader's fail path delivers; keep the channel clean
		if r.buf != nil {
			putFrame(r.buf)
		}
		p.release(ch)
		return PendingBatch{}, fmt.Errorf("stream batch write: %w", werr)
	}
	return PendingBatch{c: c, ch: ch, n: len(recs)}, nil
}

// Await collects the batch's per-record results into res, which must
// have the batch's length. The error covers transport/protocol failures;
// per-record broker refusals land in res[i].Err.
func (pb *PendingBatch) Await(res []BatchResult) error {
	if len(res) != pb.n {
		return errBatchSize
	}
	if pb.sync {
		for i := range pb.recs {
			res[i] = BatchResult{}
			part, off, err := pb.c.Produce(pb.topic, pb.partition, pb.recs[i].Key, pb.recs[i].Value)
			if err != nil {
				res[i].Err = err
				if errors.Is(err, flow.ErrBackpressure) {
					if hint, ok := flow.RetryAfter(err); ok {
						res[i].RetryAfter = hint
					}
					continue
				}
				continue
			}
			res[i].Partition = part
			res[i].Offset = off
		}
		return nil
	}

	msgType, dec, err := pb.c.pipeAwait(pb.ch)
	if err != nil {
		return err
	}
	if msgType != respProduceBatch {
		dec.release()
		return errUnexpectedResponse(msgType)
	}
	n := int(dec.u32())
	if dec.err == nil && n != pb.n {
		dec.err = fmt.Errorf("stream: batch answered %d results for %d records", n, pb.n)
	}
	for i := 0; i < pb.n && dec.err == nil; i++ {
		res[i] = BatchResult{}
		switch status := dec.byte1(); status {
		case batchStatusOK:
			res[i].Partition = int32(dec.u32())
			res[i].Offset = int64(dec.u64())
		case batchStatusBackpressure:
			res[i].RetryAfter = time.Duration(dec.u64()) * time.Microsecond
			res[i].Err = flow.ErrBackpressure
		case batchStatusError:
			res[i].Err = remoteError(dec.str())
		default:
			if dec.err == nil {
				dec.err = fmt.Errorf("stream: unknown batch result status %d", status)
			}
		}
	}
	err = dec.err
	dec.release()
	return err
}

// ProduceBatchInto implements BatchClient: issue + await in one call.
func (c *TCPClient) ProduceBatchInto(topic string, partition int32, recs []BatchRecord, res []BatchResult) error {
	if len(res) != len(recs) {
		return errBatchSize
	}
	pb, err := c.ProduceBatchIssue(topic, partition, recs)
	if err != nil {
		return err
	}
	return pb.Await(res)
}

// BatchProducerConfig tunes a BatchProducer.
type BatchProducerConfig struct {
	// FlushEvery flushes automatically once this many records are
	// buffered. Values <= 0 select 64.
	FlushEvery int
	// MaxBytes caps the projected frame size of a buffered batch; Add
	// flushes before the cap is crossed. Values <= 0 select 256 KiB
	// (clamped to the connection's negotiated frame limit by the client).
	MaxBytes int
	// Acks is the durability level flushes require. Any level other than
	// AckLeader (the zero value) requires an AckBatchClient.
	Acks AckLevel
}

func (cfg BatchProducerConfig) withDefaults() BatchProducerConfig {
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 64
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 256 << 10
	}
	return cfg
}

// BatchProducer accumulates records into pooled buffers and flushes them
// as batch frames. It is NOT safe for concurrent use — one producer per
// sending goroutine, like the paper's per-vehicle Kafka producer. The
// results of a flush are surfaced through the OnResult callback, so a
// caller can feed its pacer without blocking the add path.
type BatchProducer struct {
	client    BatchClient
	topic     string
	partition int32
	cfg       BatchProducerConfig

	recs  []BatchRecord
	bytes int
	res   []BatchResult

	// OnResult, when set, observes every per-record result at flush.
	OnResult func(r BatchResult)
}

// NewBatchProducer binds a batch producer to a topic. partition is
// usually AutoPartition: each record's key picks its partition.
func NewBatchProducer(client BatchClient, topicName string, partition int32, cfg BatchProducerConfig) (*BatchProducer, error) {
	if client == nil {
		return nil, fmt.Errorf("stream: batch producer requires a client")
	}
	if topicName == "" {
		return nil, ErrEmptyTopicName
	}
	cfg = cfg.withDefaults()
	if cfg.Acks != AckLeader {
		if _, ok := client.(AckBatchClient); !ok {
			return nil, fmt.Errorf("stream: acks=%s requires an AckBatchClient, got %T", cfg.Acks, client)
		}
	}
	return &BatchProducer{
		client:    client,
		topic:     topicName,
		partition: partition,
		cfg:       cfg,
		recs:      make([]BatchRecord, 0, cfg.FlushEvery),
		res:       make([]BatchResult, cfg.FlushEvery),
	}, nil
}

// Add buffers one record, copying key and value into pooled buffers (the
// caller's slices are free to reuse immediately). It flushes when the
// batch reaches FlushEvery records or MaxBytes projected frame bytes.
func (bp *BatchProducer) Add(key, value []byte) error {
	rec := BatchRecord{Value: append(GetPayload(), value...)}
	if len(key) > 0 {
		rec.Key = append(GetPayload(), key...)
	}
	bp.recs = append(bp.recs, rec)
	bp.bytes += 8 + len(key) + len(value)
	if len(bp.recs) >= bp.cfg.FlushEvery || bp.bytes >= bp.cfg.MaxBytes {
		return bp.Flush()
	}
	return nil
}

// AddPooled buffers a record whose value is assembled directly into a
// pooled buffer by encode (e.g. core.AppendRecord), skipping the copy
// Add would make.
func (bp *BatchProducer) AddPooled(key []byte, encode func(dst []byte) []byte) error {
	rec := BatchRecord{Value: encode(GetPayload())}
	if len(key) > 0 {
		rec.Key = append(GetPayload(), key...)
	}
	bp.bytes += 8 + len(rec.Key) + len(rec.Value)
	bp.recs = append(bp.recs, rec)
	if len(bp.recs) >= bp.cfg.FlushEvery || bp.bytes >= bp.cfg.MaxBytes {
		return bp.Flush()
	}
	return nil
}

// Len returns the number of buffered (unflushed) records.
func (bp *BatchProducer) Len() int { return len(bp.recs) }

// Flush sends the buffered records as one batch frame and recycles their
// buffers. Per-record refusals go to OnResult; the returned error is
// transport-level (the whole batch failed).
func (bp *BatchProducer) Flush() error {
	if len(bp.recs) == 0 {
		return nil
	}
	if cap(bp.res) < len(bp.recs) {
		bp.res = make([]BatchResult, len(bp.recs))
	}
	res := bp.res[:len(bp.recs)]
	var err error
	if ac, ok := bp.client.(AckBatchClient); ok && bp.cfg.Acks != AckLeader {
		err = ac.ProduceBatchAcksInto(bp.topic, bp.partition, bp.recs, res, bp.cfg.Acks)
	} else {
		err = bp.client.ProduceBatchInto(bp.topic, bp.partition, bp.recs, res)
	}
	for i := range bp.recs {
		PutPayload(bp.recs[i].Key)
		PutPayload(bp.recs[i].Value)
		bp.recs[i] = BatchRecord{}
	}
	bp.recs = bp.recs[:0]
	bp.bytes = 0
	if err != nil {
		return err
	}
	if bp.OnResult != nil {
		for i := range res {
			bp.OnResult(res[i])
		}
	}
	return nil
}
