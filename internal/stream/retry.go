package stream

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cad3/internal/flow"
)

// RetryClient decorates a TCP client with automatic reconnection: when a
// request fails with a transport error, it redials (with capped,
// jittered exponential backoff) and retries. Broker-level errors
// (unknown topic, bad partition, ...) are returned as-is — only the
// connection is healed. Vehicles and inter-RSU links use it so a
// restarted RSU does not strand its peers.
//
// Backoff is jittered because a broker restart disconnects every peer at
// once: with pure doubling they would all redial in synchronized waves
// (a reconnect storm), re-overloading the broker exactly when it is
// weakest. Each sleep is scaled by a uniform factor in [1-j, 1+j].
type RetryClient struct {
	addr string
	ctx  context.Context // bounds dialing and backoff sleeps
	// maxAttempts per operation. Values <= 0 select 3.
	maxAttempts int
	// baseBackoff doubles per retry, capped at maxBackoff.
	baseBackoff time.Duration
	maxBackoff  time.Duration
	jitter      float64
	sleep       func(time.Duration) // injectable for tests

	mu     sync.Mutex
	rng    *rand.Rand
	client *TCPClient
	closed bool
}

var _ Client = (*RetryClient)(nil)

// ErrClientClosed is returned after Close.
var ErrClientClosed = errors.New("stream: retry client closed")

// DefaultRetryJitter spreads reconnect attempts ±20% around the
// exponential schedule.
const DefaultRetryJitter = 0.2

// RetryConfig tunes a RetryClient. The zero value selects 3 attempts,
// 50 ms doubling to 1 s, and DefaultRetryJitter.
type RetryConfig struct {
	// MaxAttempts per operation. Values <= 0 select 3.
	MaxAttempts int
	// BaseBackoff doubles per retry. Values <= 0 select 50 ms.
	BaseBackoff time.Duration
	// MaxBackoff caps the doubling. Values <= 0 select 1 s.
	MaxBackoff time.Duration
	// Jitter scales each sleep by a uniform factor in [1-J, 1+J].
	// Values outside [0, 1] select DefaultRetryJitter; use a tiny
	// positive value (e.g. 1e-9) for effectively-zero jitter.
	Jitter float64
	// Seed drives the jitter PRNG (deterministic tests). Zero seeds from
	// the wall clock.
	Seed int64
}

func (cfg RetryConfig) withDefaults() RetryConfig {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 50 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = time.Second
	}
	if cfg.Jitter <= 0 || cfg.Jitter > 1 {
		cfg.Jitter = DefaultRetryJitter
	}
	if cfg.Seed == 0 {
		cfg.Seed = time.Now().UnixNano()
	}
	return cfg
}

// DialRetry connects with reconnection support. maxAttempts <= 0 selects
// 3; backoff <= 0 selects 50 ms doubling to 1 s (jittered).
func DialRetry(addr string, maxAttempts int, backoff time.Duration) (*RetryClient, error) {
	return DialRetryContext(context.Background(), addr, RetryConfig{
		MaxAttempts: maxAttempts,
		BaseBackoff: backoff,
	})
}

// DialRetryContext connects with reconnection support under a context:
// the context bounds the initial dial, every redial, and every backoff
// sleep, so callers can cap the total time an operation may spend
// retrying (e.g. a handover that must succeed within its deadline or be
// counted as dropped).
func DialRetryContext(ctx context.Context, addr string, cfg RetryConfig) (*RetryClient, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.withDefaults()
	rc := &RetryClient{
		addr:        addr,
		ctx:         ctx,
		maxAttempts: cfg.MaxAttempts,
		baseBackoff: cfg.BaseBackoff,
		maxBackoff:  cfg.MaxBackoff,
		jitter:      cfg.Jitter,
		rng:         rand.New(rand.NewSource(cfg.Seed)),
	}
	rc.sleep = rc.sleepCtx
	c, err := dialContext(ctx, addr)
	if err != nil {
		return nil, err
	}
	rc.client = c
	return rc, nil
}

// dialContext dials a stream server under a context (plus the usual
// connect timeout).
func dialContext(ctx context.Context, addr string) (*TCPClient, error) {
	d := net.Dialer{Timeout: DialTimeout}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("stream dial %s: %w", addr, err)
	}
	return newTCPClient(conn, DialConfig{})
}

// sleepCtx sleeps for d or until the client's context ends.
func (rc *RetryClient) sleepCtx(d time.Duration) {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-rc.ctx.Done():
	}
}

// jittered scales d by a uniform factor in [1-j, 1+j].
func (rc *RetryClient) jittered(d time.Duration) time.Duration {
	rc.mu.Lock()
	f := 1 + rc.jitter*(2*rc.rng.Float64()-1)
	rc.mu.Unlock()
	return time.Duration(float64(d) * f)
}

// brokerError reports whether the error is an application-level broker
// response (retrying cannot help) rather than a transport failure.
// Backpressure is deliberately broker-class: a refused send must NOT be
// blind-retried on the spot — that is the retry storm flow control exists
// to prevent. Senders pace (flow.Pacer) or drop instead.
func brokerError(err error) bool {
	for _, sentinel := range []error{
		ErrTopicExists, ErrUnknownTopic, ErrBadPartition,
		ErrBrokerClosed, ErrPartitionDown, ErrValueTooLarge, ErrEmptyTopicName,
		ErrFencedEpoch, ErrOffsetGap,
		flow.ErrBackpressure,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// address returns the current dial target (it moves on leader failover).
func (rc *RetryClient) address() string {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	return rc.addr
}

// Addr returns the address the client currently dials. It starts as the
// DialRetry target and follows ErrNotLeader redirects.
func (rc *RetryClient) Addr() string { return rc.address() }

// do runs op, redialing on transport errors. An ErrNotLeader refusal is
// a redirect, not a failure: the client waits out the broker's
// retry-after hint (election settle time) instead of the exponential
// schedule — still jittered, so a herd of failed-over producers does not
// thunder at the freshly elected leader — then redials at the leader
// address the refusal named, and retries there.
func (rc *RetryClient) do(op func(c *TCPClient) error) error {
	backoff := rc.baseBackoff
	var lastErr error
	notLeader := false
	for attempt := 0; attempt < rc.maxAttempts; attempt++ {
		if err := rc.ctx.Err(); err != nil {
			if lastErr == nil {
				lastErr = err
			}
			return fmt.Errorf("stream retry %s: %w", rc.address(), lastErr)
		}
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			return ErrClientClosed
		}
		c := rc.client
		rc.mu.Unlock()

		if c != nil {
			err := op(c)
			notLeader = err != nil && errors.Is(err, ErrNotLeader)
			if err == nil || (!notLeader && brokerError(err)) {
				return err
			}
			lastErr = err
			_ = c.Close()
		}

		// Redial.
		if attempt < rc.maxAttempts-1 {
			delay := backoff
			if notLeader {
				if hint, ok := flow.RetryAfter(lastErr); ok && hint > 0 {
					delay = hint
				}
			}
			rc.sleep(rc.jittered(delay))
			backoff *= 2
			if backoff > rc.maxBackoff {
				backoff = rc.maxBackoff
			}
		}
		if notLeader {
			if leader, ok := LeaderHint(lastErr); ok {
				rc.mu.Lock()
				rc.addr = leader
				rc.mu.Unlock()
			}
		}
		fresh, err := dialContext(rc.ctx, rc.address())
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			if err == nil {
				_ = fresh.Close()
			}
			return ErrClientClosed
		}
		if err != nil {
			rc.client = nil
			lastErr = err
		} else {
			rc.client = fresh
		}
		rc.mu.Unlock()
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("stream: retry budget exhausted for %s", rc.address())
	}
	return fmt.Errorf("stream retry %s: %w", rc.address(), lastErr)
}

// CreateTopic implements Client.
func (rc *RetryClient) CreateTopic(name string, partitions int) error {
	return rc.do(func(c *TCPClient) error { return c.CreateTopic(name, partitions) })
}

// Produce implements Client.
func (rc *RetryClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	var part int32
	var off int64
	err := rc.do(func(c *TCPClient) error {
		var e error
		part, off, e = c.Produce(topicName, partition, key, value)
		return e
	})
	return part, off, err
}

// Fetch implements Client.
func (rc *RetryClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	var msgs []Message
	err := rc.do(func(c *TCPClient) error {
		var e error
		msgs, e = c.Fetch(topicName, partition, offset, max)
		return e
	})
	return msgs, err
}

// PartitionCount implements Client.
func (rc *RetryClient) PartitionCount(topicName string) (int, error) {
	var n int
	err := rc.do(func(c *TCPClient) error {
		var e error
		n, e = c.PartitionCount(topicName)
		return e
	})
	return n, err
}

// ListTopics implements Client.
func (rc *RetryClient) ListTopics() ([]string, error) {
	var topics []string
	err := rc.do(func(c *TCPClient) error {
		var e error
		topics, e = c.ListTopics()
		return e
	})
	return topics, err
}

// Close implements Client. Closing twice is a no-op.
func (rc *RetryClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil
	}
	rc.closed = true
	if rc.client != nil {
		return rc.client.Close()
	}
	return nil
}
