package stream

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// RetryClient decorates a TCP client with automatic reconnection: when a
// request fails with a transport error, it redials (with capped
// exponential backoff) and retries. Broker-level errors (unknown topic,
// bad partition, ...) are returned as-is — only the connection is
// healed. Vehicles and inter-RSU links use it so a restarted RSU does not
// strand its peers.
type RetryClient struct {
	addr string
	// MaxAttempts per operation. Values <= 0 select 3.
	maxAttempts int
	// baseBackoff doubles per retry, capped at maxBackoff.
	baseBackoff time.Duration
	maxBackoff  time.Duration
	sleep       func(time.Duration) // injectable for tests

	mu     sync.Mutex
	client *TCPClient
	closed bool
}

var _ Client = (*RetryClient)(nil)

// ErrClientClosed is returned after Close.
var ErrClientClosed = errors.New("stream: retry client closed")

// DialRetry connects with reconnection support. maxAttempts <= 0 selects
// 3; backoff <= 0 selects 50 ms doubling to 1 s.
func DialRetry(addr string, maxAttempts int, backoff time.Duration) (*RetryClient, error) {
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	if backoff <= 0 {
		backoff = 50 * time.Millisecond
	}
	rc := &RetryClient{
		addr:        addr,
		maxAttempts: maxAttempts,
		baseBackoff: backoff,
		maxBackoff:  time.Second,
		sleep:       time.Sleep,
	}
	c, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	rc.client = c
	return rc, nil
}

// brokerError reports whether the error is an application-level broker
// response (retrying cannot help) rather than a transport failure.
func brokerError(err error) bool {
	for _, sentinel := range []error{
		ErrTopicExists, ErrUnknownTopic, ErrBadPartition,
		ErrBrokerClosed, ErrPartitionDown, ErrValueTooLarge, ErrEmptyTopicName,
	} {
		if errors.Is(err, sentinel) {
			return true
		}
	}
	return false
}

// do runs op, redialing on transport errors.
func (rc *RetryClient) do(op func(c *TCPClient) error) error {
	backoff := rc.baseBackoff
	var lastErr error
	for attempt := 0; attempt < rc.maxAttempts; attempt++ {
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			return ErrClientClosed
		}
		c := rc.client
		rc.mu.Unlock()

		if c != nil {
			err := op(c)
			if err == nil || brokerError(err) {
				return err
			}
			lastErr = err
			_ = c.Close()
		}

		// Redial.
		if attempt < rc.maxAttempts-1 {
			rc.sleep(backoff)
			backoff *= 2
			if backoff > rc.maxBackoff {
				backoff = rc.maxBackoff
			}
		}
		fresh, err := Dial(rc.addr)
		rc.mu.Lock()
		if rc.closed {
			rc.mu.Unlock()
			if err == nil {
				_ = fresh.Close()
			}
			return ErrClientClosed
		}
		if err != nil {
			rc.client = nil
			lastErr = err
		} else {
			rc.client = fresh
		}
		rc.mu.Unlock()
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("stream: retry budget exhausted for %s", rc.addr)
	}
	return fmt.Errorf("stream retry %s: %w", rc.addr, lastErr)
}

// CreateTopic implements Client.
func (rc *RetryClient) CreateTopic(name string, partitions int) error {
	return rc.do(func(c *TCPClient) error { return c.CreateTopic(name, partitions) })
}

// Produce implements Client.
func (rc *RetryClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	var part int32
	var off int64
	err := rc.do(func(c *TCPClient) error {
		var e error
		part, off, e = c.Produce(topicName, partition, key, value)
		return e
	})
	return part, off, err
}

// Fetch implements Client.
func (rc *RetryClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	var msgs []Message
	err := rc.do(func(c *TCPClient) error {
		var e error
		msgs, e = c.Fetch(topicName, partition, offset, max)
		return e
	})
	return msgs, err
}

// PartitionCount implements Client.
func (rc *RetryClient) PartitionCount(topicName string) (int, error) {
	var n int
	err := rc.do(func(c *TCPClient) error {
		var e error
		n, e = c.PartitionCount(topicName)
		return e
	})
	return n, err
}

// ListTopics implements Client.
func (rc *RetryClient) ListTopics() ([]string, error) {
	var topics []string
	err := rc.do(func(c *TCPClient) error {
		var e error
		topics, e = c.ListTopics()
		return e
	})
	return topics, err
}

// Close implements Client. Closing twice is a no-op.
func (rc *RetryClient) Close() error {
	rc.mu.Lock()
	defer rc.mu.Unlock()
	if rc.closed {
		return nil
	}
	rc.closed = true
	if rc.client != nil {
		return rc.client.Close()
	}
	return nil
}
