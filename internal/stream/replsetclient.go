package stream

// ReplicatedClient adapts a ReplicaSet to the Client interface, so
// producers, consumers and groups written against Client run unchanged
// on a replicated cluster: produces route to partition leaders at the
// client's ack level, fetches route to leaders, and leadership changes
// surface as ErrNotLeader until the next election settles.

// AckClient is a Client that can produce at an explicit ack level.
type AckClient interface {
	Client
	// ProduceAcks is Produce with a durability level. AckAll returns
	// only after every in-sync replica holds the record.
	ProduceAcks(topicName string, partition int32, key, value []byte, acks AckLevel) (int32, int64, error)
}

// AckBatchClient is a BatchClient that can produce batches at an
// explicit ack level.
type AckBatchClient interface {
	BatchClient
	// ProduceBatchAcksInto is ProduceBatchInto with a durability level.
	ProduceBatchAcksInto(topic string, partition int32, recs []BatchRecord, res []BatchResult, acks AckLevel) error
}

// ReplicatedClient routes Client calls through a ReplicaSet.
type ReplicatedClient struct {
	rs   *ReplicaSet
	acks AckLevel
}

var (
	_ Client         = (*ReplicatedClient)(nil)
	_ AckClient      = (*ReplicatedClient)(nil)
	_ AckBatchClient = (*ReplicatedClient)(nil)
)

// Client returns a Client view of the set producing at the given ack
// level (Produce calls without an explicit level use it).
func (rs *ReplicaSet) Client(acks AckLevel) *ReplicatedClient {
	return &ReplicatedClient{rs: rs, acks: acks}
}

// CreateTopic implements Client.
func (c *ReplicatedClient) CreateTopic(name string, partitions int) error {
	return c.rs.CreateTopic(name, partitions)
}

// Produce implements Client at the client's default ack level.
func (c *ReplicatedClient) Produce(topicName string, partition int32, key, value []byte) (int32, int64, error) {
	return c.rs.Produce(topicName, partition, key, value, c.acks)
}

// ProduceAcks implements AckClient.
func (c *ReplicatedClient) ProduceAcks(topicName string, partition int32, key, value []byte, acks AckLevel) (int32, int64, error) {
	return c.rs.Produce(topicName, partition, key, value, acks)
}

// Fetch implements Client, reading from the partition leader.
func (c *ReplicatedClient) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	return c.rs.Fetch(topicName, partition, offset, max)
}

// PartitionCount implements Client.
func (c *ReplicatedClient) PartitionCount(topicName string) (int, error) {
	c.rs.mu.Lock()
	b := c.rs.replicas[c.rs.firstAliveLocked()].Broker
	c.rs.mu.Unlock()
	return b.PartitionCount(topicName)
}

// ListTopics implements Client.
func (c *ReplicatedClient) ListTopics() ([]string, error) {
	c.rs.mu.Lock()
	b := c.rs.replicas[c.rs.firstAliveLocked()].Broker
	c.rs.mu.Unlock()
	return b.Topics(), nil
}

// ProduceBatchInto implements BatchClient at the default ack level.
func (c *ReplicatedClient) ProduceBatchInto(topic string, partition int32, recs []BatchRecord, res []BatchResult) error {
	return c.ProduceBatchAcksInto(topic, partition, recs, res, c.acks)
}

// ProduceBatchAcksInto implements AckBatchClient. There is no batched
// replication round trip yet: records replicate one produce at a time,
// so AckAll batches pay one follower sync per record. The per-record
// result shapes mirror the other batch clients.
func (c *ReplicatedClient) ProduceBatchAcksInto(topic string, partition int32, recs []BatchRecord, res []BatchResult, acks AckLevel) error {
	if len(res) != len(recs) {
		return errBatchSize
	}
	for i := range recs {
		part, off, err := c.rs.Produce(topic, partition, recs[i].Key, recs[i].Value, acks)
		res[i] = BatchResult{Partition: part, Offset: off, Err: err}
	}
	return nil
}

// Close implements Client. The replica set stays open — it may be
// shared by other clients.
func (c *ReplicatedClient) Close() error { return nil }
