package stream

// ReplicaSet is the replication controller: it owns a small cluster of
// brokers, assigns each partition a leader and an in-sync replica (ISR)
// set, ships leader log suffixes to followers, and runs epoch-fenced
// leader elections when a leader dies. It is deliberately a controller,
// not a consensus group — like Kafka's controller quorum it is the one
// place that decides leadership, and the epoch it stamps on every role
// push and replica append is what keeps deposed leaders harmless.
//
// Durability contract (the headline invariant of DESIGN.md §13): a
// record produced at AckAll is on every in-sync replica before the
// produce returns, and elections only ever promote ISR members, so
// killing a partition leader with zero warning cannot lose an acked
// record. AckLeader records survive only if the leader had replicated
// them before dying; AckNone records claim nothing.
//
// The controller serializes cluster-state changes behind one mutex.
// Produce/fetch through the ReplicaSet therefore costs a mutex more
// than the standalone broker hot path; deployments that need the
// zero-alloc paths keep talking to the leader broker directly and use
// the ReplicaSet only as the control plane (elections + replication).

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"cad3/internal/obsv"
)

// ErrNoReplica reports an unknown replica ID.
var ErrNoReplica = errors.New("stream: unknown replica")

// ErrReplicaDead rejects operations against a replica marked dead.
var ErrReplicaDead = errors.New("stream: replica is dead")

// DefaultReplicaFetch is the per-round-trip record chunk used when
// shipping a log suffix to a follower.
const DefaultReplicaFetch = 512

// Replica is one member of a ReplicaSet.
type Replica struct {
	// ID names the replica; Addr is the leader hint handed to producers
	// refused by its followers (defaults to ID — in TCP deployments set
	// it to the broker's listen address so RetryClient can redial).
	ID   string
	Addr string
	// Broker is the member's broker. Required: elections read high
	// watermarks from it directly.
	Broker *Broker
	// Link is the transport used for replica appends and role pushes.
	// Nil selects the Broker itself (in-process replication); wire
	// deployments set a *TCPClient, chaos tests a fault injector.
	Link ReplicaLink
}

// ReplicaSetConfig configures a ReplicaSet.
type ReplicaSetConfig struct {
	// MaxLag is the highest follower lag (records behind the leader,
	// measured at Tick) that still counts as in-sync. 0 means a follower
	// must be fully caught up to stay in the ISR.
	MaxLag int64
	// ReplicaFetch is the record chunk per replication round trip.
	// Values <= 0 select DefaultReplicaFetch.
	ReplicaFetch int
	// Metrics, when set, receives election.count / election.epoch,
	// repl.catchups / repl.isr_drops / repl.isr_size / repl.lag.
	Metrics *obsv.Registry
	// Rebuild is the BrokerConfig used to rebuild a revived replica's
	// broker from a snapshot (Revive).
	Rebuild BrokerConfig
}

// replicaState is a Replica plus its liveness mark.
type replicaState struct {
	Replica
	alive bool
}

// partState is one partition's control-plane view: who leads, at what
// epoch, and which replicas are in-sync (indexed like ReplicaSet.replicas;
// the leader's own flag is always true while it lives).
type partState struct {
	leader int
	epoch  int64
	isr    []bool
}

// replTopic is the per-topic partition table.
type replTopic struct {
	parts []partState
}

// ReplicaSet coordinates replication across a set of brokers.
type ReplicaSet struct {
	cfg ReplicaSetConfig

	mu       sync.Mutex
	replicas []*replicaState
	topics   map[string]*replTopic
	rr       uint64 // nil-key AutoPartition rotor (under mu)
	readRR   uint64 // follower-read rotor (under mu)

	tickStop chan struct{}
	tickDone chan struct{}

	mElections, mCatchups, mISRDrops   *obsv.Counter
	mFollowerFetches, mFollowerClamped *obsv.Counter
}

// NewReplicaSet builds a controller over the given replicas. Replica IDs
// must be unique and every Broker non-nil.
func NewReplicaSet(cfg ReplicaSetConfig, replicas ...Replica) (*ReplicaSet, error) {
	if len(replicas) == 0 {
		return nil, fmt.Errorf("stream: replica set needs >= 1 replica")
	}
	if cfg.ReplicaFetch <= 0 {
		cfg.ReplicaFetch = DefaultReplicaFetch
	}
	rs := &ReplicaSet{cfg: cfg, topics: make(map[string]*replTopic)}
	seen := make(map[string]bool, len(replicas))
	for _, r := range replicas {
		if r.ID == "" || r.Broker == nil {
			return nil, fmt.Errorf("stream: replica needs an ID and a broker")
		}
		if seen[r.ID] {
			return nil, fmt.Errorf("stream: duplicate replica id %q", r.ID)
		}
		seen[r.ID] = true
		if r.Addr == "" {
			r.Addr = r.ID
		}
		if r.Link == nil {
			r.Link = r.Broker
		}
		rs.replicas = append(rs.replicas, &replicaState{Replica: r, alive: true})
	}
	if cfg.Metrics != nil {
		rs.mElections = cfg.Metrics.Counter("election.count")
		rs.mCatchups = cfg.Metrics.Counter("repl.catchups")
		rs.mISRDrops = cfg.Metrics.Counter("repl.isr_drops")
		rs.mFollowerFetches = cfg.Metrics.Counter("repl.follower_fetches")
		rs.mFollowerClamped = cfg.Metrics.Counter("repl.follower_clamped")
		cfg.Metrics.RegisterGaugeFunc("repl.isr_size", rs.minISRSize)
		cfg.Metrics.RegisterGaugeFunc("repl.lag", rs.maxLag)
		cfg.Metrics.RegisterGaugeFunc("election.epoch", rs.maxEpoch)
	}
	return rs, nil
}

// CreateTopic creates the topic on every live replica and installs the
// initial role assignment: leaders spread round-robin over the members
// (partition p leads on replica p mod n), epoch 0.
func (rs *ReplicaSet) CreateTopic(name string, partitions int) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.topics[name]; ok {
		// Same idempotency contract as Broker.CreateTopic: recreating with
		// a different width errors there, identical recreate is a no-op.
		return rs.replicas[rs.firstAliveLocked()].Broker.CreateTopic(name, partitions)
	}
	for _, r := range rs.replicas {
		if !r.alive {
			continue
		}
		if err := r.Broker.CreateTopic(name, partitions); err != nil {
			return err
		}
	}
	t := &replTopic{parts: make([]partState, partitions)}
	for p := range t.parts {
		leader := p % len(rs.replicas)
		isr := make([]bool, len(rs.replicas))
		for i, r := range rs.replicas {
			isr[i] = r.alive
		}
		t.parts[p] = partState{leader: leader, epoch: 0, isr: isr}
		rs.pushRolesLocked(name, int32(p), &t.parts[p])
	}
	rs.topics[name] = t
	return nil
}

// firstAliveLocked returns the index of the first live replica, or 0.
func (rs *ReplicaSet) firstAliveLocked() int {
	for i, r := range rs.replicas {
		if r.alive {
			return i
		}
	}
	return 0
}

// pushRolesLocked tells every live replica its role for one partition.
// A follower that cannot be reached falls out of the ISR — it may hold
// a stale view of leadership, so it cannot be trusted as a promotion
// candidate until a Tick resyncs it.
func (rs *ReplicaSet) pushRolesLocked(topicName string, partition int32, ps *partState) {
	leaderAddr := rs.replicas[ps.leader].Addr
	for i, r := range rs.replicas {
		if !r.alive {
			continue
		}
		err := r.Link.SetPartitionRole(topicName, partition, i != ps.leader, ps.epoch, leaderAddr)
		if err != nil && i != ps.leader {
			rs.dropISRLocked(ps, i)
		}
	}
}

// dropISRLocked removes replica i from a partition's ISR.
func (rs *ReplicaSet) dropISRLocked(ps *partState, i int) {
	if !ps.isr[i] {
		return
	}
	ps.isr[i] = false
	if rs.mISRDrops != nil {
		rs.mISRDrops.Inc()
	}
}

// resolve maps an AutoPartition produce to a concrete partition: FNV key
// hash for keyed records (affinity), a rotor for nil keys.
func (rs *ReplicaSet) resolveLocked(t *replTopic, partition int32, key []byte) int32 {
	if partition != AutoPartition {
		return partition
	}
	n := len(t.parts)
	if n == 1 {
		return 0
	}
	if key == nil {
		rs.rr++
		return int32(rs.rr % uint64(n))
	}
	h := fnv.New32a()
	_, _ = h.Write(key)
	return int32(h.Sum32() % uint32(n))
}

// Produce appends one record through the replication control plane at
// the given ack level. AckAll returns only after every in-sync follower
// holds the record; a follower that cannot keep up is dropped from the
// ISR (min-ISR is the leader alone, Kafka's acks=all with min.insync.replicas=1)
// rather than failing the produce.
func (rs *ReplicaSet) Produce(topicName string, partition int32, key, value []byte, acks AckLevel) (int32, int64, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	t, ok := rs.topics[topicName]
	if !ok {
		return 0, 0, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	partition = rs.resolveLocked(t, partition, key)
	if partition < 0 || int(partition) >= len(t.parts) {
		return 0, 0, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	ps := &t.parts[partition]
	leader := rs.replicas[ps.leader]
	if !leader.alive {
		// Leaderless window between the kill and the next Tick's election:
		// refuse with no hint (there is no leader yet) and the election
		// settle estimate.
		return 0, 0, &notLeaderError{hint: DefaultLeaderRetryHint}
	}
	part, off, err := leader.Broker.Produce(topicName, partition, key, value)
	if err != nil {
		if errors.Is(err, ErrBrokerClosed) {
			// The broker died under us (Kill without the controller's
			// knowledge): mark it and refuse like a leaderless partition.
			leader.alive = false
			return 0, 0, &notLeaderError{hint: DefaultLeaderRetryHint}
		}
		return 0, 0, err
	}
	if acks == AckAll {
		rs.replicateLocked(topicName, partition, ps)
	}
	return part, off, nil
}

// replicateLocked ships the leader's log suffix to every in-sync
// follower, synchronously. Failures drop the follower from the ISR; the
// produce that triggered replication still succeeds (the leader holds
// the record, and the shrunken ISR keeps the durability claim honest —
// elections only promote members that really have the data).
func (rs *ReplicaSet) replicateLocked(topicName string, partition int32, ps *partState) {
	for i := range rs.replicas {
		if i == ps.leader || !rs.replicas[i].alive || !ps.isr[i] {
			continue
		}
		if _, err := rs.syncFollowerLocked(topicName, partition, ps, i); err != nil {
			rs.dropISRLocked(ps, i)
		}
	}
}

// syncFollowerLocked brings one follower up to the leader's high
// watermark, chunk by chunk, and returns the follower's final lag. The
// empty first append doubles as the HWM probe (and teaches a raced
// follower the current epoch). ErrOffsetGap from the follower means it
// fell behind the leader's retention window and needs Revive.
func (rs *ReplicaSet) syncFollowerLocked(topicName string, partition int32, ps *partState, fi int) (int64, error) {
	leader := rs.replicas[ps.leader]
	f := rs.replicas[fi]
	target, err := leader.Broker.HighWaterMark(topicName, partition)
	if err != nil {
		return 0, err
	}
	fhwm, err := f.Link.ReplicaAppend(topicName, partition, ps.epoch, 0, nil)
	if err != nil {
		return 0, err
	}
	for fhwm < target {
		msgs, err := leader.Broker.Fetch(topicName, partition, fhwm, rs.cfg.ReplicaFetch)
		if err != nil {
			return target - fhwm, err
		}
		if len(msgs) == 0 {
			break // leader truncated past target concurrently; next Tick settles it
		}
		recs := make([]ReplicaRecord, len(msgs))
		for i := range msgs {
			recs[i] = ReplicaRecord{
				Key:          msgs[i].Key,
				Value:        msgs[i].Value,
				AppendedAtNs: msgs[i].AppendedAt.UnixNano(),
			}
		}
		fhwm, err = f.Link.ReplicaAppend(topicName, partition, ps.epoch, msgs[0].Offset, recs)
		RecycleMessages(msgs)
		if err != nil {
			return target - fhwm, err
		}
	}
	lag := target - fhwm
	if lag < 0 {
		lag = 0
	}
	return lag, nil
}

// Fetch reads from the partition leader.
func (rs *ReplicaSet) Fetch(topicName string, partition int32, offset int64, max int) ([]Message, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	t, ok := rs.topics[topicName]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownTopic, topicName)
	}
	if partition < 0 || int(partition) >= len(t.parts) {
		return nil, fmt.Errorf("%w: %q/%d", ErrBadPartition, topicName, partition)
	}
	ps := &t.parts[partition]
	leader := rs.replicas[ps.leader]
	if !leader.alive {
		return nil, &notLeaderError{hint: DefaultLeaderRetryHint}
	}
	return leader.Broker.Fetch(topicName, partition, offset, max)
}

// Tick is one control-plane round: elect leaders for dead-leader
// partitions, then resync followers and recompute every ISR. Call it
// from a scheduler (chaos studies drive it in virtual time) or start
// the wall-clock ticker.
func (rs *ReplicaSet) Tick() {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	// Topics are visited in sorted name order: role pushes and follower
	// syncs go through replica links that may be fault-injection wrappers
	// drawing from a seeded PRNG, so the control plane's call sequence
	// must not inherit map iteration order or deterministic replays
	// diverge run to run.
	for _, name := range rs.sortedTopicsLocked() {
		t := rs.topics[name]
		for p := range t.parts {
			ps := &t.parts[p]
			if !rs.replicas[ps.leader].alive {
				rs.electLocked(name, int32(p), ps)
			}
		}
	}
	for _, name := range rs.sortedTopicsLocked() {
		t := rs.topics[name]
		for p := range t.parts {
			ps := &t.parts[p]
			if !rs.replicas[ps.leader].alive {
				continue // still leaderless (no eligible candidate)
			}
			for i, r := range rs.replicas {
				if i == ps.leader || !r.alive {
					continue
				}
				lag, err := rs.syncFollowerLocked(name, int32(p), ps, i)
				if err != nil || lag > rs.cfg.MaxLag {
					rs.dropISRLocked(ps, i)
					continue
				}
				if !ps.isr[i] {
					ps.isr[i] = true // caught back up: rejoin the ISR
				}
			}
		}
	}
}

// electLocked promotes the in-sync replica with the highest high
// watermark to leader of one partition, bumps the fencing epoch, and
// pushes the new roles. Elections are clean only: a partition whose
// every ISR member is dead stays leaderless (produces keep failing)
// rather than promote an out-of-sync replica and silently lose acked
// records.
func (rs *ReplicaSet) electLocked(topicName string, partition int32, ps *partState) {
	winner, bestHWM := -1, int64(-1)
	for i, r := range rs.replicas {
		if !r.alive || !ps.isr[i] || i == ps.leader {
			continue
		}
		hwm, err := r.Broker.HighWaterMark(topicName, partition)
		if err != nil {
			continue
		}
		if hwm > bestHWM {
			winner, bestHWM = i, hwm
		}
	}
	if winner < 0 {
		return
	}
	ps.epoch++
	ps.leader = winner
	for i, r := range rs.replicas {
		ps.isr[i] = ps.isr[i] && r.alive
	}
	rs.pushRolesLocked(topicName, partition, ps)
	if rs.mElections != nil {
		rs.mElections.Inc()
	}
}

// Kill marks a replica dead and closes its broker — the crash injection
// hook. Partitions it led are leaderless until the next Tick elects.
func (rs *ReplicaSet) Kill(id string) error {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r, _, err := rs.findLocked(id)
	if err != nil {
		return err
	}
	r.alive = false
	_ = r.Broker.Close()
	return nil
}

// Revive rebuilds a dead replica from a live peer's snapshot and
// rejoins it as an out-of-sync follower (a Tick syncs it back into the
// ISR). The rebuilt broker replaces the dead one; the new *Broker is
// returned so callers holding direct references can rewire. The
// replication link resets to the in-process broker — a wire link died
// with the process it pointed at.
func (rs *ReplicaSet) Revive(id string) (*Broker, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r, ri, err := rs.findLocked(id)
	if err != nil {
		return nil, err
	}
	if r.alive {
		return nil, fmt.Errorf("stream: replica %q is alive", id)
	}
	src := rs.replicas[rs.firstAliveLocked()]
	if !src.alive {
		return nil, fmt.Errorf("stream: no live replica to bootstrap %q from", id)
	}
	nb, err := RestoreBroker(rs.cfg.Rebuild, src.Broker.Snapshot())
	if err != nil {
		return nil, fmt.Errorf("stream: revive %q: %w", id, err)
	}
	for _, name := range rs.sortedTopicsLocked() {
		t := rs.topics[name]
		for p := range t.parts {
			ps := &t.parts[p]
			stillLeader := ps.leader == ri && !rs.replicas[ps.leader].alive
			// A partition that never elected past this replica (no ISR
			// candidate existed) takes it straight back as leader.
			if err := nb.SetPartitionRole(name, int32(p), !stillLeader, ps.epoch, rs.replicas[ps.leader].Addr); err != nil {
				return nil, fmt.Errorf("stream: revive %q: %w", id, err)
			}
			// A restored leader is trivially in sync with itself; as a
			// follower the replica stays out of the ISR until a Tick
			// verifies it caught up.
			ps.isr[ri] = stillLeader
		}
	}
	r.Broker = nb
	r.Link = nb
	r.alive = true
	if rs.mCatchups != nil {
		rs.mCatchups.Inc()
	}
	return nb, nil
}

// sortedTopicsLocked returns the topic names in sorted order, for
// control-plane sweeps whose per-topic work has side effects (role
// pushes, follower syncs through possibly fault-injected links).
func (rs *ReplicaSet) sortedTopicsLocked() []string {
	names := make([]string, 0, len(rs.topics))
	for name := range rs.topics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// findLocked resolves a replica ID.
func (rs *ReplicaSet) findLocked(id string) (*replicaState, int, error) {
	for i, r := range rs.replicas {
		if r.ID == id {
			return r, i, nil
		}
	}
	return nil, -1, fmt.Errorf("%w: %q", ErrNoReplica, id)
}

// Leader reports a partition's current leader ID and epoch. A dead
// leader still shows until an election replaces it; ok is false then.
func (rs *ReplicaSet) Leader(topicName string, partition int32) (id string, epoch int64, ok bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	t, found := rs.topics[topicName]
	if !found || partition < 0 || int(partition) >= len(t.parts) {
		return "", 0, false
	}
	ps := &t.parts[partition]
	r := rs.replicas[ps.leader]
	return r.ID, ps.epoch, r.alive
}

// BrokerFor returns a replica's current broker (rebuilt instances after
// Revive included) and whether the replica is alive.
func (rs *ReplicaSet) BrokerFor(id string) (*Broker, bool, error) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	r, _, err := rs.findLocked(id)
	if err != nil {
		return nil, false, err
	}
	return r.Broker, r.alive, nil
}

// StartTicker runs Tick on a wall-clock interval until StopTicker.
func (rs *ReplicaSet) StartTicker(interval time.Duration) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if rs.tickStop != nil {
		return
	}
	rs.tickStop = make(chan struct{})
	rs.tickDone = make(chan struct{})
	go rs.tickLoop(interval, rs.tickStop, rs.tickDone)
}

// tickLoop is the ticker goroutine; it exits when stop closes.
func (rs *ReplicaSet) tickLoop(interval time.Duration, stop, done chan struct{}) {
	defer close(done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		//cad3:allow detorder wall-clock convenience loop; deterministic runs drive Tick() off the virtual clock and never start the ticker, and both arms are idempotent
		select {
		case <-stop:
			return
		case <-t.C:
			rs.Tick()
		}
	}
}

// StopTicker stops the ticker goroutine and waits for it to exit.
func (rs *ReplicaSet) StopTicker() {
	rs.mu.Lock()
	stop, done := rs.tickStop, rs.tickDone
	rs.tickStop, rs.tickDone = nil, nil
	rs.mu.Unlock()
	if stop != nil {
		close(stop)
		<-done
	}
}

// minISRSize is the repl.isr_size gauge: the smallest ISR across all
// partitions — the cluster's weakest durability margin.
func (rs *ReplicaSet) minISRSize() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	min := int64(len(rs.replicas))
	seen := false
	for _, t := range rs.topics {
		for p := range t.parts {
			var n int64
			for _, in := range t.parts[p].isr {
				if in {
					n++
				}
			}
			if !seen || n < min {
				min, seen = n, true
			}
		}
	}
	if !seen {
		return 0
	}
	return min
}

// maxLag is the repl.lag gauge: the largest live-follower lag behind
// its partition leader, in records.
func (rs *ReplicaSet) maxLag() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var worst int64
	for name, t := range rs.topics {
		for p := range t.parts {
			ps := &t.parts[p]
			leader := rs.replicas[ps.leader]
			if !leader.alive {
				continue
			}
			target, err := leader.Broker.HighWaterMark(name, int32(p))
			if err != nil {
				continue
			}
			for i, r := range rs.replicas {
				if i == ps.leader || !r.alive {
					continue
				}
				hwm, err := r.Broker.HighWaterMark(name, int32(p))
				if err != nil {
					continue
				}
				if lag := target - hwm; lag > worst {
					worst = lag
				}
			}
		}
	}
	return worst
}

// maxEpoch is the election.epoch gauge: the highest leadership epoch in
// the cluster (how many times any partition has failed over).
func (rs *ReplicaSet) maxEpoch() int64 {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	var max int64
	for _, t := range rs.topics {
		for p := range t.parts {
			if e := t.parts[p].epoch; e > max {
				max = e
			}
		}
	}
	return max
}
