package stream

import (
	"errors"
	"testing"
	"time"

	"cad3/internal/flow"
	"cad3/internal/obsv"
)

// flowBroker builds a flow-controlled broker with the class-blind TailDrop
// policy, so tests can reason about exact capacities (the default
// PriorityShed sheds telemetry early to reserve headroom).
func flowBroker(t *testing.T, capacity int) *Broker {
	t.Helper()
	return NewBroker(BrokerConfig{FlowCapacity: capacity, FlowPolicy: flow.TailDrop{}})
}

// Regression: nil-key round-robin produces must not land on partitions
// marked down while healthy ones remain.
func TestProduceNilKeySkipsDownPartitions(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic(TopicInData, 3); err != nil {
		t.Fatal(err)
	}
	b.SetPartitionDown(TopicInData, 1, true)

	counts := make(map[int32]int)
	for i := 0; i < 30; i++ {
		part, _, err := b.Produce(TopicInData, AutoPartition, nil, []byte("v"))
		if err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
		counts[part]++
	}
	if counts[1] != 0 {
		t.Errorf("rotor placed %d messages on the down partition", counts[1])
	}
	if counts[0] == 0 || counts[2] == 0 {
		t.Errorf("healthy partitions not both used: %v", counts)
	}

	// Keyed produce keeps hash affinity even when the target is down: the
	// caller gets ErrPartitionDown rather than a silent re-route.
	key := []byte("vehicle-7")
	h := b.pickPartition(TopicInData, key, 3)
	b.SetPartitionDown(TopicInData, h, true)
	if _, _, err := b.Produce(TopicInData, AutoPartition, key, []byte("v")); !errors.Is(err, ErrPartitionDown) {
		t.Errorf("keyed produce to down partition: got %v, want ErrPartitionDown", err)
	}

	// With every partition down, the rotor falls through and Produce
	// surfaces ErrPartitionDown instead of spinning.
	for p := int32(0); p < 3; p++ {
		b.SetPartitionDown(TopicInData, p, true)
	}
	if _, _, err := b.Produce(TopicInData, AutoPartition, nil, []byte("v")); !errors.Is(err, ErrPartitionDown) {
		t.Errorf("all-down produce: got %v, want ErrPartitionDown", err)
	}
}

func TestFlowBackpressureAndFetchCredits(t *testing.T) {
	b := flowBroker(t, 4)
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := b.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatalf("produce %d under capacity: %v", i, err)
		}
	}
	_, _, err := b.Produce(TopicInData, 0, nil, []byte("t"))
	if !errors.Is(err, flow.ErrBackpressure) {
		t.Fatalf("over-capacity produce: got %v, want backpressure", err)
	}
	if hint, ok := flow.RetryAfter(err); !ok || hint <= 0 {
		t.Errorf("backpressure hint = %v, %v; want positive", hint, ok)
	}
	if st := b.FlowStats(TopicInData); st.Rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", st.Rejected)
	}

	// Fetching drains the backlog and returns credits: produce succeeds
	// again.
	msgs, err := b.Fetch(TopicInData, 0, 0, 2)
	if err != nil || len(msgs) != 2 {
		t.Fatalf("fetch: %d msgs, err %v", len(msgs), err)
	}
	RecycleMessages(msgs)
	for i := 0; i < 2; i++ {
		if _, _, err := b.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatalf("produce after drain: %v", err)
		}
	}
	if _, _, err := b.Produce(TopicInData, 0, nil, []byte("t")); !errors.Is(err, flow.ErrBackpressure) {
		t.Errorf("refilled partition should refuse again, got %v", err)
	}

	// Re-reading already-credited offsets must not double-release.
	msgs, _ = b.Fetch(TopicInData, 0, 0, 1)
	RecycleMessages(msgs)
	if occ := b.FlowStats(TopicInData).Occupancy; occ != 4 {
		t.Errorf("occupancy after re-read = %d, want 4", occ)
	}
}

// Warnings and summaries ride a soft bound: the gate tracks their
// occupancy but the default policy never refuses them.
func TestFlowWarningsAndSummariesNeverShed(t *testing.T) {
	b := NewBroker(BrokerConfig{FlowCapacity: 2}) // default PriorityShed
	for _, topicName := range []string{TopicOutData, TopicCoData} {
		if err := b.CreateTopic(topicName, 1); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if _, _, err := b.Produce(topicName, 0, nil, []byte("critical")); err != nil {
				t.Fatalf("%s produce %d over capacity: %v", topicName, i, err)
			}
		}
		st := b.FlowStats(topicName)
		if st.ShedTotal() != 0 {
			t.Errorf("%s shed %d critical messages", topicName, st.ShedTotal())
		}
		if st.Occupancy != 10 {
			t.Errorf("%s occupancy = %d, want 10 (soft bound exceeded)", topicName, st.Occupancy)
		}
	}
}

// Retention eviction returns the credits of messages no reader claimed,
// so an unconsumed partition cannot leak occupancy forever.
func TestFlowEvictionReturnsCredits(t *testing.T) {
	b := NewBroker(BrokerConfig{FlowCapacity: 100, MaxRetainedPerPartition: 8})
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, _, err := b.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
	}
	if occ := b.FlowStats(TopicInData).Occupancy; occ > 8 {
		t.Errorf("occupancy = %d after eviction, want <= retained bound 8", occ)
	}
}

func TestRestoreBrokerReseatsOccupancy(t *testing.T) {
	cfg := BrokerConfig{FlowCapacity: 10, FlowPolicy: flow.TailDrop{}}
	b := NewBroker(cfg)
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, _, err := b.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatal(err)
		}
	}
	restored, err := RestoreBroker(cfg, b.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if occ := restored.FlowStats(TopicInData).Occupancy; occ != 6 {
		t.Fatalf("restored occupancy = %d, want 6", occ)
	}
	for i := 0; i < 4; i++ {
		if _, _, err := restored.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatalf("produce %d into restored headroom: %v", i, err)
		}
	}
	if _, _, err := restored.Produce(TopicInData, 0, nil, []byte("t")); !errors.Is(err, flow.ErrBackpressure) {
		t.Errorf("restored broker over capacity: got %v, want backpressure", err)
	}
	// Draining the restored backlog returns its credits.
	msgs, err := restored.Fetch(TopicInData, 0, 0, 10)
	if err != nil || len(msgs) != 10 {
		t.Fatalf("fetch restored: %d msgs, err %v", len(msgs), err)
	}
	RecycleMessages(msgs)
	if occ := restored.FlowStats(TopicInData).Occupancy; occ != 0 {
		t.Errorf("occupancy after full drain = %d, want 0", occ)
	}
}

// A group snapshot taken before a topic grew restores cleanly: committed
// partitions keep their offsets, new partitions read from the start.
func TestRestoreGroupTopicGrew(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic(TopicInData, 2); err != nil {
		t.Fatal(err)
	}
	client := NewInProcClient(b)
	for p := int32(0); p < 2; p++ {
		for i := 0; i < 3; i++ {
			if _, _, err := b.Produce(TopicInData, p, nil, []byte("t")); err != nil {
				t.Fatal(err)
			}
		}
	}
	g, err := NewGroup(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}
	m, err := g.Join("rsu-1")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Poll(100); err != nil {
		t.Fatal(err)
	}
	snap := g.Snapshot()

	// The topic grows a partition between snapshot and restore.
	grown := NewBroker(BrokerConfig{})
	if err := grown.CreateTopic(TopicInData, 3); err != nil {
		t.Fatal(err)
	}
	if _, _, err := grown.Produce(TopicInData, 2, nil, []byte("new")); err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreGroup(NewInProcClient(grown), snap)
	if err != nil {
		t.Fatalf("restore against grown topic: %v", err)
	}
	offsets := restored.Offsets()
	if len(offsets) != 3 {
		t.Fatalf("restored offsets = %v, want 3 entries", offsets)
	}
	if offsets[0] != snap.Offsets[0] || offsets[1] != snap.Offsets[1] {
		t.Errorf("committed offsets changed: %v vs snapshot %v", offsets, snap.Offsets)
	}
	if offsets[2] != 0 {
		t.Errorf("new partition offset = %d, want 0 (read from earliest)", offsets[2])
	}
	// The restored member picks up the new partition's backlog.
	rm, err := restored.Member("rsu-1")
	if err != nil {
		t.Fatal(err)
	}
	msgs, err := rm.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, msg := range msgs {
		if msg.Partition == 2 {
			found = true
		}
	}
	if !found {
		t.Errorf("restored member never read the new partition (got %d msgs)", len(msgs))
	}
}

// A topic that shrank below the snapshot is an error: committed offsets
// would silently vanish.
func TestRestoreGroupTopicShrankErrors(t *testing.T) {
	b := NewBroker(BrokerConfig{})
	if err := b.CreateTopic(TopicInData, 2); err != nil {
		t.Fatal(err)
	}
	snap := GroupSnapshot{Topic: TopicInData, Offsets: []int64{5, 7, 9}, Members: []string{"rsu-1"}}
	if _, err := RestoreGroup(NewInProcClient(b), snap); err == nil {
		t.Fatal("restore with 3 snapshotted offsets against 2 partitions should fail")
	}
}

// Backpressure must survive the TCP hop: the producer-side error matches
// flow.ErrBackpressure and carries the broker's retry-after hint.
func TestTCPBackpressureRoundTrip(t *testing.T) {
	b := NewBroker(BrokerConfig{FlowCapacity: 2, FlowPolicy: flow.TailDrop{}, FlowRetryHint: 3 * time.Millisecond})
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	client, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	for i := 0; i < 2; i++ {
		if _, _, err := client.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatalf("produce %d: %v", i, err)
		}
	}
	_, _, err = client.Produce(TopicInData, 0, nil, []byte("t"))
	if !errors.Is(err, flow.ErrBackpressure) {
		t.Fatalf("remote over-capacity produce: got %v, want backpressure", err)
	}
	hint, ok := flow.RetryAfter(err)
	if !ok {
		t.Fatalf("remote backpressure lost its retry-after hint: %v", err)
	}
	if hint < 3*time.Millisecond {
		t.Errorf("remote hint = %v, want >= configured base 3ms", hint)
	}
}

// A RetryClient treats backpressure as a broker verdict: one attempt, no
// reconnect storm against an overloaded RSU.
func TestRetryClientDoesNotBlindRetryBackpressure(t *testing.T) {
	if !brokerError(flow.ErrBackpressure) {
		t.Fatal("backpressure must classify as a broker error, not a transport fault")
	}

	b := NewBroker(BrokerConfig{FlowCapacity: 1})
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(b, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rc, err := DialRetry(srv.Addr(), 5, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	slept := 0
	rc.sleep = func(time.Duration) { slept++ }

	if _, _, err := rc.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rc.Produce(TopicInData, 0, nil, []byte("t")); !errors.Is(err, flow.ErrBackpressure) {
		t.Fatalf("got %v, want backpressure", err)
	}
	if slept != 0 {
		t.Errorf("retry client slept %d times on a backpressure verdict", slept)
	}
}

// Flow metrics surface on the broker's registry: aggregate admission
// counters plus a per-topic occupancy gauge summed over partitions.
func TestFlowMetricsOnRegistry(t *testing.T) {
	reg := obsv.NewRegistry()
	// Default PriorityShed: capacity 10 sheds telemetry at occupancy 9.
	b := NewBroker(BrokerConfig{FlowCapacity: 10, Metrics: reg})
	if err := b.CreateTopic(TopicInData, 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		if _, _, err := b.Produce(TopicInData, 0, nil, []byte("t")); err != nil {
			t.Fatal(err)
		}
	}
	_, _, err := b.Produce(TopicInData, 0, nil, []byte("t"))
	if !errors.Is(err, flow.ErrBackpressure) {
		t.Fatalf("got %v, want backpressure", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["flow.IN-DATA.admitted"]; got != 9 {
		t.Errorf("admitted counter = %d, want 9", got)
	}
	if got := snap.Counters["flow.IN-DATA.shed.telemetry"]; got != 1 {
		t.Errorf("shed counter = %d, want 1", got)
	}
	if got := snap.Gauges["flow.IN-DATA.occupancy"]; got != 9 {
		t.Errorf("occupancy gauge = %d, want 9 (partition sum)", got)
	}
}
