package stream

import (
	"errors"
	"fmt"
	"testing"
)

func TestProducerConsumerFlow(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)

	p, err := NewProducer(client, TopicInData)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewConsumer(client, TopicInData, 0)
	if err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 50; i++ {
		if _, _, err := p.Send([]byte(fmt.Sprintf("car-%d", i%5)), []byte(fmt.Sprintf("msg-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.Sent() != 50 {
		t.Errorf("Sent = %d", p.Sent())
	}
	if p.Topic() != TopicInData {
		t.Errorf("Topic = %q", p.Topic())
	}

	var got int
	for {
		msgs, err := c.Poll(16)
		if err != nil {
			t.Fatal(err)
		}
		if len(msgs) == 0 {
			break
		}
		got += len(msgs)
	}
	if got != 50 {
		t.Errorf("consumed %d messages, want 50", got)
	}
	nMsgs, nBytes := c.Received()
	if nMsgs != 50 || nBytes <= 0 {
		t.Errorf("Received = %d msgs, %d bytes", nMsgs, nBytes)
	}
	// Nothing more to read.
	msgs, err := c.Poll(16)
	if err != nil || len(msgs) != 0 {
		t.Errorf("idle poll = %v, %v", msgs, err)
	}
}

func TestConsumerNoDuplicatesNoLoss(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)
	p, _ := NewProducer(client, TopicInData)
	c, _ := NewConsumer(client, TopicInData, 0)

	seen := make(map[string]bool)
	var produced int
	for round := 0; round < 20; round++ {
		for i := 0; i < 7; i++ {
			v := fmt.Sprintf("r%d-m%d", round, i)
			if _, _, err := p.Send([]byte(fmt.Sprintf("k%d", i)), []byte(v)); err != nil {
				t.Fatal(err)
			}
			produced++
		}
		for {
			msgs, err := c.Poll(3)
			if err != nil {
				t.Fatal(err)
			}
			if len(msgs) == 0 {
				break
			}
			for _, m := range msgs {
				v := string(m.Value)
				if seen[v] {
					t.Fatalf("duplicate delivery of %q", v)
				}
				seen[v] = true
			}
		}
	}
	if len(seen) != produced {
		t.Errorf("consumed %d unique messages, want %d", len(seen), produced)
	}
}

func TestConsumerSeekAndOffsets(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)
	p, _ := NewProducer(client, TopicInData)
	for i := 0; i < 9; i++ {
		if _, err := p.SendToPartition(0, nil, []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	c, _ := NewConsumer(client, TopicInData, 0)
	if _, err := c.Poll(100); err != nil {
		t.Fatal(err)
	}
	offs := c.Offsets()
	if offs[0] != 9 {
		t.Errorf("partition 0 offset = %d, want 9", offs[0])
	}
	c.SeekTo(0)
	msgs, err := c.Poll(100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 9 {
		t.Errorf("replay after SeekTo got %d messages, want 9", len(msgs))
	}
}

func TestConsumerPartitionFailureDegradesGracefully(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)
	p, _ := NewProducer(client, TopicInData)
	for part := int32(0); part < DefaultPartitions; part++ {
		if _, err := p.SendToPartition(part, nil, []byte("x")); err != nil {
			t.Fatal(err)
		}
	}
	b.SetPartitionDown(TopicInData, 1, true)
	c, _ := NewConsumer(client, TopicInData, 0)
	var got int
	var sawErr bool
	for i := 0; i < 5; i++ {
		msgs, err := c.Poll(10)
		got += len(msgs)
		if err != nil {
			sawErr = true
			if !errors.Is(err, ErrPartitionDown) {
				t.Fatalf("err = %v, want ErrPartitionDown", err)
			}
		}
	}
	if !sawErr {
		t.Error("expected a partition-down error")
	}
	if got != 2 {
		t.Errorf("consumed %d messages from healthy partitions, want 2", got)
	}
}

func TestNewProducerConsumerValidation(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)
	if _, err := NewProducer(nil, "t"); err == nil {
		t.Error("want error for nil client")
	}
	if _, err := NewProducer(client, ""); !errors.Is(err, ErrEmptyTopicName) {
		t.Errorf("err = %v", err)
	}
	if _, err := NewConsumer(nil, "t", 0); err == nil {
		t.Error("want error for nil client")
	}
	if _, err := NewConsumer(client, "missing", 0); !errors.Is(err, ErrUnknownTopic) {
		t.Errorf("err = %v, want ErrUnknownTopic", err)
	}
	c, _ := NewConsumer(client, TopicInData, 0)
	if msgs, err := c.Poll(0); err != nil || msgs != nil {
		t.Errorf("Poll(0) = %v, %v", msgs, err)
	}
}

func TestAccessorSurface(t *testing.T) {
	b := newTestBroker(t)
	client := NewInProcClient(b)
	if err := client.CreateTopic(TopicInData, DefaultPartitions); err != nil {
		t.Errorf("idempotent CreateTopic through client: %v", err)
	}
	if err := client.Close(); err != nil {
		t.Errorf("InProcClient.Close: %v", err)
	}
	p, _ := NewProducer(client, TopicInData)
	if _, _, err := p.Send([]byte("k"), []byte("value")); err != nil {
		t.Fatal(err)
	}
	if p.Bytes() != 6 {
		t.Errorf("Bytes = %d, want 6", p.Bytes())
	}
	c, _ := NewConsumer(client, TopicInData, 0)
	if c.Topic() != TopicInData {
		t.Errorf("Topic = %q", c.Topic())
	}
	if _, err := c.Poll(10); err != nil {
		t.Fatal(err)
	}
	if b.BytesOut() <= 0 {
		t.Error("BytesOut not accounted")
	}
}
