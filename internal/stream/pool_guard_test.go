//go:build cad3_checks

package stream

import (
	"strings"
	"testing"
	"unsafe"
)

// resetPoolGuard drains the payload ring and clears the guard table so
// each test starts from a known-empty pool (other package tests share
// the global free lists).
func resetPoolGuard() {
	for {
		select {
		case <-payloadFree:
			continue
		default:
		}
		break
	}
	guardMu.Lock()
	freeSites = map[unsafe.Pointer]string{}
	guardMu.Unlock()
}

// TestGuardPanicsOnDoubleRecycle proves the debug build turns a double
// PutPayload into an immediate panic naming both recycle call sites.
func TestGuardPanicsOnDoubleRecycle(t *testing.T) {
	resetPoolGuard()
	b := GetPayload()
	b = append(b, 1, 2, 3)
	PutPayload(b)

	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("second PutPayload of the same buffer did not panic")
		}
		msg, ok := r.(string)
		if !ok {
			t.Fatalf("panic value %T, want string", r)
		}
		if !strings.Contains(msg, "double recycle of pooled buffer") ||
			!strings.Contains(msg, "already recycled at") ||
			!strings.Contains(msg, "pool_guard_test.go") {
			t.Errorf("panic message lacks the offending call sites: %q", msg)
		}
	}()
	PutPayload(b)
}

// TestGuardAllowsRecycleAfterLease proves the legal lifecycle stays
// silent: put, get (lease), put again.
func TestGuardAllowsRecycleAfterLease(t *testing.T) {
	resetPoolGuard()
	b := GetPayload()
	b = append(b, 42)
	PutPayload(b)
	leased := GetPayload() // the ring returns the same buffer
	PutPayload(leased)     // legal: the new owner recycles once
}

// TestGuardRetractsDroppedBuffers proves a buffer the full ring dropped
// to the GC is forgotten — recycling a fresh buffer that happens to
// reuse its storage must not trip the detector.
func TestGuardRetractsDroppedBuffers(t *testing.T) {
	resetPoolGuard()
	// Fill the ring completely, then overflow it by one.
	kept := make([][]byte, 0, cap(payloadFree)+1)
	for i := 0; i <= cap(payloadFree); i++ {
		kept = append(kept, append(GetPayload(), byte(i)))
	}
	for _, b := range kept {
		PutPayload(b) // the last one is dropped and must be retracted
	}
	guardMu.Lock()
	n := len(freeSites)
	guardMu.Unlock()
	if n != cap(payloadFree) {
		t.Errorf("guard tracks %d buffers, want exactly the ring capacity %d", n, cap(payloadFree))
	}
}
