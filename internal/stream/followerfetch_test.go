package stream

import (
	"testing"

	"cad3/internal/obsv"
)

// newReadSet builds a 3-replica in-proc set with one single-partition
// topic.
func newReadSet(t *testing.T, reg *obsv.Registry) *ReplicaSet {
	t.Helper()
	rs, err := NewReplicaSet(ReplicaSetConfig{Metrics: reg},
		Replica{ID: "r0", Broker: NewBroker(BrokerConfig{})},
		Replica{ID: "r1", Broker: NewBroker(BrokerConfig{})},
		Replica{ID: "r2", Broker: NewBroker(BrokerConfig{})})
	if err != nil {
		t.Fatal(err)
	}
	if err := rs.CreateTopic("t", 1); err != nil {
		t.Fatal(err)
	}
	return rs
}

// TestFollowerFetchNeverPassesHWM is the satellite's headline assertion:
// with the leader ahead of its followers (AckLeader produces, not yet
// replicated), a follower read returns only committed records — never
// one past the minimum high watermark of the live ISR.
func TestFollowerFetchNeverPassesHWM(t *testing.T) {
	reg := obsv.NewRegistry()
	rs := newReadSet(t, reg)

	// Five committed records: AckAll lands them on every ISR member.
	for i := 0; i < 5; i++ {
		if _, _, err := rs.Produce("t", 0, nil, []byte{byte(i)}, AckAll); err != nil {
			t.Fatal(err)
		}
	}
	// Three uncommitted records: AckLeader leaves the followers behind.
	for i := 5; i < 8; i++ {
		if _, _, err := rs.Produce("t", 0, nil, []byte{byte(i)}, AckLeader); err != nil {
			t.Fatal(err)
		}
	}
	committed, err := rs.CommittedOffset("t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if committed != 5 {
		t.Fatalf("committed offset = %d, want 5", committed)
	}

	msgs, err := rs.FetchCommitted("t", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 5 {
		t.Fatalf("follower fetch returned %d records, want the 5 committed", len(msgs))
	}
	for _, m := range msgs {
		if m.Offset >= committed {
			t.Fatalf("follower fetch returned offset %d past committed %d", m.Offset, committed)
		}
	}
	RecycleMessages(msgs)

	// Reading at the committed boundary yields nothing, not the leader's
	// uncommitted suffix.
	if msgs, err := rs.FetchCommitted("t", 0, committed, 100); err != nil || len(msgs) != 0 {
		t.Fatalf("read at committed boundary = %d msgs, err %v; want empty", len(msgs), err)
	}

	// A control-plane round replicates the suffix; the records appear.
	rs.Tick()
	msgs, err = rs.FetchCommitted("t", 0, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 8 {
		t.Fatalf("after Tick follower fetch returned %d records, want 8", len(msgs))
	}
	RecycleMessages(msgs)

	snap := reg.Snapshot()
	if snap.Counters["repl.follower_fetches"] == 0 {
		t.Fatal("no fetch was served by a follower")
	}
	if snap.Counters["repl.follower_clamped"] == 0 {
		t.Fatal("the over-HWM read was not clamped")
	}
}

// TestFollowerFetchSpreadsAcrossISR pins the load-spreading behaviour:
// with two in-sync followers, successive fetches alternate between them
// and none is served by the leader.
func TestFollowerFetchSpreadsAcrossISR(t *testing.T) {
	reg := obsv.NewRegistry()
	rs := newReadSet(t, reg)
	if _, _, err := rs.Produce("t", 0, nil, []byte("x"), AckAll); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		msgs, err := rs.FetchCommitted("t", 0, 0, 10)
		if err != nil {
			t.Fatal(err)
		}
		RecycleMessages(msgs)
	}
	if got := reg.Snapshot().Counters["repl.follower_fetches"]; got != 6 {
		t.Fatalf("repl.follower_fetches = %d, want 6 (every read off-leader)", got)
	}
}

// TestFollowerFetchSurvivesFollowerLoss: killing a follower shrinks the
// ISR; committed reads keep working off the survivors, and an ISR of
// one serves from the leader.
func TestFollowerFetchSurvivesFollowerLoss(t *testing.T) {
	rs := newReadSet(t, nil)
	leaderID, _, _ := rs.Leader("t", 0)
	for _, id := range []string{"r0", "r1", "r2"} {
		if id == leaderID {
			continue
		}
		if err := rs.Kill(id); err != nil {
			t.Fatal(err)
		}
	}
	rs.Tick() // drops the dead followers from the ISR
	if _, _, err := rs.Produce("t", 0, nil, []byte("x"), AckAll); err != nil {
		t.Fatal(err)
	}
	msgs, err := rs.FetchCommitted("t", 0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 {
		t.Fatalf("leader-only ISR read returned %d records, want 1", len(msgs))
	}
	RecycleMessages(msgs)
}

// TestReadClientWithConsumer wires a consumer against the follower-read
// client view: committed records flow, uncommitted ones hold back until
// replication catches up.
func TestReadClientWithConsumer(t *testing.T) {
	rs := newReadSet(t, nil)
	cons, err := NewConsumer(rs.ReadClient(AckLeader), "t", 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.Produce("t", 0, nil, []byte("committed"), AckAll); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rs.Produce("t", 0, nil, []byte("pending"), AckLeader); err != nil {
		t.Fatal(err)
	}
	msgs, err := cons.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Value) != "committed" {
		t.Fatalf("poll = %d msgs, want just the committed record", len(msgs))
	}
	RecycleMessages(msgs)
	rs.Tick()
	msgs, err = cons.Poll(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(msgs) != 1 || string(msgs[0].Value) != "pending" {
		t.Fatalf("post-Tick poll = %d msgs, want the replicated record", len(msgs))
	}
	RecycleMessages(msgs)
}
