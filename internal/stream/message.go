// Package stream is a from-scratch, stdlib-only distributed event-streaming
// substrate modelled on the subset of Apache Kafka that CAD3 uses: named
// topics split into partitioned append-only logs, producers with key-hash
// partitioning, pull-based consumers tracking per-partition offsets, and a
// compact binary wire protocol over TCP. An in-process client serves
// simulations and tests; the TCP server/client pair serves the networked
// deployment (cmd/cad3-rsu, cmd/cad3-vehicles).
//
// CAD3 creates three topics per RSU (§IV-B of the paper): IN-DATA for
// vehicle telemetry, OUT-DATA for warnings, and CO-DATA for inter-RSU
// prediction summaries, each with three partitions.
package stream

import (
	"time"
)

// Topic names used by the CAD3 pipeline (paper §IV-B).
const (
	TopicInData  = "IN-DATA"
	TopicOutData = "OUT-DATA"
	TopicCoData  = "CO-DATA"
)

// DefaultPartitions is the per-topic partition count the paper configures
// "to speed up reading and writing".
const DefaultPartitions = 3

// Message is one record in a partition log.
type Message struct {
	Topic     string
	Partition int32
	Offset    int64
	Key       []byte
	Value     []byte
	// AppendedAt is stamped by the broker when the message is appended,
	// used for queuing-delay accounting.
	AppendedAt time.Time
}

// Clone returns a deep copy of the message so consumers can retain it
// without aliasing broker memory.
func (m Message) Clone() Message {
	out := m
	if m.Key != nil {
		out.Key = append([]byte(nil), m.Key...)
	}
	if m.Value != nil {
		out.Value = append([]byte(nil), m.Value...)
	}
	return out
}

// WireSize returns the approximate on-wire size of the message in bytes,
// used by bandwidth accounting: payload plus the fixed frame overhead.
func (m Message) WireSize() int {
	const frameOverhead = 29 // len+type+topic len+partition+offset+key/value lens
	return frameOverhead + len(m.Topic) + len(m.Key) + len(m.Value)
}
